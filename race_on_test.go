//go:build race

package classminer

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under it (instrumentation and sync.Pool behave
// differently there by design).
const raceEnabled = true
