// Package trace is a zero-dependency request tracer: context-carried span
// trees with monotonic timings and per-span attributes, W3C traceparent
// ingestion/emission, and head sampling plus tail capture into a fixed-size
// lock-free ring of recent traces.
//
// The design is shaped by one hard constraint: the serving hot path has an
// exact allocation budget, so recording a trace that ends up *not* kept must
// cost zero heap allocations. Traces are pooled; each carries a fixed-size
// span arena (the arena is never grown — growing it would invalidate *Span
// pointers already handed out — spans past the cap are counted and dropped);
// the keep/drop decision is deferred to Finish (tail sampling), and only a
// kept trace pays for an immutable View that outlives the pooled object.
//
// Every *Span method is nil-safe: code under test, library-level callers
// with a bare context.Background(), and unsampled fast paths all thread a
// nil span for free.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// maxAttrs is the per-span attribute capacity. Attributes land inline in
// the span arena; the hot path never allocates for them.
const maxAttrs = 4

// Attr is one span attribute. Exactly one of Str/Int is meaningful,
// selected by IsInt — an int attribute is formatted only when a kept trace
// is rendered to a View, never on the recording path.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Span is one timed stage of a trace. Spans form a tree via parent indices
// into the owning trace's arena. The zero Span is inert, and all methods
// tolerate a nil receiver.
type Span struct {
	tr     *Trace
	name   string
	start  time.Time
	dur    time.Duration
	idx    int32 // own position in the arena
	parent int32 // parent's position; -1 for the root
	nattr  int32
	attrs  [maxAttrs]Attr
}

// Start opens a child span. Returns nil (a no-op span) when the receiver is
// nil or the trace's span arena is full.
func (s *Span) Start(name string) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	return s.tr.newSpan(name, s.idx)
}

// End stamps the span's duration. Ending twice keeps the later stamp.
func (s *Span) End() {
	if s != nil {
		s.dur = time.Since(s.start)
	}
}

// Rename replaces the span's name; used when a span's role is only known
// after the fact (a parked WAL commit that wins the fsync lead).
func (s *Span) Rename(name string) {
	if s != nil {
		s.name = name
	}
}

// SetAttr attaches a string attribute; past maxAttrs it is dropped.
func (s *Span) SetAttr(key, val string) {
	if s == nil || int(s.nattr) >= maxAttrs {
		return
	}
	s.attrs[s.nattr] = Attr{Key: key, Str: val}
	s.nattr++
}

// SetInt attaches an integer attribute without formatting it (formatting
// happens at View time, off the hot path).
func (s *Span) SetInt(key string, val int64) {
	if s == nil || int(s.nattr) >= maxAttrs {
		return
	}
	s.attrs[s.nattr] = Attr{Key: key, Int: val, IsInt: true}
	s.nattr++
}

// TraceSpan makes *Span itself a Carrier, so a bare span can be put in a
// context without a wrapper.
func (s *Span) TraceSpan() *Span { return s }

// Trace is one in-flight request's span arena. Obtain via Tracer.StartTrace,
// return via Tracer.Finish; never retain past Finish.
type Trace struct {
	tracer       *Tracer
	start        time.Time
	id           [16]byte // trace id (inbound traceparent's, or random)
	root         [8]byte  // root span id (caller-supplied; doubles as request id)
	remoteParent [8]byte  // inbound parent span id, when hasRemote
	hasRemote    bool
	sampled      bool // head-sampled (or inbound sampled flag): keep regardless of tail
	n            atomic.Int32
	spans        []Span // fixed capacity; see package comment
}

func (t *Trace) newSpan(name string, parent int32) *Span {
	i := t.n.Add(1) - 1
	if int(i) >= len(t.spans) {
		return nil // arena full; overflow count derived from n at Finish
	}
	sp := &t.spans[i]
	sp.tr = t
	sp.name = name
	sp.start = time.Now()
	sp.dur = 0
	sp.idx = i
	sp.parent = parent
	sp.nattr = 0
	return sp
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil || t.n.Load() == 0 {
		return nil
	}
	return &t.spans[0]
}

// Sampled reports whether the trace was head-sampled (or arrived with the
// W3C sampled flag set) and will therefore be kept regardless of outcome.
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

// Traceparent renders the outbound W3C traceparent header for this trace.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	flags := byte(0)
	if t.sampled {
		flags = 1
	}
	return FormatTraceparent(t.id, t.root, flags)
}

// Config sizes a Tracer.
type Config struct {
	// Sample is the head-sampling probability in [0,1]: that fraction of
	// traces is kept regardless of how the request ends.
	Sample float64
	// Slow is the tail threshold: any trace whose total duration reaches it
	// is kept. 0 keeps every trace (the daemon's `-trace-slow 0` spelling);
	// tests that want "nothing is slow" pass an hour.
	Slow time.Duration
	// Ring is the kept-trace ring capacity (default 256).
	Ring int
	// MaxSpans is the per-trace span arena size (default 64).
	MaxSpans int
}

// Tracer owns the trace pool, the sampling decision, and the ring of kept
// traces. A nil *Tracer is valid and inert at every call site.
type Tracer struct {
	cfg       Config
	sampleBar uint64 // head-sample iff RandU64() < sampleBar
	ring      *ring
	pool      sync.Pool

	started      atomic.Uint64
	kept         atomic.Uint64
	droppedSpans atomic.Uint64

	// exemplars holds the most recent kept View per route, surfaced next to
	// the per-route latency data in /v1/stats.
	exemplars sync.Map // string -> *View
}

// New builds a Tracer. Note the zero Config keeps every trace (Slow 0 =
// keep all); servers that want the usual behaviour pass an explicit slow
// threshold.
func New(cfg Config) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 64
	}
	if cfg.Sample < 0 {
		cfg.Sample = 0
	}
	if cfg.Slow < 0 {
		cfg.Slow = 0
	}
	t := &Tracer{cfg: cfg, ring: newRing(cfg.Ring)}
	switch {
	case cfg.Sample >= 1:
		t.sampleBar = ^uint64(0)
	case cfg.Sample > 0:
		t.sampleBar = uint64(cfg.Sample * float64(1<<63) * 2)
	}
	t.pool.New = func() any {
		return &Trace{tracer: t, spans: make([]Span, cfg.MaxSpans)}
	}
	return t
}

// StartTrace begins a trace for one request. rootSpanID is caller-supplied
// (the server derives its X-Request-Id from the same bytes, so the two
// always agree). traceparent is the inbound header value, "" for none;
// malformed values are silently ignored per the W3C spec — correlation is
// best-effort, never a 400.
//
// Returns nil, nil on a nil tracer.
func (t *Tracer) StartTrace(name string, rootSpanID [8]byte, traceparent string) (*Trace, *Span) {
	if t == nil {
		return nil, nil
	}
	t.started.Add(1)
	tr := t.pool.Get().(*Trace)
	tr.n.Store(0)
	tr.start = time.Now()
	tr.root = rootSpanID
	tr.hasRemote = false
	tr.sampled = t.sampleBar > 0 && RandU64() < t.sampleBar
	if id, parent, flags, ok := ParseTraceparent(traceparent); ok {
		tr.id = id
		tr.remoteParent = parent
		tr.hasRemote = true
		if flags&1 != 0 {
			// The caller asked for this trace; honour the sampled flag so
			// cross-service correlation works without cranking -trace-sample.
			tr.sampled = true
		}
	} else {
		PutUint64(tr.id[0:8], RandU64())
		PutUint64(tr.id[8:16], RandU64())
	}
	sp := tr.newSpan(name, -1)
	sp.idx = 0
	return tr, sp
}

// Meta is what Finish knows about the finished request beyond its spans.
type Meta struct {
	Route     string
	Method    string
	Status    int
	RequestID string
	Err       string // non-"" marks the trace failed even without an HTTP status
}

// Finish closes the trace, applies the tail-sampling decision, and recycles
// the trace object. The returned View is non-nil exactly when the trace was
// kept; View.Tail additionally reports that the *tail* sampler (slow or
// 5xx/error), not head sampling, is what fired — the server's slow-request
// log line keys off it. Nil-safe on both receiver and trace.
func (t *Tracer) Finish(tr *Trace, m Meta) *View {
	if t == nil || tr == nil {
		return nil
	}
	root := tr.Root()
	if root != nil && root.dur == 0 {
		root.End()
	}
	dur := time.Duration(0)
	if root != nil {
		dur = root.dur
	}
	slow := dur >= t.cfg.Slow
	failed := m.Status >= 500 || m.Err != ""
	var reason string
	switch {
	case failed:
		reason = "error"
	case slow:
		reason = "slow"
	case tr.sampled:
		reason = "sampled"
	}
	var v *View
	if reason != "" {
		t.kept.Add(1)
		v = t.render(tr, m, dur, reason, failed || slow)
		t.ring.add(v)
		if m.Route != "" {
			t.exemplars.Store(m.Route, v)
		}
	}
	n := int(tr.n.Load())
	if over := n - len(tr.spans); over > 0 {
		t.droppedSpans.Add(uint64(over))
	}
	t.pool.Put(tr)
	return v
}

// Stats is the tracer's aggregate state for /v1/stats and /metrics.
type Stats struct {
	Started      uint64  `json:"started"`
	Kept         uint64  `json:"kept"`
	DroppedSpans uint64  `json:"droppedSpans,omitempty"`
	Ring         int     `json:"ring"`
	Sample       float64 `json:"sample"`
	SlowMS       float64 `json:"slowMs"`
}

func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:      t.started.Load(),
		Kept:         t.kept.Load(),
		DroppedSpans: t.droppedSpans.Load(),
		Ring:         t.cfg.Ring,
		Sample:       t.cfg.Sample,
		SlowMS:       float64(t.cfg.Slow) / float64(time.Millisecond),
	}
}

// Started and Kept feed the /metrics counters without copying all of Stats.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

func (t *Tracer) Kept() uint64 {
	if t == nil {
		return 0
	}
	return t.kept.Load()
}

// Recent snapshots the ring, newest first.
func (t *Tracer) Recent() []*View {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Exemplar is a pointer from aggregate stats back into the trace ring: the
// last kept trace for a route.
type Exemplar struct {
	TraceID    string  `json:"traceId"`
	RequestID  string  `json:"requestId,omitempty"`
	DurationMS float64 `json:"durationMs"`
	Status     int     `json:"status,omitempty"`
}

// Exemplars returns the last kept trace per route.
func (t *Tracer) Exemplars() map[string]Exemplar {
	if t == nil {
		return nil
	}
	out := map[string]Exemplar{}
	t.exemplars.Range(func(k, v any) bool {
		view := v.(*View)
		out[k.(string)] = Exemplar{
			TraceID:    view.TraceID,
			RequestID:  view.RequestID,
			DurationMS: view.DurationMS,
			Status:     view.Status,
		}
		return true
	})
	return out
}

// --- context plumbing ---

type ctxKey struct{}

// Carrier resolves the active span from a context value. The server stores
// its pooled per-request state under the trace key and implements Carrier
// on it, so installing the span costs no context allocation beyond the one
// WithValue the request already pays.
type Carrier interface{ TraceSpan() *Span }

// With installs a Carrier in the context.
func With(ctx context.Context, c Carrier) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// CarrierFrom returns the installed Carrier, nil when absent.
func CarrierFrom(ctx context.Context) Carrier {
	c, _ := ctx.Value(ctxKey{}).(Carrier)
	return c
}

// SpanFrom returns the context's active span, nil (inert) when untraced.
func SpanFrom(ctx context.Context) *Span {
	if c := CarrierFrom(ctx); c != nil {
		return c.TraceSpan()
	}
	return nil
}

// StartSpan opens a child of the context's span; nil (no-op) when untraced.
func StartSpan(ctx context.Context, name string) *Span {
	return SpanFrom(ctx).Start(name)
}

// --- id generation ---

// randState seeds one splitmix64 sequence per process. A Weyl-increment
// counter finalized by splitmix64 gives well-distributed 64-bit ids with a
// single atomic add — no lock, no allocation, safe under -race.
var randState atomic.Uint64

func init() {
	randState.Store(uint64(time.Now().UnixNano()))
}

// RandU64 returns a pseudo-random uint64 suitable for trace/span ids.
func RandU64() uint64 {
	x := randState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PutUint64 writes v big-endian into b[:8] without importing encoding/binary
// at every call site.
func PutUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}
