package trace

// W3C Trace Context (https://www.w3.org/TR/trace-context/) traceparent
// support: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
// Parsing is strict but failure is silent — a malformed header means the
// request is simply traced without a remote parent, never rejected.

const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2 // "00-…-…-…"

// ParseTraceparent decodes a traceparent header value. ok is false for
// anything malformed, for the reserved all-zero trace or parent ids, and
// for the invalid version ff.
func ParseTraceparent(h string) (traceID [16]byte, parentID [8]byte, flags byte, ok bool) {
	if len(h) != traceparentLen || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return traceID, parentID, 0, false
	}
	ver, okv := hexByte(h[0], h[1])
	if !okv || ver == 0xff {
		return traceID, parentID, 0, false
	}
	zero := byte(0)
	for i := 0; i < 16; i++ {
		b, okb := hexByte(h[3+2*i], h[4+2*i])
		if !okb {
			return traceID, parentID, 0, false
		}
		traceID[i] = b
		zero |= b
	}
	if zero == 0 {
		return traceID, parentID, 0, false
	}
	zero = 0
	for i := 0; i < 8; i++ {
		b, okb := hexByte(h[36+2*i], h[37+2*i])
		if !okb {
			return traceID, parentID, 0, false
		}
		parentID[i] = b
		zero |= b
	}
	if zero == 0 {
		return traceID, parentID, 0, false
	}
	flags, okf := hexByte(h[53], h[54])
	if !okf {
		return traceID, parentID, 0, false
	}
	return traceID, parentID, flags, true
}

// FormatTraceparent renders the version-00 header for the given ids.
func FormatTraceparent(traceID [16]byte, spanID [8]byte, flags byte) string {
	var buf [traceparentLen]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	for i, c := range traceID {
		buf[3+2*i] = hexdigits[c>>4]
		buf[4+2*i] = hexdigits[c&0xf]
	}
	buf[35] = '-'
	for i, c := range spanID {
		buf[36+2*i] = hexdigits[c>>4]
		buf[37+2*i] = hexdigits[c&0xf]
	}
	buf[52] = '-'
	buf[53] = hexdigits[flags>>4]
	buf[54] = hexdigits[flags&0xf]
	return string(buf[:])
}

// hexByte decodes two lowercase hex digits (the spec forbids uppercase).
func hexByte(hi, lo byte) (byte, bool) {
	h, okh := hexNibble(hi)
	l, okl := hexNibble(lo)
	return h<<4 | l, okh && okl
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
