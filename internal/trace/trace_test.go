package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func startFinish(t *Tracer, dur time.Duration, status int) *View {
	var sid [8]byte
	PutUint64(sid[:], RandU64())
	tr, root := t.StartTrace("request", sid, "")
	if dur > 0 {
		root.start = root.start.Add(-dur) // backdate instead of sleeping
	}
	return t.Finish(tr, Meta{Route: "/v1/search", Method: "POST", Status: status})
}

func TestTailSamplerAlwaysKeepsSlowAnd5xx(t *testing.T) {
	tr := New(Config{Sample: 0, Slow: 50 * time.Millisecond})

	if v := startFinish(tr, 0, 200); v != nil {
		t.Fatalf("fast 200 with sample=0 kept: %+v", v)
	}
	v := startFinish(tr, time.Second, 200)
	if v == nil || v.Reason != "slow" || !v.Tail() {
		t.Fatalf("slow request not tail-kept: %+v", v)
	}
	v = startFinish(tr, 0, 503)
	if v == nil || v.Reason != "error" || !v.Tail() {
		t.Fatalf("5xx request not tail-kept: %+v", v)
	}
	if v = startFinish(tr, 0, 404); v != nil {
		t.Fatalf("4xx fast request kept: %+v", v)
	}
	// An error without an HTTP status (background job) is also tail-kept.
	var sid [8]byte
	trc, _ := tr.StartTrace("job", sid, "")
	if v = tr.Finish(trc, Meta{Route: "job", Err: "boom"}); v == nil || !v.Tail() {
		t.Fatalf("failed job not tail-kept: %+v", v)
	}
}

func TestHeadSampling(t *testing.T) {
	all := New(Config{Sample: 1, Slow: time.Hour})
	v := startFinish(all, 0, 200)
	if v == nil || v.Reason != "sampled" {
		t.Fatalf("sample=1 did not keep: %+v", v)
	}
	if v.Tail() {
		t.Fatal("head-sampled fast 200 must not read as tail-kept")
	}
	none := New(Config{Sample: 0, Slow: time.Hour})
	for i := 0; i < 100; i++ {
		if v := startFinish(none, 0, 200); v != nil {
			t.Fatalf("sample=0 kept a trace: %+v", v)
		}
	}
}

func TestSlowZeroKeepsEverything(t *testing.T) {
	tr := New(Config{Slow: 0})
	if v := startFinish(tr, 0, 200); v == nil {
		t.Fatal("Slow=0 must keep every trace")
	}
}

func TestSpanTreeAttrsAndOverflow(t *testing.T) {
	tc := New(Config{Slow: 0, MaxSpans: 4})
	var sid [8]byte
	PutUint64(sid[:], 0x0102030405060708)
	tr, root := tc.StartTrace("request", sid, "")
	a := root.Start("auth")
	a.SetAttr("user", "dr.lee")
	a.SetInt("tokens", 3)
	a.End()
	b := root.Start("search")
	c := b.Start("scan") // 4th span: fills the arena
	c.End()
	b.End()
	if d := b.Start("overflow"); d != nil {
		t.Fatal("span past MaxSpans must be dropped (nil)")
	}
	// Dropped spans are inert everywhere.
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.SetInt("k", 1)
	nilSpan.End()
	nilSpan.Rename("x")
	if nilSpan.Start("child") != nil {
		t.Fatal("child of nil span must be nil")
	}

	v := tc.Finish(tr, Meta{Route: "/v1/search", Status: 200, RequestID: "0102030405060708"})
	if v == nil {
		t.Fatal("trace not kept")
	}
	if len(v.Spans) != 4 || v.DroppedSpans != 1 {
		t.Fatalf("spans=%d dropped=%d, want 4/1", len(v.Spans), v.DroppedSpans)
	}
	if v.Spans[0].Name != "request" || v.Spans[0].Parent != -1 {
		t.Fatalf("bad root: %+v", v.Spans[0])
	}
	if v.Spans[1].Name != "auth" || v.Spans[1].Parent != 0 {
		t.Fatalf("bad auth span: %+v", v.Spans[1])
	}
	if v.Spans[3].Name != "scan" || v.Spans[3].Parent != 2 {
		t.Fatalf("bad scan span: %+v", v.Spans[3])
	}
	if got := v.Spans[1].Attrs["user"]; got != "dr.lee" {
		t.Fatalf("user attr = %q", got)
	}
	if got := v.Spans[1].Attrs["tokens"]; got != "3" {
		t.Fatalf("tokens attr = %q (int attrs format at render time)", got)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tc := New(Config{Slow: time.Hour})
	var sid [8]byte
	PutUint64(sid[:], RandU64())

	in := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tr, _ := tc.StartTrace("request", sid, in)
	if !tr.Sampled() {
		t.Fatal("inbound sampled flag must mark the trace sampled")
	}
	out := tr.Traceparent()
	id, parent, flags, ok := ParseTraceparent(out)
	if !ok {
		t.Fatalf("emitted traceparent does not re-parse: %q", out)
	}
	if HexString(id[:]) != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id not propagated: %q", out)
	}
	if HexString(parent[:]) != HexString(sid[:]) {
		t.Fatalf("outbound parent must be our root span, got %q", out)
	}
	if flags&1 == 0 {
		t.Fatalf("sampled flag lost: %q", out)
	}
	v := tc.Finish(tr, Meta{Route: "/v1/search", Status: 200})
	if v == nil || v.RemoteParent != "b7ad6b7169203331" {
		t.Fatalf("remote parent not surfaced: %+v", v)
	}

	// Round trip of our own emission with no inbound parent.
	tr2, _ := tc.StartTrace("request", sid, "")
	out2 := tr2.Traceparent()
	if _, _, _, ok := ParseTraceparent(out2); !ok {
		t.Fatalf("self-generated traceparent does not parse: %q", out2)
	}
	tc.Finish(tr2, Meta{})
}

func TestTraceparentMalformedIgnored(t *testing.T) {
	bad := []string{
		"",
		"junk",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",     // missing flags
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0",   // short flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // invalid version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // zero parent
		"00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01",  // uppercase forbidden
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g",  // non-hex flags
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // bad separator
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-011", // trailing junk
	}
	tc := New(Config{Slow: 0})
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = ok", h)
		}
		var sid [8]byte
		PutUint64(sid[:], RandU64())
		tr, _ := tc.StartTrace("request", sid, h)
		v := tc.Finish(tr, Meta{Route: "/x"})
		if v == nil {
			t.Fatal("trace dropped")
		}
		if v.RemoteParent != "" {
			t.Errorf("malformed %q produced remote parent %q", h, v.RemoteParent)
		}
	}
}

func TestRingConcurrency(t *testing.T) {
	// Hammer the ring from writers while readers snapshot; -race is the
	// real assertion, the invariants below are sanity.
	tc := New(Config{Slow: 0, Ring: 7}) // odd size: exercises modulo wrap
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				views := tc.Recent()
				if len(views) > 7 {
					t.Errorf("snapshot larger than ring: %d", len(views))
					return
				}
				for _, v := range views {
					if v == nil || v.TraceID == "" {
						t.Error("snapshot contains incomplete view")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				var sid [8]byte
				PutUint64(sid[:], RandU64())
				tr, root := tc.StartTrace("request", sid, "")
				sp := root.Start("work")
				sp.SetInt("writer", int64(w))
				sp.End()
				tc.Finish(tr, Meta{Route: fmt.Sprintf("/w/%d", w), Status: 200})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish quickly; stop the readers once every trace landed.
	for tc.Kept() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	views := tc.Recent()
	if len(views) != 7 {
		t.Fatalf("full ring snapshot = %d views, want 7", len(views))
	}
	st := tc.Stats()
	if st.Started != writers*perWriter || st.Kept != writers*perWriter {
		t.Fatalf("stats = %+v", st)
	}
	if len(tc.Exemplars()) != writers {
		t.Fatalf("exemplars = %d routes, want %d", len(tc.Exemplars()), writers)
	}
}

func TestContextPlumbing(t *testing.T) {
	if SpanFrom(context.Background()) != nil {
		t.Fatal("background context must yield nil span")
	}
	if StartSpan(context.Background(), "x") != nil {
		t.Fatal("StartSpan on untraced context must be nil")
	}
	tc := New(Config{Slow: 0})
	var sid [8]byte
	tr, root := tc.StartTrace("request", sid, "")
	ctx := With(context.Background(), root)
	if SpanFrom(ctx) != root {
		t.Fatal("SpanFrom did not return the installed span")
	}
	sp := StartSpan(ctx, "child")
	if sp == nil || sp.parent != 0 {
		t.Fatalf("StartSpan child = %+v", sp)
	}
	sp.End()
	tc.Finish(tr, Meta{})
}

func TestNilTracerInert(t *testing.T) {
	var tc *Tracer
	tr, root := tc.StartTrace("request", [8]byte{}, "")
	if tr != nil || root != nil {
		t.Fatal("nil tracer must return nil trace/span")
	}
	if v := tc.Finish(tr, Meta{}); v != nil {
		t.Fatal("nil tracer Finish must be nil")
	}
	if tc.Recent() != nil || tc.Exemplars() != nil {
		t.Fatal("nil tracer has no traces")
	}
	if s := tc.Stats(); s.Started != 0 {
		t.Fatalf("nil tracer stats = %+v", s)
	}
}

func TestRequestIDMatchesRootSpan(t *testing.T) {
	tc := New(Config{Slow: 0})
	var sid [8]byte
	PutUint64(sid[:], RandU64())
	rid := HexString(sid[:])
	tr, _ := tc.StartTrace("request", sid, "")
	tp := tr.Traceparent()
	if !strings.Contains(tp, "-"+rid+"-") {
		t.Fatalf("traceparent %q does not carry root span id %s", tp, rid)
	}
	v := tc.Finish(tr, Meta{RequestID: rid})
	if v.RequestID != rid {
		t.Fatalf("view rid = %q, want %q", v.RequestID, rid)
	}
}

func TestUnkeptTraceZeroAllocs(t *testing.T) {
	if raceEnabledTrace() {
		t.Skip("alloc counts differ under -race")
	}
	tc := New(Config{Sample: 0, Slow: time.Hour})
	allocs := testing.AllocsPerRun(500, func() {
		var sid [8]byte
		PutUint64(sid[:], RandU64())
		tr, root := tc.StartTrace("request", sid, "")
		sp := root.Start("search")
		sp.SetInt("k", 10)
		inner := sp.Start("scan")
		inner.End()
		sp.End()
		tc.Finish(tr, Meta{Route: "/v1/search", Method: "POST", Status: 200})
	})
	if allocs != 0 {
		t.Fatalf("unkept trace cost %v allocs/op, want 0", allocs)
	}
}
