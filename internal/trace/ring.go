package trace

import (
	"strconv"
	"sync/atomic"
	"time"
)

// View is an immutable rendering of a kept trace: everything /debug/traces
// serves. It is built once at Finish and never mutated afterwards, so the
// ring can hand the same *View to any number of concurrent readers.
type View struct {
	TraceID      string     `json:"traceId"`
	RequestID    string     `json:"requestId,omitempty"`
	Route        string     `json:"route,omitempty"`
	Method       string     `json:"method,omitempty"`
	Status       int        `json:"status,omitempty"`
	Err          string     `json:"error,omitempty"`
	Start        time.Time  `json:"start"`
	DurationMS   float64    `json:"durationMs"`
	Reason       string     `json:"reason"` // "error" | "slow" | "sampled"
	RemoteParent string     `json:"remoteParent,omitempty"`
	DroppedSpans int        `json:"droppedSpans,omitempty"`
	Spans        []SpanView `json:"spans"`

	tail bool
}

// Tail reports that the tail sampler (slow-or-error), not head sampling, is
// what kept this trace; the server's structured slow-request log fires on it.
func (v *View) Tail() bool { return v != nil && v.tail }

// SpanView is one span in a View. Parent indexes into View.Spans (-1 for
// the root); offsets and durations are microseconds from the trace start.
type SpanView struct {
	Name    string            `json:"name"`
	Parent  int               `json:"parent"`
	StartUS int64             `json:"startUs"`
	DurUS   int64             `json:"durUs"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// render builds the View for a kept trace. This is the only place span
// attributes are formatted — a dropped trace never pays for it.
func (t *Tracer) render(tr *Trace, m Meta, dur time.Duration, reason string, tail bool) *View {
	n := int(tr.n.Load())
	dropped := 0
	if n > len(tr.spans) {
		dropped = n - len(tr.spans)
		n = len(tr.spans)
	}
	v := &View{
		TraceID:      HexString(tr.id[:]),
		RequestID:    m.RequestID,
		Route:        m.Route,
		Method:       m.Method,
		Status:       m.Status,
		Err:          m.Err,
		Start:        time.Now().Add(-dur), // wall anchor; spans carry monotonic offsets
		DurationMS:   float64(dur) / float64(time.Millisecond),
		Reason:       reason,
		DroppedSpans: dropped,
		Spans:        make([]SpanView, n),
		tail:         tail,
	}
	if tr.hasRemote {
		v.RemoteParent = HexString(tr.remoteParent[:])
	}
	for i := 0; i < n; i++ {
		sp := &tr.spans[i]
		sv := &v.Spans[i]
		sv.Name = sp.name
		sv.Parent = int(sp.parent)
		sv.StartUS = sp.start.Sub(tr.start).Microseconds()
		d := sp.dur
		if d == 0 && i > 0 {
			// A span never ended (panic unwound past it): charge it up to
			// the trace end so the gap is visible rather than invisible.
			d = dur - sp.start.Sub(tr.start)
		}
		sv.DurUS = d.Microseconds()
		if sp.nattr > 0 {
			sv.Attrs = make(map[string]string, sp.nattr)
			for a := int32(0); a < sp.nattr; a++ {
				at := &sp.attrs[a]
				if at.IsInt {
					sv.Attrs[at.Key] = strconv.FormatInt(at.Int, 10)
				} else {
					sv.Attrs[at.Key] = at.Str
				}
			}
		}
	}
	return v
}

// ring is a fixed-size lock-free buffer of kept traces. Writers claim a slot
// with one atomic add and publish the View with an atomic pointer store;
// readers snapshot with atomic loads. A reader racing a wrapping writer sees
// either the old or the new View for a slot — both are complete, immutable
// traces, which is all a debug endpoint needs.
type ring struct {
	slots []atomic.Pointer[View]
	next  atomic.Uint64
}

func newRing(n int) *ring {
	return &ring{slots: make([]atomic.Pointer[View], n)}
}

func (r *ring) add(v *View) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(v)
}

// snapshot returns the ring's contents, newest first.
func (r *ring) snapshot() []*View {
	n := uint64(len(r.slots))
	head := r.next.Load()
	if head == 0 {
		return nil
	}
	written := head
	if written > n {
		written = n
	}
	out := make([]*View, 0, written)
	// Walk backwards from the most recently claimed slot; a slot claimed by
	// a writer that has not stored its View yet reads nil and is skipped.
	for i := uint64(0); i < written; i++ {
		v := r.slots[(head-1-i)%n].Load()
		if v != nil {
			out = append(out, v)
		}
	}
	return out
}

const hexdigits = "0123456789abcdef"

// HexString is hex.EncodeToString without the intermediate buffer
// allocation (one string allocation total).
func HexString(b []byte) string {
	var buf [64]byte
	n := len(b) * 2
	if n > len(buf) {
		return hexStringSlow(b)
	}
	for i, c := range b {
		buf[2*i] = hexdigits[c>>4]
		buf[2*i+1] = hexdigits[c&0xf]
	}
	return string(buf[:n])
}

func hexStringSlow(b []byte) string {
	out := make([]byte, len(b)*2)
	for i, c := range b {
		out[2*i] = hexdigits[c>>4]
		out[2*i+1] = hexdigits[c&0xf]
	}
	return string(out)
}
