//go:build race

package trace

// raceEnabledTrace reports whether the race detector is active; alloc-count
// assertions are skipped under it (sync.Pool behaves differently there by
// design).
func raceEnabledTrace() bool { return true }
