package index

import (
	"fmt"
	"sort"

	"classminer/internal/mat"
)

// Reducer is the per-node dimension-reduction stage of §6.2: only the
// discriminating features take part in distance computations, so the basic
// per-comparison cost at every level of the index is below the full
// 266-dimension cost Tm. It selects the highest-variance coordinates first
// (cheap feature selection) and then fits a PCA in that subspace.
type Reducer struct {
	selected []int
	pca      *mat.PCA
	// compsT holds the PCA components transposed and contiguous —
	// compsT[j*Dim+c] = Components[c][j] — so ProjectInto's inner loop is a
	// dense Dim-wide accumulate per selected coordinate instead of a
	// strided gather. The hot ranking path projects sibling-leaf entries
	// through it on demand.
	compsT []float64
}

// FitReducer fits a reducer on the sample rows: selectDims coordinates by
// variance, then pcaDims principal components. Dimensions are clamped to
// what the data supports.
func FitReducer(x [][]float64, selectDims, pcaDims int) (*Reducer, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("index: FitReducer needs samples")
	}
	d := len(x[0])
	if selectDims < 1 || selectDims > d {
		selectDims = d
	}
	if pcaDims < 1 {
		pcaDims = 1
	}
	if pcaDims > selectDims {
		pcaDims = selectDims
	}
	mean := mat.Mean(x)
	vars := make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			dv := v - mean[j]
			vars[j] += dv * dv
		}
	}
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vars[idx[a]] > vars[idx[b]] })
	selected := append([]int(nil), idx[:selectDims]...)
	sort.Ints(selected)

	sub := make([][]float64, len(x))
	for i, row := range x {
		sub[i] = pick(row, selected)
	}
	pca, err := mat.FitPCA(sub, pcaDims)
	if err != nil {
		return nil, err
	}
	r := &Reducer{selected: selected, pca: pca}
	k := pca.Dim()
	r.compsT = make([]float64, len(selected)*k)
	for c, axis := range pca.Components {
		for j, w := range axis {
			r.compsT[j*k+c] = w
		}
	}
	return r, nil
}

// Project maps a full-dimension feature into the reduced space.
func (r *Reducer) Project(v []float64) []float64 {
	return r.ProjectInto(make([]float64, r.Dim()), v)
}

// ProjectInto maps a full-dimension feature into the reduced space, writing
// into dst (length Dim). Variance selection and PCA centering are fused into
// one pass so the call performs no heap allocation; Search projects queries
// through pooled scratch buffers with it.
func (r *Reducer) ProjectInto(dst, v []float64) []float64 {
	k := len(r.pca.Components)
	if len(dst) != k {
		panic(mat.ErrDimension)
	}
	mean := r.pca.Mean
	for i := range dst {
		dst[i] = 0
	}
	for j, src := range r.selected {
		x := v[src] - mean[j]
		row := r.compsT[j*k : (j+1)*k]
		for c, w := range row {
			dst[c] += x * w
		}
	}
	return dst
}

// Dim is the reduced dimensionality.
func (r *Reducer) Dim() int { return r.pca.Dim() }

func pick(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = v[j]
	}
	return out
}
