package index

// Shard-merge helpers. A sharded library fans a search across independent
// per-shard indexes and merges the per-shard hit lists into one global
// ranking. The merge re-ranks every candidate with the exact full-space
// distance (per-shard Dist values live in each shard's own reduced space
// and are not comparable across shards) and orders by the total order
// (distance, video name, shot index), so the merged ranking is
// deterministic and independent of how entries were partitioned.

import (
	"math"
	"sort"

	"classminer/internal/vidmodel"
)

// ShotSqDist is the exact full-dimension squared distance between a query
// and a shot's (colour ++ texture) feature, computed without materialising
// the concatenated vector. It is the re-ranking metric behind MergeHits.
func ShotSqDist(s *vidmodel.Shot, query []float64) float64 {
	return shotSqDistBounded(s, query, math.Inf(1))
}

// MergeHits merges per-shard hit lists into the global top-k, re-ranking
// every candidate with ShotSqDist and breaking ties by (video name, shot
// index) — a total order over the library, so the result is byte-identical
// no matter how the entries were sharded. k <= 0 keeps every candidate.
// The merged hits are appended to dst[:0] with exact full-space Dist
// values; lists is not modified.
func MergeHits(dst []Result, query []float64, lists [][]Result, k int) []Result {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	items := make([]mergeItem, 0, total)
	for _, l := range lists {
		for i := range l {
			e := l[i].Entry
			items = append(items, mergeItem{sq: shotSqDistBounded(e.Shot, query, math.Inf(1)), e: e})
		}
	}
	sort.Slice(items, func(i, j int) bool { return mergeLess(items[i], items[j]) })
	if k > 0 && len(items) > k {
		items = items[:k]
	}
	dst = dst[:0]
	for _, it := range items {
		dst = append(dst, Result{Entry: it.e, Dist: math.Sqrt(it.sq)})
	}
	return dst
}

// MergeCost reports the Stats cost of re-ranking the given per-shard lists:
// one exact distance per candidate. The router adds it to the summed
// per-shard stats so /v1/search cost accounting stays honest.
func MergeCost(lists [][]Result, queryDim int) Stats {
	var st Stats
	for _, l := range lists {
		st.DistanceOps += len(l)
		st.FloatOps += len(l) * queryDim
	}
	return st
}

type mergeItem struct {
	sq float64
	e  *Entry
}

func mergeLess(a, b mergeItem) bool {
	if a.sq != b.sq {
		return a.sq < b.sq
	}
	if a.e.VideoName != b.e.VideoName {
		return a.e.VideoName < b.e.VideoName
	}
	return a.e.Shot.Index < b.e.Shot.Index
}
