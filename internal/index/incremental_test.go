package index

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"classminer/internal/feature"
	"classminer/internal/vidmodel"
)

// corpusEntry fabricates one entry shaped like corpus()'s cluster pi, so
// inserted entries are drawn from the same distribution the index was fit
// on.
func corpusEntry(pi int, video string, shotIdx int, rng *rand.Rand) *Entry {
	paths := [][]string{
		{"medical education", "medicine", "medicine/presentation"},
		{"medical education", "medicine", "medicine/dialog"},
		{"medical education", "medicine", "medicine/clinical operation"},
		{"medical education", "nursing", "nursing/dialog"},
		{"health care", "health care/general"},
		{"medical report", "medical report/general"},
	}
	pi = pi % len(paths)
	c := make([]float64, feature.ColorBins)
	base := (pi*37 + 11) % (feature.ColorBins - 8)
	for j := 0; j < 6; j++ {
		c[base+j] += 0.12 + rng.Float64()*0.04
	}
	c[rng.Intn(feature.ColorBins)] += 0.05
	normalise(c)
	tx := make([]float64, feature.TextureDims)
	tx[pi%feature.TextureDims] = 0.8
	tx[(pi+3)%feature.TextureDims] = 0.2
	return &Entry{
		VideoName: video,
		Shot:      &vidmodel.Shot{Index: shotIdx, Start: shotIdx * 30, End: (shotIdx + 1) * 30, Color: c, Texture: tx},
		Path:      paths[pi],
	}
}

func mustInsert(t testing.TB, ix *Index, e *Entry) *Index {
	t.Helper()
	nix, err := ix.Insert(e)
	if err != nil {
		t.Fatal(err)
	}
	return nix
}

// TestInsertMakesEntrySearchable: an inserted entry is the top self-query
// hit immediately, with no rebuild.
func TestInsertMakesEntrySearchable(t *testing.T) {
	entries := corpus(120, 1)
	ix, err := Build(entries, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var added []*Entry
	for i := 0; i < 18; i++ {
		e := corpusEntry(i, fmt.Sprintf("new-%d", i%6), 1000+i, rng)
		added = append(added, e)
		ix = mustInsert(t, ix, e)
	}
	if got := ix.Size(); got != 120+18 {
		t.Fatalf("Size = %d, want %d", got, 138)
	}
	for _, e := range added {
		res, _ := ix.Search(e.Shot.Feature(), 1)
		if len(res) == 0 || res[0].Entry != e {
			t.Fatalf("inserted entry %s/%d not top self-query hit", e.VideoName, e.Shot.Index)
		}
	}
	if s := ix.Staleness(); s <= 0 || s > 0.2 {
		t.Fatalf("Staleness = %v, want (0, 0.2]", s)
	}
}

// TestRemoveMasksEntries: removed videos stop appearing in results while
// the previous index of the chain still serves them.
func TestRemoveMasksEntries(t *testing.T) {
	entries := corpus(120, 2)
	ix, err := Build(entries, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	victim := "video-0"
	var q []float64
	for _, e := range entries {
		if e.VideoName == victim {
			q = e.Shot.Feature()
			break
		}
	}
	nix, n := ix.Remove(victim)
	if n == 0 {
		t.Fatal("Remove reported no entries masked")
	}
	if nix.Size() != ix.Size()-n {
		t.Fatalf("Size after remove = %d, want %d", nix.Size(), ix.Size()-n)
	}
	// Old index still ranks the victim; the new one never does.
	res, _ := ix.Search(q, 10)
	found := false
	for _, h := range res {
		if h.Entry.VideoName == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("old index lost the victim (copy-on-write broken)")
	}
	res, _ = nix.Search(q, 10)
	for _, h := range res {
		if h.Entry.VideoName == victim {
			t.Fatalf("removed video %q still ranked", victim)
		}
	}
	// Removing again is a no-op returning the same index.
	again, n2 := nix.Remove(victim)
	if n2 != 0 || again != nix {
		t.Fatalf("second Remove = (%p, %d), want identity no-op", again, n2)
	}
}

// TestInsertRejectsUnknownPath: a path with no leaf in the built tree needs
// a full rebuild and must say so.
func TestInsertRejectsUnknownPath(t *testing.T) {
	ix, err := Build(corpus(60, 3), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	e := corpusEntry(0, "new", 999, rng)
	e.Path = []string{"medical education", "dentistry", "dentistry/dialog"}
	if _, err := ix.Insert(e); !errors.Is(err, ErrNoLeaf) {
		t.Fatalf("Insert with unknown path = %v, want ErrNoLeaf", err)
	}
	// A path stopping at a non-leaf is equally unroutable.
	e.Path = []string{"medical education", "medicine"}
	if _, err := ix.Insert(e); !errors.Is(err, ErrNoLeaf) {
		t.Fatalf("Insert with non-leaf path = %v, want ErrNoLeaf", err)
	}
	// Dimension mismatches are refused before any mutation.
	bad := corpusEntry(0, "bad", 1000, rng)
	bad.Shot.Texture = bad.Shot.Texture[:feature.TextureDims-1]
	if _, err := ix.Insert(bad); err == nil {
		t.Fatal("Insert with wrong dimensionality succeeded")
	}
}

// TestIncrementalMatchesRebuild is the golden equivalence check: a chain of
// inserts and removes answers queries with the same hit sets as an index
// rebuilt from scratch over the same final entry list. Distances in the
// incremental index come from the *old* fit's reduced spaces, so only hit
// identity (which is what a user sees) is compared, on well-separated
// queries.
func TestIncrementalMatchesRebuild(t *testing.T) {
	base := corpus(180, 4)
	ix, err := Build(base, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	live := append([]*Entry(nil), base...)
	for i := 0; i < 24; i++ {
		e := corpusEntry(i, fmt.Sprintf("delta-%d", i%6), 2000+i, rng)
		live = append(live, e)
		ix = mustInsert(t, ix, e)
	}
	victim := "video-3"
	ix, _ = ix.Remove(victim)
	kept := live[:0]
	for _, e := range live {
		if e.VideoName != victim {
			kept = append(kept, e)
		}
	}
	rebuilt, err := Build(kept, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The refit learns slightly different reduced spaces, which legitimately
	// reorders near-ties deep in the ranking; what must hold is that the
	// nearest answer (a self-query's own shot, distance zero in any space)
	// is identical, and that the top-5 candidate *sets* overlap strongly.
	// (The exact-equality golden test lives at the library level, over
	// geometrically separated data — see TestIncrementalGoldenEquivalence.)
	const queries = 40
	top1 := 0
	overlap, possible := 0, 0
	key := func(r Result) string { return fmt.Sprintf("%s/%d", r.Entry.VideoName, r.Entry.Shot.Index) }
	for qi := 0; qi < queries; qi++ {
		q := kept[(qi*17)%len(kept)].Shot.Feature()
		a, _ := ix.Search(q, 5)
		b, _ := rebuilt.Search(q, 5)
		if len(a) > 0 && len(b) > 0 && key(a[0]) == key(b[0]) {
			top1++
		}
		in := map[string]bool{}
		for _, r := range a {
			in[key(r)] = true
		}
		for _, r := range b {
			if in[key(r)] {
				overlap++
			}
		}
		possible += len(b)
	}
	if top1 < queries*9/10 {
		t.Fatalf("top-1 agreement %d/%d, want >= %d", top1, queries, queries*9/10)
	}
	if overlap*10 < possible*6 {
		t.Fatalf("top-5 set overlap %d/%d, want >= 60%%", overlap, possible)
	}
	for _, h := range mustSearchAll(t, ix, kept) {
		if h.Entry.VideoName == victim {
			t.Fatalf("victim %q resurfaced", victim)
		}
	}
}

func mustSearchAll(t *testing.T, ix *Index, kept []*Entry) []Result {
	t.Helper()
	var out []Result
	for i := 0; i < 10; i++ {
		res, _ := ix.Search(kept[i*7%len(kept)].Shot.Feature(), 8)
		out = append(out, res...)
	}
	return out
}

// TestInsertConcurrentWithSearch: searches against every index of a
// copy-on-write chain race with the single writer extending it. Run with
// -race; the invariant is that a snapshot always answers from its own
// entry set.
func TestInsertConcurrentWithSearch(t *testing.T) {
	entries := corpus(120, 5)
	ix, err := Build(entries, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := entries[0].Shot.Feature()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(snapshot *Index) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, _ := snapshot.Search(q, 5)
				if len(res) == 0 {
					t.Error("snapshot search returned nothing")
					return
				}
			}
		}(ix)
	}
	rng := rand.New(rand.NewSource(5))
	cur := ix
	for i := 0; i < 64; i++ {
		cur = mustInsert(t, cur, corpusEntry(i, fmt.Sprintf("w-%d", i%6), 3000+i, rng))
		if i%16 == 0 {
			cur, _ = cur.Remove(fmt.Sprintf("w-%d", (i/16)%6))
		}
		res, _ := cur.Search(q, 5)
		if len(res) == 0 {
			t.Fatal("chained index search returned nothing")
		}
	}
	close(stop)
	wg.Wait()
}

// TestSearchIntoZeroAllocAfterInsert: once the shared scratch pool has
// warmed up to the post-insert sizes, SearchInto allocates nothing.
func TestSearchIntoZeroAllocAfterInsert(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	forceParallel(t)
	entries := corpus(240, 6)
	ix, err := Build(entries, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 80; i++ {
		ix = mustInsert(t, ix, corpusEntry(i, fmt.Sprintf("z-%d", i%6), 4000+i, rng))
	}
	q := entries[3].Shot.Feature()
	dst := make([]Result, 0, 16)
	for i := 0; i < 8; i++ { // warm the pool to the grown bitset size
		dst, _ = ix.SearchInto(dst[:0], q, 10)
	}
	avg := testing.AllocsPerRun(200, func() {
		dst, _ = ix.SearchInto(dst[:0], q, 10)
	})
	if avg != 0 {
		t.Fatalf("SearchInto after inserts allocates %.1f per run, want 0", avg)
	}
}

// benchmarkInsert measures one Insert against an index of n entries; the
// acceptance bar is that the cost does not scale with n.
func benchmarkInsert(b *testing.B, n int) {
	entries := corpus(n, 9)
	ix, err := Build(entries, Options{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	fresh := make([]*Entry, b.N)
	for i := range fresh {
		fresh[i] = corpusEntry(i, fmt.Sprintf("b-%d", i%6), n+i, rng)
	}
	b.ResetTimer()
	cur := ix
	for i := 0; i < b.N; i++ {
		nix, err := cur.Insert(fresh[i])
		if err != nil {
			b.Fatal(err)
		}
		cur = nix
	}
}

func BenchmarkIndexInsert1k(b *testing.B)  { benchmarkInsert(b, 1_000) }
func BenchmarkIndexInsert10k(b *testing.B) { benchmarkInsert(b, 10_000) }
