package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"classminer/internal/feature"
	"classminer/internal/vidmodel"
)

// corpus builds entries spread over a 3-cluster concept tree. Shots within
// a leaf share a colour-bin neighbourhood so the hierarchy is learnable.
func corpus(n int, seed int64) []*Entry {
	rng := rand.New(rand.NewSource(seed))
	paths := [][]string{
		{"medical education", "medicine", "medicine/presentation"},
		{"medical education", "medicine", "medicine/dialog"},
		{"medical education", "medicine", "medicine/clinical operation"},
		{"medical education", "nursing", "nursing/dialog"},
		{"health care", "health care/general"},
		{"medical report", "medical report/general"},
	}
	var out []*Entry
	for i := 0; i < n; i++ {
		pi := i % len(paths)
		c := make([]float64, feature.ColorBins)
		// Leaf-specific base bins plus noise mass.
		base := (pi*37 + 11) % (feature.ColorBins - 8)
		for j := 0; j < 6; j++ {
			c[base+j] += 0.12 + rng.Float64()*0.04
		}
		c[rng.Intn(feature.ColorBins)] += 0.05
		normalise(c)
		tx := make([]float64, feature.TextureDims)
		tx[pi%feature.TextureDims] = 0.8
		tx[(pi+3)%feature.TextureDims] = 0.2
		out = append(out, &Entry{
			VideoName: fmt.Sprintf("video-%d", pi),
			Shot: &vidmodel.Shot{
				Index: i, Start: i * 30, End: (i + 1) * 30,
				Color: c, Texture: tx,
			},
			Path: paths[pi],
		})
	}
	return out
}

func normalise(v []float64) {
	var s float64
	for _, x := range v {
		s += x
	}
	for i := range v {
		v[i] /= s
	}
}

func TestBuildAndSelfQuery(t *testing.T) {
	entries := corpus(240, 1)
	ix, err := Build(entries, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 240 {
		t.Fatalf("size = %d", ix.Size())
	}
	// Self-queries must return the queried shot first (distance 0).
	hits := 0
	for i := 0; i < 40; i++ {
		e := entries[i*6%len(entries)]
		res, _ := ix.Search(e.Shot.Feature(), 1)
		if len(res) > 0 && res[0].Entry == e {
			hits++
		}
	}
	if hits < 36 {
		t.Fatalf("self-query top-1 hits = %d/40, want >= 36", hits)
	}
}

func TestSearchAgreesWithFlatScan(t *testing.T) {
	entries := corpus(300, 2)
	ix, err := Build(entries, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	agree := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		q := entries[rng.Intn(len(entries))].Shot.Feature()
		// Perturb the query a little (a near-duplicate shot).
		qq := append([]float64(nil), q...)
		for j := 0; j < 8; j++ {
			qq[rng.Intn(len(qq))] += rng.Float64() * 0.01
		}
		flat, _ := FlatSearch(entries, qq, 1)
		hier, _ := ix.Search(qq, 5)
		for _, h := range hier {
			if h.Entry == flat[0].Entry {
				agree++
				break
			}
		}
	}
	if agree < trials*8/10 {
		t.Fatalf("hierarchical search agreed with flat scan %d/%d times", agree, trials)
	}
}

func TestSearchCostBelowFlat(t *testing.T) {
	entries := corpus(600, 4)
	ix, err := Build(entries, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := entries[123].Shot.Feature()
	_, flatStats := FlatSearch(entries, q, 10)
	_, hierStats := ix.Search(q, 10)
	if hierStats.FloatOps*3 > flatStats.FloatOps {
		t.Fatalf("hierarchical cost %d float-ops not well below flat %d",
			hierStats.FloatOps, flatStats.FloatOps)
	}
	if hierStats.Candidates >= flatStats.Candidates {
		t.Fatalf("ranked candidates %d should be below flat %d",
			hierStats.Candidates, flatStats.Candidates)
	}
}

func TestSearchScalesSublinearly(t *testing.T) {
	small := corpus(120, 5)
	large := corpus(960, 5)
	ixS, err := Build(small, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ixL, err := Build(large, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := small[7].Shot.Feature()
	_, sStats := ixS.Search(q, 5)
	_, lStats := ixL.Search(q, 5)
	// An 8x database must cost far less than 8x the float ops.
	if lStats.FloatOps > sStats.FloatOps*4 {
		t.Fatalf("scaling: %d -> %d float ops for 8x data", sStats.FloatOps, lStats.FloatOps)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("want error on empty entries")
	}
	bad := corpus(6, 6)
	bad[3].Path = nil
	if _, err := Build(bad, Options{}); err == nil {
		t.Fatal("want error on empty path")
	}
}

func TestLeaves(t *testing.T) {
	ix, err := Build(corpus(60, 7), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	leaves := ix.Leaves()
	if len(leaves) != 6 {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestFlatSearchRanking(t *testing.T) {
	entries := corpus(60, 8)
	q := entries[10].Shot.Feature()
	res, stats := FlatSearch(entries, q, 3)
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Entry != entries[10] || res[0].Dist > 1e-9 {
		t.Fatal("self query must rank itself first at distance 0")
	}
	if res[0].Dist > res[1].Dist || res[1].Dist > res[2].Dist {
		t.Fatal("results must be sorted by distance")
	}
	if stats.DistanceOps != 60 {
		t.Fatalf("flat scan distance ops = %d, want 60", stats.DistanceOps)
	}
	if stats.FloatOps != 60*(feature.ColorBins+feature.TextureDims) {
		t.Fatalf("flat scan float ops = %d", stats.FloatOps)
	}
}

func TestReducerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([][]float64, 50)
	for i := range x {
		row := make([]float64, 20)
		// Two informative dims, rest near-constant noise.
		row[3] = rng.NormFloat64() * 5
		row[11] = rng.NormFloat64() * 3
		for j := range row {
			row[j] += rng.NormFloat64() * 0.01
		}
		x[i] = row
	}
	r, err := FitReducer(x, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dim() != 2 {
		t.Fatalf("Dim = %d", r.Dim())
	}
	// The informative dims must be among the selected ones.
	found := 0
	for _, s := range r.selected {
		if s == 3 || s == 11 {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("variance selection missed informative dims: %v", r.selected)
	}
}

func TestReducerErrors(t *testing.T) {
	if _, err := FitReducer(nil, 4, 2); err == nil {
		t.Fatal("want error on empty fit")
	}
}

func BenchmarkHierarchicalSearch(b *testing.B) {
	entries := corpus(1200, 10)
	ix, err := Build(entries, Options{Seed: 10})
	if err != nil {
		b.Fatal(err)
	}
	q := entries[17].Shot.Feature()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10)
	}
}

func BenchmarkFlatSearch(b *testing.B) {
	entries := corpus(1200, 11)
	q := entries[17].Shot.Feature()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlatSearch(entries, q, 10)
	}
}

// TestConcurrentSearch exercises the documented guarantee that a built
// index serves any number of goroutines without shared mutable state.
// Run with -race to make it meaningful.
func TestConcurrentSearch(t *testing.T) {
	entries := corpus(240, 5)
	ix, err := Build(entries, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := entries[(w*31+i*7)%len(entries)].Shot.Feature()
				hits, stats := ix.Search(q, 5)
				if len(hits) == 0 || stats.DistanceOps <= 0 {
					t.Errorf("worker %d: hits=%d stats=%+v", w, len(hits), stats)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
