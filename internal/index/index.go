// Package index implements the cluster-based hierarchical database index of
// §2 and §6.2: a tree derived from the concept hierarchy whose non-leaf
// nodes summarise their content with multiple centers (because high-level
// concepts mix several visual components, a single Gaussian cannot model
// them) and whose leaf nodes index shots with a hash table. Search descends
// only into relevant units and computes distances in reduced feature
// subspaces, reproducing the Tc ≪ Te total-cost comparison of Eqs. (24)–(25).
//
// Storage is flat and contiguous: entries are numbered at Build, all full
// features live in one row-major matrix, and every leaf precomputes one
// projection matrix over its rows. The search hot path runs on pooled
// per-call scratch (query projections, candidate lists, a seen-bitset keyed
// by entry ID, a bounded top-k max-heap), so steady-state SearchInto
// performs zero heap allocations.
package index

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"classminer/internal/mat"
	"classminer/internal/trace"
	"classminer/internal/vidmodel"
)

// Entry is one indexed shot.
type Entry struct {
	VideoName string
	Shot      *vidmodel.Shot
	// Path locates the entry in the concept hierarchy, e.g.
	// ["medical education", "medicine", "medicine/dialog"].
	Path []string
}

// Options tunes index construction. Zero values become defaults.
type Options struct {
	Centers    int // centers per non-leaf node (default 3)
	SelectDims int // variance-selected coordinates (default 48)
	PCADims    int // principal components per node (default 16)
	HashDims   int // leading reduced dims hashed at leaves (default 4)
	Beam       int // children explored per level during search (default 2)
	Seed       int64
}

func (o Options) withDefaults() Options {
	if o.Centers <= 0 {
		o.Centers = 3
	}
	if o.SelectDims <= 0 {
		o.SelectDims = 48
	}
	if o.PCADims <= 0 {
		o.PCADims = 16
	}
	if o.HashDims <= 0 {
		o.HashDims = 4
	}
	if o.HashDims > maxHashDims {
		o.HashDims = maxHashDims
	}
	if o.Beam <= 0 {
		o.Beam = 2
	}
	return o
}

// Stats counts the work a search performed, the quantities of Eqs. (24)
// and (25): distance computations per level, the float dimensions touched,
// and the size of the ranked candidate set.
type Stats struct {
	DistanceOps int // total distance computations
	FloatOps    int // Σ dims over all distance computations
	Candidates  int // entries ranked (the M_o log M_o term)
}

// Result is one ranked search hit.
type Result struct {
	Entry *Entry
	Dist  float64
}

// Index is the built hierarchical index. A built Index is immutable with
// respect to searches; Insert and Remove extend it copy-on-write (see
// incremental.go), returning a new Index that shares all unchanged
// structure with its predecessor.
type Index struct {
	opts  Options
	root  *node
	all   []*Entry
	feats *mat.Dense // row i = full feature vector of entry i (build-time rows)

	// Incremental overlay state. baseRows is feats.R at the last full fit;
	// entries inserted since then keep their full features in extraFeats
	// (row id-baseRows, feats.C wide) and are counted by inserted. removed
	// is a bitset over global entry IDs masking deleted entries (nil when
	// none); removedCount tallies its set bits. The overlay is bounded in
	// practice by the caller's staleness budget — once
	// (inserted+removed)/baseRows exceeds it, a full refit is warranted.
	baseRows     int
	extraFeats   []float64
	inserted     int
	removed      []uint64
	removedCount int

	maxDim    int // widest reducer output across nodes (scratch sizing)
	seenWords int // words in the per-search seen-bitset
	// scratch is shared by every index in a copy-on-write chain (clones
	// copy the pointer), so pooled buffers survive Insert/Remove and
	// steady-state searches stay allocation-free; SearchInto grows a pooled
	// bitset when inserts have outgrown it.
	scratch *sync.Pool
}

type node struct {
	name     string
	children map[string]*node
	order    []string // deterministic child order
	// Non-leaf routing state.
	reducer *Reducer
	centers map[string][][]float64 // child name -> centers in this node's space
	// Leaf state, flat storage: ids are global entry IDs in insertion
	// order, proj row r is the reduced feature of entry ids[r], and the
	// hash maps quantised cells to leaf-local rows.
	ids  []int32
	proj *mat.Dense
	hash map[cellKey][]int32
	cell []float64 // per-dim hash cell width
	// Incremental overlay: entries inserted after the fit. extraIDs extends
	// ids (leaf row len(ids)+i refers to extraIDs[i]) and extraProj holds
	// their reduced features (reducer.Dim() wide rows). Extras are not
	// hashed — they are unconditionally candidates at this leaf, which is
	// exact (never misses) and stays cheap because the staleness budget
	// bounds how many exist before a refit folds them in.
	extraIDs  []int32
	extraProj []float64
}

// rows is the leaf's total candidate row count, base plus overlay.
func (n *node) rows() int { return len(n.ids) + len(n.extraIDs) }

// idAt maps a leaf row to its global entry ID across both regions.
func (n *node) idAt(row int32) int32 {
	if int(row) < len(n.ids) {
		return n.ids[row]
	}
	return n.extraIDs[int(row)-len(n.ids)]
}

// projRow returns the leaf-space reduced feature of a leaf row.
func (n *node) projRow(row int32, dim int) []float64 {
	if int(row) < len(n.ids) {
		return n.proj.Row(int(row))
	}
	r := int(row) - len(n.ids)
	return n.extraProj[r*dim : (r+1)*dim]
}

// cellKey is a fixed-width quantised signature of the leading reduced
// dimensions; unused dimensions stay zero.
type cellKey [maxHashDims]int32

const maxHashDims = 4

// Build constructs the index from entries. Every entry must carry a
// non-empty path. The full feature matrix is extracted once here; callers
// that already hold one (e.g. a Library that reuses it across rebuilds)
// should use BuildMatrix instead.
func Build(entries []*Entry, opts Options) (*Index, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("index: no entries")
	}
	d := len(entries[0].Shot.Color) + len(entries[0].Shot.Texture)
	feats := &mat.Dense{R: len(entries), C: d, Data: make([]float64, 0, len(entries)*d)}
	for i, e := range entries {
		if len(e.Shot.Color)+len(e.Shot.Texture) != d {
			return nil, fmt.Errorf("index: entry %d has %d feature dims, want %d",
				i, len(e.Shot.Color)+len(e.Shot.Texture), d)
		}
		feats.Data = append(feats.Data, e.Shot.Color...)
		feats.Data = append(feats.Data, e.Shot.Texture...)
	}
	return BuildMatrix(entries, feats, opts)
}

// BuildMatrix constructs the index from entries whose full features are
// already laid out as rows of feats (row i belongs to entries[i]). Both
// the entry slice and the matrix are retained by the index and must never
// be mutated afterwards: a built Index is immutable, and every concurrent
// search reads entry pointers and feature rows straight out of them. A
// caller that later shrinks its own entry set (classminer's
// DeleteVideo/ReplaceVideo) must therefore rebuild into fresh backing
// arrays and hand the next BuildMatrix the new ones — the old index keeps
// serving its snapshot untouched until it is swapped out.
func BuildMatrix(entries []*Entry, feats *mat.Dense, opts Options) (*Index, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("index: no entries")
	}
	if len(entries) > math.MaxInt32 {
		return nil, fmt.Errorf("index: %d entries exceed the int32 ID space", len(entries))
	}
	if feats == nil || feats.R != len(entries) {
		return nil, fmt.Errorf("index: feature matrix must have one row per entry")
	}
	opts = opts.withDefaults()
	ix := &Index{opts: opts, root: newNode("database"), all: entries, feats: feats}
	for i, e := range entries {
		if len(e.Path) == 0 {
			return nil, fmt.Errorf("index: entry %d has empty path", i)
		}
		cur := ix.root
		for _, name := range e.Path {
			next, ok := cur.children[name]
			if !ok {
				next = newNode(name)
				cur.children[name] = next
				cur.order = append(cur.order, name)
			}
			cur = next
		}
		cur.ids = append(cur.ids, int32(i))
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	// Every node's entry-ID list is computed exactly once, bottom-up, and
	// handed to fit — nothing re-walks the tree per level.
	idsOf := map[*node][]int32{}
	collectIDs(ix.root, idsOf)
	if err := ix.fit(ix.root, idsOf, rng); err != nil {
		return nil, err
	}
	ix.baseRows = feats.R
	ix.maxDim = maxReducerDim(ix.root)
	ix.seenWords = (len(entries) + 63) / 64
	pool := &sync.Pool{}
	seenWords, maxDim := ix.seenWords, ix.maxDim
	pool.New = func() any { return newScratch(maxDim, seenWords) }
	ix.scratch = pool
	return ix, nil
}

func newNode(name string) *node {
	return &node{name: name, children: map[string]*node{}}
}

// collectIDs fills out with every node's entry-ID list (leaf insertion
// order, children concatenated in deterministic order) in one post-order
// pass.
func collectIDs(n *node, out map[*node][]int32) []int32 {
	if len(n.children) == 0 {
		out[n] = n.ids
		return n.ids
	}
	var ids []int32
	for _, name := range n.order {
		ids = append(ids, collectIDs(n.children[name], out)...)
	}
	out[n] = ids
	return ids
}

func maxReducerDim(n *node) int {
	d := 0
	if n.reducer != nil {
		d = n.reducer.Dim()
	}
	for _, c := range n.children {
		if cd := maxReducerDim(c); cd > d {
			d = cd
		}
	}
	return d
}

// fit trains each node: reducers and per-child centers at non-leaf nodes,
// the hash table at leaves. The node's entry list arrives precomputed.
func (ix *Index) fit(n *node, idsOf map[*node][]int32, rng *rand.Rand) error {
	ids := idsOf[n]
	if len(ids) == 0 {
		return fmt.Errorf("index: node %q has no entries", n.name)
	}
	reducer, err := FitReducer(ix.feats.RowsAt(ids), ix.opts.SelectDims, ix.opts.PCADims)
	if err != nil {
		return fmt.Errorf("index: node %q: %w", n.name, err)
	}
	n.reducer = reducer

	if len(n.children) == 0 {
		return ix.fitLeaf(n)
	}
	n.centers = map[string][][]float64{}
	for _, name := range n.order {
		child := n.children[name]
		childIDs := idsOf[child]
		pts := mat.NewDense(len(childIDs), reducer.Dim())
		for i, id := range childIDs {
			reducer.ProjectInto(pts.Row(i), ix.feats.Row(int(id)))
		}
		k := ix.opts.Centers
		if k > pts.R {
			k = pts.R
		}
		km, err := mat.KMeans(pts.Rows(), k, rng, 40)
		if err != nil {
			return fmt.Errorf("index: centers for %q: %w", name, err)
		}
		n.centers[name] = km.Centers
		if err := ix.fit(child, idsOf, rng); err != nil {
			return err
		}
	}
	return nil
}

// fitLeaf projects the leaf's entries into one contiguous matrix and builds
// the hash table over quantised reduced signatures.
func (ix *Index) fitLeaf(n *node) error {
	dims := n.reducer.Dim()
	h := ix.opts.HashDims
	if h > dims {
		h = dims
	}
	n.proj = mat.NewDense(len(n.ids), dims)
	for r, id := range n.ids {
		n.reducer.ProjectInto(n.proj.Row(r), ix.feats.Row(int(id)))
	}
	// Cell width per hashed dim: half the standard deviation keeps bucket
	// occupancy moderate without scattering near-identical shots.
	n.cell = make([]float64, h)
	for d := 0; d < h; d++ {
		var mean, ss float64
		for r := 0; r < n.proj.R; r++ {
			mean += n.proj.Data[r*dims+d]
		}
		mean /= float64(n.proj.R)
		for r := 0; r < n.proj.R; r++ {
			dv := n.proj.Data[r*dims+d] - mean
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(n.proj.R))
		if sd < 1e-9 {
			sd = 1e-9
		}
		n.cell[d] = sd / 2
	}
	n.hash = map[cellKey][]int32{}
	for r := 0; r < n.proj.R; r++ {
		key := n.hashKey(n.proj.Row(r))
		n.hash[key] = append(n.hash[key], int32(r))
	}
	return nil
}

func (n *node) hashKey(p []float64) cellKey {
	var k cellKey
	for d := range n.cell {
		k[d] = int32(math.Floor(p[d] / n.cell[d]))
	}
	return k
}

// candRef locates one candidate: its leaf, its leaf-local projection row,
// and its global entry ID.
type candRef struct {
	leaf *node
	row  int32
	id   int32
}

// heapItem is one bounded top-k entry ordered by (sq, id); id breaks ties
// deterministically.
type heapItem struct {
	sq float64
	id int32
}

// searchScratch is the per-call mutable state of one search, recycled
// through Index.scratch so steady-state searches allocate nothing.
type searchScratch struct {
	qproj  []float64 // query projection (maxDim)
	eproj  []float64 // on-demand sibling-entry projection (maxDim)
	leaves []*node
	scored []scoredChild
	cands  []candRef
	heap   []heapItem
	seen   []uint64   // bitset over global entry IDs
	ring   [3][]int32 // leaf rows grouped by Chebyshev radius 0..2
}

type scoredChild struct {
	child *node
	dist  float64
}

func newScratch(maxDim, seenWords int) *searchScratch {
	return &searchScratch{
		qproj: make([]float64, maxDim),
		eproj: make([]float64, maxDim),
		seen:  make([]uint64, seenWords),
	}
}

// addCand records a candidate once; the seen-bitset dedupes across leaves
// and hash cells. removed, when non-nil, is the index's deletion mask —
// masked entries never become candidates.
func (sc *searchScratch) addCand(leaf *node, row int32, removed []uint64) {
	id := leaf.idAt(row)
	w, b := id>>6, uint(id&63)
	// The mask was sized when the last Remove ran; entries inserted since
	// lie past its end and are never masked.
	if int(w) < len(removed) && removed[w]&(1<<b) != 0 {
		return
	}
	if sc.seen[w]&(1<<b) != 0 {
		return
	}
	sc.seen[w] |= 1 << b
	sc.cands = append(sc.cands, candRef{leaf: leaf, row: row, id: id})
}

// Search finds the k nearest indexed shots to the query feature (a 266-dim
// Shot.Feature vector), descending only through the most relevant database
// units. It returns the ranked results and the §6.2 cost statistics.
//
// Search is safe for concurrent use by any number of goroutines: a built
// Index is immutable, and all mutable search state — the Stats accumulator
// included — lives in pooled per-call scratch, never shared. The serving
// layer relies on this to answer queries in parallel against one index
// snapshot. Search allocates only the returned result slice; reuse one via
// SearchInto to reach zero allocations per query.
func (ix *Index) Search(query []float64, k int) ([]Result, Stats) {
	return ix.SearchInto(nil, query, k)
}

// SearchInto is Search writing its results into dst (grown only when its
// capacity is insufficient, so a reused buffer makes steady-state searches
// allocation-free). The returned slice aliases dst.
func (ix *Index) SearchInto(dst []Result, query []float64, k int) ([]Result, Stats) {
	return ix.SearchIntoSpans(dst, query, k, nil)
}

// SearchIntoSpans is SearchInto with per-stage tracing: when sp is a live
// span, the hierarchical descent ("project" — the per-level subspace
// projections), candidate gathering ("scan") and ranking ("rank") each
// record a child span. A nil sp (the untraced and unsampled paths) costs
// nothing — spans come from the trace's pooled arena, so the zero-alloc
// search contract holds either way.
func (ix *Index) SearchIntoSpans(dst []Result, query []float64, k int, sp *trace.Span) ([]Result, Stats) {
	var stats Stats
	if k <= 0 {
		k = 1
	}
	sc := ix.scratch.Get().(*searchScratch)
	if len(sc.seen) < ix.seenWords {
		// The pool is shared along the copy-on-write chain; inserts since
		// this scratch was created may have outgrown its bitset.
		sc.seen = make([]uint64, ix.seenWords)
	}
	stage := sp.Start("project")
	ix.descend(ix.root, query, sc, &stats)
	stage.End()
	// leafCandidates falls back to the whole leaf when the hash is
	// exhausted, so sc.cands misses a live entry of a visited leaf only
	// when k is already satisfied nearer. It can be empty outright when
	// removals masked every entry of every visited leaf — rank then
	// returns no hits.
	stage = sp.Start("scan")
	for _, leaf := range sc.leaves {
		ix.leafCandidates(leaf, query, k, sc)
	}
	stage.SetInt("leaves", int64(len(sc.leaves)))
	stage.SetInt("candidates", int64(len(sc.cands)))
	stage.End()
	stage = sp.Start("rank")
	dst = ix.rank(dst, sc.leaves[0], query, k, sc, &stats)
	stage.End()
	for _, c := range sc.cands {
		sc.seen[c.id>>6] = 0
	}
	sc.leaves = sc.leaves[:0]
	sc.cands = sc.cands[:0]
	ix.scratch.Put(sc)
	return dst, stats
}

// SearchBatch answers many queries concurrently, one goroutine per core,
// each pulling its own scratch from the pool. results[i] and stats[i]
// correspond to queries[i].
func (ix *Index) SearchBatch(queries [][]float64, k int) ([][]Result, []Stats) {
	results := make([][]Result, len(queries))
	stats := make([]Stats, len(queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			results[i], stats[i] = ix.Search(q, k)
		}
		return results, stats
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				results[i], stats[i] = ix.Search(queries[i], k)
			}
		}()
	}
	wg.Wait()
	return results, stats
}

// descend routes the query down the tree, keeping the Beam best children
// at each level by distance to their centers. Reached leaves are appended
// to sc.leaves.
func (ix *Index) descend(n *node, query []float64, sc *searchScratch, stats *Stats) {
	if len(n.children) == 0 {
		sc.leaves = append(sc.leaves, n)
		return
	}
	p := n.reducer.ProjectInto(sc.qproj[:n.reducer.Dim()], query)
	start := len(sc.scored)
	for _, name := range n.order {
		best := math.Inf(1)
		for _, c := range n.centers[name] {
			stats.DistanceOps++
			stats.FloatOps += len(c)
			if d := mat.SqDist(p, c); d < best {
				best = d
			}
		}
		sc.scored = append(sc.scored, scoredChild{child: n.children[name], dist: best})
	}
	// Insertion sort: child counts are small, and avoiding sort.Slice keeps
	// the path allocation-free. cs stays readable even if a nested descend
	// grows sc.scored into a new backing array.
	cs := sc.scored[start:]
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].dist < cs[j-1].dist; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	beam := ix.opts.Beam
	if beam > len(cs) {
		beam = len(cs)
	}
	for i := 0; i < beam; i++ {
		ix.descend(cs[i].child, query, sc, stats)
	}
	sc.scored = sc.scored[:start]
}

// leafCandidates looks up the query's hash cell and expands outward shell
// by shell until at least k candidates are found (or the ring is
// exhausted, in which case the whole leaf is the candidate set). Entries
// inserted after the fit are not hashed, so they join the candidate set
// unconditionally first — an inserted entry must be findable immediately,
// and the shell early-exits below must not preempt it.
func (ix *Index) leafCandidates(leaf *node, query []float64, k int, sc *searchScratch) {
	for r := len(leaf.ids); r < leaf.rows(); r++ {
		sc.addCand(leaf, int32(r), ix.removed)
	}
	p := leaf.reducer.ProjectInto(sc.qproj[:leaf.reducer.Dim()], query)
	h := len(leaf.cell)
	var base [maxHashDims]int
	for d := 0; d < h; d++ {
		base[d] = int(math.Floor(p[d] / leaf.cell[d]))
	}
	start := len(sc.cands)
	// Two equivalent ways to gather the radius-0..2 cells: probe every
	// shell cell in the hash, or scan the occupied cells once and bucket
	// them by radius. Scanning wins whenever the leaf has fewer occupied
	// cells than the ~1+3^h+5^h probes enumeration would issue.
	probes := 1 + pow3[h] + pow5[h]
	if len(leaf.hash) < probes {
		for key, rows := range leaf.hash {
			r := chebyshev(key, base[:h])
			if r <= 2 {
				sc.ring[r] = append(sc.ring[r], rows...)
			}
		}
		done := false
		for radius := 0; radius <= 2; radius++ {
			if !done {
				for _, row := range sc.ring[radius] {
					sc.addCand(leaf, row, ix.removed)
				}
				if len(sc.cands)-start >= k {
					done = true
				}
			}
			sc.ring[radius] = sc.ring[radius][:0]
		}
		if done {
			return
		}
	} else {
		for radius := 0; radius <= 2; radius++ {
			ix.collectShell(leaf, base[:h], radius, sc)
			if len(sc.cands)-start >= k {
				return
			}
		}
	}
	// Hash exhausted: fall back to the whole leaf (still only the relevant
	// scene node, never the full database). Rows already collected above
	// are deduped by the seen-bitset.
	for r := 0; r < len(leaf.ids); r++ {
		sc.addCand(leaf, int32(r), ix.removed)
	}
}

// pow3 and pow5 tabulate 3^h and 5^h for the supported hash widths.
var (
	pow3 = [maxHashDims + 1]int{1, 3, 9, 27, 81}
	pow5 = [maxHashDims + 1]int{1, 5, 25, 125, 625}
)

// chebyshev returns the L∞ distance between a cell key and the query's base
// cell over the first len(base) dimensions.
func chebyshev(key cellKey, base []int) int {
	r := 0
	for d, b := range base {
		dv := int(key[d]) - b
		if dv < 0 {
			dv = -dv
		}
		if dv > r {
			r = dv
		}
	}
	return r
}

// collectShell gathers entries from exactly the cells at Chebyshev radius r
// around base (the shell max|offset| == r, not the whole ball): an odometer
// enumerates the first h-1 offsets, and the last dimension ranges fully
// only when an earlier dimension already sits at ±r — otherwise it is
// pinned to ±r.
func (ix *Index) collectShell(leaf *node, base []int, r int, sc *searchScratch) {
	h := len(base)
	if h == 0 {
		return
	}
	var key cellKey
	if r == 0 {
		for d, b := range base {
			key[d] = int32(b)
		}
		for _, row := range leaf.hash[key] {
			sc.addCand(leaf, row, ix.removed)
		}
		return
	}
	var offs [maxHashDims]int
	for d := 0; d < h-1; d++ {
		offs[d] = -r
	}
	last := h - 1
	for {
		onShell := false
		for d := 0; d < last; d++ {
			key[d] = int32(base[d] + offs[d])
			if offs[d] == -r || offs[d] == r {
				onShell = true
			}
		}
		if onShell {
			for o := -r; o <= r; o++ {
				key[last] = int32(base[last] + o)
				for _, row := range leaf.hash[key] {
					sc.addCand(leaf, row, ix.removed)
				}
			}
		} else {
			key[last] = int32(base[last] - r)
			for _, row := range leaf.hash[key] {
				sc.addCand(leaf, row, ix.removed)
			}
			key[last] = int32(base[last] + r)
			for _, row := range leaf.hash[key] {
				sc.addCand(leaf, row, ix.removed)
			}
		}
		d := last - 1
		for ; d >= 0; d-- {
			offs[d]++
			if offs[d] <= r {
				break
			}
			offs[d] = -r
		}
		if d < 0 {
			return
		}
	}
}

// rank scores every candidate in the primary leaf's reduced space (the To
// term: even ranking uses discriminating features only) through a bounded
// top-k max-heap with early-abandoning distances. Candidates from the
// primary leaf use its precomputed projection rows; candidates routed in
// from a sibling leaf (beam > 1) are projected on demand into scratch.
func (ix *Index) rank(dst []Result, primary *node, query []float64, k int, sc *searchScratch, stats *Stats) []Result {
	dim := primary.reducer.Dim()
	p := primary.reducer.ProjectInto(sc.qproj[:dim], query)
	heap := sc.heap[:0]
	for _, c := range sc.cands {
		stats.DistanceOps++
		stats.FloatOps += dim
		var ep []float64
		if c.leaf == primary {
			ep = primary.projRow(c.row, dim)
		} else {
			ep = primary.reducer.ProjectInto(sc.eproj[:dim], ix.featRow(c.id))
		}
		if len(heap) < k {
			heap = append(heap, heapItem{sq: mat.SqDistBounded(p, ep, math.Inf(1)), id: c.id})
			if len(heap) == k {
				heapifyItems(heap)
			}
		} else {
			bound := heap[0].sq
			sq := mat.SqDistBounded(p, ep, bound)
			if sq < bound || (sq == bound && c.id < heap[0].id) {
				heap[0] = heapItem{sq: sq, id: c.id}
				siftDown(heap, 0)
			}
		}
	}
	stats.Candidates = len(sc.cands)
	sortItems(heap)
	if cap(dst) < len(heap) {
		dst = make([]Result, len(heap))
	} else {
		dst = dst[:len(heap)]
	}
	for i, it := range heap {
		dst[i] = Result{Entry: ix.all[it.id], Dist: math.Sqrt(it.sq)}
	}
	sc.heap = heap[:0]
	return dst
}

// itemGreater orders heap items by (sq, id) so the max-heap root is the
// current worst kept candidate and ties resolve deterministically.
func itemGreater(a, b heapItem) bool {
	return a.sq > b.sq || (a.sq == b.sq && a.id > b.id)
}

func heapifyItems(h []heapItem) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func siftDown(h []heapItem, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		big := l
		if r := l + 1; r < len(h) && itemGreater(h[r], h[l]) {
			big = r
		}
		if !itemGreater(h[big], h[i]) {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// sortItems orders items ascending by (sq, id) via in-place heapsort — no
// comparator closures, no allocations.
func sortItems(h []heapItem) {
	heapifyItems(h)
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h[:end], 0)
	}
}

// shotSqDistBounded is the full-dimension squared distance between a query
// and a shot's (colour ++ texture) feature, computed without materialising
// the concatenated vector and abandoning once the sum exceeds bound.
func shotSqDistBounded(s *vidmodel.Shot, query []float64, bound float64) float64 {
	nc := len(s.Color)
	if len(query) != nc+len(s.Texture) {
		panic(mat.ErrDimension)
	}
	sum := mat.SqDistBounded(query[:nc], s.Color, bound)
	if sum > bound {
		return sum
	}
	for i, v := range s.Texture {
		d := query[nc+i] - v
		sum += d * d
	}
	return sum
}

// flatShardMin is the smallest per-goroutine chunk worth spawning for; it
// also gates whether FlatSearch shards at all.
const flatShardMin = 256

// FlatSearch is the unindexed baseline of Eq. (24): every entry in the
// database is compared with the query in the full feature space. k <= 0
// ranks the whole database. Large databases are scanned in parallel
// (goroutine per chunk, each keeping a local top-k, merged at the end);
// results are deterministic regardless of sharding because ranking uses
// the (distance, entry position) total order.
func FlatSearch(entries []*Entry, query []float64, k int) ([]Result, Stats) {
	var stats Stats
	n := len(entries)
	for _, e := range entries {
		stats.DistanceOps++
		stats.FloatOps += len(e.Shot.Color) + len(e.Shot.Texture)
	}
	stats.Candidates = n
	if n == 0 {
		return nil, stats
	}
	if k <= 0 || k > n {
		k = n
	}
	workers := runtime.GOMAXPROCS(0)
	if max := n / flatShardMin; workers > max {
		workers = max
	}
	var top []heapItem
	if workers <= 1 {
		top = flatScanTopK(entries, 0, query, k)
		sortItems(top)
	} else {
		shards := make([][]heapItem, workers)
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				shards[w] = flatScanTopK(entries[lo:hi], lo, query, k)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, s := range shards {
			top = append(top, s...)
		}
		sortItems(top)
		if len(top) > k {
			top = top[:k]
		}
	}
	results := make([]Result, len(top))
	for i, it := range top {
		results[i] = Result{Entry: entries[it.id], Dist: math.Sqrt(it.sq)}
	}
	return results, stats
}

// flatScanTopK scans one chunk keeping a bounded top-k; off converts chunk
// positions back to database positions for deterministic tie-breaking.
func flatScanTopK(entries []*Entry, off int, query []float64, k int) []heapItem {
	heap := make([]heapItem, 0, k)
	for i, e := range entries {
		id := int32(off + i)
		if len(heap) < k {
			heap = append(heap, heapItem{sq: shotSqDistBounded(e.Shot, query, math.Inf(1)), id: id})
			if len(heap) == k {
				heapifyItems(heap)
			}
			continue
		}
		bound := heap[0].sq
		sq := shotSqDistBounded(e.Shot, query, bound)
		if sq < bound || (sq == bound && id < heap[0].id) {
			heap[0] = heapItem{sq: sq, id: id}
			siftDown(heap, 0)
		}
	}
	return heap
}

// featRow returns the full feature vector of a global entry ID, whichever
// region it lives in.
func (ix *Index) featRow(id int32) []float64 {
	if int(id) < ix.baseRows {
		return ix.feats.Row(int(id))
	}
	r := int(id) - ix.baseRows
	return ix.extraFeats[r*ix.feats.C : (r+1)*ix.feats.C]
}

// Size returns the number of live indexed entries (inserted entries count,
// removed entries do not).
func (ix *Index) Size() int { return len(ix.all) - ix.removedCount }

// Leaves returns the leaf concept names, in deterministic order.
func (ix *Index) Leaves() []string {
	var out []string
	var walk func(n *node)
	walk = func(n *node) {
		if len(n.children) == 0 {
			out = append(out, n.name)
			return
		}
		for _, name := range n.order {
			walk(n.children[name])
		}
	}
	walk(ix.root)
	return out
}
