// Package index implements the cluster-based hierarchical database index of
// §2 and §6.2: a tree derived from the concept hierarchy whose non-leaf
// nodes summarise their content with multiple centers (because high-level
// concepts mix several visual components, a single Gaussian cannot model
// them) and whose leaf nodes index shots with a hash table. Search descends
// only into relevant units and computes distances in reduced feature
// subspaces, reproducing the Tc ≪ Te total-cost comparison of Eqs. (24)–(25).
package index

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"classminer/internal/mat"
	"classminer/internal/vidmodel"
)

// Entry is one indexed shot.
type Entry struct {
	VideoName string
	Shot      *vidmodel.Shot
	// Path locates the entry in the concept hierarchy, e.g.
	// ["medical education", "medicine", "medicine/dialog"].
	Path []string
}

// Options tunes index construction. Zero values become defaults.
type Options struct {
	Centers    int // centers per non-leaf node (default 3)
	SelectDims int // variance-selected coordinates (default 48)
	PCADims    int // principal components per node (default 16)
	HashDims   int // leading reduced dims hashed at leaves (default 4)
	Beam       int // children explored per level during search (default 2)
	Seed       int64
}

func (o Options) withDefaults() Options {
	if o.Centers <= 0 {
		o.Centers = 3
	}
	if o.SelectDims <= 0 {
		o.SelectDims = 48
	}
	if o.PCADims <= 0 {
		o.PCADims = 16
	}
	if o.HashDims <= 0 {
		o.HashDims = 4
	}
	if o.HashDims > maxHashDims {
		o.HashDims = maxHashDims
	}
	if o.Beam <= 0 {
		o.Beam = 2
	}
	return o
}

// Stats counts the work a search performed, the quantities of Eqs. (24)
// and (25): distance computations per level, the float dimensions touched,
// and the size of the ranked candidate set.
type Stats struct {
	DistanceOps int // total distance computations
	FloatOps    int // Σ dims over all distance computations
	Candidates  int // entries ranked (the M_o log M_o term)
}

// Result is one ranked search hit.
type Result struct {
	Entry *Entry
	Dist  float64
}

// Index is the built hierarchical index.
type Index struct {
	opts Options
	root *node
	all  []*Entry
}

type node struct {
	name     string
	children map[string]*node
	order    []string // deterministic child order
	// Non-leaf routing state.
	reducer *Reducer
	centers map[string][][]float64 // child name -> centers in this node's space
	// Leaf state.
	entries []*Entry
	hash    map[cellKey][]*Entry
	cell    []float64            // per-dim hash cell width
	proj    map[*Entry][]float64 // entry features pre-projected at build
}

// cellKey is a fixed-width quantised signature of the leading reduced
// dimensions; unused dimensions stay zero.
type cellKey [maxHashDims]int32

const maxHashDims = 4

// Build constructs the index from entries. Every entry must carry a
// non-empty path.
func Build(entries []*Entry, opts Options) (*Index, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("index: no entries")
	}
	opts = opts.withDefaults()
	ix := &Index{opts: opts, root: newNode("database"), all: entries}
	for i, e := range entries {
		if len(e.Path) == 0 {
			return nil, fmt.Errorf("index: entry %d has empty path", i)
		}
		cur := ix.root
		for _, name := range e.Path {
			next, ok := cur.children[name]
			if !ok {
				next = newNode(name)
				cur.children[name] = next
				cur.order = append(cur.order, name)
			}
			cur = next
		}
		cur.entries = append(cur.entries, e)
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	if err := ix.fit(ix.root, rng); err != nil {
		return nil, err
	}
	return ix, nil
}

func newNode(name string) *node {
	return &node{name: name, children: map[string]*node{}}
}

// gather returns all entries under the node.
func (n *node) gather() []*Entry {
	if len(n.children) == 0 {
		return n.entries
	}
	var out []*Entry
	for _, name := range n.order {
		out = append(out, n.children[name].gather()...)
	}
	return out
}

// fit trains each node: reducers and per-child centers at non-leaf nodes,
// the hash table at leaves.
func (ix *Index) fit(n *node, rng *rand.Rand) error {
	sub := n.gather()
	if len(sub) == 0 {
		return fmt.Errorf("index: node %q has no entries", n.name)
	}
	features := make([][]float64, len(sub))
	for i, e := range sub {
		features[i] = e.Shot.Feature()
	}
	reducer, err := FitReducer(features, ix.opts.SelectDims, ix.opts.PCADims)
	if err != nil {
		return fmt.Errorf("index: node %q: %w", n.name, err)
	}
	n.reducer = reducer

	if len(n.children) == 0 {
		return ix.fitLeaf(n, features)
	}
	n.centers = map[string][][]float64{}
	for _, name := range n.order {
		child := n.children[name]
		childEntries := child.gather()
		pts := make([][]float64, len(childEntries))
		for i, e := range childEntries {
			pts[i] = reducer.Project(e.Shot.Feature())
		}
		k := ix.opts.Centers
		if k > len(pts) {
			k = len(pts)
		}
		km, err := mat.KMeans(pts, k, rng, 40)
		if err != nil {
			return fmt.Errorf("index: centers for %q: %w", name, err)
		}
		n.centers[name] = km.Centers
		if err := ix.fit(child, rng); err != nil {
			return err
		}
	}
	return nil
}

// fitLeaf builds the leaf hash table over quantised reduced signatures.
func (ix *Index) fitLeaf(n *node, features [][]float64) error {
	dims := n.reducer.Dim()
	h := ix.opts.HashDims
	if h > dims {
		h = dims
	}
	// Cell width per hashed dim: half the standard deviation keeps bucket
	// occupancy moderate without scattering near-identical shots.
	proj := make([][]float64, len(features))
	for i, f := range features {
		proj[i] = n.reducer.Project(f)
	}
	n.cell = make([]float64, h)
	for d := 0; d < h; d++ {
		var mean, ss float64
		for _, p := range proj {
			mean += p[d]
		}
		mean /= float64(len(proj))
		for _, p := range proj {
			dv := p[d] - mean
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(len(proj)))
		if sd < 1e-9 {
			sd = 1e-9
		}
		n.cell[d] = sd / 2
	}
	n.hash = map[cellKey][]*Entry{}
	n.proj = make(map[*Entry][]float64, len(n.entries))
	for i, e := range n.entries {
		key := n.hashKey(proj[i])
		n.hash[key] = append(n.hash[key], e)
		n.proj[e] = proj[i]
	}
	return nil
}

func (n *node) hashKey(p []float64) cellKey {
	var k cellKey
	for d := range n.cell {
		k[d] = int32(math.Floor(p[d] / n.cell[d]))
	}
	return k
}

// Search finds the k nearest indexed shots to the query feature (a 266-dim
// Shot.Feature vector), descending only through the most relevant database
// units. It returns the ranked results and the §6.2 cost statistics.
//
// Search is safe for concurrent use by any number of goroutines: a built
// Index is immutable, and all mutable search state — the Stats accumulator
// included — is allocated per call, never shared. The serving layer relies
// on this to answer queries in parallel against one index snapshot.
func (ix *Index) Search(query []float64, k int) ([]Result, Stats) {
	var stats Stats
	if k <= 0 {
		k = 1
	}
	leaves := ix.descend(ix.root, query, &stats)
	var candidates []*Entry
	seen := map[*Entry]bool{}
	for _, leaf := range leaves {
		for _, e := range ix.leafCandidates(leaf, query, k, &stats) {
			if !seen[e] {
				seen[e] = true
				candidates = append(candidates, e)
			}
		}
	}
	if len(candidates) == 0 {
		for _, leaf := range leaves {
			for _, e := range leaf.entries {
				if !seen[e] {
					seen[e] = true
					candidates = append(candidates, e)
				}
			}
		}
	}
	results := rankReduced(leaves[0], candidates, query, &stats)
	if len(results) > k {
		results = results[:k]
	}
	return results, stats
}

// descend routes the query down the tree, keeping the Beam best children
// at each level by distance to their centers.
func (ix *Index) descend(n *node, query []float64, stats *Stats) []*node {
	if len(n.children) == 0 {
		return []*node{n}
	}
	p := n.reducer.Project(query)
	type scored struct {
		child *node
		dist  float64
	}
	var sc []scored
	for _, name := range n.order {
		best := math.Inf(1)
		for _, c := range n.centers[name] {
			stats.DistanceOps++
			stats.FloatOps += len(c)
			if d := mat.SqDist(p, c); d < best {
				best = d
			}
		}
		sc = append(sc, scored{child: n.children[name], dist: best})
	}
	sort.Slice(sc, func(a, b int) bool { return sc[a].dist < sc[b].dist })
	beam := ix.opts.Beam
	if beam > len(sc) {
		beam = len(sc)
	}
	var out []*node
	for i := 0; i < beam; i++ {
		out = append(out, ix.descend(sc[i].child, query, stats)...)
	}
	return out
}

// leafCandidates looks up the query's hash cell and expands outward until
// at least k candidates are found (or the ring is exhausted).
func (ix *Index) leafCandidates(leaf *node, query []float64, k int, stats *Stats) []*Entry {
	p := leaf.reducer.Project(query)
	h := len(leaf.cell)
	base := make([]int, h)
	for d := 0; d < h; d++ {
		base[d] = int(math.Floor(p[d] / leaf.cell[d]))
	}
	var out []*Entry
	for radius := 0; radius <= 2; radius++ {
		out = out[:0]
		ix.collectRing(leaf, base, radius, &out)
		if len(out) >= k {
			return out
		}
	}
	if len(out) < k {
		// Hash exhausted: fall back to the whole leaf (still only the
		// relevant scene node, never the full database).
		return leaf.entries
	}
	return out
}

// collectRing gathers entries from all cells within Chebyshev radius r.
func (ix *Index) collectRing(leaf *node, base []int, r int, out *[]*Entry) {
	h := len(base)
	var key cellKey
	var walk func(d int)
	walk = func(d int) {
		if d == h {
			*out = append(*out, leaf.hash[key]...)
			return
		}
		for o := -r; o <= r; o++ {
			key[d] = int32(base[d] + o)
			walk(d + 1)
		}
	}
	walk(0)
}

// rankReduced ranks candidates by distance in the leaf's reduced space (the
// To term: even ranking uses discriminating features only). Candidate
// projections were precomputed at build time; candidates routed in from a
// sibling leaf (beam > 1) are projected on demand.
func rankReduced(leaf *node, candidates []*Entry, query []float64, stats *Stats) []Result {
	p := leaf.reducer.Project(query)
	results := make([]Result, 0, len(candidates))
	for _, e := range candidates {
		stats.DistanceOps++
		stats.FloatOps += leaf.reducer.Dim()
		ep, ok := leaf.proj[e]
		if !ok {
			ep = leaf.reducer.Project(e.Shot.Feature())
		}
		results = append(results, Result{Entry: e, Dist: mat.Dist(p, ep)})
	}
	stats.Candidates = len(results)
	sort.Slice(results, func(a, b int) bool { return results[a].Dist < results[b].Dist })
	return results
}

// FlatSearch is the unindexed baseline of Eq. (24): every entry in the
// database is compared with the query in the full feature space and the
// whole result set is ranked.
func FlatSearch(entries []*Entry, query []float64, k int) ([]Result, Stats) {
	var stats Stats
	results := make([]Result, 0, len(entries))
	for _, e := range entries {
		f := e.Shot.Feature()
		stats.DistanceOps++
		stats.FloatOps += len(f)
		results = append(results, Result{Entry: e, Dist: mat.Dist(query, f)})
	}
	stats.Candidates = len(results)
	sort.Slice(results, func(a, b int) bool { return results[a].Dist < results[b].Dist })
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, stats
}

// Size returns the number of indexed entries.
func (ix *Index) Size() int { return len(ix.all) }

// Leaves returns the leaf concept names, in deterministic order.
func (ix *Index) Leaves() []string {
	var out []string
	var walk func(n *node)
	walk = func(n *node) {
		if len(n.children) == 0 {
			out = append(out, n.name)
			return
		}
		for _, name := range n.order {
			walk(n.children[name])
		}
	}
	walk(ix.root)
	return out
}
