package index

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"classminer/internal/feature"
	"classminer/internal/vidmodel"
)

// forceParallel raises GOMAXPROCS so the sharded/batched code paths run
// their goroutine fan-out even on single-CPU machines (where they would
// otherwise fall back to the sequential path and go untested).
func forceParallel(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// singleLeafCorpus builds entries that all live under one leaf concept.
func singleLeafCorpus(n int, seed int64) []*Entry {
	rng := rand.New(rand.NewSource(seed))
	var out []*Entry
	for i := 0; i < n; i++ {
		c := make([]float64, feature.ColorBins)
		for j := 0; j < 6; j++ {
			c[(i*29+j)%feature.ColorBins] += 0.1 + rng.Float64()*0.05
		}
		normalise(c)
		tx := make([]float64, feature.TextureDims)
		tx[i%feature.TextureDims] = 1
		out = append(out, &Entry{
			VideoName: "v",
			Shot:      &vidmodel.Shot{Index: i, Start: i * 30, End: (i + 1) * 30, Color: c, Texture: tx},
			Path:      []string{"medical education", "medicine", "medicine/other"},
		})
	}
	return out
}

// TestHashExhaustedFallback exercises the leafCandidates path where the
// ring search up to radius 2 cannot produce k candidates: a query far from
// every occupied hash cell must fall back to the whole leaf and still rank
// every entry.
func TestHashExhaustedFallback(t *testing.T) {
	entries := singleLeafCorpus(5, 21)
	ix, err := Build(entries, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// A query with all histogram mass in one far-off bin projects well away
	// from the data's hash cells.
	q := make([]float64, feature.ColorBins+feature.TextureDims)
	q[feature.ColorBins-1] = 40
	q[feature.ColorBins] = -35
	res, stats := ix.Search(q, 10)
	if len(res) != len(entries) {
		t.Fatalf("fallback results = %d, want all %d leaf entries", len(res), len(entries))
	}
	if stats.Candidates != len(entries) {
		t.Fatalf("fallback candidates = %d, want %d", stats.Candidates, len(entries))
	}
	seen := map[*Entry]bool{}
	for i, r := range res {
		seen[r.Entry] = true
		if i > 0 && res[i-1].Dist > r.Dist {
			t.Fatalf("results not sorted at %d: %v > %v", i, res[i-1].Dist, r.Dist)
		}
	}
	if len(seen) != len(entries) {
		t.Fatalf("fallback returned duplicates: %d unique of %d", len(seen), len(res))
	}
}

// TestBeamCrossLeafRanking exercises beam > 1: candidates routed in from a
// sibling leaf have no precomputed projection in the primary leaf's space
// and must be projected on demand, then ranked in one ordered list.
func TestBeamCrossLeafRanking(t *testing.T) {
	entries := corpus(120, 22) // 6 leaves, 20 entries each
	ix, err := Build(entries, Options{Seed: 22, Beam: 3})
	if err != nil {
		t.Fatal(err)
	}
	leafOf := func(e *Entry) string { return e.Path[len(e.Path)-1] }
	q := entries[0].Shot.Feature()
	res, _ := ix.Search(q, 60)
	if len(res) < 30 {
		t.Fatalf("beam search returned %d results", len(res))
	}
	leaves := map[string]bool{}
	for i, r := range res {
		leaves[leafOf(r.Entry)] = true
		if i > 0 && res[i-1].Dist > r.Dist {
			t.Fatalf("cross-leaf ranking unsorted at %d: %v > %v", i, res[i-1].Dist, r.Dist)
		}
	}
	if len(leaves) < 2 {
		t.Fatalf("beam=3 search stayed inside one leaf: %v", leaves)
	}
	// On-demand projection must agree with the precomputed rows: the same
	// query re-ranked with beam 1 must give the same leading distances for
	// primary-leaf entries.
	ix1, err := Build(entries, Options{Seed: 22, Beam: 1})
	if err != nil {
		t.Fatal(err)
	}
	res1, _ := ix1.Search(q, 5)
	if math.Abs(res[0].Dist-res1[0].Dist) > 1e-9 {
		t.Fatalf("beam-3 top dist %v != beam-1 top dist %v", res[0].Dist, res1[0].Dist)
	}
}

// tieCorpus builds entries where many shots share identical features, so
// ranking is dominated by tie-breaking.
func tieCorpus(n int) []*Entry {
	var out []*Entry
	for i := 0; i < n; i++ {
		c := make([]float64, feature.ColorBins)
		// Only 3 distinct feature vectors across n entries: heavy ties.
		c[(i%3)*10] = 1
		tx := make([]float64, feature.TextureDims)
		tx[0] = 1
		out = append(out, &Entry{
			VideoName: "tie",
			Shot:      &vidmodel.Shot{Index: i, Color: c, Texture: tx},
			Path:      []string{"medical education", "medicine", "medicine/other"},
		})
	}
	return out
}

// TestTopKHeapMatchesFullSortOnTies verifies the bounded-heap top-k agrees
// with a full (dist, position) sort even when nearly all distances tie:
// identical distance sequence, and identical entries wherever the tie-break
// order is defined.
func TestTopKHeapMatchesFullSortOnTies(t *testing.T) {
	entries := tieCorpus(90)
	q := entries[0].Shot.Feature()
	full, _ := FlatSearch(entries, q, 0) // ranks the whole database
	pos := map[*Entry]int{}
	for i, e := range entries {
		pos[e] = i
	}
	ref := append([]Result(nil), full...)
	sort.SliceStable(ref, func(a, b int) bool {
		if ref[a].Dist != ref[b].Dist {
			return ref[a].Dist < ref[b].Dist
		}
		return pos[ref[a].Entry] < pos[ref[b].Entry]
	})
	for _, k := range []int{1, 7, 30, 89, 90} {
		top, _ := FlatSearch(entries, q, k)
		if len(top) != k {
			t.Fatalf("k=%d: got %d results", k, len(top))
		}
		for i := range top {
			if top[i].Dist != ref[i].Dist {
				t.Fatalf("k=%d hit %d: dist %v, full sort %v", k, i, top[i].Dist, ref[i].Dist)
			}
			if top[i].Entry != ref[i].Entry {
				t.Fatalf("k=%d hit %d: entry %d, full sort %d",
					k, i, pos[top[i].Entry], pos[ref[i].Entry])
			}
		}
	}
}

// TestFlatSearchMatchesNaiveScan pins the sharded parallel scan against a
// naive single-threaded reference over a corpus large enough to shard.
func TestFlatSearchMatchesNaiveScan(t *testing.T) {
	forceParallel(t)
	entries := corpus(2000, 23)
	q := entries[777].Shot.Feature()
	got, stats := FlatSearch(entries, q, 25)
	if stats.DistanceOps != 2000 || stats.Candidates != 2000 {
		t.Fatalf("stats = %+v", stats)
	}
	type ref struct {
		idx  int
		dist float64
	}
	refs := make([]ref, len(entries))
	for i, e := range entries {
		var s float64
		f := e.Shot.Feature()
		for j := range f {
			d := q[j] - f[j]
			s += d * d
		}
		refs[i] = ref{idx: i, dist: math.Sqrt(s)}
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].dist != refs[b].dist {
			return refs[a].dist < refs[b].dist
		}
		return refs[a].idx < refs[b].idx
	})
	if len(got) != 25 {
		t.Fatalf("results = %d", len(got))
	}
	for i, r := range got {
		if math.Abs(r.Dist-refs[i].dist) > 1e-9 {
			t.Fatalf("hit %d: dist %v, reference %v", i, r.Dist, refs[i].dist)
		}
		if r.Entry != entries[refs[i].idx] {
			t.Fatalf("hit %d: wrong entry", i)
		}
	}
}

// TestSearchBatchMatchesSearch verifies the concurrent batch path returns
// exactly what sequential Search returns, query by query.
func TestSearchBatchMatchesSearch(t *testing.T) {
	forceParallel(t)
	entries := corpus(300, 24)
	ix, err := Build(entries, Options{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	var queries [][]float64
	for i := 0; i < 40; i++ {
		q := append([]float64(nil), entries[rng.Intn(len(entries))].Shot.Feature()...)
		q[rng.Intn(len(q))] += rng.Float64() * 0.02
		queries = append(queries, q)
	}
	batch, bstats := ix.SearchBatch(queries, 8)
	if len(batch) != len(queries) {
		t.Fatalf("batch results = %d", len(batch))
	}
	for i, q := range queries {
		single, sstats := ix.Search(q, 8)
		if len(batch[i]) != len(single) {
			t.Fatalf("query %d: batch %d hits, single %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if batch[i][j].Entry != single[j].Entry || batch[i][j].Dist != single[j].Dist {
				t.Fatalf("query %d hit %d: batch %+v, single %+v", i, j, batch[i][j], single[j])
			}
		}
		if bstats[i] != sstats {
			t.Fatalf("query %d: batch stats %+v, single %+v", i, bstats[i], sstats)
		}
	}
}

// TestSearchIntoZeroAlloc asserts the acceptance criterion directly:
// steady-state SearchInto with a reused result buffer performs no heap
// allocations.
func TestSearchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	entries := corpus(600, 26)
	ix, err := Build(entries, Options{Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	q := entries[11].Shot.Feature()
	dst := make([]Result, 0, 16)
	// Warm the scratch pool and the dst capacity.
	for i := 0; i < 8; i++ {
		dst, _ = ix.SearchInto(dst, q, 10)
	}
	avg := testing.AllocsPerRun(200, func() {
		dst, _ = ix.SearchInto(dst, q, 10)
	})
	// A GC between runs can steal pooled scratch, so allow a tiny average;
	// steady state must still round to zero.
	if avg >= 1 {
		t.Fatalf("SearchInto allocates %.2f objects per call, want 0", avg)
	}
}

// TestBuildMatrixErrors covers the flat-matrix construction contract.
func TestBuildMatrixErrors(t *testing.T) {
	entries := corpus(12, 27)
	if _, err := BuildMatrix(entries, nil, Options{}); err == nil {
		t.Fatal("want error on nil feature matrix")
	}
	ix, err := Build(entries, Options{Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 12 {
		t.Fatalf("size = %d", ix.Size())
	}
}

// BenchmarkIndexSearch is the steady-state hot path: SearchInto with a
// reused result buffer must report 0 allocs/op.
func BenchmarkIndexSearch(b *testing.B) {
	entries := corpus(1200, 10)
	ix, err := Build(entries, Options{Seed: 10})
	if err != nil {
		b.Fatal(err)
	}
	q := entries[17].Shot.Feature()
	dst := make([]Result, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = ix.SearchInto(dst, q, 10)
	}
}

// BenchmarkIndexSearchBatch measures the parallel fan-out over one index.
func BenchmarkIndexSearchBatch(b *testing.B) {
	entries := corpus(1200, 12)
	ix, err := Build(entries, Options{Seed: 12})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 32)
	for i := range queries {
		queries[i] = entries[(i*37)%len(entries)].Shot.Feature()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchBatch(queries, 10)
	}
}
