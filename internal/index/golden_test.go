package index

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// goldenHit is one recorded search hit: the entry's position in the corpus
// slice and its reported distance.
type goldenHit struct {
	Entry int     `json:"entry"`
	Dist  float64 `json:"dist"`
}

// goldenCase is the recorded answer for one query.
type goldenCase struct {
	Hits []goldenHit `json:"hits"`
}

const goldenPath = "testdata/search_golden.json"

// goldenQueries builds a deterministic query set: perturbed corpus features
// plus a few far-off vectors that exercise ring expansion.
func goldenQueries(entries []*Entry) [][]float64 {
	rng := rand.New(rand.NewSource(77))
	var out [][]float64
	for i := 0; i < 25; i++ {
		q := append([]float64(nil), entries[(i*13)%len(entries)].Shot.Feature()...)
		for j := 0; j < 8; j++ {
			q[rng.Intn(len(q))] += rng.Float64() * 0.01
		}
		out = append(out, q)
	}
	return out
}

// TestSearchGolden pins Search results against a recording of the
// pre-flat-storage implementation: the refactored hot path must return the
// same entries at the same distances, with reordering permitted only within
// groups of tied distances. Regenerate with GOLDEN_UPDATE=1 go test.
func TestSearchGolden(t *testing.T) {
	entries := corpus(300, 2)
	ix, err := Build(entries, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*Entry]int{}
	for i, e := range entries {
		pos[e] = i
	}
	var got []goldenCase
	for _, q := range goldenQueries(entries) {
		res, _ := ix.Search(q, 10)
		var c goldenCase
		for _, r := range res {
			c.Hits = append(c.Hits, goldenHit{Entry: pos[r.Entry], Dist: r.Dist})
		}
		got = append(got, c)
	}
	if os.Getenv("GOLDEN_UPDATE") != "" {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d cases", len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cases = %d, want %d", len(got), len(want))
	}
	for ci := range want {
		compareUpToTies(t, ci, got[ci].Hits, want[ci].Hits)
	}
}

// compareUpToTies requires identical distance sequences and identical entry
// sets within each run of (numerically) tied distances. The final tie group
// is exempt from the set comparison: when more entries tie at the k-th
// distance than fit, either implementation may keep any of them, so only
// the distances (already compared element-wise) must agree there.
func compareUpToTies(t *testing.T, ci int, got, want []goldenHit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("case %d: hits = %d, want %d", ci, len(got), len(want))
	}
	const eps = 1e-9
	for i := range want {
		if math.Abs(got[i].Dist-want[i].Dist) > eps {
			t.Fatalf("case %d hit %d: dist = %.12f, want %.12f", ci, i, got[i].Dist, want[i].Dist)
		}
	}
	i := 0
	for i < len(want) {
		j := i + 1
		for j < len(want) && math.Abs(want[j].Dist-want[i].Dist) <= eps {
			j++
		}
		if j == len(want) {
			break // possibly-truncated boundary tie group
		}
		ws := map[int]bool{}
		gs := map[int]bool{}
		for k := i; k < j; k++ {
			ws[want[k].Entry] = true
			gs[got[k].Entry] = true
		}
		for e := range ws {
			if !gs[e] {
				t.Fatalf("case %d tie group [%d,%d): entry %d missing (got %v)", ci, i, j, e, got[i:j])
			}
		}
		i = j
	}
}
