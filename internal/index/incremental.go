// Incremental index maintenance: copy-on-write Insert and Remove keep a
// built index searchable across registrations and deletions without the
// O(library) refit of BuildMatrix. An inserted entry is routed down the
// existing tree by its concept path to its leaf, its projected row and full
// feature appended to overlay arrays — no PCA or k-means is refit, so the
// routing and ranking spaces stay those of the last full fit. A removed
// entry is masked by a bitset. Both return a *new* Index sharing all
// unchanged structure with the old one: concurrent searches keep running
// against whichever index they started with.
//
// Single-writer contract: Insert and Remove must be called on the newest
// index of a chain only, serialised by the caller (classminer.Library holds
// its write lock). Overlay slices are extended append-style — an older
// index's readers never look past their own lengths, so sharing the grown
// backing arrays down the chain is safe under that discipline, exactly like
// the library's flat feature matrix.
//
// Accuracy: the overlay is exact for candidate generation (extras are
// unconditionally candidates at their leaf; masked entries never rank), but
// the reduced spaces drift from what a full refit would learn as the
// overlay grows. Staleness reports that fraction so callers can budget a
// coalesced rebuild (classminer.Library.RebuildNeeded).
package index

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoLeaf reports an entry whose concept path does not end at an existing
// leaf of the built tree: a brand-new concept needs reducers and centers no
// incremental step can supply, so the caller must fall back to a full
// rebuild.
var ErrNoLeaf = errors.New("index: entry path has no leaf in the built tree (full rebuild required)")

// Insert returns a new Index extended with e, routed to the leaf its
// concept path names. The cost is O(path depth + reduced dim), independent
// of how many entries the index holds. The receiving index must be the
// newest of its chain (see the package comment's single-writer contract);
// it remains valid — and unchanged — for concurrent searches.
func (ix *Index) Insert(e *Entry) (*Index, error) {
	if e == nil || e.Shot == nil {
		return nil, fmt.Errorf("index: nil entry")
	}
	if len(e.Path) == 0 {
		return nil, fmt.Errorf("index: entry has empty path")
	}
	d := len(e.Shot.Color) + len(e.Shot.Texture)
	if d != ix.feats.C {
		return nil, fmt.Errorf("index: entry has %d feature dims, index has %d", d, ix.feats.C)
	}
	if len(ix.all) >= math.MaxInt32 {
		return nil, fmt.Errorf("index: %d entries exceed the int32 ID space", len(ix.all))
	}
	// Verify the path ends at an existing leaf before cloning anything.
	cur := ix.root
	for _, name := range e.Path {
		next, ok := cur.children[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoLeaf, name)
		}
		cur = next
	}
	if len(cur.children) != 0 {
		return nil, fmt.Errorf("%w: path ends at non-leaf %q", ErrNoLeaf, cur.name)
	}

	id := int32(len(ix.all))
	nix := *ix // shallow copy: shares root, feats, scratch pool, options
	nix.all = append(ix.all, e)
	nix.extraFeats = append(ix.extraFeats, e.Shot.Color...)
	nix.extraFeats = append(nix.extraFeats, e.Shot.Texture...)
	nix.inserted = ix.inserted + 1
	nix.seenWords = (len(nix.all) + 63) / 64
	nix.root = cloneSpine(ix.root, e.Path, func(leaf *node) *node {
		nl := *leaf // shares ids, proj, hash, cell, reducer with the old leaf
		dim := leaf.reducer.Dim()
		full := ix.featRowOf(&nix, id)
		row := make([]float64, dim)
		leaf.reducer.ProjectInto(row, full)
		nl.extraIDs = append(leaf.extraIDs, id)
		nl.extraProj = append(leaf.extraProj, row...)
		return &nl
	})
	return &nix, nil
}

// featRowOf reads the freshly appended full feature row from the new
// index's overlay (contiguous, unlike the entry's split Color/Texture).
func (ix *Index) featRowOf(nix *Index, id int32) []float64 {
	r := int(id) - nix.baseRows
	return nix.extraFeats[r*nix.feats.C : (r+1)*nix.feats.C]
}

// Remove returns a new Index with every entry of the named video masked,
// along with how many entries the mask newly covers (0 means the video has
// no live entries and the receiver is returned unchanged). Masked entries
// are invisible to every search against the new index; searches against
// older indexes of the chain still see them, exactly like any other
// copy-on-write snapshot.
func (ix *Index) Remove(videoName string) (*Index, int) {
	words := (len(ix.all) + 63) / 64
	var mask []uint64
	n := 0
	for i, e := range ix.all {
		if e.VideoName != videoName {
			continue
		}
		w, b := i>>6, uint(i&63)
		if int(w) < len(ix.removed) && ix.removed[w]&(1<<b) != 0 {
			continue // already masked (an earlier Remove of a replaced video)
		}
		if mask == nil {
			mask = make([]uint64, words)
			copy(mask, ix.removed)
		}
		mask[w] |= 1 << b
		n++
	}
	if n == 0 {
		return ix, 0
	}
	nix := *ix
	nix.removed = mask
	nix.removedCount = ix.removedCount + n
	return &nix, n
}

// Staleness is the fraction of the index that is incremental overlay:
// (inserted + removed) relative to the size of the last full fit. It grows
// monotonically between fits; callers compare it against their rebuild
// budget to decide when the approximation has drifted enough to warrant a
// refit.
func (ix *Index) Staleness() float64 {
	churn := ix.inserted + ix.removedCount
	if churn == 0 {
		return 0
	}
	if ix.baseRows == 0 {
		return math.Inf(1)
	}
	return float64(churn) / float64(ix.baseRows)
}

// cloneSpine clones the nodes along path from root to a leaf, leaving every
// off-path subtree shared with the original, and applies mutate to the
// (copied) leaf. Each cloned interior node gets a fresh children map so the
// original tree is never written.
func cloneSpine(root *node, path []string, mutate func(leaf *node) *node) *node {
	if len(path) == 0 {
		return mutate(root)
	}
	nr := *root
	nr.children = make(map[string]*node, len(root.children))
	for k, v := range root.children {
		nr.children[k] = v
	}
	nr.children[path[0]] = cloneSpine(root.children[path[0]], path[1:], mutate)
	return &nr
}
