package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNormAndDist(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := Dist([]float64{1, 1}, []float64{4, 5}); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := SqDist([]float64{1, 1}, []float64{4, 5}); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := Add(a, b); got[0] != 4 || got[1] != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); got[0] != 2 || got[1] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(a, 3); got[0] != 3 || got[1] != 6 {
		t.Fatalf("Scale = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != nil {
		t.Fatal("Mean(nil) should be nil")
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float64{{1, 2}, {3, 4}})
	if m[0] != 2 || m[1] != 3 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Points on a line y=x have equal variances and covariance.
	x := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	c := Covariance(x)
	if !almostEqual(c[0][0], 1.25, 1e-12) || !almostEqual(c[0][1], 1.25, 1e-12) {
		t.Fatalf("Covariance = %v", c)
	}
}

func TestCovarianceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([][]float64, 20)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	c := Covariance(x)
	for i := range c {
		for j := range c {
			if c[i][j] != c[j][i] {
				t.Fatalf("covariance not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	m := [][]float64{{4, 2, 0.6}, {2, 5, 1.2}, {0.6, 1.2, 3}}
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		for j := range m {
			var s float64
			for k := 0; k <= i && k <= j; k++ {
				s += l[i][k] * l[j][k]
			}
			if !almostEqual(s, m[i][j], 1e-9) {
				t.Fatalf("LL^T[%d][%d] = %v, want %v", i, j, s, m[i][j])
			}
		}
	}
}

func TestLogDetKnown(t *testing.T) {
	// Diagonal matrix: logdet = sum(log(d_i)).
	m := [][]float64{{2, 0}, {0, 8}}
	ld, err := LogDet(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ld, math.Log(16), 1e-9) {
		t.Fatalf("LogDet = %v, want %v", ld, math.Log(16))
	}
}

func TestLogDetSingularRegularised(t *testing.T) {
	// A rank-deficient covariance should still produce a finite value via
	// the progressive ridge (short audio clips hit this in practice).
	m := [][]float64{{1, 1}, {1, 1}}
	ld, err := LogDet(m)
	if err != nil {
		t.Fatalf("expected ridge to rescue singular matrix: %v", err)
	}
	if math.IsInf(ld, 0) || math.IsNaN(ld) {
		t.Fatalf("LogDet = %v, want finite", ld)
	}
}

func TestJacobiKnownEigenvalues(t *testing.T) {
	m := [][]float64{{2, 1}, {1, 2}}
	values, vectors, err := Jacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(values[0], 3, 1e-9) || !almostEqual(values[1], 1, 1e-9) {
		t.Fatalf("eigenvalues = %v, want [3 1]", values)
	}
	// First eigenvector should be parallel to (1,1)/sqrt2.
	v := []float64{vectors[0][0], vectors[1][0]}
	if !almostEqual(math.Abs(v[0]), math.Abs(v[1]), 1e-9) {
		t.Fatalf("eigenvector = %v, want parallel to (1,1)", v)
	}
}

func TestJacobiEmpty(t *testing.T) {
	if _, _, err := Jacobi(nil); err == nil {
		t.Fatal("expected error on empty matrix")
	}
}

func TestPCAProjectsOntoDominantAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Data stretched along (1,1): first component must capture most variance.
	x := make([][]float64, 200)
	for i := range x {
		t0 := rng.NormFloat64() * 10
		x[i] = []float64{t0 + rng.NormFloat64()*0.1, t0 + rng.NormFloat64()*0.1}
	}
	p, err := FitPCA(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Explained[0] < 0.99 {
		t.Fatalf("explained = %v, want > 0.99", p.Explained[0])
	}
	if p.Dim() != 1 {
		t.Fatalf("Dim = %d, want 1", p.Dim())
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 1); err == nil {
		t.Fatal("expected error on empty data")
	}
	if _, err := FitPCA([][]float64{{1, 2}}, 0); err == nil {
		t.Fatal("expected error on k < 1")
	}
}

func TestPCAClampK(t *testing.T) {
	p, err := FitPCA([][]float64{{1, 2}, {3, 4}, {5, 7}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 2 {
		t.Fatalf("Dim = %d, want clamped to 2", p.Dim())
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	for i := 0; i < 50; i++ {
		x = append(x, []float64{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2})
		x = append(x, []float64{10 + rng.NormFloat64()*0.2, 10 + rng.NormFloat64()*0.2})
	}
	res, err := KMeans(x, 2, rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	// All even indices (cluster near origin) must share one label, odd the other.
	want := res.Assignment[0]
	for i := 0; i < len(x); i += 2 {
		if res.Assignment[i] != want {
			t.Fatalf("point %d assigned %d, want %d", i, res.Assignment[i], want)
		}
	}
	for i := 1; i < len(x); i += 2 {
		if res.Assignment[i] == want {
			t.Fatalf("point %d should be in the other cluster", i)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, nil, 10); err == nil {
		t.Fatal("expected error on empty data")
	}
	if _, err := KMeans([][]float64{{1}}, 0, nil, 10); err == nil {
		t.Fatal("expected error on k < 1")
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	x := [][]float64{{0}, {5}}
	res, err := KMeans(x, 10, rand.New(rand.NewSource(1)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Fatalf("centers = %d, want clamped to 2", len(res.Centers))
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("inertia = %v, want ~0 when every point is a center", res.Inertia)
	}
}

// Property: distance is symmetric and satisfies identity of indiscernibles.
func TestDistPropertySymmetry(t *testing.T) {
	f := func(a, b [4]float64) bool {
		av, bv := make([]float64, 4), make([]float64, 4)
		for i := range av {
			// Constrain magnitudes so squaring cannot overflow.
			av[i] = math.Mod(a[i], 1e6)
			bv[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(av[i]) {
				av[i] = 0
			}
			if math.IsNaN(bv[i]) {
				bv[i] = 0
			}
		}
		return almostEqual(Dist(av, bv), Dist(bv, av), 1e-12) && Dist(av, av) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: covariance diagonal is non-negative.
func TestCovariancePropertyDiagonal(t *testing.T) {
	f := func(raw [6][3]float64) bool {
		x := make([][]float64, len(raw))
		for i := range raw {
			x[i] = raw[i][:]
		}
		c := Covariance(x)
		for i := range c {
			if c[i][i] < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: PCA projection of the mean is (numerically) the origin.
func TestPCAPropertyMeanMapsToOrigin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		x := make([][]float64, 30)
		for i := range x {
			x[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 3, rng.NormFloat64() * 0.5}
		}
		p, err := FitPCA(x, 2)
		if err != nil {
			t.Fatal(err)
		}
		proj := p.Project(Mean(x))
		for _, v := range proj {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("Project(mean) = %v, want origin", proj)
			}
		}
	}
}
