// Package mat provides the small dense linear-algebra kernels the rest of
// the system depends on: vector statistics, covariance estimation, Cholesky
// factorisation with log-determinants (used by the BIC speaker-change test),
// Jacobi eigendecomposition and PCA (used by the hierarchical index for
// per-node dimension reduction), and a tiny k-means implementation (used by
// multi-center index nodes).
//
// Everything operates on plain float64 slices so callers never pay for an
// abstraction they do not need. Matrices are dense, row-major [][]float64.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when operands have incompatible shapes.
var ErrDimension = errors.New("mat: dimension mismatch")

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// (numerically) symmetric positive definite even after regularisation.
var ErrNotPositiveDefinite = errors.New("mat: matrix not positive definite")

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrDimension)
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrDimension)
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrDimension)
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Add returns a+b as a new slice.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrDimension)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrDimension)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns s*v as a new slice.
func Scale(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Mean returns the component-wise mean of the rows in x.
// It returns nil when x is empty.
func Mean(x [][]float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	d := len(x[0])
	m := make([]float64, d)
	for _, row := range x {
		if len(row) != d {
			panic(ErrDimension)
		}
		for j, v := range row {
			m[j] += v
		}
	}
	inv := 1 / float64(len(x))
	for j := range m {
		m[j] *= inv
	}
	return m
}

// Covariance returns the (biased, 1/n) sample covariance matrix of the rows
// of x. The biased estimator matches the maximum-likelihood form used by the
// BIC likelihood-ratio test of the paper (§4.2, Eq. 18). It returns nil when
// x is empty.
func Covariance(x [][]float64) [][]float64 {
	if len(x) == 0 {
		return nil
	}
	d := len(x[0])
	mean := Mean(x)
	cov := NewMatrix(d, d)
	for _, row := range x {
		for i := 0; i < d; i++ {
			di := row[i] - mean[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (row[j] - mean[j])
			}
		}
	}
	inv := 1 / float64(len(x))
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] *= inv
			cov[j][i] = cov[i][j]
		}
	}
	return cov
}

// NewMatrix allocates an r×c zero matrix backed by a single allocation.
func NewMatrix(r, c int) [][]float64 {
	backing := make([]float64, r*c)
	m := make([][]float64, r)
	for i := range m {
		m[i], backing = backing[:c:c], backing[c:]
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) [][]float64 {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// Clone returns a deep copy of m.
func Clone(m [][]float64) [][]float64 {
	out := NewMatrix(len(m), len(m[0]))
	for i := range m {
		copy(out[i], m[i])
	}
	return out
}

// MulVec returns m·v.
func MulVec(m [][]float64, v []float64) []float64 {
	out := make([]float64, len(m))
	for i, row := range m {
		out[i] = Dot(row, v)
	}
	return out
}

// Cholesky computes the lower-triangular factor L with m = L·Lᵀ.
// A small diagonal ridge is added progressively when m is near-singular,
// which is the standard regularisation for covariance matrices estimated
// from short audio clips.
func Cholesky(m [][]float64) ([][]float64, error) {
	n := len(m)
	for ridge := 0.0; ridge <= 1e-3; ridge = nextRidge(ridge) {
		l, ok := tryCholesky(m, n, ridge)
		if ok {
			return l, nil
		}
	}
	return nil, ErrNotPositiveDefinite
}

func nextRidge(r float64) float64 {
	if r == 0 {
		return 1e-9
	}
	return r * 10
}

func tryCholesky(m [][]float64, n int, ridge float64) ([][]float64, bool) {
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m[i][j]
			if i == j {
				sum += ridge
			}
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, false
				}
				l[i][j] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, true
}

// LogDet returns the natural log of the determinant of a symmetric
// positive-definite matrix via its Cholesky factor.
func LogDet(m [][]float64) (float64, error) {
	l, err := Cholesky(m)
	if err != nil {
		return 0, err
	}
	var ld float64
	for i := range l {
		ld += math.Log(l[i][i])
	}
	return 2 * ld, nil
}

// Jacobi computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. It returns the eigenvalues and a matrix
// whose COLUMNS are the corresponding eigenvectors, sorted by decreasing
// eigenvalue.
func Jacobi(m [][]float64) (values []float64, vectors [][]float64, err error) {
	n := len(m)
	if n == 0 {
		return nil, nil, fmt.Errorf("mat: Jacobi on empty matrix")
	}
	a := Clone(m)
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				rotate(a, v, p, q)
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = a[i][i]
	}
	// Sort eigenpairs by decreasing eigenvalue (selection sort keeps the
	// column bookkeeping simple for the small matrices we handle).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if values[j] > values[best] {
				best = j
			}
		}
		if best != i {
			values[i], values[best] = values[best], values[i]
			for r := 0; r < n; r++ {
				v[r][i], v[r][best] = v[r][best], v[r][i]
			}
		}
	}
	return values, v, nil
}

func offDiagNorm(a [][]float64) float64 {
	var s float64
	for i := range a {
		for j := range a[i] {
			if i != j {
				s += a[i][j] * a[i][j]
			}
		}
	}
	return s
}

func rotate(a, v [][]float64, p, q int) {
	if a[p][q] == 0 {
		return
	}
	n := len(a)
	theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
	t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
	if theta < 0 {
		t = -t
	}
	c := 1 / math.Sqrt(t*t+1)
	s := t * c
	tau := s / (1 + c)

	app, aqq, apq := a[p][p], a[q][q], a[p][q]
	a[p][p] = app - t*apq
	a[q][q] = aqq + t*apq
	a[p][q] = 0
	a[q][p] = 0
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip, aiq := a[i][p], a[i][q]
		a[i][p] = aip - s*(aiq+tau*aip)
		a[p][i] = a[i][p]
		a[i][q] = aiq + s*(aip-tau*aiq)
		a[q][i] = a[i][q]
	}
	for i := 0; i < n; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = vip - s*(viq+tau*vip)
		v[i][q] = viq + s*(vip-tau*viq)
	}
}
