package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseRowsAndAppend(t *testing.T) {
	d := &Dense{}
	d.AppendRow([]float64{1, 2, 3})
	d.AppendRow([]float64{4, 5, 6})
	if d.R != 2 || d.C != 3 {
		t.Fatalf("shape = %dx%d", d.R, d.C)
	}
	if got := d.Row(1); got[0] != 4 || got[2] != 6 {
		t.Fatalf("row 1 = %v", got)
	}
	d.SetRow(0, []float64{7, 8, 9})
	if d.Data[0] != 7 {
		t.Fatal("SetRow did not write through")
	}
	rows := d.Rows()
	rows[1][0] = 40
	if d.Data[3] != 40 {
		t.Fatal("Rows must view, not copy")
	}
	at := d.RowsAt([]int32{1, 0})
	if at[0][0] != 40 || at[1][0] != 7 {
		t.Fatalf("RowsAt = %v", at)
	}
	if got := d.SqDistRow(0, []float64{7, 8, 9}); got != 0 {
		t.Fatalf("SqDistRow = %v", got)
	}
	if got := d.DistRow(1, []float64{40, 5, 6}); got != 0 {
		t.Fatalf("DistRow = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRow with wrong width must panic")
		}
	}()
	d.AppendRow([]float64{1})
}

func TestSqDistBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300) // cover sub-block and multi-block lengths
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		exact := SqDist(a, b)
		if got := SqDistBounded(a, b, math.Inf(1)); math.Abs(got-exact) > 1e-12*(1+exact) {
			t.Fatalf("n=%d: unbounded = %v, want %v", n, got, exact)
		}
		// A generous bound must still give the exact value.
		if got := SqDistBounded(a, b, exact*2+1); math.Abs(got-exact) > 1e-12*(1+exact) {
			t.Fatalf("n=%d: loose bound = %v, want %v", n, got, exact)
		}
		// A tight bound may abandon, but the partial sum must exceed it.
		if got := SqDistBounded(a, b, exact/4); got < exact/4 && math.Abs(got-exact) > 1e-12 {
			t.Fatalf("n=%d: abandoned sum %v below bound %v", n, got, exact/4)
		}
	}
}

func TestPCAProjectInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([][]float64, 40)
	for i := range x {
		row := make([]float64, 12)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
	}
	p, err := FitPCA(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4)
	for _, row := range x[:5] {
		want := p.Project(row)
		got := p.ProjectInto(dst, row)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("ProjectInto[%d] = %v, Project = %v", i, got[i], want[i])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ProjectInto with wrong dst size must panic")
		}
	}()
	p.ProjectInto(make([]float64, 3), x[0])
}
