package mat

import "fmt"

// PCA holds a fitted principal-component projection. The hierarchical index
// (§6.2 of the paper) fits one PCA per database node so that only the
// discriminating features participate in distance computations, shrinking
// the per-comparison cost T below the full-dimension cost Tm.
type PCA struct {
	Mean       []float64   // feature mean subtracted before projection
	Components [][]float64 // k rows, each a principal axis of dimension d
	Explained  []float64   // fraction of variance captured per component
}

// FitPCA fits a k-component PCA to the rows of x. k is clamped to the data
// dimension. It returns an error when x is empty or k < 1.
func FitPCA(x [][]float64, k int) (*PCA, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("mat: FitPCA needs at least one sample")
	}
	if k < 1 {
		return nil, fmt.Errorf("mat: FitPCA needs k >= 1, got %d", k)
	}
	d := len(x[0])
	if k > d {
		k = d
	}
	cov := Covariance(x)
	values, vectors, err := Jacobi(cov)
	if err != nil {
		return nil, err
	}
	var total float64
	for _, v := range values {
		if v > 0 {
			total += v
		}
	}
	p := &PCA{Mean: Mean(x), Components: NewMatrix(k, d), Explained: make([]float64, k)}
	for c := 0; c < k; c++ {
		for r := 0; r < d; r++ {
			p.Components[c][r] = vectors[r][c]
		}
		if total > 0 && values[c] > 0 {
			p.Explained[c] = values[c] / total
		}
	}
	return p, nil
}

// Project maps v into the fitted subspace.
func (p *PCA) Project(v []float64) []float64 {
	return p.ProjectInto(make([]float64, len(p.Components)), v)
}

// ProjectInto maps v into the fitted subspace, writing the result into dst
// (which must have length Dim). Centering happens on the fly, so the call
// performs no heap allocation — the search hot path projects every query
// through per-call scratch buffers.
func (p *PCA) ProjectInto(dst, v []float64) []float64 {
	if len(dst) != len(p.Components) || len(v) != len(p.Mean) {
		panic(ErrDimension)
	}
	for i, axis := range p.Components {
		var s float64
		for j, a := range axis {
			s += a * (v[j] - p.Mean[j])
		}
		dst[i] = s
	}
	return dst
}

// Dim returns the dimensionality of the projected space.
func (p *PCA) Dim() int { return len(p.Components) }
