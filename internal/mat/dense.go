package mat

// Dense is a row-major matrix backed by one contiguous allocation. The
// hierarchical index stores per-leaf feature and projection matrices this
// way so the search hot path walks cache-friendly memory and indexes rows
// by integer instead of chasing per-entry map lookups.
type Dense struct {
	R, C int
	Data []float64 // len R*C, row i at Data[i*C : (i+1)*C]
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// Row returns a view (not a copy) of row i.
func (d *Dense) Row(i int) []float64 {
	return d.Data[i*d.C : (i+1)*d.C : (i+1)*d.C]
}

// SetRow copies v into row i.
func (d *Dense) SetRow(i int, v []float64) {
	if len(v) != d.C {
		panic(ErrDimension)
	}
	copy(d.Row(i), v)
}

// AppendRow grows the matrix by one row holding a copy of v. The first
// appended row fixes C when the matrix is empty.
func (d *Dense) AppendRow(v []float64) {
	if d.R == 0 && d.C == 0 {
		d.C = len(v)
	}
	if len(v) != d.C {
		panic(ErrDimension)
	}
	d.Data = append(d.Data, v...)
	d.R++
}

// Rows materialises per-row views. The returned slice allocates headers
// only; the float data is shared with the matrix.
func (d *Dense) Rows() [][]float64 {
	out := make([][]float64, d.R)
	for i := range out {
		out[i] = d.Row(i)
	}
	return out
}

// RowsAt returns views of the rows named by idx (headers only, shared data).
func (d *Dense) RowsAt(idx []int32) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = d.Row(int(j))
	}
	return out
}

// SqDistRow returns the squared Euclidean distance between row i and v.
func (d *Dense) SqDistRow(i int, v []float64) float64 {
	return SqDist(d.Row(i), v)
}

// DistRow returns the Euclidean distance between row i and v.
func (d *Dense) DistRow(i int, v []float64) float64 {
	return Dist(d.Row(i), v)
}

// SqDistBounded returns the squared Euclidean distance between a and b,
// abandoning early once the running sum exceeds bound: the returned value is
// then some partial sum > bound, still correct for "is the true distance
// < bound" tests, which is all a top-k scan needs. The bound is checked once
// per 16-element block so the inner loop stays tight.
func SqDistBounded(a, b []float64, bound float64) float64 {
	if len(a) != len(b) {
		panic(ErrDimension)
	}
	var s float64
	i := 0
	for ; i+16 <= len(a); i += 16 {
		var blk float64
		for j := i; j < i+16; j++ {
			d := a[j] - b[j]
			blk += d * d
		}
		s += blk
		if s > bound {
			return s
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
