package mat

import (
	"fmt"
	"math/rand"
)

// KMeansResult holds the outcome of a k-means run.
type KMeansResult struct {
	Centers    [][]float64 // k cluster centers
	Assignment []int       // index of the center owning each input row
	Inertia    float64     // sum of squared distances to owning centers
	Iterations int         // Lloyd iterations actually performed
}

// KMeans clusters the rows of x into k clusters using Lloyd's algorithm with
// k-means++ seeding. The rng makes runs reproducible; pass a deterministic
// source. When k >= len(x) every point becomes its own center.
//
// The paper (§2) uses multiple centers per non-leaf database node because
// high-level concepts mix several visual components; this routine computes
// those centers. It is also the seeded comparator the Pairwise Cluster
// Scheme is evaluated against (§3.5 ablation).
func KMeans(x [][]float64, k int, rng *rand.Rand, maxIter int) (*KMeansResult, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("mat: KMeans on empty data")
	}
	if k < 1 {
		return nil, fmt.Errorf("mat: KMeans needs k >= 1, got %d", k)
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	centers := seedPlusPlus(x, k, rng)
	assign := make([]int, n)
	res := &KMeansResult{Centers: centers, Assignment: assign}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := false
		res.Inertia = 0
		for i, row := range x {
			best, bestD := 0, SqDist(row, centers[0])
			for c := 1; c < k; c++ {
				if d := SqDist(row, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			res.Inertia += bestD
		}
		if !changed && iter > 0 {
			break
		}
		d := len(x[0])
		sums := NewMatrix(k, d)
		counts := make([]int, k)
		for i, row := range x {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				sums[c][j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with the point farthest from
				// its current center, the usual guard against collapse.
				centers[c] = append([]float64(nil), farthestPoint(x, centers, assign)...)
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < d; j++ {
				centers[c][j] = sums[c][j] * inv
			}
		}
	}
	return res, nil
}

func seedPlusPlus(x [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(x)
	centers := make([][]float64, 0, k)
	first := 0
	if rng != nil {
		first = rng.Intn(n)
	}
	centers = append(centers, append([]float64(nil), x[first]...))
	dist := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, row := range x {
			d := SqDist(row, centers[0])
			for _, c := range centers[1:] {
				if dd := SqDist(row, c); dd < d {
					d = dd
				}
			}
			dist[i] = d
			total += d
		}
		idx := 0
		if total > 0 {
			var target float64
			if rng != nil {
				target = rng.Float64() * total
			} else {
				target = total / 2
			}
			var acc float64
			for i, d := range dist {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), x[idx]...))
	}
	return centers
}

func farthestPoint(x [][]float64, centers [][]float64, assign []int) []float64 {
	bestIdx, bestD := 0, -1.0
	for i, row := range x {
		d := SqDist(row, centers[assign[i]])
		if d > bestD {
			bestIdx, bestD = i, d
		}
	}
	return x[bestIdx]
}
