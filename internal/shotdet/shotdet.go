// Package shotdet implements the shot-boundary detector of §3.1: a
// frame-difference detector whose threshold adapts to the local activity of
// each small analysis window (30 frames by default) using the fast-entropy
// automatic threshold technique, so that small but real changes between
// adjacent shots (the "eyeball" example of Fig. 5) are caught without
// drowning static material in false cuts.
//
// After segmentation, the 10th frame of every shot is selected as its
// representative frame and the §3.1 descriptors (256-bin HSV histogram,
// 10-dim Tamura coarseness) are extracted from it.
package shotdet

import (
	"fmt"
	"math"

	"classminer/internal/entropy"
	"classminer/internal/feature"
	"classminer/internal/mpeg"
	"classminer/internal/vidmodel"
)

// Config tunes the detector. The zero value is replaced by defaults.
type Config struct {
	// Window is the local-analysis span in frames (paper: 30).
	Window int
	// MinShotFrames suppresses cuts closer together than this.
	MinShotFrames int
	// RepFrameIndex selects the representative frame within a shot
	// (paper: the 10th frame, i.e. offset 9, clamped to the shot).
	RepFrameIndex int
	// ActivitySigma is the local-activity multiplier: a cut must exceed
	// the window mean by this many window standard deviations.
	ActivitySigma float64
	// NoiseFloorScale multiplies the video-wide median difference to form
	// the absolute noise floor of every window threshold.
	NoiseFloorScale float64
}

// DefaultConfig mirrors the paper's published constants.
func DefaultConfig() Config {
	return Config{
		Window:          30,
		MinShotFrames:   5,
		RepFrameIndex:   9,
		ActivitySigma:   3,
		NoiseFloorScale: 3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Window <= 1 {
		c.Window = d.Window
	}
	if c.MinShotFrames <= 0 {
		c.MinShotFrames = d.MinShotFrames
	}
	if c.RepFrameIndex <= 0 {
		c.RepFrameIndex = d.RepFrameIndex
	}
	if c.ActivitySigma <= 0 {
		c.ActivitySigma = d.ActivitySigma
	}
	if c.NoiseFloorScale <= 0 {
		c.NoiseFloorScale = d.NoiseFloorScale
	}
	return c
}

// Trace records the detector's internals for inspection and for
// regenerating the paper's Fig. 5 (frame differences and the per-window
// thresholds).
type Trace struct {
	Diffs      []float64 // Diffs[t] = difference between frames t and t+1
	Thresholds []float64 // per-difference local threshold actually applied
	Cuts       []int     // frame indices where new shots begin (excluding 0)
}

// Detect segments the video into shots and extracts representative-frame
// descriptors. It never returns an empty slice for a non-empty video: the
// whole video is one shot when no cut is found.
func Detect(v *vidmodel.Video, cfg Config) ([]*vidmodel.Shot, *Trace, error) {
	if v == nil || len(v.Frames) == 0 {
		return nil, nil, fmt.Errorf("shotdet: empty video")
	}
	cfg = cfg.withDefaults()
	w0, h0 := v.Frames[0].W, v.Frames[0].H
	hists := make([][]float64, len(v.Frames))
	for i, f := range v.Frames {
		hists[i] = feature.HSVHistogram(f, f.W, f.H)
	}
	diffs := make([]float64, 0, len(v.Frames)-1)
	for i := 1; i < len(v.Frames); i++ {
		diffs = append(diffs, feature.FrameDiff(hists[i-1], hists[i]))
	}
	cuts, thresholds := findCuts(diffs, cfg)
	trace := &Trace{Diffs: diffs, Thresholds: thresholds, Cuts: cuts}

	shots := buildShots(v, cuts, cfg, w0, h0, hists)
	return shots, trace, nil
}

// findCuts applies the windowed adaptive threshold to the difference
// series. diffs[t] compares frames t and t+1; a detected cut at diffs[t]
// means a new shot starts at frame t+1.
func findCuts(diffs []float64, cfg Config) (cuts []int, thresholds []float64) {
	n := len(diffs)
	thresholds = make([]float64, n)
	if n == 0 {
		return nil, thresholds
	}
	med, _ := entropy.Percentile(diffs, 0.5)
	floor := med * cfg.NoiseFloorScale
	if floor < 0.05 {
		floor = 0.05
	}
	lastCut := -cfg.MinShotFrames
	for t := 0; t < n; t++ {
		lo := t - cfg.Window/2
		hi := lo + cfg.Window
		if lo < 0 {
			lo, hi = 0, cfg.Window
		}
		if hi > n {
			hi = n
			if lo > hi-cfg.Window {
				lo = hi - cfg.Window
			}
			if lo < 0 {
				lo = 0
			}
		}
		window := diffs[lo:hi]
		th := localThreshold(window, cfg, floor)
		thresholds[t] = th
		if diffs[t] < th {
			continue
		}
		if !isLocalMax(diffs, t, 2) {
			continue
		}
		if t+1-lastCut < cfg.MinShotFrames {
			continue
		}
		cuts = append(cuts, t+1)
		lastCut = t + 1
	}
	return cuts, thresholds
}

// localThreshold adapts to a window: the fast-entropy split of the window's
// differences, backed by a robust local-activity term and an absolute noise
// floor. The activity statistics use the median and the MAD so that genuine
// cuts inside the window (which are rare, extreme values) cannot inflate
// the threshold and mask each other.
func localThreshold(window []float64, cfg Config, floor float64) float64 {
	med, mad := medianMAD(window)
	activity := med + cfg.ActivitySigma*1.4826*mad
	th := entropy.ThresholdOr(window, floor)
	// The entropy split is only trustworthy when the window is actually
	// bimodal; in an all-quiet window it splits noise. Taking the max of
	// the two estimates keeps the stronger evidence.
	if activity > th {
		th = activity
	}
	if floor > th {
		th = floor
	}
	return th
}

// medianMAD returns the median and the median absolute deviation of the
// window.
func medianMAD(window []float64) (med, mad float64) {
	if len(window) == 0 {
		return 0, 0
	}
	med, _ = entropy.Percentile(window, 0.5)
	dev := make([]float64, len(window))
	for i, v := range window {
		dev[i] = math.Abs(v - med)
	}
	mad, _ = entropy.Percentile(dev, 0.5)
	return med, mad
}

func isLocalMax(diffs []float64, t, radius int) bool {
	for d := -radius; d <= radius; d++ {
		i := t + d
		if i < 0 || i >= len(diffs) || i == t {
			continue
		}
		if diffs[i] > diffs[t] {
			return false
		}
	}
	return true
}

// buildShots materialises Shot values with representative-frame features.
func buildShots(v *vidmodel.Video, cuts []int, cfg Config, w, h int, hists [][]float64) []*vidmodel.Shot {
	starts := append([]int{0}, cuts...)
	shots := make([]*vidmodel.Shot, 0, len(starts))
	for i, start := range starts {
		end := len(v.Frames)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		rep := start + cfg.RepFrameIndex
		if rep >= end {
			rep = start + (end-start)/2
		}
		frame := v.Frames[rep]
		shots = append(shots, &vidmodel.Shot{
			Index:    i,
			Start:    start,
			End:      end,
			RepFrame: rep,
			Color:    hists[rep],
			Texture:  feature.TamuraCoarseness(frame, w, h),
		})
	}
	return shots
}

// DetectDC finds shot boundaries directly in the compressed domain from the
// DC images of a CMV1 stream, without full decode — the fast path the
// paper's MPEG-based detector (ref. [10]) uses. It returns the frame
// indices where new shots begin.
func DetectDC(dcs []mpeg.DCFrame, cfg Config) ([]int, error) {
	if len(dcs) == 0 {
		return nil, fmt.Errorf("shotdet: empty DC sequence")
	}
	cfg = cfg.withDefaults()
	diffs := make([]float64, 0, len(dcs)-1)
	for i := 1; i < len(dcs); i++ {
		a, b := dcs[i-1], dcs[i]
		var s float64
		for j := range a.Y {
			s += math.Abs(a.Y[j] - b.Y[j])
		}
		diffs = append(diffs, s/(255*float64(len(a.Y))))
	}
	cuts, _ := findCuts(diffs, cfg)
	return cuts, nil
}
