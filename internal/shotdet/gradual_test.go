package shotdet

import (
	"math/rand"
	"testing"

	"classminer/internal/vidmodel"
)

// dissolveVideo renders two static settings joined by a linear blend of
// blendLen frames starting at frame cut.
func dissolveVideo(total, cut, blendLen int, seed int64) *vidmodel.Video {
	rng := rand.New(rand.NewSource(seed))
	v := &vidmodel.Video{Name: "dissolve", FPS: 10}
	colA := [3]byte{60, 90, 140}
	colB := [3]byte{190, 120, 50}
	for t := 0; t < total; t++ {
		f := vidmodel.NewFrame(32, 24)
		var mix float64
		switch {
		case t < cut:
			mix = 0
		case t >= cut+blendLen:
			mix = 1
		default:
			mix = float64(t-cut) / float64(blendLen)
		}
		for y := 0; y < 24; y++ {
			for x := 0; x < 32; x++ {
				// Textured settings: spatial gradients keep the histogram
				// spread over many bins so the dissolve evolves smoothly
				// (a flat colour would hop quantisation bins discretely).
				tex := float64((x*5 + y*3) % 48)
				r := byte((float64(colA[0])+tex)*(1-mix) + (float64(colB[0])+tex*0.5)*mix + float64(rng.Intn(3)))
				g := byte((float64(colA[1])+tex*0.7)*(1-mix) + (float64(colB[1])+tex)*mix + float64(rng.Intn(3)))
				b := byte((float64(colA[2])+tex*0.4)*(1-mix) + (float64(colB[2])+tex*0.8)*mix + float64(rng.Intn(3)))
				f.Set(x, y, r, g, b)
			}
		}
		v.Frames = append(v.Frames, f)
	}
	return v
}

func TestDetectGradualFindsDissolve(t *testing.T) {
	v := dissolveVideo(120, 50, 12, 1)
	hists := Histograms(v)
	trans := DetectGradual(hists, GradualConfig{})
	if len(trans) != 1 {
		t.Fatalf("found %d transitions, want 1: %+v", len(trans), trans)
	}
	tr := trans[0]
	if tr.Start < 45 || tr.Start > 55 {
		t.Fatalf("transition starts at %d, want near 50", tr.Start)
	}
	// Histogram accumulation saturates before the blend finishes, so the
	// detected span may end early; it must still be a multi-frame span
	// inside the blend.
	if tr.End <= tr.Start+2 || tr.End > 70 {
		t.Fatalf("transition span [%d,%d) implausible", tr.Start, tr.End)
	}
}

func TestDetectGradualHardCutVideoMostlyQuiet(t *testing.T) {
	// A hard cut (blend of length 1) is not a gradual transition.
	v := dissolveVideo(100, 40, 1, 2)
	hists := Histograms(v)
	trans := DetectGradual(hists, GradualConfig{})
	if len(trans) != 0 {
		t.Fatalf("hard cut flagged as gradual: %+v", trans)
	}
}

func TestDetectGradualStaticVideoQuiet(t *testing.T) {
	v := dissolveVideo(80, 1000, 1, 3) // never reaches the cut: static
	hists := Histograms(v)
	if trans := DetectGradual(hists, GradualConfig{}); len(trans) != 0 {
		t.Fatalf("static video flagged: %+v", trans)
	}
}

func TestDetectGradualTooShort(t *testing.T) {
	if DetectGradual(nil, GradualConfig{}) != nil {
		t.Fatal("nil input must return nil")
	}
}

func TestDetectGradualOnSynthDissolve(t *testing.T) {
	// The generator's Dissolve option must produce spans the detector sees.
	v := genVideo(t, 9)
	hists := Histograms(v)
	// genVideo has hard cuts only; check no gradual storm.
	trans := DetectGradual(hists, GradualConfig{})
	if len(trans) > 4 {
		t.Fatalf("too many spurious transitions on hard-cut video: %d", len(trans))
	}
}
