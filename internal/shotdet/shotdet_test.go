package shotdet

import (
	"math/rand"
	"testing"

	"classminer/internal/mpeg"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

func genVideo(t testing.TB, seed int64) *vidmodel.Video {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	script := &synth.Script{Name: "shots", Scenes: []synth.SceneSpec{
		synth.PresentationScene(rng, 0, 1, 1),
		synth.DialogScene(rng, 1, 2, 1, 2),
		synth.OperationScene(rng, 2, 3, synth.ContentSurgical, 0),
	}}
	v, err := synth.Generate(synth.DefaultConfig(), script, seed)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// boundaryScore compares detected starts against ground truth with a small
// frame tolerance, returning recall and precision.
func boundaryScore(detected []*vidmodel.Shot, truth []int, tol int) (recall, precision float64) {
	var starts []int
	for _, s := range detected[1:] { // skip the implicit start at 0
		starts = append(starts, s.Start)
	}
	match := func(a, list []int) int {
		n := 0
		for _, x := range a {
			for _, y := range list {
				if x-y <= tol && y-x <= tol {
					n++
					break
				}
			}
		}
		return n
	}
	trueCuts := truth[1:]
	if len(trueCuts) == 0 || len(starts) == 0 {
		return 0, 0
	}
	recall = float64(match(trueCuts, starts)) / float64(len(trueCuts))
	precision = float64(match(starts, trueCuts)) / float64(len(starts))
	return recall, precision
}

func TestDetectFindsScriptedCuts(t *testing.T) {
	v := genVideo(t, 1)
	shots, trace, err := Detect(v, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(shots) < 2 {
		t.Fatalf("found %d shots, want several", len(shots))
	}
	recall, precision := boundaryScore(shots, v.Truth.ShotStarts, 1)
	if recall < 0.9 {
		t.Fatalf("boundary recall = %.2f, want >= 0.9 (detected %d shots vs %d true)",
			recall, len(shots), len(v.Truth.ShotStarts))
	}
	if precision < 0.9 {
		t.Fatalf("boundary precision = %.2f, want >= 0.9", precision)
	}
	if len(trace.Diffs) != len(v.Frames)-1 {
		t.Fatalf("trace diffs = %d, want %d", len(trace.Diffs), len(v.Frames)-1)
	}
	if len(trace.Thresholds) != len(trace.Diffs) {
		t.Fatal("trace thresholds length mismatch")
	}
}

func TestDetectShotsTileVideo(t *testing.T) {
	v := genVideo(t, 2)
	shots, _, err := Detect(v, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if shots[0].Start != 0 {
		t.Fatal("first shot must start at frame 0")
	}
	for i := 1; i < len(shots); i++ {
		if shots[i].Start != shots[i-1].End {
			t.Fatalf("shot %d not contiguous", i)
		}
		if shots[i].Index != i {
			t.Fatalf("shot %d has index %d", i, shots[i].Index)
		}
	}
	if last := shots[len(shots)-1]; last.End != len(v.Frames) {
		t.Fatalf("last shot ends at %d, want %d", last.End, len(v.Frames))
	}
}

func TestDetectRepFrameIsTenth(t *testing.T) {
	v := genVideo(t, 3)
	shots, _, err := Detect(v, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shots {
		if s.Len() > 9 {
			if s.RepFrame != s.Start+9 {
				t.Fatalf("shot %d rep frame = %d, want %d (10th frame)", s.Index, s.RepFrame, s.Start+9)
			}
		} else if s.RepFrame < s.Start || s.RepFrame >= s.End {
			t.Fatalf("shot %d rep frame %d outside [%d,%d)", s.Index, s.RepFrame, s.Start, s.End)
		}
		if len(s.Color) != 256 || len(s.Texture) != 10 {
			t.Fatalf("shot %d descriptor dims = %d/%d", s.Index, len(s.Color), len(s.Texture))
		}
	}
}

func TestDetectStaticVideoIsOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := &vidmodel.Video{Name: "static", FPS: 10}
	base := vidmodel.NewFrame(32, 24)
	for y := 0; y < 24; y++ {
		for x := 0; x < 32; x++ {
			base.Set(x, y, 90, 120, 150)
		}
	}
	for i := 0; i < 120; i++ {
		f := base.Clone()
		// Sensor noise only.
		for j := range f.Pix {
			f.Pix[j] = byte(int(f.Pix[j]) + rng.Intn(5) - 2)
		}
		v.Frames = append(v.Frames, f)
	}
	shots, _, err := Detect(v, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(shots) != 1 {
		t.Fatalf("static video produced %d shots, want 1", len(shots))
	}
}

func TestDetectEmptyVideo(t *testing.T) {
	if _, _, err := Detect(&vidmodel.Video{}, Config{}); err == nil {
		t.Fatal("want error on empty video")
	}
	if _, _, err := Detect(nil, Config{}); err == nil {
		t.Fatal("want error on nil video")
	}
}

func TestDetectSingleFrame(t *testing.T) {
	v := &vidmodel.Video{FPS: 10, Frames: []*vidmodel.Frame{vidmodel.NewFrame(8, 8)}}
	shots, _, err := Detect(v, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(shots) != 1 || shots[0].Len() != 1 {
		t.Fatalf("single frame video: %d shots", len(shots))
	}
}

func TestDetectAdaptsToSmallChanges(t *testing.T) {
	// Two visually close shots (small palette shift) must still be split —
	// the "eyeball" case of Fig. 5 that a single global threshold misses.
	v := &vidmodel.Video{Name: "subtle", FPS: 10}
	rng := rand.New(rand.NewSource(5))
	mk := func(r, g, b byte, n int) {
		for i := 0; i < n; i++ {
			f := vidmodel.NewFrame(32, 24)
			for y := 0; y < 24; y++ {
				for x := 0; x < 32; x++ {
					f.Set(x, y, byte(int(r)+rng.Intn(3)), byte(int(g)+rng.Intn(3)), byte(int(b)+rng.Intn(3)))
				}
			}
			v.Frames = append(v.Frames, f)
		}
	}
	mk(120, 100, 90, 40)
	mk(135, 112, 100, 40) // subtle change
	shots, _, err := Detect(v, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(shots) != 2 {
		t.Fatalf("subtle cut: got %d shots, want 2", len(shots))
	}
	if shots[1].Start != 40 {
		t.Fatalf("cut at %d, want 40", shots[1].Start)
	}
}

func TestDetectDCMatchesPixelDomain(t *testing.T) {
	v := genVideo(t, 6)
	data, err := mpeg.Encode(v, mpeg.Options{GOP: 10, Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	dcs, err := mpeg.ExtractDC(data)
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := DetectDC(dcs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) == 0 {
		t.Fatal("DC-domain detector found no cuts")
	}
	// Most DC cuts must coincide with true boundaries (±1 frame).
	trueCuts := v.Truth.ShotStarts[1:]
	matched := 0
	for _, c := range cuts {
		for _, tc := range trueCuts {
			if c-tc <= 1 && tc-c <= 1 {
				matched++
				break
			}
		}
	}
	if frac := float64(matched) / float64(len(cuts)); frac < 0.8 {
		t.Fatalf("only %.2f of DC cuts match truth", frac)
	}
}

func TestDetectDCEmpty(t *testing.T) {
	if _, err := DetectDC(nil, Config{}); err == nil {
		t.Fatal("want error on empty DC sequence")
	}
}

func BenchmarkDetect(b *testing.B) {
	v := genVideo(b, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Detect(v, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
