package shotdet

import (
	"classminer/internal/entropy"
	"classminer/internal/feature"
	"classminer/internal/vidmodel"
)

// Gradual-transition detection. The hard-cut detector of Detect thresholds
// single-frame differences, which dissolves and fades evade by spreading
// the change across many small steps. The classic remedy — the
// twin-comparison technique of Zhang, Kankanhalli & Smoliar (the paper's
// ref. [12]) — uses a second, lower threshold: when a frame difference
// exceeds it, an accumulation phase starts, and if the accumulated
// difference against the phase's start frame eventually exceeds the high
// (cut) threshold, the span is declared a gradual transition.

// Transition is one detected gradual transition.
type Transition struct {
	Start int // first frame of the transition
	End   int // one-past-last frame (the first frame of the new shot)
}

// GradualConfig tunes DetectGradual. Zero values become defaults.
type GradualConfig struct {
	// LowFactor scales the cut threshold down to the accumulation
	// trigger Ts (default 0.35, i.e. Ts = 0.35·Tb).
	LowFactor float64
	// MaxSpan bounds a transition's length in frames (default 30).
	MaxSpan int
	// MinSpan is the shortest accepted transition (default 2 — a span of
	// a single frame is a hard cut's business).
	MinSpan int
}

func (c GradualConfig) withDefaults() GradualConfig {
	if c.LowFactor <= 0 || c.LowFactor >= 1 {
		c.LowFactor = 0.35
	}
	if c.MaxSpan <= 0 {
		c.MaxSpan = 30
	}
	if c.MinSpan <= 0 {
		c.MinSpan = 2
	}
	return c
}

// DetectGradual finds gradual transitions in a frame-histogram sequence
// (see Histograms) with the twin-comparison technique. It is intended to
// run alongside Detect: hard cuts found by Detect can be excluded by the
// caller via the returned spans' overlap.
func DetectGradual(hists [][]float64, cfg GradualConfig) []Transition {
	cfg = cfg.withDefaults()
	if len(hists) < cfg.MinSpan+1 {
		return nil
	}
	// Consecutive differences. Tb is the cut-level acceptance threshold
	// (what a completed transition must amount to); Ts is the accumulation
	// trigger, sitting just above the within-shot noise floor.
	diffs := make([]float64, len(hists)-1)
	for i := 1; i < len(hists); i++ {
		diffs[i-1] = feature.FrameDiff(hists[i-1], hists[i])
	}
	tb := entropy.ThresholdOr(diffs, 0.35)
	if tb < 0.35 {
		tb = 0.35
	}
	med, _ := entropy.Percentile(diffs, 0.5)
	ts := med * 4
	if ts < 0.02 {
		ts = 0.02
	}
	if min := tb * cfg.LowFactor * 0.5; ts > min && min > 0.02 {
		ts = min // never let a noisy floor eat the whole trigger band
	}

	var out []Transition
	for t := 0; t < len(diffs); t++ {
		if diffs[t] < ts || diffs[t] >= tb {
			continue // quiet, or a hard cut handled elsewhere
		}
		// Accumulation phase: compare each subsequent frame against the
		// phase start until the accumulated change crosses Tb or the
		// activity dies down.
		start := t
		quiet := 0
		for u := t + 1; u < len(hists) && u-start <= cfg.MaxSpan; u++ {
			acc := feature.FrameDiff(hists[start], hists[u])
			if acc >= tb {
				if u-start >= cfg.MinSpan {
					out = append(out, Transition{Start: start, End: u + 1})
				}
				t = u // resume scanning after the transition
				break
			}
			if u-1 < len(diffs) && diffs[u-1] < ts {
				quiet++
				if quiet >= 2 {
					break // the drift stopped without becoming a transition
				}
			} else {
				quiet = 0
			}
		}
	}
	return out
}

// Histograms computes the per-frame HSV histograms Detect uses internally,
// for callers that also want DetectGradual without recomputation.
func Histograms(v *vidmodel.Video) [][]float64 {
	hists := make([][]float64, len(v.Frames))
	for i, f := range v.Frames {
		hists[i] = feature.HSVHistogram(f, f.W, f.H)
	}
	return hists
}
