// Package feature extracts the visual descriptors of §3.1: the 256-bin HSV
// colour histogram (quantised 16H × 4S × 4V) and the 10-dimensional Tamura
// coarseness vector, plus the frame-difference metric the shot detector
// thresholds and the Eq. (1) shot similarity those descriptors feed.
package feature

import "math"

// Dimensions of the descriptors mandated by the paper.
const (
	ColorBins   = 256 // 16 hue × 4 saturation × 4 value
	TextureDims = 10  // Tamura coarseness scale histogram
	hueBins     = 16
	satBins     = 4
	valBins     = 4
)

// Weights of Eq. (1): StSim = Wc·colour + Wt·texture.
const (
	WeightColor   = 0.7
	WeightTexture = 0.3
)

// frameLike is the minimal raster interface the extractors need. It is
// satisfied by *vidmodel.Frame; keeping it structural avoids an import
// cycle and lets tests feed tiny synthetic rasters.
type frameLike interface {
	At(x, y int) (r, g, b byte)
	Gray(x, y int) float64
}

// RGBToHSV converts 8-bit RGB to h ∈ [0,360), s ∈ [0,1], v ∈ [0,1].
func RGBToHSV(r, g, b byte) (h, s, v float64) {
	rf, gf, bf := float64(r)/255, float64(g)/255, float64(b)/255
	max := math.Max(rf, math.Max(gf, bf))
	min := math.Min(rf, math.Min(gf, bf))
	v = max
	d := max - min
	if max > 0 {
		s = d / max
	}
	if d == 0 {
		return 0, s, v
	}
	switch max {
	case rf:
		h = math.Mod((gf-bf)/d, 6)
	case gf:
		h = (bf-rf)/d + 2
	default:
		h = (rf-gf)/d + 4
	}
	h *= 60
	if h < 0 {
		h += 360
	}
	return h, s, v
}

// HSVHistogram computes the normalised 256-bin HSV histogram of a frame.
// Bins are indexed hue-major: bin = h*16 + s*4 + v with h ∈ [0,16),
// s, v ∈ [0,4). The histogram sums to 1 for any non-empty frame.
func HSVHistogram(f frameLike, w, h int) []float64 {
	hist := make([]float64, ColorBins)
	if w <= 0 || h <= 0 {
		return hist
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, b := f.At(x, y)
			hist[hsvBin(r, g, b)]++
		}
	}
	inv := 1 / float64(w*h)
	for i := range hist {
		hist[i] *= inv
	}
	return hist
}

func hsvBin(r, g, b byte) int {
	hh, ss, vv := RGBToHSV(r, g, b)
	hb := int(hh / 360 * hueBins)
	if hb >= hueBins {
		hb = hueBins - 1
	}
	sb := int(ss * satBins)
	if sb >= satBins {
		sb = satBins - 1
	}
	vb := int(vv * valBins)
	if vb >= valBins {
		vb = valBins - 1
	}
	return hb*satBins*valBins + sb*valBins + vb
}

// HistIntersection returns Σ min(a_i, b_i) — the colour term of Eq. (1).
// For normalised histograms the result lies in [0, 1], 1 meaning identical.
func HistIntersection(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += math.Min(a[i], b[i])
	}
	return s
}

// TamuraCoarseness computes the paper's 10-dimensional coarseness
// descriptor: for every pixel the best among 10 dyadic neighbourhood scales
// is chosen by the classic Tamura Sbest rule (largest directional difference
// of average gray levels between non-overlapping windows of size 2^k), and
// the normalised histogram of chosen scales over the frame is returned.
// The vector sums to 1 for any non-empty frame.
func TamuraCoarseness(f frameLike, w, h int) []float64 {
	out := make([]float64, TextureDims)
	if w <= 0 || h <= 0 {
		return out
	}
	// Summed-area table of gray values for O(1) window averages.
	sat := newSummedArea(f, w, h)
	maxK := TextureDims
	step := 2 // subsample pixels for speed; detectors are resolution-free
	var count float64
	for y := 0; y < h; y += step {
		for x := 0; x < w; x += step {
			best, bestE := 0, -1.0
			for k := 0; k < maxK; k++ {
				half := 1 << uint(k)
				if half*2 > w && half*2 > h {
					break
				}
				eh := math.Abs(sat.mean(x-half*2, y-half, half*2, half*2) -
					sat.mean(x, y-half, half*2, half*2))
				ev := math.Abs(sat.mean(x-half, y-half*2, half*2, half*2) -
					sat.mean(x-half, y, half*2, half*2))
				if e := math.Max(eh, ev); e > bestE {
					bestE, best = e, k
				}
			}
			out[best]++
			count++
		}
	}
	if count > 0 {
		inv := 1 / count
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// TextureDistanceTerm returns the texture term of Eq. (1):
// 1 − sqrt(Σ (Ti − Tj)²), clamped to [0, 1].
func TextureDistanceTerm(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	v := 1 - math.Sqrt(s)
	if v < 0 {
		return 0
	}
	return v
}

// StSim is the shot similarity of Eq. (1) evaluated on raw descriptors:
//
//	StSim = Wc·Σ min(Hi, Hj) + Wt·(1 − sqrt(Σ (Ti − Tj)²))
//
// with Wc = 0.7 and Wt = 0.3. The result lies in [0, 1].
func StSim(colorA, textureA, colorB, textureB []float64) float64 {
	return WeightColor*HistIntersection(colorA, colorB) +
		WeightTexture*TextureDistanceTerm(textureA, textureB)
}

// FrameDiff returns a dissimilarity in [0, 1] between two frames: one minus
// the intersection of their HSV histograms. The shot detector thresholds
// consecutive-frame differences of this metric.
func FrameDiff(histA, histB []float64) float64 {
	d := 1 - HistIntersection(histA, histB)
	if d < 0 {
		return 0
	}
	return d
}

// summedArea caches prefix sums of gray values so window means are O(1).
type summedArea struct {
	w, h int
	sum  []float64 // (w+1)*(h+1)
}

func newSummedArea(f frameLike, w, h int) *summedArea {
	s := &summedArea{w: w, h: h, sum: make([]float64, (w+1)*(h+1))}
	for y := 0; y < h; y++ {
		var rowSum float64
		for x := 0; x < w; x++ {
			rowSum += f.Gray(x, y)
			s.sum[(y+1)*(w+1)+x+1] = s.sum[y*(w+1)+x+1] + rowSum
		}
	}
	return s
}

// mean returns the average gray level of the window with top-left (x, y)
// and the given extent, clamped to the frame.
func (s *summedArea) mean(x, y, ww, hh int) float64 {
	x0, y0, x1, y1 := x, y, x+ww, y+hh
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > s.w {
		x1 = s.w
	}
	if y1 > s.h {
		y1 = s.h
	}
	if x0 >= x1 || y0 >= y1 {
		return 0
	}
	w1 := s.w + 1
	total := s.sum[y1*w1+x1] - s.sum[y0*w1+x1] - s.sum[y1*w1+x0] + s.sum[y0*w1+x0]
	return total / float64((x1-x0)*(y1-y0))
}
