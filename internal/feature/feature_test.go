package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"classminer/internal/vidmodel"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func solidFrame(w, h int, r, g, b byte) *vidmodel.Frame {
	f := vidmodel.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, r, g, b)
		}
	}
	return f
}

func noiseFrame(w, h int, rng *rand.Rand) *vidmodel.Frame {
	f := vidmodel.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		}
	}
	return f
}

func TestRGBToHSVKnownColors(t *testing.T) {
	cases := []struct {
		r, g, b byte
		h, s, v float64
	}{
		{255, 0, 0, 0, 1, 1},     // red
		{0, 255, 0, 120, 1, 1},   // green
		{0, 0, 255, 240, 1, 1},   // blue
		{255, 255, 255, 0, 0, 1}, // white
		{0, 0, 0, 0, 0, 0},       // black
	}
	for _, c := range cases {
		h, s, v := RGBToHSV(c.r, c.g, c.b)
		if !almostEqual(h, c.h, 1e-9) || !almostEqual(s, c.s, 1e-9) || !almostEqual(v, c.v, 1e-9) {
			t.Fatalf("RGBToHSV(%d,%d,%d) = (%v,%v,%v), want (%v,%v,%v)",
				c.r, c.g, c.b, h, s, v, c.h, c.s, c.v)
		}
	}
}

func TestRGBToHSVHueRange(t *testing.T) {
	f := func(r, g, b byte) bool {
		h, s, v := RGBToHSV(r, g, b)
		return h >= 0 && h < 360 && s >= 0 && s <= 1 && v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHSVHistogramNormalised(t *testing.T) {
	f := noiseFrame(16, 12, rand.New(rand.NewSource(1)))
	h := HSVHistogram(f, 16, 12)
	if len(h) != ColorBins {
		t.Fatalf("len = %d, want %d", len(h), ColorBins)
	}
	var sum float64
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative bin")
		}
		sum += v
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("histogram sums to %v, want 1", sum)
	}
}

func TestHSVHistogramSolidSingleBin(t *testing.T) {
	f := solidFrame(8, 8, 255, 0, 0)
	h := HSVHistogram(f, 8, 8)
	nonzero := 0
	for _, v := range h {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("solid frame occupies %d bins, want 1", nonzero)
	}
}

func TestHSVHistogramEmptyFrame(t *testing.T) {
	h := HSVHistogram(vidmodel.NewFrame(0, 0), 0, 0)
	for _, v := range h {
		if v != 0 {
			t.Fatal("empty frame histogram must be all zero")
		}
	}
}

func TestHistIntersectionIdentity(t *testing.T) {
	f := noiseFrame(16, 12, rand.New(rand.NewSource(2)))
	h := HSVHistogram(f, 16, 12)
	if got := HistIntersection(h, h); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("self intersection = %v, want 1", got)
	}
}

func TestHistIntersectionDisjoint(t *testing.T) {
	a := HSVHistogram(solidFrame(8, 8, 255, 0, 0), 8, 8)
	b := HSVHistogram(solidFrame(8, 8, 0, 0, 255), 8, 8)
	if got := HistIntersection(a, b); got != 0 {
		t.Fatalf("disjoint intersection = %v, want 0", got)
	}
}

func TestTamuraCoarsenessNormalised(t *testing.T) {
	f := noiseFrame(48, 36, rand.New(rand.NewSource(3)))
	tx := TamuraCoarseness(f, 48, 36)
	if len(tx) != TextureDims {
		t.Fatalf("len = %d, want %d", len(tx), TextureDims)
	}
	var sum float64
	for _, v := range tx {
		if v < 0 {
			t.Fatal("negative texture component")
		}
		sum += v
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("texture sums to %v, want 1", sum)
	}
}

func TestTamuraDistinguishesFineFromCoarse(t *testing.T) {
	// Fine checkerboard vs. large blocks must land on different scales.
	fine := vidmodel.NewFrame(48, 36)
	coarse := vidmodel.NewFrame(48, 36)
	for y := 0; y < 36; y++ {
		for x := 0; x < 48; x++ {
			if (x+y)%2 == 0 {
				fine.Set(x, y, 255, 255, 255)
			}
			if ((x/12)+(y/12))%2 == 0 {
				coarse.Set(x, y, 255, 255, 255)
			}
		}
	}
	tf := TamuraCoarseness(fine, 48, 36)
	tc := TamuraCoarseness(coarse, 48, 36)
	if d := TextureDistanceTerm(tf, tc); d > 0.8 {
		t.Fatalf("fine vs coarse similarity term = %v, want visibly different (< 0.8)", d)
	}
	if d := TextureDistanceTerm(tf, tf); !almostEqual(d, 1, 1e-9) {
		t.Fatalf("self texture term = %v, want 1", d)
	}
}

func TestStSimBoundsAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fa := noiseFrame(32, 24, rng)
	fb := noiseFrame(32, 24, rng)
	ca, ta := HSVHistogram(fa, 32, 24), TamuraCoarseness(fa, 32, 24)
	cb, tb := HSVHistogram(fb, 32, 24), TamuraCoarseness(fb, 32, 24)
	self := StSim(ca, ta, ca, ta)
	if !almostEqual(self, 1, 1e-9) {
		t.Fatalf("self StSim = %v, want 1", self)
	}
	cross := StSim(ca, ta, cb, tb)
	if cross < 0 || cross > 1 {
		t.Fatalf("StSim = %v out of [0,1]", cross)
	}
	if cross >= self {
		t.Fatalf("cross StSim %v should be below self-similarity", cross)
	}
}

func TestStSimSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fa, fb := noiseFrame(16, 16, rng), noiseFrame(16, 16, rng)
	ca, ta := HSVHistogram(fa, 16, 16), TamuraCoarseness(fa, 16, 16)
	cb, tb := HSVHistogram(fb, 16, 16), TamuraCoarseness(fb, 16, 16)
	if !almostEqual(StSim(ca, ta, cb, tb), StSim(cb, tb, ca, ta), 1e-12) {
		t.Fatal("StSim must be symmetric")
	}
}

func TestFrameDiffRange(t *testing.T) {
	a := HSVHistogram(solidFrame(8, 8, 200, 10, 10), 8, 8)
	b := HSVHistogram(solidFrame(8, 8, 10, 10, 200), 8, 8)
	if d := FrameDiff(a, a); d != 0 {
		t.Fatalf("self diff = %v, want 0", d)
	}
	if d := FrameDiff(a, b); !almostEqual(d, 1, 1e-9) {
		t.Fatalf("disjoint diff = %v, want 1", d)
	}
}

// Property: histogram intersection is symmetric and bounded by 1.
func TestHistIntersectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		a := HSVHistogram(noiseFrame(8, 8, rng), 8, 8)
		b := HSVHistogram(noiseFrame(8, 8, rng), 8, 8)
		ab, ba := HistIntersection(a, b), HistIntersection(b, a)
		if !almostEqual(ab, ba, 1e-12) || ab < 0 || ab > 1 {
			t.Fatalf("intersection property violated: %v vs %v", ab, ba)
		}
	}
}

// Property: StSim never exceeds the self-similarity of either operand.
func TestStSimPropertyUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		fa, fb := noiseFrame(12, 12, rng), noiseFrame(12, 12, rng)
		ca, ta := HSVHistogram(fa, 12, 12), TamuraCoarseness(fa, 12, 12)
		cb, tb := HSVHistogram(fb, 12, 12), TamuraCoarseness(fb, 12, 12)
		if StSim(ca, ta, cb, tb) > 1+1e-12 {
			t.Fatal("StSim exceeded 1")
		}
	}
}

func BenchmarkHSVHistogram(b *testing.B) {
	f := noiseFrame(48, 36, rand.New(rand.NewSource(8)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HSVHistogram(f, 48, 36)
	}
}

func BenchmarkTamuraCoarseness(b *testing.B) {
	f := noiseFrame(48, 36, rand.New(rand.NewSource(9)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TamuraCoarseness(f, 48, 36)
	}
}
