package wal

import "classminer/internal/metrics"

// engineMetrics holds the engine's instruments. The zero value is fully
// inert — every instrument is a nil pointer whose methods are no-ops — so
// an engine opened without Options.Metrics pays only nil checks on the
// append and commit paths.
type engineMetrics struct {
	appends     *metrics.Counter   // records staged on the log
	appendBytes *metrics.Counter   // framed bytes staged on the log
	rotations   *metrics.Counter   // active-segment rotations
	fsync       *metrics.Histogram // group-commit fsync latency
	batch       *metrics.Histogram // records acknowledged per group-commit fsync
	checkpoint  *metrics.Histogram // successful checkpoint wall time
	compact     *metrics.Histogram // successful compaction wall time
	shipRecords *metrics.Counter   // records shipped to followers
	shipBytes   *metrics.Counter   // framed bytes shipped to followers
}

// registerMetrics binds the engine's instrumentation to reg. Counters and
// histograms dedupe by name, so an engine reopened on the same registry
// (kill-restart recovery, the durable-library tests) keeps accumulating the
// same series; the gauge callbacks over Stats() are re-registered and
// re-bind to the new engine. Runs once at Open, before any concurrency.
func (e *Engine) registerMetrics(reg *metrics.Registry) {
	e.met = engineMetrics{
		appends: reg.Counter("wal_appends_total",
			"Records staged on the write-ahead log."),
		appendBytes: reg.Counter("wal_append_bytes_total",
			"Framed bytes staged on the write-ahead log."),
		rotations: reg.Counter("wal_rotations_total",
			"Active-segment rotations (seal + new segment)."),
		fsync: reg.Histogram("wal_fsync_duration_seconds",
			"Group-commit fsync latency.", metrics.LatencyBuckets),
		batch: reg.Histogram("wal_group_commit_records",
			"Records acknowledged per group-commit fsync.", metrics.CountBuckets),
		checkpoint: reg.Histogram("wal_checkpoint_duration_seconds",
			"Wall time of successful checkpoints.", metrics.LatencyBuckets),
		compact: reg.Histogram("wal_compact_duration_seconds",
			"Wall time of successful sealed-segment compactions.", metrics.LatencyBuckets),
		shipRecords: reg.Counter("repl_ship_records_total",
			"Records shipped to attached followers."),
		shipBytes: reg.Counter("repl_ship_bytes_total",
			"Framed bytes shipped to attached followers."),
	}
	reg.GaugeFunc("wal_lag_records", "Records appended since the last checkpoint.",
		func() float64 { return float64(e.Stats().Records) })
	reg.GaugeFunc("wal_lag_bytes", "Log bytes appended since the last checkpoint.",
		func() float64 { return float64(e.Stats().Bytes) })
	reg.GaugeFunc("wal_dead_bytes",
		"Estimated bytes of superseded records on the live log (compaction trigger).",
		func() float64 { return float64(e.Stats().DeadBytes) })
	reg.GaugeFunc("wal_segments", "Live log segments (replayed on recovery).",
		func() float64 { return float64(e.Stats().Segments) })
	reg.CounterFunc("wal_checkpoints_total", "Completed checkpoint generations.",
		func() float64 { return float64(e.Stats().Generation) })
	reg.CounterFunc("wal_syncs_total", "Segment-data fsyncs since open.",
		func() float64 { return float64(e.Stats().Syncs) })
}
