package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// pullAll drains follower id's stream from cur to the durable tip through
// repeated bounded ReadFrom calls, returning the decoded payloads and the
// final cursor.
func pullAll(t testing.TB, eng *Engine, id string, cur Cursor, maxBytes int64) ([][]byte, Cursor) {
	t.Helper()
	var out [][]byte
	for {
		batch, next, err := eng.ReadFrom(id, cur, maxBytes)
		if err != nil {
			t.Fatalf("ReadFrom(%+v): %v", cur, err)
		}
		if len(batch) == 0 {
			if next == cur { // at the durable tip
				return out, cur
			}
			// A pure boundary hop (sealed segment exhausted): continue from
			// the head of the next segment.
			cur = next
			continue
		}
		r := bytes.NewReader(batch)
		for {
			frame, rerr := ReadRecord(r)
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				t.Fatalf("decoding shipped batch: %v", rerr)
			}
			out = append(out, append([]byte(nil), frame...))
		}
		cur = next
	}
}

// TestAttachReadFromRoundTrip ships a multi-segment log through bounded
// pulls and verifies the follower sees every record byte-for-byte, the
// backlog drains to zero, and the tip answers with an empty batch.
func TestAttachReadFromRoundTrip(t *testing.T) {
	eng, err := Open(t.TempDir(), compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	want := payloads(40)
	appendAll(t, eng, want)

	cur, err := eng.Attach("f1", Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	pins := eng.Pins()
	if len(pins) != 1 || pins[0].ID != "f1" || pins[0].LagRecords != 40 {
		t.Fatalf("pins after attach = %+v, want f1 40 records behind", pins)
	}
	got, tip := pullAll(t, eng, "f1", cur, 256)
	mustEqual(t, got, want)
	if r, b := eng.MaxPinLag(); r != 0 || b != 0 {
		t.Fatalf("backlog after full drain = %d records %d bytes", r, b)
	}

	// New appends become visible to the same cursor without re-attaching.
	appendAll(t, eng, [][]byte{[]byte("late-record")})
	got, _ = pullAll(t, eng, "f1", tip, 256)
	mustEqual(t, got, [][]byte{[]byte("late-record")})
}

// TestCheckpointPruneStopsAtPin verifies a checkpoint never deletes
// segments an attached follower still needs: with a pin at the log head the
// prune keeps everything, and the follower then replays records that
// predate the checkpoint. Once the cursor advances to the tip the next
// checkpoint reclaims the shipped segments, and the stale pre-checkpoint
// cursor is refused at attach.
func TestCheckpointPruneStopsAtPin(t *testing.T) {
	dir := t.TempDir()
	opts := compactOpts()
	opts.SegmentBytes = 128 // the small test payloads must still span several segments
	eng, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := &memState{}
	eng.SetSource(st.snapshot)
	want := payloads(30)
	for _, p := range want {
		if err := eng.Append(p); err != nil {
			t.Fatal(err)
		}
		st.apply(p)
	}
	cur, err := eng.Attach("f1", Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	preSegs, _ := listSegments(dir)
	if len(preSegs) < 3 {
		t.Fatalf("need several segments, got %d", len(preSegs))
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	postSegs, _ := listSegments(dir)
	if postSegs[0] != preSegs[0] {
		t.Fatalf("checkpoint pruned pinned segment %d (chain now starts at %d)", preSegs[0], postSegs[0])
	}
	// The pinned bytes are still served: the follower replays the full
	// pre-checkpoint history.
	got, tip := pullAll(t, eng, "f1", cur, 512)
	mustEqual(t, got, want)

	// The cursor at the tip is the durability ack; the next checkpoint may
	// now prune the shipped segments.
	if _, _, err := eng.ReadFrom("f1", tip, 512); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append([]byte("post-ckpt")); err != nil {
		t.Fatal(err)
	}
	st.apply([]byte("post-ckpt"))
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	prunedSegs, _ := listSegments(dir)
	if prunedSegs[0] <= preSegs[0] {
		t.Fatalf("prune never advanced past the released pin: chain starts at %d", prunedSegs[0])
	}
	// A cursor from before the prune no longer names live bytes.
	eng.Detach("f1")
	if _, err := eng.Attach("f1", cur); !errors.Is(err, ErrBehindHorizon) {
		t.Fatalf("attach at pruned cursor: %v, want ErrBehindHorizon", err)
	}
}

// TestCompactSkipsPinnedSegments runs the lifecycle workload with a
// follower pinned at the head: compaction must rewrite nothing (the pinned
// bytes stay exactly as shipped, epoch unchanged), and the follower streams
// the original frames. After the follower detaches, compaction reclaims the
// dead records, bumps the epoch, and the old-epoch cursor is refused.
func TestCompactSkipsPinnedSegments(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	lifecycleLog(t, eng)
	wantFrames := collectFrames(t, dir)

	cur, err := eng.Attach("pinned", Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsCompacted != 0 || res.RecordsDropped != 0 {
		t.Fatalf("compaction touched pinned segments: %+v", res)
	}
	got, _ := pullAll(t, eng, "pinned", cur, 1<<20)
	mustEqual(t, got, wantFrames)

	eng.Detach("pinned")
	res, err = eng.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsDropped == 0 {
		t.Fatalf("compaction after detach reclaimed nothing: %+v", res)
	}
	// The rewrite bumped the epoch: a cursor minted before it must re-seed,
	// never replay from an offset into rewritten bytes.
	if _, err := eng.Attach("pinned", cur); !errors.Is(err, ErrBehindHorizon) {
		t.Fatalf("attach with pre-compaction epoch: %v, want ErrBehindHorizon", err)
	}
}

// collectFrames replays dir's raw sealed+active frames in order.
func collectFrames(t testing.TB, dir string) [][]byte {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for _, idx := range segs {
		raw, err := os.ReadFile(filepath.Join(dir, segmentName(idx)))
		if err != nil {
			t.Fatal(err)
		}
		r := bytes.NewReader(raw)
		for {
			frame, rerr := ReadRecord(r)
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				t.Fatal(rerr)
			}
			out = append(out, append([]byte(nil), frame...))
		}
	}
	return out
}

// TestPinBudgetEviction lets a follower fall further behind than the pin
// budget allows and verifies reclamation evicts it rather than wedging:
// the pin disappears, ReadFrom says not-attached, and after the checkpoint
// prunes the log the stale cursor can only re-seed.
func TestPinBudgetEviction(t *testing.T) {
	opts := compactOpts()
	opts.ReplPinBudgetBytes = 512
	eng, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := &memState{}
	eng.SetSource(st.snapshot)

	cur, err := eng.Attach("glacial", Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		p := []byte(fmt.Sprintf("budget-%04d-%s", i, string(bytes.Repeat([]byte("y"), 64))))
		if err := eng.Append(p); err != nil {
			t.Fatal(err)
		}
		st.apply(p)
	}
	if _, lagBytes := eng.MaxPinLag(); lagBytes <= opts.ReplPinBudgetBytes {
		t.Fatalf("backlog %d bytes never exceeded the %d budget", lagBytes, opts.ReplPinBudgetBytes)
	}
	// Reclamation (here: a checkpoint) evicts over-budget pins first.
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if pins := eng.Pins(); len(pins) != 0 {
		t.Fatalf("over-budget pin survived reclamation: %+v", pins)
	}
	if _, _, err := eng.ReadFrom("glacial", cur, 1<<20); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("ReadFrom after eviction: %v, want ErrNotAttached", err)
	}
	if _, err := eng.Attach("glacial", cur); !errors.Is(err, ErrBehindHorizon) {
		t.Fatalf("re-attach at evicted cursor: %v, want ErrBehindHorizon", err)
	}
}

// TestSeedReturnsSnapshotAndCursor drives the cold-follower path: before
// any checkpoint Seed hands out no snapshot (the log is the history), after
// one it streams the snapshot and a cursor whose log tail contains exactly
// the records the snapshot does not cover.
func TestSeedReturnsSnapshotAndCursor(t *testing.T) {
	eng, err := Open(t.TempDir(), compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := &memState{}
	eng.SetSource(st.snapshot)

	rc, _, err := eng.Seed("cold")
	if err != nil {
		t.Fatal(err)
	}
	if rc != nil {
		rc.Close()
		t.Fatal("never-checkpointed engine produced a snapshot")
	}
	eng.Detach("cold")

	base := payloads(10)
	for _, p := range base {
		if err := eng.Append(p); err != nil {
			t.Fatal(err)
		}
		st.apply(p)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tail := [][]byte{[]byte("tail-a"), []byte("tail-b")}
	appendAll(t, eng, tail)

	rc, cur, err := eng.Seed("cold")
	if err != nil {
		t.Fatal(err)
	}
	if rc == nil {
		t.Fatal("no snapshot after checkpoint")
	}
	snap, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	(&memState{recs: base}).snapshot(&want)
	if !bytes.Equal(snap, want.Bytes()) {
		t.Fatalf("seed snapshot mismatch:\n%s\nvs\n%s", snap, want.Bytes())
	}
	got, _ := pullAll(t, eng, "cold", cur, 1<<20)
	mustEqual(t, got, tail)
}

// TestReadFromPastTipReseeds covers the relaxed-sync crash asymmetry: a
// follower whose cursor runs ahead of the leader's durable log must be told
// to re-seed, not silently wait for bytes that will never exist.
func TestReadFromPastTipReseeds(t *testing.T) {
	eng, err := Open(t.TempDir(), compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	appendAll(t, eng, payloads(3))
	cur, err := eng.Attach("ahead", Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	_, tip := pullAll(t, eng, "ahead", cur, 1<<20)
	past := Cursor{Segment: tip.Segment, Offset: tip.Offset + 64, Epoch: tip.Epoch}
	if _, _, err := eng.ReadFrom("ahead", past, 1<<20); !errors.Is(err, ErrBehindHorizon) {
		t.Fatalf("cursor past the tip: %v, want ErrBehindHorizon", err)
	}
}

// TestDurableNotifyWakesOnAppend parks on the notification channel and
// verifies one append closes it — the primitive long-poll pulls block on.
func TestDurableNotifyWakesOnAppend(t *testing.T) {
	eng, err := Open(t.TempDir(), compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ch := eng.DurableNotify()
	select {
	case <-ch:
		t.Fatal("notify channel closed before any append")
	default:
	}
	if err := eng.Append([]byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("append never signalled the durable notify channel")
	}
}
