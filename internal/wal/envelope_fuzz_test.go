package wal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRecord exercises the envelope decoder on arbitrary bytes from
// both directions: (1) any frame EncodeRecord accepts must round-trip
// through DecodeRecord unchanged, and (2) arbitrary input must either
// decode to one of the known record kinds — a legacy frame always
// decoding as a registration whose payload is the input itself — or fail,
// never panic and never invent a typed record with missing parts.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte(`{"subcluster":"medicine","result":{"videoName":"v1"}}`)) // legacy
	f.Add([]byte(`{"type":"register","version":1,"key":"v1","payload":{"a":1}}`))
	f.Add([]byte(`{"type":"tombstone","version":1,"key":"v1"}`))
	f.Add([]byte(`{"type":"replace","version":1,"key":"v1","payload":{}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Round trip: data as a register payload (must be JSON for the
		// envelope to embed it raw). Embedding as a RawMessage compacts
		// insignificant whitespace, so the invariant is against the
		// compacted form.
		if json.Valid(data) && len(data) > 0 {
			var want bytes.Buffer
			if err := json.Compact(&want, data); err == nil {
				frame, err := EncodeRecord(RecordRegister, "fuzz-key", data)
				if err != nil {
					t.Fatalf("encoding valid JSON payload failed: %v", err)
				}
				rec, err := DecodeRecord(frame)
				if err != nil {
					t.Fatalf("round trip failed: %v", err)
				}
				if rec.Type != RecordRegister || rec.Key != "fuzz-key" || !bytes.Equal(rec.Payload, want.Bytes()) {
					t.Fatalf("round trip mutated record: %+v, want payload %q", rec, want.Bytes())
				}
			}
		}

		// Decode: arbitrary input.
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		switch rec.Type {
		case RecordRegister, RecordReplace:
			if rec.Version == 0 {
				// Legacy fallback: the payload is the input itself and the
				// kind is always register.
				if rec.Type != RecordRegister || !bytes.Equal(rec.Payload, data) {
					t.Fatalf("legacy decode invariant broken: %+v", rec)
				}
			} else if rec.Key == "" || len(rec.Payload) == 0 {
				t.Fatalf("typed %s missing key or payload: %+v", rec.Type, rec)
			}
		case RecordTombstone:
			if rec.Key == "" {
				t.Fatalf("tombstone without key: %+v", rec)
			}
		default:
			t.Fatalf("decoder produced unknown kind %q", rec.Type)
		}
	})
}
