package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"classminer/internal/store"
)

// Sealed-segment compaction. A checkpoint rewrites the whole library to
// drop superseded log; compaction reclaims the same waste far cheaper by
// rewriting only the sealed segments that actually shrank. A record is
// dead once a *later* tombstone or replace record exists for its key:
// whatever it contributed to replay, the later record fully overrides
// (replace installs its own payload regardless of prior state, tombstone
// deletes regardless of prior state). A plain register never supersedes —
// replay skips it when the key already exists, so records before it still
// decide the outcome and must survive.
//
// Commit protocol, crash-safe at every step:
//
//  1. Each shrinking sealed segment is rewritten through
//     store.WriteFileAtomic — temp file, fsync, rename over the live name,
//     directory fsync. A crash leaves either the old or the new segment
//     fully live (plus at worst an orphaned temp, pruned by the next
//     Open). Records keep their relative order and their segment, so any
//     mix of old and new segments is a valid replay chain.
//  2. If the leading segments emptied completely, a new MANIFEST with
//     FirstSegment advanced past them is committed (the same atomically-
//     replaced versioned manifest checkpoints use), and only then are the
//     empty files removed — a crash in between leaves files the next Open
//     prunes as stale. Mid-chain segments that emptied stay as zero-byte
//     files: deleting one would look like a damaged chain to Replay.
//
// Compaction never touches the active segment (appends own it); dead
// records there are picked up after rotation seals them.

// CompactResult reports what one Compact pass did.
type CompactResult struct {
	// SegmentsScanned is how many sealed segments were considered.
	SegmentsScanned int `json:"segmentsScanned"`
	// SegmentsCompacted is how many were rewritten smaller.
	SegmentsCompacted int `json:"segmentsCompacted"`
	// SegmentsRemoved is how many fully-empty leading segments were
	// dropped from the chain via the manifest.
	SegmentsRemoved int `json:"segmentsRemoved"`
	// RecordsDropped and BytesFreed total the reclaimed log.
	RecordsDropped int64 `json:"recordsDropped"`
	BytesFreed     int64 `json:"bytesFreed"`
}

// recPos orders records across the live log: segment index first, then the
// record's ordinal within its segment.
type recPos struct {
	seg uint64
	rec int64
}

func (p recPos) after(q recPos) bool {
	return p.seg > q.seg || (p.seg == q.seg && p.rec > q.rec)
}

// Compact rewrites the sealed segments, dropping every record superseded by
// a later tombstone or replace for the same key, and advances the manifest
// past leading segments that emptied. It is safe to run concurrently with
// appends (rotation included) and serialises with checkpoints; replayed
// state is identical before and after. Legacy records whose key cannot be
// probed are never dropped.
func (e *Engine) Compact() (CompactResult, error) {
	e.cpMu.Lock()
	defer e.cpMu.Unlock()
	cStart := time.Now()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return CompactResult{}, ErrClosed
	}
	if e.damaged {
		e.mu.Unlock()
		return CompactResult{}, fmt.Errorf("wal: refusing to compact a damaged segment chain (checkpoint heals it first)")
	}
	start, end := e.segStart, e.activeIdx // sealed segments: [start, end)
	activeLimit := e.activeSize
	if e.opts.Sync == SyncAlways {
		// Group commit means activeSize can run ahead of what is durable
		// (frames staged but not yet fsynced — and clawed back wholesale if
		// that fsync fails). Only durable records may serve as evidence for
		// dropping fsynced sealed registrations; unsynced tombstones are
		// simply invisible to this pass and reclaimed by the next one.
		activeLimit = e.durableSize
	}
	activeFile := e.active
	deadRecs0, deadBytes0 := e.deadRecords, e.deadBytes
	// Attached followers pin the log: nothing at or past the oldest pin may
	// be rewritten or removed, because a mid-segment cursor is only valid
	// against the exact bytes that were shipped. Followers whose backlog
	// exceeds the pin budget are evicted first (they will re-seed), so one
	// dead replica can never wedge reclamation. minPin can only rise while
	// cpMu is held — Attach needs cpMu and ReadFrom moves cursors forward —
	// so capturing it once here covers the whole pass.
	e.evictOverBudgetLocked()
	minPin := e.minPinLocked()
	e.mu.Unlock()

	res := CompactResult{SegmentsScanned: int(end - start)}
	if end <= start {
		return res, nil
	}
	reclaimEnd := end // sealed segments eligible for rewrite/removal: [start, reclaimEnd)
	if minPin < reclaimEnd {
		reclaimEnd = minPin
	}

	// The active segment's records are about to justify durably dropping
	// fsynced sealed registrations, so they must be just as durable first:
	// under SyncInterval/SyncNever an acknowledged-but-unsynced tombstone
	// could vanish to power loss (torn-tail truncation) *after* the
	// registration it killed was already rewritten away — a combined state
	// that never existed. Sync before reading (SyncAlways has nothing
	// pending). If a rotation sealed the captured file meanwhile,
	// rotateLocked already synced it — a closed-file error means the bytes
	// are safe.
	if e.opts.Sync != SyncAlways {
		if err := activeFile.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
			return res, fmt.Errorf("wal: syncing active segment before compaction: %w", err)
		}
	}

	// Pass 1: one full read of the live log, collecting (a) the last
	// superseding record per key — active segment included, since a
	// tombstone usually lands there long after the registration it kills
	// was sealed — and (b) per-record (key, size) metadata for every
	// sealed segment, so the rewrite pass can decide each segment's fate
	// without re-reading or re-decoding it. Appends racing past
	// activeLimit are missed, which only means a record stays alive one
	// compaction longer.
	super := map[string]recPos{}
	type recMeta struct {
		key  string // "" = unclassifiable: never evidence, never dropped
		size int64
	}
	sealed := make(map[uint64][]recMeta, end-start)
	var active []recMeta
	var rec Record // scratch, reused across every frame of the pass
	for idx := start; idx <= end; idx++ {
		limit := int64(-1)
		if idx == end {
			limit = activeLimit
		}
		err := e.scanSegment(idx, limit, func(ord int64, frame []byte) error {
			m := recMeta{size: int64(len(frame)) + FrameOverhead}
			if derr := DecodeRecordInto(&rec, frame); derr == nil && rec.Key != "" {
				m.key = rec.Key
				if rec.supersedes() {
					pos := recPos{seg: idx, rec: ord}
					if cur, ok := super[rec.Key]; !ok || pos.after(cur) {
						super[rec.Key] = pos
					}
				}
			}
			if idx == end {
				active = append(active, m)
			} else {
				sealed[idx] = append(sealed[idx], m)
			}
			return nil
		})
		if err != nil {
			return res, err
		}
	}
	// deadAt reports whether the record at (idx, ord) is superseded by a
	// strictly later record for the same key.
	deadAt := func(key string, idx uint64, ord int64) bool {
		if key == "" {
			return false
		}
		sp, ok := super[key]
		return ok && sp.after(recPos{seg: idx, rec: ord})
	}

	// A rewrite invalidates every replication cursor pointing into the old
	// bytes. The compaction epoch is bumped and committed *before* the first
	// rewrite so a crash in between errs toward a needless follower re-seed,
	// never toward replaying from a stale offset: any cursor minted under
	// the old epoch is refused at re-attach. (Attached pins are unaffected —
	// their segments are excluded from rewriting entirely.)
	anyRewrite := false
	for idx := start; idx < reclaimEnd && !anyRewrite; idx++ {
		for ord, m := range sealed[idx] {
			if deadAt(m.key, idx, int64(ord)) {
				anyRewrite = true
				break
			}
		}
	}
	if anyRewrite {
		e.mu.Lock()
		man := e.man
		e.mu.Unlock()
		man.Compactions++
		if err := man.write(e.dir); err != nil {
			return res, err
		}
		e.mu.Lock()
		e.man = man
		e.mu.Unlock()
	}

	// Pass 2: rewrite only the sealed segments that actually lost records
	// (decided from pass 1's metadata — untouched segments are never read
	// again). Each shrinking segment is re-read from disk so only its
	// surviving frames are in memory at a time. Lag and dead counters are
	// adjusted per committed segment, not at the end: if a later rewrite
	// fails (disk full), the records already physically dropped must not
	// stay counted. decRecs/decBytes remember how much of the dead
	// estimate those adjustments consumed, so the final exact reset can
	// still separate "noted while we ran" from "already accounted".
	segBytes := make(map[uint64]int64, end-start)
	var decRecs, decBytes int64
	account := func(records, bytes int64) {
		e.mu.Lock()
		e.lagRecords -= records
		e.lagBytes -= bytes
		dr, db := records, bytes
		if dr > e.deadRecords {
			dr = e.deadRecords
		}
		if db > e.deadBytes {
			db = e.deadBytes
		}
		e.deadRecords -= dr
		e.deadBytes -= db
		decRecs += dr
		decBytes += db
		e.mu.Unlock()
	}
	// Fully-dead segments at the head of the chain are not rewritten at
	// all: the manifest advance below removes them wholesale, so paying a
	// temp-write + two fsyncs to produce a zero-byte file first would be
	// waste. Their drops are deferred and accounted only once the advance
	// commits (until then the records are still live on disk).
	type dropTally struct{ records, bytes int64 }
	deferred := map[uint64]dropTally{}
	leadingEmpty := true
	// Dead records in pinned segments are real waste this pass must leave in
	// place; they are tallied so the residual estimate below still counts
	// them (a later pass reclaims them once the pins move on).
	var pinnedDeadRecs, pinnedDeadBytes int64
	for idx := start; idx < end; idx++ {
		var dropped, droppedBytes, total int64
		for ord, m := range sealed[idx] {
			total += m.size
			if deadAt(m.key, idx, int64(ord)) {
				dropped++
				droppedBytes += m.size
			}
		}
		if idx >= reclaimEnd {
			segBytes[idx] = total
			if total > 0 {
				leadingEmpty = false
			}
			pinnedDeadRecs += dropped
			pinnedDeadBytes += droppedBytes
			continue
		}
		keptBytes := total - droppedBytes
		segBytes[idx] = keptBytes
		if leadingEmpty && keptBytes == 0 && dropped > 0 {
			deferred[idx] = dropTally{records: dropped, bytes: droppedBytes}
			continue
		}
		if keptBytes > 0 {
			leadingEmpty = false
		}
		if dropped == 0 {
			continue
		}
		var kept [][]byte
		err := e.scanSegment(idx, -1, func(ord int64, frame []byte) error {
			// The segment is sealed and cpMu is held, so it cannot have
			// changed since pass 1; the bounds guard is pure paranoia.
			if ord < int64(len(sealed[idx])) && deadAt(sealed[idx][ord].key, idx, ord) {
				return nil
			}
			// Retaining frame is safe: ReadRecord allocates each payload
			// fresh and scanSegment never reuses it.
			kept = append(kept, frame)
			return nil
		})
		if err != nil {
			return res, err
		}
		err = store.WriteFileAtomic(e.segPath(idx), func(w io.Writer) error {
			var buf []byte
			for _, frame := range kept {
				buf = appendRecord(buf[:0], frame)
				if _, werr := w.Write(buf); werr != nil {
					return werr
				}
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("wal: rewriting %s: %w", segmentName(idx), err)
		}
		res.SegmentsCompacted++
		res.RecordsDropped += dropped
		res.BytesFreed += droppedBytes
		account(dropped, droppedBytes)
		e.opts.Logf("wal: compacted %s (%d records, %d bytes dropped)", segmentName(idx), dropped, droppedBytes)
		if err := e.hook("rewrite", idx); err != nil {
			return res, err
		}
	}

	// Leading segments that emptied can leave the chain entirely; the
	// manifest commit is what makes their removal crash-safe.
	newFirst := start
	for newFirst < reclaimEnd && segBytes[newFirst] == 0 {
		newFirst++
	}
	if newFirst > start {
		if err := e.hook("pre-manifest", newFirst); err != nil {
			return res, err
		}
		e.mu.Lock()
		man := e.man
		e.mu.Unlock()
		man.FirstSegment = newFirst
		if err := man.write(e.dir); err != nil {
			return res, err
		}
		e.mu.Lock()
		e.man = man
		e.segStart = newFirst
		e.mu.Unlock()
		if err := e.hook("manifest", newFirst); err != nil {
			return res, err
		}
		for idx := start; idx < newFirst; idx++ {
			if err := os.Remove(e.segPath(idx)); err != nil && !os.IsNotExist(err) {
				e.opts.Logf("wal: pruning %s: %v", segmentName(idx), err)
			}
			res.SegmentsRemoved++
			if d, ok := deferred[idx]; ok {
				// The manifest no longer names the segment, so its deferred
				// drops are real now.
				res.RecordsDropped += d.records
				res.BytesFreed += d.bytes
				account(d.records, d.bytes)
				e.opts.Logf("wal: removed fully-dead %s (%d records, %d bytes dropped)",
					segmentName(idx), d.records, d.bytes)
			}
		}
	}

	// Residual dead log: records in the active segment a sealed-side
	// supersession rule cannot reach yet.
	var deadActiveRecs, deadActiveBytes int64
	for ord, m := range active {
		if deadAt(m.key, end, int64(ord)) {
			deadActiveRecs++
			deadActiveBytes += m.size
		}
	}

	// Replace the dead estimate with the exact residue plus whatever was
	// noted while we ran (those records were not considered this pass):
	// current = start + noted - consumed, so noted = current - start +
	// consumed, and the clamped per-segment decrements above keep it
	// non-negative.
	e.mu.Lock()
	e.deadRecords = deadActiveRecs + pinnedDeadRecs + (e.deadRecords - deadRecs0 + decRecs)
	e.deadBytes = deadActiveBytes + pinnedDeadBytes + (e.deadBytes - deadBytes0 + decBytes)
	// Pinned dead bytes are as unreachable as active-side ones until the
	// pins move on, so fold them into the trigger's residue too — a lagging
	// follower must not convert the dead backlog into a loop of futile
	// passes. (Rotation still zeroes the residue; at worst that costs one
	// re-scan per rotation while a pin holds the log.)
	e.deadActiveBytes = deadActiveBytes + pinnedDeadBytes
	e.mu.Unlock()

	if res.RecordsDropped > 0 || res.SegmentsRemoved > 0 {
		e.opts.Logf("wal: compaction dropped %d records (%d bytes) across %d segments, removed %d",
			res.RecordsDropped, res.BytesFreed, res.SegmentsCompacted, res.SegmentsRemoved)
	}
	e.met.compact.ObserveSince(cStart)
	return res, nil
}

// scanSegment reads segment idx's framed records in order, invoking fn with
// each record's ordinal and payload. limit >= 0 caps the read to that many
// leading bytes (the snapshot of the active segment's acknowledged size);
// the cap always falls on a record boundary. Unlike replay, compaction has
// no licence to stop early: damage in a segment it is about to rewrite is
// an error, not a truncation point.
func (e *Engine) scanSegment(idx uint64, limit int64, fn func(ord int64, frame []byte) error) error {
	f, err := os.Open(e.segPath(idx))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if limit >= 0 {
		r = io.LimitReader(f, limit)
	}
	br := bufio.NewReader(r)
	for ord := int64(0); ; ord++ {
		frame, rerr := ReadRecord(br)
		if rerr == io.EOF {
			return nil
		}
		if errors.Is(rerr, ErrTorn) || errors.Is(rerr, ErrCorrupt) {
			return fmt.Errorf("wal: compacting %s: %w", segmentName(idx), rerr)
		}
		if rerr != nil {
			return rerr
		}
		if err := fn(ord, frame); err != nil {
			return err
		}
	}
}

// hook runs the test-only fault-injection hook, if any.
func (e *Engine) hook(stage string, seg uint64) error {
	e.mu.Lock()
	h := e.compactHook
	e.mu.Unlock()
	if h == nil {
		return nil
	}
	return h(stage, seg)
}
