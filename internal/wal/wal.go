// Package wal is the durable storage engine beneath a served video library.
// The paper's thesis is that mined content structure turns a tape shelf into
// a *database*; a database that forgets every registration on a crash is not
// one, so this package provides what the related production systems treat as
// table stakes: an append-only write-ahead log with checkpointed snapshots
// and crash recovery.
//
// On disk a data directory looks like
//
//	data/
//	  MANIFEST                    current generation, snapshot, first segment
//	  snap-00000000000000000003.json   full library snapshot (store format)
//	  wal-00000000000000000007.log     sealed segment
//	  wal-00000000000000000008.log     active segment (appends go here)
//
// Records are length-prefixed and CRC32-C framed; appends go to the active
// segment, which rotates at Options.SegmentBytes. Replay walks the segments
// named live by MANIFEST, yields every intact record in append order, and
// stops at the first torn or corrupt frame — a torn tail on the active
// segment is physically truncated at open so the log always ends clean. A
// checkpoint writes a full snapshot via store.WriteFileAtomic, commits it by
// atomically replacing MANIFEST, then prunes the segments the snapshot
// superseded. Recovery is therefore: load MANIFEST's snapshot, replay the
// segments from MANIFEST's first segment, done.
//
// Durability is configurable per deployment: fsync every record (default,
// survives power loss), on a background interval (bounded loss window), or
// never (test/bulk-load mode, survives process crash but not power loss).
package wal

import (
	"errors"
	"time"

	"classminer/internal/metrics"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record (default). No
	// acknowledged record is ever lost, even to power failure.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs dirty segments every Options.SyncEvery on a
	// background goroutine: at most one interval of acknowledged records is
	// exposed to power loss. Process crashes lose nothing either way — the
	// OS has the writes.
	SyncInterval
	// SyncNever leaves syncing to the OS page cache (and Close). For tests
	// and bulk loads.
	SyncNever
)

// Options configures an Engine. The zero value is a safe default: 4 MiB
// segments, fsync on every record, auto-checkpoint at 64 MiB or 10k records
// of log lag.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 4 MiB).
	SegmentBytes int64
	// Sync is the fsync policy for appended records (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// CheckpointBytes triggers a background checkpoint once that many log
	// bytes accumulate past the last one (default 64 MiB; negative
	// disables).
	CheckpointBytes int64
	// CheckpointRecords likewise triggers on record count (default 10000;
	// negative disables).
	CheckpointRecords int64
	// CompactBytes triggers a background sealed-segment compaction once
	// that many dead bytes — records superseded by later tombstones or
	// replacements, reported via NoteDead — accumulate on the log (default
	// 8 MiB; negative disables). Compaction is cheaper than a checkpoint:
	// it rewrites only the sealed segments that shrank, not a full
	// snapshot.
	CompactBytes int64
	// ReplPinBudgetBytes bounds how many bytes of unshipped backlog an
	// attached follower's pin may hold against compaction and checkpoint
	// pruning (default 512 MiB; negative disables eviction). Past the
	// budget the pin is evicted and the follower re-seeds from the newest
	// snapshot — reclamation never wedges behind a dead replica.
	ReplPinBudgetBytes int64
	// Metrics, when non-nil, receives the engine's instrumentation: append
	// and fsync counters/histograms, group-commit batch sizes, and
	// scrape-time gauges over Stats(). Reopening an engine on the same
	// registry (kill-restart recovery) re-binds the gauge callbacks to the
	// new engine and keeps accumulating the shared counters.
	Metrics *metrics.Registry
	// Logf receives recovery and checkpoint notices (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 64 << 20
	}
	if o.CheckpointRecords == 0 {
		o.CheckpointRecords = 10000
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 8 << 20
	}
	if o.ReplPinBudgetBytes == 0 {
		o.ReplPinBudgetBytes = 512 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats is a point-in-time view of the engine's durability state: how much
// log has accumulated since the last checkpoint (the replay cost of a crash
// right now) and where the checkpoint generation stands.
type Stats struct {
	// Records and Bytes count the log appended since the last checkpoint.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// DeadRecords and DeadBytes estimate how much of that log is
	// superseded — registrations a later tombstone or replacement made
	// irrelevant (reported via NoteDead, recomputed exactly by Compact).
	// Dead log is pure replay and disk waste; compaction reclaims the
	// sealed-segment share of it.
	DeadRecords int64 `json:"deadRecords"`
	DeadBytes   int64 `json:"deadBytes"`
	// LiveRecords is Records minus DeadRecords: the portion of the replay
	// a recovery actually keeps.
	LiveRecords int64 `json:"liveRecords"`
	// Segments is the number of live log segments (replayed on recovery).
	Segments int `json:"segments"`
	// Generation counts completed checkpoints.
	Generation uint64 `json:"generation"`
	// Syncs counts segment-data fsyncs since open. Under SyncAlways with
	// concurrent appenders, Records/Syncs is the group-commit batching
	// ratio — how many acknowledged records each disk flush amortised.
	Syncs int64 `json:"syncs"`
}

// ErrClosed is returned by operations on a closed Engine.
var ErrClosed = errors.New("wal: engine closed")
