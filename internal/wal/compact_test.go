package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// compactOpts keeps auto-checkpointing and auto-compaction out of the way
// and rotates segments aggressively so a handful of records spans several.
func compactOpts() Options {
	return Options{
		SegmentBytes:      512,
		Sync:              SyncNever,
		CheckpointBytes:   -1,
		CheckpointRecords: -1,
		CompactBytes:      -1,
	}
}

// mustRecord builds one typed record frame.
func mustRecord(t testing.TB, kind, key, body string) []byte {
	t.Helper()
	var payload []byte
	if kind != RecordTombstone {
		payload = []byte(fmt.Sprintf(`{"key":%q,"body":%q}`, key, body))
	}
	frame, err := EncodeRecord(kind, key, payload)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// registerBody pads register payloads so segments rotate quickly.
func registerBody(i int) string {
	return fmt.Sprintf("%04d-%s", i, strings.Repeat("x", 160))
}

// applyRecords folds a replayed record stream into final per-key state
// using the library's replay semantics: register is skip-if-present,
// replace is upsert, tombstone is delete-if-present.
func applyRecords(t testing.TB, frames [][]byte) map[string]string {
	t.Helper()
	state := map[string]string{}
	for i, frame := range frames {
		rec, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		switch rec.Type {
		case RecordRegister:
			if _, ok := state[rec.Key]; !ok {
				state[rec.Key] = string(rec.Payload)
			}
		case RecordReplace:
			state[rec.Key] = string(rec.Payload)
		case RecordTombstone:
			delete(state, rec.Key)
		}
	}
	return state
}

// replayState reopens dir and returns the final applied state plus the raw
// record count.
func replayState(t testing.TB, dir string) (map[string]string, int) {
	t.Helper()
	eng, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	frames := collect(t, eng)
	return applyRecords(t, frames), len(frames)
}

func sealedBytes(t testing.TB, dir string) int64 {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, idx := range segs[:len(segs)-1] { // last segment is active
		fi, err := os.Stat(filepath.Join(dir, segmentName(idx)))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// lifecycleLog appends a register/delete/replace workload that leaves dead
// records across several sealed segments: registers k0..k9, deletes the
// even half, replaces k1 and k3, then re-registers k2 (delete followed by
// fresh register — the sequence whose tombstone must survive compaction).
func lifecycleLog(t testing.TB, eng *Engine) {
	t.Helper()
	for i := 0; i < 10; i++ {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordRegister, fmt.Sprintf("k%d", i), registerBody(i))})
	}
	for i := 0; i < 10; i += 2 {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordTombstone, fmt.Sprintf("k%d", i), "")})
	}
	appendAll(t, eng, [][]byte{
		mustRecord(t, RecordReplace, "k1", registerBody(101)),
		mustRecord(t, RecordReplace, "k3", registerBody(103)),
		mustRecord(t, RecordRegister, "k2", registerBody(202)),
	})
	// Pad with fresh keys so the mutation records above are sealed too.
	for i := 20; i < 26; i++ {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordRegister, fmt.Sprintf("k%d", i), registerBody(i))})
	}
}

// TestCompactDropsSuperseded: compaction must shrink the sealed log, drop
// only records a later tombstone or replace superseded, and leave the
// replayed state identical.
func TestCompactDropsSuperseded(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	lifecycleLog(t, eng)

	before := collect(t, eng)
	wantState := applyRecords(t, before)
	beforeBytes := sealedBytes(t, dir)
	beforeStats := eng.Stats()

	res, err := eng.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsDropped == 0 || res.SegmentsCompacted == 0 {
		t.Fatalf("compaction reclaimed nothing: %+v", res)
	}
	afterBytes := sealedBytes(t, dir)
	if afterBytes >= beforeBytes {
		t.Fatalf("sealed bytes %d -> %d, want a shrink", beforeBytes, afterBytes)
	}
	if got := eng.Stats(); got.Records != beforeStats.Records-res.RecordsDropped ||
		got.Bytes != beforeStats.Bytes-res.BytesFreed {
		t.Fatalf("stats not adjusted: before %+v, after %+v, result %+v", beforeStats, got, res)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	gotState, records := replayState(t, dir)
	if len(before)-int(res.RecordsDropped) != records {
		t.Fatalf("replayed %d records, want %d", records, len(before)-int(res.RecordsDropped))
	}
	if fmt.Sprint(gotState) != fmt.Sprint(wantState) {
		t.Fatalf("state diverged after compaction:\n got %v\nwant %v", gotState, wantState)
	}
	// The re-registered key's tombstone must have survived: without it the
	// snapshot-free replay would still be correct, but a register before it
	// would resurrect. Check semantics directly: k2 maps to the *new* body.
	if !strings.Contains(gotState["k2"], "0202") && !strings.Contains(gotState["k2"], "202") {
		t.Fatalf("k2 state lost its re-registration: %q", gotState["k2"])
	}
}

// TestCompactIdempotent: a second pass over an already-compacted log finds
// nothing (no dead records remain in sealed segments).
func TestCompactIdempotent(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	lifecycleLog(t, eng)
	if _, err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsDropped != 0 || res.SegmentsCompacted != 0 {
		t.Fatalf("second compaction reclaimed %+v, want nothing", res)
	}
}

// TestCompactAdvancesManifestPastEmptyPrefix: when the leading segments
// empty completely, the manifest's FirstSegment advances and the files are
// removed — committed through the same atomically-replaced MANIFEST a
// checkpoint uses, so a crash anywhere leaves a consistent chain.
func TestCompactAdvancesManifestPastEmptyPrefix(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the first segments with registrations, then kill them all.
	for i := 0; i < 6; i++ {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordRegister, fmt.Sprintf("p%d", i), registerBody(i))})
	}
	for i := 0; i < 6; i++ {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordTombstone, fmt.Sprintf("p%d", i), "")})
	}
	// Seal the tombstone segments behind fresh traffic.
	for i := 10; i < 16; i++ {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordRegister, fmt.Sprintf("q%d", i), registerBody(i))})
	}
	segsBefore, _ := listSegments(dir)
	res, err := eng.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsRemoved == 0 {
		t.Fatalf("no leading segments removed: %+v (segments before: %v)", res, segsBefore)
	}
	man, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.FirstSegment == 1 {
		t.Fatal("manifest FirstSegment did not advance")
	}
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("segment count %d -> %d, want fewer", len(segsBefore), len(segsAfter))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	state, _ := replayState(t, dir)
	for i := 0; i < 6; i++ {
		if _, ok := state[fmt.Sprintf("p%d", i)]; ok {
			t.Fatalf("deleted key p%d resurrected", i)
		}
	}
	for i := 10; i < 16; i++ {
		if _, ok := state[fmt.Sprintf("q%d", i)]; !ok {
			t.Fatalf("live key q%d lost", i)
		}
	}
}

// TestCompactCrashStages is the fault-injection half of the crash-safety
// story: abort Compact between each commit stage (after a segment rewrite,
// before the manifest swap, after the manifest swap but before the old
// segments are removed) the way SIGKILL would, then recover and verify the
// replayed state matches the never-crashed reference at every stage.
func TestCompactCrashStages(t *testing.T) {
	// Reference: the same workload, never crashed, never compacted.
	refDir := t.TempDir()
	refEng, err := Open(refDir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	lifecycleLogPrefixDead(t, refEng)
	wantState := applyRecords(t, collect(t, refEng))
	refEng.Close()

	for _, stage := range []string{"rewrite", "pre-manifest", "manifest"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			eng, err := Open(dir, compactOpts())
			if err != nil {
				t.Fatal(err)
			}
			lifecycleLogPrefixDead(t, eng)
			boom := fmt.Errorf("injected crash at %s", stage)
			eng.mu.Lock()
			eng.compactHook = func(s string, _ uint64) error {
				if s == stage {
					return boom
				}
				return nil
			}
			eng.mu.Unlock()
			if _, err := eng.Compact(); err != boom {
				t.Fatalf("Compact = %v, want injected crash", err)
			}
			// SIGKILL-style: drop the engine without further writes (Close
			// only fsyncs, which a crash would forfeit anyway under
			// SyncNever nothing is pending).
			eng.Close()

			gotState, _ := replayState(t, dir)
			if fmt.Sprint(gotState) != fmt.Sprint(wantState) {
				t.Fatalf("state diverged after crash at %s:\n got %v\nwant %v", stage, gotState, wantState)
			}
			// A second compaction over the crashed dir must finish the job.
			eng2, err := Open(dir, compactOpts())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng2.Compact(); err != nil {
				t.Fatalf("resumed compaction: %v", err)
			}
			eng2.Close()
			gotState, _ = replayState(t, dir)
			if fmt.Sprint(gotState) != fmt.Sprint(wantState) {
				t.Fatalf("state diverged after resumed compaction at %s:\n got %v\nwant %v", stage, gotState, wantState)
			}
		})
	}
}

// lifecycleLogPrefixDead builds a workload whose leading segments die
// completely (so the manifest-advance stages of Compact are reached) plus
// partially-dead later segments.
func lifecycleLogPrefixDead(t testing.TB, eng *Engine) {
	t.Helper()
	for i := 0; i < 4; i++ {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordRegister, fmt.Sprintf("p%d", i), registerBody(i))})
	}
	for i := 0; i < 4; i++ {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordTombstone, fmt.Sprintf("p%d", i), "")})
	}
	lifecycleLog(t, eng)
}

// TestCompactKeepsUnclassifiableRecords: legacy frames with a probeable
// key participate in compaction; frames with no probeable key are never
// dropped, even when unrelated keys die around them.
func TestCompactKeepsUnclassifiableRecords(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := json.Marshal(map[string]any{
		"subcluster": "medicine",
		"result":     map[string]any{"videoName": "legacy-1", "pad": strings.Repeat("y", 160)},
	})
	if err != nil {
		t.Fatal(err)
	}
	opaque := []byte(`{"mystery":"frame"}`) // legacy-shaped, no probeable key
	appendAll(t, eng, [][]byte{legacy, opaque})
	appendAll(t, eng, [][]byte{mustRecord(t, RecordRegister, "other", registerBody(1))})
	appendAll(t, eng, [][]byte{mustRecord(t, RecordTombstone, "legacy-1", "")})
	for i := 0; i < 4; i++ { // seal everything above
		appendAll(t, eng, [][]byte{mustRecord(t, RecordRegister, fmt.Sprintf("pad%d", i), registerBody(i))})
	}
	res, err := eng.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsDropped != 1 {
		t.Fatalf("dropped %d records, want exactly the tombstoned legacy frame", res.RecordsDropped)
	}
	eng.Close()
	eng2, err := Open(dir, compactOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	frames := collect(t, eng2)
	foundOpaque := false
	for _, f := range frames {
		if string(f) == string(opaque) {
			foundOpaque = true
		}
		if strings.Contains(string(f), "legacy-1") && !strings.Contains(string(f), "tombstone") {
			t.Fatalf("tombstoned legacy registration survived: %s", f)
		}
	}
	if !foundOpaque {
		t.Fatal("unclassifiable record was dropped")
	}
}

// BenchmarkCompact measures one compaction pass over a log shaped like the
// acceptance workload: 1000 ~1 KiB registrations of which half are later
// deleted or replaced, across 64 KiB segments. Setup builds the dirty data
// directory once; each iteration copies it fresh and compacts the copy.
func BenchmarkCompact(b *testing.B) {
	src := b.TempDir()
	opts := compactOpts()
	opts.SegmentBytes = 64 << 10
	eng, err := Open(src, opts)
	if err != nil {
		b.Fatal(err)
	}
	body := strings.Repeat("x", 1024)
	for i := 0; i < 1000; i++ {
		appendAll(b, eng, [][]byte{mustRecord(b, RecordRegister, fmt.Sprintf("v%04d", i), body)})
	}
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			appendAll(b, eng, [][]byte{mustRecord(b, RecordTombstone, fmt.Sprintf("v%04d", i), "")})
		} else {
			appendAll(b, eng, [][]byte{mustRecord(b, RecordReplace, fmt.Sprintf("v%04d", i), body[:512])})
		}
	}
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(b.TempDir(), "data")
		if err := copyDir(src, dir); err != nil {
			b.Fatal(err)
		}
		e, err := Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := e.Compact()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if res.RecordsDropped != 500 {
			b.Fatalf("dropped %d records, want 500", res.RecordsDropped)
		}
		e.Close()
		b.StartTimer()
	}
}

func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// TestAutoCompactTrigger: once NoteDead crosses CompactBytes and a sealed
// segment exists, the background compactor runs without an explicit call.
func TestAutoCompactTrigger(t *testing.T) {
	opts := compactOpts()
	opts.CompactBytes = 256
	dir := t.TempDir()
	eng, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 6; i++ {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordRegister, fmt.Sprintf("k%d", i), registerBody(i))})
	}
	for i := 0; i < 6; i++ {
		appendAll(t, eng, [][]byte{mustRecord(t, RecordTombstone, fmt.Sprintf("k%d", i), "")})
	}
	before := sealedBytes(t, dir)
	// The library-side bookkeeping would report each superseded record's
	// footprint; 6 fat registrations comfortably clear the threshold.
	eng.NoteDead(6, 6*200)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sealedBytes(t, dir) < before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran (sealed bytes still %d)", before)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := eng.Stats(); st.DeadBytes >= 6*200 {
		t.Fatalf("dead-bytes estimate not reset after compaction: %+v", st)
	}
}
