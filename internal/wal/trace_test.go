package wal

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"classminer/internal/trace"
)

// TestAppendCtxSpans drives concurrent traced appenders through the group
// commit and asserts every trace records its append, exactly the leaders
// record a wal.fsync.lead, and at least one of each occurred (the
// group-commit invariant: one lead per batch, everyone else parked). A
// follower park requires two appenders to genuinely overlap, which the
// scheduler does not owe any single round — the fsync is slowed (as in
// the group-commit tests) and the traffic repeats until one is observed.
func TestAppendCtxSpans(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// A slowed fsync forces real batching even on a fast disk.
	e.mu.Lock()
	e.syncHook = func(f *os.File) error {
		time.Sleep(200 * time.Microsecond)
		return f.Sync()
	}
	e.mu.Unlock()

	tc := trace.New(trace.Config{Slow: 0, Ring: 1024}) // keep every trace
	const writers = 8
	for round := 0; round < 20; round++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					var sid [8]byte
					trace.PutUint64(sid[:], trace.RandU64())
					tr, root := tc.StartTrace("append", sid, "")
					ctx := trace.With(context.Background(), root)
					if err := e.AppendCtx(ctx, []byte(fmt.Sprintf("r%d-w%d-%d", round, w, i))); err != nil {
						t.Errorf("AppendCtx: %v", err)
					}
					tc.Finish(tr, trace.Meta{Route: "wal-test"})
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}

		leads, parks := 0, 0
		for _, v := range tc.Recent() {
			var sawAppend bool
			for _, sp := range v.Spans {
				switch sp.Name {
				case "wal.append":
					sawAppend = true
				case "wal.fsync.lead":
					leads++
				case "wal.park":
					parks++
				}
			}
			if !sawAppend {
				t.Fatalf("trace without wal.append span: %+v", v.Spans)
			}
		}
		if leads > 0 && parks > 0 {
			return
		}
	}
	t.Fatal("no round produced both a wal.fsync.lead and a follower wal.park span")
}

// TestWaitCtxUntracedNoop: a bare context must thread through WaitCtx with
// no trace machinery involved (and a zero-batch Commit stays free).
func TestWaitCtxUntracedNoop(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts()
	opts.Sync = SyncInterval
	opts.SyncEvery = time.Hour
	e, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	c, err := e.Begin([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
}
