package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func quietOpts() Options {
	return Options{Logf: func(string, ...any) {}, CheckpointBytes: -1, CheckpointRecords: -1}
}

// TestGroupCommitConcurrentAppenders hammers SyncAlways with many
// concurrent appenders (run under -race in CI): every acknowledged record
// must survive a reopen-and-replay, exactly once, and the engine must have
// coalesced at least some of the appends onto shared fsyncs.
func TestGroupCommitConcurrentAppenders(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts()
	opts.SegmentBytes = 8 << 10 // force rotations mid-traffic
	e, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A slowed fsync forces real batching even on a fast disk.
	e.mu.Lock()
	e.syncHook = func(f *os.File) error {
		time.Sleep(200 * time.Microsecond)
		return f.Sync()
	}
	e.mu.Unlock()

	const writers = 8
	const perWriter = 40
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				payload := []byte(fmt.Sprintf("writer-%d-record-%04d----------------padding----------------", w, i))
				if err := e.Append(payload); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	st := e.Stats()
	if st.Records != writers*perWriter {
		t.Fatalf("Stats.Records = %d, want %d", st.Records, writers*perWriter)
	}
	if st.Syncs == 0 || st.Syncs >= st.Records {
		t.Fatalf("Syncs = %d for %d records: group commit did not batch", st.Syncs, st.Records)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seen := map[string]int{}
	if err := re.Replay(func(p []byte) error { seen[string(p)]++; return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), writers*perWriter)
	}
	for rec, n := range seen {
		if n != 1 {
			t.Fatalf("record %q replayed %d times", rec, n)
		}
	}
}

// TestGroupCommitFailedFsyncAcksNone is the fault-injection contract: when
// a batched fsync fails, every appender staged into the affected batches
// gets an error and none of their records survive to be replayed — while
// records acknowledged before the failure, and records appended after it,
// all do.
func TestGroupCommitFailedFsyncAcksNone(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a durable prefix.
	for i := 0; i < 3; i++ {
		if err := e.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: wedge the fsync shut and launch concurrent appenders; every
	// one of them must be told its record failed.
	var failing atomic.Bool
	failing.Store(true)
	e.mu.Lock()
	e.syncHook = func(f *os.File) error {
		if failing.Load() {
			time.Sleep(100 * time.Microsecond) // let the batch fill
			return errors.New("injected fsync failure")
		}
		return f.Sync()
	}
	e.mu.Unlock()

	const writers = 6
	var wg sync.WaitGroup
	acked := make([]bool, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acked[w] = e.Append([]byte(fmt.Sprintf("doomed-%d", w))) == nil
		}(w)
	}
	wg.Wait()
	for w, ok := range acked {
		if ok {
			t.Fatalf("writer %d was acked despite the failed batched fsync", w)
		}
	}

	// Phase 3: the failure was transient, not a wedge — the claw-back
	// succeeded, so fresh appends work and are durable.
	failing.Store(false)
	if err := e.Append([]byte("post-0")); err != nil {
		t.Fatalf("append after recovered fsync: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var replayed []string
	if err := re.Replay(func(p []byte) error { replayed = append(replayed, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	want := []string{"pre-0", "pre-1", "pre-2", "post-0"}
	if len(replayed) != len(want) {
		t.Fatalf("replayed %v, want %v", replayed, want)
	}
	for i, rec := range want {
		if replayed[i] != rec {
			t.Fatalf("replayed %v, want %v", replayed, want)
		}
	}
}

// TestGroupCommitKillRestart is the ack/replay agreement test across a
// crash: concurrent appenders run against a log whose fsync fails
// intermittently; afterwards the process state is abandoned SIGKILL-style
// and the directory reopened. Every acknowledged record must be replayed
// and no record whose Append returned an error may surface.
func TestGroupCommitKillRestart(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts()
	opts.SegmentBytes = 4 << 10
	e, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	e.mu.Lock()
	e.syncHook = func(f *os.File) error {
		if n.Add(1)%5 == 0 { // every fifth flush dies
			return errors.New("injected intermittent fsync failure")
		}
		return f.Sync()
	}
	e.mu.Unlock()

	const writers = 8
	const perWriter = 30
	var mu sync.Mutex
	ackedSet := map[string]bool{}
	failedSet := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := fmt.Sprintf("w%d-r%04d", w, i)
				err := e.Append([]byte(rec))
				mu.Lock()
				if err == nil {
					ackedSet[rec] = true
				} else {
					failedSet[rec] = true
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(ackedSet) == 0 || len(failedSet) == 0 {
		t.Fatalf("want a mix of acks and failures, got %d acked / %d failed", len(ackedSet), len(failedSet))
	}
	// SIGKILL-style abandonment: Close releases the flock exactly as
	// process death would; under SyncAlways with all batches resolved it
	// writes nothing new (acked records are already durable, failed ones
	// already clawed back).
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	replayed := map[string]bool{}
	if err := re.Replay(func(p []byte) error { replayed[string(p)] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for rec := range ackedSet {
		if !replayed[rec] {
			t.Fatalf("acknowledged record %q lost", rec)
		}
	}
	for rec := range replayed {
		if failedSet[rec] {
			t.Fatalf("failed record %q surfaced in replay", rec)
		}
		if !ackedSet[rec] {
			t.Fatalf("replay surfaced %q, which was never acknowledged", rec)
		}
	}
}

// TestGroupCommitRotationCommitsOpenBatch: a rotation seals (and fsyncs)
// the active segment; a batch whose leader is still waiting for the baton
// must be acknowledged by the seal rather than fsyncing the closed file.
// Exercised by forcing rotation on nearly every append.
func TestGroupCommitRotationCommitsOpenBatch(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts()
	opts.SegmentBytes = 1 // every append lands on a fresh segment
	e, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 25
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := e.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	count := 0
	if err := re.Replay(func([]byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", count, writers*perWriter)
	}
}
