//go:build unix

package wal

import (
	"strings"
	"testing"
)

// TestLockExcludesSecondOpen: two engines on one data directory would
// interleave appends and prune each other's checkpoints, so the second
// Open must be refused while the first holds the flock, and succeed once
// it is released.
func TestLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	eng1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second open: %v, want in-use refusal", err)
	}
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after release: %v", err)
	}
	eng2.Close()
}
