//go:build !unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockDataDir on platforms without flock keeps the LOCK file open but
// cannot enforce exclusivity; double-open protection is advisory only.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return f, nil
}
