package wal

import (
	"bytes"
	"encoding/json"
	"testing"

	"classminer/internal/store"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []struct {
		kind    string
		key     string
		payload []byte
	}{
		{RecordRegister, "v1", []byte(`{"subcluster":"medicine","result":null}`)},
		{RecordReplace, "v2", []byte(`{"subcluster":"nursing","result":null}`)},
		{RecordTombstone, "v3", nil},
	}
	for _, c := range cases {
		frame, err := EncodeRecord(c.kind, c.key, c.payload)
		if err != nil {
			t.Fatalf("encode %s: %v", c.kind, err)
		}
		rec, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("decode %s: %v", c.kind, err)
		}
		if rec.Type != c.kind || rec.Key != c.key || rec.Version != recordVersion {
			t.Fatalf("decoded %+v, want kind %s key %s", rec, c.kind, c.key)
		}
		if !bytes.Equal(rec.Payload, c.payload) {
			t.Fatalf("%s payload mutated: %q vs %q", c.kind, rec.Payload, c.payload)
		}
	}
}

// TestEnvelopeLegacyFrame pins the legacy path against store's actual
// encoding: a bare SavedLibraryEntry document — exactly what pre-envelope
// data directories hold — must decode as a version-0 registration whose
// payload is the whole frame and whose key is the probed video name. If
// store's JSON tags ever drift from legacyProbe, this test breaks first.
func TestEnvelopeLegacyFrame(t *testing.T) {
	entry := store.SavedLibraryEntry{
		Subcluster: "medicine",
		Result:     &store.SavedResult{Version: store.FormatVersion, VideoName: "legacy-vid"},
	}
	frame, err := json.Marshal(entry)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeRecord(frame)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if rec.Type != RecordRegister || rec.Version != 0 {
		t.Fatalf("legacy frame decoded as %+v, want version-0 register", rec)
	}
	if rec.Key != "legacy-vid" {
		t.Fatalf("legacy key probe = %q, want %q", rec.Key, "legacy-vid")
	}
	if !bytes.Equal(rec.Payload, frame) {
		t.Fatal("legacy payload is not the original frame")
	}
}

func TestEnvelopeRejectsMalformed(t *testing.T) {
	if _, err := EncodeRecord("mutate", "k", []byte("x")); err == nil {
		t.Fatal("unknown kind encoded")
	}
	if _, err := EncodeRecord(RecordRegister, "", []byte("x")); err == nil {
		t.Fatal("keyless register encoded")
	}
	if _, err := EncodeRecord(RecordRegister, "k", nil); err == nil {
		t.Fatal("payloadless register encoded")
	}
	if _, err := EncodeRecord(RecordTombstone, "k", []byte("x")); err == nil {
		t.Fatal("tombstone with payload encoded")
	}
	bad := [][]byte{
		[]byte(`{"type":"mutate","version":1,"key":"k"}`),   // unknown kind
		[]byte(`{"type":"register","version":9,"key":"k"}`), // future version
		[]byte(`{"type":"tombstone","version":1}`),          // no key
		[]byte(`{"type":"register","version":1,"key":"k"}`), // no payload
		[]byte(`[1,2,3]`), // not an object
	}
	for _, frame := range bad {
		if _, err := DecodeRecord(frame); err == nil {
			t.Fatalf("malformed frame %s decoded", frame)
		}
	}
}

// TestEnvelopeLegacyUnprobeableKey: a legacy-shaped frame whose video name
// cannot be found still decodes (classminer's full decoder handles or
// rejects it); the empty key only makes it invisible to compaction.
func TestEnvelopeLegacyUnprobeableKey(t *testing.T) {
	rec, err := DecodeRecord([]byte(`{"something":"else"}`))
	if err != nil {
		t.Fatalf("legacy-shaped frame: %v", err)
	}
	if rec.Type != RecordRegister || rec.Key != "" {
		t.Fatalf("decoded %+v, want keyless register", rec)
	}
}
