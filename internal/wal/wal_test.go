package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// collect replays eng into a slice of payload copies.
func collect(t testing.TB, eng *Engine) [][]byte {
	t.Helper()
	var out [][]byte
	if err := eng.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{byte('a' + i%26)}, i%40))))
	}
	return out
}

func appendAll(t testing.TB, eng *Engine, recs [][]byte) {
	t.Helper()
	for i, r := range recs {
		if err := eng.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func mustEqual(t testing.TB, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var log []byte
	want := payloads(20)
	for _, p := range want {
		log = appendRecord(log, p)
	}
	r := bytes.NewReader(log)
	for i, p := range want {
		got, err := ReadRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("record %d: got %q, want %q", i, got, p)
		}
	}
	if _, err := ReadRecord(r); err != io.EOF {
		t.Fatalf("end of log: %v, want io.EOF", err)
	}
}

func TestReadRecordRejectsZeroLength(t *testing.T) {
	// A zero-filled tail (preallocated blocks after power loss) must read
	// as corruption, not as an endless stream of empty records.
	if _, err := ReadRecord(bytes.NewReader(make([]byte, 64))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-filled log: %v, want ErrCorrupt", err)
	}
}

func TestAppendAndReplay(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(50)
	appendAll(t, eng, want)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	mustEqual(t, collect(t, eng2), want)
	st := eng2.Stats()
	if st.Records != 50 || st.Generation != 0 {
		t.Fatalf("stats = %+v, want 50 records at generation 0", st)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(80)
	appendAll(t, eng, want)
	if segs, _ := listSegments(dir); len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	mustEqual(t, collect(t, eng2), want)
}

// TestTornTailTruncated cuts the active segment mid-record and verifies the
// reopened engine truncates the torn frame, replays the intact prefix, and
// appends cleanly after it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(10)
	appendAll(t, eng, want)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (%v)", segs, err)
	}
	path := filepath.Join(dir, segmentName(segs[0]))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the last record's payload: 5 bytes short of its end.
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, collect(t, eng2), want[:9])
	if fi2, _ := os.Stat(path); fi2.Size() >= fi.Size()-5 {
		t.Fatalf("torn tail not truncated: %d bytes", fi2.Size())
	}
	// The log must keep working after the repair.
	if err := eng2.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	eng3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng3.Close()
	got := collect(t, eng3)
	mustEqual(t, got, append(append([][]byte{}, want[:9]...), []byte("after-crash")))
}

// TestCorruptRecordStopsReplay flips a byte in the middle of the log and
// verifies replay yields the prefix before the damaged frame and nothing
// after it (skip-and-stop, never resync into garbage).
func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(10)
	appendAll(t, eng, want)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segmentName(segs[0]))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate record 5's payload start and flip one bit there.
	off := int64(0)
	for i := 0; i < 5; i++ {
		off += headerSize + int64(len(want[i]))
	}
	raw[off+headerSize] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	mustEqual(t, collect(t, eng2), want[:5])
}

// TestRotationFailureDoesNotWedge blocks a rotation (next segment name
// already taken, so O_EXCL fails) and verifies the engine keeps the old
// segment usable: the failed append errors out, and once the obstruction
// clears, appends — and a clean replay of every acknowledged record —
// succeed again.
func TestRotationFailureDoesNotWedge(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	first := []byte(string(bytes.Repeat([]byte("a"), 80)))
	if err := eng.Append(first); err != nil {
		t.Fatal(err)
	}
	blocker := filepath.Join(dir, segmentName(2))
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append([]byte("blocked")); err == nil {
		t.Fatal("append with blocked rotation succeeded")
	}
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append([]byte("recovered-append")); err != nil {
		t.Fatalf("append after obstruction cleared: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	mustEqual(t, collect(t, eng2), [][]byte{first, []byte("recovered-append")})
}

// TestDamagedChainHealedByCheckpoint corrupts a sealed mid-chain segment:
// replay must stop there and report damage, and a checkpoint must reseat
// the log so records appended after the damage survive the next recovery.
func TestDamagedChainHealedByCheckpoint(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{SegmentBytes: 200, CheckpointBytes: -1, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(40)
	appendAll(t, eng, want)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Flip a byte early in the second segment: everything from there on is
	// unreachable by replay.
	mid := filepath.Join(dir, segmentName(segs[1]))
	raw, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize] ^= 0x01
	if err := os.WriteFile(mid, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(dir, Options{SegmentBytes: 200, CheckpointBytes: -1, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	recovered := collect(t, eng2)
	if !eng2.ReplayDamaged() {
		t.Fatal("mid-chain damage not reported")
	}
	if len(recovered) >= len(want) {
		t.Fatalf("replayed %d records through damage", len(recovered))
	}
	// Heal exactly as Recover does: snapshot what was recovered, then
	// verify post-damage appends survive the next crash.
	st := &memState{recs: recovered}
	eng2.SetSource(st.snapshot)
	if err := eng2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if eng2.ReplayDamaged() {
		t.Fatal("damage flag survived the healing checkpoint")
	}
	if err := eng2.Append([]byte("post-damage")); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}

	eng3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng3.Close()
	if eng3.ReplayDamaged() {
		t.Fatal("healed log still damaged")
	}
	tail := collect(t, eng3)
	if len(tail) != 1 || string(tail[0]) != "post-damage" {
		t.Fatalf("post-damage tail = %q", tail)
	}
}

type memState struct{ recs [][]byte }

func (m *memState) apply(p []byte) error {
	m.recs = append(m.recs, append([]byte(nil), p...))
	return nil
}

func (m *memState) snapshot(w io.Writer) error {
	for _, r := range m.recs {
		if _, err := fmt.Fprintf(w, "%s\n", r); err != nil {
			return err
		}
	}
	return nil
}

// TestCheckpointPrunesAndRecovers drives the full checkpoint cycle: append,
// checkpoint (snapshot + manifest + prune), append more, reopen, and verify
// snapshot + tail replay reconstructs everything.
func TestCheckpointPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{SegmentBytes: 128, CheckpointBytes: -1, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	st := &memState{}
	eng.SetSource(st.snapshot)
	first := payloads(30)
	for _, p := range first {
		if err := eng.Append(p); err != nil {
			t.Fatal(err)
		}
		st.apply(p)
	}
	preSegs, _ := listSegments(dir)
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	postSegs, _ := listSegments(dir)
	if len(postSegs) != 1 || len(preSegs) <= 1 {
		t.Fatalf("segments %d -> %d; want prune to exactly the fresh active segment", len(preSegs), len(postSegs))
	}
	if got := eng.Stats(); got.Records != 0 || got.Bytes != 0 || got.Generation != 1 {
		t.Fatalf("post-checkpoint stats = %+v", got)
	}
	tail := [][]byte{[]byte("tail-1"), []byte("tail-2")}
	appendAll(t, eng, tail)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	snap := eng2.SnapshotPath()
	if snap == "" {
		t.Fatal("no snapshot after checkpoint")
	}
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var wantSnap bytes.Buffer
	st2 := &memState{recs: first}
	st2.snapshot(&wantSnap)
	if !bytes.Equal(b, wantSnap.Bytes()) {
		t.Fatalf("snapshot content mismatch:\n%s\nvs\n%s", b, wantSnap.Bytes())
	}
	mustEqual(t, collect(t, eng2), tail)
	if got := eng2.Stats(); got.Generation != 1 {
		t.Fatalf("recovered generation = %d, want 1", got.Generation)
	}
}

// TestAutoCheckpoint verifies the background checkpointer fires once the
// record threshold trips, without any admin call.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{CheckpointRecords: 10, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := &memState{}
	eng.SetSource(st.snapshot)
	for _, p := range payloads(12) {
		if err := eng.Append(p); err != nil {
			t.Fatal(err)
		}
		st.apply(p)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Generation == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("auto checkpoint never fired: %+v", eng.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if eng.SnapshotPath() == "" {
		t.Fatal("auto checkpoint left no snapshot")
	}
}

// TestCheckpointConcurrentAppends checkpoints while appends race in,
// verifying nothing is lost: snapshot + log-tail replay covers every
// appended record. Like the library's registration path, each append and
// its state mutation happen atomically under one lock, and the snapshot
// source takes the same lock — the ordering contract Engine.Checkpoint
// documents.
func TestCheckpointConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{SegmentBytes: 512, CheckpointBytes: -1, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	var st memState
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	eng.SetSource(func(w io.Writer) error {
		<-mu
		defer func() { mu <- struct{}{} }()
		return st.snapshot(w)
	})
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 200; i++ {
			p := []byte(fmt.Sprintf("conc-%04d", i))
			<-mu
			err := eng.Append(p)
			if err == nil {
				st.apply(p)
			}
			mu <- struct{}{}
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 5; i++ {
		if err := eng.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover: snapshot content ∪ log tail must equal all 200 records.
	eng2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	seen := map[string]bool{}
	if snap := eng2.SnapshotPath(); snap != "" {
		b, err := os.ReadFile(snap)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(bytes.TrimSpace(b), []byte("\n")) {
			if len(line) > 0 {
				seen[string(line)] = true
			}
		}
	}
	for _, p := range collect(t, eng2) {
		seen[string(p)] = true
	}
	for i := 0; i < 200; i++ {
		if !seen[fmt.Sprintf("conc-%04d", i)] {
			t.Fatalf("record conc-%04d lost across checkpoint", i)
		}
	}
}

// TestAutoCheckpointAfterRecovery accumulates lag past the threshold with
// no source installed (as a crashed daemon would leave it), reopens, and
// verifies SetSource alone — no further appends — fires the checkpoint.
func TestAutoCheckpointAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{CheckpointRecords: 5, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, eng, payloads(8))
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(dir, Options{CheckpointRecords: 5, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	st := &memState{}
	if err := eng2.Replay(st.apply); err != nil {
		t.Fatal(err)
	}
	if got := eng2.Stats(); got.Records != 8 {
		t.Fatalf("recovered lag = %+v, want 8 records", got)
	}
	eng2.SetSource(st.snapshot)
	deadline := time.Now().Add(5 * time.Second)
	for eng2.Stats().Generation == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("post-recovery lag never checkpointed: %+v", eng2.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSyncIntervalSmoke(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(20)
	appendAll(t, eng, want)
	time.Sleep(30 * time.Millisecond) // let the background sync run at least once
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	mustEqual(t, collect(t, eng2), want)
}

func TestAppendAfterCloseFails(t *testing.T) {
	eng, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyAppendRejected(t *testing.T) {
	eng, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Append(nil); err == nil {
		t.Fatal("empty append accepted")
	}
}

func TestCheckpointWithoutSourceFails(t *testing.T) {
	eng, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Checkpoint(); err == nil {
		t.Fatal("checkpoint without a source succeeded")
	}
}

// TestCrashBetweenSnapshotAndManifest simulates a crash that left an orphan
// snapshot (written but never committed to MANIFEST): reopening prunes it
// and recovery still replays the full log.
func TestCrashBetweenSnapshotAndManifest(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(5)
	appendAll(t, eng, want)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, snapshotName(7))
	if err := os.WriteFile(orphan, []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan snapshot not pruned: %v", err)
	}
	if eng2.SnapshotPath() != "" {
		t.Fatal("uncommitted snapshot became current")
	}
	mustEqual(t, collect(t, eng2), want)
}

// BenchmarkAppendSyncAlwaysSerial is the per-record fsync floor: one
// appender, one flush per record.
func BenchmarkAppendSyncAlwaysSerial(b *testing.B) {
	e, err := Open(b.TempDir(), Options{Logf: func(string, ...any) {}, CheckpointBytes: -1, CheckpointRecords: -1, SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSyncAlwaysParallel measures the group-commit path with
// concurrent appenders: staged frames share one leader fsync, so per-record
// cost approaches fsync-latency divided by the batching ratio. Writer
// counts beyond the ISSUE 5 target of 8 show how deeper pipelines amortise
// the post-commit wake/stage bubble too.
func BenchmarkAppendSyncAlwaysParallel(b *testing.B) {
	for _, writers := range []int{8, 16} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			benchmarkAppendParallel(b, writers)
		})
	}
}

func benchmarkAppendParallel(b *testing.B, writers int) {
	e, err := Open(b.TempDir(), Options{Logf: func(string, ...any) {}, CheckpointBytes: -1, CheckpointRecords: -1, SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	var next atomic.Int64
	b.ResetTimer()
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func() {
			var err error
			for {
				if int(next.Add(1)) > b.N {
					break
				}
				if err = e.Append(payload); err != nil {
					break
				}
			}
			done <- err
		}()
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := e.Stats(); st.Syncs > 0 {
		b.ReportMetric(float64(st.Records)/float64(st.Syncs), "records/fsync")
	}
}
