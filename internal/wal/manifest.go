package wal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"classminer/internal/store"
)

// manifestVersion guards against decoding an incompatible data directory.
const manifestVersion = 1

const (
	manifestName = "MANIFEST"
	lockName     = "LOCK"
	segPrefix    = "wal-"
	segSuffix    = ".log"
	snapPrefix   = "snap-"
	snapSuffix   = ".json"
)

// manifest is the commit record of the storage engine: which snapshot is
// current and which is the oldest log segment recovery must replay on top
// of it. It is only ever replaced atomically (write-temp, fsync, rename,
// fsync dir), so a crash during checkpointing leaves either the old or the
// new manifest — never a torn one — and the files each version names are
// pruned only after the replacement is durable.
type manifest struct {
	Version int `json:"version"`
	// Generation counts completed checkpoints.
	Generation uint64 `json:"generation"`
	// Snapshot is the current snapshot's file name ("" before the first
	// checkpoint: recovery is then a pure log replay).
	Snapshot string `json:"snapshot"`
	// FirstSegment is the oldest segment recovery replays; earlier
	// segments are superseded by the snapshot.
	FirstSegment uint64 `json:"firstSegment"`
	// Compactions is the log's compaction epoch: bumped (and committed,
	// before any segment is touched) whenever Compact rewrites sealed
	// segments. A replication cursor minted under an older epoch may point
	// into bytes that no longer exist, so attaching one is refused and the
	// follower re-seeds (repl.go). Pre-replication manifests decode as
	// epoch 0, which is correct: their segments were never rewritten under
	// a shipped cursor.
	Compactions uint64 `json:"compactions,omitempty"`
}

// loadManifest reads dir's manifest, or returns the pristine state (no
// snapshot, replay from segment 1) when none exists yet.
func loadManifest(dir string) (manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{Version: manifestVersion, FirstSegment: 1}, nil
	}
	if err != nil {
		return manifest{}, fmt.Errorf("wal: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return manifest{}, fmt.Errorf("wal: parsing %s: %w", manifestName, err)
	}
	if m.Version != manifestVersion {
		return manifest{}, fmt.Errorf("wal: %s version %d unsupported (want %d)", manifestName, m.Version, manifestVersion)
	}
	if m.FirstSegment == 0 {
		m.FirstSegment = 1
	}
	return m, nil
}

// write commits m as dir's manifest.
func (m manifest) write(dir string) error {
	return store.WriteFileAtomic(filepath.Join(dir, manifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&m)
	})
}

func segmentName(idx uint64) string  { return fmt.Sprintf("%s%020d%s", segPrefix, idx, segSuffix) }
func snapshotName(gen uint64) string { return fmt.Sprintf("%s%020d%s", snapPrefix, gen, snapSuffix) }

// parseIndexed extracts the numeric index from a prefixed, zero-padded file
// name like wal-…​.log or snap-…​.json.
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	idx, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return idx, err == nil
}

// listSegments returns the indices of dir's log segments in ascending order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if idx, ok := parseIndexed(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// listTempFiles returns the names of orphaned WriteFileAtomic temps in dir:
// files a crashed atomic write of one of the engine's own artefacts
// (segment, snapshot, MANIFEST) left behind. The ".tmp" infix can never
// appear in a committed name, so matching it alongside a known prefix is
// safe — nothing the manifest could name is ever returned.
func listTempFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var temps []string
	for _, e := range entries {
		name := e.Name()
		if !strings.Contains(name, ".tmp") {
			continue
		}
		if strings.HasPrefix(name, segPrefix) || strings.HasPrefix(name, snapPrefix) ||
			strings.HasPrefix(name, manifestName+".tmp") {
			temps = append(temps, name)
		}
	}
	return temps, nil
}

// listSnapshots returns the generations of dir's snapshot files.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var snaps []uint64
	for _, e := range entries {
		if gen, ok := parseIndexed(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, gen)
		}
	}
	return snaps, nil
}
