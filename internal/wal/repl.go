package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Log shipping: the leader-side export surface replication is built on. A
// follower holds a Cursor — a durable (segment, offset) position plus the
// log's compaction epoch — and repeatedly asks the engine for the framed
// records between its cursor and the durable tip. While a follower is
// attached its cursor pins the log: Compact never rewrites and Checkpoint
// never deletes a segment at or past the oldest pin, so the bytes a follower
// still needs stay exactly where its cursor says they are. The pin budget
// bounds how much reclaimable log a lagging follower may hold hostage:
// past it the pin is evicted and the follower's next pull gets
// ErrBehindHorizon, which means "re-seed from the newest snapshot" — the
// log never wedges waiting for a dead replica.
//
// Validity rule: a mid-segment offset is only meaningful against the exact
// bytes the leader shipped. Appends only ever extend a segment and pinned
// segments are never touched, so an attached cursor stays valid by
// construction. The dangerous case is re-attaching (leader restart, pin
// eviction): a compaction may have rewritten the segment since the cursor
// was minted. Every rewrite therefore bumps a compaction epoch persisted in
// the manifest, the epoch rides inside the cursor, and Attach refuses a
// cursor from an older epoch — the follower re-seeds instead of replaying
// from an offset that no longer falls on a record boundary.

// Cursor is a follower's durable position in the leader's log: the next
// record to ship starts at Offset within Segment. Epoch is the log's
// compaction epoch when the cursor was minted; a mismatch on attach means
// sealed segments may have been rewritten underneath the offset.
type Cursor struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
	Epoch   uint64 `json:"epoch"`
}

// before orders cursors by log position (epoch excluded).
func (c Cursor) before(d Cursor) bool {
	return c.Segment < d.Segment || (c.Segment == d.Segment && c.Offset < d.Offset)
}

// ErrBehindHorizon means the log can no longer serve the requested cursor —
// the segment was pruned, rewritten (epoch mismatch), or the pin was evicted
// past its budget. The follower's only correct move is a snapshot re-seed.
var ErrBehindHorizon = errors.New("wal: cursor behind the compaction horizon; re-seed from snapshot")

// ErrNotAttached means ReadFrom was called for a follower id with no live
// pin (never attached, evicted, or the engine restarted). The caller should
// Attach — which validates the cursor — and retry.
var ErrNotAttached = errors.New("wal: follower not attached")

// replPin is one attached follower's claim on the log. cursor is the last
// position the follower *requested* — evidence it durably applied everything
// before it — and is what compaction and checkpoint pruning must preserve.
// lagRecords/lagBytes track the unshipped backlog: advanced as records
// become durable, drained as ReadFrom ships them.
type replPin struct {
	cursor     Cursor
	lagRecords int64
	lagBytes   int64
}

// PinStats is one attached follower's replication state, for /v1/stats and
// the per-follower lag gauges.
type PinStats struct {
	ID         string `json:"id"`
	Cursor     Cursor `json:"cursor"`
	LagRecords int64  `json:"lagRecords"`
	LagBytes   int64  `json:"lagBytes"`
}

// Pins reports every attached follower, sorted by id.
func (e *Engine) Pins() []PinStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]PinStats, 0, len(e.pins))
	for id, p := range e.pins {
		out = append(out, PinStats{ID: id, Cursor: p.cursor, LagRecords: p.lagRecords, LagBytes: p.lagBytes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MaxPinLag reports the worst attached follower's backlog, the signal the
// leader's write-path backpressure sheds on.
func (e *Engine) MaxPinLag() (records, bytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range e.pins {
		if p.lagRecords > records {
			records = p.lagRecords
		}
		if p.lagBytes > bytes {
			bytes = p.lagBytes
		}
	}
	return records, bytes
}

// DurableNotify returns a channel closed the next time the durable tip
// advances (a group commit lands, a rotation seals staged frames, or — under
// relaxed sync policies — any append). Long-polling pullers park on it
// instead of spinning.
func (e *Engine) DurableNotify() <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.durableCh == nil {
		e.durableCh = make(chan struct{})
	}
	return e.durableCh
}

// advancePinsLocked accounts newly durable records to every attached
// follower's backlog and wakes the long-pollers. Callers hold e.mu and pass
// the record/byte count that just became shippable.
func (e *Engine) advancePinsLocked(records, bytes int64) {
	if records <= 0 {
		return
	}
	for _, p := range e.pins {
		p.lagRecords += records
		p.lagBytes += bytes
	}
	if e.durableCh != nil {
		close(e.durableCh)
		e.durableCh = nil
	}
}

// Attach registers (or re-registers) follower id at cur, validating that the
// log can actually serve it: the segment must still exist, the compaction
// epoch must match, and the offset must fall on a record boundary of the
// current bytes. On success the cursor pins the log from cur onward and the
// pin's backlog is an exact scan of cursor→tip. A zero cursor attaches at
// the oldest live segment (epoch is stamped in, not checked, when the cursor
// has never been minted — Segment == 0).
func (e *Engine) Attach(id string, cur Cursor) (Cursor, error) {
	if id == "" {
		return Cursor{}, fmt.Errorf("wal: empty follower id")
	}
	// cpMu keeps checkpoints and compactions from moving the horizon while
	// the cursor is validated and the backlog scanned (lock order cpMu < mu).
	e.cpMu.Lock()
	defer e.cpMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Cursor{}, ErrClosed
	}
	if cur.Segment == 0 { // never minted: start at the oldest live segment
		cur = Cursor{Segment: e.segStart, Offset: 0, Epoch: e.man.Compactions}
	}
	if cur.Epoch != e.man.Compactions {
		e.mu.Unlock()
		return Cursor{}, fmt.Errorf("%w (epoch %d, log at %d)", ErrBehindHorizon, cur.Epoch, e.man.Compactions)
	}
	if cur.Segment < e.segStart || cur.Segment > e.activeIdx {
		e.mu.Unlock()
		return Cursor{}, fmt.Errorf("%w (segment %d outside [%d,%d])", ErrBehindHorizon, cur.Segment, e.segStart, e.activeIdx)
	}
	tip := e.tipLocked()
	// Register before scanning: records that become durable during the scan
	// land in advancePinsLocked, the scan covers everything before the tip
	// captured here, and the two partitions meet exactly.
	pin := &replPin{cursor: cur}
	if e.pins == nil {
		e.pins = map[string]*replPin{}
	}
	e.pins[id] = pin
	e.mu.Unlock()

	records, bytes, err := e.scanBacklog(cur, tip)
	if err != nil {
		e.mu.Lock()
		if e.pins[id] == pin {
			delete(e.pins, id)
		}
		e.mu.Unlock()
		return Cursor{}, err
	}
	e.mu.Lock()
	pin.lagRecords += records
	pin.lagBytes += bytes
	e.mu.Unlock()
	e.opts.Logf("wal: follower %q attached at segment %d offset %d (%d records, %d bytes behind)",
		id, cur.Segment, cur.Offset, records, bytes)
	return cur, nil
}

// Detach drops follower id's pin, releasing its hold on the log.
func (e *Engine) Detach(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.pins, id)
}

// tipLocked is the durable end of the log: everything before it may be
// shipped. Under SyncAlways that is the fsynced prefix of the active segment
// (staged frames can still be clawed back); under the relaxed policies every
// appended byte is acknowledged and shippable.
func (e *Engine) tipLocked() Cursor {
	off := e.activeSize
	if e.opts.Sync == SyncAlways {
		off = e.durableSize
	}
	return Cursor{Segment: e.activeIdx, Offset: off, Epoch: e.man.Compactions}
}

// scanBacklog counts the records and bytes between cur and tip, verifying on
// the way that cur.Offset lands on a record boundary (the scan starts at the
// segment head, so a stale offset into rewritten bytes is caught by frame
// arithmetic or CRC, not silently replayed). Runs without e.mu: cpMu is held
// by the caller, segments at or past cur are pinned, and the active segment
// is read only up to the pre-captured tip.
func (e *Engine) scanBacklog(cur, tip Cursor) (records, bytes int64, err error) {
	for seg := cur.Segment; seg <= tip.Segment; seg++ {
		limit := int64(-1)
		if seg == tip.Segment {
			limit = tip.Offset
		}
		var off int64
		aligned := cur.Segment != seg || cur.Offset == 0
		serr := e.scanSegment(seg, limit, func(_ int64, frame []byte) error {
			size := int64(len(frame)) + FrameOverhead
			if seg == cur.Segment {
				if off == cur.Offset {
					aligned = true
				}
				if off >= cur.Offset {
					records++
					bytes += size
				}
			} else {
				records++
				bytes += size
			}
			off += size
			return nil
		})
		if serr != nil {
			if errors.Is(serr, ErrTorn) || errors.Is(serr, ErrCorrupt) || os.IsNotExist(errors.Unwrap(serr)) {
				return 0, 0, fmt.Errorf("%w (%v)", ErrBehindHorizon, serr)
			}
			return 0, 0, serr
		}
		if seg == cur.Segment {
			if off == cur.Offset {
				aligned = true // cursor exactly at this segment's end
			}
			if !aligned || cur.Offset > off {
				return 0, 0, fmt.Errorf("%w (offset %d not on a record boundary of segment %d)", ErrBehindHorizon, cur.Offset, seg)
			}
		}
	}
	return records, bytes, nil
}

// ReadFrom ships the framed records between cur and the durable tip, up to
// roughly maxBytes (always at least one whole record when any is available),
// returning the raw frames and the cursor the follower should pull from
// next. An empty batch with next == cur means the follower is at the tip —
// park on DurableNotify. Calling ReadFrom is also the follower's durability
// acknowledgement: cur says everything before it is applied and persisted,
// so the pin advances to cur and earlier segments become reclaimable.
func (e *Engine) ReadFrom(id string, cur Cursor, maxBytes int64) ([]byte, Cursor, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, cur, ErrClosed
	}
	pin, ok := e.pins[id]
	if !ok {
		e.mu.Unlock()
		return nil, cur, ErrNotAttached
	}
	if pin.cursor.before(cur) {
		// The follower asking for cur proves everything before it is durably
		// applied; releasing the pin up to cur is what lets compaction and
		// checkpoint pruning move past shipped log.
		pin.cursor = cur
	}
	tip := e.tipLocked()
	e.mu.Unlock()

	if !cur.before(tip) {
		if cur.Segment > tip.Segment || (cur.Segment == tip.Segment && cur.Offset > tip.Offset) {
			// Ahead of the leader's durable log: the leader lost a tail the
			// follower already applied (relaxed-sync crash). Converge by
			// re-seeding.
			return nil, cur, fmt.Errorf("%w (cursor past the durable tip)", ErrBehindHorizon)
		}
		return nil, cur, nil
	}

	var out []byte
	var shippedRecs, shippedBytes int64
	next := cur
	for next.before(tip) && int64(len(out)) < maxBytes {
		f, err := os.Open(e.segPath(next.Segment))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, cur, fmt.Errorf("%w (segment %d pruned)", ErrBehindHorizon, next.Segment)
			}
			return nil, cur, fmt.Errorf("wal: %w", err)
		}
		if next.Offset > 0 {
			if _, err := f.Seek(next.Offset, io.SeekStart); err != nil {
				f.Close()
				return nil, cur, fmt.Errorf("wal: %w", err)
			}
		}
		var r io.Reader = f
		if next.Segment == tip.Segment {
			r = io.LimitReader(f, tip.Offset-next.Offset)
		}
		br := bufio.NewReader(r)
		for int64(len(out)) < maxBytes {
			frame, rerr := ReadRecord(br)
			if rerr == io.EOF {
				if next.Segment == tip.Segment {
					next.Offset = tip.Offset
				} else {
					// Sealed segment exhausted: continue at the head of the
					// next one (zero-byte mid-chain segments skip through
					// here immediately).
					next = Cursor{Segment: next.Segment + 1, Offset: 0, Epoch: next.Epoch}
				}
				break
			}
			if rerr != nil {
				f.Close()
				if errors.Is(rerr, ErrTorn) || errors.Is(rerr, ErrCorrupt) {
					return nil, cur, fmt.Errorf("%w (%v at segment %d offset %d)", ErrBehindHorizon, rerr, next.Segment, next.Offset)
				}
				return nil, cur, rerr
			}
			out = appendRecord(out, frame)
			size := int64(len(frame)) + FrameOverhead
			next.Offset += size
			shippedRecs++
			shippedBytes += size
		}
		f.Close()
	}

	e.mu.Lock()
	if p, ok := e.pins[id]; ok && p == pin {
		// Drain the shipped records from the backlog. A follower that crashed
		// between receiving and applying re-pulls the same range, so the
		// drain can double-count; clamp at zero — the estimate heals as the
		// cursor advances and fully resets on re-attach.
		if pin.lagRecords -= shippedRecs; pin.lagRecords < 0 {
			pin.lagRecords = 0
		}
		if pin.lagBytes -= shippedBytes; pin.lagBytes < 0 {
			pin.lagBytes = 0
		}
	}
	e.mu.Unlock()
	e.met.shipRecords.Add(uint64(shippedRecs))
	e.met.shipBytes.Add(uint64(shippedBytes))
	return out, next, nil
}

// Seed opens the current checkpoint snapshot for a cold (or
// behind-the-horizon) follower and pins the log at the exact cursor the
// snapshot's state continues from: the oldest live segment's head. The
// returned reader is nil when no checkpoint has completed yet — the log
// alone is then the full history. The pin is registered before Seed
// returns, so nothing the follower needs can be reclaimed between the seed
// and its first pull.
func (e *Engine) Seed(id string) (io.ReadCloser, Cursor, error) {
	if id == "" {
		return nil, Cursor{}, fmt.Errorf("wal: empty follower id")
	}
	e.cpMu.Lock()
	defer e.cpMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, Cursor{}, ErrClosed
	}
	cur := Cursor{Segment: e.segStart, Offset: 0, Epoch: e.man.Compactions}
	snap := e.man.Snapshot
	tip := e.tipLocked()
	pin := &replPin{cursor: cur}
	if e.pins == nil {
		e.pins = map[string]*replPin{}
	}
	e.pins[id] = pin
	e.mu.Unlock()

	fail := func(err error) (io.ReadCloser, Cursor, error) {
		e.mu.Lock()
		if e.pins[id] == pin {
			delete(e.pins, id)
		}
		e.mu.Unlock()
		return nil, Cursor{}, err
	}
	records, bytes, err := e.scanBacklog(cur, tip)
	if err != nil {
		return fail(err)
	}
	e.mu.Lock()
	pin.lagRecords += records
	pin.lagBytes += bytes
	e.mu.Unlock()

	var rc io.ReadCloser
	if snap != "" {
		f, err := os.Open(filepath.Join(e.dir, snap))
		if err != nil {
			return fail(fmt.Errorf("wal: %w", err))
		}
		rc = f
	}
	e.opts.Logf("wal: follower %q seeded (snapshot %q, log from segment %d, %d records behind)",
		id, snap, cur.Segment, records)
	return rc, cur, nil
}

// evictOverBudgetLocked drops pins whose unshipped backlog exceeds the pin
// budget, so one dead or glacial follower cannot hold the whole log hostage.
// The evicted follower's next pull fails ErrNotAttached, its re-Attach is
// validated against whatever the log looks like by then, and the worst case
// is a snapshot re-seed — never a wedged compaction. Callers hold e.mu.
func (e *Engine) evictOverBudgetLocked() {
	budget := e.opts.ReplPinBudgetBytes
	if budget <= 0 {
		return
	}
	for id, p := range e.pins {
		if p.lagBytes > budget {
			e.opts.Logf("wal: evicting follower %q pin (%d bytes behind exceeds %d budget)", id, p.lagBytes, budget)
			delete(e.pins, id)
		}
	}
}

// minPinLocked is the oldest segment an attached follower still needs; no
// reclamation may touch segments at or past it. Returns ^uint64(0) when no
// follower is attached. Callers hold e.mu.
func (e *Engine) minPinLocked() uint64 {
	min := ^uint64(0)
	for _, p := range e.pins {
		if p.cursor.Segment < min {
			min = p.cursor.Segment
		}
	}
	return min
}
