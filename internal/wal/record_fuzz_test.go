package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadRecord exercises the frame decoder on arbitrary bytes from two
// directions at once: (1) any payload must round-trip through the framing
// unchanged, and (2) treating the raw input as a log must either yield
// records or fail with one of the framing errors — never panic, never
// over-read, never return a record a frame didn't fully cover.
func FuzzReadRecord(f *testing.F) {
	f.Add([]byte("hello wal"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 32))
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Add(appendRecord(nil, []byte("a valid record")))
	f.Add(appendRecord(appendRecord(nil, []byte("two")), []byte("records")))
	f.Add(appendRecord(nil, []byte("torn"))[:6])

	f.Fuzz(func(t *testing.T, data []byte) {
		// Round trip: data as a payload.
		if len(data) > 0 && len(data) <= MaxRecordBytes {
			frame := appendRecord(nil, data)
			got, err := ReadRecord(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("round trip failed: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip mutated payload: %q vs %q", got, data)
			}
			// A framed record followed by garbage still decodes the record.
			got, err = ReadRecord(bytes.NewReader(append(frame, 0, 0, 0)))
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("record followed by garbage: %q, %v", got, err)
			}
		}

		// Decode: data as a log. Must terminate with EOF, ErrTorn or
		// ErrCorrupt, and consumed frames must never exceed the input.
		r := bytes.NewReader(data)
		total := 0
		for {
			payload, err := ReadRecord(r)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			if len(payload) == 0 {
				t.Fatal("decoder produced an empty record")
			}
			total += headerSize + len(payload)
			if total > len(data) {
				t.Fatalf("decoder consumed %d bytes of a %d-byte input", total, len(data))
			}
		}
	})
}
