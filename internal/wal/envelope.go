package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Record envelope: the logical layer above the byte framing of record.go.
// Every frame payload is one JSON document describing a library mutation.
// Two shapes are live on disk:
//
//   - Typed (this PR onward): {"type":"register","version":1,"key":"v1",
//     "payload":{…}} — the envelope carries the mutation kind and the video
//     name (the compaction key), and the payload is the kind-specific body
//     (a store.SavedLibraryEntry for register/replace, empty for tombstone).
//
//   - Legacy (pre-envelope data dirs): a bare store.SavedLibraryEntry
//     document. It has no "type" member, which is how DecodeRecord tells the
//     shapes apart; it always means a registration, so existing data
//     directories recover unchanged.
//
// The envelope lives in this package — not in classminer — because the
// compactor must classify records without the library: a register or
// replace record is dead once a later tombstone or replace for the same key
// exists, and that rule is all compaction needs to know about payloads.
const (
	// RecordRegister adds a video under a new name. Replay skips it when
	// the name already exists (the checkpoint-straddler case: the record is
	// both in the snapshot and on the log tail).
	RecordRegister = "register"
	// RecordTombstone deletes a video by name. Replay applies it even when
	// the registration came from the checkpoint snapshot — delete wins over
	// a straddling checkpointed registration — and ignores unknown names
	// (the tombstone may itself straddle a checkpoint that already dropped
	// the video).
	RecordTombstone = "tombstone"
	// RecordReplace atomically supersedes a video: replay removes any
	// existing registration under the key and installs the payload. One
	// record, so a crash can never leave the delete without the re-add.
	RecordReplace = "replace"
)

// recordVersion is the envelope schema version this build writes and the
// only one it accepts; legacy frames (no envelope at all) report version 0.
const recordVersion = 1

// Record is one decoded log record.
type Record struct {
	// Type is one of the Record* kinds.
	Type string `json:"type"`
	// Version is the envelope schema version (0 for a legacy bare frame).
	Version int `json:"version"`
	// Key is the video name the record is about — the identity compaction
	// and replay dedupe on. Empty only for a legacy frame whose payload
	// could not be probed (such records are never dropped by compaction).
	Key string `json:"key,omitempty"`
	// Payload is the kind-specific body: a store.SavedLibraryEntry JSON
	// document for register/replace (for a legacy frame, the whole frame),
	// empty for tombstone.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// EncodeRecord serialises one typed record for Append. payload may be nil
// for tombstones.
func EncodeRecord(kind, key string, payload []byte) ([]byte, error) {
	switch kind {
	case RecordRegister, RecordReplace:
		if len(payload) == 0 {
			return nil, fmt.Errorf("wal: %s record needs a payload", kind)
		}
	case RecordTombstone:
		if len(payload) != 0 {
			return nil, fmt.Errorf("wal: tombstone record takes no payload")
		}
	default:
		return nil, fmt.Errorf("wal: unknown record kind %q", kind)
	}
	if key == "" {
		return nil, fmt.Errorf("wal: %s record needs a key", kind)
	}
	// Encode without HTML escaping so the payload embeds byte-for-byte
	// (modulo JSON whitespace compaction): compaction copies surviving
	// frames verbatim, and keeping encode deterministic and transparent
	// makes on-disk records greppable and diffable.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(Record{Type: kind, Version: recordVersion, Key: key, Payload: payload}); err != nil {
		return nil, fmt.Errorf("wal: encoding %s record: %w", kind, err)
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n")), nil
}

// legacyProbe mirrors just enough of store.SavedLibraryEntry /
// store.SavedResult to pull the video name out of a legacy bare frame
// without decoding the whole mined result. envelope_test.go pins it against
// store's actual encoding so the tags cannot drift apart silently.
type legacyProbe struct {
	Result struct {
		VideoName string `json:"videoName"`
	} `json:"result"`
}

// DecodeRecord parses one frame payload into a Record. Legacy bare
// store.SavedLibraryEntry frames (no "type" member) decode as version-0
// registrations whose Payload is the whole frame, so every pre-envelope
// data directory replays exactly as it did before typed records existed.
func DecodeRecord(frame []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(frame, &rec); err != nil {
		return Record{}, fmt.Errorf("wal: decoding record envelope: %w", err)
	}
	if rec.Type == "" {
		// Legacy frame. The key probe is best-effort: a frame it cannot
		// name still registers fine (classminer decodes the full payload);
		// it is only invisible to compaction.
		var p legacyProbe
		if err := json.Unmarshal(frame, &p); err == nil {
			rec.Key = p.Result.VideoName
		}
		return Record{Type: RecordRegister, Version: 0, Key: rec.Key, Payload: frame}, nil
	}
	switch rec.Type {
	case RecordRegister, RecordTombstone, RecordReplace:
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %q", rec.Type)
	}
	if rec.Version != recordVersion {
		return Record{}, fmt.Errorf("wal: record version %d unsupported (want %d)", rec.Version, recordVersion)
	}
	if rec.Key == "" {
		return Record{}, fmt.Errorf("wal: %s record has no key", rec.Type)
	}
	if (rec.Type == RecordRegister || rec.Type == RecordReplace) && len(rec.Payload) == 0 {
		return Record{}, fmt.Errorf("wal: %s record has no payload", rec.Type)
	}
	return rec, nil
}

// supersedes reports whether a record of this kind makes every earlier
// record for the same key dead: a tombstone or replace fully determines the
// key's state regardless of what preceded it, a register does not (replay
// skips it when the key already exists, so dropping an earlier record would
// change what survives).
func (r Record) supersedes() bool {
	return r.Type == RecordTombstone || r.Type == RecordReplace
}

// FrameOverhead is the per-record framing cost in bytes on top of the
// payload (the length + CRC header). Callers accounting for on-log record
// sizes — the library's dead-bytes bookkeeping — add it to len(payload).
const FrameOverhead = headerSize
