package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Record envelope: the logical layer above the byte framing of record.go.
// Every frame payload is one JSON document describing a library mutation.
// Two shapes are live on disk:
//
//   - Typed (this PR onward): {"type":"register","version":1,"key":"v1",
//     "payload":{…}} — the envelope carries the mutation kind and the video
//     name (the compaction key), and the payload is the kind-specific body
//     (a store.SavedLibraryEntry for register/replace, empty for tombstone).
//
//   - Legacy (pre-envelope data dirs): a bare store.SavedLibraryEntry
//     document. It has no "type" member, which is how DecodeRecord tells the
//     shapes apart; it always means a registration, so existing data
//     directories recover unchanged.
//
// The envelope lives in this package — not in classminer — because the
// compactor must classify records without the library: a register or
// replace record is dead once a later tombstone or replace for the same key
// exists, and that rule is all compaction needs to know about payloads.
const (
	// RecordRegister adds a video under a new name. Replay skips it when
	// the name already exists (the checkpoint-straddler case: the record is
	// both in the snapshot and on the log tail).
	RecordRegister = "register"
	// RecordTombstone deletes a video by name. Replay applies it even when
	// the registration came from the checkpoint snapshot — delete wins over
	// a straddling checkpointed registration — and ignores unknown names
	// (the tombstone may itself straddle a checkpoint that already dropped
	// the video).
	RecordTombstone = "tombstone"
	// RecordReplace atomically supersedes a video: replay removes any
	// existing registration under the key and installs the payload. One
	// record, so a crash can never leave the delete without the re-add.
	RecordReplace = "replace"
)

// recordVersion is the envelope schema version this build writes and the
// only one it accepts; legacy frames (no envelope at all) report version 0.
const recordVersion = 1

// Record is one decoded log record.
type Record struct {
	// Type is one of the Record* kinds.
	Type string `json:"type"`
	// Version is the envelope schema version (0 for a legacy bare frame).
	Version int `json:"version"`
	// Key is the video name the record is about — the identity compaction
	// and replay dedupe on. Empty only for a legacy frame whose payload
	// could not be probed (such records are never dropped by compaction).
	Key string `json:"key,omitempty"`
	// Payload is the kind-specific body: a store.SavedLibraryEntry JSON
	// document for register/replace (for a legacy frame, the whole frame),
	// empty for tombstone.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// EncodeRecord serialises one typed record for Append. payload may be nil
// for tombstones.
func EncodeRecord(kind, key string, payload []byte) ([]byte, error) {
	switch kind {
	case RecordRegister, RecordReplace:
		if len(payload) == 0 {
			return nil, fmt.Errorf("wal: %s record needs a payload", kind)
		}
	case RecordTombstone:
		if len(payload) != 0 {
			return nil, fmt.Errorf("wal: tombstone record takes no payload")
		}
	default:
		return nil, fmt.Errorf("wal: unknown record kind %q", kind)
	}
	if key == "" {
		return nil, fmt.Errorf("wal: %s record needs a key", kind)
	}
	// Encode without HTML escaping so the payload embeds byte-for-byte
	// (modulo JSON whitespace compaction): compaction copies surviving
	// frames verbatim, and keeping encode deterministic and transparent
	// makes on-disk records greppable and diffable.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(Record{Type: kind, Version: recordVersion, Key: key, Payload: payload}); err != nil {
		return nil, fmt.Errorf("wal: encoding %s record: %w", kind, err)
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n")), nil
}

// legacyProbe mirrors just enough of store.SavedLibraryEntry /
// store.SavedResult to pull the video name out of a legacy bare frame
// without decoding the whole mined result. envelope_test.go pins it against
// store's actual encoding so the tags cannot drift apart silently.
type legacyProbe struct {
	Result struct {
		VideoName string `json:"videoName"`
	} `json:"result"`
}

// DecodeRecord parses one frame payload into a Record. Legacy bare
// store.SavedLibraryEntry frames (no "type" member) decode as version-0
// registrations whose Payload is the whole frame, so every pre-envelope
// data directory replays exactly as it did before typed records existed.
// The returned Payload may alias frame; callers that retain it past the
// frame's lifetime must copy.
func DecodeRecord(frame []byte) (Record, error) {
	var rec Record
	if err := DecodeRecordInto(&rec, frame); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Byte shapes every frame this package ever wrote. Typed frames come from
// EncodeRecord's json.Encoder over the Record struct, so field order and
// spacing are fixed; legacy frames are json.Marshal of a
// store.SavedLibraryEntry, whose first field is "subcluster"
// (envelope_test.go pins both against the real encoders).
var (
	typedPrefix    = []byte(`{"type":"`)
	typedVersion   = []byte(`","version":1,"key":"`)
	typedPayload   = []byte(`","payload":`)
	typedTombstone = []byte(`"}`)
	legacyPrefix   = []byte(`{"subcluster":`)
)

// DecodeRecordInto is DecodeRecord writing into *rec — replay and
// compaction loops reuse one scratch Record across millions of frames.
//
// Frames matching the exact byte shape EncodeRecord produces are parsed by
// a sliver of hand-rolled scanning instead of a full json.Unmarshal: the
// envelope head is a handful of fixed literals, and the payload is sliced
// out untouched (no re-validation, no copy — the CRC frame already vouches
// for integrity, and the consumer parses the payload next anyway). That
// removes the second full parse of every record from the recovery path.
// Anything irregular — an escaped key, foreign spacing — falls back to the
// strict envelope unmarshal, and legacy frames take a single probe parse
// for the key instead of the envelope-then-probe double parse.
func DecodeRecordInto(rec *Record, frame []byte) error {
	if fastDecodeTyped(rec, frame) {
		return nil
	}
	if bytes.HasPrefix(frame, legacyPrefix) {
		return decodeLegacy(rec, frame)
	}
	*rec = Record{}
	if err := json.Unmarshal(frame, rec); err != nil {
		return fmt.Errorf("wal: decoding record envelope: %w", err)
	}
	if rec.Type == "" {
		return decodeLegacy(rec, frame)
	}
	switch rec.Type {
	case RecordRegister, RecordTombstone, RecordReplace:
	default:
		return fmt.Errorf("wal: unknown record type %q", rec.Type)
	}
	if rec.Version != recordVersion {
		return fmt.Errorf("wal: record version %d unsupported (want %d)", rec.Version, recordVersion)
	}
	if rec.Key == "" {
		return fmt.Errorf("wal: %s record has no key", rec.Type)
	}
	if (rec.Type == RecordRegister || rec.Type == RecordReplace) && len(rec.Payload) == 0 {
		return fmt.Errorf("wal: %s record has no payload", rec.Type)
	}
	return nil
}

// decodeLegacy fills *rec from a legacy bare frame. The key probe is
// best-effort: a frame it cannot name still registers fine (classminer
// decodes the full payload); it is only invisible to compaction.
func decodeLegacy(rec *Record, frame []byte) error {
	key := ""
	var p legacyProbe
	if err := json.Unmarshal(frame, &p); err == nil {
		key = p.Result.VideoName
	}
	*rec = Record{Type: RecordRegister, Version: 0, Key: key, Payload: frame}
	return nil
}

// fastDecodeTyped attempts the exact-shape parse of an EncodeRecord frame.
// It reports false — leaving *rec unspecified — whenever the bytes deviate
// from the canonical shape; the caller then takes the strict path.
func fastDecodeTyped(rec *Record, frame []byte) bool {
	if len(frame) < len(typedPrefix)+2 || frame[len(frame)-1] != '}' || !bytes.HasPrefix(frame, typedPrefix) {
		return false
	}
	rest := frame[len(typedPrefix):]
	var kind string
	switch {
	case bytes.HasPrefix(rest, []byte(RecordRegister)):
		kind, rest = RecordRegister, rest[len(RecordRegister):]
	case bytes.HasPrefix(rest, []byte(RecordTombstone)):
		kind, rest = RecordTombstone, rest[len(RecordTombstone):]
	case bytes.HasPrefix(rest, []byte(RecordReplace)):
		kind, rest = RecordReplace, rest[len(RecordReplace):]
	default:
		return false
	}
	if !bytes.HasPrefix(rest, typedVersion) {
		return false
	}
	rest = rest[len(typedVersion):]
	q := bytes.IndexByte(rest, '"')
	if q <= 0 {
		return false // empty or unterminated key
	}
	key := rest[:q]
	if bytes.IndexByte(key, '\\') >= 0 {
		return false // escaped key: let encoding/json do the unescaping
	}
	rest = rest[q:]
	if kind == RecordTombstone {
		if !bytes.Equal(rest, typedTombstone) {
			return false
		}
		*rec = Record{Type: kind, Version: recordVersion, Key: string(key)}
		return true
	}
	if !bytes.HasPrefix(rest, typedPayload) {
		return false
	}
	payload := rest[len(typedPayload) : len(rest)-1]
	if len(payload) == 0 {
		return false
	}
	*rec = Record{Type: kind, Version: recordVersion, Key: string(key), Payload: payload}
	return true
}

// supersedes reports whether a record of this kind makes every earlier
// record for the same key dead: a tombstone or replace fully determines the
// key's state regardless of what preceded it, a register does not (replay
// skips it when the key already exists, so dropping an earlier record would
// change what survives).
func (r Record) supersedes() bool {
	return r.Type == RecordTombstone || r.Type == RecordReplace
}

// FrameOverhead is the per-record framing cost in bytes on top of the
// payload (the length + CRC header). Callers accounting for on-log record
// sizes — the library's dead-bytes bookkeeping — add it to len(payload).
const FrameOverhead = headerSize
