package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing: every record is [length uint32 LE][crc32c uint32 LE]
// [payload]. The CRC covers the payload only; the length bound plus the
// checksum reject both bit rot and frames invented by reading zero-filled
// or garbage tails. Empty payloads are forbidden so that a zero-filled
// region (length 0, CRC 0 — which is crc32c("") — both plausible) can never
// masquerade as an endless run of valid empty records.
const (
	headerSize = 8
	// MaxRecordBytes bounds one record's payload; larger lengths in a
	// header are treated as corruption, not allocation requests.
	MaxRecordBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrTorn marks a frame cut short by a crash mid-write: the prefix read
	// so far is valid, the log simply ends inside this record.
	ErrTorn = errors.New("wal: torn record")
	// ErrCorrupt marks a frame whose bytes are present but wrong (CRC
	// mismatch, absurd or zero length).
	ErrCorrupt = errors.New("wal: corrupt record")
)

// appendRecord appends one framed record to dst and returns the extended
// slice (append-style, so callers can reuse a scratch buffer).
func appendRecord(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadRecord reads one framed record from r. It returns io.EOF at a clean
// end of log, an error wrapping ErrTorn when the log ends inside a frame,
// an error wrapping ErrCorrupt when the frame's bytes are damaged, and the
// underlying error verbatim when the read itself fails (a transient EIO is
// not evidence of a bad log, and must never trigger truncation or
// healing). After any non-nil error the reader's position is unspecified;
// replay must stop.
func ReadRecord(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		switch err {
		case io.EOF:
			return nil, io.EOF
		case io.ErrUnexpectedEOF:
			return nil, fmt.Errorf("%w: log ends inside header", ErrTorn)
		}
		return nil, fmt.Errorf("wal: reading record header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length record", ErrCorrupt)
	}
	if n > MaxRecordBytes {
		return nil, fmt.Errorf("%w: record length %d exceeds %d", ErrCorrupt, n, MaxRecordBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: log ends inside %d-byte payload", ErrTorn, n)
		}
		return nil, fmt.Errorf("wal: reading record payload: %w", err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("%w: crc %08x, frame says %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// scanLog reads framed records from r until the end of the stream or the
// first damaged frame, invoking fn (when non-nil) per record. It returns
// the byte length of the valid prefix, the record count, the damage that
// ended the scan (nil for a clean EOF; only ever ErrTorn/ErrCorrupt), and
// any fatal error — an fn failure or a real I/O error, either of which
// aborts the scan immediately and must not be treated as log damage.
func scanLog(r io.Reader, fn func(payload []byte) error) (validBytes, records int64, damage, err error) {
	for {
		payload, rerr := ReadRecord(r)
		switch {
		case rerr == io.EOF:
			return validBytes, records, nil, nil
		case errors.Is(rerr, ErrTorn) || errors.Is(rerr, ErrCorrupt):
			return validBytes, records, rerr, nil
		case rerr != nil:
			return validBytes, records, nil, rerr
		}
		validBytes += headerSize + int64(len(payload))
		records++
		if fn != nil {
			if ferr := fn(payload); ferr != nil {
				return validBytes, records, nil, ferr
			}
		}
	}
}
