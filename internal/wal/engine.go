package wal

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"classminer/internal/store"
	"classminer/internal/trace"
)

// Engine is the durable storage engine over one data directory: an
// append-only segmented log plus a checkpoint manager. The intended
// lifecycle is
//
//	eng, _ := wal.Open(dir, opts)     // repairs torn tail, prunes leftovers
//	io    := eng.SnapshotPath()       // load the newest snapshot, if any
//	eng.Replay(apply)                 // apply the log tail on top of it
//	eng.SetSource(save)               // teach checkpoints how to snapshot
//	eng.Append(record)                // journal each mutation before applying
//	eng.Checkpoint()                  // or let the background thresholds fire
//	eng.Close()
//
// All methods are safe for concurrent use. Append ordering is the caller's
// replay ordering.
type Engine struct {
	dir  string
	opts Options

	// cpMu serialises checkpoints (admin-triggered and background) without
	// stalling appends, which only need mu.
	cpMu sync.Mutex

	// syncMu serialises group-commit fsyncs with each other and with
	// anything that swaps the active segment out from under them (rotation,
	// and Close's final flush). A commit leader fsyncs e.active *outside*
	// e.mu so concurrent appenders can keep staging frames; holding syncMu
	// across the fsync pins the segment it targets. Lock order:
	// cpMu < syncMu < mu.
	syncMu sync.Mutex

	mu         sync.Mutex
	lock       *os.File // held flock on the data dir (see lockDataDir)
	active     *os.File
	activeIdx  uint64
	activeSize int64
	segStart   uint64 // oldest live segment (== manifest.FirstSegment)
	man        manifest
	lagRecords int64 // appended since the last checkpoint
	lagBytes   int64
	// deadRecords/deadBytes estimate the superseded share of the lag:
	// callers report each registration a tombstone or replacement killed
	// via NoteDead, and Compact resets the estimate to the exact residue
	// it could not reclaim (dead records still in the active segment).
	// deadActiveBytes is that known-unreclaimable residue — the compact
	// trigger subtracts it so a pile of active-side dead bytes cannot
	// kick futile full-log passes; rotation zeroes it (sealing makes the
	// residue reclaimable again).
	deadRecords     int64
	deadBytes       int64
	deadActiveBytes int64
	damaged         bool // Replay stopped early at a damaged or missing segment
	dirty           bool // unsynced writes on the active segment
	wedged          bool // an append failure could not be undone; log refuses writes
	buf             []byte
	source          func(io.Writer) error
	closed          bool

	// Group-commit state (SyncAlways only). Appenders stage frames under mu
	// and join curBatch; the batch's creator becomes its commit leader and
	// fsyncs once for everyone staged so far. durableSize is how much of the
	// active segment the last successful fsync (or the seal at rotation)
	// covers; everything past it is staged-but-unacknowledged, counted by
	// unsyncedRecords/unsyncedBytes so a failed batched fsync can claw the
	// whole tail back off the log and ack none of it.
	curBatch        *syncBatch
	durableSize     int64
	unsyncedRecords int64
	unsyncedBytes   int64
	syncCount       int64 // segment data fsyncs performed (group-commit ratio)
	// lastBatch and syncEWMA drive the adaptive gather window: when the
	// previous batch carried more than one record (writers are concurrent),
	// the next leader briefly holds the fsync baton open — a fraction of
	// the smoothed fsync duration — so writers woken by the previous commit
	// can restage and share the flush instead of trickling one record per
	// fsync in lockstep. A lone writer never pays the delay.
	lastBatch int64
	syncEWMA  time.Duration

	// syncHook, when non-nil, replaces the commit leader's fsync
	// (test-only fault injection for the batched-ack contract).
	syncHook func(f *os.File) error

	// compactHook, when non-nil, runs between Compact's commit stages
	// (test-only fault injection: a returned error aborts mid-flight the
	// way a crash would).
	compactHook func(stage string, seg uint64) error

	// Replication state (repl.go): attached follower pins keyed by follower
	// id, the lazily created durable-advance broadcast channel long-polling
	// pullers park on, and the low-water mark below which checkpoint pruning
	// has already swept (pinned segments survive below FirstSegment until
	// their followers move past them; pruneFloor lets the next checkpoint
	// reclaim them).
	pins       map[string]*replPin
	durableCh  chan struct{}
	pruneFloor uint64

	// met holds the engine's instruments (see registerMetrics); the zero
	// value is inert.
	met engineMetrics

	kick        chan struct{} // nudges the background checkpointer
	compactKick chan struct{} // nudges the background compactor
	done        chan struct{}
	wg          sync.WaitGroup
}

// Open opens (creating if needed) the data directory and repairs it: stale
// segments and snapshots a finished checkpoint no longer needs are pruned,
// and a torn tail on the active segment — the signature of a crash mid-
// append — is truncated away so the log ends on a record boundary. The
// returned engine is ready to Replay and Append.
func Open(dir string, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		dir:         dir,
		opts:        opts,
		lock:        lock,
		man:         man,
		segStart:    man.FirstSegment,
		pruneFloor:  man.FirstSegment,
		kick:        make(chan struct{}, 1),
		compactKick: make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	if err := e.pruneStale(); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	e.activeIdx = man.FirstSegment
	if n := len(segs); n > 0 {
		e.activeIdx = segs[n-1]
	}
	for _, idx := range segs {
		if fi, err := os.Stat(e.segPath(idx)); err == nil {
			e.lagBytes += fi.Size()
		}
	}
	if err := e.openActive(); err != nil {
		return nil, err
	}
	// Make the directory entries created above (the data dir on first use,
	// the active segment on a fresh log) durable before any record is
	// acknowledged — an fsynced record in a file whose directory entry is
	// lost to power loss is just as gone as an unsynced one.
	if err := store.SyncDir(e.dir); err != nil {
		e.active.Close()
		return nil, err
	}
	if parent := filepath.Dir(filepath.Clean(dir)); parent != dir {
		if err := store.SyncDir(parent); err != nil {
			e.active.Close()
			return nil, err
		}
	}
	if opts.Metrics != nil {
		e.registerMetrics(opts.Metrics)
	}
	if opts.Sync == SyncInterval {
		e.wg.Add(1)
		go e.syncLoop()
	}
	e.wg.Add(1)
	go e.checkpointLoop()
	e.wg.Add(1)
	go e.compactLoop()
	ok = true
	return e, nil
}

func (e *Engine) segPath(idx uint64) string { return filepath.Join(e.dir, segmentName(idx)) }

// pruneStale removes files superseded by the manifest: segments older than
// FirstSegment and snapshots other than the current one. These exist only
// when a crash interrupted a checkpoint between committing MANIFEST and
// finishing the prune (or landed an orphan snapshot before the commit).
func (e *Engine) pruneStale() error {
	segs, err := listSegments(e.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx < e.man.FirstSegment {
			e.opts.Logf("wal: pruning stale segment %s", segmentName(idx))
			if err := os.Remove(e.segPath(idx)); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
	}
	snaps, err := listSnapshots(e.dir)
	if err != nil {
		return err
	}
	for _, gen := range snaps {
		if name := snapshotName(gen); name != e.man.Snapshot {
			e.opts.Logf("wal: pruning stale snapshot %s", name)
			if err := os.Remove(filepath.Join(e.dir, name)); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
	}
	// Orphaned atomic-write temps: a crash inside WriteFileAtomic — a
	// checkpoint snapshot, a manifest replacement or a compaction segment
	// rewrite — leaves its temp file behind (the rename never ran, so the
	// live files are untouched). They are never named by the manifest and
	// never parse as segments or snapshots; clear them out.
	temps, err := listTempFiles(e.dir)
	if err != nil {
		return err
	}
	for _, name := range temps {
		e.opts.Logf("wal: pruning orphaned temp file %s", name)
		if err := os.Remove(filepath.Join(e.dir, name)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

// openActive repairs the active segment's tail and opens it for appending,
// creating it when the directory has no live segments yet.
func (e *Engine) openActive() error {
	path := e.segPath(e.activeIdx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	valid, _, damage, scanErr := scanLog(bufio.NewReader(f), nil)
	if scanErr != nil {
		// A real read failure, not a torn tail: truncating here would
		// destroy records that may be perfectly intact. Fail the open and
		// let the operator retry.
		f.Close()
		return fmt.Errorf("wal: scanning %s: %w", segmentName(e.activeIdx), scanErr)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if valid < fi.Size() {
		why := "torn"
		if damage != nil {
			why = damage.Error()
		}
		e.opts.Logf("wal: truncating %s from %d to %d bytes (%s)", segmentName(e.activeIdx), fi.Size(), valid, why)
		e.lagBytes -= fi.Size() - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	e.active = f
	e.activeSize = valid
	// Everything on a freshly repaired segment is either already durable or
	// about to be truncated away; group commit starts with nothing staged.
	e.durableSize = valid
	e.unsyncedRecords, e.unsyncedBytes = 0, 0
	return nil
}

// SnapshotPath returns the current checkpoint snapshot's path, or "" when
// no checkpoint has completed yet (recovery is then a pure log replay).
func (e *Engine) SnapshotPath() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.man.Snapshot == "" {
		return ""
	}
	return filepath.Join(e.dir, e.man.Snapshot)
}

// Replay yields every intact record appended since the current snapshot, in
// append order. It stops cleanly at the first torn or corrupt frame (a
// fully damaged segment chain loses its tail — that is surfaced via Logf
// and ReplayDamaged, not an error, because the valid prefix is still the
// best available state). An error from fn aborts the replay and is
// returned. Replay is meant to run once, after Open and before the first
// Append.
func (e *Engine) Replay(fn func(payload []byte) error) error {
	e.mu.Lock()
	start, end := e.segStart, e.activeIdx
	e.mu.Unlock()
	var records int64
	damaged := false
	for idx := start; idx <= end; idx++ {
		f, err := os.Open(e.segPath(idx))
		if os.IsNotExist(err) {
			e.opts.Logf("wal: segment %s missing; replay stops (records after it are unreachable)", segmentName(idx))
			damaged = true
			break
		}
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		_, n, damage, scanErr := scanLog(bufio.NewReader(f), fn)
		f.Close()
		records += n
		if scanErr != nil {
			// An fn failure or a real I/O error — either way, not log
			// damage: propagate rather than heal away readable records.
			return scanErr
		}
		if damage != nil {
			e.opts.Logf("wal: %s damaged after %d records (%v); replay stops", segmentName(idx), n, damage)
			// Damage in the active segment would have been truncated away
			// by openActive; mid-chain damage strands the segments after it.
			damaged = idx < end
			break
		}
	}
	e.mu.Lock()
	e.lagRecords = records
	e.damaged = damaged
	e.mu.Unlock()
	return nil
}

// ReplayDamaged reports whether the last Replay stopped before the end of
// the segment chain (a damaged or missing sealed segment). The records
// beyond the damage point are unreachable by every future replay, and new
// appends land beyond it too — so a caller that recovered successfully
// should checkpoint immediately: the fresh snapshot captures the recovered
// state, reseats the log past the damage, and prunes the broken segments.
func (e *Engine) ReplayDamaged() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.damaged
}

// SetSource installs the snapshot writer checkpoints call to serialise the
// current library state. Until a source is set, Checkpoint fails and the
// background thresholds stay quiet.
//
// Ordering contract: when the source runs it must observe the state of
// every record already appended, or a checkpoint could prune a segment
// whose record the snapshot missed. Callers get this for free by applying
// each appended record under the same lock the source reads under — which
// is exactly how Library.register (append + mutate under the write lock)
// pairs with Library.Save (snapshot under the read lock).
func (e *Engine) SetSource(write func(io.Writer) error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.source = write
	// A recovered log can already be past the auto-checkpoint thresholds
	// (the crash happened with lag accumulated); evaluate them now rather
	// than waiting for the next append, which on a read-only deployment
	// might never come.
	if e.source != nil && e.lagExceededLocked() {
		select {
		case e.kick <- struct{}{}:
		default:
		}
	}
}

// syncBatch is one group-commit unit: every appender that staged a frame
// while the batch was open shares one fsync and one verdict. The first
// waiter to win the lead token drives the fsync; err is written exactly
// once, before done is closed, and followers read it only after <-done.
type syncBatch struct {
	lead chan struct{} // capacity 1: the winning send claims leadership
	done chan struct{}
	err  error
}

func newSyncBatch() *syncBatch {
	return &syncBatch{lead: make(chan struct{}, 1), done: make(chan struct{})}
}

// commit publishes the batch verdict and releases every waiter.
func (b *syncBatch) commit(err error) {
	b.err = err
	close(b.done)
}

// Commit is the durability handle of one staged append: the record is on
// the log, and Wait blocks until the fsync that covers it succeeds (or the
// record is clawed back by a failed one). A zero-batch Commit means the
// record needed no further waiting at stage time (SyncInterval/SyncNever).
type Commit struct {
	e *Engine
	b *syncBatch
}

// Wait blocks until the staged record's group commit resolves and returns
// its verdict: nil means the record is durable, an error means the batched
// fsync failed and the record was clawed back off the log (it will never be
// replayed). Every staged Commit should be waited on.
func (c Commit) Wait() error {
	return c.WaitCtx(context.Background())
}

// WaitCtx is Wait with tracing: when ctx carries an active trace span, the
// time parked behind the group commit is recorded as a "wal.park" child
// span — renamed "wal.fsync.lead" when this waiter wins the lead token and
// drives the fsync itself, which is the distinction that matters when
// attributing a stalled ingest (waiting on someone else's flush vs. paying
// for the disk). The context is observational only: a group-committed
// record cannot be abandoned by cancellation, so WaitCtx still blocks until
// the batch verdict.
func (c Commit) WaitCtx(ctx context.Context) error {
	if c.b == nil {
		return nil
	}
	sp := trace.StartSpan(ctx, "wal.park")
	defer sp.End()
	select {
	case <-c.b.done:
		return c.b.err
	case c.b.lead <- struct{}{}:
		sp.Rename("wal.fsync.lead")
		return c.e.leadCommit(c.b)
	}
}

// Append journals one record. The payload is on the log (and, under
// SyncAlways, on stable storage) before Append returns, so callers may
// apply the mutation to in-memory state the moment it does. Appending an
// empty payload is an error (the framing reserves it for corruption
// detection).
//
// Under SyncAlways concurrent appenders group-commit: each stages its frame
// under the engine lock and joins the open batch, the first waiter leads
// one fsync for everyone staged, and every member is acknowledged only
// after the fsync that covers its frame succeeds. One slow disk flush
// therefore acks many records, but never before they are durable. Callers
// that want to overlap their own work with the flush use Begin + Wait;
// Append is simply both back to back.
func (e *Engine) Append(payload []byte) error {
	return e.AppendCtx(context.Background(), payload)
}

// AppendCtx is Append with tracing: when ctx carries a trace span, the
// staging and group-commit wait are recorded as "wal.append" plus the
// wal.park/wal.fsync.lead child from WaitCtx.
func (e *Engine) AppendCtx(ctx context.Context, payload []byte) error {
	sp := trace.StartSpan(ctx, "wal.append")
	defer sp.End()
	if sp != nil {
		ctx = trace.With(ctx, sp) // park/lead spans nest under wal.append
	}
	c, err := e.Begin(payload)
	if err != nil {
		return err
	}
	return c.WaitCtx(ctx)
}

// Begin stages one record on the log and returns its durability handle
// without waiting for the covering fsync. The record is written (ordered,
// crash-consistent) when Begin returns; it is acknowledged durable only
// when Wait returns nil. Between the two the caller may do unrelated work —
// the classminer library installs the registration into memory while the
// group commit flushes — but must treat the record as unacknowledged until
// Wait's verdict.
func (e *Engine) Begin(payload []byte) (Commit, error) {
	if len(payload) == 0 {
		return Commit{}, fmt.Errorf("wal: refusing to append empty record")
	}
	if len(payload) > MaxRecordBytes {
		return Commit{}, fmt.Errorf("wal: record payload %d bytes exceeds %d", len(payload), MaxRecordBytes)
	}
	e.mu.Lock()
	if err := e.appendableLocked(); err != nil {
		e.mu.Unlock()
		return Commit{}, err
	}
	if e.activeSize >= e.opts.SegmentBytes {
		// Rotation swaps and closes the active file, so it must exclude any
		// in-flight group-commit fsync targeting it. Re-take the locks in
		// order (syncMu < mu) and re-check everything that may have changed
		// while mu was released.
		e.mu.Unlock()
		e.syncMu.Lock()
		e.mu.Lock()
		if err := e.appendableLocked(); err != nil {
			e.mu.Unlock()
			e.syncMu.Unlock()
			return Commit{}, err
		}
		if e.activeSize >= e.opts.SegmentBytes {
			if err := e.rotateLocked(); err != nil {
				e.mu.Unlock()
				e.syncMu.Unlock()
				return Commit{}, err
			}
		}
		e.syncMu.Unlock()
	}
	e.buf = appendRecord(e.buf[:0], payload)
	if _, err := e.active.Write(e.buf); err != nil {
		e.undoAppendLocked()
		e.mu.Unlock()
		return Commit{}, fmt.Errorf("wal: %w", err)
	}
	n := int64(len(e.buf))
	e.activeSize += n
	e.lagRecords++
	e.lagBytes += n
	e.met.appends.Inc()
	e.met.appendBytes.Add(uint64(n))
	if e.source != nil && e.lagExceededLocked() {
		select {
		case e.kick <- struct{}{}:
		default: // a checkpoint is already pending
		}
	}
	if e.opts.Sync != SyncAlways {
		e.dirty = true
		// The relaxed policies acknowledge at append time, so the record is
		// immediately shippable to followers.
		e.advancePinsLocked(1, n)
		e.mu.Unlock()
		return Commit{}, nil
	}
	e.unsyncedRecords++
	e.unsyncedBytes += n
	b := e.curBatch
	if b == nil {
		b = newSyncBatch()
		e.curBatch = b
	}
	e.mu.Unlock()
	return Commit{e: e, b: b}, nil
}

// appendableLocked reports why the engine cannot take appends, if it can't.
// Callers hold e.mu.
func (e *Engine) appendableLocked() error {
	if e.closed {
		return ErrClosed
	}
	if e.wedged {
		return fmt.Errorf("wal: engine wedged by an earlier unrecoverable write failure")
	}
	return nil
}

// leadCommit runs the group-commit leader protocol for batch b: acquire the
// fsync baton, close the batch to new joiners, fsync the active segment, and
// ack (or fail) every member together. While the leader waits for the baton
// — a previous batch's fsync may still be running — more appenders join b,
// which is exactly the coalescing that makes one flush ack many records.
func (e *Engine) leadCommit(b *syncBatch) error {
	e.syncMu.Lock()
	e.mu.Lock()
	select {
	case <-b.done:
		// A rotation or Close sealed the batch while we waited for the
		// baton; its fsync covered (or clawed back) the whole batch.
		e.mu.Unlock()
		e.syncMu.Unlock()
		return b.err
	default:
	}
	// Adaptive gather: the previous commit just woke a cohort of writers
	// that are re-encoding their next records right now. Capturing the
	// batch immediately would fsync one or two frames and make the cohort
	// wait a whole extra flush; holding the baton open for a sliver of the
	// smoothed fsync duration lets them restage and ride this one. The
	// wait is a yield loop, not a sleep — it ends the moment the cohort
	// (sized by the previous batch) has restaged, and timer granularity
	// would otherwise dwarf the window. A lone writer never enters it.
	if target := e.lastBatch; target > 1 {
		window := e.syncEWMA / 4
		if window > 200*time.Microsecond {
			window = 200 * time.Microsecond
		}
		deadline := time.Now().Add(window)
		for e.unsyncedRecords < target {
			e.mu.Unlock()
			runtime.Gosched()
			if !time.Now().Before(deadline) {
				e.mu.Lock()
				break
			}
			e.mu.Lock()
		}
	}
	if e.curBatch == b {
		e.curBatch = nil
	}
	f := e.active
	size := e.activeSize
	recs, bytes := e.unsyncedRecords, e.unsyncedBytes
	hook := e.syncHook
	e.syncCount++
	e.mu.Unlock()

	// The fsync runs outside e.mu (appenders keep staging into the next
	// batch) but inside syncMu (the segment cannot rotate away). Frames
	// written after `size` was captured are not guaranteed covered; they
	// stay unsynced and ride the next commit.
	start := time.Now()
	var err error
	if hook != nil {
		err = hook(f)
	} else {
		err = f.Sync()
	}
	took := time.Since(start)
	e.met.fsync.Observe(took.Seconds())

	e.mu.Lock()
	e.lastBatch = recs
	if e.syncEWMA == 0 {
		e.syncEWMA = took
	} else {
		e.syncEWMA += (took - e.syncEWMA) / 8
	}
	if err == nil {
		if size > e.durableSize {
			e.durableSize = size
		}
		e.unsyncedRecords -= recs
		e.unsyncedBytes -= bytes
		e.advancePinsLocked(recs, bytes)
		e.mu.Unlock()
		e.syncMu.Unlock()
		e.met.batch.Observe(float64(recs))
		b.commit(nil)
		return nil
	}
	// The batched fsync failed: none of the staged frames may be
	// acknowledged, this batch's or the next's (its frames sit above ours
	// on the same segment). Claw the whole unsynced tail back off the log
	// so the errors reported here and the next replay agree.
	cerr := fmt.Errorf("wal: %w", err)
	e.clawBackLocked()
	e.mu.Unlock()
	e.syncMu.Unlock()
	b.commit(cerr)
	return cerr
}

// clawBackLocked truncates the active segment back to the last durable byte
// after a failed batched fsync, failing the still-open batch whose frames
// the truncation also removes. Only meaningful under SyncAlways — the other
// modes never stage unacknowledged frames, and their durableSize does not
// track the interval fsyncs, so truncating to it would destroy durable
// records. Callers hold e.mu (and syncMu, via the leader).
func (e *Engine) clawBackLocked() {
	if b := e.curBatch; b != nil {
		e.curBatch = nil
		b.commit(fmt.Errorf("wal: batched fsync failed; record clawed back"))
	}
	e.lagRecords -= e.unsyncedRecords
	e.lagBytes -= e.unsyncedBytes
	e.unsyncedRecords, e.unsyncedBytes = 0, 0
	e.activeSize = e.durableSize
	e.truncateActiveLocked(e.durableSize, "a failed batched fsync")
}

// truncateActiveLocked physically claws the active segment back to size.
// The truncation itself must reach the disk: a page-cache-only truncate can
// be lost to power failure, leaving removed frames on disk for replay to
// resurrect. If it cannot be made durable, the log and the acks can no
// longer be reconciled: the engine wedges (all future appends refused)
// rather than risk resurrecting a record that was reported failed. Callers
// hold e.mu.
func (e *Engine) truncateActiveLocked(size int64, why string) {
	if _, err := e.active.Seek(size, io.SeekStart); err == nil {
		if err := e.active.Truncate(size); err == nil {
			if err := e.active.Sync(); err == nil {
				return
			}
		}
	}
	e.wedged = true
	e.opts.Logf("wal: could not truncate %s back to %d bytes after %s; engine wedged",
		segmentName(e.activeIdx), size, why)
}

// undoAppendLocked truncates the active segment back to the last staged
// record after a failed write, so the failure the caller sees and the log
// recovery will replay agree (activeSize excludes the failed frame — prior
// staged frames stay for their own commit). Callers hold e.mu.
func (e *Engine) undoAppendLocked() {
	e.truncateActiveLocked(e.activeSize, "a failed append")
}

func (e *Engine) lagExceededLocked() bool {
	return (e.opts.CheckpointBytes > 0 && e.lagBytes >= e.opts.CheckpointBytes) ||
		(e.opts.CheckpointRecords > 0 && e.lagRecords >= e.opts.CheckpointRecords)
}

// NoteDead reports that records already on the log have been superseded — a
// registration a tombstone or replacement just killed — so the engine can
// weigh sealed-segment compaction. The caller supplies the on-log size of
// the superseded records (payload plus FrameOverhead); the figure is an
// estimate that Compact later replaces with the exact residue, so a stale
// or duplicate note degrades to an early compaction, never to data loss.
func (e *Engine) NoteDead(records, bytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || records <= 0 {
		return
	}
	e.deadRecords += records
	e.deadBytes += bytes
	e.maybeKickCompactLocked()
}

// maybeKickCompactLocked nudges the background compactor once enough
// presumed-reclaimable dead bytes accumulate — the estimate minus the
// residue the last pass proved lives in the active segment — and there is
// at least one sealed segment to reclaim them from (active-side dead
// records are unreachable until rotation seals them — rotateLocked
// re-evaluates then). Callers hold e.mu.
func (e *Engine) maybeKickCompactLocked() {
	if e.opts.CompactBytes > 0 && e.deadBytes-e.deadActiveBytes >= e.opts.CompactBytes && e.activeIdx > e.segStart {
		select {
		case e.compactKick <- struct{}{}:
		default: // a compaction is already pending
		}
	}
}

// rotateLocked seals the active segment and starts the next one. Callers
// hold e.mu AND e.syncMu (sealing closes the file a group-commit leader
// may otherwise be fsyncing). State is only committed once the new segment
// is fully open and durable, so a failed rotation (disk full, fsync error)
// leaves the engine still appending to the old segment instead of wedged on
// a closed file.
func (e *Engine) rotateLocked() error {
	// Sync unconditionally, not just when dirty: syncLoop clears the dirty
	// flag before it fsyncs outside the lock, so trusting the flag here
	// could seal a segment whose records are still only in page cache.
	if err := e.active.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	e.dirty = false
	e.syncCount++
	// The seal covered every staged frame: the open group-commit batch is
	// durable in full, so ack it here rather than making its leader fsync a
	// segment that no longer takes appends. durableSize must advance with
	// the seal, not with the new segment below: if opening the next segment
	// fails, the engine keeps appending to this one, and a later claw-back
	// must not truncate away the records just acknowledged durable.
	if b := e.curBatch; b != nil {
		e.curBatch = nil
		b.commit(nil)
	}
	e.advancePinsLocked(e.unsyncedRecords, e.unsyncedBytes)
	e.unsyncedRecords, e.unsyncedBytes = 0, 0
	e.durableSize = e.activeSize
	next := e.activeIdx + 1
	f, err := os.OpenFile(e.segPath(next), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// Make the new segment's directory entry durable: recovery iterates
	// segment indices, so a hole left by power loss would end replay early.
	// On failure, undo the creation so a retry's O_EXCL does not trip over
	// this attempt's leftover.
	if err := store.SyncDir(e.dir); err != nil {
		f.Close()
		os.Remove(e.segPath(next))
		return err
	}
	old := e.active
	e.active = f
	e.activeIdx = next
	e.activeSize = 0
	e.durableSize = 0
	if err := old.Close(); err != nil {
		// The old segment is already synced; nothing is lost.
		e.opts.Logf("wal: closing sealed %s: %v", segmentName(next-1), err)
	}
	// The just-sealed segment may carry dead records compaction could not
	// reach while it was active.
	e.deadActiveBytes = 0
	e.maybeKickCompactLocked()
	e.met.rotations.Inc()
	return nil
}

// Checkpoint writes a full snapshot through the installed source, commits
// it by replacing MANIFEST, and prunes the log segments the snapshot
// superseded. Records appended while the snapshot is being written stay on
// the log and are replayed over it on recovery (the library's registration
// replay skips the duplicates), so checkpointing never blocks appends.
func (e *Engine) Checkpoint() error {
	e.cpMu.Lock()
	defer e.cpMu.Unlock()
	cpStart := time.Now()

	// rotateLocked needs the fsync baton (lock order cpMu < syncMu < mu).
	e.syncMu.Lock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.syncMu.Unlock()
		return ErrClosed
	}
	src := e.source
	if src == nil {
		e.mu.Unlock()
		e.syncMu.Unlock()
		return fmt.Errorf("wal: no snapshot source installed")
	}
	// Seal the log at a cut point: everything before the new active
	// segment will be covered by the snapshot about to be taken (the
	// source serialises state that includes at least those records).
	if err := e.rotateLocked(); err != nil {
		e.mu.Unlock()
		e.syncMu.Unlock()
		return err
	}
	cut := e.activeIdx
	gen := e.man.Generation + 1
	comps := e.man.Compactions
	prevRecords, prevBytes := e.lagRecords, e.lagBytes
	e.lagRecords, e.lagBytes = 0, 0
	// Followers too far behind to wait for forfeit their pins now (their
	// next pull re-seeds from the snapshot about to be written); surviving
	// pins cap the prune below. minPin only rises while cpMu is held —
	// Attach needs cpMu and ReadFrom moves cursors forward — so capturing it
	// here is safe for the whole checkpoint.
	e.evictOverBudgetLocked()
	minPin := e.minPinLocked()
	e.mu.Unlock()
	e.syncMu.Unlock()

	restoreLag := func() {
		e.mu.Lock()
		e.lagRecords += prevRecords
		e.lagBytes += prevBytes
		e.mu.Unlock()
	}
	snap := snapshotName(gen)
	if err := store.WriteFileAtomic(filepath.Join(e.dir, snap), src); err != nil {
		restoreLag()
		return err
	}
	man := manifest{Version: manifestVersion, Generation: gen, Snapshot: snap, FirstSegment: cut, Compactions: comps}
	if err := man.write(e.dir); err != nil {
		// Do NOT remove the snapshot here: write can fail after the rename
		// actually installed the new MANIFEST (e.g. the directory fsync
		// errored), and deleting a snapshot a committed manifest names
		// would wedge every future boot. An uncommitted orphan is pruned
		// by the next Open instead.
		restoreLag()
		return err
	}

	e.mu.Lock()
	oldSnap, oldStart := e.man.Snapshot, e.segStart
	e.man = man
	e.segStart = cut
	e.damaged = false // the snapshot supersedes any broken segment chain
	// The pruned segments take their dead records with them; notes filed
	// for post-cut straddlers are dropped too (an undercount Compact's
	// exact recount later repairs).
	e.deadRecords, e.deadBytes, e.deadActiveBytes = 0, 0, 0
	e.mu.Unlock()

	// The commit is durable; pruning is best-effort (Open re-prunes). An
	// attached follower's pin caps the sweep: segments it still needs stay
	// on disk — below FirstSegment now, invisible to recovery but exactly
	// where the follower's cursor says they are — and pruneFloor remembers
	// to reclaim them once the pin has moved past.
	pruneTo := cut
	if minPin < pruneTo {
		pruneTo = minPin
	}
	low := oldStart
	if e.pruneFloor < low {
		low = e.pruneFloor
	}
	for idx := low; idx < pruneTo; idx++ {
		if err := os.Remove(e.segPath(idx)); err != nil && !os.IsNotExist(err) {
			e.opts.Logf("wal: pruning %s: %v", segmentName(idx), err)
		}
	}
	e.pruneFloor = pruneTo
	if oldSnap != "" && oldSnap != snap {
		if err := os.Remove(filepath.Join(e.dir, oldSnap)); err != nil && !os.IsNotExist(err) {
			e.opts.Logf("wal: pruning %s: %v", oldSnap, err)
		}
	}
	e.opts.Logf("wal: checkpoint generation %d (%d records, %d bytes folded in)", gen, prevRecords, prevBytes)
	e.met.checkpoint.ObserveSince(cpStart)
	return nil
}

// Stats reports the engine's current durability state.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	live := e.lagRecords - e.deadRecords
	if live < 0 {
		live = 0
	}
	return Stats{
		Records:     e.lagRecords,
		Bytes:       e.lagBytes,
		DeadRecords: e.deadRecords,
		DeadBytes:   e.deadBytes,
		LiveRecords: live,
		Segments:    int(e.activeIdx - e.segStart + 1),
		Generation:  e.man.Generation,
		Syncs:       e.syncCount,
	}
}

// checkpointLoop services threshold kicks from Append.
func (e *Engine) checkpointLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case <-e.kick:
			if err := e.Checkpoint(); err != nil && err != ErrClosed {
				e.opts.Logf("wal: background checkpoint: %v", err)
			}
		}
	}
}

// compactLoop services dead-bytes kicks from NoteDead and rotateLocked.
func (e *Engine) compactLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case <-e.compactKick:
			if _, err := e.Compact(); err != nil && err != ErrClosed {
				e.opts.Logf("wal: background compaction: %v", err)
			}
		}
	}
}

// syncLoop flushes dirty segments on the SyncInterval cadence. The fsync
// itself runs outside e.mu — holding the lock across a slow disk flush
// would stall every Append (and the Library writer behind it, and the
// readers queued behind *that*), defeating SyncInterval's purpose.
func (e *Engine) syncLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			e.mu.Lock()
			var f *os.File
			if e.dirty && !e.closed {
				f = e.active
				e.dirty = false
			}
			e.mu.Unlock()
			if f == nil {
				continue
			}
			// If a rotation sealed f meanwhile, it was synced there first;
			// a closed-file error here means the data is already safe.
			if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
				e.opts.Logf("wal: interval sync: %v", err)
				e.mu.Lock()
				if e.active == f {
					e.dirty = true // retry next tick
				}
				e.mu.Unlock()
			} else {
				e.mu.Lock()
				e.syncCount++
				e.mu.Unlock()
			}
		}
	}
}

// Close stops the background goroutines, fsyncs any buffered appends, and
// closes the active segment. The engine is unusable afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	e.wg.Wait()
	// Serialise with a caller-driven Checkpoint or Compact still in
	// flight (both hold cpMu; new ones bail on the closed flag): without
	// this, Close could release the data-dir flock while a zombie
	// compaction keeps renaming segments and rewriting MANIFEST under a
	// successor engine's feet. syncMu likewise waits out any in-flight
	// group-commit fsync before the active file is closed under it.
	e.cpMu.Lock()
	defer e.cpMu.Unlock()
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	switch {
	case e.unsyncedRecords > 0:
		// SyncAlways: staged group-commit frames whose leader has not run
		// yet must be resolved before the file closes — flush and ack them,
		// or claw them back so no error-reported record survives to be
		// replayed.
		err = e.active.Sync()
		if err == nil {
			e.syncCount++
			e.durableSize = e.activeSize
			e.advancePinsLocked(e.unsyncedRecords, e.unsyncedBytes)
			e.unsyncedRecords, e.unsyncedBytes = 0, 0
			if b := e.curBatch; b != nil {
				e.curBatch = nil
				b.commit(nil)
			}
		} else {
			e.clawBackLocked()
		}
	case e.dirty:
		// SyncInterval/SyncNever: every record here was already
		// acknowledged at append time (those modes promise no durability
		// before Close), and durableSize does not track the interval
		// fsyncs — so a failed final flush is reported, never clawed back:
		// truncation would destroy records earlier interval fsyncs already
		// made durable.
		err = e.active.Sync()
		e.dirty = false
	}
	if cerr := e.active.Close(); err == nil {
		err = cerr
	}
	e.lock.Close() // releases the data-dir flock
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
