//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDataDir takes an exclusive advisory lock on dir's LOCK file so two
// processes can never append to the same log or prune each other's
// checkpoints. flock (not an O_EXCL pid file) because the kernel releases
// it when the holder dies, so a crashed daemon never blocks its own
// recovery. The returned file must stay open for the engine's lifetime;
// closing it releases the lock.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: data directory %s is in use by another process: %w", dir, err)
	}
	return f, nil
}
