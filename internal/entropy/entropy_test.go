package entropy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestThresholdSeparatesBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var values []float64
	for i := 0; i < 400; i++ {
		values = append(values, 0.1+rng.NormFloat64()*0.02) // "same unit" mode
	}
	for i := 0; i < 40; i++ {
		values = append(values, 0.8+rng.NormFloat64()*0.05) // "boundary" mode
	}
	th, err := Threshold(values)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0.2 || th >= 0.7 {
		t.Fatalf("threshold = %v, want between the two modes (0.2, 0.7)", th)
	}
}

func TestKapurRawBounded(t *testing.T) {
	values := []float64{0.1, 0.1, 0.2, 0.8, 0.9}
	th, err := Kapur(values, 32)
	if err != nil {
		t.Fatal(err)
	}
	if th < 0.1 || th > 0.9 {
		t.Fatalf("kapur threshold = %v out of sample range", th)
	}
}

func TestThresholdIgnoresNonFinite(t *testing.T) {
	values := []float64{0.1, 0.1, 0.9, 0.9, math.NaN(), math.Inf(1), math.Inf(-1)}
	th, err := Threshold(values)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0.1 || th >= 0.9 {
		t.Fatalf("threshold = %v, want strictly between modes", th)
	}
}

func TestThresholdEmpty(t *testing.T) {
	if _, err := Threshold(nil); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestThresholdConstant(t *testing.T) {
	th, err := Threshold([]float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if th != 0.5 {
		t.Fatalf("threshold = %v, want 0.5 for constant input", th)
	}
}

func TestThresholdOrFallback(t *testing.T) {
	if got := ThresholdOr(nil, 0.42); got != 0.42 {
		t.Fatalf("fallback = %v, want 0.42", got)
	}
	if got := ThresholdOr([]float64{1, 1, 1}, 0.42); got != 1 {
		t.Fatalf("got = %v, want 1", got)
	}
}

func TestThresholdBinsClamp(t *testing.T) {
	// bins < 2 must not panic.
	if _, err := ThresholdBins([]float64{0, 1, 0, 1}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestOtsuSeparatesBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var values []float64
	for i := 0; i < 300; i++ {
		values = append(values, rng.NormFloat64()*0.03+0.2)
	}
	for i := 0; i < 300; i++ {
		values = append(values, rng.NormFloat64()*0.03+0.9)
	}
	th, err := Otsu(values, 64)
	if err != nil {
		t.Fatal(err)
	}
	if th < 0.28 || th > 0.82 {
		t.Fatalf("otsu threshold = %v, want a separator inside (0.28, 0.82)", th)
	}
}

func TestOtsuEmpty(t *testing.T) {
	if _, err := Otsu(nil, 16); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ q, want float64 }{{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}} {
		got, err := Percentile(v, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("Percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestPercentileClampsQ(t *testing.T) {
	v := []float64{1, 2, 3}
	if got, _ := Percentile(v, -1); got != 1 {
		t.Fatalf("q<0 clamp: got %v", got)
	}
	if got, _ := Percentile(v, 2); got != 3 {
		t.Fatalf("q>1 clamp: got %v", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if _, err := Percentile(nil, 0.5); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

// Property: the threshold always lies inside [min, max] of the sample.
func TestThresholdPropertyBounded(t *testing.T) {
	f := func(raw [12]float64) bool {
		values := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = math.Mod(v, 1e9)
			if math.IsNaN(values[i]) {
				values[i] = 0
			}
		}
		lo, hi := values[0], values[0]
		for _, v := range values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		th, err := Threshold(values)
		if err != nil {
			return false
		}
		return th >= lo-1e-9 && th <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in q.
func TestPercentilePropertyMonotone(t *testing.T) {
	f := func(raw [9]float64, q1, q2 float64) bool {
		a, b := q1, q2
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		a -= float64(int(a))
		b -= float64(int(b))
		if a > b {
			a, b = b, a
		}
		va, err1 := Percentile(raw[:], a)
		vb, err2 := Percentile(raw[:], b)
		return err1 == nil && err2 == nil && va <= vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
