// Package entropy implements the "fast entropy" automatic threshold
// detection technique the paper inherits from Fan et al. (MultiView,
// J. Electronic Imaging 2001, ref. [10]). The pipeline uses it wherever a
// data-dependent threshold is required: the shot-cut thresholds inside each
// 30-frame analysis window (§3.1), the group-boundary thresholds T1 and T2
// (§3.2), and the group-merging threshold TG (§3.4).
//
// Threshold works in two stages. First a Kapur-style maximum-entropy split
// is computed over a histogram of the observations: the cut point that
// maximises the summed entropies of the two induced populations. Because
// maximum-entropy splits drift into the dominant mode when the two
// populations are very unbalanced (exactly the situation for shot
// boundaries, which are rare events), the split is then refined with
// Ridler–Calvard (ISODATA) iterations — the threshold is moved to the
// midpoint of the two class means until it stabilises. The refined value
// lands between the modes without any hand-set constant.
package entropy

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned when a threshold is requested for an empty sample
// (or a sample containing no finite values).
var ErrNoData = errors.New("entropy: no observations")

// DefaultBins is the histogram resolution used when the caller does not
// specify one. 64 bins is fine-grained enough for the few hundred
// observations a window or a video yields while keeping bins populated.
const DefaultBins = 64

// Threshold returns the fast-entropy threshold for the sample: a Kapur
// maximum-entropy split refined by Ridler–Calvard iterations. The result
// lies inside [min(values), max(values)]. When all observations are equal
// the common value is returned.
func Threshold(values []float64) (float64, error) {
	return ThresholdBins(values, DefaultBins)
}

// ThresholdBins is Threshold with an explicit histogram resolution.
func ThresholdBins(values []float64, bins int) (float64, error) {
	clean := finite(values)
	if len(clean) == 0 {
		return 0, ErrNoData
	}
	t, err := Kapur(clean, bins)
	if err != nil {
		return 0, err
	}
	return ridlerCalvard(clean, t), nil
}

// Kapur returns the raw Kapur maximum-entropy threshold over the sample,
// without midpoint refinement. Exposed for the thresholding ablation bench.
func Kapur(values []float64, bins int) (float64, error) {
	clean := finite(values)
	if len(clean) == 0 {
		return 0, ErrNoData
	}
	if bins < 2 {
		bins = 2
	}
	lo, hi := minMax(clean)
	if hi == lo {
		return lo, nil
	}
	hist := histogram(clean, lo, hi, bins)
	n := float64(len(clean))
	for i := range hist {
		hist[i] /= n
	}
	// Prefix sums of probability mass and of p*log p.
	cumP := make([]float64, bins+1)
	cumH := make([]float64, bins+1)
	for i := 0; i < bins; i++ {
		cumP[i+1] = cumP[i] + hist[i]
		if hist[i] > 0 {
			cumH[i+1] = cumH[i] + hist[i]*math.Log(hist[i])
		} else {
			cumH[i+1] = cumH[i]
		}
	}
	bestT, bestScore := 1, math.Inf(-1)
	for t := 1; t < bins; t++ {
		pLo := cumP[t]
		pHi := 1 - pLo
		if pLo <= 0 || pHi <= 0 {
			continue
		}
		hLo := math.Log(pLo) - cumH[t]/pLo
		hHi := math.Log(pHi) - (cumH[bins]-cumH[t])/pHi
		if s := hLo + hHi; s > bestScore {
			bestScore, bestT = s, t
		}
	}
	return lo + (hi-lo)*float64(bestT)/float64(bins), nil
}

// ridlerCalvard iterates t <- (mean(values <= t) + mean(values > t)) / 2
// until the threshold stabilises. It always terminates: the threshold is
// bounded inside [lo, hi] and the update is a contraction on the finite set
// of distinct splits.
func ridlerCalvard(values []float64, t float64) float64 {
	for iter := 0; iter < 64; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		for _, v := range values {
			if v <= t {
				sumLo += v
				nLo++
			} else {
				sumHi += v
				nHi++
			}
		}
		if nLo == 0 || nHi == 0 {
			return t
		}
		next := (sumLo/float64(nLo) + sumHi/float64(nHi)) / 2
		if math.Abs(next-t) < 1e-12 {
			return next
		}
		t = next
	}
	return t
}

// ThresholdOr returns the fast-entropy threshold, or fallback when the
// sample is empty. It exists because several call sites (e.g. tiny analysis
// windows at the end of a stream) legitimately see no observations.
func ThresholdOr(values []float64, fallback float64) float64 {
	t, err := Threshold(values)
	if err != nil {
		return fallback
	}
	return t
}

// Otsu returns the classical Otsu between-class-variance threshold over the
// sample. It is one of the comparators used by the adaptive-thresholding
// ablation bench.
func Otsu(values []float64, bins int) (float64, error) {
	clean := finite(values)
	if len(clean) == 0 {
		return 0, ErrNoData
	}
	if bins < 2 {
		bins = 2
	}
	lo, hi := minMax(clean)
	if hi == lo {
		return lo, nil
	}
	hist := histogram(clean, lo, hi, bins)
	n := float64(len(clean))
	var sumAll float64
	for i, h := range hist {
		sumAll += float64(i) * h
	}
	var wB, sumB float64
	bestT, bestVar := 1, -1.0
	for t := 1; t < bins; t++ {
		wB += hist[t-1]
		if wB == 0 {
			continue
		}
		wF := n - wB
		if wF == 0 {
			break
		}
		sumB += float64(t-1) * hist[t-1]
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar, bestT = between, t
		}
	}
	return lo + (hi-lo)*float64(bestT)/float64(bins), nil
}

// Percentile returns the q-quantile (0 <= q <= 1) of the sample by linear
// interpolation. Several detectors use high quantiles as sanity floors for
// their adaptive thresholds.
func Percentile(values []float64, q float64) (float64, error) {
	clean := finite(values)
	if len(clean) == 0 {
		return 0, ErrNoData
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sort.Float64s(clean)
	pos := q * float64(len(clean)-1)
	i := int(pos)
	if i >= len(clean)-1 {
		return clean[len(clean)-1], nil
	}
	frac := pos - float64(i)
	return clean[i]*(1-frac) + clean[i+1]*frac, nil
}

// histogram bins clean values from [lo, hi] into the given number of bins,
// clamping indices so that numerical edge cases cannot escape the range.
func histogram(values []float64, lo, hi float64, bins int) []float64 {
	hist := make([]float64, bins)
	span := hi - lo
	for _, v := range values {
		u := (v - lo) / span
		b := int(u * float64(bins))
		if b < 0 || math.IsNaN(u) {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	return hist
}

// finite returns a copy of values with NaN and ±Inf removed.
func finite(values []float64) []float64 {
	clean := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			clean = append(clean, v)
		}
	}
	return clean
}

func minMax(values []float64) (lo, hi float64) {
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
