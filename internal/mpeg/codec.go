// Package mpeg implements a simulated MPEG-I-style video codec: 8×8 block
// DCT, quality-scaled quantisation, zig-zag scan, run-level entropy coding
// with Exp-Golomb codes, and a GOP structure of intra (I) frames and
// motion-compensated predicted (P) frames. It exists because the paper's
// shot detector (§3.1, via ref. [10]) operates on MPEG compressed video;
// this package provides both the full decode path and the fast
// compressed-domain DC-image extraction path that detector relies on.
//
// Deliberate simplifications versus real MPEG-1 (documented here so nobody
// mistakes this for a standards implementation): chroma is coded at full
// resolution (4:4:4), entropy coding uses Exp-Golomb instead of Huffman
// tables, and there are no B-frames. None of these affect the behaviour the
// pipeline depends on — lossy block-transform coding with temporal
// prediction and cheaply accessible DC coefficients.
package mpeg

import (
	"encoding/binary"
	"fmt"
	"math"

	"classminer/internal/vidmodel"
)

// Options configures the encoder.
type Options struct {
	GOP     int // I-frame interval; 0 means DefaultGOP
	Quality int // 1..100; 0 means DefaultQuality
}

// Encoder defaults.
const (
	DefaultGOP     = 12
	DefaultQuality = 75
	searchRange    = 3 // motion search window (± pixels)
)

var magic = [4]byte{'C', 'M', 'V', '1'}

// plane is one full-resolution channel with edge padding to block multiples.
type plane struct {
	w, h int // padded dimensions (multiples of 8)
	pix  []float64
}

func newPlane(w, h int) *plane {
	return &plane{w: w, h: h, pix: make([]float64, w*h)}
}

func (p *plane) at(x, y int) float64 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= p.w {
		x = p.w - 1
	}
	if y >= p.h {
		y = p.h - 1
	}
	return p.pix[y*p.w+x]
}

func pad8(v int) int { return (v + blockSize - 1) / blockSize * blockSize }

// rgbToPlanes converts a frame to padded Y, Cb, Cr planes.
func rgbToPlanes(f *vidmodel.Frame) (y, cb, cr *plane) {
	pw, ph := pad8(f.W), pad8(f.H)
	y, cb, cr = newPlane(pw, ph), newPlane(pw, ph), newPlane(pw, ph)
	for yy := 0; yy < ph; yy++ {
		for xx := 0; xx < pw; xx++ {
			r, g, b := f.At(xx, yy) // Frame.At clamps, giving edge padding
			rf, gf, bf := float64(r), float64(g), float64(b)
			i := yy*pw + xx
			y.pix[i] = 0.299*rf + 0.587*gf + 0.114*bf
			cb.pix[i] = 128 - 0.168736*rf - 0.331264*gf + 0.5*bf
			cr.pix[i] = 128 + 0.5*rf - 0.418688*gf - 0.081312*bf
		}
	}
	return y, cb, cr
}

// planesToRGB converts reconstructed planes back to a frame of the original
// (unpadded) geometry.
func planesToRGB(y, cb, cr *plane, w, h int) *vidmodel.Frame {
	f := vidmodel.NewFrame(w, h)
	clamp := func(v float64) byte {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return byte(v + 0.5)
	}
	for yy := 0; yy < h; yy++ {
		for xx := 0; xx < w; xx++ {
			i := yy*y.w + xx
			Y, Cb, Cr := y.pix[i], cb.pix[i]-128, cr.pix[i]-128
			f.Set(xx, yy,
				clamp(Y+1.402*Cr),
				clamp(Y-0.344136*Cb-0.714136*Cr),
				clamp(Y+1.772*Cb))
		}
	}
	return f
}

// Encode compresses the video's frames into a CMV1 bitstream. Audio is not
// part of the video elementary stream (as in MPEG systems, it travels
// separately).
func Encode(v *vidmodel.Video, opts Options) ([]byte, error) {
	if len(v.Frames) == 0 {
		return nil, fmt.Errorf("mpeg: no frames to encode")
	}
	gop := opts.GOP
	if gop <= 0 {
		gop = DefaultGOP
	}
	quality := opts.Quality
	if quality <= 0 {
		quality = DefaultQuality
	}
	if quality > 100 {
		quality = 100
	}
	w0, h0 := v.Frames[0].W, v.Frames[0].H
	for i, f := range v.Frames {
		if f.W != w0 || f.H != h0 {
			return nil, fmt.Errorf("mpeg: frame %d geometry %dx%d differs from %dx%d", i, f.W, f.H, w0, h0)
		}
	}

	header := make([]byte, 0, 20)
	header = append(header, magic[:]...)
	header = binary.BigEndian.AppendUint16(header, uint16(w0))
	header = binary.BigEndian.AppendUint16(header, uint16(h0))
	header = binary.BigEndian.AppendUint32(header, uint32(len(v.Frames)))
	header = append(header, byte(gop), byte(quality))
	header = binary.BigEndian.AppendUint32(header, uint32(math.Round(v.FPS*1000)))

	q := quantMatrix(quality)
	w := &bitWriter{}
	var prev [3]*plane
	for fi, frame := range v.Frames {
		y, cb, cr := rgbToPlanes(frame)
		cur := [3]*plane{y, cb, cr}
		intra := fi%gop == 0
		if intra {
			w.writeBit(0)
			for c := 0; c < 3; c++ {
				prev[c] = encodeIntraPlane(w, cur[c], &q)
			}
			continue
		}
		w.writeBit(1)
		for c := 0; c < 3; c++ {
			prev[c] = encodeInterPlane(w, cur[c], prev[c], &q, c == 0)
		}
	}
	return append(header, w.flush()...), nil
}

// encodeIntraPlane writes every block of p as intra and returns the
// reconstructed plane (the encoder must track what the decoder will see).
func encodeIntraPlane(w *bitWriter, p *plane, q *[64]int) *plane {
	recon := newPlane(p.w, p.h)
	prevDC := int64(0)
	for by := 0; by < p.h; by += blockSize {
		for bx := 0; bx < p.w; bx += blockSize {
			levels := transformQuantise(p, bx, by, q, 128)
			w.writeSE(levels[0] - prevDC)
			writeAC(w, &levels)
			prevDC = levels[0]
			reconstructBlock(recon, bx, by, &levels, q, 128, nil)
		}
	}
	return recon
}

// encodeInterPlane writes P-frame blocks: motion-compensated residuals or
// intra fallbacks. Motion vectors are estimated on the luma plane and the
// same grid is used for chroma (4:4:4 makes the geometry identical), as
// flagged per block.
func encodeInterPlane(w *bitWriter, p, ref *plane, q *[64]int, luma bool) *plane {
	_ = luma
	recon := newPlane(p.w, p.h)
	for by := 0; by < p.h; by += blockSize {
		for bx := 0; bx < p.w; bx += blockSize {
			dx, dy, sad := motionSearch(p, ref, bx, by)
			intraCost := blockActivity(p, bx, by)
			if sad <= intraCost {
				w.writeBit(0) // inter
				w.writeSE(int64(dx))
				w.writeSE(int64(dy))
				levels := transformQuantiseResidual(p, ref, bx, by, dx, dy, q)
				w.writeSE(levels[0])
				writeAC(w, &levels)
				mc := motionBlock(ref, bx, by, dx, dy)
				reconstructBlock(recon, bx, by, &levels, q, 0, &mc)
			} else {
				w.writeBit(1) // intra fallback
				levels := transformQuantise(p, bx, by, q, 128)
				w.writeSE(levels[0])
				writeAC(w, &levels)
				reconstructBlock(recon, bx, by, &levels, q, 128, nil)
			}
		}
	}
	return recon
}

// transformQuantise DCTs the block at (bx, by) (bias subtracted first) and
// quantises it, returning levels in raster order.
func transformQuantise(p *plane, bx, by int, q *[64]int, bias float64) [64]int64 {
	var block [64]float64
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			block[y*blockSize+x] = p.at(bx+x, by+y) - bias
		}
	}
	return quantise(forwardDCT(&block), q)
}

func transformQuantiseResidual(p, ref *plane, bx, by, dx, dy int, q *[64]int) [64]int64 {
	var block [64]float64
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			block[y*blockSize+x] = p.at(bx+x, by+y) - ref.at(bx+x+dx, by+y+dy)
		}
	}
	return quantise(forwardDCT(&block), q)
}

func quantise(coef [64]float64, q *[64]int) [64]int64 {
	var out [64]int64
	for i := range coef {
		out[i] = int64(math.Round(coef[i] / float64(q[i])))
	}
	return out
}

// writeAC encodes the 63 AC coefficients as (zero-run, level) pairs in
// zig-zag order, terminated by an end-of-block run sentinel of 63.
func writeAC(w *bitWriter, levels *[64]int64) {
	run := uint64(0)
	for i := 1; i < 64; i++ {
		l := levels[zigzag[i]]
		if l == 0 {
			run++
			continue
		}
		w.writeUE(run)
		w.writeSE(l)
		run = 0
	}
	w.writeUE(63) // EOB: no run of 63 can precede a coefficient
}

// readAC is the inverse of writeAC; the DC slot must already be filled.
func readAC(r *bitReader, levels *[64]int64) error {
	pos := 1
	for {
		run, err := r.readUE()
		if err != nil {
			return err
		}
		if run == 63 {
			return nil
		}
		pos += int(run)
		if pos >= 64 {
			return ErrCorrupt
		}
		l, err := r.readSE()
		if err != nil {
			return err
		}
		levels[zigzag[pos]] = l
		pos++
		if pos > 64 {
			return ErrCorrupt
		}
	}
}

// reconstructBlock dequantises, inverse-transforms and writes the block
// into dst, adding the motion-compensated prediction when mc is non-nil.
func reconstructBlock(dst *plane, bx, by int, levels *[64]int64, q *[64]int, bias float64, mc *[64]float64) {
	var coef [64]float64
	for i := range coef {
		coef[i] = float64(levels[i]) * float64(q[i])
	}
	spatial := inverseDCT(&coef)
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			v := spatial[y*blockSize+x] + bias
			if mc != nil {
				v += mc[y*blockSize+x]
			}
			xx, yy := bx+x, by+y
			if xx < dst.w && yy < dst.h {
				dst.pix[yy*dst.w+xx] = v
			}
		}
	}
}

// motionSearch full-searches ±searchRange for the displacement minimising
// the sum of absolute differences of the block against the reference.
func motionSearch(p, ref *plane, bx, by int) (dx, dy int, best float64) {
	best = math.Inf(1)
	for cy := -searchRange; cy <= searchRange; cy++ {
		for cx := -searchRange; cx <= searchRange; cx++ {
			var sad float64
			for y := 0; y < blockSize && sad < best; y++ {
				for x := 0; x < blockSize; x++ {
					sad += math.Abs(p.at(bx+x, by+y) - ref.at(bx+x+cx, by+y+cy))
				}
			}
			if sad < best {
				best, dx, dy = sad, cx, cy
			}
		}
	}
	return dx, dy, best
}

// blockActivity estimates the intra coding cost of a block as its total
// absolute deviation from the block mean.
func blockActivity(p *plane, bx, by int) float64 {
	var mean float64
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			mean += p.at(bx+x, by+y)
		}
	}
	mean /= blockSize * blockSize
	var act float64
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			act += math.Abs(p.at(bx+x, by+y) - mean)
		}
	}
	return act
}

func motionBlock(ref *plane, bx, by, dx, dy int) [64]float64 {
	var out [64]float64
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			out[y*blockSize+x] = ref.at(bx+x+dx, by+y+dy)
		}
	}
	return out
}
