package mpeg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"classminer/internal/vidmodel"
)

// testVideo builds a short clip with two visually distinct halves and slow
// in-shot motion, which exercises I-frames, inter blocks and intra
// fallbacks at the cut.
func testVideo(w, h, frames int, seed int64) *vidmodel.Video {
	rng := rand.New(rand.NewSource(seed))
	v := &vidmodel.Video{Name: "test", FPS: 10}
	for t := 0; t < frames; t++ {
		f := vidmodel.NewFrame(w, h)
		base := byte(40)
		if t >= frames/2 {
			base = 200 // hard cut halfway
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				// A drifting diagonal pattern plus mild noise.
				val := int(base) + 40*((x+y+t)%8)/8 + rng.Intn(6)
				if val > 255 {
					val = 255
				}
				f.Set(x, y, byte(val), byte(val/2+30), byte(255-val))
			}
		}
		v.Frames = append(v.Frames, f)
	}
	return v
}

func psnr(a, b *vidmodel.Frame) float64 {
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := testVideo(48, 36, 20, 1)
	data, err := Encode(v, Options{GOP: 8, Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Frames) != len(v.Frames) {
		t.Fatalf("decoded %d frames, want %d", len(dec.Frames), len(v.Frames))
	}
	if dec.FPS != v.FPS {
		t.Fatalf("fps = %v, want %v", dec.FPS, v.FPS)
	}
	for i := range v.Frames {
		if p := psnr(v.Frames[i], dec.Frames[i]); p < 28 {
			t.Fatalf("frame %d PSNR = %.1f dB, want >= 28", i, p)
		}
	}
}

func TestEncodeQualityOrdersPSNRAndSize(t *testing.T) {
	v := testVideo(48, 36, 10, 2)
	lo, err := Encode(v, Options{Quality: 20})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Encode(v, Options{Quality: 95})
	if err != nil {
		t.Fatal(err)
	}
	if len(hi) <= len(lo) {
		t.Fatalf("high quality stream (%d B) should exceed low quality (%d B)", len(hi), len(lo))
	}
	dLo, _ := Decode(lo)
	dHi, _ := Decode(hi)
	var pLo, pHi float64
	for i := range v.Frames {
		pLo += psnr(v.Frames[i], dLo.Frames[i])
		pHi += psnr(v.Frames[i], dHi.Frames[i])
	}
	if pHi <= pLo {
		t.Fatalf("high quality PSNR (%f) should exceed low quality (%f)", pHi, pLo)
	}
}

func TestEncodeCompresses(t *testing.T) {
	v := testVideo(48, 36, 24, 3)
	data, err := Encode(v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := len(v.Frames) * 48 * 36 * 3
	if len(data) >= raw {
		t.Fatalf("stream %d B not smaller than raw %d B", len(data), raw)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(&vidmodel.Video{}, Options{}); err == nil {
		t.Fatal("want error on empty video")
	}
	v := &vidmodel.Video{Frames: []*vidmodel.Frame{vidmodel.NewFrame(8, 8), vidmodel.NewFrame(16, 8)}}
	if _, err := Encode(v, Options{}); err == nil {
		t.Fatal("want error on mixed geometry")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("want error on empty stream")
	}
	if _, err := Decode([]byte("XXXXXXXXXXXXXXXXXXXX")); err == nil {
		t.Fatal("want error on bad magic")
	}
	v := testVideo(16, 16, 4, 4)
	data, err := Encode(v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Fatal("want error on truncated stream")
	}
}

func TestNonMultipleOf8Geometry(t *testing.T) {
	v := testVideo(50, 37, 6, 5) // forces edge padding
	data, err := Encode(v, Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Frames[0].W != 50 || dec.Frames[0].H != 37 {
		t.Fatalf("geometry = %dx%d, want 50x37", dec.Frames[0].W, dec.Frames[0].H)
	}
}

func TestExtractDCApproximatesBlockMeans(t *testing.T) {
	v := testVideo(48, 40, 16, 6)
	data, err := Encode(v, Options{GOP: 6, Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	dcs, err := ExtractDC(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != len(v.Frames) {
		t.Fatalf("DC frames = %d, want %d", len(dcs), len(v.Frames))
	}
	// Compare each DC sample against the true block mean luma.
	var worst float64
	for fi, dc := range dcs {
		if dc.W != 6 || dc.H != 5 {
			t.Fatalf("DC grid = %dx%d, want 6x5", dc.W, dc.H)
		}
		for by := 0; by < dc.H; by++ {
			for bx := 0; bx < dc.W; bx++ {
				var mean float64
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						mean += v.Frames[fi].Gray(bx*8+x, by*8+y)
					}
				}
				mean /= 64
				diff := math.Abs(mean - dc.Y[by*dc.W+bx])
				if diff > worst {
					worst = diff
				}
			}
		}
	}
	// P-frame DC is an approximation; allow a modest tolerance.
	if worst > 24 {
		t.Fatalf("worst DC error = %.1f gray levels, want <= 24", worst)
	}
}

func TestExtractDCSeesTheCut(t *testing.T) {
	v := testVideo(48, 36, 20, 7)
	data, err := Encode(v, Options{GOP: 5})
	if err != nil {
		t.Fatal(err)
	}
	dcs, err := ExtractDC(data)
	if err != nil {
		t.Fatal(err)
	}
	// Mean DC difference across the scripted cut must dominate within-shot
	// differences.
	diff := func(a, b DCFrame) float64 {
		var s float64
		for i := range a.Y {
			s += math.Abs(a.Y[i] - b.Y[i])
		}
		return s / float64(len(a.Y))
	}
	cut := len(v.Frames) / 2
	atCut := diff(dcs[cut-1], dcs[cut])
	var within float64
	var n int
	for i := 1; i < len(dcs); i++ {
		if i != cut {
			within += diff(dcs[i-1], dcs[i])
			n++
		}
	}
	within /= float64(n)
	if atCut < 4*within {
		t.Fatalf("cut DC diff %.2f not dominant over within-shot %.2f", atCut, within)
	}
}

func TestExpGolombRoundTrip(t *testing.T) {
	f := func(vals [16]int32) bool {
		w := &bitWriter{}
		for _, v := range vals {
			w.writeSE(int64(v))
			w.writeUE(uint64(uint32(v)))
		}
		r := &bitReader{buf: w.flush()}
		for _, v := range vals {
			got, err := r.readSE()
			if err != nil || got != int64(v) {
				return false
			}
			gotU, err := r.readUE()
			if err != nil || gotU != uint64(uint32(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitWriterReaderBits(t *testing.T) {
	w := &bitWriter{}
	w.writeBits(0b1011, 4)
	w.writeBits(0b1, 1)
	w.writeBits(0xABCD, 16)
	r := &bitReader{buf: w.flush()}
	if v, _ := r.readBits(4); v != 0b1011 {
		t.Fatalf("readBits(4) = %b", v)
	}
	if v, _ := r.readBit(); v != 1 {
		t.Fatal("readBit")
	}
	if v, _ := r.readBits(16); v != 0xABCD {
		t.Fatalf("readBits(16) = %x", v)
	}
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var block [64]float64
	for i := range block {
		block[i] = rng.Float64()*255 - 128
	}
	coef := forwardDCT(&block)
	back := inverseDCT(&coef)
	for i := range block {
		if math.Abs(block[i]-back[i]) > 1e-9 {
			t.Fatalf("DCT round trip error %v at %d", block[i]-back[i], i)
		}
	}
}

func TestQuantMatrixClamps(t *testing.T) {
	for _, q := range []int{-5, 0, 1, 50, 100, 500} {
		m := quantMatrix(q)
		for _, v := range m {
			if v < 1 || v > 255 {
				t.Fatalf("quant value %d out of range at quality %d", v, q)
			}
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, z := range zigzag {
		if z < 0 || z >= 64 || seen[z] {
			t.Fatalf("zigzag entry %d invalid", z)
		}
		seen[z] = true
	}
}

func BenchmarkEncode(b *testing.B) {
	v := testVideo(48, 36, 24, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(v, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractDC(b *testing.B) {
	v := testVideo(48, 36, 24, 10)
	data, err := Encode(v, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractDC(data); err != nil {
			b.Fatal(err)
		}
	}
}
