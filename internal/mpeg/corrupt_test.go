package mpeg

import (
	"math/rand"
	"testing"
)

// Failure injection: no corruption of a valid stream may ever panic the
// decoder or the DC extractor — they must return errors (or, for payload
// bit flips, possibly garbage pixels, but never crash).
func TestDecodeSurvivesTruncation(t *testing.T) {
	v := testVideo(32, 24, 12, 41)
	data, err := Encode(v, Options{GOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decoder panicked at truncation %d: %v", cut, r)
				}
			}()
			_, _ = Decode(data[:cut])
		}()
	}
}

func TestExtractDCSurvivesTruncation(t *testing.T) {
	v := testVideo(32, 24, 12, 42)
	data, err := Encode(v, Options{GOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 5 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DC extractor panicked at truncation %d: %v", cut, r)
				}
			}()
			_, _ = ExtractDC(data[:cut])
		}()
	}
	// Truncating inside the payload must yield an error, not silence.
	if _, err := ExtractDC(data[:headerSize+3]); err == nil {
		t.Fatal("want error for truncated payload")
	}
}

func TestDecodeSurvivesBitFlips(t *testing.T) {
	v := testVideo(32, 24, 8, 43)
	data, err := Encode(v, Options{GOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), data...)
		// Flip up to three payload bits (the header is validated separately).
		for k := 0; k < 1+rng.Intn(3); k++ {
			pos := headerSize + rng.Intn(len(corrupt)-headerSize)
			corrupt[pos] ^= 1 << uint(rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decoder panicked on bit flip trial %d: %v", trial, r)
				}
			}()
			_, _ = Decode(corrupt)
			_, _ = ExtractDC(corrupt)
		}()
	}
}

func TestDecodeHeaderValidation(t *testing.T) {
	v := testVideo(16, 16, 4, 45)
	data, err := Encode(v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Zero width must be rejected.
	bad := append([]byte(nil), data...)
	bad[4], bad[5] = 0, 0
	if _, err := Decode(bad); err == nil {
		t.Fatal("want geometry error")
	}
	// Zero GOP must be rejected.
	bad = append([]byte(nil), data...)
	bad[12] = 0
	if _, err := Decode(bad); err == nil {
		t.Fatal("want GOP error")
	}
}
