package mpeg

import (
	"encoding/binary"
	"fmt"

	"classminer/internal/vidmodel"
)

type header struct {
	w, h    int
	frames  int
	gop     int
	quality int
	fps     float64
}

const headerSize = 4 + 2 + 2 + 4 + 1 + 1 + 4

func parseHeader(data []byte) (header, error) {
	var hd header
	if len(data) < headerSize {
		return hd, ErrCorrupt
	}
	for i := range magic {
		if data[i] != magic[i] {
			return hd, fmt.Errorf("mpeg: bad magic %q: %w", data[:4], ErrCorrupt)
		}
	}
	hd.w = int(binary.BigEndian.Uint16(data[4:]))
	hd.h = int(binary.BigEndian.Uint16(data[6:]))
	hd.frames = int(binary.BigEndian.Uint32(data[8:]))
	hd.gop = int(data[12])
	hd.quality = int(data[13])
	hd.fps = float64(binary.BigEndian.Uint32(data[14:])) / 1000
	if hd.w <= 0 || hd.h <= 0 || hd.gop <= 0 || hd.frames < 0 {
		return hd, ErrCorrupt
	}
	return hd, nil
}

// Decode reconstructs a video from a CMV1 bitstream. The returned video has
// no audio track (audio travels outside the video elementary stream).
func Decode(data []byte) (*vidmodel.Video, error) {
	hd, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	q := quantMatrix(hd.quality)
	r := &bitReader{buf: data[headerSize:]}
	v := &vidmodel.Video{Name: "decoded", FPS: hd.fps}
	var prev [3]*plane
	pw, ph := pad8(hd.w), pad8(hd.h)
	for fi := 0; fi < hd.frames; fi++ {
		ft, err := r.readBit()
		if err != nil {
			return nil, err
		}
		var cur [3]*plane
		for c := 0; c < 3; c++ {
			var p *plane
			var err error
			if ft == 0 {
				p, err = decodeIntraPlane(r, pw, ph, &q)
			} else {
				if prev[c] == nil {
					return nil, fmt.Errorf("mpeg: P-frame %d before any I-frame: %w", fi, ErrCorrupt)
				}
				p, err = decodeInterPlane(r, prev[c], &q)
			}
			if err != nil {
				return nil, err
			}
			cur[c] = p
		}
		prev = cur
		v.Frames = append(v.Frames, planesToRGB(cur[0], cur[1], cur[2], hd.w, hd.h))
	}
	return v, nil
}

func decodeIntraPlane(r *bitReader, w, h int, q *[64]int) (*plane, error) {
	p := newPlane(w, h)
	prevDC := int64(0)
	for by := 0; by < h; by += blockSize {
		for bx := 0; bx < w; bx += blockSize {
			var levels [64]int64
			diff, err := r.readSE()
			if err != nil {
				return nil, err
			}
			levels[0] = prevDC + diff
			prevDC = levels[0]
			if err := readAC(r, &levels); err != nil {
				return nil, err
			}
			reconstructBlock(p, bx, by, &levels, q, 128, nil)
		}
	}
	return p, nil
}

func decodeInterPlane(r *bitReader, ref *plane, q *[64]int) (*plane, error) {
	p := newPlane(ref.w, ref.h)
	for by := 0; by < ref.h; by += blockSize {
		for bx := 0; bx < ref.w; bx += blockSize {
			mode, err := r.readBit()
			if err != nil {
				return nil, err
			}
			var levels [64]int64
			if mode == 0 { // inter
				dx64, err := r.readSE()
				if err != nil {
					return nil, err
				}
				dy64, err := r.readSE()
				if err != nil {
					return nil, err
				}
				dc, err := r.readSE()
				if err != nil {
					return nil, err
				}
				levels[0] = dc
				if err := readAC(r, &levels); err != nil {
					return nil, err
				}
				mc := motionBlock(ref, bx, by, int(dx64), int(dy64))
				reconstructBlock(p, bx, by, &levels, q, 0, &mc)
			} else { // intra fallback
				dc, err := r.readSE()
				if err != nil {
					return nil, err
				}
				levels[0] = dc
				if err := readAC(r, &levels); err != nil {
					return nil, err
				}
				reconstructBlock(p, bx, by, &levels, q, 128, nil)
			}
		}
	}
	return p, nil
}

// DCFrame is the block-resolution luma "DC image" of one frame: the cheap
// compressed-domain representation shot detectors use (each sample is the
// mean luma of an 8×8 block).
type DCFrame struct {
	W, H int // block-grid dimensions
	Y    []float64
}

// ExtractDC walks the bitstream and produces the DC image of every frame
// WITHOUT performing any inverse DCT or full-resolution reconstruction.
// For I-frames the DC coefficients are exact block means; for P-frames the
// standard compressed-domain approximation is used (predicted block mean =
// reference mean displaced by the motion vector, plus the residual DC).
// This is the fast path the paper's compressed-domain shot detection needs.
func ExtractDC(data []byte) ([]DCFrame, error) {
	hd, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	q := quantMatrix(hd.quality)
	r := &bitReader{buf: data[headerSize:]}
	pw, ph := pad8(hd.w), pad8(hd.h)
	bw, bh := pw/blockSize, ph/blockSize
	out := make([]DCFrame, 0, hd.frames)
	var prevY []float64
	for fi := 0; fi < hd.frames; fi++ {
		ft, err := r.readBit()
		if err != nil {
			return nil, err
		}
		curY := make([]float64, bw*bh)
		if ft == 0 {
			if err := dcIntraPlane(r, curY, bw*bh, &q); err != nil {
				return nil, err
			}
			// Skip chroma planes (DC image is luma only).
			for c := 0; c < 2; c++ {
				if err := dcIntraPlane(r, nil, bw*bh, &q); err != nil {
					return nil, err
				}
			}
		} else {
			if prevY == nil {
				return nil, fmt.Errorf("mpeg: P-frame %d before any I-frame: %w", fi, ErrCorrupt)
			}
			if err := dcInterPlane(r, curY, prevY, bw, bh, &q, true); err != nil {
				return nil, err
			}
			for c := 0; c < 2; c++ {
				if err := dcInterPlane(r, nil, nil, bw, bh, &q, false); err != nil {
					return nil, err
				}
			}
		}
		prevY = curY
		out = append(out, DCFrame{W: bw, H: bh, Y: curY})
	}
	return out, nil
}

// dcIntraPlane reads one intra plane of n blocks, keeping only DC terms
// when dst is non-nil. The DC coefficient of an 8×8 DCT equals 8× the block
// mean (plus the 128 coding bias).
func dcIntraPlane(r *bitReader, dst []float64, n int, q *[64]int) error {
	prevDC := int64(0)
	for i := 0; i < n; i++ {
		diff, err := r.readSE()
		if err != nil {
			return err
		}
		prevDC += diff
		if dst != nil {
			dst[i] = 128 + float64(prevDC)*float64(q[0])/8
		}
		var levels [64]int64
		if err := readAC(r, &levels); err != nil {
			return err
		}
	}
	return nil
}

func dcInterPlane(r *bitReader, dst, ref []float64, bw, bh int, q *[64]int, keep bool) error {
	n := bw * bh
	for i := 0; i < n; i++ {
		mode, err := r.readBit()
		if err != nil {
			return err
		}
		if mode == 0 { // inter
			dx64, err := r.readSE()
			if err != nil {
				return err
			}
			dy64, err := r.readSE()
			if err != nil {
				return err
			}
			dc, err := r.readSE()
			if err != nil {
				return err
			}
			if keep {
				bx, by := i%bw, i/bw
				// Round the pixel-level MV to the nearest block.
				rx := clampInt(bx+int(roundDiv(int(dx64), blockSize)), 0, bw-1)
				ry := clampInt(by+int(roundDiv(int(dy64), blockSize)), 0, bh-1)
				dst[i] = ref[ry*bw+rx] + float64(dc)*float64(q[0])/8
			}
		} else { // intra
			dc, err := r.readSE()
			if err != nil {
				return err
			}
			if keep {
				dst[i] = 128 + float64(dc)*float64(q[0])/8
			}
		}
		var levels [64]int64
		if err := readAC(r, &levels); err != nil {
			return err
		}
	}
	return nil
}

func roundDiv(a, b int) int {
	if a >= 0 {
		return (a + b/2) / b
	}
	return -((-a + b/2) / b)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
