package mpeg

import (
	"errors"
	"io"
)

// ErrCorrupt is returned when a bitstream ends mid-symbol or contains an
// impossible code.
var ErrCorrupt = errors.New("mpeg: corrupt bitstream")

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  byte
	nCur uint // bits currently in cur
}

func (w *bitWriter) writeBit(b uint) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// writeBits writes the low n bits of v, MSB first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.writeBit(uint(v >> uint(i)))
	}
}

// writeUE writes v using unsigned Exp-Golomb coding (as in H.26x headers).
func (w *bitWriter) writeUE(v uint64) {
	code := v + 1
	n := uint(0)
	for t := code; t > 1; t >>= 1 {
		n++
	}
	w.writeBits(0, n)
	w.writeBits(code, n+1)
}

// writeSE writes v using signed Exp-Golomb coding.
func (w *bitWriter) writeSE(v int64) {
	var u uint64
	if v > 0 {
		u = uint64(2*v - 1)
	} else {
		u = uint64(-2 * v)
	}
	w.writeUE(u)
}

// flush pads the final partial byte with zeros and returns the stream.
func (w *bitWriter) flush() []byte {
	if w.nCur > 0 {
		w.cur <<= 8 - w.nCur
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	buf []byte
	pos int  // byte position
	bit uint // bits consumed of buf[pos]
}

func (r *bitReader) readBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := uint(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// readUE reads an unsigned Exp-Golomb code.
func (r *bitReader) readUE() (uint64, error) {
	n := uint(0)
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 62 {
			return 0, ErrCorrupt
		}
	}
	rest, err := r.readBits(n)
	if err != nil {
		return 0, err
	}
	return (1<<n | rest) - 1, nil
}

// readSE reads a signed Exp-Golomb code.
func (r *bitReader) readSE() (int64, error) {
	u, err := r.readUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int64(u/2) + 1, nil
	}
	return -int64(u / 2), nil
}
