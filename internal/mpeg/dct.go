package mpeg

import "math"

// blockSize is the transform block edge, as in MPEG-1/JPEG.
const blockSize = 8

// cosTable caches cos((2x+1)uπ/16) for the 8-point DCT.
var cosTable [blockSize][blockSize]float64

func init() {
	for x := 0; x < blockSize; x++ {
		for u := 0; u < blockSize; u++ {
			cosTable[x][u] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func alpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// forwardDCT computes the 8×8 type-II DCT of the spatial block (row-major).
func forwardDCT(block *[blockSize * blockSize]float64) [blockSize * blockSize]float64 {
	var out [blockSize * blockSize]float64
	for v := 0; v < blockSize; v++ {
		for u := 0; u < blockSize; u++ {
			var s float64
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					s += block[y*blockSize+x] * cosTable[x][u] * cosTable[y][v]
				}
			}
			out[v*blockSize+u] = 0.25 * alpha(u) * alpha(v) * s
		}
	}
	return out
}

// inverseDCT computes the 8×8 type-III (inverse) DCT.
func inverseDCT(coef *[blockSize * blockSize]float64) [blockSize * blockSize]float64 {
	var out [blockSize * blockSize]float64
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			var s float64
			for v := 0; v < blockSize; v++ {
				for u := 0; u < blockSize; u++ {
					s += alpha(u) * alpha(v) * coef[v*blockSize+u] * cosTable[x][u] * cosTable[y][v]
				}
			}
			out[y*blockSize+x] = 0.25 * s
		}
	}
	return out
}

// baseQuant is the JPEG/MPEG-style luminance quantisation matrix.
var baseQuant = [blockSize * blockSize]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// quantMatrix scales the base matrix for a quality setting in [1, 100].
func quantMatrix(quality int) [blockSize * blockSize]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - 2*quality
	}
	var q [blockSize * blockSize]int
	for i, b := range baseQuant {
		v := (b*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		q[i] = v
	}
	return q
}

// zigzag is the MPEG coefficient scan order.
var zigzag = [blockSize * blockSize]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}
