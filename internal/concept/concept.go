// Package concept models §2 of the paper: the domain concept hierarchy of
// Fig. 2 that the semantic-sensitive video classifier and the database
// indexing structure are derived from, plus the miniature lexical database
// (the WordNet stand-in) from which such hierarchies can be built.
//
// Every node of the hierarchy names a human-meaningful concept; the
// contextual relationship between a node and its children mirrors the
// hypernym/hyponym relations of the lexicon.
package concept

import (
	"fmt"
	"strings"

	"classminer/internal/vidmodel"
)

// Level identifies the depth bands of Fig. 1 / Fig. 2.
type Level int

const (
	// LevelRoot is the database root node.
	LevelRoot Level = iota
	// LevelCluster holds semantic clusters (health care, medical
	// education, medical report).
	LevelCluster
	// LevelSubcluster holds sub-level clusters (medicine, nursing, ...).
	LevelSubcluster
	// LevelScene holds semantic scene concepts (presentation, dialog,
	// clinical operation).
	LevelScene
)

func (l Level) String() string {
	switch l {
	case LevelRoot:
		return "root"
	case LevelCluster:
		return "cluster"
	case LevelSubcluster:
		return "subcluster"
	case LevelScene:
		return "scene"
	default:
		return fmt.Sprintf("level-%d", int(l))
	}
}

// Node is one concept in the hierarchy.
type Node struct {
	Name     string
	Level    Level
	Parent   *Node
	Children []*Node
}

// Path returns the node names from the root down to this node (excluding
// the root itself).
func (n *Node) Path() []string {
	var rev []string
	for cur := n; cur != nil && cur.Level != LevelRoot; cur = cur.Parent {
		rev = append(rev, cur.Name)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Hierarchy is a rooted concept tree with name lookup.
type Hierarchy struct {
	Root   *Node
	byName map[string]*Node
}

// Find returns the node with the given (case-insensitive) name, or nil.
func (h *Hierarchy) Find(name string) *Node {
	return h.byName[strings.ToLower(name)]
}

// Nodes returns all nodes at a level, in insertion order.
func (h *Hierarchy) Nodes(level Level) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Level == level {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(h.Root)
	return out
}

// LCA returns the lowest common ancestor of two named concepts, or nil if
// either name is unknown.
func (h *Hierarchy) LCA(a, b string) *Node {
	na, nb := h.Find(a), h.Find(b)
	if na == nil || nb == nil {
		return nil
	}
	seen := map[*Node]bool{}
	for cur := na; cur != nil; cur = cur.Parent {
		seen[cur] = true
	}
	for cur := nb; cur != nil; cur = cur.Parent {
		if seen[cur] {
			return cur
		}
	}
	return nil
}

// builder utilities ---------------------------------------------------------

// NewHierarchy starts a hierarchy with a root node.
func NewHierarchy(rootName string) *Hierarchy {
	root := &Node{Name: rootName, Level: LevelRoot}
	return &Hierarchy{Root: root, byName: map[string]*Node{strings.ToLower(rootName): root}}
}

// Add attaches a new concept under the named parent. Level is inferred as
// parent level + 1. It returns an error for unknown parents or duplicates.
func (h *Hierarchy) Add(parent, name string) (*Node, error) {
	p := h.Find(parent)
	if p == nil {
		return nil, fmt.Errorf("concept: unknown parent %q", parent)
	}
	key := strings.ToLower(name)
	if _, dup := h.byName[key]; dup {
		return nil, fmt.Errorf("concept: duplicate concept %q", name)
	}
	n := &Node{Name: name, Level: p.Level + 1, Parent: p}
	p.Children = append(p.Children, n)
	h.byName[key] = n
	return n, nil
}

// MustAdd is Add for static construction; it panics on error.
func (h *Hierarchy) MustAdd(parent, name string) *Node {
	n, err := h.Add(parent, name)
	if err != nil {
		panic(err)
	}
	return n
}

// Medical returns the concept hierarchy of Fig. 2: the database root over
// semantic clusters (health care, medical education, medical report),
// subclusters (medicine, nursing, dentistry) and the three semantic scene
// concepts (presentation, dialog, clinical operation).
func Medical() *Hierarchy {
	h := NewHierarchy("database")
	for _, c := range []string{"health care", "medical education", "medical report"} {
		h.MustAdd("database", c)
	}
	for _, sc := range []string{"medicine", "nursing", "dentistry"} {
		h.MustAdd("medical education", sc)
	}
	// Scene concepts exist under every subcluster; names are qualified to
	// stay unique in the tree.
	for _, sc := range []string{"medicine", "nursing", "dentistry"} {
		for _, s := range []string{"presentation", "dialog", "clinical operation", "other"} {
			h.MustAdd(sc, sc+"/"+s)
		}
	}
	// The other clusters carry their own scene-level leaves.
	h.MustAdd("health care", "health care/general")
	h.MustAdd("medical report", "medical report/general")
	return h
}

// SceneConcept maps a mined event kind to its scene-level concept name
// under the given subcluster — the "semantic-sensitive classifier" mapping
// of §2 between mined scenes and the hierarchy's leaf concepts.
func SceneConcept(subcluster string, kind vidmodel.EventKind) string {
	var leaf string
	switch kind {
	case vidmodel.EventPresentation:
		leaf = "presentation"
	case vidmodel.EventDialog:
		leaf = "dialog"
	case vidmodel.EventClinicalOperation:
		leaf = "clinical operation"
	default:
		leaf = "other" // §4.3 step 5: the event could not be determined
	}
	return subcluster + "/" + leaf
}
