package concept

import (
	"testing"

	"classminer/internal/vidmodel"
)

func TestMedicalHierarchyShape(t *testing.T) {
	h := Medical()
	if h.Root == nil || h.Root.Name != "database" {
		t.Fatal("root must be the database node")
	}
	if got := len(h.Nodes(LevelCluster)); got != 3 {
		t.Fatalf("clusters = %d, want 3", got)
	}
	if got := len(h.Nodes(LevelSubcluster)); got < 3 {
		t.Fatalf("subclusters = %d, want >= 3", got)
	}
	scenes := h.Nodes(LevelScene)
	if len(scenes) < 9 {
		t.Fatalf("scene concepts = %d, want >= 9", len(scenes))
	}
}

func TestFindCaseInsensitive(t *testing.T) {
	h := Medical()
	if h.Find("Medical Education") == nil {
		t.Fatal("case-insensitive lookup failed")
	}
	if h.Find("no such thing") != nil {
		t.Fatal("unknown lookup must be nil")
	}
}

func TestNodePath(t *testing.T) {
	h := Medical()
	n := h.Find("medicine/presentation")
	if n == nil {
		t.Fatal("scene concept missing")
	}
	p := n.Path()
	want := []string{"medical education", "medicine", "medicine/presentation"}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path[%d] = %q, want %q", i, p[i], want[i])
		}
	}
}

func TestLCA(t *testing.T) {
	h := Medical()
	lca := h.LCA("medicine/presentation", "medicine/dialog")
	if lca == nil || lca.Name != "medicine" {
		t.Fatalf("LCA = %v, want medicine", lca)
	}
	lca = h.LCA("medicine/presentation", "nursing/dialog")
	if lca == nil || lca.Name != "medical education" {
		t.Fatalf("LCA = %v, want medical education", lca)
	}
	if h.LCA("medicine", "nonexistent") != nil {
		t.Fatal("LCA with unknown node must be nil")
	}
}

func TestAddErrors(t *testing.T) {
	h := NewHierarchy("database")
	if _, err := h.Add("missing", "x"); err == nil {
		t.Fatal("want unknown-parent error")
	}
	if _, err := h.Add("database", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Add("database", "a"); err == nil {
		t.Fatal("want duplicate error")
	}
}

func TestSceneConceptMapping(t *testing.T) {
	cases := map[vidmodel.EventKind]string{
		vidmodel.EventPresentation:      "medicine/presentation",
		vidmodel.EventDialog:            "medicine/dialog",
		vidmodel.EventClinicalOperation: "medicine/clinical operation",
		vidmodel.EventUnknown:           "medicine/other",
	}
	h := Medical()
	for kind, want := range cases {
		got := SceneConcept("medicine", kind)
		if got != want {
			t.Fatalf("SceneConcept(%v) = %q, want %q", kind, got, want)
		}
		if h.Find(got) == nil {
			t.Fatalf("concept %q missing from hierarchy", got)
		}
	}
}

func TestLexiconHypernymChain(t *testing.T) {
	l := MedicalLexicon()
	chain, err := l.HypernymChain("laparoscopy")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"laparoscopy", "surgery", "clinical operation", "medicine", "medical education", "database"}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %q, want %q", i, chain[i], want[i])
		}
	}
}

func TestLexiconSynonyms(t *testing.T) {
	l := MedicalLexicon()
	if l.Canonical("Dialogue") != "dialog" {
		t.Fatal("synonym resolution failed")
	}
	if _, err := l.HypernymChain("lecture"); err != nil {
		t.Fatalf("synonym chain failed: %v", err)
	}
}

func TestLexiconUnknown(t *testing.T) {
	l := MedicalLexicon()
	if _, err := l.HypernymChain("astrophysics"); err == nil {
		t.Fatal("want unknown-word error")
	}
}

func TestBuildHierarchyFromLexicon(t *testing.T) {
	l := MedicalLexicon()
	h, err := BuildHierarchy(l, []string{"laparoscopy", "skin examination", "presentation", "dialog"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"surgery", "diagnosis", "clinical operation", "medicine", "laparoscopy"} {
		if h.Find(name) == nil {
			t.Fatalf("derived hierarchy missing %q", name)
		}
	}
	// Laparoscopy must sit under surgery.
	if n := h.Find("laparoscopy"); n.Parent.Name != "surgery" {
		t.Fatalf("laparoscopy parent = %q", n.Parent.Name)
	}
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{LevelRoot, LevelCluster, LevelSubcluster, LevelScene, Level(9)} {
		if l.String() == "" {
			t.Fatal("empty level string")
		}
	}
}
