package concept

import (
	"fmt"
	"strings"
)

// Lexicon is the miniature WordNet stand-in of §2: a directed hypernym
// relation over the medical-domain vocabulary, from which concept
// hierarchies are derived. The paper obtains its hierarchy "provided by
// domain experts or obtained using WordNet"; this embedded lexicon plays
// the latter role offline.
type Lexicon struct {
	hypernym map[string]string
	synonym  map[string]string // surface form -> canonical form
}

// MedicalLexicon returns the built-in domain lexicon covering the Fig. 2
// vocabulary and common surface variants.
func MedicalLexicon() *Lexicon {
	l := &Lexicon{hypernym: map[string]string{}, synonym: map[string]string{}}
	rel := func(word, hyper string) { l.hypernym[word] = hyper }
	syn := func(surface, canon string) { l.synonym[surface] = canon }

	rel("health care", "database")
	rel("medical education", "database")
	rel("medical report", "database")
	rel("medicine", "medical education")
	rel("nursing", "medical education")
	rel("dentistry", "medical education")
	rel("presentation", "medicine")
	rel("dialog", "medicine")
	rel("clinical operation", "medicine")
	rel("surgery", "clinical operation")
	rel("diagnosis", "clinical operation")
	rel("laparoscopy", "surgery")
	rel("face repair", "surgery")
	rel("laser eye surgery", "surgery")
	rel("skin examination", "diagnosis")
	rel("nuclear medicine", "diagnosis")

	syn("dialogue", "dialog")
	syn("talk", "presentation")
	syn("lecture", "presentation")
	syn("operation", "clinical operation")
	syn("derm exam", "skin examination")
	return l
}

// Canonical resolves a surface form to its canonical lexicon entry.
func (l *Lexicon) Canonical(word string) string {
	w := strings.ToLower(strings.TrimSpace(word))
	if c, ok := l.synonym[w]; ok {
		return c
	}
	return w
}

// HypernymChain returns the chain from the word up to (and including) the
// root concept, or an error for unknown words.
func (l *Lexicon) HypernymChain(word string) ([]string, error) {
	w := l.Canonical(word)
	if _, ok := l.hypernym[w]; !ok && w != "database" {
		return nil, fmt.Errorf("concept: unknown word %q", word)
	}
	chain := []string{w}
	for w != "database" {
		next, ok := l.hypernym[w]
		if !ok {
			return nil, fmt.Errorf("concept: broken hypernym chain at %q", w)
		}
		chain = append(chain, next)
		w = next
		if len(chain) > 32 {
			return nil, fmt.Errorf("concept: hypernym cycle involving %q", word)
		}
	}
	return chain, nil
}

// BuildHierarchy derives a concept hierarchy from the lexicon for the given
// leaf vocabulary: each leaf's hypernym chain is merged into a single tree
// rooted at "database". This is how a domain hierarchy like Fig. 2 is
// obtained automatically from lexical knowledge.
func BuildHierarchy(l *Lexicon, leaves []string) (*Hierarchy, error) {
	h := NewHierarchy("database")
	for _, leaf := range leaves {
		chain, err := l.HypernymChain(leaf)
		if err != nil {
			return nil, err
		}
		// chain is leaf..root; insert top-down.
		for i := len(chain) - 2; i >= 0; i-- {
			name, parent := chain[i], chain[i+1]
			if h.Find(name) != nil {
				continue
			}
			if _, err := h.Add(parent, name); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}
