package eval

import (
	"fmt"
	"math/rand"
	"time"

	"classminer/internal/audio"
	"classminer/internal/baseline"
	"classminer/internal/concept"
	"classminer/internal/core"
	"classminer/internal/event"
	"classminer/internal/index"
	"classminer/internal/shotdet"
	"classminer/internal/skim"
	"classminer/internal/structure"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

// CorpusConfig selects the synthetic evaluation corpus. Scale 1 is the
// paper-shaped corpus (≈100 scenes across five videos); smaller scales run
// proportionally faster with the same metric definitions.
type CorpusConfig struct {
	Scale float64
	Seed  int64
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 2003
	}
	return c
}

// forEachVideo generates and visits the corpus one video at a time so that
// only one video's frames and audio are resident at once.
func forEachVideo(cfg CorpusConfig, fn func(v *vidmodel.Video) error) error {
	cfg = cfg.withDefaults()
	scripts := synth.CorpusScripts(cfg.Scale, cfg.Seed)
	for vi, script := range scripts {
		v, err := synth.Generate(synth.DefaultConfig(), script, cfg.Seed+int64(vi)*7919)
		if err != nil {
			return fmt.Errorf("eval: generating %q: %w", script.Name, err)
		}
		if err := fn(v); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Fig. 12 / Fig. 13 — scene detection precision and compression rate for
// Method A (ours), Method B (Rui et al.) and Method C (Lin & Zhang).

// MethodRow is one bar of Figs. 12–13.
type MethodRow struct {
	Method    string
	Right     int
	Total     int // detected scenes
	Shots     int
	Precision float64 // Eq. (20)
	CRF       float64 // Eq. (21)
}

// RunSceneDetection regenerates Figs. 12 and 13 over the corpus.
func RunSceneDetection(cfg CorpusConfig) ([]MethodRow, error) {
	rows := map[string]*MethodRow{
		"A": {Method: "A (ours)"},
		"B": {Method: "B (Rui et al.)"},
		"C": {Method: "C (Lin-Zhang)"},
	}
	err := forEachVideo(cfg, func(v *vidmodel.Video) error {
		shots, _, err := shotdet.Detect(v, shotdet.Config{})
		if err != nil {
			return err
		}
		perMethod := map[string][]*vidmodel.Scene{}

		gres, err := structure.DetectGroups(shots, structure.GroupConfig{})
		if err != nil {
			return err
		}
		sres, err := structure.MergeScenes(gres.Groups, structure.SceneConfig{})
		if err != nil {
			return err
		}
		perMethod["A"] = sres.Scenes

		bres, err := baseline.RuiTOC(shots, baseline.RuiConfig{})
		if err != nil {
			return err
		}
		perMethod["B"] = bres.Scenes

		cres, err := baseline.LinZhang(shots, baseline.LinConfig{})
		if err != nil {
			return err
		}
		perMethod["C"] = cres.Scenes

		for m, scenes := range perMethod {
			right, total, _ := ScenePrecision(scenes, v.Truth)
			rows[m].Right += right
			rows[m].Total += total
			rows[m].Shots += len(shots)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]MethodRow, 0, 3)
	for _, m := range []string{"A", "B", "C"} {
		r := rows[m]
		if r.Total > 0 {
			r.Precision = float64(r.Right) / float64(r.Total)
		}
		r.CRF = CRF(r.Total, r.Shots)
		out = append(out, *r)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 1 — event mining over benchmark scenes.

// RunEventMining regenerates Table 1. Following §6.1, the benchmark scenes
// are the ground-truth semantic units that distinctly belong to one of the
// three categories; the miner then labels them blind and SN/DN/TN/PR/RE
// are tabulated per category.
func RunEventMining(cfg CorpusConfig) ([]EventRow, error) {
	speech, non := synth.TrainingClips(8000, audio.ClipSeconds, 30, 404)
	clf, err := audio.TrainSpeechClassifier(speech, non, 8000, 17)
	if err != nil {
		return nil, err
	}
	names := map[vidmodel.EventKind]string{
		vidmodel.EventPresentation:      "presentation",
		vidmodel.EventDialog:            "dialog",
		vidmodel.EventClinicalOperation: "clinical operation",
	}
	rows := map[vidmodel.EventKind]*EventRow{}
	for kind, name := range names {
		rows[kind] = &EventRow{Event: name}
	}
	err = forEachVideo(cfg, func(v *vidmodel.Video) error {
		shots, _, err := shotdet.Detect(v, shotdet.Config{})
		if err != nil {
			return err
		}
		miner, err := event.NewMiner(clf, event.Config{SampleRate: v.Audio.SampleRate})
		if err != nil {
			return err
		}
		evidence := miner.GatherEvidence(v, shots)
		for _, ts := range v.Truth.Scenes {
			if _, benchmark := rows[ts.Event]; !benchmark {
				continue // establishing material is not a benchmark scene
			}
			members := shotsWithin(shots, ts.StartFrame, ts.EndFrame)
			if len(members) == 0 {
				continue
			}
			gres, err := structure.DetectGroups(members, structure.GroupConfig{})
			if err != nil {
				return err
			}
			scene := &vidmodel.Scene{Groups: gres.Groups}
			got := miner.MineScene(scene, evidence)
			rows[ts.Event].SN++
			if r, detected := rows[got]; detected {
				r.DN++
			}
			if got == ts.Event {
				rows[ts.Event].TN++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []EventRow
	for _, kind := range []vidmodel.EventKind{vidmodel.EventPresentation, vidmodel.EventDialog, vidmodel.EventClinicalOperation} {
		r := rows[kind]
		r.FinishRow()
		out = append(out, *r)
	}
	out = append(out, AverageRow(out))
	return out, nil
}

func shotsWithin(shots []*vidmodel.Shot, start, end int) []*vidmodel.Shot {
	var out []*vidmodel.Shot
	for _, s := range shots {
		mid := (s.Start + s.End) / 2
		if mid >= start && mid < end {
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// §6.2 — cluster-based indexing versus flat scan.

// SearchCostRow compares flat (Eq. 24) against hierarchical (Eq. 25)
// retrieval at one database size.
type SearchCostRow struct {
	N            int // database size (shots)
	FlatFloatOps int
	HierFloatOps int
	FlatNanos    int64
	HierNanos    int64
	FlatRanked   int
	HierRanked   int
	TopAgree     float64 // fraction of queries where hier found flat's top-1 in its top-5
}

// RunIndexCost regenerates the §6.2 analysis: it indexes the corpus's shots
// under their ground-truth concepts and measures retrieval cost at growing
// database sizes.
func RunIndexCost(cfg CorpusConfig, sizes []int, queries int) ([]SearchCostRow, error) {
	entries, err := corpusEntries(cfg)
	if err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = []int{len(entries)}
	}
	if queries <= 0 {
		queries = 20
	}
	rng := rand.New(rand.NewSource(cfg.withDefaults().Seed + 5))
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })

	var out []SearchCostRow
	for _, n := range sizes {
		if n > len(entries) {
			n = len(entries)
		}
		sub := entries[:n]
		ix, err := index.Build(sub, index.Options{Seed: 9})
		if err != nil {
			return nil, err
		}
		row := SearchCostRow{N: n}
		agree := 0
		for q := 0; q < queries; q++ {
			query := sub[rng.Intn(n)].Shot.Feature()
			t0 := time.Now()
			flat, fs := index.FlatSearch(sub, query, 10)
			row.FlatNanos += time.Since(t0).Nanoseconds()
			t0 = time.Now()
			hier, hs := ix.Search(query, 10)
			row.HierNanos += time.Since(t0).Nanoseconds()
			row.FlatFloatOps += fs.FloatOps
			row.HierFloatOps += hs.FloatOps
			row.FlatRanked += fs.Candidates
			row.HierRanked += hs.Candidates
			for i, h := range hier {
				if i >= 5 {
					break
				}
				if h.Entry == flat[0].Entry {
					agree++
					break
				}
			}
		}
		row.TopAgree = float64(agree) / float64(queries)
		out = append(out, row)
	}
	return out, nil
}

// corpusEntries mines the corpus structure-only and files every shot under
// its ground-truth scene concept (the cost experiment isolates indexing
// from event-mining accuracy).
func corpusEntries(cfg CorpusConfig) ([]*index.Entry, error) {
	var entries []*index.Entry
	err := forEachVideo(cfg, func(v *vidmodel.Video) error {
		shots, _, err := shotdet.Detect(v, shotdet.Config{})
		if err != nil {
			return err
		}
		for _, s := range shots {
			kind := vidmodel.EventUnknown
			if ti := v.Truth.SceneAt((s.Start + s.End) / 2); ti >= 0 {
				kind = v.Truth.Scenes[ti].Event
			}
			leaf := concept.SceneConcept("medicine", kind)
			entries = append(entries, &index.Entry{
				VideoName: v.Name,
				Shot:      s,
				Path:      []string{"medical education", "medicine", leaf},
			})
		}
		return nil
	})
	return entries, err
}

// ---------------------------------------------------------------------------
// Fig. 14 / Fig. 15 — scalable skimming quality and frame compression.

// FCRRow is one Fig. 15 point.
type FCRRow struct {
	Level skim.Level
	FCR   float64
}

// RunSkimStudy regenerates Figs. 14 and 15: the full pipeline runs on every
// corpus video, the four skim levels are built, the simulated viewer panel
// scores each level (Fig. 14) and the frame compression ratios are
// averaged (Fig. 15).
func RunSkimStudy(cfg CorpusConfig) ([]SkimScores, []FCRRow, error) {
	analyzer, err := core.NewAnalyzer(core.Options{SkipEvents: true})
	if err != nil {
		return nil, nil, err
	}
	cfgD := cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfgD.Seed + 11))
	sum := map[skim.Level]*SkimScores{}
	fcr := map[skim.Level]float64{}
	videos := 0
	err = forEachVideo(cfg, func(v *vidmodel.Video) error {
		res, err := analyzer.Analyze(v)
		if err != nil {
			return err
		}
		videos++
		for l := skim.Level1; l <= skim.Level4; l++ {
			sc := ScoreSkim(res.Skim, l, v.Truth, rng)
			if sum[l] == nil {
				sum[l] = &SkimScores{Level: l}
			}
			sum[l].Q1 += sc.Q1
			sum[l].Q2 += sc.Q2
			sum[l].Q3 += sc.Q3
			fcr[l] += res.Skim.FCR(l)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var scores []SkimScores
	var fcrs []FCRRow
	for l := skim.Level1; l <= skim.Level4; l++ {
		s := sum[l]
		s.Q1 /= float64(videos)
		s.Q2 /= float64(videos)
		s.Q3 /= float64(videos)
		scores = append(scores, *s)
		fcrs = append(fcrs, FCRRow{Level: l, FCR: fcr[l] / float64(videos)})
	}
	return scores, fcrs, nil
}

// ---------------------------------------------------------------------------
// Fig. 5 — shot detection with locally adaptive thresholds.

// ShotDetectionReport summarises the Fig. 5 run on one corpus video.
type ShotDetectionReport struct {
	Video     string
	Trace     *shotdet.Trace
	TrueCuts  int
	Detected  int
	Matched   int // detected cuts within ±1 frame of a true cut
	Recall    float64
	Precision float64
}

// RunShotDetection regenerates Fig. 5 on the named corpus video (empty
// name = the first video).
func RunShotDetection(cfg CorpusConfig, videoName string) (*ShotDetectionReport, error) {
	cfgD := cfg.withDefaults()
	if videoName == "" {
		videoName = synth.CorpusNames()[0]
	}
	script := synth.CorpusScript(videoName, cfgD.Scale, cfgD.Seed)
	if script == nil {
		return nil, fmt.Errorf("eval: unknown corpus video %q", videoName)
	}
	v, err := synth.Generate(synth.DefaultConfig(), script, cfgD.Seed)
	if err != nil {
		return nil, err
	}
	shots, trace, err := shotdet.Detect(v, shotdet.Config{})
	if err != nil {
		return nil, err
	}
	rep := &ShotDetectionReport{Video: videoName, Trace: trace}
	trueCuts := v.Truth.ShotStarts[1:]
	rep.TrueCuts = len(trueCuts)
	var detected []int
	for _, s := range shots[1:] {
		detected = append(detected, s.Start)
	}
	rep.Detected = len(detected)
	for _, d := range detected {
		for _, tc := range trueCuts {
			if d-tc <= 1 && tc-d <= 1 {
				rep.Matched++
				break
			}
		}
	}
	if rep.Detected > 0 {
		rep.Precision = float64(rep.Matched) / float64(rep.Detected)
	}
	if rep.TrueCuts > 0 {
		rep.Recall = float64(rep.Matched) / float64(rep.TrueCuts)
	}
	return rep, nil
}
