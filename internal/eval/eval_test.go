package eval

import (
	"math/rand"
	"testing"

	"classminer/internal/skim"
	"classminer/internal/vidmodel"
)

func TestScenePrecisionJudging(t *testing.T) {
	truth := &vidmodel.GroundTruth{Scenes: []vidmodel.TrueScene{
		{StartFrame: 0, EndFrame: 100},
		{StartFrame: 100, EndFrame: 200},
	}}
	pure := &vidmodel.Scene{Groups: []*vidmodel.Group{{Shots: []*vidmodel.Shot{
		{Start: 0, End: 40}, {Start: 40, End: 90},
	}}}}
	straddling := &vidmodel.Scene{Groups: []*vidmodel.Group{{Shots: []*vidmodel.Shot{
		{Start: 80, End: 100}, {Start: 100, End: 140},
	}}}}
	right, total, p := ScenePrecision([]*vidmodel.Scene{pure, straddling}, truth)
	if right != 1 || total != 2 || p != 0.5 {
		t.Fatalf("precision = %d/%d = %v", right, total, p)
	}
}

func TestScenePrecisionOutsideTruth(t *testing.T) {
	truth := &vidmodel.GroundTruth{Scenes: []vidmodel.TrueScene{{StartFrame: 0, EndFrame: 10}}}
	outside := &vidmodel.Scene{Groups: []*vidmodel.Group{{Shots: []*vidmodel.Shot{{Start: 500, End: 520}}}}}
	if right, _, _ := ScenePrecision([]*vidmodel.Scene{outside}, truth); right != 0 {
		t.Fatal("scene outside any true unit cannot be right")
	}
}

func TestCRF(t *testing.T) {
	if CRF(10, 100) != 0.1 {
		t.Fatal("CRF")
	}
	if CRF(5, 0) != 0 {
		t.Fatal("CRF with zero shots")
	}
}

func TestEventRowMath(t *testing.T) {
	r := EventRow{Event: "x", SN: 15, DN: 16, TN: 13}
	r.FinishRow()
	if r.PR < 0.81 || r.PR > 0.82 {
		t.Fatalf("PR = %v", r.PR)
	}
	if r.RE < 0.86 || r.RE > 0.87 {
		t.Fatalf("RE = %v", r.RE)
	}
	avg := AverageRow([]EventRow{
		{SN: 15, DN: 16, TN: 13},
		{SN: 28, DN: 33, TN: 24},
		{SN: 39, DN: 32, TN: 21},
	})
	if avg.SN != 82 || avg.DN != 81 || avg.TN != 58 {
		t.Fatalf("avg counts = %+v", avg)
	}
	if avg.PR < 0.71 || avg.PR > 0.72 {
		t.Fatalf("avg PR = %v (paper: 0.72)", avg.PR)
	}
	if avg.RE < 0.70 || avg.RE > 0.71 {
		t.Fatalf("avg RE = %v (paper: 0.71)", avg.RE)
	}
}

func TestRunShotDetection(t *testing.T) {
	rep, err := RunShotDetection(CorpusConfig{Scale: 0.2, Seed: 5}, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall < 0.75 {
		t.Fatalf("shot recall = %.2f (matched %d of %d)", rep.Recall, rep.Matched, rep.TrueCuts)
	}
	if rep.Precision < 0.75 {
		t.Fatalf("shot precision = %.2f", rep.Precision)
	}
	if len(rep.Trace.Diffs) == 0 || len(rep.Trace.Thresholds) != len(rep.Trace.Diffs) {
		t.Fatal("trace incomplete")
	}
}

func TestRunShotDetectionUnknownVideo(t *testing.T) {
	if _, err := RunShotDetection(CorpusConfig{Scale: 0.2}, "nope"); err == nil {
		t.Fatal("want error for unknown video")
	}
}

func TestRunSceneDetectionShapes(t *testing.T) {
	rows, err := RunSceneDetection(CorpusConfig{Scale: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byM := map[string]MethodRow{}
	for _, r := range rows {
		byM[r.Method[:1]] = r
		if r.Total == 0 {
			t.Fatalf("method %s detected no scenes", r.Method)
		}
	}
	// The paper's Fig. 12/13 shape: A has the best precision; C compresses
	// hardest (smallest CRF) at the worst precision.
	if byM["A"].Precision < byM["B"].Precision || byM["A"].Precision < byM["C"].Precision {
		t.Fatalf("method A precision %.3f not best (B %.3f, C %.3f)",
			byM["A"].Precision, byM["B"].Precision, byM["C"].Precision)
	}
	if byM["C"].CRF > byM["A"].CRF {
		t.Fatalf("method C CRF %.3f should be below A's %.3f", byM["C"].CRF, byM["A"].CRF)
	}
}

func TestRunEventMiningShapes(t *testing.T) {
	rows, err := RunEventMining(CorpusConfig{Scale: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 3 + average", len(rows))
	}
	avg := rows[3]
	if avg.Event != "average" {
		t.Fatalf("last row = %q", avg.Event)
	}
	if avg.SN == 0 {
		t.Fatal("no benchmark scenes selected")
	}
	if avg.PR < 0.5 || avg.RE < 0.5 {
		t.Fatalf("average PR/RE = %.2f/%.2f, want both >= 0.5 (paper: 0.72/0.71)", avg.PR, avg.RE)
	}
}

func TestRunIndexCostShapes(t *testing.T) {
	rows, err := RunIndexCost(CorpusConfig{Scale: 0.3, Seed: 11}, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.HierFloatOps*2 > r.FlatFloatOps {
		t.Fatalf("hierarchical float ops %d not well below flat %d", r.HierFloatOps, r.FlatFloatOps)
	}
	if r.TopAgree < 0.6 {
		t.Fatalf("top-1 agreement = %.2f", r.TopAgree)
	}
}

func TestRunSkimStudyShapes(t *testing.T) {
	scores, fcrs, err := RunSkimStudy(CorpusConfig{Scale: 0.3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 || len(fcrs) != 4 {
		t.Fatalf("rows = %d/%d", len(scores), len(fcrs))
	}
	// Fig. 15 shape: FCR falls monotonically with level; level 1 = 1.
	if fcrs[0].FCR < 0.99 {
		t.Fatalf("level-1 FCR = %v", fcrs[0].FCR)
	}
	for i := 1; i < 4; i++ {
		if fcrs[i].FCR > fcrs[i-1].FCR+1e-9 {
			t.Fatalf("FCR not monotone: %v", fcrs)
		}
	}
	// Fig. 14 shape: scenario coverage (Q2) falls toward level 4;
	// conciseness (Q3) rises toward level 4.
	if scores[0].Q2 < scores[3].Q2 {
		t.Fatalf("Q2 shape wrong: %v", scores)
	}
	if scores[3].Q3 < scores[0].Q3 {
		t.Fatalf("Q3 shape wrong: %v", scores)
	}
	for _, s := range scores {
		if s.Q1 < 0 || s.Q1 > 5 || s.Q2 < 0 || s.Q2 > 5 || s.Q3 < 0 || s.Q3 > 5 {
			t.Fatalf("scores out of range: %+v", s)
		}
	}
}

func TestScoreSkimDirect(t *testing.T) {
	// Hand-built skim over a 2-scene truth.
	shots := []*vidmodel.Shot{{Index: 0, Start: 0, End: 30}, {Index: 1, Start: 100, End: 130}}
	groups := []*vidmodel.Group{{Shots: shots, RepShots: shots[:1]}}
	scenes := []*vidmodel.Scene{{Groups: groups, RepGroup: groups[0]}}
	sk, err := skim.Build(shots, groups, scenes, nil, 200)
	if err != nil {
		t.Fatal(err)
	}
	truth := &vidmodel.GroundTruth{Scenes: []vidmodel.TrueScene{
		{StartFrame: 0, EndFrame: 100, ClusterID: 1},
		{StartFrame: 100, EndFrame: 200, ClusterID: 2},
	}}
	sc := ScoreSkim(sk, skim.Level1, truth, rand.New(rand.NewSource(1)))
	if sc.Q1 <= 0 || sc.Q2 <= 0 || sc.Q3 <= 0 {
		t.Fatalf("scores = %+v", sc)
	}
}

func TestRunIndexCostSweep(t *testing.T) {
	rows, err := RunIndexCost(CorpusConfig{Scale: 0.3, Seed: 11}, []int{40, 80, 1 << 20}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Flat cost grows linearly with N; hierarchical cost grows much slower.
	if rows[1].FlatFloatOps <= rows[0].FlatFloatOps {
		t.Fatal("flat cost must grow with N")
	}
	flatGrowth := float64(rows[2].FlatFloatOps) / float64(rows[0].FlatFloatOps)
	hierGrowth := float64(rows[2].HierFloatOps) / float64(rows[0].HierFloatOps)
	if hierGrowth >= flatGrowth {
		t.Fatalf("hierarchical growth %.1fx should be below flat growth %.1fx", hierGrowth, flatGrowth)
	}
	// The oversized request clamps to the corpus.
	if rows[2].N > rows[1].N*100 {
		t.Fatalf("size not clamped: %d", rows[2].N)
	}
}
