// Package eval implements the §6 evaluation harness: the scene-detection
// precision and compression-rate metrics of Eqs. (20)–(21), the event
// mining precision/recall table of Eqs. (22)–(23), the retrieval-cost
// comparison of §6.2, the simulated viewer panel standing in for the five
// student viewers of Fig. 14, the frame-compression-ratio series of
// Fig. 15, and runners that regenerate every figure and table end to end on
// the synthetic corpus.
package eval

import (
	"classminer/internal/vidmodel"
)

// ScenePrecision applies the paper's Eq. (20) judging rule: a detected
// scene is rightly detected iff ALL its shots belong to one true semantic
// unit. It returns the counts and the precision P.
func ScenePrecision(scenes []*vidmodel.Scene, truth *vidmodel.GroundTruth) (right, total int, p float64) {
	for _, sc := range scenes {
		total++
		if scenePure(sc, truth) {
			right++
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return right, total, float64(right) / float64(total)
}

// scenePure checks that every shot's midpoint falls in the same true scene.
func scenePure(sc *vidmodel.Scene, truth *vidmodel.GroundTruth) bool {
	want := -2
	for _, s := range sc.Shots() {
		mid := (s.Start + s.End) / 2
		ti := truth.SceneAt(mid)
		if want == -2 {
			want = ti
			continue
		}
		if ti != want {
			return false
		}
	}
	return want >= 0
}

// CRF is the compression-rate factor of Eq. (21): detected scenes over
// total shots.
func CRF(nScenes, nShots int) float64 {
	if nShots == 0 {
		return 0
	}
	return float64(nScenes) / float64(nShots)
}

// EventRow is one row of Table 1. SN/DN/TN follow the paper's notation:
// selected (benchmark), detected and true numbers; PR and RE are
// Eqs. (22)–(23).
type EventRow struct {
	Event string
	SN    int
	DN    int
	TN    int
	PR    float64
	RE    float64
}

// FinishRow fills PR and RE from the counts.
func (r *EventRow) FinishRow() {
	if r.DN > 0 {
		r.PR = float64(r.TN) / float64(r.DN)
	}
	if r.SN > 0 {
		r.RE = float64(r.TN) / float64(r.SN)
	}
}

// AverageRow aggregates rows into the paper's "Average" line (sums of
// counts, ratios recomputed from the sums).
func AverageRow(rows []EventRow) EventRow {
	avg := EventRow{Event: "average"}
	for _, r := range rows {
		avg.SN += r.SN
		avg.DN += r.DN
		avg.TN += r.TN
	}
	avg.FinishRow()
	return avg
}
