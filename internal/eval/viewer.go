package eval

import (
	"math"
	"math/rand"

	"classminer/internal/skim"
	"classminer/internal/vidmodel"
)

// The simulated viewer panel replaces the five student viewers of Fig. 14
// (one of the documented stand-ins for unavailable human/data resources,
// like the synthetic corpus itself). Each simulated viewer scores a skim
// level 0–5 on the paper's three questions from measurable proxies:
//
//	Q1 "addresses the main topic"  — coverage of distinct recurring scene
//	     settings (ground-truth cluster IDs) by the skim's shots, with a
//	     generous floor because even coarse skims name the topic;
//	Q2 "covers the scenarios"      — fraction of true scenes represented
//	     by at least one skim shot;
//	Q3 "is the summary concise"    — one minus the frame compression
//	     ratio: the fewer frames shown, the more concise.
//
// Per-viewer bias noise (±0.3) models inter-rater variation.

// ViewerCount matches the paper's panel size.
const ViewerCount = 5

// SkimScores is one Fig. 14 row: panel-average scores for one level.
type SkimScores struct {
	Level      skim.Level
	Q1, Q2, Q3 float64
}

// ScoreSkim runs the simulated panel over one skim level.
func ScoreSkim(s *skim.Skim, level skim.Level, truth *vidmodel.GroundTruth, rng *rand.Rand) SkimScores {
	shots := s.Shots(level)

	clusterSeen := map[int]bool{}
	sceneSeen := map[int]bool{}
	for _, shot := range shots {
		mid := (shot.Start + shot.End) / 2
		if ti := truth.SceneAt(mid); ti >= 0 {
			sceneSeen[ti] = true
			clusterSeen[truth.Scenes[ti].ClusterID] = true
		}
	}
	clusters := map[int]bool{}
	for _, ts := range truth.Scenes {
		clusters[ts.ClusterID] = true
	}
	topicCoverage := ratio(len(clusterSeen), len(clusters))
	sceneCoverage := ratio(len(sceneSeen), len(truth.Scenes))
	fcr := s.FCR(level)

	// Base scores on the 0–5 scale.
	q1 := 5 * (0.45 + 0.55*math.Sqrt(topicCoverage))
	q2 := 5 * (0.15 + 0.85*sceneCoverage)
	q3 := 5 * (0.25 + 0.75*(1-fcr))

	out := SkimScores{Level: level}
	for v := 0; v < ViewerCount; v++ {
		bias := func() float64 { return (rng.Float64()*2 - 1) * 0.3 }
		out.Q1 += clampScore(q1 + bias())
		out.Q2 += clampScore(q2 + bias())
		out.Q3 += clampScore(q3 + bias())
	}
	out.Q1 /= ViewerCount
	out.Q2 /= ViewerCount
	out.Q3 /= ViewerCount
	return out
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func clampScore(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 5 {
		return 5
	}
	return s
}
