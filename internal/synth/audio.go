package synth

import (
	"math"
	"math/rand"
)

// Voice holds the source-filter parameters of one synthetic speaker. Voices
// differ in glottal pitch and formant placement, which is exactly what the
// MFCC/BIC speaker-change detector of §4.2 keys on.
type Voice struct {
	F0        float64    // fundamental frequency (Hz)
	Formants  [3]float64 // formant centre frequencies (Hz)
	Bandwidth float64    // formant bandwidth (Hz)
	Gain      float64
}

// VoiceForSpeaker returns the deterministic voice of a speaker ID (≥ 1).
// Adjacent IDs are spaced far enough apart in pitch and formant space to be
// separable, close enough to be occasionally confusable — mirroring real
// recordings.
func VoiceForSpeaker(id int) Voice {
	k := float64(id)
	return Voice{
		F0:        85 + 34*math.Mod(k*1.7, 5),
		Formants:  [3]float64{280 + 70*math.Mod(k*1.3, 4), 1100 + 210*math.Mod(k*2.1, 4), 2300 + 240*math.Mod(k*0.9, 4)},
		Bandwidth: 140,
		Gain:      0.32,
	}
}

// synthSpeech writes n samples of voiced speech for the given voice into
// dst, starting at global sample offset (for phase continuity). The signal
// is a harmonic series shaped by the voice's formant envelope, modulated by
// a syllable-rate amplitude contour with pauses, over a small noise floor.
func synthSpeech(dst []float64, offset int, v Voice, sampleRate int, rng *rand.Rand) {
	if sampleRate <= 0 {
		return
	}
	nyquist := float64(sampleRate) / 2
	nHarm := int(nyquist*0.9/v.F0) - 1
	if nHarm < 1 {
		nHarm = 1
	}
	if nHarm > 40 {
		nHarm = 40
	}
	weights := make([]float64, nHarm+1)
	for h := 1; h <= nHarm; h++ {
		f := float64(h) * v.F0
		var w float64
		for _, fm := range v.Formants {
			d := (f - fm) / v.Bandwidth
			w += math.Exp(-0.5 * d * d)
		}
		weights[h] = (w + 0.02) / float64(h) // spectral tilt
	}
	syllableHz := 3.4
	jitter := rng.Float64() * 2 * math.Pi
	for i := range dst {
		t := float64(offset+i) / float64(sampleRate)
		// Syllable envelope with a pause band.
		env := math.Abs(math.Sin(2*math.Pi*syllableHz*t + jitter))
		env = math.Pow(env, 0.7)
		if math.Sin(2*math.Pi*0.5*t+jitter) < -0.82 {
			env *= 0.05 // inter-phrase pause
		}
		var s float64
		for h := 1; h <= nHarm; h++ {
			s += weights[h] * math.Sin(2*math.Pi*float64(h)*v.F0*t)
		}
		dst[i] = v.Gain*env*s*0.25 + (rng.Float64()*2-1)*0.004
	}
}

// synthAmbient writes n samples of non-speech room tone: low-passed noise
// with occasional metallic transients (instrument clinks in an operating
// room). It is what the speech/non-speech GMM must reject.
func synthAmbient(dst []float64, sampleRate int, rng *rand.Rand) {
	var lp float64
	clinkLeft := 0
	var clinkPhase float64
	for i := range dst {
		white := rng.Float64()*2 - 1
		lp = 0.96*lp + 0.04*white
		s := lp * 0.35
		if clinkLeft == 0 && rng.Float64() < 0.0004 {
			clinkLeft = sampleRate / 30
			clinkPhase = 0
		}
		if clinkLeft > 0 {
			s += 0.2 * math.Sin(clinkPhase) * float64(clinkLeft) / float64(sampleRate/30)
			clinkPhase += 2 * math.Pi * 2600 / float64(sampleRate)
			clinkLeft--
		}
		dst[i] = s
	}
}

// synthSilence writes near-silence (tiny noise floor).
func synthSilence(dst []float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] = (rng.Float64()*2 - 1) * 0.002
	}
}

// synthMusic writes simple sustained triad tones — the "intro music" case
// for the speech/non-speech classifier's training set.
func synthMusic(dst []float64, offset, sampleRate int, rng *rand.Rand) {
	freqs := [3]float64{220, 277.18, 329.63}
	for i := range dst {
		t := float64(offset+i) / float64(sampleRate)
		var s float64
		for _, f := range freqs {
			s += math.Sin(2 * math.Pi * f * t)
		}
		dst[i] = s*0.12 + (rng.Float64()*2-1)*0.002
	}
}
