// Package synth is the data substrate of the reproduction: a deterministic
// generator of synthetic medical education videos with frame-accurate
// ground truth. The original paper evaluates on ~6 hours of proprietary
// MPEG-I medical videos; those are unavailable, so this package renders the
// closest synthetic equivalent — scripted presentations, doctor–patient
// dialogs, clinical operations and connective material, with per-speaker
// synthetic voices — while exposing the annotations evaluation needs.
//
// The mining pipeline never sees the ground truth; it consumes pixels and
// audio samples only.
package synth

import (
	"fmt"
	"math/rand"

	"classminer/internal/vidmodel"
)

// Config controls the rendered geometry and realism knobs.
type Config struct {
	W, H       int     // frame geometry
	FPS        float64 // frames per second
	SampleRate int     // audio samples per second
	Noise      float64 // per-channel pixel noise amplitude
	Dissolve   int     // frames of gradual transition between scenes (0 = hard cuts)
}

// DefaultConfig returns the corpus-scale defaults: 48×36 @ 10 fps with
// 8 kHz audio and mild sensor noise.
func DefaultConfig() Config {
	return Config{W: 48, H: 36, FPS: 10, SampleRate: 8000, Noise: 3}
}

// Generate renders a script into a Video with full ground truth. The same
// (config, script, seed) triple always produces the identical video.
func Generate(cfg Config, script *Script, seed int64) (*vidmodel.Video, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("synth: invalid geometry %dx%d", cfg.W, cfg.H)
	}
	if cfg.FPS <= 0 {
		return nil, fmt.Errorf("synth: invalid fps %v", cfg.FPS)
	}
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("synth: invalid sample rate %d", cfg.SampleRate)
	}
	if len(script.Scenes) == 0 {
		return nil, fmt.Errorf("synth: script %q has no scenes", script.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	video := &vidmodel.Video{
		Name:  script.Name,
		FPS:   cfg.FPS,
		Audio: &vidmodel.AudioTrack{SampleRate: cfg.SampleRate},
		Truth: &vidmodel.GroundTruth{},
	}
	spf := int(float64(cfg.SampleRate) / cfg.FPS)

	for _, scene := range script.Scenes {
		sceneStart := len(video.Frames)
		for _, group := range scene.Groups {
			for _, shot := range group.Shots {
				if shot.Frames <= 0 {
					return nil, fmt.Errorf("synth: scene in %q scripts a %d-frame shot", script.Name, shot.Frames)
				}
				shotStart := len(video.Frames)
				video.Truth.ShotStarts = append(video.Truth.ShotStarts, shotStart)
				for t := 0; t < shot.Frames; t++ {
					video.Frames = append(video.Frames, renderFrame(shot.Cam, cfg.W, cfg.H, t, cfg.Noise, rng))
				}
				// Audio for the shot's span, phase-continuous in global time.
				n := shot.Frames * spf
				buf := make([]float64, n)
				offset := shotStart * spf
				switch {
				case shot.Speaker > 0:
					synthSpeech(buf, offset, VoiceForSpeaker(shot.Speaker), cfg.SampleRate, rng)
				case shot.Audio == AudioSilence:
					synthSilence(buf, rng)
				case shot.Audio == AudioMusic:
					synthMusic(buf, offset, cfg.SampleRate, rng)
				default:
					synthAmbient(buf, cfg.SampleRate, rng)
				}
				video.Audio.Samples = append(video.Audio.Samples, buf...)
				video.Truth.SpeakerTurn = append(video.Truth.SpeakerTurn, vidmodel.SpeakerSegment{
					StartFrame: shotStart,
					EndFrame:   shotStart + shot.Frames,
					SpeakerID:  max(shot.Speaker, 0),
				})
			}
		}
		video.Truth.Scenes = append(video.Truth.Scenes, vidmodel.TrueScene{
			StartFrame: sceneStart,
			EndFrame:   len(video.Frames),
			Event:      scene.Event,
			ClusterID:  scene.ClusterID,
		})
		if cfg.Dissolve > 0 && rng.Float64() < 0.3 && len(video.Frames) > cfg.Dissolve {
			applyDissolve(video, cfg.Dissolve)
		}
	}
	return video, nil
}

// applyDissolve softens the most recent scene boundary by blending the
// trailing frames of the previous scene into the first frame of the new
// one. The ground-truth boundary stays at the scene start.
func applyDissolve(v *vidmodel.Video, frames int) {
	if len(v.Truth.Scenes) < 1 {
		return
	}
	boundary := v.Truth.Scenes[len(v.Truth.Scenes)-1].EndFrame
	if boundary >= len(v.Frames) || boundary < frames {
		return
	}
	target := v.Frames[boundary]
	for i := 1; i <= frames; i++ {
		idx := boundary - i
		t := 1 - float64(i)/float64(frames+1)
		v.Frames[idx] = blend(v.Frames[idx], target, t)
	}
}

// TrainingClips generates labelled audio clips for fitting the
// speech/non-speech GMM classifier of §4.2: clean speech from several
// voices versus ambient noise, silence and music. Each clip is seconds
// long at the given sample rate.
func TrainingClips(sampleRate int, seconds float64, perClass int, seed int64) (speech, nonSpeech [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	n := int(seconds * float64(sampleRate))
	for i := 0; i < perClass; i++ {
		clip := make([]float64, n)
		synthSpeech(clip, rng.Intn(100000), VoiceForSpeaker(1+i%6), sampleRate, rng)
		speech = append(speech, clip)
	}
	for i := 0; i < perClass; i++ {
		clip := make([]float64, n)
		switch i % 3 {
		case 0:
			synthAmbient(clip, sampleRate, rng)
		case 1:
			synthSilence(clip, rng)
		default:
			synthMusic(clip, rng.Intn(100000), sampleRate, rng)
		}
		nonSpeech = append(nonSpeech, clip)
	}
	return speech, nonSpeech
}
