package synth

import (
	"math"
	"math/rand"

	"classminer/internal/vidmodel"
)

// ContentKind enumerates what a synthetic camera is pointed at. Each kind
// exercises a different detector from §4.1 of the paper.
type ContentKind int

const (
	// ContentEstablishing is a neutral interior/exterior view (no event cue).
	ContentEstablishing ContentKind = iota
	// ContentSlide is a man-made presentation slide: light ground, title,
	// text bars; almost no motion or colour variety.
	ContentSlide
	// ContentClipart is a man-made diagram: white ground with a few
	// saturated shapes.
	ContentClipart
	// ContentBlack is a black (leader/separator) frame run.
	ContentBlack
	// ContentFace is a head-and-shoulders speaker view.
	ContentFace
	// ContentSurgical is an operating-field view: drape, exposed skin,
	// blood-red region, instruments.
	ContentSurgical
	// ContentSkinExam is a dermatology-style close-up dominated by skin.
	ContentSkinExam
	// ContentOrgan is an organ/endoscopic close-up: reddish tissue field.
	ContentOrgan
)

func (k ContentKind) String() string {
	switch k {
	case ContentSlide:
		return "slide"
	case ContentClipart:
		return "clipart"
	case ContentBlack:
		return "black"
	case ContentFace:
		return "face"
	case ContentSurgical:
		return "surgical"
	case ContentSkinExam:
		return "skin-exam"
	case ContentOrgan:
		return "organ"
	default:
		return "establishing"
	}
}

// Camera describes one synthetic camera setup: what it films and with which
// visual identity. Two shots rendered from the same Camera look like
// recurrences of one physical camera; different Variant values change the
// composition while keeping the palette.
type Camera struct {
	Kind     ContentKind
	Palette  Palette
	Variant  int     // composition seed within the setting
	FaceFrac float64 // face area fraction for ContentFace (close-up ≥ 0.10)
	SkinFrac float64 // exposed-skin fraction for surgical/skin-exam content
	Blood    bool    // whether a blood-red region is present
	Pan      float64 // horizontal pan speed in pixels/frame
}

// Palette is the visual identity of a scene setting.
type Palette struct {
	BGTop, BGBottom RGB // background gradient
	Accent          RGB // clothes / furniture / instruments
	Skin            RGB // skin tone used by faces and fields
	Hair            RGB
}

// renderFrame draws frame t (0-based within the shot) of the camera's view.
// noise is the sensor-noise amplitude; rng drives all stochastic detail.
func renderFrame(cam Camera, w, h, t int, noise float64, rng *rand.Rand) *vidmodel.Frame {
	f := vidmodel.NewFrame(w, h)
	switch cam.Kind {
	case ContentSlide:
		renderSlide(f, cam, false)
	case ContentClipart:
		renderClipart(f, cam)
	case ContentBlack:
		fillRect(f, 0, 0, w, h, RGB{4, 4, 4})
	case ContentFace:
		renderFaceView(f, cam, t)
	case ContentSurgical:
		renderSurgical(f, cam, t)
	case ContentSkinExam:
		renderSkinExam(f, cam, t)
	case ContentOrgan:
		renderOrgan(f, cam, t)
	default:
		renderEstablishing(f, cam, t)
	}
	addNoise(f, noise, rng)
	return f
}

func renderSlide(f *vidmodel.Frame, cam Camera, sketch bool) {
	bg := RGB{235, 233, 224}
	ink := RGB{40, 40, 60}
	if sketch {
		bg = RGB{250, 250, 250}
		ink = RGB{70, 70, 70}
	}
	fillRect(f, 0, 0, f.W, f.H, bg)
	// Title band tinted by the setting accent.
	fillRect(f, 2, 2, f.W-2, 6, lerp(cam.Palette.Accent, bg, 0.35))
	textBars(f, 9, 4+cam.Variant%3, cam.Variant, ink)
	// An embedded figure whose colour and position follow the slide
	// variant, so consecutive slides differ by more than bar widths (and
	// the subtle slide-change cuts remain detectable).
	figures := []RGB{{180, 90, 70}, {80, 120, 180}, {110, 160, 90}, {170, 150, 70}, {140, 90, 150}}
	fig := figures[cam.Variant%len(figures)]
	fx := f.W/2 + (cam.Variant%3)*f.W/8
	fy := f.H * 2 / 3
	fillRect(f, fx, fy, fx+f.W/4, fy+f.H/5, fig)
}

func renderClipart(f *vidmodel.Frame, cam Camera) {
	fillRect(f, 0, 0, f.W, f.H, RGB{250, 250, 250})
	// A few saturated shapes arranged by the variant.
	shapes := []RGB{{220, 60, 50}, {50, 120, 210}, {240, 190, 40}, {60, 170, 90}}
	for i := 0; i < 3; i++ {
		c := shapes[(cam.Variant+i)%len(shapes)]
		cx := float64(f.W) * (0.25 + 0.25*float64((cam.Variant+i)%3))
		cy := float64(f.H) * (0.3 + 0.2*float64(i%2))
		fillEllipse(f, cx, cy, float64(f.W)/10, float64(f.H)/8, c)
	}
	fillRect(f, 3, f.H-6, f.W*2/3, f.H-4, RGB{80, 80, 80})
}

func renderFaceView(f *vidmodel.Frame, cam Camera, t int) {
	vGradient(f, cam.Palette.BGTop, cam.Palette.BGBottom)
	// Background furniture whose layout follows the variant, so reverse
	// angles of a dialog are visually distinct even with shared palettes.
	prop := lerp(cam.Palette.Accent, cam.Palette.BGBottom, 0.4)
	px := (cam.Variant % 4) * f.W / 4
	fillRect(f, px, f.H/4, px+f.W/5, f.H, prop)
	bob := math.Sin(float64(t)*0.6+float64(cam.Variant)) * float64(f.H) * 0.01
	clothes := jitterColorless(cam.Palette.Accent, cam.Variant)
	drawFaceAt(f, cam.Palette.Skin, cam.Palette.Hair, clothes, cam.FaceFrac, bob,
		0.38+0.08*float64(cam.Variant%4))
}

func renderSurgical(f *vidmodel.Frame, cam Camera, t int) {
	// Surgical drape background; shade follows the camera variant so that
	// re-framings of the field (new takes) are visually distinguishable.
	shade := float64(cam.Variant%5) * 0.09
	vGradient(f, lerp(cam.Palette.BGTop, RGB{20, 40, 40}, shade),
		lerp(cam.Palette.BGBottom, RGB{15, 30, 30}, shade))
	pan := float64(t) * cam.Pan
	// Exposed skin field sized by SkinFrac, framed per variant.
	w, h := float64(f.W), float64(f.H)
	rx := math.Sqrt(cam.SkinFrac*w*h/math.Pi) * 1.2
	ry := rx * 0.75
	cx := w*(0.35+0.075*float64(cam.Variant%5)) + pan
	cy := h * (0.45 + 0.05*float64(cam.Variant%3))
	fillEllipse(f, cx, cy, rx, ry, cam.Palette.Skin)
	if cam.Blood {
		blood := RGB{150, 18, 22}
		fillEllipse(f, cx-pan*0.2, cy, rx*0.45, ry*0.4, blood)
		fillEllipse(f, cx-pan*0.2+rx*0.3, cy-ry*0.2, rx*0.2, ry*0.2, RGB{170, 25, 25})
	}
	// Instrument: a light steel line entering from the variant's corner.
	steel := RGB{190, 195, 200}
	x0 := (cam.Variant % 2) * (f.W - 1)
	for i := 0; i < f.W/2; i++ {
		x := x0 + i*sign(f.W/2-x0)
		y := f.H/6 + i/2 + (cam.Variant%4)*2
		f.Set(x, y, steel.R, steel.G, steel.B)
		f.Set(x, y+1, steel.R, steel.G, steel.B)
	}
}

func renderSkinExam(f *vidmodel.Frame, cam Camera, t int) {
	// Frame dominated by skin with a few darker lesions; slow pan.
	fillRect(f, 0, 0, f.W, f.H, cam.Palette.Skin)
	pan := int(float64(t) * cam.Pan)
	lesion := RGB{105, 70, 55}
	for i := 0; i < 3; i++ {
		cx := float64((cam.Variant*13 + i*17 + pan) % f.W)
		cy := float64((cam.Variant*7 + i*11) % f.H)
		fillEllipse(f, cx, cy, 1.8, 1.5, lesion)
	}
	// Border of clothing/drape so the frame is not 100% skin.
	fillRect(f, 0, f.H-3, f.W, f.H, cam.Palette.Accent)
}

func renderOrgan(f *vidmodel.Frame, cam Camera, t int) {
	shade := float64(cam.Variant%4) * 0.12
	vGradient(f, lerp(RGB{120, 30, 30}, RGB{70, 20, 35}, shade),
		lerp(RGB{90, 20, 25}, RGB{50, 15, 30}, shade))
	pan := float64(t) * cam.Pan
	cx := float64(f.W)*(0.4+0.06*float64(cam.Variant%4)) + pan
	fillEllipse(f, cx, float64(f.H)*(0.45+0.04*float64(cam.Variant%3)),
		float64(f.W)*(0.22+0.04*float64(cam.Variant%3)), float64(f.H)*0.28, RGB{160, 45, 40})
	if cam.Blood {
		fillEllipse(f, cx-float64(f.W)*0.08, float64(f.H)*0.55,
			float64(f.W)*0.12, float64(f.H)*0.1, RGB{150, 18, 22})
	}
	// Endoscopic tool tip.
	steel := RGB{200, 205, 210}
	fillRect(f, f.W-4-(cam.Variant%3)*3, 0, f.W-1-(cam.Variant%3)*3, f.H/3, steel)
}

func renderEstablishing(f *vidmodel.Frame, cam Camera, t int) {
	vGradient(f, cam.Palette.BGTop, cam.Palette.BGBottom)
	pan := int(float64(t) * cam.Pan)
	// Architectural blocks whose layout follows the variant.
	for i := 0; i < 4; i++ {
		x0 := ((cam.Variant*11+i*9)*f.W/40 + pan) % f.W
		fillRect(f, x0, f.H/3, x0+f.W/8, f.H, jitterColorless(cam.Palette.Accent, i))
	}
}

// jitterColorless derives deterministic shade variants of a colour.
func jitterColorless(c RGB, i int) RGB {
	d := byte(i * 12)
	add := func(v byte) byte {
		x := int(v) + int(d) - 18
		if x < 0 {
			x = 0
		}
		if x > 255 {
			x = 255
		}
		return byte(x)
	}
	return RGB{add(c.R), add(c.G), add(c.B)}
}

func sign(x int) int {
	if x < 0 {
		return -1
	}
	if x > 0 {
		return 1
	}
	return 0
}
