package synth

import (
	"math"
	"math/rand"
	"testing"

	"classminer/internal/vidmodel"
)

func tinyScript(rng *rand.Rand) *Script {
	return &Script{
		Name: "tiny",
		Scenes: []SceneSpec{
			PresentationScene(rng, 0, 1, 1),
			DialogScene(rng, 1, 2, 1, 2),
			OperationScene(rng, 2, 3, ContentSurgical, 0),
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	s1 := tinyScript(rand.New(rand.NewSource(5)))
	s2 := tinyScript(rand.New(rand.NewSource(5)))
	v1, err := Generate(cfg, s1, 42)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Generate(cfg, s2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Frames) != len(v2.Frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(v1.Frames), len(v2.Frames))
	}
	for i := range v1.Frames {
		for j := range v1.Frames[i].Pix {
			if v1.Frames[i].Pix[j] != v2.Frames[i].Pix[j] {
				t.Fatalf("frame %d differs at byte %d", i, j)
			}
		}
	}
	for i := range v1.Audio.Samples {
		if v1.Audio.Samples[i] != v2.Audio.Samples[i] {
			t.Fatalf("audio differs at sample %d", i)
		}
	}
}

func TestGenerateGroundTruthConsistent(t *testing.T) {
	cfg := DefaultConfig()
	script := tinyScript(rand.New(rand.NewSource(7)))
	v, err := Generate(cfg, script, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Truth.ShotStarts) != script.ShotCount() {
		t.Fatalf("shot starts = %d, want %d", len(v.Truth.ShotStarts), script.ShotCount())
	}
	if len(v.Frames) != script.FrameCount() {
		t.Fatalf("frames = %d, want %d", len(v.Frames), script.FrameCount())
	}
	// Scenes tile the video exactly.
	if v.Truth.Scenes[0].StartFrame != 0 {
		t.Fatal("first scene must start at 0")
	}
	for i := 1; i < len(v.Truth.Scenes); i++ {
		if v.Truth.Scenes[i].StartFrame != v.Truth.Scenes[i-1].EndFrame {
			t.Fatalf("scene %d not contiguous", i)
		}
	}
	if last := v.Truth.Scenes[len(v.Truth.Scenes)-1]; last.EndFrame != len(v.Frames) {
		t.Fatalf("last scene ends at %d, want %d", last.EndFrame, len(v.Frames))
	}
	// Shot starts strictly increase from 0.
	if v.Truth.ShotStarts[0] != 0 {
		t.Fatal("first shot must start at 0")
	}
	for i := 1; i < len(v.Truth.ShotStarts); i++ {
		if v.Truth.ShotStarts[i] <= v.Truth.ShotStarts[i-1] {
			t.Fatalf("shot starts not increasing at %d", i)
		}
	}
	// Audio length matches frames.
	spf := int(float64(cfg.SampleRate) / cfg.FPS)
	if want := len(v.Frames) * spf; len(v.Audio.Samples) != want {
		t.Fatalf("audio samples = %d, want %d", len(v.Audio.Samples), want)
	}
}

func TestGenerateValidation(t *testing.T) {
	script := tinyScript(rand.New(rand.NewSource(1)))
	if _, err := Generate(Config{W: 0, H: 10, FPS: 10, SampleRate: 8000}, script, 1); err == nil {
		t.Fatal("want geometry error")
	}
	if _, err := Generate(Config{W: 10, H: 10, FPS: 0, SampleRate: 8000}, script, 1); err == nil {
		t.Fatal("want fps error")
	}
	if _, err := Generate(Config{W: 10, H: 10, FPS: 10, SampleRate: 0}, script, 1); err == nil {
		t.Fatal("want sample-rate error")
	}
	if _, err := Generate(DefaultConfig(), &Script{Name: "empty"}, 1); err == nil {
		t.Fatal("want empty-script error")
	}
	bad := &Script{Name: "bad", Scenes: []SceneSpec{{Groups: []GroupSpec{{Shots: []ShotSpec{{Frames: 0}}}}}}}
	if _, err := Generate(DefaultConfig(), bad, 1); err == nil {
		t.Fatal("want zero-frame-shot error")
	}
}

func TestSceneBuildersEventLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if s := PresentationScene(rng, 0, 1, 1); s.Event != vidmodel.EventPresentation {
		t.Fatal("presentation label")
	}
	if s := DialogScene(rng, 0, 1, 1, 2); s.Event != vidmodel.EventDialog {
		t.Fatal("dialog label")
	}
	if s := OperationScene(rng, 0, 1, ContentSurgical, 0); s.Event != vidmodel.EventClinicalOperation {
		t.Fatal("operation label")
	}
	if s := EstablishingScene(rng, 0, 1); s.Event != vidmodel.EventUnknown {
		t.Fatal("establishing label")
	}
}

func TestDialogScriptsAlternatingSpeakers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := DialogScene(rng, 0, 1, 3, 5)
	g := s.Groups[0]
	if len(g.Shots) < 5 {
		t.Fatalf("dialog group has %d shots, want >= 5", len(g.Shots))
	}
	for i, sh := range g.Shots {
		want := 3
		if i%2 == 1 {
			want = 5
		}
		if sh.Speaker != want {
			t.Fatalf("shot %d speaker = %d, want %d", i, sh.Speaker, want)
		}
	}
}

func TestPresentationSingleSpeakerWithSlidesAndFace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := PresentationScene(rng, 0, 1, 4)
	slides, faces := 0, 0
	for _, g := range s.Groups {
		for _, sh := range g.Shots {
			if sh.Speaker != 4 {
				t.Fatalf("presentation must keep one speaker, got %d", sh.Speaker)
			}
			switch sh.Cam.Kind {
			case ContentSlide:
				slides++
			case ContentFace:
				faces++
				if sh.Cam.FaceFrac < 0.10 {
					t.Fatalf("presenter face fraction %v below close-up threshold", sh.Cam.FaceFrac)
				}
			}
		}
	}
	if slides == 0 || faces == 0 {
		t.Fatalf("presentation needs slides (%d) and faces (%d)", slides, faces)
	}
}

func TestVoicesDiffer(t *testing.T) {
	seen := map[float64]bool{}
	for id := 1; id <= 5; id++ {
		v := VoiceForSpeaker(id)
		key := v.F0*1e6 + v.Formants[0]
		if seen[key] {
			t.Fatalf("speaker %d voice collides", id)
		}
		seen[key] = true
	}
}

func TestSpeechHasEnergyAmbientIsDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 8000
	speech := make([]float64, n)
	synthSpeech(speech, 0, VoiceForSpeaker(1), 8000, rng)
	ambient := make([]float64, n)
	synthAmbient(ambient, 8000, rng)
	sil := make([]float64, n)
	synthSilence(sil, rng)
	e := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += v * v
		}
		return s / float64(len(x))
	}
	if e(speech) < 1e-4 {
		t.Fatalf("speech energy %v too low", e(speech))
	}
	if e(sil) > 1e-4 {
		t.Fatalf("silence energy %v too high", e(sil))
	}
	for _, v := range speech {
		if math.Abs(v) > 1.5 {
			t.Fatalf("speech sample %v out of range", v)
		}
	}
	if e(ambient) == 0 {
		t.Fatal("ambient must be non-silent")
	}
}

func TestTrainingClips(t *testing.T) {
	speech, non := TrainingClips(8000, 1.0, 6, 9)
	if len(speech) != 6 || len(non) != 6 {
		t.Fatalf("clip counts = %d/%d", len(speech), len(non))
	}
	for _, c := range speech {
		if len(c) != 8000 {
			t.Fatalf("clip len = %d", len(c))
		}
	}
}

func TestCorpusScripts(t *testing.T) {
	scripts := CorpusScripts(0.3, 11)
	if len(scripts) != 5 {
		t.Fatalf("corpus has %d videos, want 5", len(scripts))
	}
	names := CorpusNames()
	for i, s := range scripts {
		if s.Name != names[i] {
			t.Fatalf("video %d name = %q, want %q", i, s.Name, names[i])
		}
		if len(s.Scenes) == 0 {
			t.Fatalf("video %q has no scenes", s.Name)
		}
	}
}

func TestCorpusScriptByNameMatchesBatch(t *testing.T) {
	batch := CorpusScripts(0.3, 11)
	single := CorpusScript("laparoscopy", 0.3, 11)
	if single == nil {
		t.Fatal("script not found")
	}
	var want *Script
	for _, s := range batch {
		if s.Name == "laparoscopy" {
			want = s
		}
	}
	if len(single.Scenes) != len(want.Scenes) {
		t.Fatalf("scene counts differ: %d vs %d", len(single.Scenes), len(want.Scenes))
	}
	if CorpusScript("no-such-video", 1, 1) != nil {
		t.Fatal("unknown name must return nil")
	}
}

func TestCorpusScaleGrowth(t *testing.T) {
	small := CorpusScripts(0.2, 3)
	large := CorpusScripts(1.0, 3)
	for i := range small {
		if len(large[i].Scenes) <= len(small[i].Scenes) {
			t.Fatalf("scale must grow video %d: %d vs %d", i, len(small[i].Scenes), len(large[i].Scenes))
		}
	}
}

func TestDissolveSoftensBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dissolve = 3
	// Deterministically provoke at least one dissolve by generating with a
	// few seeds and checking that output still satisfies the invariants.
	script := tinyScript(rand.New(rand.NewSource(8)))
	v, err := Generate(cfg, script, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Frames) != script.FrameCount() {
		t.Fatal("dissolve must not change frame count")
	}
}

func TestContentKindString(t *testing.T) {
	kinds := []ContentKind{ContentEstablishing, ContentSlide, ContentClipart, ContentBlack,
		ContentFace, ContentSurgical, ContentSkinExam, ContentOrgan}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("ContentKind %d string %q invalid or duplicate", k, s)
		}
		seen[s] = true
	}
}

func TestRenderedContentDistinguishable(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pal := paletteFamilies[0]
	slide := renderFrame(Camera{Kind: ContentSlide, Palette: pal}, 48, 36, 0, 0, rng)
	black := renderFrame(Camera{Kind: ContentBlack, Palette: pal}, 48, 36, 0, 0, rng)
	face := renderFrame(Camera{Kind: ContentFace, Palette: pal, FaceFrac: 0.15}, 48, 36, 0, 0, rng)
	// Black frame is dark, slide is bright.
	var slideLuma, blackLuma float64
	for y := 0; y < 36; y++ {
		for x := 0; x < 48; x++ {
			slideLuma += slide.Gray(x, y)
			blackLuma += black.Gray(x, y)
		}
	}
	if blackLuma >= slideLuma {
		t.Fatal("black frame must be darker than a slide")
	}
	// Face frame contains skin-tone pixels.
	skin := 0
	for y := 0; y < 36; y++ {
		for x := 0; x < 48; x++ {
			r, g, b := face.At(x, y)
			if r > 150 && g > 100 && b > 80 && r > g && g > b {
				skin++
			}
		}
	}
	if skin < 48*36/20 {
		t.Fatalf("face frame has too few skin pixels: %d", skin)
	}
}
