package synth

import (
	"math/rand"

	"classminer/internal/vidmodel"
)

// AudioKind selects the non-speech soundtrack of a shot (used when the shot
// has no speaker).
type AudioKind int

const (
	// AudioAmbient is room tone with occasional instrument transients.
	AudioAmbient AudioKind = iota
	// AudioSilence is a near-silent track.
	AudioSilence
	// AudioMusic is sustained intro-style tones.
	AudioMusic
)

// ShotSpec scripts a single camera take.
type ShotSpec struct {
	Cam     Camera
	Frames  int
	Speaker int       // > 0: that speaker talks through the shot
	Audio   AudioKind // soundtrack when Speaker == 0
}

// GroupSpec scripts one video group (a run of related takes).
type GroupSpec struct {
	Shots []ShotSpec
}

// SceneSpec scripts one true semantic unit.
type SceneSpec struct {
	Event     vidmodel.EventKind
	ClusterID int // scenes sharing an ID are recurrences of one setting
	Groups    []GroupSpec
}

// Script is a full video scenario: an ordered list of scenes.
type Script struct {
	Name   string
	Scenes []SceneSpec
}

// ShotCount returns the total number of scripted shots.
func (s *Script) ShotCount() int {
	n := 0
	for _, sc := range s.Scenes {
		for _, g := range sc.Groups {
			n += len(g.Shots)
		}
	}
	return n
}

// FrameCount returns the total number of scripted frames (before dissolves).
func (s *Script) FrameCount() int {
	n := 0
	for _, sc := range s.Scenes {
		for _, g := range sc.Groups {
			for _, sh := range g.Shots {
				n += sh.Frames
			}
		}
	}
	return n
}

// paletteFamilies is the pool scene settings draw from. Keeping the pool
// small on purpose makes distinct scenes visually confusable, which is what
// drives scene-detection precision below 1.0 (as in the paper's Fig. 12).
var paletteFamilies = []Palette{
	{BGTop: RGB{70, 90, 120}, BGBottom: RGB{45, 60, 85}, Accent: RGB{60, 70, 110}, Skin: RGB{208, 162, 130}, Hair: RGB{50, 40, 35}},
	{BGTop: RGB{95, 110, 100}, BGBottom: RGB{70, 85, 75}, Accent: RGB{90, 110, 95}, Skin: RGB{196, 150, 120}, Hair: RGB{35, 30, 28}},
	{BGTop: RGB{120, 100, 85}, BGBottom: RGB{95, 78, 65}, Accent: RGB{95, 110, 135}, Skin: RGB{220, 175, 140}, Hair: RGB{90, 70, 50}},
	{BGTop: RGB{60, 110, 115}, BGBottom: RGB{40, 85, 95}, Accent: RGB{55, 120, 130}, Skin: RGB{205, 158, 128}, Hair: RGB{25, 25, 30}},
	{BGTop: RGB{110, 75, 95}, BGBottom: RGB{85, 55, 75}, Accent: RGB{125, 85, 105}, Skin: RGB{214, 168, 135}, Hair: RGB{60, 45, 40}},
}

// surgicalPalette derives an operating-room palette from a family.
func surgicalPalette(base Palette) Palette {
	base.BGTop = RGB{60, 120, 110}
	base.BGBottom = RGB{45, 100, 95}
	base.Accent = RGB{180, 185, 190}
	return base
}

// JitterPalette derives a setting-specific variant of a palette family:
// background and furnishing hues drift while skin tones stay realistic.
// Distinct settings of one family remain related but separable — the
// within-scene/across-scene similarity contrast every scene detector needs.
func JitterPalette(base Palette, rng *rand.Rand) Palette {
	shift := func(c RGB, amp float64) RGB {
		j := func(v byte) byte {
			x := float64(v) + (rng.Float64()*2-1)*amp
			if x < 10 {
				x = 10
			}
			if x > 245 {
				x = 245
			}
			return byte(x)
		}
		return RGB{j(c.R), j(c.G), j(c.B)}
	}
	base.BGTop = avoidSkinChroma(shift(base.BGTop, 36))
	base.BGBottom = avoidSkinChroma(shift(base.BGBottom, 36))
	base.Accent = avoidSkinChroma(shift(base.Accent, 44))
	base.Skin = shift(base.Skin, 7)
	base.Hair = shift(base.Hair, 18)
	return base
}

// avoidSkinChroma nudges a colour off the skin-tone chromaticity manifold
// so that walls and clothing can never be mistaken for skin: real rooms and
// scrubs are not flesh-coloured, and letting jitter wander into that band
// would merge faces with their surroundings.
func avoidSkinChroma(c RGB) RGB {
	sum := float64(c.R) + float64(c.G) + float64(c.B)
	if sum < 30 {
		return c
	}
	nr := float64(c.R) / sum
	ng := float64(c.G) / sum
	if nr > 0.36 && nr < 0.48 && ng > 0.29 && ng < 0.36 {
		if c.B <= 195 {
			c.B += 60
		} else if c.R >= 60 {
			c.R -= 60
		}
	}
	return c
}

// PaletteFamily returns one of the built-in palette families (modulo the
// pool size), for callers scripting scenes directly.
func PaletteFamily(i int) Palette {
	return paletteFamilies[((i%len(paletteFamilies))+len(paletteFamilies))%len(paletteFamilies)]
}

func shotLen(rng *rand.Rand, lo, hi int) int { return lo + rng.Intn(hi-lo+1) }

// PresentationScene scripts a presentation: a temporally related group that
// alternates slides with the presenter's face close-up (single speaker, no
// speaker change), optionally followed by a short all-slides group.
// clusterID groups recurrences; speaker is the presenter's voice ID.
func PresentationScene(rng *rand.Rand, family int, clusterID, speaker int) SceneSpec {
	return PresentationSceneWithPalette(rng, paletteFamilies[family%len(paletteFamilies)], clusterID, speaker)
}

// PresentationSceneWithPalette is PresentationScene with an explicit
// setting palette (used by the corpus builder's per-setting jitter).
func PresentationSceneWithPalette(rng *rand.Rand, pal Palette, clusterID, speaker int) SceneSpec {
	slideCam := func(v int) Camera { return Camera{Kind: ContentSlide, Palette: pal, Variant: v} }
	faceCam := Camera{Kind: ContentFace, Palette: pal, Variant: rng.Intn(4), FaceFrac: 0.11 + rng.Float64()*0.08}
	baseVar := rng.Intn(5)
	var g1 GroupSpec
	n := 2 + rng.Intn(2) // slide/face alternations
	for i := 0; i < n; i++ {
		g1.Shots = append(g1.Shots,
			ShotSpec{Cam: slideCam(baseVar + i), Frames: shotLen(rng, 24, 48), Speaker: speaker},
			ShotSpec{Cam: faceCam, Frames: shotLen(rng, 23, 38), Speaker: speaker},
		)
	}
	g1.Shots = append(g1.Shots, ShotSpec{Cam: slideCam(baseVar + n), Frames: shotLen(rng, 24, 42), Speaker: speaker})
	spec := SceneSpec{Event: vidmodel.EventPresentation, ClusterID: clusterID, Groups: []GroupSpec{g1}}
	if rng.Float64() < 0.5 {
		var g2 GroupSpec
		for i := 0; i < 2+rng.Intn(2); i++ {
			g2.Shots = append(g2.Shots, ShotSpec{Cam: slideCam(baseVar + n + 1 + i), Frames: shotLen(rng, 23, 40), Speaker: speaker})
		}
		spec.Groups = append(spec.Groups, g2)
	}
	return spec
}

// DialogScene scripts a shot/reverse-shot conversation between speakers a
// and b: the alternating cameras form a temporally related group with a
// speaker change at every face-to-face cut.
func DialogScene(rng *rand.Rand, family int, clusterID, a, b int) SceneSpec {
	return DialogSceneWithPalette(rng, paletteFamilies[family%len(paletteFamilies)], clusterID, a, b)
}

// DialogSceneWithPalette is DialogScene with an explicit setting palette.
func DialogSceneWithPalette(rng *rand.Rand, pal Palette, clusterID, a, b int) SceneSpec {
	camA := Camera{Kind: ContentFace, Palette: pal, Variant: 0, FaceFrac: 0.12 + rng.Float64()*0.07}
	// Reverse angle: same room family, visibly different wall shade,
	// furniture layout and clothing.
	palB := pal
	palB.BGTop = lerp(pal.BGBottom, RGB{30, 30, 35}, 0.35)
	palB.BGBottom = lerp(pal.BGTop, RGB{15, 15, 20}, 0.35)
	palB.Accent = lerp(pal.Accent, RGB{200, 200, 205}, 0.5)
	camB := Camera{Kind: ContentFace, Palette: palB, Variant: 2, FaceFrac: 0.12 + rng.Float64()*0.07}
	var g GroupSpec
	n := 2 + rng.Intn(2) // A/B rounds; every speaker appears ≥ 2 times
	for i := 0; i < n; i++ {
		g.Shots = append(g.Shots,
			ShotSpec{Cam: camA, Frames: shotLen(rng, 23, 40), Speaker: a},
			ShotSpec{Cam: camB, Frames: shotLen(rng, 23, 40), Speaker: b},
		)
	}
	g.Shots = append(g.Shots, ShotSpec{Cam: camA, Frames: shotLen(rng, 23, 34), Speaker: a})
	spec := SceneSpec{Event: vidmodel.EventDialog, ClusterID: clusterID, Groups: []GroupSpec{g}}
	if rng.Float64() < 0.35 {
		// A wider two-shot coda group.
		wide := Camera{Kind: ContentFace, Palette: pal, Variant: 3, FaceFrac: 0.06}
		spec.Groups = append(spec.Groups, GroupSpec{Shots: []ShotSpec{
			{Cam: wide, Frames: shotLen(rng, 23, 32), Speaker: a},
			{Cam: wide, Frames: shotLen(rng, 23, 32), Speaker: b},
		}})
	}
	return spec
}

// OperationScene scripts a clinical operation: surgical-field, organ or
// skin-exam shots with ambient sound or one narrator (never a speaker
// change). kind selects the dominant content.
func OperationScene(rng *rand.Rand, family int, clusterID int, kind ContentKind, narrator int) SceneSpec {
	return OperationSceneWithPalette(rng, paletteFamilies[family%len(paletteFamilies)], clusterID, kind, narrator)
}

// OperationSceneWithPalette is OperationScene with an explicit setting
// palette (the surgical drape derivation still applies).
func OperationSceneWithPalette(rng *rand.Rand, base Palette, clusterID int, kind ContentKind, narrator int) SceneSpec {
	pal := surgicalPalette(base)
	mk := func(variant int, blood bool) Camera {
		return Camera{
			Kind: kind, Palette: pal, Variant: variant,
			SkinFrac: 0.22 + rng.Float64()*0.25,
			Blood:    blood,
			Pan:      0.15 + rng.Float64()*0.3,
		}
	}
	var groups []GroupSpec
	nGroups := 1 + rng.Intn(2)
	for gi := 0; gi < nGroups; gi++ {
		var g GroupSpec
		nShots := 3 + rng.Intn(3)
		for si := 0; si < nShots; si++ {
			blood := kind != ContentSkinExam && rng.Float64() < 0.6
			sp := ShotSpec{Cam: mk(gi*4+si, blood), Frames: shotLen(rng, 23, 45)}
			if narrator > 0 {
				sp.Speaker = narrator
			} else {
				sp.Audio = AudioAmbient
			}
			g.Shots = append(g.Shots, sp)
		}
		groups = append(groups, g)
	}
	return SceneSpec{Event: vidmodel.EventClinicalOperation, ClusterID: clusterID, Groups: groups}
}

// EstablishingScene scripts a neutral connective scene with no event cues.
func EstablishingScene(rng *rand.Rand, family int, clusterID int) SceneSpec {
	return EstablishingSceneWithPalette(rng, paletteFamilies[family%len(paletteFamilies)], clusterID)
}

// EstablishingSceneWithPalette is EstablishingScene with an explicit
// setting palette.
func EstablishingSceneWithPalette(rng *rand.Rand, pal Palette, clusterID int) SceneSpec {
	var g GroupSpec
	for i := 0; i < 3+rng.Intn(2); i++ {
		cam := Camera{Kind: ContentEstablishing, Palette: pal, Variant: i, Pan: 0.2}
		g.Shots = append(g.Shots, ShotSpec{Cam: cam, Frames: shotLen(rng, 23, 38), Audio: AudioAmbient})
	}
	return SceneSpec{Event: vidmodel.EventUnknown, ClusterID: clusterID, Groups: []GroupSpec{g}}
}
