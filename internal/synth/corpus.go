package synth

import (
	"math"
	"math/rand"

	"classminer/internal/vidmodel"
)

// videoProfile fixes the event mix of one corpus video. Counts are chosen
// so that at Scale = 1 the corpus contains the paper's Table-1 population:
// 15 presentation, 28 dialog and 39 clinical-operation scenes, plus
// connective material.
type videoProfile struct {
	name          string
	presentations int
	dialogs       int
	clinical      int
	establishing  int
	clinicalKind  ContentKind
}

var corpusProfiles = []videoProfile{
	{name: "face-repair", presentations: 3, dialogs: 6, clinical: 8, establishing: 3, clinicalKind: ContentSurgical},
	{name: "nuclear-medicine", presentations: 4, dialogs: 6, clinical: 5, establishing: 3, clinicalKind: ContentOrgan},
	{name: "laparoscopy", presentations: 3, dialogs: 4, clinical: 10, establishing: 2, clinicalKind: ContentOrgan},
	{name: "skin-examination", presentations: 2, dialogs: 7, clinical: 8, establishing: 3, clinicalKind: ContentSkinExam},
	{name: "laser-eye-surgery", presentations: 3, dialogs: 5, clinical: 8, establishing: 2, clinicalKind: ContentSurgical},
}

// CorpusNames lists the five synthetic stand-ins for the paper's dataset
// (face repair, nuclear medicine, laparoscopy, skin examination, laser eye
// surgery).
func CorpusNames() []string {
	names := make([]string, len(corpusProfiles))
	for i, p := range corpusProfiles {
		names[i] = p.name
	}
	return names
}

// CorpusScripts builds the scripts of the five-video evaluation corpus.
// scale multiplies every scene count (scale 1 ≈ a 1:6 time-scaled version
// of the paper's 6-hour dataset); seed fixes the scenario randomness.
func CorpusScripts(scale float64, seed int64) []*Script {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	scripts := make([]*Script, 0, len(corpusProfiles))
	for vi, p := range corpusProfiles {
		scripts = append(scripts, buildVideo(p, scale, vi, rng))
	}
	return scripts
}

// CorpusScript builds a single corpus video by name (see CorpusNames).
// It returns nil for an unknown name.
func CorpusScript(name string, scale float64, seed int64) *Script {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for vi, p := range corpusProfiles {
		s := buildVideo(p, scale, vi, rng) // keep rng state identical to CorpusScripts
		if p.name == name {
			return s
		}
	}
	return nil
}

func scaled(n int, scale float64) int {
	v := int(math.Round(float64(n) * scale))
	if n > 0 && v < 1 {
		v = 1
	}
	return v
}

// setting identifies one recurring audiovisual setup within a video.
type setting struct {
	kind      vidmodel.EventKind
	seed      int64
	clusterID int
	family    int
	palette   Palette // setting-specific jitter of the family palette
	speakerA  int
	speakerB  int
	content   ContentKind
}

func buildVideo(p videoProfile, scale float64, videoIndex int, rng *rand.Rand) *Script {
	script := &Script{Name: p.name}
	clusterBase := videoIndex * 100

	// A small pool of recurring settings per event type. Recurrences of a
	// setting share the cluster ID, palette family and cameras, which is
	// what the §3.5 scene clustering is supposed to discover.
	mkSettings := func(kind vidmodel.EventKind, pool int, content ContentKind) []setting {
		out := make([]setting, pool)
		for i := range out {
			family := rng.Intn(len(paletteFamilies))
			out[i] = setting{
				kind:      kind,
				seed:      rng.Int63(),
				clusterID: clusterBase + int(kind)*10 + i,
				family:    family,
				palette:   JitterPalette(paletteFamilies[family], rng),
				speakerA:  1 + rng.Intn(6),
				speakerB:  1 + rng.Intn(6),
				content:   content,
			}
		}
		return out
	}
	presSettings := mkSettings(vidmodel.EventPresentation, 2, ContentSlide)
	dialSettings := mkSettings(vidmodel.EventDialog, 3, ContentFace)
	clinSettings := mkSettings(vidmodel.EventClinicalOperation, 3, p.clinicalKind)
	estSettings := mkSettings(vidmodel.EventUnknown, 2, ContentEstablishing)

	type slot struct {
		kind vidmodel.EventKind
		set  []setting
	}
	var slots []slot
	add := func(n int, kind vidmodel.EventKind, set []setting) {
		for i := 0; i < n; i++ {
			slots = append(slots, slot{kind: kind, set: set})
		}
	}
	add(scaled(p.presentations, scale), vidmodel.EventPresentation, presSettings)
	add(scaled(p.dialogs, scale), vidmodel.EventDialog, dialSettings)
	add(scaled(p.clinical, scale), vidmodel.EventClinicalOperation, clinSettings)
	add(scaled(p.establishing, scale), vidmodel.EventUnknown, estSettings)
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })

	for _, sl := range slots {
		st := sl.set[rng.Intn(len(sl.set))]
		script.Scenes = append(script.Scenes, instantiateScene(st, rng))
	}
	return script
}

// instantiateScene builds a scene from its setting. The setting's private
// seed fixes the cameras (so recurrences look alike); the corpus rng then
// re-randomises shot durations so recurrences are not frame-identical.
func instantiateScene(st setting, rng *rand.Rand) SceneSpec {
	srng := rand.New(rand.NewSource(st.seed))
	var spec SceneSpec
	switch st.kind {
	case vidmodel.EventPresentation:
		spec = PresentationSceneWithPalette(srng, st.palette, st.clusterID, st.speakerA)
	case vidmodel.EventDialog:
		b := st.speakerB
		if b == st.speakerA {
			b = st.speakerA%6 + 1
		}
		spec = DialogSceneWithPalette(srng, st.palette, st.clusterID, st.speakerA, b)
	case vidmodel.EventClinicalOperation:
		narrator := 0
		if srng.Float64() < 0.4 {
			narrator = st.speakerA
		}
		spec = OperationSceneWithPalette(srng, st.palette, st.clusterID, st.content, narrator)
	default:
		spec = EstablishingSceneWithPalette(srng, st.palette, st.clusterID)
	}
	// Fresh durations per instance.
	for gi := range spec.Groups {
		for si := range spec.Groups[gi].Shots {
			s := &spec.Groups[gi].Shots[si]
			delta := rng.Intn(9) - 4
			// Keep every shot above the 2 s audio-clip floor (23 frames at
			// the default 10 fps) so shots stay analysable.
			if s.Frames+delta >= 23 {
				s.Frames += delta
			}
		}
	}
	degradeScene(&spec, st, rand.New(rand.NewSource(st.seed+1)))
	return spec
}

// degradeScene injects the real-world contaminations that keep event mining
// below perfect, as in the paper's Table 1: presentations occasionally take
// an audience question (a second voice — the scene then violates the
// "no speaker change" rule), and clinical operations often carry a running
// conversation between surgeons (the paper's clinical recall of 0.54 is
// dominated by exactly this). Recurrences of a setting share the trait
// because the mutation rng derives from the setting seed.
func degradeScene(spec *SceneSpec, st setting, rng *rand.Rand) {
	switch spec.Event {
	case vidmodel.EventPresentation:
		if rng.Float64() < 0.3 {
			// A Q&A exchange closes the talk: presenter, audience member,
			// presenter — three face shots with alternating voices. The
			// scene now looks exactly like a dialog to the §4.3 rules,
			// which is where the paper's false dialog detections come from.
			other := st.speakerA%6 + 1
			g := &spec.Groups[len(spec.Groups)-1]
			if len(g.Shots) < 3 {
				return
			}
			presenterCam := Camera{Kind: ContentFace, Palette: st.palette, Variant: 1, FaceFrac: 0.14}
			guestCam := Camera{Kind: ContentFace, Palette: st.palette, Variant: 3, FaceFrac: 0.13}
			n := len(g.Shots)
			g.Shots[n-3].Cam, g.Shots[n-3].Speaker = presenterCam, st.speakerA
			g.Shots[n-2].Cam, g.Shots[n-2].Speaker = guestCam, other
			g.Shots[n-1].Cam, g.Shots[n-1].Speaker = presenterCam, st.speakerA
		}
	case vidmodel.EventClinicalOperation:
		if rng.Float64() < 0.45 {
			// The surgeons talk over the procedure: alternate two voices
			// across the shots of the first group.
			a := st.speakerA
			b := a%6 + 1
			for si := range spec.Groups[0].Shots {
				s := &spec.Groups[0].Shots[si]
				if si%2 == 0 {
					s.Speaker = a
				} else {
					s.Speaker = b
				}
			}
		}
	}
}
