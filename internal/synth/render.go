package synth

import (
	"math"
	"math/rand"

	"classminer/internal/vidmodel"
)

// RGB is a plain 8-bit colour triple used by palettes and the renderer.
type RGB struct{ R, G, B byte }

// lerp blends two colours; t ∈ [0,1].
func lerp(a, b RGB, t float64) RGB {
	f := func(x, y byte) byte { return byte(float64(x) + (float64(y)-float64(x))*t) }
	return RGB{f(a.R, b.R), f(a.G, b.G), f(a.B, b.B)}
}

// jitterColor perturbs a colour by up to amp per channel (lighting drift,
// sensor noise). The perturbation is clamped to valid byte range.
func jitterColor(c RGB, amp float64, rng *rand.Rand) RGB {
	j := func(v byte) byte {
		x := float64(v) + (rng.Float64()*2-1)*amp
		if x < 0 {
			x = 0
		}
		if x > 255 {
			x = 255
		}
		return byte(x)
	}
	return RGB{j(c.R), j(c.G), j(c.B)}
}

// fillRect paints an axis-aligned rectangle; coordinates are clamped.
func fillRect(f *vidmodel.Frame, x0, y0, x1, y1 int, c RGB) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > f.W {
		x1 = f.W
	}
	if y1 > f.H {
		y1 = f.H
	}
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			f.Set(x, y, c.R, c.G, c.B)
		}
	}
}

// fillEllipse paints a filled ellipse centred at (cx, cy) with radii rx, ry.
func fillEllipse(f *vidmodel.Frame, cx, cy, rx, ry float64, c RGB) {
	if rx <= 0 || ry <= 0 {
		return
	}
	x0, x1 := int(cx-rx), int(cx+rx)+1
	y0, y1 := int(cy-ry), int(cy+ry)+1
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			if dx*dx+dy*dy <= 1 {
				f.Set(x, y, c.R, c.G, c.B)
			}
		}
	}
}

// vGradient paints a vertical gradient from top to bottom colour.
func vGradient(f *vidmodel.Frame, top, bottom RGB) {
	for y := 0; y < f.H; y++ {
		t := float64(y) / float64(f.H-1)
		c := lerp(top, bottom, t)
		for x := 0; x < f.W; x++ {
			f.Set(x, y, c.R, c.G, c.B)
		}
	}
}

// addNoise perturbs every pixel by up to amp per channel.
func addNoise(f *vidmodel.Frame, amp float64, rng *rand.Rand) {
	if amp <= 0 {
		return
	}
	for i := range f.Pix {
		x := float64(f.Pix[i]) + (rng.Float64()*2-1)*amp
		if x < 0 {
			x = 0
		}
		if x > 255 {
			x = 255
		}
		f.Pix[i] = byte(x)
	}
}

// textBars draws n dark horizontal bars starting at row y — the synthetic
// stand-in for slide body text. Bar lengths vary with the variant so that
// different slides are distinguishable but share a look.
func textBars(f *vidmodel.Frame, y, n, variant int, ink RGB) {
	lineH := 2
	gap := 2
	for i := 0; i < n; i++ {
		rowY := y + i*(lineH+gap)
		width := f.W*2/3 + ((variant+i*3)%5)*f.W/24
		if width > f.W-4 {
			width = f.W - 4
		}
		fillRect(f, 3, rowY, 3+width, rowY+lineH, ink)
	}
}

// drawFace renders a frontal head-and-shoulders figure whose face occupies
// roughly sizeFrac of the frame area. The face is an upright skin-tone
// ellipse with hair, eyes and a mouth — enough structure for the skin model,
// shape analysis and template-curve verification of §4.1 to operate on.
// bob shifts the head vertically (talking motion).
func drawFace(f *vidmodel.Frame, skin, hair, clothes RGB, sizeFrac, bob float64) {
	drawFaceAt(f, skin, hair, clothes, sizeFrac, bob, 0.5)
}

// drawFaceAt is drawFace with the head centred at the horizontal fraction
// xFrac of the frame.
func drawFaceAt(f *vidmodel.Frame, skin, hair, clothes RGB, sizeFrac, bob, xFrac float64) {
	w, h := float64(f.W), float64(f.H)
	// Face area = π·rx·ry ≈ sizeFrac·w·h with aspect ry = 1.3·rx.
	rx := math.Sqrt(sizeFrac * w * h / (math.Pi * 1.3))
	ry := 1.3 * rx
	cx, cy := w*xFrac, h*0.42+bob
	// Shoulders.
	fillRect(f, int(cx-rx*2.2), int(cy+ry*0.8), int(cx+rx*2.2), f.H, clothes)
	// Hair cap slightly larger than the face, drawn first.
	fillEllipse(f, cx, cy-ry*0.15, rx*1.1, ry*1.05, hair)
	// Face.
	fillEllipse(f, cx, cy, rx, ry, skin)
	// Eyes and mouth proportional to the face.
	eyeR := math.Max(rx*0.14, 0.6)
	dark := RGB{30, 25, 25}
	fillEllipse(f, cx-rx*0.4, cy-ry*0.15, eyeR, eyeR, dark)
	fillEllipse(f, cx+rx*0.4, cy-ry*0.15, eyeR, eyeR, dark)
	fillRect(f, int(cx-rx*0.35), int(cy+ry*0.45), int(cx+rx*0.35), int(cy+ry*0.45)+1, RGB{120, 60, 60})
}

// blend mixes frame b into frame a with weight t (for dissolve transitions).
func blend(a, b *vidmodel.Frame, t float64) *vidmodel.Frame {
	out := vidmodel.NewFrame(a.W, a.H)
	for i := range out.Pix {
		out.Pix[i] = byte(float64(a.Pix[i])*(1-t) + float64(b.Pix[i])*t)
	}
	return out
}
