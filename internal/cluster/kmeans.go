package cluster

import (
	"fmt"
	"math/rand"

	"classminer/internal/mat"
	"classminer/internal/structure"
	"classminer/internal/vidmodel"
)

// KMeansScenes is the seeded comparator the paper argues against in §3.5:
// scenes are embedded as the 266-dim descriptors of their representative
// groups' representative shots and clustered with k-means. It exists for
// the PCS-vs-K-means ablation bench; its sensitivity to the seed is the
// behaviour the ablation demonstrates.
func KMeansScenes(scenes []*vidmodel.Scene, n int, rng *rand.Rand) (*Result, error) {
	if len(scenes) == 0 {
		return nil, fmt.Errorf("cluster: no scenes")
	}
	if n < 1 {
		n = 1
	}
	if n > len(scenes) {
		n = len(scenes)
	}
	vecs := make([][]float64, len(scenes))
	for i, s := range scenes {
		rep := s.RepGroup
		if rep == nil {
			rep = structure.SelectRepGroup(s)
		}
		if rep == nil || len(rep.RepShots) == 0 || rep.RepShots[0] == nil {
			// Fall back to the first shot when no representative exists.
			shots := s.Shots()
			if len(shots) == 0 {
				return nil, fmt.Errorf("cluster: scene %d has no shots", i)
			}
			vecs[i] = shots[0].Feature()
			continue
		}
		vecs[i] = rep.RepShots[0].Feature()
	}
	km, err := mat.KMeans(vecs, n, rng, 50)
	if err != nil {
		return nil, err
	}
	byCluster := map[int][]*vidmodel.Scene{}
	for i, c := range km.Assignment {
		byCluster[c] = append(byCluster[c], scenes[i])
	}
	res := &Result{OptimalN: 0}
	for c := 0; c < n; c++ {
		members := byCluster[c]
		if len(members) == 0 {
			continue
		}
		var groups []*vidmodel.Group
		for _, s := range members {
			groups = append(groups, s.Groups...)
		}
		res.Clusters = append(res.Clusters, &vidmodel.ClusteredScene{
			Index:    len(res.Clusters),
			Scenes:   members,
			RepGroup: structure.SelectRepGroup(&vidmodel.Scene{Groups: groups}),
		})
	}
	res.OptimalN = len(res.Clusters)
	return res, nil
}
