package cluster

import (
	"math/rand"
	"testing"

	"classminer/internal/feature"
	"classminer/internal/vidmodel"
)

// mkScene builds a one-group scene whose shots all live in the given colour
// bin, so scenes with equal bins are perfect cluster mates.
func mkScene(idx, colorBin int) *vidmodel.Scene {
	mk := func(i int) *vidmodel.Shot {
		c := make([]float64, feature.ColorBins)
		c[colorBin] = 1
		tx := make([]float64, feature.TextureDims)
		tx[colorBin%feature.TextureDims] = 1
		return &vidmodel.Shot{Index: idx*10 + i, Start: (idx*10 + i) * 10, End: (idx*10 + i + 1) * 10, Color: c, Texture: tx}
	}
	g := &vidmodel.Group{Index: idx, Shots: []*vidmodel.Shot{mk(0), mk(1), mk(2)}}
	g.RepShots = []*vidmodel.Shot{g.Shots[0]}
	sc := &vidmodel.Scene{Index: idx, Groups: []*vidmodel.Group{g}, RepGroup: g}
	return sc
}

func TestClusterScenesMergesRecurrences(t *testing.T) {
	// Six scenes, three recurring pairs. Forcing N=3 must recover them.
	scenes := []*vidmodel.Scene{
		mkScene(0, 1), mkScene(1, 50), mkScene(2, 1),
		mkScene(3, 120), mkScene(4, 50), mkScene(5, 120),
	}
	res, err := ClusterScenes(scenes, Options{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("got %d clusters, want 3", len(res.Clusters))
	}
	for _, c := range res.Clusters {
		if len(c.Scenes) != 2 {
			t.Fatalf("cluster %d has %d scenes, want 2", c.Index, len(c.Scenes))
		}
		// Both members must share the colour bin (same recurrence).
		b0 := argmax(c.Scenes[0].Groups[0].Shots[0].Color)
		b1 := argmax(c.Scenes[1].Groups[0].Shots[0].Color)
		if b0 != b1 {
			t.Fatalf("cluster %d mixed bins %d and %d", c.Index, b0, b1)
		}
		if c.RepGroup == nil {
			t.Fatal("cluster missing centroid group")
		}
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func TestClusterScenesValidityRange(t *testing.T) {
	// Ten scenes from four true settings; the validity analysis must pick
	// N inside [5, 7] (50–70 % of 10).
	var scenes []*vidmodel.Scene
	bins := []int{1, 1, 1, 60, 60, 60, 120, 120, 200, 200}
	for i, b := range bins {
		scenes = append(scenes, mkScene(i, b))
	}
	res, err := ClusterScenes(scenes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalN < 5 || res.OptimalN > 7 {
		t.Fatalf("optimal N = %d, want in [5,7]", res.OptimalN)
	}
	if len(res.Rho) == 0 {
		t.Fatal("validity scores must be recorded")
	}
	total := 0
	for _, c := range res.Clusters {
		total += len(c.Scenes)
	}
	if total != len(scenes) {
		t.Fatalf("clusters cover %d scenes, want %d", total, len(scenes))
	}
}

func TestClusterScenesSingleScene(t *testing.T) {
	res, err := ClusterScenes([]*vidmodel.Scene{mkScene(0, 1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || res.OptimalN != 1 {
		t.Fatalf("single scene: %d clusters, N=%d", len(res.Clusters), res.OptimalN)
	}
}

func TestClusterScenesEmpty(t *testing.T) {
	if _, err := ClusterScenes(nil, Options{}); err == nil {
		t.Fatal("want error on no scenes")
	}
}

func TestClusterScenesForcedNClamped(t *testing.T) {
	scenes := []*vidmodel.Scene{mkScene(0, 1), mkScene(1, 2)}
	res, err := ClusterScenes(scenes, Options{N: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clamped N: got %d clusters, want 2", len(res.Clusters))
	}
}

func TestClusterScenesDeterministic(t *testing.T) {
	mk := func() []*vidmodel.Scene {
		return []*vidmodel.Scene{
			mkScene(0, 1), mkScene(1, 50), mkScene(2, 1), mkScene(3, 50),
			mkScene(4, 90), mkScene(5, 90), mkScene(6, 130), mkScene(7, 130),
		}
	}
	a, err := ClusterScenes(mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterScenes(mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.OptimalN != b.OptimalN || len(a.Clusters) != len(b.Clusters) {
		t.Fatal("PCS must be deterministic")
	}
	for i := range a.Clusters {
		if len(a.Clusters[i].Scenes) != len(b.Clusters[i].Scenes) {
			t.Fatalf("cluster %d sizes differ", i)
		}
	}
}

func TestKMeansScenesPartitions(t *testing.T) {
	scenes := []*vidmodel.Scene{
		mkScene(0, 1), mkScene(1, 1), mkScene(2, 200), mkScene(3, 200),
	}
	res, err := KMeansScenes(scenes, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(res.Clusters))
	}
	total := 0
	for _, c := range res.Clusters {
		total += len(c.Scenes)
	}
	if total != 4 {
		t.Fatalf("clusters cover %d scenes, want 4", total)
	}
}

func TestKMeansScenesErrors(t *testing.T) {
	if _, err := KMeansScenes(nil, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want error on empty scenes")
	}
}

// Property: PCS never loses or duplicates a scene, for any forced N.
func TestClusterScenesPropertyCoverage(t *testing.T) {
	bins := []int{1, 5, 9, 1, 5, 9, 40, 40, 80, 80, 120, 160}
	var scenes []*vidmodel.Scene
	for i, b := range bins {
		scenes = append(scenes, mkScene(i, b))
	}
	for n := 1; n <= len(scenes); n++ {
		res, err := ClusterScenes(scenes, Options{N: n})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[*vidmodel.Scene]bool{}
		for _, c := range res.Clusters {
			for _, s := range c.Scenes {
				if seen[s] {
					t.Fatalf("N=%d: scene duplicated", n)
				}
				seen[s] = true
			}
		}
		if len(seen) != len(scenes) {
			t.Fatalf("N=%d: covered %d scenes, want %d", n, len(seen), len(scenes))
		}
	}
}
