// Package cluster implements §3.5 of the paper: the seedless Pairwise
// Cluster Scheme (PCS) that agglomerates visually similar video scenes into
// clustered scenes, and the cluster-validity analysis (Eqs. 14–16) that
// picks the optimal cluster count inside [⌊0.5·M⌋, ⌊0.7·M⌋] — i.e. the
// clustering eliminates 30–50 % of the original scenes.
//
// Unlike K-means (the comparator the paper rejects), PCS needs no seeding
// and is order-independent: every step merges the globally most similar
// pair of clusters, with similarity measured between cluster centroids
// (representative groups, Eq. 13).
package cluster

import (
	"fmt"
	"math"

	"classminer/internal/structure"
	"classminer/internal/vidmodel"
)

// Options tunes ClusterScenes. The zero value reproduces the paper.
type Options struct {
	// N forces an explicit cluster count; 0 selects it with the validity
	// analysis of Eqs. (14)–(16).
	N int
	// MinFrac and MaxFrac bound the searched cluster-count range as
	// fractions of the scene count (paper: 0.5 and 0.7).
	MinFrac, MaxFrac float64
}

// Result carries the clustered scenes and the validity evidence.
type Result struct {
	Clusters []*vidmodel.ClusteredScene
	// Rho maps each evaluated cluster count to its validity score ρ(N)
	// (smaller is better). Empty when N was forced.
	Rho map[int]float64
	// OptimalN is the cluster count actually used.
	OptimalN int
}

// cl is the internal mutable cluster state during agglomeration.
type cl struct {
	scenes   []*vidmodel.Scene
	centroid *vidmodel.Group
}

// ClusterScenes groups visually similar scenes into clustered scenes with
// the Pairwise Cluster Scheme.
func ClusterScenes(scenes []*vidmodel.Scene, opts Options) (*Result, error) {
	m := len(scenes)
	if m == 0 {
		return nil, fmt.Errorf("cluster: no scenes")
	}
	minFrac, maxFrac := opts.MinFrac, opts.MaxFrac
	if minFrac <= 0 {
		minFrac = 0.5
	}
	if maxFrac <= 0 {
		maxFrac = 0.7
	}
	if minFrac > maxFrac {
		minFrac, maxFrac = maxFrac, minFrac
	}

	clusters := make([]*cl, m)
	for i, s := range scenes {
		centroid := s.RepGroup
		if centroid == nil {
			centroid = structure.SelectRepGroup(s)
		}
		if centroid == nil {
			return nil, fmt.Errorf("cluster: scene %d has no groups", i)
		}
		clusters[i] = &cl{scenes: []*vidmodel.Scene{s}, centroid: centroid}
	}

	res := &Result{Rho: map[int]float64{}}
	targetN := opts.N
	cMin := int(minFrac * float64(m))
	cMax := int(maxFrac * float64(m))
	if cMin < 1 {
		cMin = 1
	}
	if cMax < cMin {
		cMax = cMin
	}
	if targetN > 0 {
		if targetN > m {
			targetN = m
		}
		cMin = targetN
	}

	type snapshot struct {
		n   int
		cls []*cl
	}
	var snaps []snapshot
	record := func() {
		n := len(clusters)
		withinRange := targetN == 0 && n >= cMin && n <= cMax
		forced := targetN > 0 && n == targetN
		if withinRange || forced {
			cp := make([]*cl, n)
			for i, c := range clusters {
				cp[i] = &cl{scenes: append([]*vidmodel.Scene(nil), c.scenes...), centroid: c.centroid}
			}
			snaps = append(snaps, snapshot{n: n, cls: cp})
		}
	}
	record()
	for len(clusters) > cMin {
		i, j := mostSimilarPair(clusters)
		if i < 0 {
			break
		}
		clusters = mergePair(clusters, i, j)
		record()
	}

	if len(snaps) == 0 {
		// Degenerate inputs (e.g. a single scene): one cluster per scene.
		snaps = append(snaps, snapshot{n: len(clusters), cls: clusters})
	}

	best := snaps[0]
	if targetN == 0 && len(snaps) > 1 {
		bestRho := math.Inf(1)
		for _, s := range snaps {
			r := validity(s.cls)
			res.Rho[s.n] = r
			if r < bestRho {
				bestRho, best = r, s
			}
		}
	}
	res.OptimalN = best.n
	for idx, c := range best.cls {
		res.Clusters = append(res.Clusters, &vidmodel.ClusteredScene{
			Index:    idx,
			Scenes:   c.scenes,
			RepGroup: c.centroid,
		})
	}
	return res, nil
}

// mostSimilarPair scans the centroid similarity matrix (Eq. 13) for the
// largest entry. Ties resolve to the first pair in row-major order, keeping
// the scheme deterministic.
func mostSimilarPair(clusters []*cl) (int, int) {
	bi, bj, best := -1, -1, -1.0
	for i := 0; i < len(clusters); i++ {
		for j := i + 1; j < len(clusters); j++ {
			if s := structure.GroupSim(clusters[i].centroid, clusters[j].centroid); s > best {
				bi, bj, best = i, j, s
			}
		}
	}
	return bi, bj
}

// mergePair fuses clusters i and j (i < j) and recomputes the centroid via
// SelectRepGroup over all member groups (§3.5 step 2).
func mergePair(clusters []*cl, i, j int) []*cl {
	merged := &cl{scenes: append(append([]*vidmodel.Scene(nil), clusters[i].scenes...), clusters[j].scenes...)}
	var groups []*vidmodel.Group
	for _, s := range merged.scenes {
		groups = append(groups, s.Groups...)
	}
	merged.centroid = structure.SelectRepGroup(&vidmodel.Scene{Groups: groups})
	out := make([]*cl, 0, len(clusters)-1)
	for k, c := range clusters {
		if k != i && k != j {
			out = append(out, c)
		}
	}
	return append(out, merged)
}

// validity computes ρ(N) of Eq. (14): the mean intra-cluster distance ς̄
// (Eq. 15, one minus the centroid–member similarity) plus the reciprocal of
// the largest inter-cluster distance ξ. Smaller ρ means tighter clusters
// that are further apart.
func validity(clusters []*cl) float64 {
	n := len(clusters)
	if n < 2 {
		return math.Inf(1)
	}
	var intra float64
	for _, c := range clusters {
		var s float64
		for _, sc := range c.scenes {
			rep := sc.RepGroup
			if rep == nil {
				rep = structure.SelectRepGroup(sc)
			}
			s += 1 - structure.GroupSim(c.centroid, rep)
		}
		intra += s / float64(len(c.scenes))
	}
	intra /= float64(n)
	var maxInter float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := 1 - structure.GroupSim(clusters[i].centroid, clusters[j].centroid); d > maxInter {
				maxInter = d
			}
		}
	}
	if maxInter <= 0 {
		return math.Inf(1)
	}
	return intra + 1/maxInter
}
