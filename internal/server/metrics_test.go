package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"classminer"
	"classminer/internal/metrics"
)

// scrape fetches /metrics through the full middleware stack and validates
// the exposition before handing the body back. Every caller therefore also
// re-checks the format CI depends on.
func scrape(t testing.TB, s *Server, token string) string {
	t.Helper()
	w := doRaw(t, s, http.MethodGet, "/metrics", token, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("content type = %q, want %q", ct, metrics.ContentType)
	}
	body := w.Body.String()
	if err := metrics.ValidateExposition(body); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	return body
}

// metricValue finds the sample line for one fully rendered series (name plus
// label set, exactly as exposed) and returns its value.
func metricValue(t testing.TB, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s has bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %q not in exposition:\n%s", series, body)
	return 0
}

// TestMetricsExpositionWellFormed boots a server, exercises a few routes and
// asserts GET /metrics serves parseable text exposition. This is the test
// the CI scrape step runs.
func TestMetricsExpositionWellFormed(t *testing.T) {
	s := newTestServer(t, Options{})
	if code := do(t, s, http.MethodGet, "/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	req := map[string]any{"video": "laparoscopy", "shot": 0, "k": 5}
	if w := doRaw(t, s, http.MethodPost, "/v1/search", "admin-tok", req); w.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", w.Code, w.Body.String())
	}
	body := scrape(t, s, "admin-tok")
	// The catalogue's fixed families must all be present even at zero.
	for _, fam := range []string{
		"# TYPE http_requests_total counter",
		"# TYPE http_request_duration_seconds histogram",
		"# TYPE search_cache_hits_total counter",
		"# TYPE ingest_queue_depth gauge",
		"# TYPE index_rebuilds_total counter",
		"# TYPE go_goroutines gauge",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}
}

// TestMetricsEndToEnd shares one registry between the WAL engine and the
// server, drives real traffic through the API, and asserts the series the
// perf claims rest on actually populate: per-route request counts and
// latency, cache hit/miss, fsync latency, group-commit batch sizes, and the
// library's registration counter.
func TestMetricsEndToEnd(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	wopts := classminer.DurableOptions{CheckpointBytes: -1, CheckpointRecords: -1, Metrics: reg}
	lib, err := classminer.Recover(t.TempDir(), a, wopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lib.Close() })
	s := New(lib, Options{Tokens: testTokens(), Metrics: reg})
	t.Cleanup(s.Close)

	ingestAndWait(t, s, "metered-00", 1)
	// Same query twice: the first search misses the cache, the second hits.
	for i := 0; i < 2; i++ {
		if w := doRaw(t, s, http.MethodPost, "/v1/search", "admin-tok", searchBody(7)); w.Code != http.StatusOK {
			t.Fatalf("search %d = %d: %s", i, w.Code, w.Body.String())
		}
	}
	body := scrape(t, s, "admin-tok")

	if v := metricValue(t, body, `http_requests_total{route="/v1/search",status="2xx"}`); v < 2 {
		t.Errorf("search 2xx count = %v, want >= 2", v)
	}
	if v := metricValue(t, body, `http_request_duration_seconds_count{route="/v1/search"}`); v < 2 {
		t.Errorf("search latency samples = %v, want >= 2", v)
	}
	if v := metricValue(t, body, `http_response_bytes_total{route="/v1/search"}`); v <= 0 {
		t.Errorf("search response bytes = %v, want > 0", v)
	}
	if v := metricValue(t, body, "search_cache_misses_total"); v < 1 {
		t.Errorf("cache misses = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "search_cache_hits_total"); v < 1 {
		t.Errorf("cache hits = %v, want >= 1", v)
	}
	// The durable registration fsynced under the default SyncAlways policy,
	// so the WAL's commit-path histograms must hold samples.
	if v := metricValue(t, body, "wal_fsync_duration_seconds_count"); v < 1 {
		t.Errorf("fsync samples = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "wal_group_commit_records_count"); v < 1 {
		t.Errorf("group-commit samples = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "wal_appends_total"); v < 1 {
		t.Errorf("wal appends = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "classminer_registrations_total"); v != 1 {
		t.Errorf("registrations = %v, want 1", v)
	}
	if v := metricValue(t, body, "ingest_jobs_done_total"); v != 1 {
		t.Errorf("ingest jobs done = %v, want 1", v)
	}
}

// TestMetricsDisabled asserts DisableMetrics turns both the instrumentation
// and the endpoint off without disturbing the API.
func TestMetricsDisabled(t *testing.T) {
	s := newTestServer(t, Options{DisableMetrics: true})
	if code := do(t, s, http.MethodGet, "/metrics", "admin-tok", nil, nil); code != http.StatusNotFound {
		t.Fatalf("metrics disabled = %d, want 404", code)
	}
	req := map[string]any{"video": "laparoscopy", "shot": 0, "k": 5}
	if w := doRaw(t, s, http.MethodPost, "/v1/search", "admin-tok", req); w.Code != http.StatusOK {
		t.Fatalf("search with metrics disabled = %d", w.Code)
	}
}

// TestMetricsRequireAuth: operational counters reveal workload shape, so
// /metrics sits behind the same token gate as the API.
func TestMetricsRequireAuth(t *testing.T) {
	s := newTestServer(t, Options{})
	if code := do(t, s, http.MethodGet, "/metrics", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated scrape = %d, want 401", code)
	}
	scrape(t, s, "pub-tok") // any authenticated user may scrape
}

// TestPprofGating: the flag off must 404 exactly like a missing route;
// enabled, profiles need Administrator clearance.
func TestPprofGating(t *testing.T) {
	off := newTestServer(t, Options{})
	if code := do(t, off, http.MethodGet, "/debug/pprof/", "admin-tok", nil, nil); code != http.StatusNotFound {
		t.Fatalf("pprof disabled = %d, want 404", code)
	}

	on := newTestServer(t, Options{EnablePprof: true})
	if code := do(t, on, http.MethodGet, "/debug/pprof/", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated pprof = %d, want 401", code)
	}
	if code := do(t, on, http.MethodGet, "/debug/pprof/", "clin-tok", nil, nil); code != http.StatusForbidden {
		t.Fatalf("under-cleared pprof = %d, want 403", code)
	}
	w := doRaw(t, on, http.MethodGet, "/debug/pprof/", "admin-tok", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("pprof index = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
	if w := doRaw(t, on, http.MethodGet, "/debug/pprof/cmdline", "admin-tok", nil); w.Code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", w.Code)
	}
}

// TestHealthzCountedNotLogged: load-balancer probes must not flood the
// request log, but they still count in the metrics.
func TestHealthzCountedNotLogged(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s := newTestServer(t, Options{Logf: func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}})
	if code := do(t, s, http.MethodGet, "/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code := do(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil, nil); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	body := scrape(t, s, "admin-tok")
	if v := metricValue(t, body, `http_requests_total{route="/healthz",status="2xx"}`); v < 1 {
		t.Errorf("healthz requests = %v, want >= 1", v)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, line := range lines {
		if strings.Contains(line, "/healthz") {
			t.Errorf("healthz probe reached the request log: %q", line)
		}
	}
	var logged bool
	for _, line := range lines {
		if strings.Contains(line, "/v1/stats") {
			logged = true
		}
	}
	if !logged {
		t.Errorf("stats request missing from log: %q", lines)
	}
}

// TestStatusWriterFlushAndBytes: the recording wrapper must pass Flush
// through to streaming handlers and count body bytes.
func TestStatusWriterFlushAndBytes(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &reqState{ResponseWriter: rec, status: http.StatusOK}
	if n, err := sw.Write([]byte("hello ")); n != 6 || err != nil {
		t.Fatalf("write = %d, %v", n, err)
	}
	if _, err := sw.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if sw.bytes != 11 {
		t.Fatalf("bytes = %d, want 11", sw.bytes)
	}
	sw.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
	sw.WriteHeader(http.StatusTeapot)
	if sw.status != http.StatusTeapot {
		t.Fatalf("status = %d", sw.status)
	}
}

// TestRouteTemplate pins the normaliser to the router's dispatch, including
// identifier collapsing and trailing-slash handling.
func TestRouteTemplate(t *testing.T) {
	cases := map[string]string{
		"/healthz":          "/healthz",
		"/v1/search":        "/v1/search",
		"/v1/search/":       "/v1/search",
		"/v1/search/batch":  "/v1/search/batch",
		"/v1/videos":        "/v1/videos",
		"/v1/videos/op-42":  "/v1/videos/{name}",
		"/v1/events/dialog": "/v1/events/{kind}",
		"/v1/jobs/job-7":    "/v1/jobs/{id}",
		"/v1/admin/save":    "/v1/admin/save",
		"/metrics":          "/metrics",
		"/debug/pprof/heap": "/debug/pprof",
		"/debug/pprof":      "/debug/pprof",
		"/v1/nope":          "other",
		"/":                 "other",
	}
	for path, want := range cases {
		if got := routeTemplate(path); got != want {
			t.Errorf("routeTemplate(%q) = %q, want %q", path, got, want)
		}
	}
	// Every template the normaliser can return must have registered series.
	s := newTestServer(t, Options{})
	for _, rt := range routeTemplates {
		if s.metrics.byRoute[rt] == nil {
			t.Errorf("route template %q has no instruments", rt)
		}
	}
}
