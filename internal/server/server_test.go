package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"classminer"
	"classminer/internal/access"
	"classminer/internal/store"
	"classminer/internal/synth"
)

// Shared fixture: one mined corpus video behind a protected clinical leaf.
var (
	fixOnce sync.Once
	fixLib  *classminer.Library
	fixErr  error
)

func fixtureLibrary(t testing.TB) *classminer.Library {
	t.Helper()
	fixOnce.Do(func() {
		a, err := classminer.NewAnalyzer(classminer.Options{})
		if err != nil {
			fixErr = err
			return
		}
		fixLib = classminer.NewLibrary(a)
		// scale 0.2 / seed 11 mines at least one dialog and one clinical
		// scene, which the events and policy-filter tests depend on.
		script := synth.CorpusScript("laparoscopy", 0.2, 11)
		v, err := synth.Generate(synth.DefaultConfig(), script, 11)
		if err != nil {
			fixErr = err
			return
		}
		if _, err := fixLib.AddVideo(v, "medicine"); err != nil {
			fixErr = err
			return
		}
		fixLib.Protect(classminer.Rule{
			Concept: "medicine/clinical operation", MinClearance: classminer.Clinician,
		})
		fixErr = fixLib.BuildIndex()
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixLib
}

func testTokens() map[string]access.User {
	return map[string]access.User{
		"pub-tok":   {Name: "visitor", Clearance: access.Public},
		"clin-tok":  {Name: "dr.lee", Clearance: access.Clinician, Roles: []string{"surgeon"}},
		"admin-tok": {Name: "root", Clearance: access.Administrator},
	}
}

func newTestServer(t testing.TB, opts Options) *Server {
	t.Helper()
	if opts.Tokens == nil {
		opts.Tokens = testTokens()
	}
	s := New(fixtureLibrary(t), opts)
	t.Cleanup(s.Close)
	return s
}

// do runs one request through the full middleware stack and decodes the
// JSON response into out (when non-nil).
func do(t testing.TB, s *Server, method, path, token string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	r := httptest.NewRequest(method, path, &buf)
	if token != "" {
		r.Header.Set("X-Api-Token", token)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if out != nil && w.Body.Len() > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code
}

func TestHealthzNeedsNoAuth(t *testing.T) {
	s := newTestServer(t, Options{}) // no Anonymous: everything else is 401
	var resp map[string]any
	if code := do(t, s, http.MethodGet, "/healthz", "", nil, &resp); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if resp["status"] != "ok" {
		t.Fatalf("resp = %v", resp)
	}
	if code := do(t, s, http.MethodGet, "/v1/videos", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated list = %d, want 401", code)
	}
	if code := do(t, s, http.MethodGet, "/v1/videos", "bogus", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("unknown token = %d, want 401", code)
	}
}

func TestAuthDenialIs403(t *testing.T) {
	anon := access.User{Name: "anon", Clearance: access.Public}
	s := newTestServer(t, Options{Anonymous: &anon, SnapshotPath: filepath.Join(t.TempDir(), "lib.json")})
	// Admin endpoint: authenticated but under-cleared users get 403.
	for _, tok := range []string{"", "pub-tok", "clin-tok"} {
		if code := do(t, s, http.MethodPost, "/v1/admin/save", tok, nil, nil); code != http.StatusForbidden {
			t.Fatalf("save as %q = %d, want 403", tok, code)
		}
	}
	// Ingestion requires Clinician.
	body := map[string]any{"corpus": "face-repair", "subcluster": "medicine"}
	if code := do(t, s, http.MethodPost, "/v1/videos", "pub-tok", body, nil); code != http.StatusForbidden {
		t.Fatalf("ingest as public = %d, want 403", code)
	}
}

func TestUnknownVideoIs404(t *testing.T) {
	anon := access.User{Name: "anon", Clearance: access.Administrator}
	s := newTestServer(t, Options{Anonymous: &anon})
	var resp map[string]string
	if code := do(t, s, http.MethodGet, "/v1/videos/colonoscopy", "", nil, &resp); code != http.StatusNotFound {
		t.Fatalf("detail = %d, want 404", code)
	}
	if resp["error"] == "" {
		t.Fatal("404 carries no error message")
	}
	if code := do(t, s, http.MethodGet, "/v1/jobs/job-99", "", nil, nil); code != http.StatusNotFound {
		t.Fatal("unknown job must 404")
	}
	if code := do(t, s, http.MethodGet, "/v1/nope", "", nil, nil); code != http.StatusNotFound {
		t.Fatal("unknown route must 404")
	}
}

func TestVideoListAndDetail(t *testing.T) {
	s := newTestServer(t, Options{})
	var list struct {
		Videos []videoSummary `json:"videos"`
	}
	if code := do(t, s, http.MethodGet, "/v1/videos", "admin-tok", nil, &list); code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	// The fixture library is shared across tests; other tests may have
	// ingested more videos, but laparoscopy is always there.
	var lap *videoSummary
	for i := range list.Videos {
		if list.Videos[i].Name == "laparoscopy" {
			lap = &list.Videos[i]
		}
	}
	if lap == nil {
		t.Fatalf("laparoscopy missing from %+v", list.Videos)
	}
	if lap.Shots == 0 || lap.DurationSec <= 0 || lap.Subcluster != "medicine" {
		t.Fatalf("empty summary: %+v", lap)
	}

	var detail struct {
		Name         string          `json:"name"`
		Scenes       []sceneJSON     `json:"scenes"`
		ScenesHidden int             `json:"scenesHidden"`
		Skim         []skimLevelJSON `json:"skim"`
	}
	if code := do(t, s, http.MethodGet, "/v1/videos/laparoscopy", "admin-tok", nil, &detail); code != http.StatusOK {
		t.Fatalf("detail = %d", code)
	}
	if len(detail.Scenes) == 0 || len(detail.Skim) != 4 {
		t.Fatalf("detail = %+v", detail)
	}
	adminScenes := len(detail.Scenes)

	// The clinical leaf is protected: a public viewer sees fewer scenes.
	var pubDetail struct {
		Scenes       []sceneJSON `json:"scenes"`
		ScenesHidden int         `json:"scenesHidden"`
	}
	if code := do(t, s, http.MethodGet, "/v1/videos/laparoscopy", "pub-tok", nil, &pubDetail); code != http.StatusOK {
		t.Fatalf("public detail = %d", code)
	}
	if pubDetail.ScenesHidden == 0 {
		t.Skip("no clinical scenes mined at this corpus scale")
	}
	if len(pubDetail.Scenes)+pubDetail.ScenesHidden != adminScenes {
		t.Fatalf("public sees %d + %d hidden, admin sees %d",
			len(pubDetail.Scenes), pubDetail.ScenesHidden, adminScenes)
	}
}

func TestSearchRoundTripAndCache(t *testing.T) {
	s := newTestServer(t, Options{})
	req := map[string]any{"video": "laparoscopy", "shot": 0, "k": 5}
	var first searchResponse
	if code := do(t, s, http.MethodPost, "/v1/search", "admin-tok", req, &first); code != http.StatusOK {
		t.Fatalf("search = %d", code)
	}
	if len(first.Hits) == 0 || first.Cached {
		t.Fatalf("first search: %+v", first)
	}
	if first.Stats.DistanceOps <= 0 || first.Stats.Candidates <= 0 {
		t.Fatalf("missing cost stats: %+v", first.Stats)
	}
	// Query by example must find the example itself first.
	if h := first.Hits[0]; h.Video != "laparoscopy" || h.Dist > 1e-9 {
		t.Fatalf("top hit = %+v", h)
	}
	var second searchResponse
	do(t, s, http.MethodPost, "/v1/search", "admin-tok", req, &second)
	if !second.Cached {
		t.Fatal("identical repeat query not served from cache")
	}
	if len(second.Hits) != len(first.Hits) {
		t.Fatalf("cached hits %d != %d", len(second.Hits), len(first.Hits))
	}
	// A different identity must not share the cache entry (policy filters
	// differ), and mutating the policy must invalidate cached answers.
	var other searchResponse
	do(t, s, http.MethodPost, "/v1/search", "clin-tok", req, &other)
	if other.Cached {
		t.Fatal("cache leaked across identities")
	}
	s.lib.Protect(classminer.Rule{Concept: "medicine/other", MinClearance: access.Student})
	var third searchResponse
	do(t, s, http.MethodPost, "/v1/search", "admin-tok", req, &third)
	if third.Cached {
		t.Fatal("generation bump did not invalidate cache")
	}

	// Malformed queries are 400s.
	if code := do(t, s, http.MethodPost, "/v1/search", "admin-tok", map[string]any{"k": 3}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty query = %d, want 400", code)
	}
	bad := map[string]any{"query": []float64{1, 2, 3}}
	if code := do(t, s, http.MethodPost, "/v1/search", "admin-tok", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("wrong dims = %d, want 400", code)
	}
	if code := do(t, s, http.MethodPost, "/v1/search", "admin-tok", map[string]any{"video": "nope"}, nil); code != http.StatusNotFound {
		t.Fatal("search by unknown video must 404")
	}
}

func TestEventsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp struct {
		Kind   string           `json:"kind"`
		Scenes []eventSceneJSON `json:"scenes"`
	}
	if code := do(t, s, http.MethodGet, "/v1/events/dialog", "admin-tok", nil, &resp); code != http.StatusOK {
		t.Fatalf("events = %d", code)
	}
	if resp.Kind != "dialog" {
		t.Fatalf("kind = %q", resp.Kind)
	}
	for _, sc := range resp.Scenes {
		if sc.Video == "" || sc.EndFrame <= sc.StartFrame {
			t.Fatalf("bad scene ref: %+v", sc)
		}
	}
	// The protected clinical category is invisible to a public viewer.
	var pub struct {
		Scenes []eventSceneJSON `json:"scenes"`
	}
	do(t, s, http.MethodGet, "/v1/events/clinical-operation", "pub-tok", nil, &pub)
	if len(pub.Scenes) != 0 {
		t.Fatalf("public sees %d protected clinical scenes", len(pub.Scenes))
	}
	if code := do(t, s, http.MethodGet, "/v1/events/opera", "admin-tok", nil, nil); code != http.StatusBadRequest {
		t.Fatal("unknown kind must 400")
	}
}

func TestIngestSavedResultAsync(t *testing.T) {
	s := newTestServer(t, Options{})
	ve := s.lib.Video("laparoscopy")
	saved, err := store.EncodeResult(ve.Result)
	if err != nil {
		t.Fatal(err)
	}
	before := s.lib.Stats()

	var job Job
	body := map[string]any{"saved": saved, "subcluster": "nursing", "name": "lap-mirror"}
	if code := do(t, s, http.MethodPost, "/v1/videos", "clin-tok", body, &job); code != http.StatusAccepted {
		t.Fatalf("ingest = %d", code)
	}
	if job.ID == "" {
		t.Fatalf("job = %+v", job)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st Job
		if code := do(t, s, http.MethodGet, "/v1/jobs/"+job.ID, "clin-tok", nil, &st); code != http.StatusOK {
			t.Fatalf("job poll = %d", code)
		}
		if st.Status == JobDone {
			break
		}
		if st.Status == JobFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	after := s.lib.Stats()
	if after.Videos != before.Videos+1 || after.IndexedShots <= before.IndexedShots {
		t.Fatalf("before %+v after %+v", before, after)
	}
	if after.IndexStale {
		t.Fatal("index left stale after ingest")
	}
	if code := do(t, s, http.MethodGet, "/v1/videos/lap-mirror", "clin-tok", nil, nil); code != http.StatusOK {
		t.Fatal("ingested video not served")
	}
	// Duplicate names are rejected synchronously.
	if code := do(t, s, http.MethodPost, "/v1/videos", "clin-tok", body, nil); code != http.StatusConflict {
		t.Fatal("duplicate ingest must 409")
	}
	// Validation failures are synchronous 400s.
	for _, bad := range []map[string]any{
		{"subcluster": "astrology", "corpus": "laparoscopy"},
		// A real concept that is not a subcluster: placement there would
		// escape the protection subtrees, so it must be rejected too.
		{"subcluster": "health care", "corpus": "laparoscopy"},
		{"subcluster": "medicine/dialog", "corpus": "laparoscopy"},
		{"subcluster": "medicine"},
		{"subcluster": "medicine", "corpus": "laparoscopy", "saved": saved},
		{"subcluster": "medicine", "corpus": "home-movies"},
	} {
		if code := do(t, s, http.MethodPost, "/v1/videos", "clin-tok", bad, nil); code != http.StatusBadRequest {
			t.Fatalf("bad ingest %v = %d, want 400", bad, code)
		}
	}
}

func TestAdminSaveWritesLoadableSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	s := newTestServer(t, Options{SnapshotPath: path})
	var resp map[string]string
	if code := do(t, s, http.MethodPost, "/v1/admin/save", "admin-tok", nil, &resp); code != http.StatusOK {
		t.Fatalf("save = %d (%v)", code, resp)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := classminer.LoadLibrary(f, a)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().Videos == 0 {
		t.Fatal("snapshot empty")
	}

	noPath := newTestServer(t, Options{})
	if code := do(t, noPath, http.MethodPost, "/v1/admin/save", "admin-tok", nil, nil); code != http.StatusNotImplemented {
		t.Fatal("save without a snapshot path must 501")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	// Warm the cache so hit/miss counters are meaningful.
	req := map[string]any{"video": "laparoscopy", "shot": 1, "k": 3}
	do(t, s, http.MethodPost, "/v1/search", "admin-tok", req, nil)
	do(t, s, http.MethodPost, "/v1/search", "admin-tok", req, nil)

	var resp struct {
		Library  classminer.LibraryStats `json:"library"`
		Cache    cacheStats              `json:"cache"`
		Ingest   poolStats               `json:"ingest"`
		Requests int64                   `json:"requests"`
	}
	if code := do(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil, &resp); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if resp.Library.Videos == 0 || resp.Library.IndexedShots == 0 {
		t.Fatalf("library stats = %+v", resp.Library)
	}
	if resp.Cache.Hits == 0 || resp.Cache.Misses == 0 {
		t.Fatalf("cache stats = %+v", resp.Cache)
	}
	if resp.Requests < 3 {
		t.Fatalf("requests = %d", resp.Requests)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Options{})
	if code := do(t, s, http.MethodDelete, "/v1/videos", "admin-tok", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatal("DELETE /v1/videos must 405")
	}
	if code := do(t, s, http.MethodGet, "/v1/search", "admin-tok", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatal("GET /v1/search must 405")
	}
	if code := do(t, s, http.MethodGet, "/v1/admin/save", "admin-tok", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatal("GET /v1/admin/save must 405")
	}
}

// TestConcurrentSearchDuringIngest hammers the query path while an ingest
// job registers a video and swaps the index — the serving guarantee the
// copy-on-write Library exists for. Run with -race.
func TestConcurrentSearchDuringIngest(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	saved, err := store.EncodeResult(s.lib.Video("laparoscopy").Result)
	if err != nil {
		t.Fatal(err)
	}
	base := s.lib.Stats().Videos
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := map[string]any{"video": "laparoscopy", "shot": (w + i) % 3, "k": 4}
				var resp searchResponse
				if code := do(t, s, http.MethodPost, "/v1/search", "admin-tok", req, &resp); code != http.StatusOK {
					t.Errorf("search during ingest = %d", code)
					return
				}
				if len(resp.Hits) == 0 {
					t.Error("search during ingest returned nothing")
					return
				}
				do(t, s, http.MethodGet, "/v1/events/dialog", "pub-tok", nil, nil)
			}
		}(w)
	}
	for i := 0; i < 3; i++ {
		body := map[string]any{"saved": saved, "subcluster": "dentistry", "name": fmt.Sprintf("race-%d", i)}
		if code := do(t, s, http.MethodPost, "/v1/videos", "admin-tok", body, nil); code != http.StatusAccepted {
			t.Fatalf("ingest %d = %d", i, code)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for s.lib.Stats().Videos < base+3 || s.lib.IndexStale() {
		if time.Now().After(deadline) {
			t.Fatal("ingest jobs did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
