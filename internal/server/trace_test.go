package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"classminer"
	"classminer/internal/trace"
)

// tracesPage decodes the GET /debug/traces envelope.
type tracesPage struct {
	Traces []*trace.View `json:"traces"`
	Stats  trace.Stats   `json:"stats"`
}

func findTrace(views []*trace.View, rid string) *trace.View {
	for _, v := range views {
		if v.RequestID == rid {
			return v
		}
	}
	return nil
}

func spanSet(v *trace.View) map[string]bool {
	names := map[string]bool{}
	for _, sp := range v.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestDebugTracesCaptureAndGating drives a search through the full stack in
// keep-every-trace mode and asserts the trace ring serves it back — request
// id matching the X-Request-Id header, with the admission, auth, cache and
// search-stage spans — and that the endpoint is Administrator-gated.
func TestDebugTracesCaptureAndGating(t *testing.T) {
	var logMu sync.Mutex
	var logLines []string
	s := newTestServer(t, Options{
		TraceSlow: -1, // keep every trace
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logLines = append(logLines, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})

	body := map[string]any{"video": "laparoscopy", "shot": 0, "k": 3}
	w := doRaw(t, s, http.MethodPost, "/v1/search", "admin-tok", body)
	if w.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", w.Code, w.Body.String())
	}
	rid := w.Header().Get("X-Request-Id")
	if len(rid) != 16 {
		t.Fatalf("X-Request-Id = %q, want 16 hex chars", rid)
	}

	var page tracesPage
	if code := do(t, s, http.MethodGet, "/debug/traces", "admin-tok", nil, &page); code != http.StatusOK {
		t.Fatalf("debug/traces = %d", code)
	}
	v := findTrace(page.Traces, rid)
	if v == nil {
		t.Fatalf("no trace with requestId %q in %d traces", rid, len(page.Traces))
	}
	if v.Route != "/v1/search" || v.Status != http.StatusOK {
		t.Fatalf("trace = %s %d, want /v1/search 200", v.Route, v.Status)
	}
	names := spanSet(v)
	for _, want := range []string{"request", "admit", "auth", "resolve", "cache.get", "search", "project", "scan", "rank", "filter", "cache.put"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, v.Spans)
		}
	}
	if page.Stats.Kept == 0 || page.Stats.Started == 0 {
		t.Fatalf("stats = %+v, want nonzero started/kept", page.Stats)
	}

	// The request log line carries the id, and keep-all mode means the tail
	// sampler fired, so the structured slow line names the same trace.
	var sawReq, sawSlow bool
	logMu.Lock()
	lines := append([]string(nil), logLines...)
	logMu.Unlock()
	for _, line := range lines {
		if strings.Contains(line, "/v1/search") && strings.Contains(line, "rid="+rid) {
			sawReq = true
		}
		if strings.HasPrefix(line, "slow request rid="+rid) {
			sawSlow = true
		}
	}
	if !sawReq {
		t.Errorf("request log line with rid=%s missing from %q", rid, logLines)
	}
	if !sawSlow {
		t.Errorf("slow-request line for rid=%s missing from %q", rid, logLines)
	}

	// Filters.
	var filtered tracesPage
	if code := do(t, s, http.MethodGet, "/debug/traces?route=/v1/search", "admin-tok", nil, &filtered); code != http.StatusOK {
		t.Fatalf("route filter = %d", code)
	}
	if len(filtered.Traces) == 0 {
		t.Fatal("route filter dropped the search trace")
	}
	for _, fv := range filtered.Traces {
		if fv.Route != "/v1/search" {
			t.Fatalf("route filter leaked %q", fv.Route)
		}
	}
	if code := do(t, s, http.MethodGet, "/debug/traces?min_ms=3600000", "admin-tok", nil, &filtered); code != http.StatusOK {
		t.Fatalf("min_ms filter = %d", code)
	} else if findTrace(filtered.Traces, rid) != nil {
		t.Fatal("an hour-long min_ms still matched a fast request")
	}
	if code := do(t, s, http.MethodGet, "/debug/traces?status=5xx", "admin-tok", nil, &filtered); code != http.StatusOK {
		t.Fatalf("status filter = %d", code)
	} else if findTrace(filtered.Traces, rid) != nil {
		t.Fatal("status=5xx matched a 200 trace")
	}
	if code := do(t, s, http.MethodGet, "/debug/traces?min_ms=abc", "admin-tok", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad min_ms = %d, want 400", code)
	}
	if code := do(t, s, http.MethodGet, "/debug/traces?status=bogus", "admin-tok", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad status = %d, want 400", code)
	}

	// Clearance gate: anything below Administrator gets 403.
	for _, tok := range []string{"clin-tok", "pub-tok"} {
		if code := do(t, s, http.MethodGet, "/debug/traces", tok, nil, nil); code != http.StatusForbidden {
			t.Fatalf("debug/traces as %s = %d, want 403", tok, code)
		}
	}

	// /v1/stats surfaces the exemplar pointing back into the ring.
	var stats struct {
		Traces struct {
			Exemplars map[string]trace.Exemplar `json:"exemplars"`
		} `json:"traces"`
	}
	if code := do(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	ex, ok := stats.Traces.Exemplars["/v1/search"]
	if !ok || ex.TraceID == "" {
		t.Fatalf("stats exemplars = %+v, want a /v1/search entry", stats.Traces.Exemplars)
	}
}

// TestDebugTracesDisabled: with tracing off the endpoint is
// indistinguishable from an unknown route, even for an administrator.
func TestDebugTracesDisabled(t *testing.T) {
	s := newTestServer(t, Options{DisableTracing: true})
	if code := do(t, s, http.MethodGet, "/debug/traces", "admin-tok", nil, nil); code != http.StatusNotFound {
		t.Fatalf("debug/traces with tracing disabled = %d, want 404", code)
	}
	// Requests still get ids without a tracer.
	w := doRaw(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil)
	if w.Code != http.StatusOK || w.Header().Get("X-Request-Id") == "" {
		t.Fatalf("stats = %d, X-Request-Id = %q", w.Code, w.Header().Get("X-Request-Id"))
	}
}

// TestTraceparentPropagation: a valid inbound traceparent is adopted (same
// trace id, our root span as the new parent, sampled honoured) and echoed;
// a malformed one is silently ignored per the W3C spec — never a 400.
func TestTraceparentPropagation(t *testing.T) {
	s := newTestServer(t, Options{TraceSlow: -1})

	const inboundTrace = "0123456789abcdef0123456789abcdef"
	const inboundSpan = "00f067aa0ba902b7"
	r := httptest.NewRequest(http.MethodGet, "/v1/videos", nil)
	r.Header.Set("X-Api-Token", "admin-tok")
	r.Header.Set("Traceparent", "00-"+inboundTrace+"-"+inboundSpan+"-01")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("traced list = %d", w.Code)
	}
	rid := w.Header().Get("X-Request-Id")
	echo := w.Header().Get("Traceparent")
	want := "00-" + inboundTrace + "-" + rid + "-01"
	if echo != want {
		t.Fatalf("Traceparent echo = %q, want %q", echo, want)
	}
	var page tracesPage
	if code := do(t, s, http.MethodGet, "/debug/traces", "admin-tok", nil, &page); code != http.StatusOK {
		t.Fatalf("debug/traces = %d", code)
	}
	v := findTrace(page.Traces, rid)
	if v == nil {
		t.Fatalf("no trace for rid %s", rid)
	}
	if v.TraceID != inboundTrace || v.RemoteParent != inboundSpan {
		t.Fatalf("trace id/parent = %s/%s, want %s/%s", v.TraceID, v.RemoteParent, inboundTrace, inboundSpan)
	}

	for _, bad := range []string{"zz-nope", "00-" + inboundTrace, "not a traceparent"} {
		r := httptest.NewRequest(http.MethodGet, "/v1/videos", nil)
		r.Header.Set("X-Api-Token", "admin-tok")
		r.Header.Set("Traceparent", bad)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("malformed traceparent %q = %d, want 200 (ignored, not rejected)", bad, w.Code)
		}
		if echo := w.Header().Get("Traceparent"); strings.Contains(echo, inboundTrace) {
			t.Fatalf("malformed traceparent %q adopted the old trace id: %q", bad, echo)
		}
	}
}

// TestPanicRecoveryWrites exercises both recovery paths: a panic before any
// write gets the 500 envelope; a panic after a partial write must NOT have
// a second status/body appended. Both bump http_panics_total and keep the
// trace as an error.
func TestPanicRecoveryWrites(t *testing.T) {
	s := newTestServer(t, Options{TraceSlow: time.Hour}) // only errors are kept

	early := s.withTrace(s.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom-early")
	})))
	w := httptest.NewRecorder()
	early.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/panic", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("early panic = %d, want 500", w.Code)
	}
	if !strings.Contains(w.Body.String(), "internal error") {
		t.Fatalf("early panic body = %q, want the error envelope", w.Body.String())
	}

	mid := s.withTrace(s.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("partial"))
		panic("boom-mid")
	})))
	w = httptest.NewRecorder()
	mid.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/panic", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("mid-response panic rewrote the status to %d", w.Code)
	}
	if got := w.Body.String(); got != "partial" {
		t.Fatalf("mid-response panic body = %q, want exactly %q (no appended envelope)", got, "partial")
	}

	// Both panics were recovered and counted...
	var sb strings.Builder
	if err := s.opts.Metrics.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "http_panics_total 2") {
		t.Fatalf("metrics missing http_panics_total 2:\n%s", sb.String())
	}
	// ...and both traces were kept by the tail sampler as errors.
	var kept int
	for _, v := range s.tracer.Recent() {
		if v.Reason == "error" && strings.Contains(v.Err, "boom") {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("kept %d panic traces, want 2", kept)
	}
}

// TestJobTraceCarriesRequestID: the request id of the 202 rides on the job
// record, the worker's log lines, and the job's own trace — which, on a
// durable library, shows the register/encode/install stages and the WAL
// group-commit park-or-lead span.
func TestJobTraceCarriesRequestID(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := classminer.Recover(t.TempDir(), a, classminer.DurableOptions{
		CheckpointBytes: -1, CheckpointRecords: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var logMu sync.Mutex
	var logLines []string
	s := New(lib, Options{
		Tokens:    testTokens(),
		TraceSlow: -1,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logLines = append(logLines, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	defer func() {
		s.Close()
		if err := lib.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	req := map[string]any{"subcluster": "medicine", "saved": tinySavedResult("traced-ingest", 7, 4)}
	w := doRaw(t, s, http.MethodPost, "/v1/videos", "admin-tok", req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body.String())
	}
	rid := w.Header().Get("X-Request-Id")
	var job Job
	if err := json.Unmarshal(w.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	if job.RequestID != rid {
		t.Fatalf("202 job requestId = %q, want %q", job.RequestID, rid)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var got Job
		if code := do(t, s, http.MethodGet, "/v1/jobs/"+job.ID, "admin-tok", nil, &got); code != http.StatusOK {
			t.Fatalf("job poll = %d", code)
		}
		if got.Status == JobDone {
			if got.RequestID != rid {
				t.Fatalf("finished job requestId = %q, want %q", got.RequestID, rid)
			}
			break
		}
		if got.Status == JobFailed {
			t.Fatalf("ingest failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest stuck in %s", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var jobView *trace.View
	for _, v := range s.tracer.Recent() {
		if v.Route == "job" && v.RequestID == rid {
			jobView = v
			break
		}
	}
	if jobView == nil {
		t.Fatalf("no job trace with requestId %s", rid)
	}
	names := spanSet(jobView)
	for _, want := range []string{"job", "register", "encode", "install"} {
		if !names[want] {
			t.Errorf("job trace missing span %q (have %v)", want, jobView.Spans)
		}
	}
	if !names["wal.park"] && !names["wal.fsync.lead"] {
		t.Errorf("job trace has no WAL group-commit span (have %v)", jobView.Spans)
	}

	var sawQueued, sawDone bool
	logMu.Lock()
	lines := append([]string(nil), logLines...)
	logMu.Unlock()
	for _, line := range lines {
		if strings.Contains(line, "queued ingest") && strings.Contains(line, "rid="+rid) {
			sawQueued = true
		}
		if strings.Contains(line, "ingested") && strings.Contains(line, "rid="+rid) {
			sawDone = true
		}
	}
	if !sawQueued || !sawDone {
		t.Fatalf("job log lines missing rid=%s (queued=%v done=%v): %q", rid, sawQueued, sawDone, logLines)
	}
}
