package server

import (
	"net/http"
	"reflect"
	"testing"
)

func TestSearchBatchEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	// Warm the cache with a single-item search for shot 0.
	single := map[string]any{"video": "laparoscopy", "shot": 0, "k": 5}
	var warm searchResponse
	if code := do(t, s, http.MethodPost, "/v1/search", "admin-tok", single, &warm); code != http.StatusOK {
		t.Fatalf("warm search = %d", code)
	}
	batch := map[string]any{
		"k": 5,
		"items": []map[string]any{
			{"video": "laparoscopy", "shot": 0},
			{"video": "laparoscopy", "shot": 1},
			{"video": "laparoscopy", "shot": 2},
		},
	}
	var resp batchSearchResponse
	if code := do(t, s, http.MethodPost, "/v1/search/batch", "admin-tok", batch, &resp); code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if !resp.Results[0].Cached {
		t.Fatal("item 0 was warmed by the single search but missed the cache")
	}
	if resp.Results[1].Cached || resp.Results[2].Cached {
		t.Fatal("cold items reported as cached")
	}
	// The warmed item must be byte-for-byte the single-search answer.
	if len(resp.Results[0].Hits) != len(warm.Hits) {
		t.Fatalf("batch item 0 hits = %d, single = %d", len(resp.Results[0].Hits), len(warm.Hits))
	}
	for i, h := range warm.Hits {
		if !reflect.DeepEqual(resp.Results[0].Hits[i], h) {
			t.Fatalf("batch item 0 hit %d = %+v, single = %+v", i, resp.Results[0].Hits[i], h)
		}
	}
	// Every fresh batch answer lands in the cache individually.
	var again batchSearchResponse
	do(t, s, http.MethodPost, "/v1/search/batch", "admin-tok", batch, &again)
	for i, r := range again.Results {
		if !r.Cached {
			t.Fatalf("repeat batch item %d not cached", i)
		}
	}
	// And single-item searches hit what the batch cached.
	var after searchResponse
	do(t, s, http.MethodPost, "/v1/search", "admin-tok",
		map[string]any{"video": "laparoscopy", "shot": 2, "k": 5}, &after)
	if !after.Cached {
		t.Fatal("single search missed the batch-populated cache")
	}
	// Each item's answer must equal its single-search answer.
	for shot := 1; shot <= 2; shot++ {
		var want searchResponse
		do(t, s, http.MethodPost, "/v1/search", "admin-tok",
			map[string]any{"video": "laparoscopy", "shot": shot, "k": 5}, &want)
		got := resp.Results[shot]
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("shot %d: batch %d hits, single %d", shot, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			if !reflect.DeepEqual(got.Hits[i], want.Hits[i]) {
				t.Fatalf("shot %d hit %d: batch %+v, single %+v", shot, i, got.Hits[i], want.Hits[i])
			}
		}
	}
}

func TestSearchBatchDuplicateItems(t *testing.T) {
	s := newTestServer(t, Options{})
	batch := map[string]any{
		"k": 4,
		"items": []map[string]any{
			{"video": "laparoscopy", "shot": 7},
			{"video": "laparoscopy", "shot": 8},
			{"video": "laparoscopy", "shot": 7}, // duplicate: one search serves both
		},
	}
	var resp batchSearchResponse
	if code := do(t, s, http.MethodPost, "/v1/search/batch", "admin-tok", batch, &resp); code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if !reflect.DeepEqual(resp.Results[0], resp.Results[2]) {
		t.Fatalf("duplicate items answered differently:\n%+v\n%+v", resp.Results[0], resp.Results[2])
	}
	if reflect.DeepEqual(resp.Results[0].Hits, resp.Results[1].Hits) {
		t.Fatal("distinct items share an answer")
	}
}

func TestSearchBatchValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"empty items", map[string]any{"k": 5}, http.StatusBadRequest},
		{"per-item k", map[string]any{"items": []map[string]any{
			{"video": "laparoscopy", "shot": 0, "k": 3}}}, http.StatusBadRequest},
		{"unknown video", map[string]any{"items": []map[string]any{
			{"video": "nope", "shot": 0}}}, http.StatusNotFound},
		{"bad dims", map[string]any{"items": []map[string]any{
			{"query": []float64{1, 2, 3}}}}, http.StatusBadRequest},
		{"shot out of range", map[string]any{"items": []map[string]any{
			{"video": "laparoscopy", "shot": 99999}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := do(t, s, http.MethodPost, "/v1/search/batch", "admin-tok", tc.body, nil); code != tc.want {
			t.Fatalf("%s = %d, want %d", tc.name, code, tc.want)
		}
	}
	items := make([]map[string]any, maxBatchItems+1)
	for i := range items {
		items[i] = map[string]any{"video": "laparoscopy", "shot": 0}
	}
	if code := do(t, s, http.MethodPost, "/v1/search/batch", "admin-tok",
		map[string]any{"items": items}, nil); code != http.StatusBadRequest {
		t.Fatal("oversized batch must 400")
	}
	if code := do(t, s, http.MethodGet, "/v1/search/batch", "admin-tok", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatal("GET on batch must 405")
	}
}
