package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"classminer/internal/admit"
)

// TestAdmitConcurrentBurstExact429: a burst far past the limit gets exactly
// Burst successes — even with every request racing — and the rejects carry
// the Retry-After / X-RateLimit-* contract. Run with -race.
func TestAdmitConcurrentBurstExact429(t *testing.T) {
	s := newTestServer(t, Options{
		Rate: 0.5, Burst: 5, // Public tier is 1x, so pub-tok gets exactly this
		MaxInflight: -1, ReqTimeout: -1, // isolate the rate limiter
	})

	const n = 64
	var ok, limited atomic.Int64
	var mu sync.Mutex
	var denied http.Header
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			r := httptest.NewRequest(http.MethodGet, "/v1/videos", nil)
			r.Header.Set("X-Api-Token", "pub-tok")
			w := httptest.NewRecorder()
			s.ServeHTTP(w, r)
			switch w.Code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				limited.Add(1)
				mu.Lock()
				denied = w.Header().Clone()
				mu.Unlock()
			default:
				t.Errorf("unexpected status %d: %s", w.Code, w.Body.String())
			}
		}()
	}
	wg.Wait()

	// The burst completes in well under a token's refill time (2s at rate
	// 0.5), so the allowed count is exact, not approximate.
	if ok.Load() != 5 || limited.Load() != n-5 {
		t.Fatalf("burst of %d: %d ok, %d limited; want exactly 5 ok", n, ok.Load(), limited.Load())
	}
	retry, err := strconv.Atoi(denied.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("429 Retry-After = %q, want integer >= 1", denied.Get("Retry-After"))
	}
	if got := denied.Get("X-RateLimit-Limit"); got != "5" {
		t.Fatalf("X-RateLimit-Limit = %q, want 5", got)
	}
	if got := denied.Get("X-RateLimit-Remaining"); got != "0" {
		t.Fatalf("X-RateLimit-Remaining = %q, want 0", got)
	}
	if denied.Get("X-RateLimit-Reset") == "" {
		t.Fatalf("429 missing X-RateLimit-Reset")
	}

	// Buckets are per token: a different caller is not collateral damage.
	if code := do(t, s, http.MethodGet, "/v1/videos", "clin-tok", nil, nil); code != http.StatusOK {
		t.Fatalf("other token after burst = %d, want 200", code)
	}
	// Health stays exempt even for the throttled caller's token.
	r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	r.Header.Set("X-Api-Token", "pub-tok")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz during throttle = %d, want 200", w.Code)
	}
}

// TestAdmitSaturatedGateSheds: with one search slot held by a stuck request,
// further arrivals park at most MaxWait and then shed with 503 — no
// goroutine pile-up, and service resumes the moment the slot frees.
func TestAdmitSaturatedGateSheds(t *testing.T) {
	s := newTestServer(t, Options{
		MaxInflight: 1, MaxWait: 5 * time.Millisecond,
		ReqTimeout: -1, // a request deadline would free the slot; keep it stuck
	})

	// Occupy the only slot: a search whose body never arrives blocks the
	// handler inside the JSON decode while it holds the gate.
	pr, pw := io.Pipe()
	holdDone := make(chan int, 1)
	go func() {
		r := httptest.NewRequest(http.MethodPost, "/v1/search", pr)
		r.Header.Set("X-Api-Token", "clin-tok")
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		holdDone <- w.Code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.admit.gates[admit.ClassSearch].InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("occupier never acquired the search slot")
		}
		time.Sleep(time.Millisecond)
	}

	const n = 4
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			r := httptest.NewRequest(http.MethodGet, "/v1/videos", nil)
			r.Header.Set("X-Api-Token", "clin-tok")
			w := httptest.NewRecorder()
			s.ServeHTTP(w, r)
			if w.Code != http.StatusServiceUnavailable {
				t.Errorf("saturated search = %d, want 503: %s", w.Code, w.Body.String())
			}
			if w.Header().Get("Retry-After") == "" {
				t.Errorf("503 shed missing Retry-After")
			}
		}()
	}
	wg.Wait()
	if got := s.admit.rejected[rejConcurrency].Load(); got < n {
		t.Fatalf("concurrency rejections = %d, want >= %d", got, n)
	}

	// Unstick the occupier (bad body -> 400) and confirm recovery.
	pw.CloseWithError(io.ErrClosedPipe)
	if code := <-holdDone; code != http.StatusBadRequest {
		t.Fatalf("occupier finished with %d, want 400", code)
	}
	if code := do(t, s, http.MethodGet, "/v1/videos", "clin-tok", nil, nil); code != http.StatusOK {
		t.Fatalf("after slot freed = %d, want 200", code)
	}
}

// TestAdmitDeadlineExceeded503: a request that blows its deadline gets a
// clean 503, not a half-written late answer.
func TestAdmitDeadlineExceeded503(t *testing.T) {
	s := newTestServer(t, Options{ReqTimeout: time.Nanosecond, MaxInflight: -1})

	body := bytes.NewReader([]byte(`{"video":"laparoscopy","shot":0,"k":3}`))
	r := httptest.NewRequest(http.MethodPost, "/v1/search", body)
	r.Header.Set("X-Api-Token", "clin-tok")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired search = %d, want 503: %s", w.Code, w.Body.String())
	}
	if got := s.admit.rejected[rejDeadline].Load(); got != 1 {
		t.Fatalf("deadline rejections = %d, want 1", got)
	}
}

// TestAdmitDegradeThenRecover drives the memory watchdog with an injected
// heap sampler: over budget, ingest sheds with 503 while searches keep
// answering and background refits pause; back under budget, everything
// recovers with no restart.
func TestAdmitDegradeThenRecover(t *testing.T) {
	var heap atomic.Uint64
	heap.Store(100)
	s := newTestServer(t, Options{
		MemBudget:        1000,
		HeapSample:       heap.Load,
		MemCheckInterval: time.Hour, // the test drives sampling via Poke
		MaxInflight:      -1,
		ReqTimeout:       -1,
	})

	if lvl := s.admit.watchdog.Poke(); lvl != admit.LevelNormal {
		t.Fatalf("level at 10%% of budget = %v, want normal", lvl)
	}

	heap.Store(990) // 99% of budget: straight to the last rung
	if lvl := s.admit.watchdog.Poke(); lvl != admit.LevelRejectIngest {
		t.Fatalf("level at 99%% of budget = %v, want reject-ingest", lvl)
	}
	if !s.rebuilder.Paused() {
		t.Fatal("rebuilder not paused under memory pressure")
	}

	// Writes shed; reads stay live.
	ingest := map[string]any{"corpus": "face-repair", "subcluster": "medicine"}
	ingestBody, err := json.Marshal(ingest)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/videos", bytes.NewReader(ingestBody))
	r.Header.Set("X-Api-Token", "clin-tok")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest under pressure = %d, want 503: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("memory-pressure 503 missing Retry-After")
	}
	if code := do(t, s, http.MethodGet, "/v1/videos", "pub-tok", nil, nil); code != http.StatusOK {
		t.Fatalf("search under pressure = %d, want 200 (reads must stay live)", code)
	}
	var stats struct {
		Admission struct {
			DegradeLevel string            `json:"degradeLevel"`
			Rejected     map[string]uint64 `json:"rejected"`
		} `json:"admission"`
	}
	if code := do(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Admission.DegradeLevel != "reject-ingest" {
		t.Fatalf("stats degrade level = %q, want reject-ingest", stats.Admission.DegradeLevel)
	}
	if stats.Admission.Rejected["memory"] == 0 {
		t.Fatal("stats show no memory rejections after an ingest shed")
	}

	// Pressure clears: automatic recovery, no restart.
	heap.Store(100)
	if lvl := s.admit.watchdog.Poke(); lvl != admit.LevelNormal {
		t.Fatalf("level after recovery = %v, want normal", lvl)
	}
	if s.rebuilder.Paused() {
		t.Fatal("rebuilder still paused after recovery")
	}
	if code := do(t, s, http.MethodPost, "/v1/videos", "clin-tok", ingest, nil); code != http.StatusAccepted {
		t.Fatalf("ingest after recovery = %d, want 202", code)
	}
}

// TestRouteClass pins the request taxonomy: probes exempt, admin and writes
// on their own narrower gates, everything else search.
func TestRouteClass(t *testing.T) {
	cases := []struct {
		method, path string
		class        admit.Class
		exempt       bool
	}{
		{http.MethodGet, "/healthz", 0, true},
		{http.MethodGet, "/metrics", 0, true},
		{http.MethodPost, "/v1/search", admit.ClassSearch, false},
		{http.MethodGet, "/v1/videos", admit.ClassSearch, false},
		{http.MethodGet, "/v1/videos/laparoscopy", admit.ClassSearch, false},
		{http.MethodGet, "/v1/jobs/job-1", admit.ClassSearch, false},
		{http.MethodPost, "/v1/videos", admit.ClassMutate, false},
		{http.MethodDelete, "/v1/videos/laparoscopy", admit.ClassMutate, false},
		{http.MethodPost, "/v1/admin/save", admit.ClassAdmin, false},
		{http.MethodGet, "/debug/pprof/heap", admit.ClassAdmin, false},
	}
	for _, c := range cases {
		class, exempt := routeClass(c.method, c.path)
		if exempt != c.exempt || (!exempt && class != c.class) {
			t.Errorf("routeClass(%s %s) = (%v, %v), want (%v, %v)",
				c.method, c.path, class, exempt, c.class, c.exempt)
		}
	}
}
