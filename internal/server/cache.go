package server

import (
	"container/list"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"

	"classminer/internal/access"
)

// cacheKey identifies one search answer. Generation makes invalidation
// free: when the library or its policy changes, Library.Generation moves
// and every older entry simply stops being addressable (LRU eviction
// reclaims it). Identity (clearance + roles) is part of the key because
// the policy filter makes the same query answer differently per user.
type cacheKey struct {
	gen       int64
	clearance access.Clearance
	roles     string // sorted, lowercase, "|"-joined
	qhash     uint64
	k         int
}

// cacheEntry retains the full query so a 64-bit hash collision degrades to
// a miss, never to another query's results.
type cacheEntry struct {
	key   cacheKey
	query []float64
	resp  searchResponse
}

// searchCache is a mutex-guarded LRU over recent search responses.
type searchCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used
	byKey        map[cacheKey]*list.Element
	hits, misses int64
}

// newSearchCache builds a cache holding up to capacity entries;
// capacity <= 0 disables caching (every lookup misses, Put is a no-op).
func newSearchCache(capacity int) *searchCache {
	return &searchCache{cap: capacity, ll: list.New(), byKey: map[cacheKey]*list.Element{}}
}

// makeKey hashes the query into a cache key for the given identity.
func makeKey(gen int64, u access.User, query []float64, k int) cacheKey {
	roles := append([]string(nil), u.Roles...)
	for i := range roles {
		roles[i] = strings.ToLower(roles[i])
	}
	sort.Strings(roles)
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range query {
		bits := math.Float64bits(v)
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return cacheKey{
		gen:       gen,
		clearance: u.Clearance,
		roles:     strings.Join(roles, "|"),
		qhash:     h.Sum64(),
		k:         k,
	}
}

// Get returns the cached response for (key, query), if any.
func (c *searchCache) Get(key cacheKey, query []float64) (searchResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if sameQuery(e.query, query) {
			c.ll.MoveToFront(el)
			c.hits++
			return e.resp, true
		}
	}
	c.misses++
	return searchResponse{}, false
}

// Put stores a response, evicting the least recently used entry when full.
func (c *searchCache) Put(key cacheKey, query []float64, resp searchResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	q := append([]float64(nil), query...)
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, query: q, resp: resp})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func sameQuery(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cacheStats is the /v1/stats slice of the cache.
type cacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
}

func (c *searchCache) Stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.cap}
}
