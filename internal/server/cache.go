package server

import (
	"container/list"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"classminer/internal/access"
)

// cacheKey identifies one search answer. Generation makes invalidation
// free: when the library or its policy changes, Library.Generation moves
// and every older entry simply stops being addressable (LRU eviction
// reclaims it). Identity (clearance + roles) is part of the key because
// the policy filter makes the same query answer differently per user.
type cacheKey struct {
	gen       int64
	clearance access.Clearance
	roles     string // sorted, lowercase, length-prefixed (see makeKey)
	qhash     uint64
	k         int
}

// cacheEntry retains the full query so a 64-bit hash collision degrades to
// a miss, never to another query's results.
type cacheEntry struct {
	key   cacheKey
	query []float64
	resp  searchResponse
}

// searchCache is a mutex-guarded LRU over recent search responses.
type searchCache struct {
	mu                      sync.Mutex
	cap                     int
	ll                      *list.List // front = most recently used
	byKey                   map[cacheKey]*list.Element
	hits, misses, evictions int64
}

// newSearchCache builds a cache holding up to capacity entries;
// capacity <= 0 disables caching (every lookup misses, Put is a no-op).
func newSearchCache(capacity int) *searchCache {
	return &searchCache{cap: capacity, ll: list.New(), byKey: map[cacheKey]*list.Element{}}
}

// makeKey hashes the query into a cache key for the given identity. Roles
// are length-prefixed rather than joined with a separator: a bare join
// would alias ["a|b"] with ["a","b"] — one cache identity for two distinct
// role sets, letting one user's policy-filtered answer leak to the other —
// because "|" is a legal character inside a role name.
func makeKey(gen int64, u access.User, query []float64, k int) cacheKey {
	roles := append([]string(nil), u.Roles...)
	for i := range roles {
		roles[i] = strings.ToLower(roles[i])
	}
	sort.Strings(roles)
	var rb strings.Builder
	for _, r := range roles {
		rb.WriteString(strconv.Itoa(len(r)))
		rb.WriteByte(':')
		rb.WriteString(r)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range query {
		bits := math.Float64bits(v)
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return cacheKey{
		gen:       gen,
		clearance: u.Clearance,
		roles:     rb.String(),
		qhash:     h.Sum64(),
		k:         k,
	}
}

// Get returns the cached response for (key, query), if any.
func (c *searchCache) Get(key cacheKey, query []float64) (searchResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if sameQuery(e.query, query) {
			c.ll.MoveToFront(el)
			c.hits++
			return e.resp, true
		}
	}
	c.misses++
	return searchResponse{}, false
}

// Put stores a response, evicting the least recently used entry when full.
func (c *searchCache) Put(key cacheKey, query []float64, resp searchResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if !sameQuery(e.query, query) {
			// A 64-bit qhash collision: two distinct queries share the key.
			// The stored query and response must always agree — updating
			// resp alone would hand this response to the *other* query's
			// callers, the exact poisoning Get's sameQuery guard exists to
			// prevent — so the entry is replaced wholesale (one slot per
			// key; latest query wins, the other degrades to a miss).
			e.query = append(e.query[:0], query...)
		}
		e.resp = resp
		c.ll.MoveToFront(el)
		return
	}
	q := append([]float64(nil), query...)
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, query: q, resp: resp})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// SetCapacity rebounds the cache, evicting LRU entries that no longer fit.
// The memory watchdog calls it to give discretionary memory back under heap
// pressure (and to restore it on recovery); capacity <= 0 empties the cache
// and disables Put.
func (c *searchCache) SetCapacity(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	for c.ll.Len() > max(capacity, 0) {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func sameQuery(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cacheStats is the /v1/stats slice of the cache.
type cacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

func (c *searchCache) Stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Capacity: c.cap,
	}
}
