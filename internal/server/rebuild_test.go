package server

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"classminer"
)

// TestRebuilderCoalescesIngestBurst pins the write-path contract: a burst
// of ingests costs at most a couple of full index rebuilds (the cold-start
// single-flight build plus, at most, one budget-driven background refit),
// not one per job — while every ingested video is searchable the moment
// its job reports done.
func TestRebuilderCoalescesIngestBurst(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := classminer.NewLibrary(a)
	s := New(lib, Options{
		Tokens:          testTokens(),
		Workers:         4,
		QueueDepth:      32,
		RebuildBudget:   0.5, // roomy: the burst should ride the overlay
		RebuildDebounce: 50 * time.Millisecond,
	})
	t.Cleanup(s.Close)

	const n = 12
	for i := 0; i < n; i++ {
		ingestAndWait(t, s, fmt.Sprintf("burst-%02d", i), int64(i))
		// Done means searchable: query the video's own first shot.
		req := map[string]any{"video": fmt.Sprintf("burst-%02d", i), "shot": 0, "k": 1}
		var resp struct {
			Hits []searchHit `json:"hits"`
		}
		if code := do(t, s, http.MethodPost, "/v1/search", "admin-tok", req, &resp); code != http.StatusOK {
			t.Fatalf("search after job %d = %d", i, code)
		}
		if len(resp.Hits) == 0 || resp.Hits[0].Video != fmt.Sprintf("burst-%02d", i) {
			t.Fatalf("video burst-%02d not searchable after its job finished: %+v", i, resp.Hits)
		}
	}
	// Let any debounced background refit land before counting.
	time.Sleep(300 * time.Millisecond)
	rebuilds := s.rebuilder.rebuilds.Load()
	if rebuilds > 3 {
		t.Fatalf("burst of %d ingests cost %d rebuilds, want <= 3 (coalescing broken)", n, rebuilds)
	}
	if lib.IndexStale() {
		t.Fatal("index stale after the burst settled")
	}
}

// TestRebuilderBudgetTriggersRefit: once the incremental overlay outgrows
// the staleness budget, the debounced background rebuilder refits without
// any explicit BuildIndex call.
func TestRebuilderBudgetTriggersRefit(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := classminer.NewLibrary(a)
	s := New(lib, Options{
		Tokens:          testTokens(),
		RebuildBudget:   0.2,
		RebuildDebounce: 20 * time.Millisecond,
	})
	t.Cleanup(s.Close)

	for i := 0; i < 4; i++ {
		ingestAndWait(t, s, fmt.Sprintf("seed-%02d", i), int64(i))
	}
	base := s.rebuilder.rebuilds.Load()
	// Blow well past 20% churn in one burst.
	for i := 0; i < 4; i++ {
		ingestAndWait(t, s, fmt.Sprintf("extra-%02d", i), int64(40+i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for lib.IndexStaleness() > 0.2 || lib.IndexStale() {
		if time.Now().After(deadline) {
			t.Fatalf("staleness %v still above budget; rebuilds=%d (budget trigger never fired)",
				lib.IndexStaleness(), s.rebuilder.rebuilds.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.rebuilder.rebuilds.Load(); got <= base {
		t.Fatalf("rebuild count %d did not advance past %d", got, base)
	}
}
