package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"classminer/internal/trace"
)

// rebuilder coalesces index rebuilds. The old write path refit the whole
// hierarchical index synchronously after every ingest job and every DELETE
// — O(library) work per mutation. With incremental index maintenance the
// library absorbs mutations into the serving index immediately, so a full
// refit is only warranted when the incremental overlay outgrows the
// staleness budget (or a mutation the overlay cannot absorb lands, e.g. a
// brand-new concept). The rebuilder is the single place that decides:
// mutations Kick it, kicks are debounced so a burst of N ingests costs at
// most one refit, and the refit itself is single-flight — concurrent
// requesters share one BuildIndex instead of queueing N of them.
type rebuilder struct {
	lib      Library
	budget   float64 // staleness fraction that warrants a refit
	debounce time.Duration
	logf     func(format string, args ...any)
	tracer   *trace.Tracer // nil disables rebuild traces

	kick      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// paused gates Kick: under memory pressure a full refit (which clones
	// the index) is exactly the allocation spike the watchdog is trying to
	// avoid, so background rebuilds stop until pressure clears. EnsureLive
	// ignores the pause — it is a correctness path (cold start, mutations
	// the overlay cannot absorb), not an optimization.
	paused atomic.Bool

	// buildMu makes rebuilds single-flight: whoever holds it re-checks the
	// need under the latest state, so callers queued behind a finished
	// rebuild return without building again.
	buildMu  sync.Mutex
	rebuilds atomic.Int64
	// coalesced counts kicks absorbed into an already-open debounce window
	// — the batching win the rebuilder exists for, now observable.
	coalesced atomic.Int64
}

func newRebuilder(lib Library, budget float64, debounce time.Duration, logf func(string, ...any), tracer *trace.Tracer) *rebuilder {
	r := &rebuilder{
		lib:      lib,
		budget:   budget,
		debounce: debounce,
		logf:     logf,
		tracer:   tracer,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Kick notes that a mutation happened. The background loop debounces kicks
// and refits only when the staleness budget says so; a kick is never lost
// (the channel holds one pending nudge) and never blocks the mutator.
// While paused (memory pressure), kicks are dropped — SetPaused(false)
// re-kicks to catch up on whatever landed meanwhile.
func (r *rebuilder) Kick() {
	if r.paused.Load() {
		return
	}
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// SetPaused gates background rebuilds. Unpausing kicks once: any mutations
// that landed during the pause get their coalesced refit now.
func (r *rebuilder) SetPaused(p bool) {
	was := r.paused.Swap(p)
	if was && !p {
		r.Kick()
	}
}

// Paused reports whether background rebuilds are currently gated off.
func (r *rebuilder) Paused() bool { return r.paused.Load() }

// EnsureLive brings the index up to date synchronously when it is stale —
// the cold-start path (first ingest into an empty library) and the fallback
// for mutations the incremental overlay could not absorb. Concurrent
// callers coalesce: they all wait on one BuildIndex and the rest find the
// index fresh when they get their turn.
func (r *rebuilder) EnsureLive() error {
	return r.rebuildIf(func() bool { return r.lib.Size() > 0 && r.lib.IndexStale() })
}

// rebuildIf runs one single-flight BuildIndex when need() still holds by
// the time the caller gets the build slot. A rebuild discarded by the
// library (a delete raced the fit) leaves need() true, so the loop retries
// until the fit sticks or the need disappears.
func (r *rebuilder) rebuildIf(need func() bool) error {
	r.buildMu.Lock()
	defer r.buildMu.Unlock()
	for attempt := 0; need(); attempt++ {
		if attempt == 8 {
			// Mutations are landing faster than fits complete; the index is
			// still serving incrementally, so yield rather than spin here.
			return nil
		}
		start := time.Now()
		// Each attempt gets its own trace: a refit has no originating
		// request, but operators want the same fit/swap breakdown in
		// /debug/traces that request-driven work gets.
		var sid [8]byte
		trace.PutUint64(sid[:], trace.RandU64())
		tr, root := r.tracer.StartTrace("rebuild", sid, "")
		ctx := context.Background()
		if root != nil {
			ctx = trace.With(ctx, root)
		}
		err := r.lib.BuildIndexCtx(ctx)
		meta := trace.Meta{Route: "rebuild"}
		if err != nil {
			meta.Err = err.Error()
		}
		r.tracer.Finish(tr, meta)
		if err != nil {
			return err
		}
		r.rebuilds.Add(1)
		r.logf("index rebuilt in %s (staleness now %.3f)", time.Since(start).Round(time.Millisecond), r.lib.IndexStaleness())
	}
	return nil
}

// loop services kicks: wait out the debounce window (absorbing further
// kicks — that is the batching), then refit only if the budget is blown.
func (r *rebuilder) loop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.kick:
		}
		t := time.NewTimer(r.debounce)
	drain:
		for {
			select {
			case <-r.done:
				t.Stop()
				return
			case <-r.kick:
				// Coalesced into the same window; the timer keeps its
				// original deadline so a steady mutation stream cannot
				// starve the rebuild forever.
				r.coalesced.Add(1)
			case <-t.C:
				break drain
			}
		}
		err := r.rebuildIf(func() bool { return r.lib.RebuildNeeded(r.budget) })
		if err != nil {
			r.logf("background index rebuild: %v", err)
		}
	}
}

// Close stops the background loop and waits for it (an in-flight rebuild
// finishes; the library swap it does is harmless after shutdown). Like
// ingestPool.Close it is idempotent — the daemon closes the server both
// explicitly before its shutdown checkpoint and via defer.
func (r *rebuilder) Close() {
	r.closeOnce.Do(func() { close(r.done) })
	r.wg.Wait()
}

// stats is the /v1/stats slice of the rebuilder.
type rebuilderStats struct {
	Rebuilds  int64   `json:"rebuilds"`
	Coalesced int64   `json:"coalesced"`
	Budget    float64 `json:"budget"`
	Staleness float64 `json:"staleness"`
	Paused    bool    `json:"paused"`
}

func (r *rebuilder) Stats() rebuilderStats {
	return rebuilderStats{
		Rebuilds:  r.rebuilds.Load(),
		Coalesced: r.coalesced.Load(),
		Budget:    r.budget,
		Staleness: r.lib.IndexStaleness(),
		Paused:    r.paused.Load(),
	}
}
