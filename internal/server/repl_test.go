package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"classminer"
	"classminer/internal/metrics"
	"classminer/internal/repl"
	"classminer/internal/wal"
)

// newDurableLib opens a durable library in a fresh directory with the
// background maintenance loops disabled.
func newDurableLib(t testing.TB) *classminer.Library {
	t.Helper()
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := classminer.Recover(t.TempDir(), a, classminer.DurableOptions{
		CheckpointBytes: -1, CheckpointRecords: -1, CompactBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// replPair wires a leader server (exporting its WAL over real HTTP) to a
// follower server replicating from it.
type replPair struct {
	leaderLib *classminer.Library
	leader    *Server
	leaderTS  *httptest.Server

	followerLib *classminer.Library
	follower    *repl.Follower
	fs          *Server
}

// newReplPair boots the leader+follower topology the failover tests drive.
// The caller owns shutdown ordering via the returned struct; pass nil
// registries to skip metrics.
func newReplPair(t testing.TB, leaderReg, followerReg *metrics.Registry) *replPair {
	t.Helper()
	p := &replPair{leaderLib: newDurableLib(t)}
	hub, err := repl.NewHub([]*wal.Engine{p.leaderLib.Engine()}, leaderReg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.leader = New(p.leaderLib, Options{Tokens: testTokens(), CacheSize: -1, ReplHub: hub, Metrics: leaderReg})
	p.leaderTS = httptest.NewServer(p.leader)

	p.followerLib = newDurableLib(t)
	p.follower, err = repl.Start(repl.Options{
		LeaderURL: p.leaderTS.URL,
		Token:     "admin-tok",
		ID:        "replica-1",
		Dir:       t.TempDir(),
		Appliers:  []repl.Applier{p.followerLib},
		PollWait:  100 * time.Millisecond,
		Metrics:   followerReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.fs = New(p.followerLib, Options{
		Tokens: testTokens(), CacheSize: -1,
		Follower: p.follower, LeaderURL: p.leaderTS.URL, Metrics: followerReg,
	})
	t.Cleanup(func() {
		p.follower.Close()
		p.fs.Close()
		p.followerLib.Close()
		if p.leader != nil {
			p.leader.Close()
		}
		if p.leaderLib != nil {
			p.leaderLib.Close()
		}
		p.leaderTS.Close()
	})
	return p
}

// waitConverged blocks until the follower is seeded, drained, and holds the
// same video set as the leader. Callers must have stopped leader writes.
func (p *replPair) waitConverged(t testing.TB) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		drained := true
		for _, st := range p.follower.Stats() {
			if !st.Seeded || st.LagRecords != 0 {
				drained = false
			}
		}
		if drained && reflect.DeepEqual(p.followerLib.VideoNames(), p.leaderLib.VideoNames()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: stats=%+v leader=%v follower=%v",
				p.follower.Stats(), p.leaderLib.VideoNames(), p.followerLib.VideoNames())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// identicalSearches asserts both servers answer a fixed query set with
// byte-identical bodies, full-fitting both indexes first so the comparison
// is fit-vs-fit over the same entries in the same WAL order.
func identicalSearches(t testing.TB, a, b *Server, alib, blib *classminer.Library, queries int) {
	t.Helper()
	if err := alib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := blib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < queries; q++ {
		wa := doRaw(t, a, http.MethodPost, "/v1/search", "admin-tok", searchBody(int64(q)))
		wb := doRaw(t, b, http.MethodPost, "/v1/search", "admin-tok", searchBody(int64(q)))
		if wa.Code != http.StatusOK || wb.Code != http.StatusOK {
			t.Fatalf("query %d: leader=%d follower=%d", q, wa.Code, wb.Code)
		}
		if wa.Body.String() != wb.Body.String() {
			t.Fatalf("query %d diverged:\nleader:   %s\nfollower: %s", q, wa.Body.String(), wb.Body.String())
		}
	}
}

// TestFailoverPromoteFollower is the kill-the-leader acceptance test:
// ingest acknowledged writes on the leader, verify the follower serves
// byte-identical searches while refusing writes, SIGKILL-style the leader,
// promote the follower over HTTP, and verify it lost nothing and accepts a
// write. Along the way it checks the per-follower lag surfaces in
// /v1/stats and /metrics on both roles.
func TestFailoverPromoteFollower(t *testing.T) {
	leaderReg, followerReg := metrics.NewRegistry(), metrics.NewRegistry()
	p := newReplPair(t, leaderReg, followerReg)

	const n = 6
	for i := 0; i < n; i++ {
		ingestAndWait(t, p.leader, fmt.Sprintf("acked-%02d", i), int64(i))
	}
	p.waitConverged(t)

	// Readiness: both roles answer /readyz without credentials.
	var ready struct {
		Role  string `json:"role"`
		Ready bool   `json:"ready"`
	}
	if code := do(t, p.leader, http.MethodGet, "/readyz", "", nil, &ready); code != http.StatusOK || ready.Role != "leader" || !ready.Ready {
		t.Fatalf("leader /readyz = %d %+v", code, ready)
	}
	if code := do(t, p.fs, http.MethodGet, "/readyz", "", nil, &ready); code != http.StatusOK || ready.Role != "follower" || !ready.Ready {
		t.Fatalf("follower /readyz = %d %+v", code, ready)
	}

	// The unpromoted follower refuses writes and points at the leader.
	w := doRaw(t, p.fs, http.MethodDelete, "/v1/videos/acked-00", "admin-tok", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("follower delete = %d, want 503", w.Code)
	}
	if got := w.Header().Get("X-Repl-Leader"); got != p.leaderTS.URL {
		t.Fatalf("X-Repl-Leader = %q, want %q", got, p.leaderTS.URL)
	}

	// Replication lag is observable per follower on the leader…
	var stats struct {
		Repl struct {
			Role          string             `json:"role"`
			Followers     []repl.ShardPins   `json:"followers"`
			MaxLagRecords int64              `json:"maxLagRecords"`
			Shards        []repl.ShardStatus `json:"shards"`
		} `json:"repl"`
	}
	if code := do(t, p.leader, http.MethodGet, "/v1/stats", "admin-tok", nil, &stats); code != http.StatusOK {
		t.Fatalf("leader stats = %d", code)
	}
	if stats.Repl.Role != "leader" || len(stats.Repl.Followers) != 1 ||
		len(stats.Repl.Followers[0].Followers) != 1 || stats.Repl.Followers[0].Followers[0].ID != "replica-1" {
		t.Fatalf("leader repl stats = %+v", stats.Repl)
	}
	lm := doRaw(t, p.leader, http.MethodGet, "/metrics", "admin-tok", nil)
	if lm.Code != http.StatusOK || !strings.Contains(lm.Body.String(), `repl_lag_records{follower="replica-1",shard="0"}`) {
		t.Fatalf("leader /metrics (%d) missing per-follower lag gauge", lm.Code)
	}
	// …and on the follower side.
	if code := do(t, p.fs, http.MethodGet, "/v1/stats", "admin-tok", nil, &stats); code != http.StatusOK {
		t.Fatalf("follower stats = %d", code)
	}
	if stats.Repl.Role != "follower" || len(stats.Repl.Shards) != 1 || stats.Repl.Shards[0].LagRecords != 0 {
		t.Fatalf("follower repl stats = %+v", stats.Repl)
	}
	fm := doRaw(t, p.fs, http.MethodGet, "/metrics", "admin-tok", nil)
	if fm.Code != http.StatusOK || !strings.Contains(fm.Body.String(), `repl_follower_lag_records{shard="0"}`) {
		t.Fatalf("follower /metrics (%d) missing follower lag gauge", fm.Code)
	}

	identicalSearches(t, p.leader, p.fs, p.leaderLib, p.followerLib, 6)

	// Kill the leader: stop its listener and abandon its process state.
	p.leaderTS.Close()
	p.leader.pool.Close()
	if err := p.leaderLib.Close(); err != nil {
		t.Fatal(err)
	}
	p.leader, p.leaderLib = nil, nil

	// Promotion is admin-gated and idempotent.
	if code := do(t, p.fs, http.MethodPost, "/v1/admin/promote", "clin-tok", nil, nil); code != http.StatusForbidden {
		t.Fatalf("clinician promote = %d, want 403", code)
	}
	var prom struct {
		Role     string `json:"role"`
		Promoted bool   `json:"promoted"`
	}
	if code := do(t, p.fs, http.MethodPost, "/v1/admin/promote", "admin-tok", nil, &prom); code != http.StatusOK {
		t.Fatalf("promote = %d", code)
	}
	if prom.Role != "leader" || !prom.Promoted {
		t.Fatalf("promote response = %+v", prom)
	}
	if code := do(t, p.fs, http.MethodPost, "/v1/admin/promote", "admin-tok", nil, &prom); code != http.StatusOK || prom.Promoted {
		t.Fatalf("second promote = %d %+v, want idempotent no-op", code, prom)
	}
	if code := do(t, p.fs, http.MethodGet, "/readyz", "", nil, &ready); code != http.StatusOK || ready.Role != "leader" {
		t.Fatalf("promoted /readyz = %d %+v", code, ready)
	}

	// Zero acknowledged-write loss: every write the dead leader acked is
	// served by the promoted node, which now accepts writes of its own.
	if got := p.followerLib.Stats().Videos; got != n {
		t.Fatalf("promoted node has %d videos, want %d", got, n)
	}
	ingestAndWait(t, p.fs, "post-promote", 77)
	if p.followerLib.Video("post-promote") == nil {
		t.Fatal("promoted node did not persist its own write")
	}
}

// TestFollowerServesColdSearch hits a replica with a search when nothing
// ever built its index locally: replicated applies kick the rebuilder and
// the search path self-heals a cold index, so the replica answers 200
// instead of shedding with "index not built".
func TestFollowerServesColdSearch(t *testing.T) {
	p := newReplPair(t, nil, nil)
	for i := 0; i < 4; i++ {
		ingestAndWait(t, p.leader, fmt.Sprintf("cold-%02d", i), int64(i))
	}
	p.waitConverged(t)
	w := doRaw(t, p.fs, http.MethodPost, "/v1/search", "admin-tok", searchBody(1))
	if w.Code != http.StatusOK {
		t.Fatalf("cold follower search = %d: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), `"video"`) {
		t.Fatalf("cold follower search returned no hits: %s", w.Body.String())
	}
}

// TestLeaderFollowerTieOrderEquivalence interleaves randomized registers,
// deletes and replacements on the leader across several seeds and requires
// the follower to serve byte-identical search rankings — tie order
// included — once converged.
func TestLeaderFollowerTieOrderEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			p := newReplPair(t, nil, nil)
			rng := rand.New(rand.NewSource(seed))
			var live []string
			next := 0
			for op := 0; op < 12; op++ {
				switch r := rng.Float64(); {
				case r < 0.5 || len(live) == 0:
					name := fmt.Sprintf("vid-%02d", next)
					next++
					ingestAndWait(t, p.leader, name, seed*100+int64(op))
					live = append(live, name)
				case r < 0.75:
					i := rng.Intn(len(live))
					if code := do(t, p.leader, http.MethodDelete, "/v1/videos/"+live[i], "admin-tok", nil, nil); code != http.StatusOK {
						t.Fatalf("delete %s = %d", live[i], code)
					}
					live = append(live[:i], live[i+1:]...)
				default:
					i := rng.Intn(len(live))
					ingestReplaceAndWait(t, p.leader, live[i], seed*1000+int64(op))
				}
			}
			p.waitConverged(t)
			identicalSearches(t, p.leader, p.fs, p.leaderLib, p.followerLib, 6)
		})
	}
}

// TestReadyzUnseededFollower starts a follower whose leader is unreachable:
// /readyz must fail with the seeding reason until promotion flips the node
// to a leader role (at which point readiness no longer depends on
// replication).
func TestReadyzUnseededFollower(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from the first pull on

	flib := newDurableLib(t)
	t.Cleanup(func() { flib.Close() })
	f, err := repl.Start(repl.Options{
		LeaderURL: dead.URL,
		ID:        "orphan",
		Dir:       t.TempDir(),
		Appliers:  []repl.Applier{flib},
		PollWait:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	fs := New(flib, Options{Tokens: testTokens(), Follower: f, LeaderURL: dead.URL})
	t.Cleanup(fs.Close)

	var ready struct {
		Role   string `json:"role"`
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if code := do(t, fs, http.MethodGet, "/readyz", "", nil, &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("unseeded follower /readyz = %d, want 503", code)
	}
	if ready.Ready || ready.Role != "follower" || !strings.Contains(ready.Reason, "not seeded") {
		t.Fatalf("unseeded /readyz body = %+v", ready)
	}
	// /healthz stays green the whole time: liveness is not readiness.
	if code := do(t, fs, http.MethodGet, "/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("unseeded follower /healthz = %d", code)
	}
	if code := do(t, fs, http.MethodPost, "/v1/admin/promote", "admin-tok", nil, nil); code != http.StatusOK {
		t.Fatalf("promote = %d", code)
	}
	if code := do(t, fs, http.MethodGet, "/readyz", "", nil, &ready); code != http.StatusOK || ready.Role != "leader" {
		t.Fatalf("promoted /readyz = %d %+v", code, ready)
	}
}

// TestWALPressureShedsIngest drives the single-node write-path shedding: a
// WAL backlog past the budget turns ingest into 503 + Retry-After, counted
// under admit_rejected_total{reason="wal_pressure"}, while reads keep
// working.
func TestWALPressureShedsIngest(t *testing.T) {
	lib := newDurableLib(t)
	t.Cleanup(func() { lib.Close() })
	s := New(lib, Options{Tokens: testTokens(), CacheSize: -1, WALPressureBytes: 1, MaxInflight: 8})
	t.Cleanup(s.Close)

	// The first ingest passes (empty WAL) and leaves >1 byte of backlog.
	ingestAndWait(t, s, "first", 1)
	req := map[string]any{"subcluster": "medicine", "saved": tinySavedResult("second", 2, 3)}
	w := doRaw(t, s, http.MethodPost, "/v1/videos", "admin-tok", req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest under WAL pressure = %d, want 503: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("WAL-pressure 503 missing Retry-After")
	}
	if !strings.Contains(w.Body.String(), "WAL backlog") {
		t.Fatalf("WAL-pressure body = %s", w.Body.String())
	}
	var stats struct {
		Admission admissionStats `json:"admission"`
	}
	if code := do(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Admission.Rejected["wal_pressure"] != 1 {
		t.Fatalf("rejected = %+v, want wal_pressure 1", stats.Admission.Rejected)
	}
	m := doRaw(t, s, http.MethodGet, "/metrics", "admin-tok", nil)
	if !strings.Contains(m.Body.String(), `admit_rejected_total{reason="wal_pressure"} 1`) {
		t.Fatal("/metrics missing admit_rejected_total{reason=\"wal_pressure\"}")
	}
	// Reads are untouched; draining the backlog (a checkpoint) reopens ingest.
	if code := do(t, s, http.MethodGet, "/v1/videos", "admin-tok", nil, nil); code != http.StatusOK {
		t.Fatalf("list under WAL pressure = %d", code)
	}
	if code := do(t, s, http.MethodPost, "/v1/admin/checkpoint", "admin-tok", nil, nil); code != http.StatusOK {
		t.Fatalf("checkpoint = %d", code)
	}
	ingestAndWait(t, s, "third", 3)
}

// TestReplLagShedsIngest verifies the replication-lag backpressure: with a
// stalled follower attached and the lag budget exceeded, new ingest sheds
// with 503 under admit_rejected_total{reason="repl_lag"}; once the follower
// drains (here: detaches), writes flow again.
func TestReplLagShedsIngest(t *testing.T) {
	lib := newDurableLib(t)
	t.Cleanup(func() { lib.Close() })
	hub, err := repl.NewHub([]*wal.Engine{lib.Engine()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(lib, Options{Tokens: testTokens(), CacheSize: -1, ReplHub: hub, ReplLagBytes: 1, MaxInflight: 8})
	t.Cleanup(s.Close)

	// A follower attaches and then stalls: its pin accumulates everything
	// the next ingest appends.
	if _, err := lib.Engine().Attach("stalled", wal.Cursor{}); err != nil {
		t.Fatal(err)
	}
	ingestAndWait(t, s, "first", 1)
	req := map[string]any{"subcluster": "medicine", "saved": tinySavedResult("second", 2, 3)}
	w := doRaw(t, s, http.MethodPost, "/v1/videos", "admin-tok", req)
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "replication lag") {
		t.Fatalf("ingest under repl lag = %d: %s", w.Code, w.Body.String())
	}
	var stats struct {
		Admission admissionStats `json:"admission"`
	}
	if code := do(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Admission.Rejected["repl_lag"] != 1 {
		t.Fatalf("rejected = %+v, want repl_lag 1", stats.Admission.Rejected)
	}
	lib.Engine().Detach("stalled")
	ingestAndWait(t, s, "third", 3)
}
