package server

// The server against the sharded router: the Library interface makes the
// serving stack indifferent to the shard count, and /v1/stats must expose
// the per-shard breakdown with a correctly aggregated WAL block (summed
// counters) rather than any single shard's view.

import (
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"classminer"
	"classminer/internal/shard"
	"classminer/internal/store"
)

var _ Library = (*shard.Library)(nil)

// shardSaved fabricates a minimal mined result with deterministic features
// (same shape as the recovery fixtures in the root package).
func shardSaved(name string, seed int64, shots int) *store.SavedResult {
	rng := rand.New(rand.NewSource(seed))
	sr := &store.SavedResult{
		Version:     store.FormatVersion,
		VideoName:   name,
		FPS:         25,
		TotalFrames: shots * 50,
	}
	feat := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	group := store.SavedGroup{Index: 0}
	for i := 0; i < shots; i++ {
		sr.Shots = append(sr.Shots, store.SavedShot{
			Index: i, Start: i * 50, End: (i+1)*50 - 1, RepFrame: i * 50,
			Color: feat(8), Texture: feat(4),
		})
		group.Shots = append(group.Shots, i)
	}
	group.RepShots = []int{0}
	sr.Groups = []store.SavedGroup{group}
	sr.Scenes = []store.SavedScene{{Index: 0, Groups: []int{0}, RepGroup: 0}}
	return sr
}

func TestStatsEndpointShardedWAL(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := shard.Recover(t.TempDir(), 3, a,
		classminer.DurableOptions{CheckpointBytes: -1, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lib.Close() })
	const videos = 9
	for i := 0; i < videos; i++ {
		res, err := store.DecodeResult(shardSaved(fmt.Sprintf("scan-%02d", i), int64(i), 2+i%2))
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.AddResult(res, "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	s := New(lib, Options{Tokens: testTokens()})
	t.Cleanup(s.Close)

	// A search through the full middleware stack works against the router.
	var sr struct {
		Hits []struct {
			Video string `json:"video"`
		} `json:"hits"`
	}
	req := map[string]any{"video": "scan-00", "shot": 0, "k": 5}
	if code := do(t, s, http.MethodPost, "/v1/search", "admin-tok", req, &sr); code != http.StatusOK {
		t.Fatalf("search = %d", code)
	}
	if len(sr.Hits) == 0 {
		t.Fatal("sharded search returned no hits")
	}

	var resp struct {
		Library classminer.LibraryStats `json:"library"`
	}
	if code := do(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil, &resp); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if resp.Library.Videos != videos {
		t.Fatalf("stats videos = %d, want %d", resp.Library.Videos, videos)
	}
	if len(resp.Library.Shards) != 3 {
		t.Fatalf("stats carries %d shard blocks, want 3", len(resp.Library.Shards))
	}
	if resp.Library.WAL == nil {
		t.Fatal("aggregate WAL block missing")
	}
	var sumRecords, sumSyncs int64
	var shardVideos int
	for i, ss := range resp.Library.Shards {
		if ss.Shard != i {
			t.Fatalf("shard block %d labeled %d", i, ss.Shard)
		}
		if ss.WAL == nil {
			t.Fatalf("shard %d block has no WAL stats", i)
		}
		sumRecords += ss.WAL.Records
		sumSyncs += ss.WAL.Syncs
		shardVideos += ss.Videos
	}
	if shardVideos != videos {
		t.Fatalf("shard blocks sum to %d videos, want %d", shardVideos, videos)
	}
	if resp.Library.WAL.Records != sumRecords || sumRecords != videos {
		t.Fatalf("aggregate WAL records = %d, shard sum = %d, want %d",
			resp.Library.WAL.Records, sumRecords, videos)
	}
	if resp.Library.WAL.Syncs != sumSyncs {
		t.Fatalf("aggregate WAL syncs = %d, shard sum = %d", resp.Library.WAL.Syncs, sumSyncs)
	}
}
