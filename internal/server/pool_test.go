package server

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// waitPoolDrained polls until the pool has finished n jobs or the deadline
// passes.
func waitPoolDrained(t *testing.T, p *ingestPool, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := p.Stats(1)
		if st.Done+st.Failed >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pool did not finish %d jobs in time: %+v", n, p.Stats(1))
}

// TestPoolFinishedJobsBounded is the regression test for byID retaining
// every Job ever run: across 10k jobs the map must stay at the retention
// bound, while the most recent finishers remain pollable via Get.
func TestPoolFinishedJobsBounded(t *testing.T) {
	const total = 10000
	p := newIngestPool(1, 64, func(*Job) {})
	t.Cleanup(p.Close)
	// Age-free retention: pruning is purely count-based, so the bound is
	// exactly retainCount once the queue drains.
	p.retainCount = 8
	p.retainAge = 0

	for i := 0; i < total; i++ {
		j := &Job{}
		for {
			err := p.Submit(j)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("submit %d: %v", i, err)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitPoolDrained(t, p, total)

	p.mu.Lock()
	mapLen, finLen := len(p.byID), len(p.finished)
	p.mu.Unlock()
	if mapLen > p.retainCount {
		t.Fatalf("byID holds %d jobs after %d runs, want <= %d", mapLen, total, p.retainCount)
	}
	if finLen > p.retainCount {
		t.Fatalf("finished backlog = %d, want <= %d", finLen, p.retainCount)
	}
	// One worker finishes in submission order: the newest IDs are the last
	// finishers and must still answer /v1/jobs/{id}; the oldest must be gone.
	if j := p.Get(fmt.Sprintf("job-%d", total)); j == nil {
		t.Fatalf("most recent job pruned; want it retained")
	} else if j.Status != JobDone {
		t.Fatalf("most recent job status = %q, want done", j.Status)
	}
	if j := p.Get("job-1"); j != nil {
		t.Fatalf("job-1 still resident after %d jobs: %+v", total, j)
	}
	// Pruning bounds memory, not history: the counters still saw every job.
	if st := p.Stats(1); st.Done != total {
		t.Fatalf("done count = %d, want %d", st.Done, total)
	}
}

// TestPoolRetireHardCap: a burst of finishers younger than retainAge must
// still be bounded — the 4x hard cap kicks in so the map size never depends
// on the job rate.
func TestPoolRetireHardCap(t *testing.T) {
	p := newIngestPool(0, 1, func(*Job) {})
	t.Cleanup(p.Close)
	p.retainCount = 4
	p.retainAge = time.Hour // nothing ages out during the test

	now := time.Now()
	p.mu.Lock()
	for i := 1; i <= 200; i++ {
		j := &Job{ID: fmt.Sprintf("job-%d", i), Status: JobDone, Finished: now}
		p.byID[j.ID] = j
		p.retire(j, now)
	}
	mapLen, finLen := len(p.byID), len(p.finished)
	p.mu.Unlock()

	if cap := 4 * p.retainCount; finLen > cap || mapLen > cap {
		t.Fatalf("burst retention: byID=%d finished=%d, want both <= %d", mapLen, finLen, cap)
	}
	if p.Get("job-200") == nil {
		t.Fatalf("newest finisher pruned under hard cap; want it retained")
	}
}

// TestPoolShedSubmitDoesNotBurnIDs: a Submit rejected with ErrQueueFull
// must not consume a sequence number or register anything — the job-N
// series has no holes, so operators can read it as "jobs the server took".
func TestPoolShedSubmitDoesNotBurnIDs(t *testing.T) {
	p := newIngestPool(0, 2, func(*Job) {}) // no workers: queue never drains
	t.Cleanup(p.Close)

	for i := 1; i <= 2; i++ {
		j := &Job{}
		if err := p.Submit(j); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if want := fmt.Sprintf("job-%d", i); j.ID != want {
			t.Fatalf("job ID = %q, want %q", j.ID, want)
		}
	}
	for i := 0; i < 5; i++ {
		if err := p.Submit(&Job{}); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit over depth: err = %v, want ErrQueueFull", err)
		}
	}
	p.mu.Lock()
	seq, mapLen := p.seq, len(p.byID)
	p.mu.Unlock()
	if seq != 2 || mapLen != 2 {
		t.Fatalf("after sheds: seq=%d byID=%d, want 2 and 2", seq, mapLen)
	}

	// Free one slot and resubmit: the next accepted job continues the
	// series at job-3 — the five rejections above left no gap.
	<-p.queue
	j := &Job{}
	if err := p.Submit(j); err != nil {
		t.Fatalf("resubmit after drain: %v", err)
	}
	if j.ID != "job-3" {
		t.Fatalf("post-shed ID = %q, want job-3 (sheds must not burn IDs)", j.ID)
	}
}
