package server

import (
	"testing"

	"classminer/internal/access"
)

// TestCachePutCollisionNeverPoisons is the regression test for the Put
// half of the hash-collision guard: two distinct queries forced onto the
// same 64-bit cache key (a fabricated qhash collision) must never serve
// each other's responses. The old Put updated the stored entry's response
// without checking the stored query, so after Put(key, qB, respB) a
// Get(key, qA) — whose stored query was still qA — returned qB's answer.
func TestCachePutCollisionNeverPoisons(t *testing.T) {
	c := newSearchCache(8)
	key := cacheKey{gen: 1, qhash: 0xdeadbeef, k: 5}
	qA := []float64{1, 2, 3}
	qB := []float64{9, 8, 7}
	respA := searchResponse{K: 1}
	respB := searchResponse{K: 2}

	c.Put(key, qA, respA)
	if got, ok := c.Get(key, qA); !ok || got.K != respA.K {
		t.Fatalf("warm-up Get = (%+v, %v), want respA", got, ok)
	}
	// Same key, different query: the forced collision.
	c.Put(key, qB, respB)
	if got, ok := c.Get(key, qA); ok && got.K != respA.K {
		t.Fatalf("query A served query B's response after collision: %+v", got)
	}
	// The latest colliding query must be coherent (stored query and
	// response agree).
	if got, ok := c.Get(key, qB); !ok || got.K != respB.K {
		t.Fatalf("Get(qB) = (%+v, %v), want respB", got, ok)
	}
	if got, ok := c.Get(key, qA); ok && got.K != respA.K {
		t.Fatalf("query A poisoned after qB overwrote the slot: %+v", got)
	}
}

// TestCachePutSameQueryRefreshes keeps the legitimate update path: a Put
// for the exact query already stored replaces the response in place.
func TestCachePutSameQueryRefreshes(t *testing.T) {
	c := newSearchCache(8)
	key := cacheKey{gen: 1, qhash: 42, k: 3}
	q := []float64{4, 5}
	c.Put(key, q, searchResponse{K: 1})
	c.Put(key, q, searchResponse{K: 2})
	if got, ok := c.Get(key, q); !ok || got.K != 2 {
		t.Fatalf("refreshed Get = (%+v, %v), want K=2", got, ok)
	}
}

// TestMakeKeyRoleAliasing is the regression test for the role-join bug: a
// "|"-joined role string aliased roles ["a|b"] with ["a","b"], giving two
// different identities — with different policy filters — one cache slot.
// The length-prefixed encoding must keep them distinct.
func TestMakeKeyRoleAliasing(t *testing.T) {
	q := []float64{1, 2}
	u1 := access.User{Name: "x", Clearance: access.Clinician, Roles: []string{"a|b"}}
	u2 := access.User{Name: "y", Clearance: access.Clinician, Roles: []string{"a", "b"}}
	k1 := makeKey(7, u1, q, 5)
	k2 := makeKey(7, u2, q, 5)
	if k1 == k2 {
		t.Fatalf("roles %v and %v alias to one cache key: %+v", u1.Roles, u2.Roles, k1)
	}
	// More aliasing shapes the naive join collapses ("a|b|c" both ways).
	u3 := access.User{Clearance: access.Clinician, Roles: []string{"a", "b|c"}}
	u4 := access.User{Clearance: access.Clinician, Roles: []string{"a|b", "c"}}
	if makeKey(7, u3, q, 5) == makeKey(7, u4, q, 5) {
		t.Fatalf("roles %v and %v alias to one cache key", u3.Roles, u4.Roles)
	}
}

// TestMakeKeyRoleNormalisation preserves the intended equivalences: role
// order and case do not change the identity.
func TestMakeKeyRoleNormalisation(t *testing.T) {
	q := []float64{3}
	u1 := access.User{Clearance: access.Nurse, Roles: []string{"Surgeon", "triage"}}
	u2 := access.User{Clearance: access.Nurse, Roles: []string{"TRIAGE", "surgeon"}}
	if makeKey(1, u1, q, 5) != makeKey(1, u2, q, 5) {
		t.Fatal("role order/case changed the cache identity")
	}
}
