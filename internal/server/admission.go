package server

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"classminer/internal/access"
	"classminer/internal/admit"
	"classminer/internal/trace"
)

// rejectReason indexes the admission-rejection counters (and the `reason`
// label of admit_rejected_total).
type rejectReason int

const (
	rejRateLimit rejectReason = iota
	rejConcurrency
	rejDeadline
	rejMemory
	rejWALPressure
	rejReplLag
	numRejectReasons
)

var rejectReasonNames = [numRejectReasons]string{
	"rate_limit", "concurrency", "deadline", "memory", "wal_pressure", "repl_lag",
}

// tierMultiplier widens the base per-token limit by clearance: a clinician
// mid-procedure gets more headroom than an anonymous browser, and the
// administrator fixing the overload gets the most. Custom clearances above
// Administrator inherit its multiplier.
func tierMultiplier(c access.Clearance) float64 {
	switch {
	case c >= access.Administrator:
		return 8
	case c >= access.Clinician:
		return 4
	case c >= access.Student: // Student, Nurse
		return 2
	default: // Public (and anonymous)
		return 1
	}
}

// admission bundles the server's self-protection state: the per-token rate
// limiter, the per-class concurrency gates and deadlines, and the memory
// watchdog. A nil *admission (every control disabled) is a no-op.
type admission struct {
	limiter   *admit.RateLimiter
	base      admit.Limit // Rate <= 0 disables rate limiting
	overrides map[string]admit.Limit
	gates     [admit.NumClasses]*admit.Gate
	timeouts  [admit.NumClasses]time.Duration
	watchdog  *admit.Watchdog
	rejected  [numRejectReasons]atomic.Uint64
}

// newAdmission assembles the admission state from the (defaulted) options;
// it returns nil when every control is off. onDegrade is installed as the
// watchdog's transition callback.
func newAdmission(opts Options, onDegrade func(from, to admit.Level)) *admission {
	rateOn := opts.Rate > 0
	gatesOn := opts.MaxInflight > 0
	deadlinesOn := opts.ReqTimeout > 0
	memOn := opts.MemBudget > 0
	if !rateOn && !gatesOn && !deadlinesOn && !memOn {
		return nil
	}
	a := &admission{}
	if rateOn {
		a.limiter = admit.NewRateLimiter()
		a.base = admit.Limit{Rate: opts.Rate, Burst: opts.Burst}
		a.overrides = opts.RateOverrides
	}
	if gatesOn {
		// Search gets the full cap; mutation and admin get progressively
		// narrower slices so a write burst cannot crowd out reads (or an
		// operator trying to intervene). Waiters may park one-per-slot
		// before arrivals shed immediately.
		caps := [admit.NumClasses]int{
			admit.ClassSearch: opts.MaxInflight,
			admit.ClassMutate: max(4, opts.MaxInflight/4),
			admit.ClassAdmin:  max(2, opts.MaxInflight/8),
		}
		for c, n := range caps {
			a.gates[c] = admit.NewGate(n, n, opts.MaxWait)
		}
	}
	if deadlinesOn {
		a.timeouts = [admit.NumClasses]time.Duration{
			admit.ClassSearch: opts.ReqTimeout,
			admit.ClassMutate: opts.ReqTimeout,
			// Admin operations (checkpoint, compact, CPU profiles) are
			// legitimately slow; give them 4x.
			admit.ClassAdmin: 4 * opts.ReqTimeout,
		}
	}
	if memOn {
		a.watchdog = admit.NewWatchdog(admit.WatchdogConfig{
			Budget:   opts.MemBudget,
			Sample:   opts.HeapSample,
			Interval: opts.MemCheckInterval,
			OnChange: onDegrade,
		})
	}
	return a
}

// Close stops the watchdog. Nil-safe.
func (a *admission) Close() {
	if a != nil {
		a.watchdog.Close()
	}
}

// countReject bumps one rejection counter. Nil-safe so handlers need no
// admission-disabled branches.
func (a *admission) countReject(r rejectReason) {
	if a != nil {
		a.rejected[r].Add(1)
	}
}

// degradeLevel reports the watchdog's current level (LevelNormal when the
// watchdog — or admission entirely — is off).
func (a *admission) degradeLevel() admit.Level {
	if a == nil {
		return admit.LevelNormal
	}
	return a.watchdog.Level()
}

// limitFor resolves the effective rate limit for one request: a per-token
// override wins outright; otherwise the base limit scaled by clearance tier.
func (a *admission) limitFor(tok string, c access.Clearance) admit.Limit {
	if lim, ok := a.overrides[tok]; ok {
		return lim
	}
	return a.base.Scale(tierMultiplier(c))
}

// routeClass maps a request onto its admission class, mirroring the
// dispatch in Server.route. /healthz must stay exempt (a load-shedding
// liveness probe is an outage amplifier) and so does /metrics — the
// overload investigation must not be rate-limited away by the overload.
func routeClass(method, path string) (class admit.Class, exempt bool) {
	path = strings.TrimSuffix(path, "/")
	switch path {
	case "/healthz", "/readyz", "/metrics":
		// /readyz joins /healthz: a load balancer probing readiness through a
		// rate limiter would flap the whole node in and out of rotation.
		return 0, true
	}
	if strings.HasPrefix(path, "/v1/repl/") {
		// The replication stream is internal traffic: long-poll pulls parked
		// for tens of seconds would starve the admin concurrency gate, and
		// rate-limiting a catching-up follower only lengthens the unsafe
		// window. Authentication (Administrator clearance) still applies.
		return 0, true
	}
	switch {
	case strings.HasPrefix(path, "/v1/admin/"), path == "/debug/pprof",
		strings.HasPrefix(path, "/debug/pprof/"), path == "/debug/traces":
		return admit.ClassAdmin, false
	case path == "/v1/videos" && method == http.MethodPost:
		return admit.ClassMutate, false
	case strings.HasPrefix(path, "/v1/videos/") && method == http.MethodDelete:
		return admit.ClassMutate, false
	}
	return admit.ClassSearch, false
}

// withAdmit threads admission between auth and the handlers: rate limit,
// then concurrency gate, then request deadline. The order matters — the
// rate limiter is the cheapest check and protects the gates' wait queues
// from one flooding client. The allow path adds no allocation beyond the
// deadline context itself, preserving the search hot path's alloc budget.
func (s *Server) withAdmit(next http.Handler) http.Handler {
	a := s.admit
	if a == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class, exempt := routeClass(r.Method, r.URL.Path)
		if exempt {
			next.ServeHTTP(w, r)
			return
		}
		// The admit span covers the rate-limit check and any time parked at
		// the concurrency gate — the queueing delay a slow trace must show.
		sp := trace.StartSpan(r.Context(), "admit")
		if a.limiter != nil {
			tok := token(r)
			d := a.limiter.Allow(tok, a.limitFor(tok, userOf(r).Clearance))
			if !d.OK {
				sp.End()
				a.countReject(rejRateLimit)
				writeRateLimited(w, d)
				return
			}
		}
		if g := a.gates[class]; g != nil {
			waited, err := g.Acquire(r.Context())
			if waited > 0 {
				s.metrics.observeAdmitWait(waited)
				sp.SetInt("waitedUs", waited.Microseconds())
			}
			if err != nil {
				sp.End()
				a.countReject(rejConcurrency)
				// The queue rejected in bounded time; a second is a sane
				// lower bound for when a slot might free up.
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable,
					class.String()+" capacity saturated; retry later")
				return
			}
			defer g.Release()
		}
		sp.End()
		if to := a.timeouts[class]; to > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), to)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// writeRateLimited renders a 429 with the Retry-After and X-RateLimit-*
// contract documented in the README. Headers ride only on denials: the
// allow path must not pay for rendering them.
func writeRateLimited(w http.ResponseWriter, d admit.Decision) {
	retry := ceilSeconds(d.RetryAfter)
	h := w.Header()
	h.Set("Retry-After", strconv.Itoa(retry))
	h.Set("X-RateLimit-Limit", strconv.Itoa(d.Limit))
	h.Set("X-RateLimit-Remaining", strconv.Itoa(d.Remaining))
	h.Set("X-RateLimit-Reset", strconv.Itoa(ceilSeconds(d.Reset)))
	writeError(w, http.StatusTooManyRequests,
		"rate limit exceeded; retry in "+strconv.Itoa(retry)+"s")
}

// ceilSeconds rounds a duration up to whole seconds, minimum 1 — telling a
// throttled client "retry in 0s" invites an immediate, equally doomed retry.
func ceilSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// deadlineExpired reports whether the request's context is already dead
// and, if so, writes the 503. Handlers call it before starting (and after
// finishing) expensive work, so a request that blew its deadline mid-search
// returns a clean 503 instead of a half-useful late answer — and never a
// half-written body, since writeJSON buffers and writes in one piece.
func (s *Server) deadlineExpired(w http.ResponseWriter, r *http.Request) bool {
	err := r.Context().Err()
	if err == nil {
		return false
	}
	if err == context.DeadlineExceeded {
		s.admit.countReject(rejDeadline)
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded")
	} else {
		// The client hung up; the write is best-effort.
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	}
	return true
}

// applyDegrade is the watchdog's transition callback: shed the search cache
// at LevelShedCache and above, pause background refits at LevelPauseRebuild
// and above (ingest rejection at LevelRejectIngest is enforced inline by
// handleIngest), and undo each measure on the way back down.
func (s *Server) applyDegrade(from, to admit.Level) {
	wasShed, nowShed := from >= admit.LevelShedCache, to >= admit.LevelShedCache
	if nowShed != wasShed {
		if nowShed {
			s.cache.SetCapacity(s.opts.CacheSize / 4)
		} else {
			s.cache.SetCapacity(s.opts.CacheSize)
		}
	}
	s.rebuilder.SetPaused(to >= admit.LevelPauseRebuild)
	s.opts.Logf("memory watchdog: %s -> %s (budget %d bytes)", from, to, s.opts.MemBudget)
}

// admissionStats is the /v1/stats slice of the admission layer.
type admissionStats struct {
	Enabled      bool              `json:"enabled"`
	DegradeLevel string            `json:"degradeLevel"`
	MemBudget    int64             `json:"memBudgetBytes,omitempty"`
	Rejected     map[string]uint64 `json:"rejected,omitempty"`
	InFlight     map[string]int    `json:"inflight,omitempty"`
	RateBuckets  int               `json:"rateBuckets,omitempty"`
}

func (a *admission) Stats() admissionStats {
	if a == nil {
		return admissionStats{Enabled: false, DegradeLevel: admit.LevelNormal.String()}
	}
	st := admissionStats{
		Enabled:      true,
		DegradeLevel: a.degradeLevel().String(),
		MemBudget:    a.watchdog.Budget(),
		Rejected:     make(map[string]uint64, numRejectReasons),
	}
	for i, name := range rejectReasonNames {
		st.Rejected[name] = a.rejected[i].Load()
	}
	if a.gates[0] != nil {
		st.InFlight = make(map[string]int, admit.NumClasses)
		for c := admit.Class(0); c < admit.NumClasses; c++ {
			st.InFlight[c.String()] = a.gates[c].InFlight()
		}
	}
	if a.limiter != nil {
		st.RateBuckets = a.limiter.Buckets()
	}
	return st
}
