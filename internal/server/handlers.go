package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"classminer"
	"classminer/internal/access"
	"classminer/internal/admit"
	"classminer/internal/concept"
	"classminer/internal/metrics"
	"classminer/internal/store"
	"classminer/internal/synth"
	"classminer/internal/trace"
	"classminer/internal/vidmodel"
)

// maxBodyBytes bounds request bodies (a SavedResult for a full-scale video
// is well under this).
const maxBodyBytes = 32 << 20

// subclusterPath is the concept path of a video's placement, the unit at
// which browsing endpoints are gated. It is derived from the library's
// hierarchy so gating always matches the paths policy rules see.
func (s *Server) subclusterPath(subcluster string) []string {
	return s.lib.ConceptPath(subcluster)
}

// lrPool recycles the body-limiting wrapper: the decoder referencing it is
// dead by the time decodeBody returns, so the wrapper can be reused without
// aliasing a live reader.
var lrPool = sync.Pool{New: func() any { return new(io.LimitedReader) }}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	lr := lrPool.Get().(*io.LimitedReader)
	lr.R, lr.N = r.Body, maxBodyBytes
	err := json.NewDecoder(lr).Decode(v)
	lr.R = nil
	lrPool.Put(lr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// --- GET /healthz ----------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// --- GET /readyz -------------------------------------------------------------

// handleReady is the readiness probe, distinct from /healthz liveness:
// /healthz answers "the process is up" and must never fail while the server
// can respond at all, while /readyz answers "route traffic here". A leader
// is ready as soon as it serves (recovery completes before the listener
// opens); a follower is ready only once every shard is seeded and within
// the configured replication-lag threshold. Load balancers and the failover
// runbook key off this endpoint.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{
		"role":    s.role(),
		"durable": s.lib.Durable(),
	}
	ready, reason := true, ""
	if f := s.opts.Follower; f != nil && s.isFollower() {
		ready, reason = f.Ready()
		resp["repl"] = f.Stats()
	}
	resp["ready"] = ready
	if reason != "" {
		resp["reason"] = reason
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// --- GET /v1/stats ---------------------------------------------------------

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := map[string]any{
		"library":   s.lib.Stats(),
		"cache":     s.cache.Stats(),
		"ingest":    s.pool.Stats(s.opts.Workers),
		"index":     s.rebuilder.Stats(),
		"admission": s.admit.Stats(),
		"process":   processInfo(),
		"uptimeSec": time.Since(s.started).Seconds(),
		"requests":  s.requests.Load(),
	}
	if s.tracer != nil {
		// Exemplars point from the aggregate stats back into the trace ring:
		// the last kept trace per route, by id.
		stats["traces"] = map[string]any{
			"stats":     s.tracer.Stats(),
			"exemplars": s.tracer.Exemplars(),
		}
	}
	if s.opts.ReplHub != nil || s.opts.Follower != nil {
		rs := map[string]any{"role": s.role()}
		if h := s.opts.ReplHub; h != nil {
			recs, bts := h.MaxLag()
			rs["followers"] = h.Stats()
			rs["maxLagRecords"] = recs
			rs["maxLagBytes"] = bts
		}
		if f := s.opts.Follower; f != nil && s.isFollower() {
			rs["shards"] = f.Stats()
		}
		stats["repl"] = rs
	}
	writeJSON(w, http.StatusOK, stats)
}

// buildIdentity extracts the VCS stamp once: debug.ReadBuildInfo walks the
// module graph, far too heavy to repeat per stats request.
var buildIdentity = sync.OnceValue(func() map[string]string {
	id := map[string]string{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return id
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		id["version"] = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			id["revision"] = kv.Value
		case "vcs.time":
			id["buildTime"] = kv.Value
		case "vcs.modified":
			id["dirty"] = kv.Value
		}
	}
	return id
})

// processInfo is the process-identity slice of /v1/stats, so the JSON view
// and /metrics agree on what is being observed.
func processInfo() map[string]any {
	return map[string]any{
		"pid":        os.Getpid(),
		"goVersion":  runtime.Version(),
		"goroutines": runtime.NumGoroutine(),
		"build":      buildIdentity(),
	}
}

// --- GET /metrics ------------------------------------------------------------

// handleMetrics serves the Prometheus text exposition. It sits behind
// withAuth like every other endpoint (operational counters reveal workload
// shape), but needs no clearance beyond authentication.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Metrics == nil {
		writeError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	if err := s.opts.Metrics.WritePrometheus(w); err != nil {
		s.opts.Logf("writing /metrics: %v", err)
	}
}

// --- /debug/pprof/* ----------------------------------------------------------

// handlePprof serves net/http/pprof behind two gates: the -pprof flag
// (disabled deployments 404, indistinguishable from no route) and
// Administrator clearance (profiles expose goroutine stacks and heap
// contents that the API's policy filtering would never release). Dispatch
// uses the raw URL path because pprof.Index parses the profile name from
// everything after "/debug/pprof/" — the router's trailing-slash
// normalisation must not leak into it.
func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request) {
	if !s.opts.EnablePprof {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no route %s", r.URL.Path))
		return
	}
	if !s.requireClearance(w, r, classminer.Administrator) {
		return
	}
	switch strings.TrimSuffix(r.URL.Path, "/") {
	case "/debug/pprof/cmdline":
		pprof.Cmdline(w, r)
	case "/debug/pprof/profile":
		pprof.Profile(w, r)
	case "/debug/pprof/symbol":
		pprof.Symbol(w, r)
	case "/debug/pprof/trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r)
	}
}

// --- GET /v1/videos --------------------------------------------------------

type videoSummary struct {
	Name        string  `json:"name"`
	Subcluster  string  `json:"subcluster"`
	Shots       int     `json:"shots"`
	Scenes      int     `json:"scenes"`
	DurationSec float64 `json:"durationSec"`
}

func (s *Server) handleListVideos(w http.ResponseWriter, r *http.Request) {
	u := userOf(r)
	videos := []videoSummary{}
	hidden := 0
	for _, name := range s.lib.VideoNames() {
		ve := s.lib.Video(name)
		if ve == nil {
			continue // racing a concurrent removal; skip
		}
		if !s.lib.Allowed(u, s.subclusterPath(ve.Subcluster)) {
			hidden++
			continue
		}
		videos = append(videos, videoSummary{
			Name:        name,
			Subcluster:  ve.Subcluster,
			Shots:       len(ve.Result.Shots),
			Scenes:      len(ve.Result.Scenes),
			DurationSec: durationSec(ve),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"videos": videos, "hidden": hidden})
}

// durationSec derives playback length from the skim's frame count (raw
// frames are not retained for loaded videos).
func durationSec(ve *classminer.VideoEntry) float64 {
	if ve.Result.Skim == nil || ve.Result.Video.FPS <= 0 {
		return 0
	}
	return float64(ve.Result.Skim.TotalFrames) / ve.Result.Video.FPS
}

// --- GET /v1/videos/{name} -------------------------------------------------

type sceneJSON struct {
	Index      int     `json:"index"`
	StartFrame int     `json:"startFrame"`
	EndFrame   int     `json:"endFrame"`
	StartSec   float64 `json:"startSec"`
	EndSec     float64 `json:"endSec"`
	Shots      int     `json:"shots"`
	Groups     int     `json:"groups"`
	Event      string  `json:"event"`
}

type skimLevelJSON struct {
	Level int     `json:"level"`
	Shots int     `json:"shots"`
	FCR   float64 `json:"fcr"`
}

func (s *Server) handleVideoDetail(w http.ResponseWriter, r *http.Request, name string) {
	ve := s.lib.Video(name)
	if ve == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no video %q", name))
		return
	}
	u := userOf(r)
	if !s.lib.Allowed(u, s.subclusterPath(ve.Subcluster)) {
		writeError(w, http.StatusForbidden, fmt.Sprintf("subcluster %q not accessible", ve.Subcluster))
		return
	}
	res := ve.Result
	fps := res.Video.FPS
	scenes := []sceneJSON{}
	hidden := 0
	for _, sc := range res.Scenes {
		leaf := concept.SceneConcept(ve.Subcluster, sc.Event)
		if !s.lib.Allowed(u, append(s.subclusterPath(ve.Subcluster), leaf)) {
			hidden++
			continue
		}
		first, last := sc.FrameSpan()
		scenes = append(scenes, sceneJSON{
			Index: sc.Index, StartFrame: first, EndFrame: last,
			StartSec: frameSec(first, fps), EndSec: frameSec(last, fps),
			Shots: sc.ShotCount(), Groups: len(sc.Groups), Event: sc.Event.String(),
		})
	}
	var skims []skimLevelJSON
	if res.Skim != nil {
		for l := classminer.SkimLevel1; l <= classminer.SkimLevel4; l++ {
			skims = append(skims, skimLevelJSON{
				Level: int(l), Shots: len(res.Skim.Shots(l)), FCR: res.Skim.FCR(l),
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":         name,
		"subcluster":   ve.Subcluster,
		"fps":          fps,
		"durationSec":  durationSec(ve),
		"summary":      res.Summary(),
		"shots":        len(res.Shots),
		"groups":       len(res.Groups),
		"clusters":     len(res.Clusters),
		"scenes":       scenes,
		"scenesHidden": hidden,
		"skim":         skims,
	})
}

func frameSec(frame int, fps float64) float64 {
	if fps <= 0 {
		return 0
	}
	return float64(frame) / fps
}

// --- DELETE /v1/videos/{name} ----------------------------------------------

// handleDeleteVideo retires a video from the library: its entries are
// removed, the generation advances (cached answers die with it), and on a
// durable library a WAL tombstone makes the delete crash-safe before
// anything changes. Deletion is gated like ingestion (IngestClearance) and
// additionally requires the caller to be allowed to see the video's
// subcluster — you cannot delete what policy hides from you
// (DeleteVideoAs runs that check atomically with the removal, so a
// concurrent replacement cannot slip the video behind a policy wall
// between check and delete). In the common case the serving index masks
// the deleted shots incrementally — searches stop ranking them before this
// responds at no O(library) cost — and the full refit is left to the
// coalesced background rebuilder. Only when the index was *already* stale
// at delete time (a mutation the incremental path could not absorb) does
// the handler rebuild synchronously, exactly like the old per-delete path:
// that is the one case where responding first would leave the deleted
// shots searchable for the debounce window.
func (s *Server) handleDeleteVideo(w http.ResponseWriter, r *http.Request, name string) {
	if !s.requireClearance(w, r, s.opts.IngestClearance) {
		return
	}
	if s.rejectFollowerWrite(w) {
		return
	}
	if err := s.lib.DeleteVideoAsCtx(r.Context(), userOf(r), name); err != nil {
		switch {
		case errors.Is(err, classminer.ErrUnknownVideo):
			writeError(w, http.StatusNotFound, fmt.Sprintf("no video %q", name))
		case errors.Is(err, classminer.ErrForbidden):
			writeError(w, http.StatusForbidden, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	if s.lib.IndexStale() {
		if err := s.rebuilder.EnsureLive(); err != nil {
			// The delete is committed; only the rebuild failed. Report it
			// rather than failing the request — the stale index self-heals
			// on the rebuilder's next successful pass.
			s.opts.Logf("rebuild after deleting %q: %v", name, err)
		}
	} else {
		s.rebuilder.Kick()
	}
	s.opts.Logf("deleted video %q", name)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name, "indexLive": !s.lib.IndexStale()})
}

// --- POST /v1/search -------------------------------------------------------

type searchRequest struct {
	// Query is a raw shot feature vector (query by example).
	Query []float64 `json:"query,omitempty"`
	// Video/Shot instead name an indexed shot to use as the example.
	Video string `json:"video,omitempty"`
	Shot  int    `json:"shot,omitempty"`
	K     int    `json:"k,omitempty"`
}

type searchHit struct {
	Video   string   `json:"video"`
	Shot    int      `json:"shot"`
	Start   int      `json:"start"`
	End     int      `json:"end"`
	Concept string   `json:"concept"`
	Path    []string `json:"path"`
	Dist    float64  `json:"dist"`
}

type searchResponse struct {
	Hits   []searchHit            `json:"hits"`
	Stats  classminer.SearchStats `json:"stats"`
	K      int                    `json:"k"`
	Cached bool                   `json:"cached"`
}

// resolveQuery turns a search request's query spec (raw vector or
// video+shot example) into a feature vector. On failure it writes the HTTP
// error and returns false.
func (s *Server) resolveQuery(w http.ResponseWriter, u access.User, req searchRequest) ([]float64, bool) {
	query := req.Query
	if req.Video != "" {
		ve := s.lib.Video(req.Video)
		if ve == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no video %q", req.Video))
			return nil, false
		}
		if !s.lib.Allowed(u, s.subclusterPath(ve.Subcluster)) {
			writeError(w, http.StatusForbidden, fmt.Sprintf("subcluster %q not accessible", ve.Subcluster))
			return nil, false
		}
		if req.Shot < 0 || req.Shot >= len(ve.Result.Shots) {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("video %q has %d shots", req.Video, len(ve.Result.Shots)))
			return nil, false
		}
		query = ve.Result.Shots[req.Shot].Feature()
	}
	if len(query) == 0 {
		writeError(w, http.StatusBadRequest, "provide either query (feature vector) or video+shot")
		return nil, false
	}
	if want := s.featureDim(); want > 0 && len(query) != want {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("query has %d dims, want %d", len(query), want))
		return nil, false
	}
	return query, true
}

// clampK applies the search-k defaults and bounds.
func clampK(k int) int {
	if k <= 0 {
		return 10
	}
	if k > 100 {
		return 100
	}
	return k
}

// buildSearchResponse renders ranked hits into the JSON response shape.
func buildSearchResponse(hits []classminer.SearchHit, stats classminer.SearchStats, k int) searchResponse {
	resp := searchResponse{Hits: make([]searchHit, 0, len(hits)), Stats: stats, K: k}
	for _, h := range hits {
		concept := ""
		if n := len(h.Entry.Path); n > 0 {
			concept = h.Entry.Path[n-1]
		}
		resp.Hits = append(resp.Hits, searchHit{
			Video: h.Entry.VideoName, Shot: h.Entry.Shot.Index,
			Start: h.Entry.Shot.Start, End: h.Entry.Shot.End,
			Concept: concept, Path: h.Entry.Path, Dist: h.Dist,
		})
	}
	return resp
}

// hitsPool recycles the ranked-hit scratch between uncached searches: the
// library's SearchInto fills it and buildSearchResponse copies what the
// response (and the cache) retain, so the scratch itself never escapes.
// Capacity covers the clamped k, so steady state never regrows it.
var hitsPool = sync.Pool{New: func() any {
	s := make([]classminer.SearchHit, 0, 128)
	return &s
}}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sp := trace.SpanFrom(r.Context())
	u := userOf(r)
	rq := sp.Start("resolve")
	query, ok := s.resolveQuery(w, u, req)
	rq.End()
	if !ok {
		return
	}
	k := clampK(req.K)
	key := makeKey(s.lib.Generation(), u, query, k)
	cg := sp.Start("cache.get")
	resp, hit := s.cache.Get(key, query)
	cg.End()
	if hit {
		sp.SetAttr("cache", "hit")
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if s.deadlineExpired(w, r) {
		return
	}
	scratch := hitsPool.Get().(*[]classminer.SearchHit)
	hits, stats, err := s.lib.SearchIntoCtx(r.Context(), (*scratch)[:0], u, query, k)
	if err != nil && s.healColdIndex() {
		hits, stats, err = s.lib.SearchIntoCtx(r.Context(), (*scratch)[:0], u, query, k)
	}
	if err != nil {
		hitsPool.Put(scratch)
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if s.deadlineExpired(w, r) {
		hitsPool.Put(scratch)
		return
	}
	resp = buildSearchResponse(hits, stats, k)
	*scratch = hits[:0]
	hitsPool.Put(scratch)
	cp := sp.Start("cache.put")
	s.cache.Put(key, query, resp)
	cp.End()
	writeJSON(w, http.StatusOK, resp)
}

// --- POST /v1/search/batch -------------------------------------------------

// maxBatchItems bounds one batch request; larger workloads should paginate.
const maxBatchItems = 256

type batchSearchRequest struct {
	// Items are query specs (raw vector or video+shot); per-item K is not
	// supported — the request-level K applies to every item.
	Items []searchRequest `json:"items"`
	K     int             `json:"k,omitempty"`
}

type batchSearchResponse struct {
	Results []searchResponse `json:"results"`
}

// handleSearchBatch answers many searches in one round trip: items already
// in the generation-keyed cache are served from it, the rest fan out across
// cores via Library.SearchBatch, and every fresh answer is cached
// individually so later single-item searches hit too.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req batchSearchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d items, max %d", len(req.Items), maxBatchItems))
		return
	}
	u := userOf(r)
	k := clampK(req.K)
	queries := make([][]float64, len(req.Items))
	for i, item := range req.Items {
		if item.K != 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("item %d sets k; set it once at the request level", i))
			return
		}
		q, ok := s.resolveQuery(w, u, item)
		if !ok {
			return
		}
		queries[i] = q
	}
	gen := s.lib.Generation()
	results := make([]searchResponse, len(req.Items))
	// Deduplicate uncached items by cache key so repeated specs in one
	// batch run a single search; itemMiss maps each uncached item to its
	// slot in the deduped fan-out.
	itemMiss := make([]int, len(req.Items))
	missPos := map[cacheKey]int{}
	var missKeys []cacheKey
	var missQueries [][]float64
	for i, q := range queries {
		key := makeKey(gen, u, q, k)
		if resp, ok := s.cache.Get(key, q); ok {
			resp.Cached = true
			results[i] = resp
			itemMiss[i] = -1
			continue
		}
		pos, dup := missPos[key]
		if dup && !sameQuery(missQueries[pos], q) {
			dup = false // 64-bit hash collision: keep the queries separate
		}
		if !dup {
			pos = len(missQueries)
			missPos[key] = pos
			missKeys = append(missKeys, key)
			missQueries = append(missQueries, q)
		}
		itemMiss[i] = pos
	}
	if len(missQueries) > 0 {
		if s.deadlineExpired(w, r) {
			return
		}
		hits, stats, err := s.lib.SearchBatch(u, missQueries, k)
		if err != nil && s.healColdIndex() {
			hits, stats, err = s.lib.SearchBatch(u, missQueries, k)
		}
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		if s.deadlineExpired(w, r) {
			return
		}
		missResp := make([]searchResponse, len(missQueries))
		for pos := range missQueries {
			missResp[pos] = buildSearchResponse(hits[pos], stats[pos], k)
			s.cache.Put(missKeys[pos], missQueries[pos], missResp[pos])
		}
		for i, pos := range itemMiss {
			if pos >= 0 {
				results[i] = missResp[pos]
			}
		}
	}
	writeJSON(w, http.StatusOK, batchSearchResponse{Results: results})
}

// healColdIndex recovers the one search failure that is the server's own
// rather than the client's: a populated library whose index has never been
// fit — a read replica that has only ever applied replicated records, or a
// freshly recovered process before its first local mutation. It fits the
// index synchronously (single-flight via the rebuilder) and reports whether
// retrying the search is worthwhile.
func (s *Server) healColdIndex() bool {
	if s.lib.Size() == 0 || !s.lib.IndexStale() {
		return false
	}
	return s.rebuilder.EnsureLive() == nil
}

// featureDim returns the library's shot-feature dimensionality (0 when no
// video is registered yet). The dimensionality is a constant of the
// feature extractor, so the first successful resolution is cached and the
// per-library scan never runs again on the hot search path.
func (s *Server) featureDim() int {
	if d := s.featDim.Load(); d > 0 {
		return int(d)
	}
	for _, name := range s.lib.VideoNames() {
		if ve := s.lib.Video(name); ve != nil && len(ve.Result.Shots) > 0 {
			d := len(ve.Result.Shots[0].Feature())
			s.featDim.Store(int64(d))
			return d
		}
	}
	return 0
}

// --- GET /v1/events/{kind} -------------------------------------------------

// parseEventKind accepts the String() spellings plus natural aliases.
func parseEventKind(s string) (vidmodel.EventKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "presentation":
		return vidmodel.EventPresentation, nil
	case "dialog", "dialogue":
		return vidmodel.EventDialog, nil
	case "clinical-operation", "clinical operation", "clinical", "operation":
		return vidmodel.EventClinicalOperation, nil
	}
	return vidmodel.EventUnknown, fmt.Errorf("unknown event kind %q (want presentation, dialog or clinical-operation)", s)
}

type eventSceneJSON struct {
	Video      string  `json:"video"`
	Scene      int     `json:"scene"`
	StartFrame int     `json:"startFrame"`
	EndFrame   int     `json:"endFrame"`
	StartSec   float64 `json:"startSec"`
	EndSec     float64 `json:"endSec"`
	Shots      int     `json:"shots"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, kindName string) {
	kind, err := parseEventKind(kindName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	refs := s.lib.ScenesByEvent(userOf(r), kind)
	scenes := []eventSceneJSON{}
	for _, ref := range refs {
		fps := 0.0
		if ve := s.lib.Video(ref.VideoName); ve != nil {
			fps = ve.Result.Video.FPS
		}
		first, last := ref.Scene.FrameSpan()
		scenes = append(scenes, eventSceneJSON{
			Video: ref.VideoName, Scene: ref.Scene.Index,
			StartFrame: first, EndFrame: last,
			StartSec: frameSec(first, fps), EndSec: frameSec(last, fps),
			Shots: ref.Scene.ShotCount(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"kind": kind.String(), "scenes": scenes})
}

// --- POST /v1/videos (async ingestion) -------------------------------------

type ingestRequest struct {
	// Subcluster places the video in the concept hierarchy (required).
	Subcluster string `json:"subcluster"`
	// Corpus names a synthetic corpus script to mine (with Scale and Seed).
	Corpus string  `json:"corpus,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	// Saved instead supplies an already-mined result to load as-is.
	Saved *store.SavedResult `json:"saved,omitempty"`
	// Name overrides the registered video name.
	Name string `json:"name,omitempty"`
	// Replace opts into supersede-on-conflict: when the name is already
	// registered the new mining result replaces it (atomically journaled
	// on a durable library) instead of the request failing with 409.
	Replace bool `json:"replace,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.requireClearance(w, r, s.opts.IngestClearance) {
		return
	}
	if s.rejectFollowerWrite(w) {
		return
	}
	// The memory watchdog's last stage: refuse new data while reads keep
	// answering. Recovery is automatic — once the heap drops back under the
	// budget the watchdog steps down and ingest reopens.
	if s.admit.degradeLevel() >= admit.LevelRejectIngest {
		s.admit.countReject(rejMemory)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable,
			"server under memory pressure; ingest temporarily disabled")
		return
	}
	// Durable-backlog backpressure, same shape as the memory stage: when the
	// WAL outruns its checkpoint/compaction budget, or an attached follower's
	// replication lag exceeds its budget, shed new data instead of digging
	// the hole deeper. Both conditions drain on their own (background
	// checkpointer/compactor, follower pulls), so Retry-After is honest.
	if reason, msg, hit := s.writeBackpressure(); hit {
		s.admit.countReject(reason)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, msg)
		return
	}
	var req ingestRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Subcluster == "" || !s.lib.HasSubcluster(req.Subcluster) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown subcluster %q", req.Subcluster))
		return
	}
	if (req.Corpus == "") == (req.Saved == nil) {
		writeError(w, http.StatusBadRequest, "provide exactly one of corpus or saved")
		return
	}
	name := req.Name
	switch {
	case req.Corpus != "":
		if synth.CorpusScript(req.Corpus, 1, 1) == nil {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("unknown corpus video %q (have %v)", req.Corpus, synth.CorpusNames()))
			return
		}
		if name == "" {
			name = req.Corpus
		}
	default:
		if name == "" {
			name = req.Saved.VideoName
		}
		if name == "" {
			writeError(w, http.StatusBadRequest, "saved result has no video name")
			return
		}
	}
	u := userOf(r)
	if ve := s.lib.Video(name); ve != nil {
		if !req.Replace {
			writeError(w, http.StatusConflict, fmt.Sprintf("video %q already registered", name))
			return
		}
		// Superseding destroys the existing registration, so it is gated
		// like DELETE: the caller must be allowed to see it. This check is
		// a fast 403; the authoritative one runs atomically inside
		// ReplaceResultAs/ReplaceVideoAs when the job applies.
		if !s.lib.Allowed(u, s.subclusterPath(ve.Subcluster)) {
			writeError(w, http.StatusForbidden, fmt.Sprintf("subcluster %q not accessible", ve.Subcluster))
			return
		}
	}
	if s.deadlineExpired(w, r) {
		return
	}
	job := &Job{Video: name, Subcluster: req.Subcluster, RequestID: requestID(r), req: req, user: u}
	if err := s.pool.Submit(job); err != nil {
		if errors.Is(err, ErrQueueFull) && s.metrics != nil {
			s.metrics.ingestRejected.Inc()
		}
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.opts.Logf("job %s: queued ingest of %q into %q rid=%s", job.ID, name, req.Subcluster, job.RequestID)
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, s.pool.Get(job.ID))
}

// runJob executes one ingestion on a pool worker: mine (or decode) the
// video and register it. Registration inserts the new shots into the
// serving index incrementally, so the video is searchable the moment the
// job completes; the O(library) refit is left to the coalesced background
// rebuilder and only the cold-start case (no index yet, or a mutation the
// incremental path could not absorb) builds synchronously — single-flight,
// so a burst of first ingests shares one build.
func (s *Server) runJob(j *Job) {
	// The originating request's context is long dead by the time a worker
	// picks the job up, so the job runs under its own trace, correlated back
	// to the submission through the request id it carries. Job traces go
	// through the same tail sampler as requests: a failed job is always kept.
	var sid [8]byte
	trace.PutUint64(sid[:], trace.RandU64())
	tr, root := s.tracer.StartTrace("job", sid, "")
	root.SetAttr("video", j.Video)
	ctx := context.Background()
	if root != nil {
		ctx = trace.With(ctx, root)
	}
	err := func() error {
		if j.req.Saved != nil {
			res, err := store.DecodeResult(j.req.Saved)
			if err != nil {
				return err
			}
			res.Video.Name = j.Video
			if j.req.Replace {
				return s.lib.ReplaceResultAsCtx(ctx, j.user, res, j.Subcluster)
			}
			return s.lib.AddResultCtx(ctx, res, j.Subcluster)
		}
		scale := j.req.Scale
		if scale <= 0 {
			scale = 0.5
		}
		seed := j.req.Seed
		if seed == 0 {
			seed = 2003
		}
		script := synth.CorpusScript(j.req.Corpus, scale, seed)
		if script == nil {
			return fmt.Errorf("unknown corpus video %q", j.req.Corpus)
		}
		v, err := synth.Generate(synth.DefaultConfig(), script, seed)
		if err != nil {
			return err
		}
		v.Name = j.Video
		if j.req.Replace {
			_, err = s.lib.ReplaceVideoAsCtx(ctx, j.user, v, j.Subcluster)
		} else {
			_, err = s.lib.AddVideoCtx(ctx, v, j.Subcluster)
		}
		return err
	}()
	if err == nil {
		if s.lib.IndexStale() {
			err = s.rebuilder.EnsureLive()
		} else {
			s.rebuilder.Kick()
		}
	}
	meta := trace.Meta{Route: "job", RequestID: j.RequestID}
	if err != nil {
		meta.Err = err.Error()
	}
	s.tracer.Finish(tr, meta)
	if err != nil {
		s.opts.Logf("job %s: failed: %v rid=%s", j.ID, err, j.RequestID)
		s.pool.Fail(j, err)
		return
	}
	s.opts.Logf("job %s: ingested %q into %q rid=%s", j.ID, j.Video, j.Subcluster, j.RequestID)
}

// --- GET /v1/jobs/{id} -----------------------------------------------------

func (s *Server) handleJob(w http.ResponseWriter, _ *http.Request, id string) {
	j := s.pool.Get(id)
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// --- POST /v1/admin/save ---------------------------------------------------

func (s *Server) handleAdminSave(w http.ResponseWriter, r *http.Request) {
	if !s.requireClearance(w, r, classminer.Administrator) {
		return
	}
	if s.opts.SnapshotPath == "" {
		writeError(w, http.StatusNotImplemented, "no snapshot path configured")
		return
	}
	if err := store.WriteFileAtomic(s.opts.SnapshotPath, s.lib.Save); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.opts.Logf("library snapshot saved to %s", s.opts.SnapshotPath)
	writeJSON(w, http.StatusOK, map[string]string{"saved": s.opts.SnapshotPath})
}

// --- POST /v1/admin/checkpoint ---------------------------------------------

// handleAdminCheckpoint folds the durable library's write-ahead log into a
// fresh snapshot on demand (the background checkpointer handles the
// threshold-driven case). Only meaningful when the daemon runs with
// -data-dir.
func (s *Server) handleAdminCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.requireClearance(w, r, classminer.Administrator) {
		return
	}
	if !s.lib.Durable() {
		writeError(w, http.StatusNotImplemented, "library is not durable (start with -data-dir)")
		return
	}
	if err := s.lib.Checkpoint(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	ws, _ := s.lib.WALStats()
	s.opts.Logf("admin checkpoint: generation %d", ws.Generation)
	writeJSON(w, http.StatusOK, map[string]any{"checkpointed": true, "wal": ws})
}

// --- POST /v1/admin/compact ------------------------------------------------

// handleAdminCompact rewrites the WAL's sealed segments on demand, dropping
// registrations that deletes and replacements superseded (the background
// compactor handles the dead-bytes-threshold case). Only meaningful when
// the daemon runs with -data-dir.
func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	if !s.requireClearance(w, r, classminer.Administrator) {
		return
	}
	if !s.lib.Durable() {
		writeError(w, http.StatusNotImplemented, "library is not durable (start with -data-dir)")
		return
	}
	cs, err := s.lib.Compact()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	ws, _ := s.lib.WALStats()
	s.opts.Logf("admin compaction: %d records (%d bytes) dropped", cs.RecordsDropped, cs.BytesFreed)
	writeJSON(w, http.StatusOK, map[string]any{"compacted": cs, "wal": ws})
}

// --- replication: /v1/repl/*, /v1/admin/promote ------------------------------

// handleReplPull and handleReplSnapshot route to the replication hub after
// the clearance gate — the protocol itself (cursor validation, long-poll,
// 410 semantics) lives in internal/repl, so its tests exercise the real
// wire format without a Server.
func (s *Server) handleReplPull(w http.ResponseWriter, r *http.Request) {
	if !s.requireClearance(w, r, classminer.Administrator) {
		return
	}
	if s.opts.ReplHub == nil {
		writeError(w, http.StatusNotImplemented, "replication not enabled (leader needs -data-dir)")
		return
	}
	s.opts.ReplHub.ServePull(w, r)
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.requireClearance(w, r, classminer.Administrator) {
		return
	}
	if s.opts.ReplHub == nil {
		writeError(w, http.StatusNotImplemented, "replication not enabled (leader needs -data-dir)")
		return
	}
	s.opts.ReplHub.ServeSnapshot(w, r)
}

// handleAdminPromote flips a follower into a write-accepting leader: the
// pull loops stop (blocking until the in-flight batch is applied), and the
// write path opens. Idempotent — promoting a leader (or twice) reports the
// current role without error, so a failover script can fire it blindly.
// The node's own WAL journaled every replicated record, so no state needs
// rebuilding; what was applied before the old leader died is exactly what
// the new leader serves.
func (s *Server) handleAdminPromote(w http.ResponseWriter, r *http.Request) {
	if !s.requireClearance(w, r, classminer.Administrator) {
		return
	}
	if s.opts.Follower == nil {
		writeJSON(w, http.StatusOK, map[string]any{"role": s.role(), "promoted": false})
		return
	}
	promoted := s.promoted.CompareAndSwap(false, true)
	if promoted {
		s.opts.Follower.Promote()
		s.opts.Logf("promoted to leader; replication stopped")
	}
	writeJSON(w, http.StatusOK, map[string]any{"role": s.role(), "promoted": promoted})
}

// rejectFollowerWrite refuses mutations on an unpromoted follower, pointing
// the client at the leader. 503 rather than 403: the client's request is
// legitimate, this node just isn't the one that takes it (and will be, the
// moment it is promoted).
func (s *Server) rejectFollowerWrite(w http.ResponseWriter) bool {
	if !s.isFollower() {
		return false
	}
	if s.opts.LeaderURL != "" {
		w.Header().Set("X-Repl-Leader", s.opts.LeaderURL)
	}
	writeError(w, http.StatusServiceUnavailable, "read-only follower; send writes to the leader")
	return true
}

// writeBackpressure reports whether the durable write path should shed new
// ingest, and why: the WAL's un-checkpointed or dead bytes exceeded
// WALPressureBytes, or an attached follower's unshipped backlog exceeded
// ReplLagBytes.
func (s *Server) writeBackpressure() (rejectReason, string, bool) {
	if b := s.opts.WALPressureBytes; b > 0 {
		if ws, ok := s.lib.WALStats(); ok && (ws.Bytes > b || ws.DeadBytes > b) {
			return rejWALPressure, fmt.Sprintf(
				"WAL backlog %d bytes (%d dead) exceeds budget %d; retry after checkpoint/compaction",
				ws.Bytes, ws.DeadBytes, b), true
		}
	}
	if b := s.opts.ReplLagBytes; b > 0 && s.opts.ReplHub != nil {
		if _, lag := s.opts.ReplHub.MaxLag(); lag > b {
			return rejReplLag, fmt.Sprintf(
				"replication lag %d bytes exceeds budget %d; retry once followers catch up",
				lag, b), true
		}
	}
	return 0, "", false
}
