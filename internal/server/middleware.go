package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"classminer/internal/access"
)

// userKey carries the authenticated user through the request context.
type userKeyT struct{}

var userKey userKeyT

// userOf returns the authenticated user installed by withAuth.
func userOf(r *http.Request) access.User {
	u, _ := r.Context().Value(userKey).(access.User)
	return u
}

// token extracts the request's credential: "Authorization: Bearer <tok>"
// wins, then the X-Api-Token header. Empty string means unauthenticated.
func token(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
		return h // a malformed header still fails the lookup below
	}
	return r.Header.Get("X-Api-Token")
}

// withAuth maps the request token to an access.User and stores it in the
// context — the paper's multilevel access control as middleware. Every
// downstream policy check (search filtering, scene queries, admin gates)
// keys off this identity. /healthz stays open for liveness probes.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Match the route normalisation ("/healthz/" serves health too) so
		// liveness probes never need credentials in any spelling.
		if strings.TrimSuffix(r.URL.Path, "/") == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		tok := token(r)
		var u access.User
		switch {
		case tok == "" && s.opts.Anonymous != nil:
			u = *s.opts.Anonymous
		case tok == "":
			writeError(w, http.StatusUnauthorized, "credentials required (Bearer token or X-Api-Token)")
			return
		default:
			known, ok := s.opts.Tokens[tok]
			if !ok {
				writeError(w, http.StatusUnauthorized, "unknown token")
				return
			}
			u = known
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), userKey, u)))
	})
}

// requireClearance enforces a minimum clearance on an endpoint (above and
// beyond the per-result policy filtering). It writes the 403 itself and
// reports whether the request may proceed.
func (s *Server) requireClearance(w http.ResponseWriter, r *http.Request, min access.Clearance) bool {
	if u := userOf(r); u.Clearance < min {
		writeError(w, http.StatusForbidden,
			"clearance "+u.Clearance.String()+" below required "+min.String())
		return false
	}
	return true
}

// statusWriter records the response code and body size for the request log
// and the per-route metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming responses (pprof
// profiles, long listings behind a real http.Server) can flush through the
// logging wrapper instead of buffering to completion.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withLogging emits one line per request and feeds the per-route metrics.
// /healthz is counted but not logged: liveness probes arrive every few
// seconds and would otherwise dominate the request log.
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		route := routeTemplate(r.URL.Path)
		s.metrics.observe(route, sw.status, sw.bytes, elapsed)
		if route == "/healthz" || s.opts.quiet {
			// With no log sink, skip the call entirely: rendering the
			// varargs (boxing the status and duration, heap-copying the
			// string headers) costs several allocations per request that a
			// no-op Logf would silently throw away.
			return
		}
		// Response size is deliberately not in the line: boxing the int64
		// for the varargs would cost the hot path an allocation, and
		// http_response_bytes_total carries it already.
		s.opts.Logf("%s %s -> %d (%s)", r.Method, r.URL.Path, sw.status, elapsed.Round(time.Microsecond))
	})
}

// withRecovery turns a handler panic into a 500 instead of killing the
// connection (and, under http.Server, spamming the log with a stack only).
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.opts.Logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// jsonScratch pairs a reusable buffer with an encoder bound to it, so the
// response hot path allocates neither per request.
type jsonScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonPool = sync.Pool{New: func() any {
	s := &jsonScratch{}
	s.enc = json.NewEncoder(&s.buf)
	s.enc.SetIndent("", "  ")
	return s
}}

// jsonPoolMaxBuf caps what goes back in the pool: one outsized response
// (a big batch, a long listing) must not pin its buffer forever.
const jsonPoolMaxBuf = 1 << 20

// writeJSON writes v with the given status, encoding through a pooled
// buffer so the body is one Write and the encoder state is reused across
// requests.
func writeJSON(w http.ResponseWriter, status int, v any) {
	s := jsonPool.Get().(*jsonScratch)
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		// v came from our own handlers; an encode failure is a programming
		// error. Fall back to a plain 500 rather than a half-written body.
		jsonPool.Put(s)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(s.buf.Bytes())
	if s.buf.Cap() <= jsonPoolMaxBuf {
		jsonPool.Put(s)
	}
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
