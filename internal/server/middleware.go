package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"

	"classminer/internal/access"
	"classminer/internal/trace"
)

// userKey carries the authenticated user through the request context on the
// fallback path (handlers driven directly in tests, without withTrace).
type userKeyT struct{}

var userKey userKeyT

// userOf returns the authenticated user installed by withAuth. On the
// serving path the user lives in the pooled reqState — no context value, no
// interface boxing; the context fallback keeps bare-handler tests working.
func userOf(r *http.Request) access.User {
	if rs := stateOf(r); rs != nil {
		return rs.user
	}
	u, _ := r.Context().Value(userKey).(access.User)
	return u
}

// token extracts the request's credential: "Authorization: Bearer <tok>"
// wins, then the X-Api-Token header. Empty string means unauthenticated.
func token(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
		return h // a malformed header still fails the lookup below
	}
	return r.Header.Get("X-Api-Token")
}

// withAuth maps the request token to an access.User — the paper's
// multilevel access control as middleware. Every downstream policy check
// (search filtering, scene queries, admin gates) keys off this identity,
// read back through userOf. The resolved user is written into the request's
// pooled reqState; only when the chain runs without withTrace does it fall
// back to a context value. /healthz stays open for liveness probes.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Match the route normalisation ("/healthz/" serves health too) so
		// liveness and readiness probes never need credentials in any
		// spelling.
		if p := strings.TrimSuffix(r.URL.Path, "/"); p == "/healthz" || p == "/readyz" {
			next.ServeHTTP(w, r)
			return
		}
		sp := trace.StartSpan(r.Context(), "auth")
		tok := token(r)
		var u access.User
		switch {
		case tok == "" && s.opts.Anonymous != nil:
			u = *s.opts.Anonymous
		case tok == "":
			sp.End()
			writeError(w, http.StatusUnauthorized, "credentials required (Bearer token or X-Api-Token)")
			return
		default:
			known, ok := s.opts.Tokens[tok]
			if !ok {
				sp.End()
				writeError(w, http.StatusUnauthorized, "unknown token")
				return
			}
			u = known
		}
		sp.End()
		if rs, ok := w.(*reqState); ok {
			rs.user = u
			next.ServeHTTP(w, r)
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), userKey, u)))
	})
}

// requireClearance enforces a minimum clearance on an endpoint (above and
// beyond the per-result policy filtering). It writes the 403 itself and
// reports whether the request may proceed.
func (s *Server) requireClearance(w http.ResponseWriter, r *http.Request, min access.Clearance) bool {
	if u := userOf(r); u.Clearance < min {
		writeError(w, http.StatusForbidden,
			"clearance "+u.Clearance.String()+" below required "+min.String())
		return false
	}
	return true
}

// withRecovery turns a handler panic into a 500 instead of killing the
// connection (and, under http.Server, spamming the log with a stack only).
// When the handler had already written part of its response before
// panicking, writing a second status/body would corrupt what is on the
// wire, so the recovery leaves the response truncated and only notes the
// panic — on the reqState, so the trace is kept as an error, and on the
// http_panics_total counter either way.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.opts.Logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				s.metrics.countPanic()
				rs, ok := w.(*reqState)
				if ok {
					rs.err = fmt.Sprintf("panic: %v", v)
				}
				if ok && rs.wrote {
					return // mid-response: the envelope below would double-write
				}
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// jsonScratch pairs a reusable buffer with an encoder bound to it, so the
// response hot path allocates neither per request.
type jsonScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonPool = sync.Pool{New: func() any {
	s := &jsonScratch{}
	s.enc = json.NewEncoder(&s.buf)
	s.enc.SetIndent("", "  ")
	return s
}}

// jsonPoolMaxBuf caps what goes back in the pool: one outsized response
// (a big batch, a long listing) must not pin its buffer forever.
const jsonPoolMaxBuf = 1 << 20

// writeJSON writes v with the given status, encoding through a pooled
// buffer so the body is one Write and the encoder state is reused across
// requests.
func writeJSON(w http.ResponseWriter, status int, v any) {
	s := jsonPool.Get().(*jsonScratch)
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		// v came from our own handlers; an encode failure is a programming
		// error. Fall back to a plain 500 rather than a half-written body.
		jsonPool.Put(s)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(s.buf.Bytes())
	if s.buf.Cap() <= jsonPoolMaxBuf {
		jsonPool.Put(s)
	}
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
