// Package server is the online half of the paper's thesis: mined content
// structure exists so a hospital-scale video database can be indexed,
// managed and *accessed* efficiently (§2, §6). It wraps a classminer.Library
// in a concurrent HTTP/JSON API — content-hierarchy browsing, k-NN shot
// search through the hierarchical index (with the Eq. 24/25 cost statistics
// in every response), mined-event scene queries, and asynchronous ingestion
// — with the paper's multilevel access control enforced as authentication
// middleware on every request.
//
// Concurrency model: queries run lock-free against the library's current
// index snapshot (copy-on-write, see Library.BuildIndex); ingestion runs in
// a bounded worker pool so uploads never block queries; repeated searches
// are answered from a generation-keyed LRU cache that self-invalidates
// whenever the library or its access policy changes.
package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"classminer"
	"classminer/internal/access"
	"classminer/internal/admit"
	"classminer/internal/metrics"
	"classminer/internal/repl"
	"classminer/internal/trace"
)

// Options configures a Server. The zero value serves anonymously at Public
// clearance with a small cache and one ingest worker.
type Options struct {
	// Tokens maps bearer-token values to the users they authenticate
	// (presented as "Authorization: Bearer <token>" or "X-Api-Token").
	Tokens map[string]access.User
	// Anonymous, when non-nil, is the user assumed for requests that carry
	// no token. When nil, unauthenticated requests (except /healthz) get 401.
	Anonymous *access.User
	// IngestClearance is the least clearance allowed to POST new videos
	// (default Clinician).
	IngestClearance access.Clearance
	// CacheSize bounds the search LRU cache (default 256; negative disables).
	CacheSize int
	// Workers is the ingest pool size (default 1).
	Workers int
	// QueueDepth bounds pending ingest jobs (default 8); a full queue
	// returns 503 rather than blocking the request.
	QueueDepth int
	// SnapshotPath is where POST /v1/admin/save checkpoints the library
	// ("" disables the endpoint).
	SnapshotPath string
	// RebuildBudget is the index staleness fraction (entries inserted or
	// removed since the last full fit, relative to that fit) that warrants
	// a background refit (default 0.25; mutations below it are served by
	// the incremental overlay alone).
	RebuildBudget float64
	// RebuildDebounce is how long the background rebuilder waits after a
	// mutation for further mutations to coalesce into the same refit
	// (default 250ms).
	RebuildDebounce time.Duration
	// Metrics is the registry GET /metrics exposes. When nil one is created
	// unless DisableMetrics is set; pass a shared registry to combine the
	// server's series with the WAL's (see wal.Options.Metrics).
	Metrics *metrics.Registry
	// DisableMetrics turns instrumentation and GET /metrics off entirely.
	DisableMetrics bool
	// EnablePprof serves net/http/pprof under /debug/pprof/ to
	// Administrator-clearance callers. Off by default: profiles expose
	// internals far beyond the API's policy filtering.
	EnablePprof bool

	// --- replication (see internal/repl and the README's "Replication &
	// failover" section) ---

	// ReplHub, when non-nil, exports the library's per-shard WAL to
	// followers at GET /v1/repl/pull and /v1/repl/snapshot (both gated on
	// Administrator clearance).
	ReplHub *repl.Hub
	// Follower, when non-nil, marks this node a read replica: ingest and
	// delete are refused with 503 (pointing at LeaderURL) until
	// POST /v1/admin/promote flips the role, and /readyz reports seeding
	// state and replication lag.
	Follower *repl.Follower
	// LeaderURL is advertised to rejected writers on a follower via the
	// X-Repl-Leader response header.
	LeaderURL string
	// WALPressureBytes sheds ingest with 503 + Retry-After once the WAL's
	// un-checkpointed or dead bytes exceed it (0 disables). The background
	// checkpointer/compactor drains the condition.
	WALPressureBytes int64
	// ReplLagBytes sheds ingest with 503 + Retry-After once the worst
	// attached follower's unshipped backlog exceeds it (0 disables; needs
	// ReplHub). Follower pulls drain the condition.
	ReplLagBytes int64
	// Logf receives one line per request and per job transition (nil = silent).
	Logf func(format string, args ...any)

	// --- admission control (see internal/admit and the README's "Traffic
	// hardening" section) ---

	// Rate is the per-token sustained request rate (requests/second) for
	// Public-clearance callers; higher tiers get multiples of it. 0 disables
	// rate limiting.
	Rate float64
	// Burst is the token-bucket depth (default 2*Rate).
	Burst float64
	// RateOverrides pins specific tokens to their own limits, bypassing the
	// tier scaling (keys are the bearer-token values of Tokens).
	RateOverrides map[string]admit.Limit
	// MaxInflight caps concurrently executing search-class requests; the
	// mutate and admin classes get MaxInflight/4 and /8 (floors of 4 and 2).
	// Default 256; negative disables the concurrency gates.
	MaxInflight int
	// MaxWait is how long a request past the concurrency cap may park
	// waiting for a slot before it is shed with 503 (default 100ms).
	MaxWait time.Duration
	// ReqTimeout is the per-request deadline for search- and mutate-class
	// routes (admin gets 4x), installed as a context deadline. Default 10s;
	// negative disables deadlines.
	ReqTimeout time.Duration
	// MemBudget is the heap budget in bytes. Above it the server degrades
	// in stages (shed cache, pause rebuilds, reject ingest) and recovers
	// automatically. 0 disables the watchdog.
	MemBudget int64
	// HeapSample overrides the watchdog's heap sampler (tests inject
	// pressure here; nil means the Go runtime's live-heap bytes).
	HeapSample func() uint64
	// MemCheckInterval is the watchdog sampling period (default 1s).
	MemCheckInterval time.Duration

	// --- request tracing (see internal/trace and the README's
	// "Observability" section) ---

	// TraceSample is the head-sampling probability in [0,1]: that fraction
	// of requests is traced end to end regardless of outcome. Slow and
	// failed (5xx) requests are always kept independently of it.
	TraceSample float64
	// TraceSlow is the tail-sampling threshold: any request at least this
	// slow keeps its trace. 0 means the default (500ms); negative keeps
	// every trace (the daemon's `-trace-slow 0` spelling).
	TraceSlow time.Duration
	// TraceRing bounds retained traces (default 256).
	TraceRing int
	// DisableTracing turns the tracer off entirely; GET /debug/traces then
	// 404s like an unknown route. X-Request-Id is still assigned.
	DisableTracing bool

	// quiet records that Logf arrived nil, so the request hot path can skip
	// formatting entirely (rendering varargs for a no-op sink costs several
	// allocations per request).
	quiet bool
}

func (o Options) withDefaults() Options {
	if o.IngestClearance == 0 {
		o.IngestClearance = access.Clinician
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.RebuildBudget <= 0 {
		o.RebuildBudget = 0.25
	}
	if o.RebuildDebounce <= 0 {
		o.RebuildDebounce = 250 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
		o.quiet = true
	}
	if o.Burst <= 0 {
		o.Burst = 2 * o.Rate
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 256
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 100 * time.Millisecond
	}
	if o.TraceSlow == 0 {
		o.TraceSlow = 500 * time.Millisecond
	}
	if o.TraceRing <= 0 {
		o.TraceRing = 256
	}
	if o.ReqTimeout == 0 {
		o.ReqTimeout = 10 * time.Second
	}
	if o.DisableMetrics {
		o.Metrics = nil
	} else if o.Metrics == nil {
		o.Metrics = metrics.NewRegistry()
	}
	return o
}

// Library is the storage/index/search contract the server fronts. Both a
// plain *classminer.Library and the sharded router (internal/shard.Library)
// satisfy it, so the serving layer is indifferent to the shard count: the
// rebuilder kicks, the memory-watchdog degrade hooks, /v1/stats and the
// admin WAL endpoints all address whatever is behind this interface, and a
// sharded implementation fans them out per shard.
type Library interface {
	// Mutations.
	AddVideoCtx(ctx context.Context, v *classminer.Video, subcluster string) (*classminer.Result, error)
	AddResultCtx(ctx context.Context, res *classminer.Result, subcluster string) error
	ReplaceResultAsCtx(ctx context.Context, u classminer.User, res *classminer.Result, subcluster string) error
	ReplaceVideoAsCtx(ctx context.Context, u classminer.User, v *classminer.Video, subcluster string) (*classminer.Result, error)
	DeleteVideoAsCtx(ctx context.Context, u classminer.User, name string) error

	// Policy and hierarchy.
	Protect(r classminer.Rule)
	Allowed(u classminer.User, path []string) bool
	HasSubcluster(name string) bool
	ConceptPath(name string) []string

	// Index lifecycle (driven by the rebuilder).
	BuildIndexCtx(ctx context.Context) error
	RebuildNeeded(budget float64) bool
	IndexStale() bool
	IndexStaleness() float64

	// Reads.
	Generation() int64
	Stats() classminer.LibraryStats
	Video(name string) *classminer.VideoEntry
	VideoNames() []string
	Size() int
	SearchIntoCtx(ctx context.Context, dst []classminer.SearchHit, u classminer.User, query []float64, k int) ([]classminer.SearchHit, classminer.SearchStats, error)
	SearchBatch(u classminer.User, queries [][]float64, k int) ([][]classminer.SearchHit, []classminer.SearchStats, error)
	ScenesByEvent(u classminer.User, kind classminer.EventKind) []classminer.SceneRef

	// Durability.
	Save(w io.Writer) error
	Durable() bool
	Checkpoint() error
	Compact() (classminer.CompactStats, error)
	WALStats() (classminer.WALStats, bool)

	Instrument(reg *metrics.Registry)
}

var _ Library = (*classminer.Library)(nil)

// Server is the HTTP face of one Library. Create with New, serve with any
// http.Server, and Close when done to drain the ingest pool.
type Server struct {
	lib       Library
	opts      Options
	cache     *searchCache
	pool      *ingestPool
	rebuilder *rebuilder
	admit     *admission     // nil when every admission control is disabled
	metrics   *serverMetrics // nil when metrics are disabled
	tracer    *trace.Tracer  // nil when tracing is disabled
	handler   http.Handler
	started   time.Time
	requests  atomic.Int64
	featDim   atomic.Int64 // cached shot-feature dimensionality (0 = unresolved)
	promoted  atomic.Bool  // follower flipped to leader via /v1/admin/promote
}

// isFollower reports whether the node is still a read replica (configured as
// a follower and not yet promoted).
func (s *Server) isFollower() bool {
	return s.opts.Follower != nil && !s.promoted.Load()
}

// role is the node's current replication role for /readyz and /v1/stats.
func (s *Server) role() string {
	if s.isFollower() {
		return "follower"
	}
	return "leader"
}

// New builds a Server over lib and starts its ingest workers.
func New(lib Library, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		lib:     lib,
		opts:    opts,
		cache:   newSearchCache(opts.CacheSize),
		started: time.Now(),
	}
	if !opts.DisableTracing {
		slow := opts.TraceSlow
		if slow < 0 {
			slow = 0 // the tracer's keep-every-trace spelling
		}
		s.tracer = trace.New(trace.Config{
			Sample: opts.TraceSample,
			Slow:   slow,
			Ring:   opts.TraceRing,
		})
	}
	s.rebuilder = newRebuilder(lib, opts.RebuildBudget, opts.RebuildDebounce, opts.Logf, s.tracer)
	if opts.Follower != nil {
		// Replicated applies bypass the mutation handlers, so they must
		// kick the rebuilder themselves or a replica's index never refits.
		opts.Follower.SetOnApply(s.rebuilder.Kick)
	}
	s.pool = newIngestPool(opts.Workers, opts.QueueDepth, s.runJob)
	// Admission comes after cache and rebuilder: the watchdog's degrade
	// callback manipulates both and may fire as soon as sampling starts.
	s.admit = newAdmission(opts, s.applyDegrade)
	if opts.Metrics != nil {
		s.metrics = newServerMetrics(opts.Metrics, s)
		lib.Instrument(opts.Metrics)
	}
	s.handler = s.withTrace(s.withRecovery(s.withAuth(s.withAdmit(http.HandlerFunc(s.route)))))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.handler.ServeHTTP(w, r)
}

// Close stops accepting ingest jobs, waits for running ones to finish, and
// stops the background rebuilder and memory watchdog.
func (s *Server) Close() {
	s.pool.Close()
	s.rebuilder.Close()
	s.admit.Close()
}

// route dispatches by hand: the declared module version predates pattern
// ServeMux, and the API is small enough that explicit paths read better.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	if path == "" {
		path = "/"
	}
	switch {
	case path == "/healthz":
		s.handleHealth(w, r)
	case path == "/readyz":
		s.get(w, r, s.handleReady)
	case path == "/v1/stats":
		s.get(w, r, s.handleStats)
	case path == "/v1/videos":
		switch r.Method {
		case http.MethodGet:
			s.handleListVideos(w, r)
		case http.MethodPost:
			s.handleIngest(w, r)
		default:
			writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		}
	case strings.HasPrefix(path, "/v1/videos/"):
		name := strings.TrimPrefix(path, "/v1/videos/")
		switch r.Method {
		case http.MethodGet:
			s.handleVideoDetail(w, r, name)
		case http.MethodDelete:
			s.handleDeleteVideo(w, r, name)
		default:
			writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
		}
	case path == "/v1/search":
		s.post(w, r, s.handleSearch)
	case path == "/v1/search/batch":
		s.post(w, r, s.handleSearchBatch)
	case strings.HasPrefix(path, "/v1/events/"):
		s.get(w, r, func(w http.ResponseWriter, r *http.Request) {
			s.handleEvents(w, r, strings.TrimPrefix(path, "/v1/events/"))
		})
	case strings.HasPrefix(path, "/v1/jobs/"):
		s.get(w, r, func(w http.ResponseWriter, r *http.Request) {
			s.handleJob(w, r, strings.TrimPrefix(path, "/v1/jobs/"))
		})
	case path == "/v1/admin/save":
		s.post(w, r, s.handleAdminSave)
	case path == "/v1/admin/checkpoint":
		s.post(w, r, s.handleAdminCheckpoint)
	case path == "/v1/admin/compact":
		s.post(w, r, s.handleAdminCompact)
	case path == "/v1/admin/promote":
		s.post(w, r, s.handleAdminPromote)
	case path == "/v1/repl/pull":
		s.get(w, r, s.handleReplPull)
	case path == "/v1/repl/snapshot":
		s.get(w, r, s.handleReplSnapshot)
	case path == "/metrics":
		s.get(w, r, s.handleMetrics)
	case path == "/debug/pprof" || strings.HasPrefix(path, "/debug/pprof/"):
		s.handlePprof(w, r)
	case path == "/debug/traces":
		s.get(w, r, s.handleTraces)
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("no route %s", r.URL.Path))
	}
}

func (s *Server) get(w http.ResponseWriter, r *http.Request, h http.HandlerFunc) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	h(w, r)
}

func (s *Server) post(w http.ResponseWriter, r *http.Request, h http.HandlerFunc) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	h(w, r)
}
