package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"classminer"
	"classminer/internal/access"
	"classminer/internal/trace"
)

// reqState is the per-request bundle: the status/bytes-recording
// ResponseWriter, the authenticated user, the request id, and the trace.
// One pooled object carries all of it, and installing it in the context as
// the trace carrier is the request's single context allocation — withAuth
// writes the user into the struct instead of a second context value, which
// is what keeps the serving hot path on its exact allocation budget.
type reqState struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool // headers (or body) already on the wire; see withRecovery

	user access.User
	rid  string
	err  string // panic note for the trace's tail sampler

	tr   *trace.Trace
	root *trace.Span
}

// TraceSpan makes reqState the context's trace.Carrier, so downstream
// library calls resolve the active span with no extra context value.
func (rs *reqState) TraceSpan() *trace.Span { return rs.root }

func (rs *reqState) WriteHeader(code int) {
	rs.status = code
	rs.wrote = true
	rs.ResponseWriter.WriteHeader(code)
}

func (rs *reqState) Write(p []byte) (int, error) {
	rs.wrote = true
	n, err := rs.ResponseWriter.Write(p)
	rs.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming responses (pprof
// profiles, long listings behind a real http.Server) can flush through the
// recording wrapper instead of buffering to completion.
func (rs *reqState) Flush() {
	if f, ok := rs.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

var reqStatePool = sync.Pool{New: func() any { return new(reqState) }}

// stateOf returns the request's reqState (nil when the request did not pass
// through withTrace — direct handler tests, mainly).
func stateOf(r *http.Request) *reqState {
	rs, _ := trace.CarrierFrom(r.Context()).(*reqState)
	return rs
}

// requestID returns the request's id, "" when untraced.
func requestID(r *http.Request) string {
	if rs := stateOf(r); rs != nil {
		return rs.rid
	}
	return ""
}

// withTrace is the outermost middleware: it assigns the request id (echoed
// as X-Request-Id and doubling as the trace's root span id, so the header
// always names the trace), starts the span tree, records the response, and
// on the way out feeds the per-route metrics, the request log, and the
// tracer's tail sampler. An unsampled fast request costs no heap allocation
// beyond what the old logging+auth middleware already paid.
func (s *Server) withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rs := reqStatePool.Get().(*reqState)
		*rs = reqState{ResponseWriter: w, status: http.StatusOK}
		var rid [8]byte
		trace.PutUint64(rid[:], trace.RandU64())
		rs.rid = trace.HexString(rid[:])
		inbound := r.Header.Get("Traceparent")
		rs.tr, rs.root = s.tracer.StartTrace("request", rid, inbound)
		h := w.Header()
		h.Set("X-Request-Id", rs.rid)
		if rs.tr != nil && (inbound != "" || rs.tr.Sampled()) {
			// Echo the propagation context only when the caller is part of a
			// distributed trace (or head sampling fired): the common local
			// request must not pay for rendering the header.
			h.Set("Traceparent", rs.tr.Traceparent())
		}
		start := time.Now()
		next.ServeHTTP(rs, r.WithContext(trace.With(r.Context(), rs)))
		elapsed := time.Since(start)
		route := routeTemplate(r.URL.Path)
		s.metrics.observe(route, rs.status, rs.bytes, elapsed)
		view := s.tracer.Finish(rs.tr, trace.Meta{
			Route:     route,
			Method:    r.Method,
			Status:    rs.status,
			RequestID: rs.rid,
			Err:       rs.err,
		})
		if route != "/healthz" && !s.opts.quiet {
			s.opts.Logf("%s %s -> %d (%s) rid=%s",
				r.Method, r.URL.Path, rs.status, elapsed.Round(time.Microsecond), rs.rid)
			if view.Tail() {
				s.logSlow(view)
			}
		}
		*rs = reqState{} // drop the user/trace references before pooling
		reqStatePool.Put(rs)
	})
}

// logSlow emits the structured slow-request line when the tail sampler
// fired: one line with the identifiers an operator needs to pull the full
// trace, plus the per-stage breakdown inline.
func (s *Server) logSlow(v *trace.View) {
	var b strings.Builder
	fmt.Fprintf(&b, "slow request rid=%s trace=%s %s %s -> %d in %.1fms reason=%s",
		v.RequestID, v.TraceID, v.Method, v.Route, v.Status, v.DurationMS, v.Reason)
	if v.Err != "" {
		fmt.Fprintf(&b, " err=%q", v.Err)
	}
	for i := range v.Spans {
		sp := &v.Spans[i]
		if sp.Parent < 0 {
			continue // the root repeats the totals
		}
		fmt.Fprintf(&b, " %s=%dus", sp.Name, sp.DurUS)
	}
	s.opts.Logf("%s", b.String())
}

// --- GET /debug/traces -------------------------------------------------------

// handleTraces serves the trace ring to Administrator-clearance callers.
// Disabled tracing 404s exactly like an unknown route (traces expose query
// vectors' shape, routes, and timings — their absence should not advertise
// the endpoint). Filters: ?route= (template match), ?min_ms= (at least this
// slow), ?status= (exact code, or a class like "5xx").
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no route %s", r.URL.Path))
		return
	}
	if !s.requireClearance(w, r, classminer.Administrator) {
		return
	}
	q := r.URL.Query()
	route := q.Get("route")
	status := q.Get("status")
	var minMS float64
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad min_ms: "+err.Error())
			return
		}
		minMS = f
	}
	if status != "" && !validStatusFilter(status) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad status %q (want a code like 503 or a class like 5xx)", status))
		return
	}
	views := s.tracer.Recent()
	filtered := make([]*trace.View, 0, len(views))
	for _, v := range views {
		if route != "" && v.Route != route {
			continue
		}
		if v.DurationMS < minMS {
			continue
		}
		if status != "" && !statusMatches(status, v.Status) {
			continue
		}
		filtered = append(filtered, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traces": filtered,
		"stats":  s.tracer.Stats(),
	})
}

func validStatusFilter(f string) bool {
	if len(f) == 3 && f[0] >= '1' && f[0] <= '5' && f[1] == 'x' && f[2] == 'x' {
		return true
	}
	n, err := strconv.Atoi(f)
	return err == nil && n >= 100 && n < 600
}

func statusMatches(f string, status int) bool {
	if len(f) == 3 && f[1] == 'x' && f[2] == 'x' {
		return status/100 == int(f[0]-'0')
	}
	n, _ := strconv.Atoi(f)
	return status == n
}
