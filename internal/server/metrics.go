package server

import (
	"strings"
	"time"

	"classminer/internal/admit"
	"classminer/internal/metrics"
)

// routeTemplates are the label values every per-route series is registered
// under. Paths with embedded identifiers collapse onto one template so the
// metric cardinality is fixed no matter how many videos or jobs exist;
// anything the router would 404 lands on "other".
var routeTemplates = []string{
	"/healthz",
	"/readyz",
	"/v1/stats",
	"/v1/videos",
	"/v1/videos/{name}",
	"/v1/search",
	"/v1/search/batch",
	"/v1/events/{kind}",
	"/v1/jobs/{id}",
	"/v1/admin/save",
	"/v1/admin/checkpoint",
	"/v1/admin/compact",
	"/v1/admin/promote",
	"/v1/repl/pull",
	"/v1/repl/snapshot",
	"/metrics",
	"/debug/pprof",
	"/debug/traces",
	"other",
}

// routeTemplate maps a request path onto its template. It mirrors the
// dispatch in Server.route (including the trailing-slash normalisation) and
// allocates nothing: every return value is a constant or a subslice.
func routeTemplate(path string) string {
	path = strings.TrimSuffix(path, "/")
	switch path {
	case "/healthz", "/readyz", "/v1/stats", "/v1/videos", "/v1/search", "/v1/search/batch",
		"/v1/admin/save", "/v1/admin/checkpoint", "/v1/admin/compact", "/v1/admin/promote",
		"/v1/repl/pull", "/v1/repl/snapshot", "/metrics", "/debug/traces":
		return path
	}
	switch {
	case strings.HasPrefix(path, "/v1/videos/"):
		return "/v1/videos/{name}"
	case strings.HasPrefix(path, "/v1/events/"):
		return "/v1/events/{kind}"
	case strings.HasPrefix(path, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case path == "/debug/pprof" || strings.HasPrefix(path, "/debug/pprof/"):
		return "/debug/pprof"
	}
	return "other"
}

// statusClasses label the response-status dimension; resolution beyond the
// class would multiply cardinality without telling operators anything the
// request log doesn't.
var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// routeMetrics holds one route's pre-registered instruments, so the
// per-request path is two pointer derefs and three atomic ops — no map
// writes, no label rendering, no allocation.
type routeMetrics struct {
	status    [5]*metrics.Counter
	latency   *metrics.Histogram
	respBytes *metrics.Counter
}

// serverMetrics is the server's slice of the registry. All instruments are
// registered up front at New; the hot path only looks them up. A nil
// *serverMetrics (metrics disabled) is a no-op observer.
type serverMetrics struct {
	byRoute        map[string]*routeMetrics
	ingestRejected *metrics.Counter
	admitWait      *metrics.Histogram
	panics         *metrics.Counter
}

// newServerMetrics registers every server-layer series on reg: per-route
// HTTP counters/histograms plus scrape-time funcs over the cache, ingest
// pool, and rebuilder (funcs rather than counters so the existing mutex-
// guarded stats stay the single source of truth).
func newServerMetrics(reg *metrics.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{byRoute: make(map[string]*routeMetrics, len(routeTemplates))}
	for _, rt := range routeTemplates {
		rm := &routeMetrics{
			latency: reg.Histogram("http_request_duration_seconds",
				"HTTP request latency by route.", metrics.LatencyBuckets, "route", rt),
			respBytes: reg.Counter("http_response_bytes_total",
				"HTTP response body bytes by route.", "route", rt),
		}
		for i, cls := range statusClasses {
			rm.status[i] = reg.Counter("http_requests_total",
				"HTTP requests by route and status class.", "route", rt, "status", cls)
		}
		m.byRoute[rt] = rm
	}
	m.ingestRejected = reg.Counter("ingest_rejected_total",
		"Ingest submissions rejected because the queue was full.")
	m.panics = reg.Counter("http_panics_total",
		"Handler panics recovered by the server.")

	// Request tracing. Started/kept live in the tracer (so /v1/stats works
	// with metrics disabled); the registry mirrors them at scrape time. Both
	// funcs are nil-safe when tracing is disabled.
	reg.CounterFunc("traces_started_total", "Request traces started.",
		func() float64 { return float64(s.tracer.Started()) })
	reg.CounterFunc("traces_kept_total",
		"Request traces kept by head sampling or the slow/error tail sampler.",
		func() float64 { return float64(s.tracer.Kept()) })

	// Admission control. The rejection counters live in the admission
	// struct (so /v1/stats works with metrics disabled); the registry
	// mirrors them at scrape time.
	m.admitWait = reg.Histogram("admit_wait_seconds",
		"Time requests spent parked at a concurrency gate before admission or shedding.",
		metrics.LatencyBuckets)
	for i, name := range rejectReasonNames {
		i := i
		reg.CounterFunc("admit_rejected_total",
			"Requests rejected by admission control, by reason.",
			func() float64 {
				if s.admit == nil {
					return 0
				}
				return float64(s.admit.rejected[i].Load())
			}, "reason", name)
	}
	reg.GaugeFunc("degrade_level",
		"Memory-watchdog degradation stage (0 normal, 1 shed cache, 2 pause rebuilds, 3 reject ingest).",
		func() float64 { return float64(s.admit.degradeLevel()) })
	if s.admit != nil {
		for c := admit.Class(0); c < admit.NumClasses; c++ {
			if g := s.admit.gates[c]; g != nil {
				g := g
				reg.GaugeFunc("admit_inflight",
					"Currently executing requests per admission class.",
					func() float64 { return float64(g.InFlight()) }, "class", c.String())
			}
		}
	}

	reg.CounterFunc("search_cache_hits_total", "Search cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("search_cache_misses_total", "Search cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("search_cache_evictions_total", "Search cache LRU evictions.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.GaugeFunc("search_cache_entries", "Search cache resident entries.",
		func() float64 { return float64(s.cache.Stats().Entries) })

	reg.GaugeFunc("ingest_queue_depth", "Ingest jobs waiting for a worker.",
		func() float64 { return float64(s.pool.QueueLen()) })
	reg.CounterFunc("ingest_jobs_done_total", "Ingest jobs completed successfully.",
		func() float64 { return float64(s.pool.Stats(s.opts.Workers).Done) })
	reg.CounterFunc("ingest_jobs_failed_total", "Ingest jobs that failed.",
		func() float64 { return float64(s.pool.Stats(s.opts.Workers).Failed) })

	reg.CounterFunc("index_rebuilds_total", "Full index refits performed.",
		func() float64 { return float64(s.rebuilder.Stats().Rebuilds) })
	reg.CounterFunc("index_rebuild_kicks_coalesced_total",
		"Mutation kicks absorbed into an already-pending rebuild window.",
		func() float64 { return float64(s.rebuilder.coalesced.Load()) })

	metrics.RegisterGoMetrics(reg)
	return m
}

// countPanic bumps http_panics_total. Nil-safe so the recovery middleware
// needs no disabled-metrics branch.
func (m *serverMetrics) countPanic() {
	if m != nil {
		m.panics.Inc()
	}
}

// observeAdmitWait records time spent parked at a concurrency gate.
// Nil-safe so the admission middleware needs no disabled-metrics branch.
func (m *serverMetrics) observeAdmitWait(d time.Duration) {
	if m != nil {
		m.admitWait.Observe(d.Seconds())
	}
}

// observe records one finished request. Nil-safe so the logging middleware
// needs no disabled-metrics branch.
func (m *serverMetrics) observe(route string, status int, bytes int64, d time.Duration) {
	if m == nil {
		return
	}
	rm := m.byRoute[route]
	if rm == nil {
		return
	}
	cls := status/100 - 1
	if cls < 0 {
		cls = 0
	} else if cls > 4 {
		cls = 4
	}
	rm.status[cls].Inc()
	if bytes > 0 {
		rm.respBytes.Add(uint64(bytes))
	}
	rm.latency.Observe(d.Seconds())
}
