package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"classminer/internal/access"
)

// JobStatus is an ingest job's lifecycle state.
type JobStatus string

const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// Job is one asynchronous ingestion: either a synthetic corpus script to
// mine or a stored mining result to load. Mining is minutes of CPU at full
// scale, far too slow for a request/response cycle, so POST /v1/videos
// queues a Job and returns 202 with its ID.
type Job struct {
	ID         string    `json:"id"`
	Status     JobStatus `json:"status"`
	Video      string    `json:"video,omitempty"`
	Subcluster string    `json:"subcluster"`
	Error      string    `json:"error,omitempty"`
	Created    time.Time `json:"created"`
	Started    time.Time `json:"started,omitempty"`
	Finished   time.Time `json:"finished,omitempty"`

	// payload, set by the ingest handler, consumed by Server.runJob.
	req ingestRequest
	// user is the submitter's identity, carried to the worker so a
	// replace-on-ingest is policy-gated against the video it supersedes at
	// apply time, not just at the 202 accept.
	user access.User
}

// ErrQueueFull is returned by Submit when the pending queue is at depth;
// the HTTP layer maps it to 503 so uploads shed load instead of blocking
// query traffic.
var ErrQueueFull = errors.New("server: ingest queue full")

var errPoolClosed = errors.New("server: ingest pool closed")

// ingestPool runs jobs on a fixed set of workers with a bounded queue.
type ingestPool struct {
	queue chan *Job
	run   func(*Job)
	wg    sync.WaitGroup

	mu     sync.Mutex
	byID   map[string]*Job
	seq    int
	closed bool
	counts struct{ queued, running, done, failed int }
}

// newIngestPool starts workers goroutines consuming a queue of the given
// depth; run performs one job (status transitions are handled here).
func newIngestPool(workers, depth int, run func(*Job)) *ingestPool {
	p := &ingestPool{
		queue: make(chan *Job, depth),
		run:   run,
		byID:  map[string]*Job{},
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *ingestPool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.transition(j, JobRunning, "")
		p.run(j)
		// run reports failure by setting j.Error under the pool lock via
		// Fail; anything still running at this point succeeded.
		p.mu.Lock()
		status := j.Status
		p.mu.Unlock()
		if status == JobRunning {
			p.transition(j, JobDone, "")
		}
	}
}

// Submit registers and enqueues a job, assigning its ID. The non-blocking
// send happens under the same lock as the closed check: Close also takes
// the lock before closing the channel, so Submit can never send on (or
// race with) a closed queue.
func (p *ingestPool) Submit(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errPoolClosed
	}
	p.seq++
	j.ID = fmt.Sprintf("job-%d", p.seq)
	j.Status = JobQueued
	j.Created = time.Now()
	select {
	case p.queue <- j:
		p.byID[j.ID] = j
		p.counts.queued++
		return nil
	default:
		return ErrQueueFull
	}
}

// Fail marks the job failed with the given error; called from run.
func (p *ingestPool) Fail(j *Job, err error) { p.transition(j, JobFailed, err.Error()) }

// transition moves a job between states, keeping the counters consistent.
func (p *ingestPool) transition(j *Job, to JobStatus, errMsg string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch j.Status {
	case JobQueued:
		p.counts.queued--
	case JobRunning:
		p.counts.running--
	}
	j.Status = to
	j.Error = errMsg
	now := time.Now()
	switch to {
	case JobRunning:
		j.Started = now
		p.counts.running++
	case JobDone:
		j.Finished = now
		p.counts.done++
	case JobFailed:
		j.Finished = now
		p.counts.failed++
	}
}

// Get returns a snapshot of the job by ID (nil when unknown). The copy is
// taken under the lock so callers never observe a half-written transition.
func (p *ingestPool) Get(id string) *Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.byID[id]
	if !ok {
		return nil
	}
	cp := *j
	return &cp
}

// QueueLen reports how many submitted jobs are waiting for a worker (the
// channel length is an instantaneous sample; fine for a gauge).
func (p *ingestPool) QueueLen() int { return len(p.queue) }

// Close stops accepting jobs and waits for in-flight ones to finish.
func (p *ingestPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	p.wg.Wait()
}

// poolStats is the /v1/stats slice of the ingest pool.
type poolStats struct {
	Queued        int `json:"queued"`
	Running       int `json:"running"`
	Done          int `json:"done"`
	Failed        int `json:"failed"`
	Workers       int `json:"workers"`
	QueueCapacity int `json:"queueCapacity"`
}

func (p *ingestPool) Stats(workers int) poolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return poolStats{
		Queued: p.counts.queued, Running: p.counts.running,
		Done: p.counts.done, Failed: p.counts.failed,
		Workers: workers, QueueCapacity: cap(p.queue),
	}
}
