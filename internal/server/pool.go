package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"classminer/internal/access"
)

// JobStatus is an ingest job's lifecycle state.
type JobStatus string

const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// Job is one asynchronous ingestion: either a synthetic corpus script to
// mine or a stored mining result to load. Mining is minutes of CPU at full
// scale, far too slow for a request/response cycle, so POST /v1/videos
// queues a Job and returns 202 with its ID.
type Job struct {
	ID         string    `json:"id"`
	Status     JobStatus `json:"status"`
	Video      string    `json:"video,omitempty"`
	Subcluster string    `json:"subcluster"`
	// RequestID names the request that submitted the job, so a 202's
	// X-Request-Id correlates with the job record, the worker's log lines,
	// and the job's own trace.
	RequestID string    `json:"requestId,omitempty"`
	Error     string    `json:"error,omitempty"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`

	// payload, set by the ingest handler, consumed by Server.runJob.
	req ingestRequest
	// user is the submitter's identity, carried to the worker so a
	// replace-on-ingest is policy-gated against the video it supersedes at
	// apply time, not just at the 202 accept.
	user access.User
}

// ErrQueueFull is returned by Submit when the pending queue is at depth;
// the HTTP layer maps it to 503 so uploads shed load instead of blocking
// query traffic.
var ErrQueueFull = errors.New("server: ingest queue full")

var errPoolClosed = errors.New("server: ingest pool closed")

// Finished-job retention: byID must stay bounded no matter how many jobs a
// long-lived daemon runs, but /v1/jobs/{id} should keep answering for a
// while after a job completes (202-accepted clients poll the Location URL).
// The jobRetainCount most recent finishers are always kept; beyond them a
// finished job survives only until jobRetainAge passes — and under a burst,
// never past 4*jobRetainCount, so the map's bound does not depend on the
// job rate. Queued and running jobs are never pruned.
const (
	jobRetainCount = 64
	jobRetainAge   = 10 * time.Minute
)

// ingestPool runs jobs on a fixed set of workers with a bounded queue.
type ingestPool struct {
	queue chan *Job
	run   func(*Job)
	wg    sync.WaitGroup

	mu       sync.Mutex
	byID     map[string]*Job
	finished []*Job // done/failed jobs, oldest first, pending prune
	seq      int
	closed   bool
	counts   struct{ queued, running, done, failed int }

	// retention knobs; fixed defaults in production, overridden by tests.
	retainCount int
	retainAge   time.Duration
}

// newIngestPool starts workers goroutines consuming a queue of the given
// depth; run performs one job (status transitions are handled here).
func newIngestPool(workers, depth int, run func(*Job)) *ingestPool {
	if depth < 1 {
		depth = 1
	}
	p := &ingestPool{
		queue:       make(chan *Job, depth),
		run:         run,
		byID:        map[string]*Job{},
		retainCount: jobRetainCount,
		retainAge:   jobRetainAge,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *ingestPool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.transition(j, JobRunning, "")
		p.run(j)
		// run reports failure by setting j.Error under the pool lock via
		// Fail; anything still running at this point succeeded.
		p.mu.Lock()
		status := j.Status
		p.mu.Unlock()
		if status == JobRunning {
			p.transition(j, JobDone, "")
		}
	}
}

// Submit registers and enqueues a job, assigning its ID. The enqueue
// happens under the same lock as the closed check: Close also takes the
// lock before closing the channel, so Submit can never send on (or race
// with) a closed queue. The ID is assigned only once the job is actually
// accepted — a shed submission must not burn a sequence number, or the
// job-N series (which operators read as "jobs the server took") develops
// holes that count rejections.
func (p *ingestPool) Submit(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errPoolClosed
	}
	// Every send happens under this lock and workers only drain the queue,
	// so a capacity check now cannot be invalidated before the send below.
	if len(p.queue) == cap(p.queue) {
		return ErrQueueFull
	}
	p.seq++
	j.ID = fmt.Sprintf("job-%d", p.seq)
	j.Status = JobQueued
	j.Created = time.Now()
	p.byID[j.ID] = j
	p.counts.queued++
	p.queue <- j
	return nil
}

// Fail marks the job failed with the given error; called from run.
func (p *ingestPool) Fail(j *Job, err error) { p.transition(j, JobFailed, err.Error()) }

// transition moves a job between states, keeping the counters consistent.
func (p *ingestPool) transition(j *Job, to JobStatus, errMsg string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch j.Status {
	case JobQueued:
		p.counts.queued--
	case JobRunning:
		p.counts.running--
	}
	j.Status = to
	j.Error = errMsg
	now := time.Now()
	switch to {
	case JobRunning:
		j.Started = now
		p.counts.running++
	case JobDone:
		j.Finished = now
		p.counts.done++
		p.retire(j, now)
	case JobFailed:
		j.Finished = now
		p.counts.failed++
		p.retire(j, now)
	}
}

// retire queues a finished job for pruning and prunes whatever is due: a
// job beyond the retainCount most recent finishers goes once its retainAge
// passes, or immediately once the backlog hits the 4x hard cap. Called with
// p.mu held. The completion counters are untouched — pruning bounds memory,
// not history.
func (p *ingestPool) retire(j *Job, now time.Time) {
	p.finished = append(p.finished, j)
	hardCap := 4 * p.retainCount
	cut := 0
	for n := len(p.finished) - cut; n > p.retainCount; n = len(p.finished) - cut {
		if n <= hardCap && now.Sub(p.finished[cut].Finished) < p.retainAge {
			break
		}
		delete(p.byID, p.finished[cut].ID)
		p.finished[cut] = nil // release the Job (and its payload) now
		cut++
	}
	if cut > 0 {
		p.finished = append(p.finished[:0], p.finished[cut:]...)
	}
}

// Get returns a snapshot of the job by ID (nil when unknown). The copy is
// taken under the lock so callers never observe a half-written transition.
func (p *ingestPool) Get(id string) *Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.byID[id]
	if !ok {
		return nil
	}
	cp := *j
	return &cp
}

// QueueLen reports how many submitted jobs are waiting for a worker (the
// channel length is an instantaneous sample; fine for a gauge).
func (p *ingestPool) QueueLen() int { return len(p.queue) }

// Close stops accepting jobs and waits for in-flight ones to finish.
func (p *ingestPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	p.wg.Wait()
}

// poolStats is the /v1/stats slice of the ingest pool.
type poolStats struct {
	Queued        int `json:"queued"`
	Running       int `json:"running"`
	Done          int `json:"done"`
	Failed        int `json:"failed"`
	Workers       int `json:"workers"`
	QueueCapacity int `json:"queueCapacity"`
}

func (p *ingestPool) Stats(workers int) poolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return poolStats{
		Queued: p.counts.queued, Running: p.counts.running,
		Done: p.counts.done, Failed: p.counts.failed,
		Workers: workers, QueueCapacity: cap(p.queue),
	}
}
