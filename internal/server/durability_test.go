package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"classminer"
	"classminer/internal/store"
)

// tinySavedResult fabricates a small mined result for ingestion tests
// (deterministic features, one group, one scene) without running the
// mining pipeline.
func tinySavedResult(name string, seed int64, shots int) *store.SavedResult {
	rng := rand.New(rand.NewSource(seed))
	sr := &store.SavedResult{
		Version: store.FormatVersion, VideoName: name, FPS: 25, TotalFrames: shots * 50,
	}
	feat := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	group := store.SavedGroup{Index: 0, RepShots: []int{0}}
	for i := 0; i < shots; i++ {
		sr.Shots = append(sr.Shots, store.SavedShot{
			Index: i, Start: i * 50, End: (i+1)*50 - 1, RepFrame: i * 50,
			Color: feat(8), Texture: feat(4),
		})
		group.Shots = append(group.Shots, i)
	}
	sr.Groups = []store.SavedGroup{group}
	sr.Scenes = []store.SavedScene{{Index: 0, Groups: []int{0}, RepGroup: 0}}
	return sr
}

// ingestAndWait pushes one saved result through POST /v1/videos and polls
// its job to completion, so registrations land in a deterministic order.
func ingestAndWait(t *testing.T, s *Server, name string, seed int64) {
	t.Helper()
	req := map[string]any{"subcluster": "medicine", "saved": tinySavedResult(name, seed, 3+int(seed)%3)}
	var job Job
	if code := do(t, s, http.MethodPost, "/v1/videos", "admin-tok", req, &job); code != http.StatusAccepted {
		t.Fatalf("ingest %s = %d", name, code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got Job
		if code := do(t, s, http.MethodGet, "/v1/jobs/"+job.ID, "admin-tok", nil, &got); code != http.StatusOK {
			t.Fatalf("job poll = %d", code)
		}
		switch got.Status {
		case JobDone:
			return
		case JobFailed:
			t.Fatalf("ingest %s failed: %s", name, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest %s stuck in %s", name, got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// searchBody builds a fixed /v1/search request from a deterministic query.
func searchBody(qseed int64) map[string]any {
	rng := rand.New(rand.NewSource(qseed))
	q := make([]float64, 12)
	for i := range q {
		q[i] = rng.Float64()
	}
	return map[string]any{"query": q, "k": 5}
}

// TestKillAndRestartServesIdenticalSearches is the ISSUE 3 acceptance
// test: register results through the HTTP ingest path into a durable
// library, abandon the process state SIGKILL-style (no shutdown save, no
// Close), recover from the data directory, and verify the recovered
// library serves byte-identical /v1/search results for a fixed query set.
func TestKillAndRestartServesIdenticalSearches(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wopts := classminer.DurableOptions{CheckpointBytes: -1, CheckpointRecords: -1}
	lib, err := classminer.Recover(dir, a, wopts)
	if err != nil {
		t.Fatal(err)
	}
	// Cache disabled so both runs compute every answer.
	s := New(lib, Options{Tokens: testTokens(), CacheSize: -1})

	const n = 8
	for i := 0; i < n; i++ {
		ingestAndWait(t, s, fmt.Sprintf("ingested-%02d", i), int64(i))
	}
	// Refit over the full registration set before capturing: the serving
	// index at this point is the cold-start fit plus incremental inserts,
	// whose distances come from the older fit's reduced spaces. Recovery
	// also ends in a full BuildIndex, so byte-identical comparison is
	// full-fit vs full-fit over the same entries in the same order.
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var before []string
	for q := 0; q < 6; q++ {
		w := doRaw(t, s, http.MethodPost, "/v1/search", "admin-tok", searchBody(int64(q)))
		if w.Code != http.StatusOK {
			t.Fatalf("search %d = %d: %s", q, w.Code, w.Body.String())
		}
		before = append(before, w.Body.String())
	}
	// SIGKILL-style abandonment: the pool stops and the library is never
	// saved or checkpointed — recovery may use only what the WAL already
	// made durable. (Close releases the data-dir flock exactly as process
	// death would; under the default SyncAlways it writes nothing, so the
	// on-disk state is byte-identical to a kill.)
	s.pool.Close()
	if err := lib.Close(); err != nil {
		t.Fatal(err)
	}
	s, lib = nil, nil

	recovered, err := classminer.Recover(dir, a, wopts)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.Stats().Videos; got != n {
		t.Fatalf("recovered %d videos, want %d", got, n)
	}
	if err := recovered.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	s2 := New(recovered, Options{Tokens: testTokens(), CacheSize: -1})
	t.Cleanup(s2.Close)
	for q := 0; q < 6; q++ {
		w := doRaw(t, s2, http.MethodPost, "/v1/search", "admin-tok", searchBody(int64(q)))
		if w.Code != http.StatusOK {
			t.Fatalf("recovered search %d = %d", q, w.Code)
		}
		if got := w.Body.String(); got != before[q] {
			t.Fatalf("query %d diverged after recovery:\nbefore: %s\nafter:  %s", q, before[q], got)
		}
	}
}

// ingestReplaceAndWait pushes a replacement through POST /v1/videos with
// the replace flag and polls the job to completion.
func ingestReplaceAndWait(t *testing.T, s *Server, name string, seed int64) {
	t.Helper()
	req := map[string]any{
		"subcluster": "medicine",
		"saved":      tinySavedResult(name, seed, 2),
		"replace":    true,
	}
	var job Job
	if code := do(t, s, http.MethodPost, "/v1/videos", "admin-tok", req, &job); code != http.StatusAccepted {
		t.Fatalf("replace-ingest %s = %d", name, code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got Job
		if code := do(t, s, http.MethodGet, "/v1/jobs/"+job.ID, "admin-tok", nil, &got); code != http.StatusOK {
			t.Fatalf("job poll = %d", code)
		}
		switch got.Status {
		case JobDone:
			return
		case JobFailed:
			t.Fatalf("replace %s failed: %s", name, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replace %s stuck in %s", name, got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestVideoLifecycleEndpoints drives the HTTP mutation surface on a
// non-durable library: DELETE gating (401/403/404), conflict-vs-replace on
// ingest, and the list/detail/search views converging on the mutated set.
func TestVideoLifecycleEndpoints(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := classminer.NewLibrary(a)
	s := New(lib, Options{Tokens: testTokens()})
	t.Cleanup(s.Close)
	for i := 0; i < 3; i++ {
		ingestAndWait(t, s, fmt.Sprintf("vid-%d", i), int64(i))
	}

	// Conflict without the flag; replacement with it.
	req := map[string]any{"subcluster": "medicine", "saved": tinySavedResult("vid-1", 50, 2)}
	if code := do(t, s, http.MethodPost, "/v1/videos", "admin-tok", req, nil); code != http.StatusConflict {
		t.Fatalf("duplicate ingest = %d, want 409", code)
	}
	ingestReplaceAndWait(t, s, "vid-1", 50)
	var detail struct {
		Shots int `json:"shots"`
	}
	if code := do(t, s, http.MethodGet, "/v1/videos/vid-1", "admin-tok", nil, &detail); code != http.StatusOK {
		t.Fatalf("detail after replace = %d", code)
	}
	if detail.Shots != 2 {
		t.Fatalf("replaced video has %d shots, want 2", detail.Shots)
	}

	// DELETE gating: anonymous 401, public 403, unknown 404, then success.
	if code := do(t, s, http.MethodDelete, "/v1/videos/vid-0", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("anonymous delete = %d, want 401", code)
	}
	if code := do(t, s, http.MethodDelete, "/v1/videos/vid-0", "pub-tok", nil, nil); code != http.StatusForbidden {
		t.Fatalf("public delete = %d, want 403", code)
	}
	if code := do(t, s, http.MethodDelete, "/v1/videos/ghost", "admin-tok", nil, nil); code != http.StatusNotFound {
		t.Fatalf("delete of unknown video = %d, want 404", code)
	}
	var del struct {
		Deleted   string `json:"deleted"`
		IndexLive bool   `json:"indexLive"`
	}
	if code := do(t, s, http.MethodDelete, "/v1/videos/vid-0", "clin-tok", nil, &del); code != http.StatusOK {
		t.Fatalf("delete = %d", code)
	}
	// The serving index masks the deleted shots incrementally — no rebuild
	// happened yet, but the index is already consistent with the delete.
	if del.Deleted != "vid-0" || !del.IndexLive {
		t.Fatalf("delete response = %+v", del)
	}
	if code := do(t, s, http.MethodGet, "/v1/videos/vid-0", "admin-tok", nil, nil); code != http.StatusNotFound {
		t.Fatalf("detail after delete = %d, want 404", code)
	}
	var list struct {
		Videos []videoSummary `json:"videos"`
	}
	if code := do(t, s, http.MethodGet, "/v1/videos", "admin-tok", nil, &list); code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	for _, v := range list.Videos {
		if v.Name == "vid-0" {
			t.Fatal("deleted video still listed")
		}
	}
	// Searches never surface the deleted video's shots.
	w := doRaw(t, s, http.MethodPost, "/v1/search", "admin-tok", searchBody(1))
	if w.Code != http.StatusOK {
		t.Fatalf("search after delete = %d", w.Code)
	}
	if bytes.Contains(w.Body.Bytes(), []byte("vid-0")) {
		t.Fatalf("search still ranks deleted video: %s", w.Body.String())
	}
}

// TestReplaceIngestPolicyGated: replace-on-ingest must not supersede a
// video the policy hides from the caller — the same gate DELETE enforces,
// checked both at the 202 accept and atomically when the job applies.
func TestReplaceIngestPolicyGated(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := classminer.NewLibrary(a)
	s := New(lib, Options{Tokens: testTokens()})
	t.Cleanup(s.Close)
	ingestAndWait(t, s, "hidden-vid", 1)
	lib.Protect(classminer.Rule{Concept: "medicine", MinClearance: classminer.Administrator})

	req := map[string]any{"subcluster": "medicine", "saved": tinySavedResult("hidden-vid", 9, 2), "replace": true}
	if code := do(t, s, http.MethodPost, "/v1/videos", "clin-tok", req, nil); code != http.StatusForbidden {
		t.Fatalf("clinician replace of a hidden video = %d, want 403", code)
	}
	// The admin may still replace it.
	ingestReplaceAndWait(t, s, "hidden-vid", 9)
}

// TestDeleteReplaceCompactKillRestart is the lifecycle acceptance test at
// the serving layer: mutate a durable library over HTTP (ingest, delete,
// replace), compact through the admin endpoint, abandon the process
// SIGKILL-style, recover, and require byte-identical /v1/search responses
// plus the mutated video set.
func TestDeleteReplaceCompactKillRestart(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wopts := classminer.DurableOptions{
		CheckpointBytes:   -1,
		CheckpointRecords: -1,
		CompactBytes:      -1,      // exercised via the admin endpoint
		SegmentBytes:      2 << 10, // a couple of records per segment: every victim registration seals
	}
	lib, err := classminer.Recover(dir, a, wopts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(lib, Options{Tokens: testTokens(), CacheSize: -1})

	const n = 8
	for i := 0; i < n; i++ {
		ingestAndWait(t, s, fmt.Sprintf("ingested-%02d", i), int64(i))
	}
	for i := 0; i < 3; i++ {
		if code := do(t, s, http.MethodDelete, fmt.Sprintf("/v1/videos/ingested-%02d", i), "admin-tok", nil, nil); code != http.StatusOK {
			t.Fatalf("delete %d = %d", i, code)
		}
	}
	ingestReplaceAndWait(t, s, "ingested-03", 77)
	ingestReplaceAndWait(t, s, "ingested-04", 88)

	if code := do(t, s, http.MethodPost, "/v1/admin/compact", "clin-tok", nil, nil); code != http.StatusForbidden {
		t.Fatalf("clinician compact = %d, want 403", code)
	}
	var compactResp struct {
		Compacted classminer.CompactStats `json:"compacted"`
		WAL       classminer.WALStats     `json:"wal"`
	}
	if code := do(t, s, http.MethodPost, "/v1/admin/compact", "admin-tok", nil, &compactResp); code != http.StatusOK {
		t.Fatalf("admin compact = %d", code)
	}
	if compactResp.Compacted.RecordsDropped != 5 {
		t.Fatalf("compaction dropped %d records, want 5 (3 deletes + 2 replaces): %+v",
			compactResp.Compacted.RecordsDropped, compactResp.Compacted)
	}

	// Refit before capturing, for the same reason as
	// TestKillAndRestartServesIdenticalSearches: recovery ends in a full
	// fit, so the byte-identical comparison must start from one too.
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var before []string
	for q := 0; q < 6; q++ {
		w := doRaw(t, s, http.MethodPost, "/v1/search", "admin-tok", searchBody(int64(q)))
		if w.Code != http.StatusOK {
			t.Fatalf("search %d = %d: %s", q, w.Code, w.Body.String())
		}
		before = append(before, w.Body.String())
	}
	// SIGKILL-style abandonment (see TestKillAndRestartServesIdenticalSearches).
	s.pool.Close()
	if err := lib.Close(); err != nil {
		t.Fatal(err)
	}
	s, lib = nil, nil

	recovered, err := classminer.Recover(dir, a, wopts)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.Stats().Videos; got != n-3 {
		t.Fatalf("recovered %d videos, want %d", got, n-3)
	}
	for i := 0; i < 3; i++ {
		if recovered.Video(fmt.Sprintf("ingested-%02d", i)) != nil {
			t.Fatalf("deleted ingested-%02d resurrected", i)
		}
	}
	if err := recovered.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	s2 := New(recovered, Options{Tokens: testTokens(), CacheSize: -1})
	t.Cleanup(s2.Close)
	for q := 0; q < 6; q++ {
		w := doRaw(t, s2, http.MethodPost, "/v1/search", "admin-tok", searchBody(int64(q)))
		if w.Code != http.StatusOK {
			t.Fatalf("recovered search %d = %d", q, w.Code)
		}
		if got := w.Body.String(); got != before[q] {
			t.Fatalf("query %d diverged after compact+recovery:\nbefore: %s\nafter:  %s", q, before[q], got)
		}
	}
}

// TestAdminCompactNotDurable hits the endpoint on a snapshot-mode library.
func TestAdminCompactNotDurable(t *testing.T) {
	s := newTestServer(t, Options{})
	if code := do(t, s, http.MethodPost, "/v1/admin/compact", "admin-tok", nil, nil); code != http.StatusNotImplemented {
		t.Fatalf("non-durable compact = %d, want 501", code)
	}
}

// TestAdminCheckpointEndpoint drives POST /v1/admin/checkpoint: admin-only,
// 501 on a non-durable library, and on success the WAL lag drops to zero
// and the generation advances.
func TestAdminCheckpointEndpoint(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := classminer.Recover(t.TempDir(), a, classminer.DurableOptions{CheckpointBytes: -1, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lib.Close() })
	s := New(lib, Options{Tokens: testTokens()})
	t.Cleanup(s.Close)

	ingestAndWait(t, s, "ckpt-video", 5)

	if code := do(t, s, http.MethodPost, "/v1/admin/checkpoint", "clin-tok", nil, nil); code != http.StatusForbidden {
		t.Fatalf("clinician checkpoint = %d, want 403", code)
	}
	var stats struct {
		Library classminer.LibraryStats `json:"library"`
	}
	if code := do(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Library.WAL == nil || stats.Library.WAL.Records != 1 {
		t.Fatalf("pre-checkpoint WAL stats = %+v", stats.Library.WAL)
	}
	var resp struct {
		Checkpointed bool                `json:"checkpointed"`
		WAL          classminer.WALStats `json:"wal"`
	}
	if code := do(t, s, http.MethodPost, "/v1/admin/checkpoint", "admin-tok", nil, &resp); code != http.StatusOK {
		t.Fatalf("admin checkpoint = %d", code)
	}
	if !resp.Checkpointed || resp.WAL.Records != 0 || resp.WAL.Generation != 1 {
		t.Fatalf("checkpoint response = %+v", resp)
	}
	if code := do(t, s, http.MethodGet, "/v1/stats", "admin-tok", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Library.WAL.Records != 0 || stats.Library.WAL.Generation != 1 {
		t.Fatalf("post-checkpoint WAL stats = %+v", stats.Library.WAL)
	}
}

// TestAdminCheckpointNotDurable hits the endpoint on a snapshot-mode
// library.
func TestAdminCheckpointNotDurable(t *testing.T) {
	s := newTestServer(t, Options{})
	if code := do(t, s, http.MethodPost, "/v1/admin/checkpoint", "admin-tok", nil, nil); code != http.StatusNotImplemented {
		t.Fatalf("non-durable checkpoint = %d, want 501", code)
	}
}

// doRaw is do without response decoding: byte-identical body comparison is
// the point of the kill-and-restart test.
func doRaw(t testing.TB, s *Server, method, path, token string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(method, path, bytes.NewReader(b))
	if token != "" {
		r.Header.Set("X-Api-Token", token)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}
