package structure

import (
	"fmt"

	"classminer/internal/entropy"
	"classminer/internal/vidmodel"
)

// SceneConfig tunes group merging (§3.4).
type SceneConfig struct {
	// TG is the merging threshold; 0 means "determine automatically with
	// the fast-entropy technique over the neighbouring-group similarities".
	TG float64
	// MinTG is an absolute floor under the automatic threshold. The
	// fast-entropy split always bisects its sample, even when every
	// neighbouring-group pair is in fact dissimilar (each group already a
	// whole scene); the floor stops that degenerate case from merging
	// everything. 0 means DefaultMinTG; negative disables the floor.
	MinTG float64
	// MinShots is the minimum shot count below which a merged scene is
	// eliminated (paper: 3).
	MinShots int
}

// DefaultMinShots is the paper's scene-elimination floor.
const DefaultMinShots = 3

// DefaultMinTG is the absolute merge floor: merging is only ever justified
// when two groups are more similar than dissimilar under Eq. (9).
const DefaultMinTG = 0.5

const fallbackTG = 0.6

// SceneResult carries detected scenes, the scenes eliminated for being too
// small (fewer than MinShots shots), and the evidence used.
type SceneResult struct {
	Scenes    []*vidmodel.Scene
	Discarded []*vidmodel.Scene
	TG        float64   // merging threshold actually applied
	AdjSims   []float64 // GpSim between neighbouring groups (TG's sample)
}

// MergeScenes merges adjacent groups into scenes per §3.4: neighbouring
// similarities SGi = GpSim(Gi, Gi+1) are collected (Eq. 10), the fast-
// entropy technique fixes the merging threshold TG, and every maximal run
// of adjacent groups with similarities above TG becomes one scene. Scenes
// with fewer than MinShots shots are eliminated (reported separately).
// Every surviving scene gets its representative group (Eq. 11).
func MergeScenes(groups []*vidmodel.Group, cfg SceneConfig) (*SceneResult, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("structure: no groups")
	}
	minShots := cfg.MinShots
	if minShots <= 0 {
		minShots = DefaultMinShots
	}
	res := &SceneResult{}
	for i := 0; i+1 < len(groups); i++ {
		res.AdjSims = append(res.AdjSims, GroupSim(groups[i], groups[i+1]))
	}
	tg := cfg.TG
	if tg == 0 {
		tg = entropy.ThresholdOr(res.AdjSims, fallbackTG)
		minTG := cfg.MinTG
		if minTG == 0 {
			minTG = DefaultMinTG
		}
		if minTG > 0 && tg < minTG {
			tg = minTG
		}
	}
	res.TG = tg

	var current []*vidmodel.Group
	flush := func() {
		if len(current) == 0 {
			return
		}
		scene := &vidmodel.Scene{Groups: current}
		scene.RepGroup = SelectRepGroup(scene)
		if scene.ShotCount() < minShots {
			res.Discarded = append(res.Discarded, scene)
		} else {
			scene.Index = len(res.Scenes)
			res.Scenes = append(res.Scenes, scene)
		}
		current = nil
	}
	for i, g := range groups {
		current = append(current, g)
		// Merge with the next group when the similarity clears TG; runs
		// of adjacent high similarities merge transitively (§3.4 step 3).
		if i < len(res.AdjSims) && res.AdjSims[i] > tg {
			continue
		}
		flush()
	}
	flush()
	return res, nil
}

// SelectRepGroup implements Eq. (11) and its special cases: with three or
// more groups the group with the largest average similarity to the others
// is the representative (the scene centroid); with two, the one with more
// shots (longer duration breaking ties); with one, itself.
func SelectRepGroup(scene *vidmodel.Scene) *vidmodel.Group {
	gs := scene.Groups
	switch len(gs) {
	case 0:
		return nil
	case 1:
		return gs[0]
	case 2:
		a, b := gs[0], gs[1]
		switch {
		case len(a.Shots) != len(b.Shots):
			if len(a.Shots) > len(b.Shots) {
				return a
			}
			return b
		case a.Duration() >= b.Duration():
			return a
		default:
			return b
		}
	}
	best, bestAvg := gs[0], -1.0
	for _, g := range gs {
		var sum float64
		for _, o := range gs {
			if o != g {
				sum += GroupSim(g, o)
			}
		}
		avg := sum / float64(len(gs)-1)
		if avg > bestAvg {
			best, bestAvg = g, avg
		}
	}
	return best
}
