package structure

import (
	"math"
	"math/rand"
	"testing"

	"classminer/internal/feature"
	"classminer/internal/shotdet"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

// mkShot builds a shot with a one-hot colour histogram and one-hot texture,
// which makes similarities exactly predictable: same colour bin contributes
// 0.7, same texture bin contributes 0.3.
func mkShot(idx, colorBin, texBin, frames int) *vidmodel.Shot {
	c := make([]float64, feature.ColorBins)
	c[colorBin] = 1
	tx := make([]float64, feature.TextureDims)
	tx[texBin] = 1
	return &vidmodel.Shot{
		Index: idx, Start: idx * frames, End: (idx + 1) * frames,
		Color: c, Texture: tx,
	}
}

func TestShotSimExactValues(t *testing.T) {
	a := mkShot(0, 1, 1, 10)
	b := mkShot(1, 1, 1, 10)
	c := mkShot(2, 2, 1, 10)
	d := mkShot(3, 2, 2, 10)
	if got := ShotSim(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identical shots sim = %v, want 1", got)
	}
	if got := ShotSim(a, c); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("same texture sim = %v, want 0.3", got)
	}
	if got := ShotSim(a, d); got > 1e-12 {
		t.Fatalf("disjoint sim = %v, want 0", got)
	}
}

func TestShotGroupSimIsMax(t *testing.T) {
	g := &vidmodel.Group{Shots: []*vidmodel.Shot{
		mkShot(0, 1, 1, 10), mkShot(1, 2, 2, 10),
	}}
	s := mkShot(2, 2, 2, 10)
	if got := ShotGroupSim(s, g); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ShotGroupSim = %v, want 1 (best match)", got)
	}
}

func TestGroupSimBenchmarkIsSmaller(t *testing.T) {
	small := &vidmodel.Group{Shots: []*vidmodel.Shot{mkShot(0, 1, 1, 10)}}
	big := &vidmodel.Group{Shots: []*vidmodel.Shot{
		mkShot(1, 1, 1, 10), mkShot(2, 2, 2, 10), mkShot(3, 3, 3, 10),
	}}
	// Benchmark = small; its single shot matches perfectly in big.
	if got := GroupSim(small, big); math.Abs(got-1) > 1e-12 {
		t.Fatalf("GroupSim = %v, want 1", got)
	}
	if got, want := GroupSim(big, small), GroupSim(small, big); got != want {
		t.Fatalf("GroupSim must be symmetric: %v vs %v", got, want)
	}
	empty := &vidmodel.Group{}
	if got := GroupSim(empty, big); got != 0 {
		t.Fatalf("empty group sim = %v, want 0", got)
	}
}

func TestDetectGroupsSplitsTwoBlocks(t *testing.T) {
	shots := []*vidmodel.Shot{
		mkShot(0, 1, 1, 10), mkShot(1, 1, 1, 10), mkShot(2, 1, 1, 10),
		mkShot(3, 7, 3, 10), mkShot(4, 7, 3, 10), mkShot(5, 7, 3, 10),
	}
	res, err := DetectGroups(shots, GroupConfig{T1: 3, T2: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(res.Groups))
	}
	if len(res.Groups[0].Shots) != 3 || len(res.Groups[1].Shots) != 3 {
		t.Fatalf("group sizes = %d/%d, want 3/3", len(res.Groups[0].Shots), len(res.Groups[1].Shots))
	}
}

func TestDetectGroupsIsolatedSeparator(t *testing.T) {
	// An "anchor person" shot dissimilar to both sides must become its own
	// group boundary (step 2 of §3.2).
	shots := []*vidmodel.Shot{
		mkShot(0, 1, 1, 10), mkShot(1, 1, 1, 10),
		mkShot(2, 9, 9, 10), // isolated
		mkShot(3, 4, 4, 10), mkShot(4, 4, 4, 10),
	}
	res, err := DetectGroups(shots, GroupConfig{T1: 3, T2: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("got %d groups, want 3 (separator isolated)", len(res.Groups))
	}
	if len(res.Groups[1].Shots) != 1 || res.Groups[1].Shots[0].Index != 2 {
		t.Fatalf("middle group should be the separator shot")
	}
}

func TestDetectGroupsTemporalAlternation(t *testing.T) {
	// A dialog-style A/B alternation stays one TEMPORAL group: every shot
	// keeps high right-correlation via the +2 lookahead.
	shots := []*vidmodel.Shot{
		mkShot(0, 1, 1, 10), mkShot(1, 5, 5, 10),
		mkShot(2, 1, 1, 10), mkShot(3, 5, 5, 10),
		mkShot(4, 1, 1, 10), mkShot(5, 5, 5, 10),
	}
	res, err := DetectGroups(shots, GroupConfig{T1: 3, T2: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(res.Groups))
	}
	g := res.Groups[0]
	if g.Kind != vidmodel.GroupTemporal {
		t.Fatalf("group kind = %v, want temporal", g.Kind)
	}
	if len(g.RepShots) != 2 {
		t.Fatalf("temporal group should have 2 representative shots (one per cluster), got %d", len(g.RepShots))
	}
}

func TestDetectGroupsSpatialKind(t *testing.T) {
	shots := []*vidmodel.Shot{
		mkShot(0, 1, 1, 10), mkShot(1, 1, 1, 10), mkShot(2, 1, 1, 10),
	}
	res, err := DetectGroups(shots, GroupConfig{T1: 3, T2: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.Groups[0].Kind != vidmodel.GroupSpatial {
		t.Fatalf("want one spatial group")
	}
	if len(res.Groups[0].RepShots) != 1 {
		t.Fatal("spatial group should have a single representative")
	}
}

func TestDetectGroupsEmpty(t *testing.T) {
	if _, err := DetectGroups(nil, GroupConfig{}); err == nil {
		t.Fatal("want error on empty shots")
	}
}

func TestDetectGroupsAutoThresholds(t *testing.T) {
	var shots []*vidmodel.Shot
	idx := 0
	for block := 0; block < 4; block++ {
		for i := 0; i < 4; i++ {
			shots = append(shots, mkShot(idx, block*20+1, block%10, 10))
			idx++
		}
	}
	res, err := DetectGroups(shots, GroupConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.T1 < 1 {
		t.Fatalf("auto T1 = %v, want >= 1", res.T1)
	}
	if res.T2 <= 0 || res.T2 >= 1 {
		t.Fatalf("auto T2 = %v, want in (0,1)", res.T2)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("auto thresholds found %d groups, want 4", len(res.Groups))
	}
}

func TestSelectRepShotCases(t *testing.T) {
	// Two shots: longer wins.
	a := mkShot(0, 1, 1, 10)
	b := mkShot(1, 1, 1, 20)
	if got := selectRepShot([]*vidmodel.Shot{a, b}); got != b {
		t.Fatal("two-shot cluster: longer must win")
	}
	// One shot: itself.
	if got := selectRepShot([]*vidmodel.Shot{a}); got != a {
		t.Fatal("singleton cluster must return the shot")
	}
	if selectRepShot(nil) != nil {
		t.Fatal("empty cluster must return nil")
	}
	// Three shots: the one closest to the others on average.
	center := mkShot(2, 1, 1, 10)
	off1 := mkShot(3, 1, 2, 10) // sim 0.7 to center
	off2 := mkShot(4, 2, 1, 10) // sim 0.3 to center
	got := selectRepShot([]*vidmodel.Shot{off1, center, off2})
	if got != center {
		t.Fatalf("rep shot should be the centroid, got shot %d", got.Index)
	}
}

func TestMergeScenesBasic(t *testing.T) {
	mkGroup := func(idx int, bins ...int) *vidmodel.Group {
		g := &vidmodel.Group{Index: idx}
		for i, b := range bins {
			g.Shots = append(g.Shots, mkShot(idx*10+i, b, 1, 10))
		}
		return g
	}
	groups := []*vidmodel.Group{
		mkGroup(0, 1, 1), mkGroup(1, 1, 2), // similar pair -> one scene
		mkGroup(2, 9, 9, 9), // distinct -> own scene
	}
	res, err := MergeScenes(groups, SceneConfig{TG: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenes) != 2 {
		t.Fatalf("got %d scenes, want 2", len(res.Scenes))
	}
	if len(res.Scenes[0].Groups) != 2 {
		t.Fatalf("first scene has %d groups, want 2", len(res.Scenes[0].Groups))
	}
	if res.Scenes[0].RepGroup == nil || res.Scenes[1].RepGroup == nil {
		t.Fatal("scenes must carry representative groups")
	}
}

func TestMergeScenesEliminatesSmall(t *testing.T) {
	groups := []*vidmodel.Group{
		{Index: 0, Shots: []*vidmodel.Shot{mkShot(0, 1, 1, 10), mkShot(1, 1, 1, 10), mkShot(2, 1, 1, 10)}},
		{Index: 1, Shots: []*vidmodel.Shot{mkShot(3, 9, 9, 10)}}, // 1 shot -> eliminated
	}
	res, err := MergeScenes(groups, SceneConfig{TG: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenes) != 1 {
		t.Fatalf("got %d scenes, want 1", len(res.Scenes))
	}
	if len(res.Discarded) != 1 {
		t.Fatalf("got %d discarded, want 1", len(res.Discarded))
	}
}

func TestMergeScenesEmpty(t *testing.T) {
	if _, err := MergeScenes(nil, SceneConfig{}); err == nil {
		t.Fatal("want error on empty groups")
	}
}

func TestSelectRepGroupCases(t *testing.T) {
	g1 := &vidmodel.Group{Shots: []*vidmodel.Shot{mkShot(0, 1, 1, 10), mkShot(1, 1, 1, 10)}}
	g2 := &vidmodel.Group{Shots: []*vidmodel.Shot{mkShot(2, 1, 1, 10)}}
	// Two groups: more shots wins.
	s := &vidmodel.Scene{Groups: []*vidmodel.Group{g1, g2}}
	if got := SelectRepGroup(s); got != g1 {
		t.Fatal("two-group scene: larger group must win")
	}
	// Single group: itself.
	if got := SelectRepGroup(&vidmodel.Scene{Groups: []*vidmodel.Group{g2}}); got != g2 {
		t.Fatal("single-group scene must return its group")
	}
	if SelectRepGroup(&vidmodel.Scene{}) != nil {
		t.Fatal("empty scene must return nil")
	}
	// Tie on shots: longer duration wins.
	ga := &vidmodel.Group{Shots: []*vidmodel.Shot{{Index: 0, Start: 0, End: 30, Color: mkShot(0, 1, 1, 1).Color, Texture: mkShot(0, 1, 1, 1).Texture}}}
	gb := &vidmodel.Group{Shots: []*vidmodel.Shot{{Index: 1, Start: 30, End: 40, Color: mkShot(0, 1, 1, 1).Color, Texture: mkShot(0, 1, 1, 1).Texture}}}
	if got := SelectRepGroup(&vidmodel.Scene{Groups: []*vidmodel.Group{ga, gb}}); got != ga {
		t.Fatal("duration tiebreak failed")
	}
}

// Integration: shots from a real synthetic video must group into scenes
// whose boundaries mostly coincide with the scripted semantic units.
func TestPipelineOnSyntheticVideo(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	script := &synth.Script{Name: "pipe", Scenes: []synth.SceneSpec{
		synth.PresentationScene(rng, 0, 1, 1),
		synth.OperationScene(rng, 2, 2, synth.ContentSurgical, 0),
		synth.DialogScene(rng, 4, 3, 2, 3),
	}}
	v, err := synth.Generate(synth.DefaultConfig(), script, 5)
	if err != nil {
		t.Fatal(err)
	}
	shots, _, err := shotdet.Detect(v, shotdet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := DetectGroups(shots, GroupConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gres.Groups) < 3 {
		t.Fatalf("only %d groups detected", len(gres.Groups))
	}
	sres, err := MergeScenes(gres.Groups, SceneConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Scenes) == 0 {
		t.Fatal("no scenes detected")
	}
	// Precision in the paper's sense: a detected scene is right iff all
	// its shots lie in one true scene.
	right := 0
	for _, sc := range sres.Scenes {
		first, last := sc.FrameSpan()
		if v.Truth.SceneAt(first) == v.Truth.SceneAt(last-1) {
			right++
		}
	}
	p := float64(right) / float64(len(sres.Scenes))
	if p < 0.5 {
		t.Fatalf("scene precision %.2f too low (%d/%d)", p, right, len(sres.Scenes))
	}
}
