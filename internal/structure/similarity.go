// Package structure mines the video content structure of §3: it groups
// shots (Eqs. 2–6), classifies groups as temporally or spatially related and
// selects their representative shots (§3.2.1, Eq. 7), evaluates shot–group
// and group–group similarity (Eqs. 8–9), and merges adjacent groups into
// scenes with representative groups (§3.4, Eqs. 10–11).
package structure

import (
	"classminer/internal/feature"
	"classminer/internal/vidmodel"
)

// ShotSim is Eq. (1): the weighted colour/texture similarity between two
// shots' representative frames, in [0, 1].
func ShotSim(a, b *vidmodel.Shot) float64 {
	return feature.StSim(a.Color, a.Texture, b.Color, b.Texture)
}

// ShotGroupSim is Eq. (8): the similarity between a shot and a group is the
// maximum similarity between the shot and any shot of the group.
func ShotGroupSim(s *vidmodel.Shot, g *vidmodel.Group) float64 {
	best := 0.0
	for _, gs := range g.Shots {
		if sim := ShotSim(s, gs); sim > best {
			best = sim
		}
	}
	return best
}

// GroupSim is Eq. (9): the benchmark group is the one with fewer shots, and
// the similarity is the average, over the benchmark group's shots, of each
// shot's best match in the other group.
func GroupSim(a, b *vidmodel.Group) float64 {
	bench, other := a, b
	if len(b.Shots) < len(a.Shots) {
		bench, other = b, a
	}
	if len(bench.Shots) == 0 {
		return 0
	}
	var sum float64
	for _, s := range bench.Shots {
		sum += ShotGroupSim(s, other)
	}
	return sum / float64(len(bench.Shots))
}
