package structure

import (
	"fmt"
	"math"

	"classminer/internal/entropy"
	"classminer/internal/vidmodel"
)

// GroupConfig tunes group detection (§3.2). Zero values mean "determine
// automatically with the fast-entropy technique", which is the paper's
// default behaviour.
type GroupConfig struct {
	T1 float64 // separation-factor threshold; 0 = automatic
	T2 float64 // similarity threshold; 0 = automatic
	// ClassifyTh is the intra-group clustering threshold Th of §3.2.1;
	// 0 = reuse T2.
	ClassifyTh float64
}

// Fallback thresholds used when the automatic technique has no signal
// (e.g. a video with almost identical shots).
const (
	// fallbackT1 must exceed ~2: at the second shot of an A/B alternation
	// the separation factor R(i) evaluates to about 2 even though no group
	// boundary exists (only shot i lacks left context, not i+1), while a
	// genuine boundary drives R(i) toward the clamp.
	fallbackT1 = 2.5
	fallbackT2 = 0.6
	// ratioClamp bounds the separation factor R(i): when the left-side
	// correlations vanish the ratio diverges, which carries no more
	// information than "very large". The clamp is kept low (4) so that the
	// automatic threshold over the ratio sample lands between the in-group
	// mode (≈1) and the boundary mode (≈2–4) instead of being dragged
	// upward by a handful of divergent values.
	ratioClamp = 4
)

// GroupResult carries the detected groups and the evidence used.
type GroupResult struct {
	Groups  []*vidmodel.Group
	T1, T2  float64   // thresholds actually applied
	AdjSims []float64 // StSim between consecutive shots (T2's sample)
	Ratios  []float64 // separation factors R(i) (T1's sample)
}

// DetectGroups segments a shot sequence into video groups following the
// §3.2 procedure: a shot opens a new group either when it correlates with
// its right context much more than with its left (step 1: R(i) > T1 with
// CRi above T2−0.1), or when it is isolated from both sides (step 2: CRi
// and CLi both below T2 — the "anchor person" separator case).
func DetectGroups(shots []*vidmodel.Shot, cfg GroupConfig) (*GroupResult, error) {
	if len(shots) == 0 {
		return nil, fmt.Errorf("structure: no shots")
	}
	res := &GroupResult{}
	n := len(shots)

	// Correlation helpers of Eqs. (2)–(5); out-of-range neighbours
	// contribute zero similarity.
	sim := func(i, j int) float64 {
		if i < 0 || j < 0 || i >= n || j >= n {
			return 0
		}
		return ShotSim(shots[i], shots[j])
	}
	cl := func(i int) float64 { return math.Max(sim(i, i-1), sim(i, i-2)) }
	cr := func(i int) float64 { return math.Max(sim(i, i+1), sim(i, i+2)) }
	// CL_{i+1} per Eq. (4) compares shot i+1 with the shots LEFT of i.
	clNext := func(i int) float64 { return math.Max(sim(i+1, i-1), sim(i+1, i-2)) }
	crNext := func(i int) float64 { return math.Max(sim(i+1, i+2), sim(i+1, i+3)) }

	ratio := func(i int) float64 {
		num := cr(i) + crNext(i)
		den := cl(i) + clNext(i)
		if den <= 1e-12 {
			return ratioClamp
		}
		r := num / den
		if r > ratioClamp {
			r = ratioClamp
		}
		return r
	}

	for i := 0; i < n-1; i++ {
		res.AdjSims = append(res.AdjSims, sim(i, i+1))
	}
	for i := 1; i < n; i++ {
		res.Ratios = append(res.Ratios, ratio(i))
	}

	t2 := cfg.T2
	if t2 == 0 {
		t2 = entropy.ThresholdOr(res.AdjSims, fallbackT2)
	}
	t1 := cfg.T1
	if t1 == 0 {
		t1 = entropy.ThresholdOr(res.Ratios, fallbackT1)
		if t1 < 1 {
			// A separation factor below 1 means "more similar to the
			// left"; it can never indicate a boundary.
			t1 = fallbackT1
		}
	}
	res.T1, res.T2 = t1, t2

	boundaries := []int{0}
	for i := 1; i < n; i++ {
		isBoundary := false
		if cr(i) > t2-0.1 {
			if ratio(i) > t1 {
				isBoundary = true // step 1: right context wins
			}
		} else if cr(i) < t2 && cl(i) < t2 {
			isBoundary = true // step 2: isolated separator shot
		}
		if isBoundary {
			boundaries = append(boundaries, i)
		}
	}

	classifyTh := cfg.ClassifyTh
	if classifyTh == 0 {
		// Th follows T2 but with an absolute floor: "similar in visual
		// perception" (§3.2.1) is a high bar, and on small shot samples
		// the automatic T2 can land low enough to fuse visibly different
		// recurring cameras into one cluster, mislabelling temporally
		// related groups as spatial.
		classifyTh = t2
		if classifyTh < 0.7 {
			classifyTh = 0.7
		}
	}
	for bi, start := range boundaries {
		end := n
		if bi+1 < len(boundaries) {
			end = boundaries[bi+1]
		}
		g := &vidmodel.Group{Index: bi, Shots: shots[start:end]}
		classifyGroup(g, classifyTh)
		res.Groups = append(res.Groups, g)
	}
	return res, nil
}

// classifyGroup implements §3.2.1: shots are clustered sequentially with
// threshold th; more than one cluster means the group is temporally related
// (similar shots recur back and forth), one cluster means spatially related.
// The group's representative shots (one per cluster, Eq. 7) are filled in.
func classifyGroup(g *vidmodel.Group, th float64) {
	clusters := clusterShots(g.Shots, th)
	if len(clusters) > 1 {
		g.Kind = vidmodel.GroupTemporal
	} else {
		g.Kind = vidmodel.GroupSpatial
	}
	g.RepShots = g.RepShots[:0]
	for _, c := range clusters {
		g.RepShots = append(g.RepShots, selectRepShot(c))
	}
}

// clusterShots is the seeded sequential clustering of §3.2.1: the smallest-
// numbered unassigned shot seeds a cluster which absorbs every remaining
// shot more similar than th to the seed.
func clusterShots(shots []*vidmodel.Shot, th float64) [][]*vidmodel.Shot {
	remaining := append([]*vidmodel.Shot(nil), shots...)
	var clusters [][]*vidmodel.Shot
	for len(remaining) > 0 {
		seed := remaining[0]
		cluster := []*vidmodel.Shot{seed}
		rest := remaining[:0]
		for _, s := range remaining[1:] {
			if ShotSim(seed, s) > th {
				cluster = append(cluster, s)
			} else {
				rest = append(rest, s)
			}
		}
		remaining = rest
		clusters = append(clusters, cluster)
	}
	return clusters
}

// selectRepShot implements Eq. (7) and its small-cluster special cases:
// three or more shots — the shot with the largest average similarity to the
// rest; exactly two — the longer one; one — itself.
func selectRepShot(cluster []*vidmodel.Shot) *vidmodel.Shot {
	switch len(cluster) {
	case 0:
		return nil
	case 1:
		return cluster[0]
	case 2:
		if cluster[1].Len() > cluster[0].Len() {
			return cluster[1]
		}
		return cluster[0]
	}
	best, bestAvg := cluster[0], -1.0
	for _, s := range cluster {
		var sum float64
		for _, o := range cluster {
			if o != s {
				sum += ShotSim(s, o)
			}
		}
		avg := sum / float64(len(cluster)-1)
		if avg > bestAvg {
			best, bestAvg = s, avg
		}
	}
	return best
}
