package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache amortises runtime.ReadMemStats across the gauge funcs of one
// scrape (and across rapid scrapes): ReadMemStats stops the world, so each
// of the ~8 Go-runtime gauges must not pay for its own call.
type memStatsCache struct {
	mu  sync.Mutex
	ttl time.Duration
	at  time.Time
	ms  runtime.MemStats
}

// read samples fn against a MemStats no older than ttl.
func (c *memStatsCache) read(fn func(*runtime.MemStats) float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); c.at.IsZero() || now.Sub(c.at) > c.ttl {
		runtime.ReadMemStats(&c.ms)
		c.at = now
	}
	return fn(&c.ms)
}

// RegisterGoMetrics registers Go runtime health gauges (goroutines, heap,
// GC) sampled at scrape time. Safe to call more than once on the same
// registry — later calls replace the callbacks.
func RegisterGoMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	c := &memStatsCache{ttl: time.Second}
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return c.read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { return c.read(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }) })
	r.GaugeFunc("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.",
		func() float64 { return c.read(func(m *runtime.MemStats) float64 { return float64(m.Sys) }) })
	r.GaugeFunc("go_memstats_next_gc_bytes", "Heap size at which the next GC cycle runs.",
		func() float64 { return c.read(func(m *runtime.MemStats) float64 { return float64(m.NextGC) }) })
	r.CounterFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		func() float64 { return c.read(func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) }) })
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return c.read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func() float64 {
			return c.read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 })
		})
}
