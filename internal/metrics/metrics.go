// Package metrics is a zero-dependency instrumentation registry with a
// Prometheus text-exposition writer. The serving layer's perf claims —
// microsecond search, group-commit ingest, incremental index maintenance —
// are only claims until they can be watched under live load; this package
// makes them continuously observable without pulling a client library into
// the module.
//
// Design constraints, in priority order:
//
//   - The hot path is lock-free and allocation-free: Counter.Inc and
//     Histogram.Observe are a handful of atomic operations on pre-registered
//     instruments. The search path's zero-alloc contract (see
//     BenchmarkServerSearch and the AllocsPerRun assertions) covers the
//     instrumentation riding on it.
//   - Labels are fixed at registration: an instrument is one (name, label
//     set) series, registered once and held by pointer, so recording a
//     sample is a pointer deref — never a per-request map lookup or label
//     rendering. Dynamic label values (per-user, per-query) are deliberately
//     unsupported; they are a cardinality bomb anyway.
//   - Scrape-time work (locking, sorting, formatting) is unbounded-ly
//     boring: WritePrometheus renders the whole registry under one mutex in
//     deterministic order, which keeps golden tests and diff-based alerting
//     stable.
//
// Nil instruments are valid no-ops: a *Counter that was never registered
// (metrics disabled) accepts Inc/Add/Observe calls and does nothing, so
// instrumented code needs no "is metrics on" branches.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. The zero value is ready to use; a nil Gauge is
// a no-op. Float-valued or derived gauges are registered as GaugeFunc
// instead — sampled at scrape, they cost the hot path nothing.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Each Observe increments exactly one
// bucket counter (buckets are stored non-cumulative; the writer accumulates
// for the exposition format), the total count, and a CAS-maintained float
// sum — all atomics, no locks, no allocation. Buckets are fixed at
// registration; there is no adaptive resizing to contend over.
type Histogram struct {
	upper  []float64       // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one sample. A nil Histogram is a no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are small (≤ ~20) and the branch pattern is
	// far more predictable than a binary search.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Common bucket presets. Registrations copy the slice, so presets are safe
// to share between instruments.
var (
	// LatencyBuckets spans 10µs to 10s — microsecond searches through
	// multi-second checkpoints on one scale.
	LatencyBuckets = []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
		0.1, 0.25, 0.5, 1, 2.5, 10,
	}
	// SizeBuckets spans 256B to 16MiB (response and record sizes).
	SizeBuckets = []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	// CountBuckets covers small cardinalities: group-commit batch sizes,
	// batch-search item counts.
	CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

// series is one (label set, instrument) pair within a family. Exactly one
// of c, g, h, fn is set.
type series struct {
	labels string // rendered `k="v",k2="v2"` (no braces), "" for unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups every series sharing one metric name (one # HELP/# TYPE
// block in the exposition).
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

// Registry holds registered instruments and renders them in the Prometheus
// text exposition format. Registration takes a mutex; recording does not.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Counter registers (or returns the existing) counter series for name and
// the given label pairs ("key", "value", ...). Panics on an invalid name,
// odd label pairs, or a name already registered with a different type.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, "counter", labels, func() *series { return &series{c: &Counter{}} })
	return s.c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, "gauge", labels, func() *series { return &series{g: &Gauge{}} })
	return s.g
}

// Histogram registers (or returns the existing) histogram series with the
// given bucket upper bounds (sorted ascending, +Inf implicit; the slice is
// copied). Panics if buckets are empty or unsorted.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	s := r.register(name, help, "histogram", labels, func() *series {
		if len(buckets) == 0 {
			panic("metrics: histogram " + name + " has no buckets")
		}
		upper := make([]float64, 0, len(buckets))
		for _, b := range buckets {
			if math.IsInf(b, +1) {
				continue // +Inf bucket is implicit
			}
			if len(upper) > 0 && b <= upper[len(upper)-1] {
				panic("metrics: histogram " + name + " buckets not sorted ascending")
			}
			upper = append(upper, b)
		}
		return &series{h: &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}}
	})
	return s.h
}

// GaugeFunc registers a gauge sampled by fn at scrape time. Re-registering
// the same (name, labels) replaces the callback — the idiom for components
// (a reopened WAL engine, a restarted server) that outlive one instance.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, "gauge", labels, func() *series { return &series{fn: fn} })
	if s.fn != nil {
		s.fn = fn
	}
}

// CounterFunc is GaugeFunc with counter semantics: fn must be monotonically
// non-decreasing (a mirrored internal counter, a generation number).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, "counter", labels, func() *series { return &series{fn: fn} })
	if s.fn != nil {
		s.fn = fn
	}
}

// register resolves one (name, labels) series, creating family and series on
// first sight. Duplicate registrations return the existing series (the
// make function is not called), so instruments are shared rather than
// double-counted; a type clash panics — that is a programming error.
func (r *Registry) register(name, help, typ string, labels []string, make func() *series) *series {
	mustValidName(name)
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabels: map[string]*series{}}
		r.fams[name] = f
		r.order = append(r.order, f)
	}
	if f.typ != typ {
		panic("metrics: " + name + " registered as " + f.typ + ", now requested as " + typ)
	}
	if s := f.byLabels[ls]; s != nil {
		return s
	}
	s := make()
	s.labels = ls
	f.byLabels[ls] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	return s
}

// mustValidName enforces the Prometheus metric/label-name charset.
func mustValidName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic("metrics: invalid metric name " + strconv.Quote(name))
		}
	}
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels turns ("k","v","k2","v2") into `k="v",k2="v2"`, validating
// keys and escaping values. Rendering happens once, at registration.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		mustValidName(kv[i])
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// WritePrometheus renders every registered family in the text exposition
// format (version 0.0.4): families in registration order, series sorted by
// label set, histogram buckets cumulative with the trailing +Inf bucket,
// _sum and _count. Funcs are sampled while the registry lock is held — they
// must not re-enter the registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.order {
		b.Reset()
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(helpEscaper.Replace(f.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, s := range f.series {
			switch {
			case s.h != nil:
				writeHistogram(&b, f.name, s)
			case s.c != nil:
				writeSample(&b, f.name, "", s.labels, strconv.FormatUint(s.c.Value(), 10))
			case s.g != nil:
				writeSample(&b, f.name, "", s.labels, strconv.FormatInt(s.g.Value(), 10))
			case s.fn != nil:
				writeSample(&b, f.name, "", s.labels, formatFloat(s.fn()))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSample emits one `name[suffix]{labels} value` line.
func writeSample(b *strings.Builder, name, suffix, labels, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket series, _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		labels := `le="` + le + `"`
		if s.labels != "" {
			labels = s.labels + "," + labels
		}
		writeSample(b, name, "_bucket", labels, strconv.FormatUint(cum, 10))
	}
	writeSample(b, name, "_sum", s.labels, formatFloat(h.Sum()))
	writeSample(b, name, "_count", s.labels, strconv.FormatUint(h.count.Load(), 10))
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ContentType is the exposition format's content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ValidateExposition checks that body parses as text exposition format:
// every line is a # HELP/# TYPE comment or a `name[{labels}] value`
// sample with a parseable float value. It returns the first malformed line.
// The server's scrape test (and the CI step running it) calls this so a
// formatting regression fails loudly rather than breaking scrapers.
func ValidateExposition(body string) error {
	seenType := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				if seenType[parts[2]] {
					return fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, parts[2])
				}
				seenType[parts[2]] = true
			}
			continue
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if err := checkName(name); err != nil {
			return fmt.Errorf("line %d: %v in %q", ln+1, err, line)
		}
		if strings.HasPrefix(rest, "{") {
			end := labelSetEnd(rest)
			if end < 0 {
				return fmt.Errorf("line %d: unterminated label set in %q", ln+1, line)
			}
			rest = rest[end+1:]
		}
		val := strings.TrimSpace(rest)
		if val == "" {
			return fmt.Errorf("line %d: no value in %q", ln+1, line)
		}
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("line %d: bad value %q in %q", ln+1, val, line)
			}
		}
	}
	return nil
}

// labelSetEnd returns the index of the '}' closing the label set opening at
// rest[0], or -1. Braces inside quoted label values (route="/v1/jobs/{id}")
// do not close the set, and \" inside a value does not end the quote.
func labelSetEnd(rest string) int {
	inQuote, escaped := false, false
	for i := 1; i < len(rest); i++ {
		switch c := rest[i]; {
		case escaped:
			escaped = false
		case inQuote && c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return i
		}
	}
	return -1
}

func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}
