package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact text exposition: families in
// registration order, series sorted by label set, cumulative histogram
// buckets with +Inf, _sum and _count. Scrapers parse this byte format;
// changes here are protocol changes.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Add(41)
	c.Inc()
	r.Counter("http_requests_total", "Per-route requests.", "route", "/v1/search", "status", "2xx").Add(7)
	r.Counter("http_requests_total", "Per-route requests.", "route", "/healthz", "status", "2xx").Add(2)
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(3)
	r.GaugeFunc("index_staleness", "Overlay fraction.", func() float64 { return 0.25 })
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total 42
# HELP http_requests_total Per-route requests.
# TYPE http_requests_total counter
http_requests_total{route="/healthz",status="2xx"} 2
http_requests_total{route="/v1/search",status="2xx"} 7
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 3
# HELP index_staleness Overlay fraction.
# TYPE index_staleness gauge
index_staleness 0.25
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.01"} 2
latency_seconds_bucket{le="0.1"} 3
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 2.06
latency_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition(b.String()); err != nil {
		t.Errorf("golden exposition fails validation: %v", err)
	}
}

// TestHistogramLabeled checks the le label composes with series labels.
func TestHistogramLabeled(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", []float64{1}, "route", "/x")
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`d_seconds_bucket{route="/x",le="1"} 1`,
		`d_seconds_bucket{route="/x",le="+Inf"} 1`,
		`d_seconds_sum{route="/x"} 0.5`,
		`d_seconds_count{route="/x"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, b.String())
		}
	}
}

// TestDedupe pins the shared-instrument contract: re-registering the same
// (name, labels) returns the same instrument, never a second series.
func TestDedupe(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help")
	b := r.Counter("c_total", "ignored on re-register")
	if a != b {
		t.Fatal("duplicate registration returned a distinct counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registered counter does not share state")
	}
	// Func re-registration replaces the callback (reopened-engine idiom).
	v := 1.0
	r.GaugeFunc("f", "", func() float64 { return v })
	r.GaugeFunc("f", "", func() float64 { return v * 10 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "f 10\n") {
		t.Errorf("GaugeFunc re-registration did not replace callback:\n%s", sb.String())
	}
}

func TestTypeClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("counter-then-gauge on one name did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "")
	r.Gauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("bad-name", "")
}

// TestLabelEscaping: values with quotes, backslashes and newlines must not
// corrupt the exposition.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "path", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `c_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("got %q, want it to contain %q", b.String(), want)
	}
	if err := ValidateExposition(b.String()); err != nil {
		t.Errorf("escaped exposition fails validation: %v", err)
	}
}

// TestNilInstrumentsAreNoOps: disabled-metrics code paths call methods on
// nil instruments; none may panic.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported nonzero state")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race it proves the hot path is data-race-free, and the final
// count/sum/bucket totals prove no sample was lost to the CAS loop.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer_seconds", "", []float64{0.25, 0.5, 0.75})
	c := r.Counter("hammer_total", "")
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) / 100)
				c.Inc()
			}
		}(g)
	}
	wg.Wait()
	const total = goroutines * perG
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	var bucketSum uint64
	for i := range h.counts {
		bucketSum += h.counts[i].Load()
	}
	if bucketSum != total {
		t.Fatalf("bucket totals = %d, want %d (every observe lands in exactly one bucket)", bucketSum, total)
	}
	// Each goroutine contributes sum 0..99 (/100) × perG/100 rounds.
	wantSum := float64(goroutines) * float64(perG/100) * (99 * 100 / 2) / 100
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHotPathZeroAlloc is the instrumentation contract: recording a sample
// allocates nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", LatencyBuckets)
	if avg := testing.AllocsPerRun(500, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		h.Observe(0.0001)
	}); avg != 0 {
		t.Fatalf("hot-path instrumentation allocates %.1f per run, want 0", avg)
	}
}

// TestGoMetrics smoke-tests the runtime collector end to end.
func TestGoMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterGoMetrics(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(b.String(), want+" ") {
			t.Errorf("runtime metrics missing %s:\n%s", want, b.String())
		}
	}
	if err := ValidateExposition(b.String()); err != nil {
		t.Errorf("runtime metrics exposition invalid: %v", err)
	}
}

// TestValidateExposition rejects the malformed lines the CI scrape step
// exists to catch.
func TestValidateExposition(t *testing.T) {
	good := "# HELP a_total h\n# TYPE a_total counter\na_total 1\na_total{x=\"y\"} 2\n" +
		// Braces and escaped quotes inside label values must not end the
		// label set early (the server's route templates contain both).
		"a_total{route=\"/v1/jobs/{id}\"} 3\na_total{x=\"q\\\"}\\\"\"} 4\n"
	if err := ValidateExposition(good); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	for _, bad := range []string{
		"a_total\n",                     // no value
		"1bad_name 3\n",                 // invalid name
		"a_total{x=\"y\" 3\n",           // unterminated labels
		"a_total notanumber\n",          // bad value
		"# NOPE a_total counter\n",      // bad comment keyword
		"# TYPE a c\n# TYPE a c\nb 1\n", // duplicate TYPE
	} {
		if err := ValidateExposition(bad); err == nil {
			t.Errorf("malformed exposition accepted: %q", bad)
		}
	}
}
