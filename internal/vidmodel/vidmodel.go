// Package vidmodel defines the media model shared by the whole system:
// raster frames, audio tracks, videos, and the four structural units of the
// paper's Definition 2 — shots, groups, scenes and clustered scenes — plus
// the ground-truth annotations the synthetic generator emits for evaluation.
//
// The mining pipeline consumes only Video (pixels + samples); GroundTruth is
// visible exclusively to the evaluation harness.
package vidmodel

import "fmt"

// Frame is a small dense RGB raster. Pixels are stored row-major, three
// bytes per pixel (R, G, B). Frames are deliberately tiny (the default
// corpus uses 48×36) so that a six-hour-equivalent corpus can be rendered
// and mined on one CPU; every detector in the system is resolution-free.
type Frame struct {
	W, H int
	Pix  []byte // len = W*H*3
}

// NewFrame allocates a black frame of the given geometry.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]byte, w*h*3)}
}

// At returns the pixel at (x, y). Out-of-range coordinates are clamped,
// which simplifies the window-based texture code.
func (f *Frame) At(x, y int) (r, g, b byte) {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y >= f.H {
		y = f.H - 1
	}
	i := (y*f.W + x) * 3
	return f.Pix[i], f.Pix[i+1], f.Pix[i+2]
}

// Set writes the pixel at (x, y); out-of-range writes are ignored.
func (f *Frame) Set(x, y int, r, g, b byte) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	i := (y*f.W + x) * 3
	f.Pix[i], f.Pix[i+1], f.Pix[i+2] = r, g, b
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	return &Frame{W: f.W, H: f.H, Pix: append([]byte(nil), f.Pix...)}
}

// Gray returns the luma (0..255) of pixel (x, y) using the BT.601 weights.
func (f *Frame) Gray(x, y int) float64 {
	r, g, b := f.At(x, y)
	return 0.299*float64(r) + 0.587*float64(g) + 0.114*float64(b)
}

// AudioTrack is a mono PCM stream aligned with the frame sequence.
type AudioTrack struct {
	SampleRate int       // samples per second
	Samples    []float64 // amplitude in [-1, 1]
}

// SamplesPerFrame returns how many audio samples correspond to one video
// frame at the given frame rate.
func (a *AudioTrack) SamplesPerFrame(fps float64) int {
	if fps <= 0 {
		return 0
	}
	return int(float64(a.SampleRate) / fps)
}

// Slice returns the samples covering video frames [from, to) at fps.
// The result aliases the underlying track.
func (a *AudioTrack) Slice(from, to int, fps float64) []float64 {
	spf := a.SamplesPerFrame(fps)
	lo := from * spf
	hi := to * spf
	if lo < 0 {
		lo = 0
	}
	if hi > len(a.Samples) {
		hi = len(a.Samples)
	}
	if lo >= hi {
		return nil
	}
	return a.Samples[lo:hi]
}

// Video is a decoded media document: frames plus an aligned audio track.
type Video struct {
	Name   string
	FPS    float64
	Frames []*Frame
	Audio  *AudioTrack
	Truth  *GroundTruth // nil for non-synthetic sources
}

// Duration returns the video length in seconds.
func (v *Video) Duration() float64 {
	if v.FPS <= 0 {
		return 0
	}
	return float64(len(v.Frames)) / v.FPS
}

// Shot is the paper's physical unit Si: a run of frames from a single
// continuous camera take (§3, Definition 2).
type Shot struct {
	Index    int       // position in the shot sequence
	Start    int       // first frame (inclusive)
	End      int       // last frame (exclusive)
	RepFrame int       // index of the representative frame (the 10th, clamped)
	Color    []float64 // 256-dim normalised HSV histogram of the rep frame
	Texture  []float64 // 10-dim Tamura coarseness vector of the rep frame
}

// Len returns the shot length in frames.
func (s *Shot) Len() int { return s.End - s.Start }

// Feature returns the concatenated 266-dim descriptor used by the database
// index (colour followed by texture).
func (s *Shot) Feature() []float64 {
	out := make([]float64, 0, len(s.Color)+len(s.Texture))
	out = append(out, s.Color...)
	out = append(out, s.Texture...)
	return out
}

// GroupKind distinguishes the two ways shots are absorbed into a group
// (§3.2.1).
type GroupKind int

const (
	// GroupSpatial marks a group whose shots are all mutually similar in
	// visual features.
	GroupSpatial GroupKind = iota
	// GroupTemporal marks a group whose similar shots recur back and forth
	// in time (e.g. a dialog's alternating cameras).
	GroupTemporal
)

func (k GroupKind) String() string {
	if k == GroupTemporal {
		return "temporal"
	}
	return "spatial"
}

// Group is the intermediate entity Gi between physical shots and semantic
// scenes (§3, Definition 2).
type Group struct {
	Index    int
	Shots    []*Shot
	Kind     GroupKind
	RepShots []*Shot // one representative per intra-group cluster (§3.2.1)
}

// ShotSpan returns the first and one-past-last shot indices of the group.
func (g *Group) ShotSpan() (first, last int) {
	if len(g.Shots) == 0 {
		return 0, 0
	}
	return g.Shots[0].Index, g.Shots[len(g.Shots)-1].Index + 1
}

// FrameSpan returns the first and one-past-last frame indices of the group.
func (g *Group) FrameSpan() (first, last int) {
	if len(g.Shots) == 0 {
		return 0, 0
	}
	return g.Shots[0].Start, g.Shots[len(g.Shots)-1].End
}

// Duration returns the group length in frames.
func (g *Group) Duration() int {
	first, last := g.FrameSpan()
	return last - first
}

// EventKind enumerates the three event categories mined in §4.3 plus the
// explicit "undetermined" outcome of step 5.
type EventKind int

const (
	// EventUnknown is the §4.3 step-5 outcome: no category could be claimed.
	EventUnknown EventKind = iota
	// EventPresentation marks doctor/expert presentations with slides.
	EventPresentation
	// EventDialog marks doctor–patient (or doctor–doctor) dialog scenes.
	EventDialog
	// EventClinicalOperation marks surgery/diagnosis/symptom scenes.
	EventClinicalOperation
)

func (e EventKind) String() string {
	switch e {
	case EventPresentation:
		return "presentation"
	case EventDialog:
		return "dialog"
	case EventClinicalOperation:
		return "clinical-operation"
	default:
		return "unknown"
	}
}

// Scene is a collection of semantically related, temporally adjacent groups
// (§3, Definition 2), optionally labelled with a mined event.
type Scene struct {
	Index    int
	Groups   []*Group
	RepGroup *Group // §3.4 SelectRepGroup result; the scene centroid
	Event    EventKind
}

// Shots returns all shots of the scene in temporal order.
func (s *Scene) Shots() []*Shot {
	var out []*Shot
	for _, g := range s.Groups {
		out = append(out, g.Shots...)
	}
	return out
}

// ShotCount returns the number of shots in the scene.
func (s *Scene) ShotCount() int {
	n := 0
	for _, g := range s.Groups {
		n += len(g.Shots)
	}
	return n
}

// FrameSpan returns the first and one-past-last frame indices of the scene.
func (s *Scene) FrameSpan() (first, last int) {
	if len(s.Groups) == 0 {
		return 0, 0
	}
	first, _ = s.Groups[0].FrameSpan()
	_, last = s.Groups[len(s.Groups)-1].FrameSpan()
	return first, last
}

// ClusteredScene groups visually similar scenes that recur across the video
// (§3, Definition 2).
type ClusteredScene struct {
	Index    int
	Scenes   []*Scene
	RepGroup *Group // centroid of the cluster (§3.5 step 2)
}

// String summarises the cluster for logs.
func (c *ClusteredScene) String() string {
	return fmt.Sprintf("cluster %d (%d scenes)", c.Index, len(c.Scenes))
}

// GroundTruth carries the generator's annotations for evaluation: true shot
// boundaries, true scene extents with event labels, and speaker turns.
type GroundTruth struct {
	ShotStarts  []int            // frame index where each true shot begins
	Scenes      []TrueScene      // true semantic units in temporal order
	SpeakerTurn []SpeakerSegment // who speaks when (frame-indexed)
}

// TrueScene is one annotated semantic unit.
type TrueScene struct {
	StartFrame int
	EndFrame   int // exclusive
	Event      EventKind
	ClusterID  int // scenes sharing a ClusterID are recurrences of one set
}

// SpeakerSegment annotates a contiguous frame range with a speaker identity;
// ID 0 means silence or non-speech audio.
type SpeakerSegment struct {
	StartFrame int
	EndFrame   int // exclusive
	SpeakerID  int
}

// SceneAt returns the index of the true scene containing the frame, or -1.
func (g *GroundTruth) SceneAt(frame int) int {
	for i, s := range g.Scenes {
		if frame >= s.StartFrame && frame < s.EndFrame {
			return i
		}
	}
	return -1
}

// SpeakerAt returns the speaker ID active at the frame, or 0.
func (g *GroundTruth) SpeakerAt(frame int) int {
	for _, seg := range g.SpeakerTurn {
		if frame >= seg.StartFrame && frame < seg.EndFrame {
			return seg.SpeakerID
		}
	}
	return 0
}
