package vidmodel

import (
	"testing"
	"testing/quick"
)

func TestFrameSetAt(t *testing.T) {
	f := NewFrame(4, 3)
	f.Set(1, 2, 10, 20, 30)
	r, g, b := f.At(1, 2)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("At = (%d,%d,%d)", r, g, b)
	}
}

func TestFrameAtClamps(t *testing.T) {
	f := NewFrame(2, 2)
	f.Set(1, 1, 9, 9, 9)
	r, _, _ := f.At(99, 99)
	if r != 9 {
		t.Fatalf("clamped At = %d, want 9", r)
	}
	r, _, _ = f.At(-5, -5)
	if r != 0 {
		t.Fatalf("clamped At = %d, want 0", r)
	}
}

func TestFrameSetOutOfRangeIgnored(t *testing.T) {
	f := NewFrame(2, 2)
	f.Set(-1, 0, 1, 1, 1) // must not panic
	f.Set(0, 5, 1, 1, 1)
	for _, p := range f.Pix {
		if p != 0 {
			t.Fatal("out-of-range Set must not write")
		}
	}
}

func TestFrameClone(t *testing.T) {
	f := NewFrame(2, 2)
	f.Set(0, 0, 1, 2, 3)
	c := f.Clone()
	c.Set(0, 0, 9, 9, 9)
	if r, _, _ := f.At(0, 0); r != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestGrayWeights(t *testing.T) {
	f := NewFrame(1, 1)
	f.Set(0, 0, 255, 255, 255)
	if g := f.Gray(0, 0); g < 254.9 || g > 255.1 {
		t.Fatalf("Gray(white) = %v, want 255", g)
	}
}

func TestAudioSlice(t *testing.T) {
	a := &AudioTrack{SampleRate: 100, Samples: make([]float64, 1000)}
	fps := 10.0
	if got := a.SamplesPerFrame(fps); got != 10 {
		t.Fatalf("SamplesPerFrame = %d, want 10", got)
	}
	if got := len(a.Slice(2, 5, fps)); got != 30 {
		t.Fatalf("Slice len = %d, want 30", got)
	}
	if a.Slice(90, 80, fps) != nil {
		t.Fatal("inverted slice should be nil")
	}
	if got := len(a.Slice(95, 200, fps)); got != 50 {
		t.Fatalf("clamped slice len = %d, want 50", got)
	}
}

func TestAudioSamplesPerFrameZeroFPS(t *testing.T) {
	a := &AudioTrack{SampleRate: 100}
	if a.SamplesPerFrame(0) != 0 {
		t.Fatal("zero fps must yield zero samples per frame")
	}
}

func TestVideoDuration(t *testing.T) {
	v := &Video{FPS: 10, Frames: make([]*Frame, 50)}
	if d := v.Duration(); d != 5 {
		t.Fatalf("Duration = %v, want 5", d)
	}
	if (&Video{}).Duration() != 0 {
		t.Fatal("zero-fps duration must be 0")
	}
}

func TestShotFeatureConcat(t *testing.T) {
	s := &Shot{Color: []float64{1, 2}, Texture: []float64{3}}
	f := s.Feature()
	if len(f) != 3 || f[0] != 1 || f[2] != 3 {
		t.Fatalf("Feature = %v", f)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestGroupSpans(t *testing.T) {
	g := &Group{Shots: []*Shot{
		{Index: 3, Start: 30, End: 40},
		{Index: 4, Start: 40, End: 55},
	}}
	f, l := g.ShotSpan()
	if f != 3 || l != 5 {
		t.Fatalf("ShotSpan = (%d,%d)", f, l)
	}
	ff, fl := g.FrameSpan()
	if ff != 30 || fl != 55 {
		t.Fatalf("FrameSpan = (%d,%d)", ff, fl)
	}
	if g.Duration() != 25 {
		t.Fatalf("Duration = %d", g.Duration())
	}
}

func TestGroupEmptySpans(t *testing.T) {
	g := &Group{}
	if f, l := g.ShotSpan(); f != 0 || l != 0 {
		t.Fatal("empty group ShotSpan should be zero")
	}
	if f, l := g.FrameSpan(); f != 0 || l != 0 {
		t.Fatal("empty group FrameSpan should be zero")
	}
}

func TestSceneAccessors(t *testing.T) {
	s := &Scene{Groups: []*Group{
		{Shots: []*Shot{{Index: 0, Start: 0, End: 10}, {Index: 1, Start: 10, End: 20}}},
		{Shots: []*Shot{{Index: 2, Start: 20, End: 30}}},
	}}
	if s.ShotCount() != 3 {
		t.Fatalf("ShotCount = %d", s.ShotCount())
	}
	if len(s.Shots()) != 3 {
		t.Fatalf("Shots len = %d", len(s.Shots()))
	}
	f, l := s.FrameSpan()
	if f != 0 || l != 30 {
		t.Fatalf("FrameSpan = (%d,%d)", f, l)
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EventUnknown:           "unknown",
		EventPresentation:      "presentation",
		EventDialog:            "dialog",
		EventClinicalOperation: "clinical-operation",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("String(%d) = %q, want %q", k, k.String(), want)
		}
	}
	if GroupTemporal.String() != "temporal" || GroupSpatial.String() != "spatial" {
		t.Fatal("GroupKind strings wrong")
	}
}

func TestGroundTruthLookups(t *testing.T) {
	gt := &GroundTruth{
		Scenes: []TrueScene{
			{StartFrame: 0, EndFrame: 100, Event: EventDialog},
			{StartFrame: 100, EndFrame: 250, Event: EventPresentation},
		},
		SpeakerTurn: []SpeakerSegment{
			{StartFrame: 0, EndFrame: 50, SpeakerID: 1},
			{StartFrame: 50, EndFrame: 100, SpeakerID: 2},
		},
	}
	if gt.SceneAt(150) != 1 {
		t.Fatalf("SceneAt(150) = %d", gt.SceneAt(150))
	}
	if gt.SceneAt(900) != -1 {
		t.Fatal("SceneAt outside must be -1")
	}
	if gt.SpeakerAt(75) != 2 {
		t.Fatalf("SpeakerAt(75) = %d", gt.SpeakerAt(75))
	}
	if gt.SpeakerAt(500) != 0 {
		t.Fatal("SpeakerAt outside must be 0")
	}
}

// Property: Set followed by At round-trips for in-range coordinates.
func TestFramePropertySetAtRoundTrip(t *testing.T) {
	f := NewFrame(8, 8)
	prop := func(x, y uint8, r, g, b byte) bool {
		xi, yi := int(x%8), int(y%8)
		f.Set(xi, yi, r, g, b)
		rr, gg, bb := f.At(xi, yi)
		return rr == r && gg == g && bb == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
