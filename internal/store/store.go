// Package store persists mined video metadata. A video database keeps the
// *mining results* — shot descriptors, the content hierarchy, mined events —
// not the media itself, so a saved library can be reloaded and queried
// without re-running the pipeline (or without the original frames at all).
//
// The format is JSON with explicit index-based references: Go pointers
// (shots shared between groups, scenes and skim levels) are flattened to
// indices on save and re-linked on load, preserving identity.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"classminer/internal/core"
	"classminer/internal/skim"
	"classminer/internal/vidmodel"
)

// FormatVersion guards against decoding incompatible files.
const FormatVersion = 1

// SavedShot mirrors vidmodel.Shot.
type SavedShot struct {
	Index    int       `json:"index"`
	Start    int       `json:"start"`
	End      int       `json:"end"`
	RepFrame int       `json:"repFrame"`
	Color    []float64 `json:"color"`
	Texture  []float64 `json:"texture"`
}

// SavedGroup references shots by their position in the shot table.
type SavedGroup struct {
	Index    int   `json:"index"`
	Kind     int   `json:"kind"`
	Shots    []int `json:"shots"`
	RepShots []int `json:"repShots"`
}

// SavedScene references groups by position in the group table.
type SavedScene struct {
	Index    int   `json:"index"`
	Groups   []int `json:"groups"`
	RepGroup int   `json:"repGroup"` // -1 when absent
	Event    int   `json:"event"`
}

// SavedCluster references scenes by position in the scene table.
type SavedCluster struct {
	Index    int   `json:"index"`
	Scenes   []int `json:"scenes"` // positions in the scene table
	RepGroup int   `json:"repGroup"`
}

// SavedResult is the on-disk form of one mined video.
type SavedResult struct {
	Version     int            `json:"version"`
	VideoName   string         `json:"videoName"`
	FPS         float64        `json:"fps"`
	TotalFrames int            `json:"totalFrames"`
	Shots       []SavedShot    `json:"shots"`
	Groups      []SavedGroup   `json:"groups"`
	Scenes      []SavedScene   `json:"scenes"`
	Discarded   []SavedScene   `json:"discarded"`
	Clusters    []SavedCluster `json:"clusters"`
	Events      map[int]int    `json:"events"` // scene index -> event kind
}

// EncodeResult converts a mined result to its persistent form. Raw media
// (frames, audio) is intentionally not persisted.
func EncodeResult(r *core.Result) (*SavedResult, error) {
	if r == nil || r.Video == nil {
		return nil, fmt.Errorf("store: nil result")
	}
	out := &SavedResult{
		Version:     FormatVersion,
		VideoName:   r.Video.Name,
		FPS:         r.Video.FPS,
		TotalFrames: len(r.Video.Frames),
	}
	if out.TotalFrames == 0 && r.Skim != nil {
		out.TotalFrames = r.Skim.TotalFrames
	}
	shotPos := map[*vidmodel.Shot]int{}
	for i, s := range r.Shots {
		shotPos[s] = i
		out.Shots = append(out.Shots, SavedShot{
			Index: s.Index, Start: s.Start, End: s.End, RepFrame: s.RepFrame,
			Color: s.Color, Texture: s.Texture,
		})
	}
	groupPos := map[*vidmodel.Group]int{}
	encodeGroup := func(g *vidmodel.Group) (SavedGroup, error) {
		sg := SavedGroup{Index: g.Index, Kind: int(g.Kind)}
		for _, s := range g.Shots {
			p, ok := shotPos[s]
			if !ok {
				return sg, fmt.Errorf("store: group %d references unknown shot %d", g.Index, s.Index)
			}
			sg.Shots = append(sg.Shots, p)
		}
		for _, s := range g.RepShots {
			if p, ok := shotPos[s]; ok {
				sg.RepShots = append(sg.RepShots, p)
			}
		}
		return sg, nil
	}
	for _, g := range r.Groups {
		groupPos[g] = len(out.Groups)
		sg, err := encodeGroup(g)
		if err != nil {
			return nil, err
		}
		out.Groups = append(out.Groups, sg)
	}
	encodeScene := func(sc *vidmodel.Scene) (SavedScene, error) {
		ss := SavedScene{Index: sc.Index, RepGroup: -1, Event: int(sc.Event)}
		for _, g := range sc.Groups {
			p, ok := groupPos[g]
			if !ok {
				// Groups of discarded scenes may not be in the main table;
				// append them now.
				p = len(out.Groups)
				groupPos[g] = p
				sg, err := encodeGroup(g)
				if err != nil {
					return ss, err
				}
				out.Groups = append(out.Groups, sg)
			}
			ss.Groups = append(ss.Groups, p)
		}
		if sc.RepGroup != nil {
			if p, ok := groupPos[sc.RepGroup]; ok {
				ss.RepGroup = p
			}
		}
		return ss, nil
	}
	scenePos := map[*vidmodel.Scene]int{}
	for _, sc := range r.Scenes {
		scenePos[sc] = len(out.Scenes)
		ss, err := encodeScene(sc)
		if err != nil {
			return nil, err
		}
		out.Scenes = append(out.Scenes, ss)
	}
	for _, sc := range r.Discarded {
		ss, err := encodeScene(sc)
		if err != nil {
			return nil, err
		}
		out.Discarded = append(out.Discarded, ss)
	}
	for _, c := range r.Clusters {
		sc := SavedCluster{Index: c.Index, RepGroup: -1}
		for _, s := range c.Scenes {
			if p, ok := scenePos[s]; ok {
				sc.Scenes = append(sc.Scenes, p)
			}
		}
		if c.RepGroup != nil {
			if p, ok := groupPos[c.RepGroup]; ok {
				sc.RepGroup = p
			}
		}
		out.Clusters = append(out.Clusters, sc)
	}
	if r.Events != nil {
		out.Events = map[int]int{}
		for k, v := range r.Events {
			out.Events[k] = int(v)
		}
	}
	return out, nil
}

// DecodeResult reconstructs a mined result (with pointer identity) from its
// persistent form. The returned Result carries a media-less Video (name,
// fps, frame count only) and a rebuilt skim.
func DecodeResult(sr *SavedResult) (*core.Result, error) {
	if sr == nil {
		return nil, fmt.Errorf("store: nil saved result")
	}
	if sr.Version != FormatVersion {
		return nil, fmt.Errorf("store: format version %d unsupported (want %d)", sr.Version, FormatVersion)
	}
	res := &core.Result{
		Video: &vidmodel.Video{Name: sr.VideoName, FPS: sr.FPS},
	}
	shots := make([]*vidmodel.Shot, len(sr.Shots))
	for i, s := range sr.Shots {
		shots[i] = &vidmodel.Shot{
			Index: s.Index, Start: s.Start, End: s.End, RepFrame: s.RepFrame,
			Color: s.Color, Texture: s.Texture,
		}
	}
	res.Shots = shots
	groups := make([]*vidmodel.Group, len(sr.Groups))
	for i, sg := range sr.Groups {
		g := &vidmodel.Group{Index: sg.Index, Kind: vidmodel.GroupKind(sg.Kind)}
		for _, p := range sg.Shots {
			if p < 0 || p >= len(shots) {
				return nil, fmt.Errorf("store: group %d has bad shot ref %d", sg.Index, p)
			}
			g.Shots = append(g.Shots, shots[p])
		}
		for _, p := range sg.RepShots {
			if p < 0 || p >= len(shots) {
				return nil, fmt.Errorf("store: group %d has bad rep-shot ref %d", sg.Index, p)
			}
			g.RepShots = append(g.RepShots, shots[p])
		}
		groups[i] = g
	}
	decodeScene := func(ss SavedScene) (*vidmodel.Scene, error) {
		sc := &vidmodel.Scene{Index: ss.Index, Event: vidmodel.EventKind(ss.Event)}
		for _, p := range ss.Groups {
			if p < 0 || p >= len(groups) {
				return nil, fmt.Errorf("store: scene %d has bad group ref %d", ss.Index, p)
			}
			sc.Groups = append(sc.Groups, groups[p])
		}
		if ss.RepGroup >= 0 && ss.RepGroup < len(groups) {
			sc.RepGroup = groups[ss.RepGroup]
		}
		return sc, nil
	}
	// Only groups detected at the top level belong in Result.Groups;
	// groups appended for discarded scenes stay reachable via the scenes.
	res.Groups = groups[:min(len(groups), len(sr.Groups))]
	scenes := make([]*vidmodel.Scene, len(sr.Scenes))
	for i, ss := range sr.Scenes {
		sc, err := decodeScene(ss)
		if err != nil {
			return nil, err
		}
		scenes[i] = sc
	}
	res.Scenes = scenes
	for _, ss := range sr.Discarded {
		sc, err := decodeScene(ss)
		if err != nil {
			return nil, err
		}
		res.Discarded = append(res.Discarded, sc)
	}
	for _, c := range sr.Clusters {
		cl := &vidmodel.ClusteredScene{Index: c.Index}
		for _, p := range c.Scenes {
			if p < 0 || p >= len(scenes) {
				return nil, fmt.Errorf("store: cluster %d has bad scene ref %d", c.Index, p)
			}
			cl.Scenes = append(cl.Scenes, scenes[p])
		}
		if c.RepGroup >= 0 && c.RepGroup < len(groups) {
			cl.RepGroup = groups[c.RepGroup]
		}
		res.Clusters = append(res.Clusters, cl)
	}
	if sr.Events != nil {
		res.Events = map[int]vidmodel.EventKind{}
		for k, v := range sr.Events {
			res.Events[k] = vidmodel.EventKind(v)
		}
	}
	sk, err := skim.Build(res.Shots, res.Groups, res.Scenes, res.Clusters, sr.TotalFrames)
	if err != nil {
		return nil, fmt.Errorf("store: rebuilding skim: %w", err)
	}
	res.Skim = sk
	return res, nil
}

// SavedLibraryEntry pairs a mined video with its concept placement.
type SavedLibraryEntry struct {
	Subcluster string       `json:"subcluster"`
	Result     *SavedResult `json:"result"`
}

// SavedLibrary is the on-disk form of a whole library.
type SavedLibrary struct {
	Version int                 `json:"version"`
	Videos  []SavedLibraryEntry `json:"videos"`
}

// WriteLibrary serialises entries to w as JSON.
func WriteLibrary(w io.Writer, entries []SavedLibraryEntry) error {
	lib := SavedLibrary{Version: FormatVersion, Videos: entries}
	enc := json.NewEncoder(w)
	return enc.Encode(&lib)
}

// ReadLibrary parses a library written by WriteLibrary.
func ReadLibrary(r io.Reader) (*SavedLibrary, error) {
	var lib SavedLibrary
	dec := json.NewDecoder(r)
	if err := dec.Decode(&lib); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if lib.Version != FormatVersion {
		return nil, fmt.Errorf("store: library version %d unsupported (want %d)", lib.Version, FormatVersion)
	}
	return &lib, nil
}

// WriteFileAtomic streams write into a temp file in path's directory,
// renames it into place, and fsyncs the directory, so a crash mid-save (or
// a concurrent reader) never observes a truncated snapshot and a completed
// save survives power loss — rename alone only becomes durable once the
// directory entry is flushed. This is how the serving daemon and the WAL
// checkpoint manager persist snapshots and manifests.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Both defers are no-ops after success (the rename consumes the file,
	// the explicit Close below runs first); on every error path they drop
	// the temp file instead of littering the data directory.
	defer os.Remove(tmp.Name())
	defer tmp.Close()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making preceding renames and file creations
// in it durable. Callers that require crash consistency across a rename
// (WriteFileAtomic, WAL segment rotation) must not skip this: POSIX only
// guarantees the new directory entry reaches stable storage once the
// directory itself is synced.
func SyncDir(dir string) error {
	if runtime.GOOS == "windows" {
		// Directories cannot be fsynced through a read-only handle on
		// Windows; NTFS metadata operations are journaled anyway, so the
		// durability gap the sync closes on POSIX does not apply.
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}
