package store

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"classminer/internal/core"
	"classminer/internal/skim"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

var (
	resOnce sync.Once
	res     *core.Result
	resErr  error
)

func minedResult(t testing.TB) *core.Result {
	t.Helper()
	resOnce.Do(func() {
		rng := rand.New(rand.NewSource(61))
		script := &synth.Script{Name: "store-test", Scenes: []synth.SceneSpec{
			synth.PresentationScene(rng, 0, 1, 1),
			synth.DialogScene(rng, 1, 2, 2, 3),
			synth.OperationScene(rng, 2, 3, synth.ContentSurgical, 0),
		}}
		v, err := synth.Generate(synth.DefaultConfig(), script, 61)
		if err != nil {
			resErr = err
			return
		}
		a, err := core.NewAnalyzer(core.Options{})
		if err != nil {
			resErr = err
			return
		}
		res, resErr = a.Analyze(v)
	})
	if resErr != nil {
		t.Fatal(resErr)
	}
	return res
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := minedResult(t)
	saved, err := EncodeResult(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(saved)
	if err != nil {
		t.Fatal(err)
	}
	if back.Video.Name != orig.Video.Name || back.Video.FPS != orig.Video.FPS {
		t.Fatal("video metadata lost")
	}
	if len(back.Shots) != len(orig.Shots) {
		t.Fatalf("shots: %d vs %d", len(back.Shots), len(orig.Shots))
	}
	for i := range orig.Shots {
		o, b := orig.Shots[i], back.Shots[i]
		if o.Start != b.Start || o.End != b.End || o.RepFrame != b.RepFrame {
			t.Fatalf("shot %d geometry mismatch", i)
		}
		for j := range o.Color {
			if o.Color[j] != b.Color[j] {
				t.Fatalf("shot %d colour mismatch", i)
			}
		}
	}
	if len(back.Groups) != len(orig.Groups) || len(back.Scenes) != len(orig.Scenes) {
		t.Fatalf("structure counts differ: %d/%d groups, %d/%d scenes",
			len(back.Groups), len(orig.Groups), len(back.Scenes), len(orig.Scenes))
	}
	if len(back.Clusters) != len(orig.Clusters) {
		t.Fatalf("clusters: %d vs %d", len(back.Clusters), len(orig.Clusters))
	}
	for i, sc := range orig.Scenes {
		if back.Scenes[i].Event != sc.Event {
			t.Fatalf("scene %d event mismatch", i)
		}
		if back.Scenes[i].ShotCount() != sc.ShotCount() {
			t.Fatalf("scene %d shot count mismatch", i)
		}
	}
}

func TestDecodePreservesPointerIdentity(t *testing.T) {
	saved, err := EncodeResult(minedResult(t))
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(saved)
	if err != nil {
		t.Fatal(err)
	}
	// A scene's shots must be the same *Shot values as the top-level table.
	byIdx := map[int]*vidmodel.Shot{}
	for _, s := range back.Shots {
		byIdx[s.Index] = s
	}
	for _, sc := range back.Scenes {
		for _, s := range sc.Shots() {
			if byIdx[s.Index] != s {
				t.Fatal("pointer identity lost between scene and shot table")
			}
		}
	}
}

func TestDecodeRebuildsSkim(t *testing.T) {
	orig := minedResult(t)
	saved, err := EncodeResult(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(saved)
	if err != nil {
		t.Fatal(err)
	}
	if back.Skim == nil {
		t.Fatal("skim not rebuilt")
	}
	for l := skim.Level1; l <= skim.Level4; l++ {
		if got, want := back.Skim.FCR(l), orig.Skim.FCR(l); got != want {
			t.Fatalf("level %d FCR %v vs %v", l, got, want)
		}
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	saved, err := EncodeResult(minedResult(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	entries := []SavedLibraryEntry{{Subcluster: "medicine", Result: saved}}
	if err := WriteLibrary(&buf, entries); err != nil {
		t.Fatal(err)
	}
	lib, err := ReadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Videos) != 1 || lib.Videos[0].Subcluster != "medicine" {
		t.Fatalf("library = %+v", lib)
	}
	if _, err := DecodeResult(lib.Videos[0].Result); err != nil {
		t.Fatal(err)
	}
}

func TestVersionChecks(t *testing.T) {
	if _, err := DecodeResult(&SavedResult{Version: 99}); err == nil {
		t.Fatal("want version error")
	}
	if _, err := ReadLibrary(strings.NewReader(`{"version":99,"videos":[]}`)); err == nil {
		t.Fatal("want library version error")
	}
	if _, err := ReadLibrary(strings.NewReader("not json")); err == nil {
		t.Fatal("want parse error")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := EncodeResult(nil); err == nil {
		t.Fatal("want nil error")
	}
}

func TestDecodeBadReferences(t *testing.T) {
	saved, err := EncodeResult(minedResult(t))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a group's shot reference.
	corrupt := *saved
	corrupt.Groups = append([]SavedGroup(nil), saved.Groups...)
	corrupt.Groups[0].Shots = []int{99999}
	if _, err := DecodeResult(&corrupt); err == nil {
		t.Fatal("want bad-reference error")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := t.TempDir() + "/lib.json"
	saved, err := EncodeResult(minedResult(t))
	if err != nil {
		t.Fatal(err)
	}
	entries := []SavedLibraryEntry{{Subcluster: "medicine", Result: saved}}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		return WriteLibrary(w, entries)
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lib, err := ReadLibrary(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Videos) != 1 {
		t.Fatalf("videos = %d", len(lib.Videos))
	}
	// A failed write must leave no temp litter and not clobber the target.
	writeErr := fmt.Errorf("disk on fire")
	if err := WriteFileAtomic(path, func(io.Writer) error { return writeErr }); err != writeErr {
		t.Fatalf("err = %v, want the write error", err)
	}
	dir, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 1 {
		t.Fatalf("temp file left behind: %v", dir)
	}
	if f, err := os.Open(path); err != nil {
		t.Fatal("target clobbered:", err)
	} else {
		f.Close()
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("want error for a missing directory")
	}
}
