package admit

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Level is the memory watchdog's degradation stage. Each level strictly
// contains the previous one's measures: under growing pressure the server
// first gives back discretionary memory (caches), then stops creating more
// (background refits), and only as a last resort refuses new data — reads
// keep answering at every level, because a degraded archive that still
// serves queries beats a crashed one that serves nothing.
type Level int32

const (
	// LevelNormal: full service.
	LevelNormal Level = iota
	// LevelShedCache: discretionary memory (the search cache) is shrunk.
	LevelShedCache
	// LevelPauseRebuild: background index refits are paused (the
	// incremental overlay keeps serving mutations).
	LevelPauseRebuild
	// LevelRejectIngest: writes are refused with 503; reads stay live.
	LevelRejectIngest
)

func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelShedCache:
		return "shed-cache"
	case LevelPauseRebuild:
		return "pause-rebuild"
	case LevelRejectIngest:
		return "reject-ingest"
	default:
		return "unknown"
	}
}

// enterFrac[i] is the fraction of the budget at which the watchdog steps up
// to level i+1; a level is left again only below enterFrac[i]-hysteresis,
// so heap noise around a threshold cannot flap the service state.
var enterFrac = [3]float64{0.80, 0.90, 0.95}

const hysteresis = 0.05

// WatchdogConfig configures a Watchdog.
type WatchdogConfig struct {
	// Budget is the heap budget in bytes; <= 0 disables the watchdog
	// (NewWatchdog returns nil, and a nil Watchdog reports LevelNormal).
	Budget int64
	// Sample returns the current heap usage in bytes. Nil means the Go
	// runtime's live-heap figure; tests inject a hook here so degradation
	// can be driven without real allocation pressure.
	Sample func() uint64
	// Interval is the sampling period (default 1s).
	Interval time.Duration
	// OnChange is called, outside the evaluation lock but never
	// concurrently with itself, whenever the level transitions.
	OnChange func(from, to Level)
}

// Watchdog samples heap usage against a budget and maintains the current
// degradation Level. Level reads are one atomic load, cheap enough for
// every ingest request to consult.
type Watchdog struct {
	cfg   WatchdogConfig
	level atomic.Int32

	evalMu sync.Mutex // serializes evaluate (ticker loop vs test Poke)
	done   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
}

// NewWatchdog starts a watchdog goroutine, or returns nil when the budget
// is unset. Close the returned watchdog to stop it.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Budget <= 0 {
		return nil
	}
	if cfg.Sample == nil {
		cfg.Sample = liveHeap
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	w := &Watchdog{cfg: cfg, done: make(chan struct{})}
	w.wg.Add(1)
	go w.loop()
	return w
}

// liveHeap is the default sampler: bytes of live heap objects. HeapAlloc
// (not Sys) is the figure the budget should bound — it is what grows with
// library size and query load, and what the GC can actually be asked to
// keep down.
func liveHeap() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// Level returns the current degradation level. Nil-safe: a disabled
// watchdog is permanently LevelNormal.
func (w *Watchdog) Level() Level {
	if w == nil {
		return LevelNormal
	}
	return Level(w.level.Load())
}

// Poke samples and evaluates once, synchronously — the deterministic test
// entry point (the background loop does exactly this on a ticker).
func (w *Watchdog) Poke() Level {
	if w == nil {
		return LevelNormal
	}
	return w.evaluate(w.cfg.Sample())
}

// Close stops the sampling loop. Nil-safe and idempotent.
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	w.once.Do(func() { close(w.done) })
	w.wg.Wait()
}

func (w *Watchdog) loop() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			w.evaluate(w.cfg.Sample())
		}
	}
}

// evaluate applies one sample: step the level up past every entry threshold
// the usage exceeds, or down past every one it has cleared (with
// hysteresis), firing OnChange on a transition.
func (w *Watchdog) evaluate(heap uint64) Level {
	w.evalMu.Lock()
	defer w.evalMu.Unlock()
	frac := float64(heap) / float64(w.cfg.Budget)
	cur := Level(w.level.Load())
	next := cur
	for next < LevelRejectIngest && frac >= enterFrac[next] {
		next++
	}
	for next > LevelNormal && frac < enterFrac[next-1]-hysteresis {
		next--
	}
	if next != cur {
		w.level.Store(int32(next))
		if w.cfg.OnChange != nil {
			w.cfg.OnChange(cur, next)
		}
	}
	return next
}

// Budget returns the configured heap budget (0 when disabled).
func (w *Watchdog) Budget() int64 {
	if w == nil {
		return 0
	}
	return w.cfg.Budget
}
