// Package admit is the server's self-protection layer: the mechanisms that
// keep a shared archive answering when demand exceeds what the hardware (or
// one tenant's fair share) can absorb. The serving layer's observability
// provides the feedback signals — queue depth, heap gauges, staleness — and
// this package provides the controls that consume them:
//
//   - RateLimiter: per-token token buckets, so one client cannot starve the
//     rest. Cheap enough for the zero-alloc search hot path.
//   - Gate: per-route-class concurrency caps with a bounded wait queue, so
//     overload sheds requests instead of piling up goroutines.
//   - Watchdog: a heap-budget monitor that degrades service in stages
//     (shed caches, pause background work, reject writes) and recovers
//     automatically when pressure clears.
//
// The package is policy-free plumbing: it decides allow/deny/degrade and
// reports why; mapping decisions to HTTP status codes, headers and metrics
// is the caller's job.
package admit

import "time"

// Class partitions routes by the resources they contend for, so one
// saturated class (a burst of expensive searches) cannot lock out another
// (an administrator trying to checkpoint).
type Class int

const (
	// ClassSearch covers reads: search, browsing, events, jobs, stats.
	ClassSearch Class = iota
	// ClassMutate covers writes: ingest and delete.
	ClassMutate
	// ClassAdmin covers operator endpoints: save, checkpoint, compact, pprof.
	ClassAdmin
	// NumClasses sizes per-class tables.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassSearch:
		return "search"
	case ClassMutate:
		return "mutate"
	case ClassAdmin:
		return "admin"
	default:
		return "unknown"
	}
}

// Limit is one token bucket's shape: a sustained refill rate (requests per
// second) and a burst depth (the bucket's capacity). The zero Limit means
// "unlimited" to callers that treat Rate <= 0 as disabled.
type Limit struct {
	Rate  float64
	Burst float64
}

// Scale returns the limit multiplied by f (used to widen a base limit per
// clearance tier).
func (l Limit) Scale(f float64) Limit {
	return Limit{Rate: l.Rate * f, Burst: l.Burst * f}
}

// Decision is one rate-limit verdict plus everything an HTTP layer needs to
// render it: the X-RateLimit-* trio and, on denial, how long the client
// should wait before the bucket has a whole token again.
type Decision struct {
	OK bool
	// RetryAfter is how long until one full token is available (denials
	// only); callers round it up to whole seconds for the Retry-After header.
	RetryAfter time.Duration
	// Limit is the bucket capacity (X-RateLimit-Limit).
	Limit int
	// Remaining is the whole tokens left after this request
	// (X-RateLimit-Remaining).
	Remaining int
	// Reset is how long until the bucket refills completely
	// (X-RateLimit-Reset, as delta-seconds).
	Reset time.Duration
}
