package admit

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestRateLimiterBurstThenRefill(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter()
	l.SetClock(clock.Now)
	lim := Limit{Rate: 2, Burst: 4}

	for i := 0; i < 4; i++ {
		d := l.Allow("tok", lim)
		if !d.OK {
			t.Fatalf("request %d denied inside burst", i)
		}
		if d.Limit != 4 {
			t.Fatalf("Limit = %d, want 4", d.Limit)
		}
		if want := 3 - i; d.Remaining != want {
			t.Fatalf("request %d Remaining = %d, want %d", i, d.Remaining, want)
		}
	}
	d := l.Allow("tok", lim)
	if d.OK {
		t.Fatal("request past burst allowed")
	}
	// Empty bucket at 2 tokens/sec: one whole token in 500ms.
	if want := 500 * time.Millisecond; d.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want %v", d.RetryAfter, want)
	}
	// Full refill of 4 tokens takes 2s.
	if want := 2 * time.Second; d.Reset != want {
		t.Fatalf("Reset = %v, want %v", d.Reset, want)
	}

	clock.Advance(500 * time.Millisecond)
	if d := l.Allow("tok", lim); !d.OK {
		t.Fatal("request after refill denied")
	}
	if d := l.Allow("tok", lim); d.OK {
		t.Fatal("second request after half-second refill allowed")
	}
}

func TestRateLimiterKeysAreIndependent(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter()
	l.SetClock(clock.Now)
	lim := Limit{Rate: 1, Burst: 1}
	if d := l.Allow("a", lim); !d.OK {
		t.Fatal("first a denied")
	}
	if d := l.Allow("a", lim); d.OK {
		t.Fatal("second a allowed")
	}
	if d := l.Allow("b", lim); !d.OK {
		t.Fatal("b should have its own bucket")
	}
}

func TestRateLimiterShrunkOverrideClamps(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter()
	l.SetClock(clock.Now)
	if d := l.Allow("tok", Limit{Rate: 1, Burst: 100}); !d.OK {
		t.Fatal("denied under wide limit")
	}
	// The narrow limit applies immediately: the ~99 banked tokens clamp to
	// the new burst of 1, so exactly one more request passes.
	if d := l.Allow("tok", Limit{Rate: 1, Burst: 1}); !d.OK {
		t.Fatal("clamped bucket should still hold one token")
	}
	if d := l.Allow("tok", Limit{Rate: 1, Burst: 1}); d.OK {
		t.Fatal("banked tokens survived a shrunk override")
	}
}

// TestRateLimiterConcurrentBurstExact asserts the shedding contract under
// contention: with a burst of B and negligible refill, exactly B of N
// concurrent requests pass, and every denial carries a positive RetryAfter.
func TestRateLimiterConcurrentBurstExact(t *testing.T) {
	l := NewRateLimiter() // real clock; rate so low refill is negligible
	lim := Limit{Rate: 0.001, Burst: 5}
	const n = 64
	var allowed, denied atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			d := l.Allow("shared", lim)
			if d.OK {
				allowed.Add(1)
			} else {
				denied.Add(1)
				if d.RetryAfter <= 0 {
					t.Error("denial without RetryAfter")
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	if allowed.Load() != 5 || denied.Load() != n-5 {
		t.Fatalf("allowed/denied = %d/%d, want 5/%d", allowed.Load(), denied.Load(), n-5)
	}
}

func TestRateLimiterZeroRateIsUnlimited(t *testing.T) {
	l := NewRateLimiter()
	for i := 0; i < 100; i++ {
		if d := l.Allow("tok", Limit{}); !d.OK {
			t.Fatal("zero limit denied a request")
		}
	}
	if n := l.Buckets(); n != 0 {
		t.Fatalf("unlimited traffic created %d buckets", n)
	}
}

func TestGateFastPathAndRelease(t *testing.T) {
	g := NewGate(2, 2, time.Second)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if waited, err := g.Acquire(ctx); err != nil || waited != 0 {
			t.Fatalf("acquire %d: waited=%v err=%v", i, waited, err)
		}
	}
	if g.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", g.InFlight())
	}
	g.Release()
	if _, err := g.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// TestGateWaitersShedOnDeadline fills the gate, parks waiters up to the
// wait-queue cap (they shed with ErrWaitTimeout when no slot frees), and
// sheds everyone past the cap immediately with ErrSaturated.
func TestGateWaitersShedOnDeadline(t *testing.T) {
	g := NewGate(1, 2, 30*time.Millisecond)
	if _, err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const n = 10
	var timedOut, saturated atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch _, err := g.Acquire(context.Background()); err {
			case ErrWaitTimeout:
				timedOut.Add(1)
			case ErrSaturated:
				saturated.Add(1)
			case nil:
				t.Error("acquired a slot that was never released")
			default:
				t.Errorf("unexpected error %v", err)
			}
		}()
	}
	wg.Wait()
	if timedOut.Load() > 2 {
		t.Fatalf("%d waiters parked, wait queue cap is 2", timedOut.Load())
	}
	if timedOut.Load()+saturated.Load() != n {
		t.Fatalf("timedOut+saturated = %d, want %d", timedOut.Load()+saturated.Load(), n)
	}
	if saturated.Load() < n-2 {
		t.Fatalf("only %d shed immediately, want >= %d", saturated.Load(), n-2)
	}
	if got := g.Shed(); got != uint64(n) {
		t.Fatalf("Shed = %d, want %d", got, n)
	}
	g.Release()
	if _, err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("gate unusable after shedding: %v", err)
	}
}

func TestGateWaiterGetsFreedSlot(t *testing.T) {
	g := NewGate(1, 1, time.Second)
	if _, err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		waited, err := g.Acquire(context.Background())
		if err == nil && waited <= 0 {
			t.Error("parked waiter reported zero wait")
		}
		got <- err
	}()
	// Wait for the goroutine to park, then free the slot.
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	g.Release()
	if err := <-got; err != nil {
		t.Fatalf("parked waiter should get the freed slot: %v", err)
	}
}

func TestGateAbandonedContext(t *testing.T) {
	g := NewGate(1, 1, time.Minute)
	if _, err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		got <- err
	}()
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWatchdogDegradeAndRecover drives the full ladder with an injected
// sampler: up through every stage as pressure mounts, down again (with
// hysteresis) as it clears.
func TestWatchdogDegradeAndRecover(t *testing.T) {
	var heap atomic.Uint64
	type change struct{ from, to Level }
	var mu sync.Mutex
	var changes []change
	w := NewWatchdog(WatchdogConfig{
		Budget:   1000,
		Sample:   heap.Load,
		Interval: time.Hour, // transitions driven by Poke only
		OnChange: func(from, to Level) {
			mu.Lock()
			changes = append(changes, change{from, to})
			mu.Unlock()
		},
	})
	defer w.Close()

	steps := []struct {
		heap uint64
		want Level
	}{
		{500, LevelNormal},
		{810, LevelShedCache},
		{850, LevelShedCache},
		{910, LevelPauseRebuild},
		{990, LevelRejectIngest},
		{920, LevelRejectIngest}, // above 0.95-hysteresis: no flap
		{880, LevelPauseRebuild},
		{600, LevelNormal}, // clears every exit threshold: straight down
		{990, LevelRejectIngest},
		{100, LevelNormal},
	}
	for i, s := range steps {
		heap.Store(s.heap)
		if got := w.Poke(); got != s.want {
			t.Fatalf("step %d (heap=%d): level = %v, want %v", i, s.heap, got, s.want)
		}
		if got := w.Level(); got != s.want {
			t.Fatalf("step %d: Level() = %v, want %v", i, got, s.want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, c := range changes {
		if c.from == c.to {
			t.Fatalf("change %d is a no-op transition %v -> %v", i, c.from, c.to)
		}
	}
	if len(changes) == 0 {
		t.Fatal("no OnChange callbacks fired")
	}
}

func TestWatchdogDisabled(t *testing.T) {
	if w := NewWatchdog(WatchdogConfig{Budget: 0}); w != nil {
		t.Fatal("zero budget should disable the watchdog")
	}
	var w *Watchdog
	if w.Level() != LevelNormal {
		t.Fatal("nil watchdog must report LevelNormal")
	}
	w.Close() // must not panic
	if w.Poke() != LevelNormal {
		t.Fatal("nil Poke must report LevelNormal")
	}
}

func TestWatchdogBackgroundLoop(t *testing.T) {
	var heap atomic.Uint64
	heap.Store(990)
	w := NewWatchdog(WatchdogConfig{
		Budget:   1000,
		Sample:   heap.Load,
		Interval: time.Millisecond,
	})
	defer w.Close()
	deadline := time.Now().Add(2 * time.Second)
	for w.Level() != LevelRejectIngest {
		if time.Now().After(deadline) {
			t.Fatal("background loop never reached reject-ingest")
		}
		time.Sleep(time.Millisecond)
	}
	heap.Store(10)
	for w.Level() != LevelNormal {
		if time.Now().After(deadline) {
			t.Fatal("background loop never recovered")
		}
		time.Sleep(time.Millisecond)
	}
}
