package admit

import (
	"sync"
	"time"
)

// bucket is one key's token-bucket state. Tokens refill lazily: each Allow
// computes the elapsed time since the last touch instead of running a
// refill goroutine per bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// RateLimiter hands out token-bucket verdicts per key. Keys are expected to
// be authentication tokens, which auth has already vetted against a bounded
// table — cardinality is bounded by configuration, not by the traffic. A
// lazy sweep drops long-idle buckets anyway, so even a rotating token table
// cannot grow the map without bound.
//
// The hot path is one mutex acquisition, one map lookup and a few float
// operations — no allocation once a key's bucket exists, which is what the
// search path's zero-alloc contract requires.
type RateLimiter struct {
	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

// sweepThreshold is the bucket count above which Allow opportunistically
// drops idle buckets; sweepIdle is how long a bucket must be untouched to
// be dropped. A full bucket holds no state worth keeping.
const (
	sweepThreshold = 1024
	sweepIdle      = 10 * time.Minute
)

// NewRateLimiter returns an empty limiter using the real clock.
func NewRateLimiter() *RateLimiter {
	return &RateLimiter{now: time.Now, buckets: make(map[string]*bucket)}
}

// SetClock replaces the limiter's clock (tests only; not safe to call
// concurrently with Allow).
func (l *RateLimiter) SetClock(now func() time.Time) { l.now = now }

// Allow spends one token from key's bucket under lim, reporting the verdict
// and the header-ready accounting. The limit is passed per call rather than
// stored per bucket so an operator-changed override takes effect on the
// next request, not after some expiry.
func (l *RateLimiter) Allow(key string, lim Limit) Decision {
	if lim.Rate <= 0 {
		return Decision{OK: true}
	}
	if lim.Burst < 1 {
		lim.Burst = 1
	}
	now := l.now()
	l.mu.Lock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= sweepThreshold {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: lim.Burst, last: now}
		l.buckets[key] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * lim.Rate
			b.last = now
		}
	}
	// A shrunk override must clamp immediately, not after the surplus drains.
	if b.tokens > lim.Burst {
		b.tokens = lim.Burst
	}
	d := Decision{Limit: int(lim.Burst)}
	if b.tokens >= 1 {
		b.tokens--
		d.OK = true
		d.Remaining = int(b.tokens)
		d.Reset = refillTime(lim.Burst-b.tokens, lim.Rate)
	} else {
		d.RetryAfter = refillTime(1-b.tokens, lim.Rate)
		d.Reset = refillTime(lim.Burst-b.tokens, lim.Rate)
	}
	l.mu.Unlock()
	return d
}

// Buckets reports how many keys currently hold state (a stats gauge).
func (l *RateLimiter) Buckets() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// sweepLocked drops buckets idle past sweepIdle. Called with l.mu held.
func (l *RateLimiter) sweepLocked(now time.Time) {
	for k, b := range l.buckets {
		if now.Sub(b.last) > sweepIdle {
			delete(l.buckets, k)
		}
	}
}

// refillTime is how long a bucket refilling at rate needs to gain deficit
// tokens.
func refillTime(deficit, rate float64) time.Duration {
	if deficit <= 0 || rate <= 0 {
		return 0
	}
	return time.Duration(deficit / rate * float64(time.Second))
}
