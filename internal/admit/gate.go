package admit

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Gate caps how many requests of one class run at once. Requests past the
// cap park in a bounded wait queue: a waiter that gets a slot within
// MaxWait proceeds, one that doesn't is shed — and once the queue itself is
// full, arrivals are shed immediately. Either way the goroutine count stays
// bounded at capacity + waitCap per class, which is the entire point: under
// overload the server answers "come back later" in microseconds instead of
// accumulating parked handlers until the scheduler (or the heap) gives out.
type Gate struct {
	slots   chan struct{}
	maxWait time.Duration
	waitCap int64
	waiting atomic.Int64
	shed    atomic.Uint64
}

// ErrSaturated is returned when the wait queue is already full: the request
// is shed without parking at all.
var ErrSaturated = errors.New("admit: saturated (wait queue full)")

// ErrWaitTimeout is returned when a parked request's wait deadline passed
// before a slot freed up.
var ErrWaitTimeout = errors.New("admit: timed out waiting for a slot")

// NewGate builds a gate admitting capacity concurrent holders with up to
// waitCap parked waiters, each willing to wait at most maxWait.
func NewGate(capacity, waitCap int, maxWait time.Duration) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	if waitCap < 0 {
		waitCap = 0
	}
	return &Gate{
		slots:   make(chan struct{}, capacity),
		maxWait: maxWait,
		waitCap: int64(waitCap),
	}
}

// Acquire takes a slot, reporting how long it waited. The fast path (a free
// slot) is one non-blocking channel send — no allocation, no clock read.
// The slow path parks up to maxWait, or until ctx is done (a client that
// hung up should not keep a place in line).
func (g *Gate) Acquire(ctx context.Context) (waited time.Duration, err error) {
	select {
	case g.slots <- struct{}{}:
		return 0, nil
	default:
	}
	if g.waiting.Add(1) > g.waitCap {
		g.waiting.Add(-1)
		g.shed.Add(1)
		return 0, ErrSaturated
	}
	defer g.waiting.Add(-1)
	start := time.Now()
	t := time.NewTimer(g.maxWait)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		return time.Since(start), nil
	case <-t.C:
		g.shed.Add(1)
		return time.Since(start), ErrWaitTimeout
	case <-ctx.Done():
		g.shed.Add(1)
		return time.Since(start), ctx.Err()
	}
}

// Release returns a slot taken by Acquire.
func (g *Gate) Release() { <-g.slots }

// InFlight is the number of currently held slots.
func (g *Gate) InFlight() int { return len(g.slots) }

// Capacity is the concurrent-holder cap.
func (g *Gate) Capacity() int { return cap(g.slots) }

// Waiting is the number of currently parked waiters.
func (g *Gate) Waiting() int { return int(g.waiting.Load()) }

// Shed counts requests this gate turned away (queue full or wait timeout;
// context cancellations while parked count too — the slot was never granted).
func (g *Gate) Shed() uint64 { return g.shed.Load() }
