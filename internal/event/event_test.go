package event

import (
	"math/rand"
	"sync"
	"testing"

	"classminer/internal/audio"
	"classminer/internal/shotdet"
	"classminer/internal/structure"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

var (
	clfOnce sync.Once
	clf     *audio.SpeechClassifier
	clfErr  error
)

func miner(t testing.TB) *Miner {
	t.Helper()
	clfOnce.Do(func() {
		speech, non := synth.TrainingClips(8000, audio.ClipSeconds, 30, 202)
		clf, clfErr = audio.TrainSpeechClassifier(speech, non, 8000, 11)
	})
	if clfErr != nil {
		t.Fatal(clfErr)
	}
	m, err := NewMiner(clf, Config{SampleRate: 8000})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// benchmarkScenes builds ground-truth-aligned scenes (the §6.1 evaluation
// protocol: manually selected scenes that distinctly belong to one
// category), with shots and groups coming from the real detectors.
func benchmarkScenes(t testing.TB, script *synth.Script, seed int64) (*vidmodel.Video, []*vidmodel.Scene, []*vidmodel.Shot) {
	t.Helper()
	v, err := synth.Generate(synth.DefaultConfig(), script, seed)
	if err != nil {
		t.Fatal(err)
	}
	shots, _, err := shotdet.Detect(v, shotdet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var scenes []*vidmodel.Scene
	for i, ts := range v.Truth.Scenes {
		var members []*vidmodel.Shot
		for _, s := range shots {
			mid := (s.Start + s.End) / 2
			if mid >= ts.StartFrame && mid < ts.EndFrame {
				members = append(members, s)
			}
		}
		if len(members) == 0 {
			continue
		}
		gres, err := structure.DetectGroups(members, structure.GroupConfig{})
		if err != nil {
			t.Fatal(err)
		}
		scenes = append(scenes, &vidmodel.Scene{Index: i, Groups: gres.Groups})
	}
	return v, scenes, shots
}

func mineKind(t testing.TB, spec synth.SceneSpec, seed int64) vidmodel.EventKind {
	t.Helper()
	script := &synth.Script{Name: "one", Scenes: []synth.SceneSpec{spec}}
	v, scenes, shots := benchmarkScenes(t, script, seed)
	if len(scenes) != 1 {
		t.Fatalf("expected 1 scene, got %d", len(scenes))
	}
	m := miner(t)
	ev := m.GatherEvidence(v, shots)
	return m.MineScene(scenes[0], ev)
}

func TestMinePresentationScene(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	got := mineKind(t, synth.PresentationScene(rng, 0, 1, 2), 31)
	if got != vidmodel.EventPresentation {
		t.Fatalf("presentation mined as %v", got)
	}
}

func TestMineDialogScene(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	got := mineKind(t, synth.DialogScene(rng, 1, 1, 1, 4), 32)
	if got != vidmodel.EventDialog {
		t.Fatalf("dialog mined as %v", got)
	}
}

func TestMineClinicalScene(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	got := mineKind(t, synth.OperationScene(rng, 2, 1, synth.ContentSurgical, 0), 33)
	if got != vidmodel.EventClinicalOperation {
		t.Fatalf("clinical operation mined as %v", got)
	}
}

func TestMineEstablishingIsUnknown(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	got := mineKind(t, synth.EstablishingScene(rng, 0, 1), 34)
	if got != vidmodel.EventUnknown {
		t.Fatalf("establishing mined as %v, want unknown", got)
	}
}

func TestMineAllLabelsScenes(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	script := &synth.Script{Name: "mix", Scenes: []synth.SceneSpec{
		synth.PresentationScene(rng, 0, 1, 1),
		synth.OperationScene(rng, 2, 2, synth.ContentSkinExam, 0),
		synth.DialogScene(rng, 3, 3, 2, 5),
	}}
	v, scenes, shots := benchmarkScenes(t, script, 35)
	m := miner(t)
	out := m.MineAll(v, scenes, shots)
	if len(out) != len(scenes) {
		t.Fatalf("labels = %d, want %d", len(out), len(scenes))
	}
	correct := 0
	for _, sc := range scenes {
		if sc.Event == v.Truth.Scenes[sc.Index].Event {
			correct++
		}
	}
	if correct < 2 {
		t.Fatalf("only %d/%d scenes mined correctly", correct, len(scenes))
	}
}

func TestMinerAccuracyOverCategories(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-scale mining in -short mode")
	}
	m := miner(t)
	kinds := map[vidmodel.EventKind]*struct{ total, right int }{
		vidmodel.EventPresentation:      {},
		vidmodel.EventDialog:            {},
		vidmodel.EventClinicalOperation: {},
	}
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(40 + trial)))
		script := &synth.Script{Name: "acc", Scenes: []synth.SceneSpec{
			synth.PresentationScene(rng, trial%5, 1, 1+trial%6),
			synth.DialogScene(rng, (trial+1)%5, 2, 1+trial%6, 1+(trial+2)%6),
			synth.OperationScene(rng, (trial+2)%5, 3, synth.ContentSurgical, 0),
		}}
		v, scenes, shots := benchmarkScenes(t, script, int64(40+trial))
		ev := m.GatherEvidence(v, shots)
		for _, sc := range scenes {
			truth := v.Truth.Scenes[sc.Index].Event
			stat, tracked := kinds[truth]
			if !tracked {
				continue
			}
			stat.total++
			if m.MineScene(sc, ev) == truth {
				stat.right++
			}
		}
	}
	for kind, stat := range kinds {
		if stat.total == 0 {
			t.Fatalf("no %v scenes generated", kind)
		}
		acc := float64(stat.right) / float64(stat.total)
		if acc < 0.5 {
			t.Fatalf("%v accuracy = %.2f (%d/%d), want >= 0.5", kind, acc, stat.right, stat.total)
		}
	}
}

func TestNewMinerValidation(t *testing.T) {
	if _, err := NewMiner(nil, Config{SampleRate: 8000}); err == nil {
		t.Fatal("want error on nil classifier")
	}
	m := miner(t)
	_ = m
	if _, err := NewMiner(clf, Config{}); err == nil {
		t.Fatal("want error on zero sample rate")
	}
}

func TestMineSceneEmpty(t *testing.T) {
	m := miner(t)
	if got := m.MineScene(&vidmodel.Scene{}, nil); got != vidmodel.EventUnknown {
		t.Fatalf("empty scene = %v, want unknown", got)
	}
}
