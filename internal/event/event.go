// Package event implements the §4.3 event mining strategy: each detected
// scene is tested, in order, against the Presentation, Dialog and Clinical
// Operation definitions by integrating the visual cues of §4.1 (slides,
// faces, skin, blood) with the audio cues of §4.2 (representative clips,
// BIC speaker changes). A scene failing all three tests is explicitly
// Unknown (step 5).
package event

import (
	"fmt"

	"classminer/internal/audio"
	"classminer/internal/vidmodel"
	"classminer/internal/visual"
)

// ShotEvidence aggregates everything the §4.3 rules consult for one shot.
type ShotEvidence struct {
	Shot *vidmodel.Shot
	Cues visual.Cues
	// MFCC is the representative clip's feature sequence; nil when the
	// shot was discarded from audio analysis (shorter than 2 s) or no
	// clip could be selected.
	MFCC [][]float64
	// Speechlike is true when the representative clip classified as clean
	// speech.
	Speechlike bool
}

// Config tunes the miner.
type Config struct {
	// Lambda is the BIC penalty factor (0 = audio.DefaultPenalty).
	Lambda float64
	// SampleRate of the video's audio track.
	SampleRate int
}

// Miner mines events from scenes. Construct with NewMiner.
type Miner struct {
	clf *audio.SpeechClassifier
	cfg Config
}

// NewMiner builds a miner around a trained speech/non-speech classifier.
func NewMiner(clf *audio.SpeechClassifier, cfg Config) (*Miner, error) {
	if clf == nil {
		return nil, fmt.Errorf("event: nil speech classifier")
	}
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("event: sample rate must be positive, got %d", cfg.SampleRate)
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = audio.DefaultPenalty
	}
	return &Miner{clf: clf, cfg: cfg}, nil
}

// GatherEvidence runs the §4.1 visual processing on every shot's
// representative frame and the §4.2 audio processing on every shot's audio
// span, returning evidence indexed by shot index.
func (m *Miner) GatherEvidence(v *vidmodel.Video, shots []*vidmodel.Shot) map[int]*ShotEvidence {
	out := make(map[int]*ShotEvidence, len(shots))
	for _, s := range shots {
		ev := &ShotEvidence{Shot: s, Cues: visual.Analyze(v.Frames[s.RepFrame])}
		if v.Audio != nil {
			samples := v.Audio.Slice(s.Start, s.End, v.FPS)
			if clip, score, ok := m.clf.RepresentativeClip(samples, v.Audio.SampleRate); ok {
				ev.MFCC = audio.MFCCs(clip, v.Audio.SampleRate)
				ev.Speechlike = score > 0
			}
		}
		out[s.Index] = ev
	}
	return out
}

// speakerChanged tests for a speaker change between two shots' evidence.
// Missing clips (discarded shots) and non-speech clips yield "no change":
// a change of speaker requires two speakers to be heard.
func (m *Miner) speakerChanged(a, b *ShotEvidence) bool {
	if a == nil || b == nil || a.MFCC == nil || b.MFCC == nil {
		return false
	}
	if !a.Speechlike || !b.Speechlike {
		return false
	}
	res, err := audio.SpeakerChangeMFCC(a.MFCC, b.MFCC, m.cfg.Lambda)
	if err != nil {
		return false
	}
	return res.Changed
}

// sameSpeaker is the dual test used for the dialog "duplicated speaker"
// requirement.
func (m *Miner) sameSpeaker(a, b *ShotEvidence) bool {
	if a == nil || b == nil || a.MFCC == nil || b.MFCC == nil || !a.Speechlike || !b.Speechlike {
		return false
	}
	res, err := audio.SpeakerChangeMFCC(a.MFCC, b.MFCC, m.cfg.Lambda)
	if err != nil {
		return false
	}
	return !res.Changed
}

// MineScene classifies one scene following the §4.3 decision procedure and
// returns the category (EventUnknown for step 5).
func (m *Miner) MineScene(scene *vidmodel.Scene, evidence map[int]*ShotEvidence) vidmodel.EventKind {
	shots := scene.Shots()
	if len(shots) == 0 {
		return vidmodel.EventUnknown
	}
	evs := make([]*ShotEvidence, len(shots))
	for i, s := range shots {
		evs[i] = evidence[s.Index]
	}

	if m.isPresentation(scene, evs) {
		return vidmodel.EventPresentation
	}
	if m.isDialog(scene, evs) {
		return vidmodel.EventDialog
	}
	if m.isClinical(evs) {
		return vidmodel.EventClinicalOperation
	}
	return vidmodel.EventUnknown
}

// MineAll labels every scene in place and returns the per-scene outcome.
func (m *Miner) MineAll(v *vidmodel.Video, scenes []*vidmodel.Scene, shots []*vidmodel.Shot) map[int]vidmodel.EventKind {
	evidence := m.GatherEvidence(v, shots)
	out := make(map[int]vidmodel.EventKind, len(scenes))
	for _, sc := range scenes {
		kind := m.MineScene(sc, evidence)
		sc.Event = kind
		out[sc.Index] = kind
	}
	return out
}

// isPresentation is §4.3 step 2: slides or clipart present, a face
// close-up present, at least one temporally related group, and no speaker
// change between any adjacent shots.
func (m *Miner) isPresentation(scene *vidmodel.Scene, evs []*ShotEvidence) bool {
	hasSlide, hasCloseUp := false, false
	for _, ev := range evs {
		if ev == nil {
			continue
		}
		if ev.Cues.Kind.IsManMade() {
			hasSlide = true
		}
		if ev.Cues.FaceCloseUp {
			hasCloseUp = true
		}
	}
	if !hasSlide || !hasCloseUp {
		return false
	}
	if allGroupsSpatial(scene) {
		return false
	}
	for i := 0; i+1 < len(evs); i++ {
		if m.speakerChanged(evs[i], evs[i+1]) {
			return false
		}
	}
	return true
}

// isDialog is §4.3 step 3: adjacent face shots exist, at least one
// temporally related group, a speaker change occurs between some adjacent
// face pair, and at least one speaker is heard in two or more shots.
func (m *Miner) isDialog(scene *vidmodel.Scene, evs []*ShotEvidence) bool {
	var facePairs [][2]int
	for i := 0; i+1 < len(evs); i++ {
		if evs[i] != nil && evs[i+1] != nil && evs[i].Cues.HasFace && evs[i+1].Cues.HasFace {
			facePairs = append(facePairs, [2]int{i, i + 1})
		}
	}
	if len(facePairs) == 0 {
		return false
	}
	if allGroupsSpatial(scene) {
		return false
	}
	var changed []int // shots participating in a changed face pair
	for _, p := range facePairs {
		if m.speakerChanged(evs[p[0]], evs[p[1]]) {
			changed = append(changed, p[0], p[1])
		}
	}
	if len(changed) == 0 {
		return false
	}
	// Duplicated speaker: two non-adjacent participating shots whose clips
	// the BIC test attributes to one speaker.
	for i := 0; i < len(changed); i++ {
		for j := i + 1; j < len(changed); j++ {
			a, b := changed[i], changed[j]
			if a == b || abs(a-b) == 1 {
				continue
			}
			if m.sameSpeaker(evs[a], evs[b]) {
				return true
			}
		}
	}
	return false
}

// isClinical is §4.3 step 4: no speaker change anywhere, and either a skin
// close-up or blood-red region in some shot, or skin regions in more than
// half of the representative frames.
func (m *Miner) isClinical(evs []*ShotEvidence) bool {
	for i := 0; i+1 < len(evs); i++ {
		if m.speakerChanged(evs[i], evs[i+1]) {
			return false
		}
	}
	skinShots := 0
	for _, ev := range evs {
		if ev == nil {
			continue
		}
		if ev.Cues.SkinCloseUp || ev.Cues.HasBlood {
			return true
		}
		if ev.Cues.HasSkin {
			skinShots++
		}
	}
	return skinShots*2 > len(evs)
}

func allGroupsSpatial(scene *vidmodel.Scene) bool {
	for _, g := range scene.Groups {
		if g.Kind == vidmodel.GroupTemporal {
			return false
		}
	}
	return true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
