// Package repl replicates a durable library from one leader to N read
// replicas by shipping the leader's write-ahead log. The leader side (Hub)
// exports each shard's WAL over two long-poll HTTP endpoints; the follower
// side (Follower) pulls framed batches, applies the typed records through
// the same incremental mutation paths the leader used, and journals them
// into its own WAL — so a follower is itself durable, crash-recoverable,
// and promotable to a write-accepting leader the moment the old one dies.
//
// The protocol is deliberately dumb: a follower's whole state is one durable
// cursor per shard — (segment, offset, epoch) in the leader's log — persisted
// only after a batch is fully applied. Pulling from cursor C doubles as the
// durability acknowledgement for everything before C, which is what lets the
// leader's compaction and checkpoint pruning advance past shipped log (see
// the pinning rules in internal/wal/repl.go). Every failure collapses onto
// two recoveries: retry with exponential backoff (transient transport or
// leader errors), or re-seed from the leader's newest checkpoint snapshot
// (HTTP 410 — the cursor fell behind the compaction horizon, the pin was
// evicted past its budget, or the leader lost a relaxed-sync tail). A
// follower crash mid-batch needs nothing special at all: the cursor was not
// advanced, the batch is re-pulled, and application is idempotent.
package repl

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"classminer/internal/metrics"
	"classminer/internal/trace"
	"classminer/internal/wal"
)

// Response headers carrying the replication cursor and lag alongside the
// framed body. The cursor headers on a 200 name the position the follower
// should pull from next (and persist once the batch is applied); on a 204
// they echo the request cursor.
const (
	HeaderSegment    = "X-Repl-Segment"
	HeaderOffset     = "X-Repl-Offset"
	HeaderEpoch      = "X-Repl-Epoch"
	HeaderLagRecords = "X-Repl-Lag-Records"
	HeaderLagBytes   = "X-Repl-Lag-Bytes"
	// HeaderShards is the leader's shard count; a follower cross-checks it
	// against its own applier count so a topology mismatch fails loudly
	// instead of interleaving shards wrongly.
	HeaderShards = "X-Repl-Shards"
	// HeaderSnapshot on a snapshot response is "full" when a checkpoint body
	// follows and "none" when the leader has never checkpointed (the log
	// alone is the full history).
	HeaderSnapshot = "X-Repl-Snapshot"
)

// Pull-protocol bounds: the default and maximum batch size one pull may
// request, and the longest a pull may park waiting for new log.
const (
	defaultBatchBytes = 1 << 20
	maxBatchBytes     = 8 << 20
	maxPullWait       = 55 * time.Second
)

// Hub is the leader side: one HTTP-facing exporter over the per-shard WAL
// engines. The server routes /v1/repl/pull and /v1/repl/snapshot here after
// authentication; the Hub owns everything protocol-level below that.
type Hub struct {
	engines []*wal.Engine
	reg     *metrics.Registry
	logf    func(string, ...any)

	mu     sync.Mutex
	gauges map[string]bool // (follower, shard) pairs with registered lag gauges
}

// NewHub builds the leader-side exporter over one WAL engine per shard.
// Every engine must be non-nil: replication is only meaningful on a durable
// library.
func NewHub(engines []*wal.Engine, reg *metrics.Registry, logf func(string, ...any)) (*Hub, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("repl: no engines")
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("repl: shard %d has no WAL engine (library not durable)", i)
		}
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Hub{engines: engines, reg: reg, logf: logf, gauges: map[string]bool{}}, nil
}

// Shards is the leader's shard count (one replication stream each).
func (h *Hub) Shards() int { return len(h.engines) }

// MaxLag is the worst attached follower's backlog across every shard — the
// signal the leader's write path sheds on when replication lag exceeds its
// budget.
func (h *Hub) MaxLag() (records, bytes int64) {
	for _, e := range h.engines {
		r, b := e.MaxPinLag()
		if r > records {
			records = r
		}
		if b > bytes {
			bytes = b
		}
	}
	return records, bytes
}

// ShardPins is one shard's attached followers, for /v1/stats.
type ShardPins struct {
	Shard     int            `json:"shard"`
	Followers []wal.PinStats `json:"followers"`
}

// Stats reports every shard's attached followers (shards with none are
// included with an empty list, so the view always shows the topology).
func (h *Hub) Stats() []ShardPins {
	out := make([]ShardPins, len(h.engines))
	for i, e := range h.engines {
		out[i] = ShardPins{Shard: i, Followers: e.Pins()}
	}
	return out
}

// validateFollowerID bounds follower identifiers: they become file-adjacent
// label values and log fields, so keep them to a tame charset.
func validateFollowerID(id string) error {
	if id == "" {
		return fmt.Errorf("repl: missing follower id")
	}
	if len(id) > 128 {
		return fmt.Errorf("repl: follower id longer than 128 bytes")
	}
	for _, c := range id {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("repl: follower id %q has characters outside [A-Za-z0-9._-]", id)
		}
	}
	return nil
}

// writeErr mirrors the server's uniform error envelope without importing it.
func writeErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", msg)
}

// pullParams is one parsed pull request.
type pullParams struct {
	follower string
	shard    int
	cur      wal.Cursor
	wait     time.Duration
	max      int64
}

func (h *Hub) parsePull(r *http.Request) (pullParams, error) {
	q := r.URL.Query()
	p := pullParams{follower: q.Get("follower"), max: defaultBatchBytes}
	if err := validateFollowerID(p.follower); err != nil {
		return p, err
	}
	if v := q.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return p, fmt.Errorf("repl: bad shard %q", v)
		}
		p.shard = n
	}
	if p.shard < 0 || p.shard >= len(h.engines) {
		return p, fmt.Errorf("repl: shard %d outside [0,%d)", p.shard, len(h.engines))
	}
	var err error
	if v := q.Get("segment"); v != "" {
		if p.cur.Segment, err = strconv.ParseUint(v, 10, 64); err != nil {
			return p, fmt.Errorf("repl: bad segment %q", v)
		}
	}
	if v := q.Get("offset"); v != "" {
		if p.cur.Offset, err = strconv.ParseInt(v, 10, 64); err != nil || p.cur.Offset < 0 {
			return p, fmt.Errorf("repl: bad offset %q", v)
		}
	}
	if v := q.Get("epoch"); v != "" {
		if p.cur.Epoch, err = strconv.ParseUint(v, 10, 64); err != nil {
			return p, fmt.Errorf("repl: bad epoch %q", v)
		}
	}
	if v := q.Get("wait"); v != "" {
		if p.wait, err = time.ParseDuration(v); err != nil || p.wait < 0 {
			return p, fmt.Errorf("repl: bad wait %q", v)
		}
		if p.wait > maxPullWait {
			p.wait = maxPullWait
		}
	}
	if v := q.Get("max"); v != "" {
		if p.max, err = strconv.ParseInt(v, 10, 64); err != nil || p.max <= 0 {
			return p, fmt.Errorf("repl: bad max %q", v)
		}
		if p.max > maxBatchBytes {
			p.max = maxBatchBytes
		}
	}
	return p, nil
}

// setCursorHeaders stamps the response with a cursor plus the follower's
// remaining backlog on this shard's engine.
func (h *Hub) setCursorHeaders(w http.ResponseWriter, eng *wal.Engine, follower string, cur wal.Cursor) {
	hd := w.Header()
	hd.Set(HeaderSegment, strconv.FormatUint(cur.Segment, 10))
	hd.Set(HeaderOffset, strconv.FormatInt(cur.Offset, 10))
	hd.Set(HeaderEpoch, strconv.FormatUint(cur.Epoch, 10))
	hd.Set(HeaderShards, strconv.Itoa(len(h.engines)))
	for _, p := range eng.Pins() {
		if p.ID == follower {
			hd.Set(HeaderLagRecords, strconv.FormatInt(p.LagRecords, 10))
			hd.Set(HeaderLagBytes, strconv.FormatInt(p.LagBytes, 10))
			break
		}
	}
}

// ServePull answers GET /v1/repl/pull: ship the framed records between the
// follower's cursor and the shard's durable tip. 200 carries a batch and the
// next cursor; 204 means the follower is at the tip and the long-poll window
// elapsed; 410 Gone means the log cannot serve the cursor any more and the
// follower must re-seed from a snapshot.
func (h *Hub) ServePull(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	p, err := h.parsePull(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	eng := h.engines[p.shard]
	sp := trace.StartSpan(r.Context(), "repl.ship")
	defer sp.End()

	cur := p.cur
	deadline := time.Now().Add(p.wait)
	attached := false
	for {
		batch, next, rerr := eng.ReadFrom(p.follower, cur, p.max)
		switch {
		case errors.Is(rerr, wal.ErrNotAttached):
			if attached {
				// Attached this very request and evicted already: the pin
				// budget is rejecting this follower, don't loop on it.
				writeErr(w, http.StatusGone, wal.ErrBehindHorizon.Error())
				return
			}
			ac, aerr := eng.Attach(p.follower, cur)
			if aerr != nil {
				if errors.Is(aerr, wal.ErrBehindHorizon) {
					writeErr(w, http.StatusGone, aerr.Error())
					return
				}
				writeErr(w, http.StatusInternalServerError, aerr.Error())
				return
			}
			h.ensureLagGauges(p.follower, p.shard, eng)
			cur = ac // a zero cursor attaches at the oldest live segment
			attached = true
			continue
		case errors.Is(rerr, wal.ErrBehindHorizon):
			writeErr(w, http.StatusGone, rerr.Error())
			return
		case errors.Is(rerr, wal.ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, rerr.Error())
			return
		case rerr != nil:
			writeErr(w, http.StatusInternalServerError, rerr.Error())
			return
		}
		if len(batch) > 0 {
			h.setCursorHeaders(w, eng, p.follower, next)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(batch)
			return
		}
		// At the tip: park on the durable-advance notification until data
		// arrives, the long-poll window elapses, or the client hangs up.
		remain := time.Until(deadline)
		if remain <= 0 {
			h.setCursorHeaders(w, eng, p.follower, cur)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		notify := eng.DurableNotify()
		timer := time.NewTimer(remain)
		select {
		case <-notify:
		case <-timer.C:
		case <-r.Context().Done():
		}
		timer.Stop()
		if r.Context().Err() != nil {
			h.setCursorHeaders(w, eng, p.follower, cur)
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
}

// ServeSnapshot answers GET /v1/repl/snapshot: register the follower's pin
// at the current horizon and stream the newest checkpoint snapshot (empty
// body, HeaderSnapshot "none", when no checkpoint exists yet). The cursor
// headers name the log position the snapshot's state continues from.
func (h *Hub) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	follower := q.Get("follower")
	if err := validateFollowerID(follower); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	shard := 0
	if v := q.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("repl: bad shard %q", v))
			return
		}
		shard = n
	}
	if shard < 0 || shard >= len(h.engines) {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("repl: shard %d outside [0,%d)", shard, len(h.engines)))
		return
	}
	eng := h.engines[shard]
	sp := trace.StartSpan(r.Context(), "repl.seed")
	defer sp.End()

	rc, cur, err := eng.Seed(follower)
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		} else {
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	h.ensureLagGauges(follower, shard, eng)
	h.setCursorHeaders(w, eng, follower, cur)
	if rc == nil {
		w.Header().Set(HeaderSnapshot, "none")
		w.WriteHeader(http.StatusOK)
		return
	}
	defer rc.Close()
	w.Header().Set(HeaderSnapshot, "full")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := io.Copy(w, rc); err != nil {
		// Headers are gone; all we can do is log the truncated stream. The
		// follower's reseed will fail to parse and retry.
		h.logf("repl: streaming snapshot to %q: %v", follower, err)
	}
	h.logf("repl: follower %q seeded shard %d at segment %d", follower, shard, cur.Segment)
}

// ensureLagGauges registers the per-follower lag gauges on first sight of a
// (follower, shard) pair. GaugeFunc re-registration replaces the callback,
// so a follower re-attaching after a leader restart simply re-binds.
func (h *Hub) ensureLagGauges(follower string, shard int, eng *wal.Engine) {
	if h.reg == nil {
		return
	}
	key := follower + "\x00" + strconv.Itoa(shard)
	h.mu.Lock()
	seen := h.gauges[key]
	h.gauges[key] = true
	h.mu.Unlock()
	if seen {
		return
	}
	labels := []string{"follower", follower, "shard", strconv.Itoa(shard)}
	pinLag := func(sel func(wal.PinStats) int64) func() float64 {
		return func() float64 {
			for _, p := range eng.Pins() {
				if p.ID == follower {
					return float64(sel(p))
				}
			}
			return 0 // detached or evicted: no backlog held against the log
		}
	}
	h.reg.GaugeFunc("repl_lag_records",
		"Unshipped WAL records an attached follower is behind, per follower and shard.",
		pinLag(func(p wal.PinStats) int64 { return p.LagRecords }), labels...)
	h.reg.GaugeFunc("repl_lag_bytes",
		"Unshipped WAL bytes an attached follower is behind, per follower and shard.",
		pinLag(func(p wal.PinStats) int64 { return p.LagBytes }), labels...)
}
