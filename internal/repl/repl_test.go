package repl

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"classminer"
	"classminer/internal/store"
	"classminer/internal/wal"
)

// fakeApplier records everything the follower applies, so protocol tests
// can assert ordering and resume behaviour without a full library.
type fakeApplier struct {
	mu      sync.Mutex
	recs    []wal.Record
	snaps   [][]byte // one entry per reseed; nil when the leader sent none
	reseeds int
}

func (a *fakeApplier) ApplyRecord(_ context.Context, rec *wal.Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := *rec
	cp.Payload = append([]byte(nil), rec.Payload...)
	a.recs = append(a.recs, cp)
	return nil
}

func (a *fakeApplier) ReseedFromSnapshot(_ context.Context, r io.Reader) (int, int, error) {
	var body []byte
	if r != nil {
		b, err := io.ReadAll(r)
		if err != nil {
			return 0, 0, err
		}
		body = b
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.snaps = append(a.snaps, body)
	a.reseeds++
	return 0, 0, nil
}

func (a *fakeApplier) keys() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.recs))
	for i, r := range a.recs {
		out[i] = r.Key
	}
	return out
}

func (a *fakeApplier) reseedCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reseeds
}

// newLeader opens a leader-side WAL (relaxed sync: every append immediately
// shippable, background maintenance off) and serves its Hub endpoints.
func newLeader(t testing.TB) (*wal.Engine, *httptest.Server) {
	t.Helper()
	eng, err := wal.Open(t.TempDir(), wal.Options{
		Sync:              wal.SyncNever,
		CheckpointBytes:   -1,
		CheckpointRecords: -1,
		CompactBytes:      -1,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	hub, err := NewHub([]*wal.Engine{eng}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/pull", hub.ServePull)
	mux.HandleFunc("/v1/repl/snapshot", hub.ServeSnapshot)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return eng, ts
}

// appendTyped journals one typed envelope record on the leader.
func appendTyped(t testing.TB, eng *wal.Engine, kind, key string) {
	t.Helper()
	var payload []byte
	if kind != wal.RecordTombstone {
		payload = []byte(fmt.Sprintf(`{"key":%q}`, key))
	}
	frame, err := wal.EncodeRecord(kind, key, payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Append(frame); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// followerOpts is the fast-cycling baseline every test starts from.
func followerOpts(leaderURL, dir string, appliers ...Applier) Options {
	return Options{
		LeaderURL: leaderURL,
		ID:        "test-follower",
		Dir:       dir,
		Appliers:  appliers,
		PollWait:  100 * time.Millisecond,
	}
}

// TestFollowerAppliesAndResumes drives the happy path: a cold follower
// seeds (the never-checkpointed leader sends no snapshot body), applies the
// whole log in order, reports Ready, and — after a clean stop — a restart
// resumes from the durable cursor, applying only what it missed.
func TestFollowerAppliesAndResumes(t *testing.T) {
	eng, ts := newLeader(t)
	for i := 0; i < 10; i++ {
		appendTyped(t, eng, wal.RecordRegister, fmt.Sprintf("k%d", i))
	}

	dir := t.TempDir()
	fa := &fakeApplier{}
	f, err := Start(followerOpts(ts.URL, dir, fa))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial catch-up", func() bool { return len(fa.keys()) == 10 })
	want := make([]string, 10)
	for i := range want {
		want[i] = fmt.Sprintf("k%d", i)
	}
	if got := fa.keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("applied keys = %v, want %v", got, want)
	}
	if fa.reseedCount() != 1 {
		t.Fatalf("cold follower reseeded %d times, want exactly 1", fa.reseedCount())
	}
	waitFor(t, "readiness", func() bool { ok, _ := f.Ready(); return ok })
	f.Close()

	appendTyped(t, eng, wal.RecordTombstone, "k3")
	appendTyped(t, eng, wal.RecordReplace, "k4")

	// Restart on the same cursor directory with a fresh applier: only the
	// two new records may arrive, with no snapshot re-seed.
	fb := &fakeApplier{}
	f2, err := Start(followerOpts(ts.URL, dir, fb))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitFor(t, "resumed catch-up", func() bool { return len(fb.keys()) == 2 })
	if got := fb.keys(); !reflect.DeepEqual(got, []string{"k3", "k4"}) {
		t.Fatalf("resumed keys = %v, want [k3 k4]", got)
	}
	if fb.reseedCount() != 0 {
		t.Fatalf("warm restart reseeded %d times, want 0", fb.reseedCount())
	}
	st := f2.Stats()
	if len(st) != 1 || st[0].LagRecords != 0 || !st[0].Seeded {
		t.Fatalf("follower stats after catch-up = %+v", st)
	}
}

// TestFollowerCrashMidBatchResumes kills the follower mid-batch-apply (the
// apply hook fails permanently partway through, then the process "dies")
// and verifies the restart re-pulls from the unadvanced cursor: the fresh
// applier sees every record exactly once, in order — nothing lost to the
// aborted batch, nothing skipped past it.
func TestFollowerCrashMidBatchResumes(t *testing.T) {
	eng, ts := newLeader(t)
	want := make([]string, 6)
	for i := range want {
		want[i] = fmt.Sprintf("k%d", i)
		appendTyped(t, eng, wal.RecordRegister, want[i])
	}

	dir := t.TempDir()
	fa := &fakeApplier{}
	// The hook rejects k3 every time: the batch aborts after k0..k2 with
	// the cursor left where it was.
	f, err := start(followerOpts(ts.URL, dir, fa), func(_ int, rec *wal.Record) error {
		if rec.Key == "k3" {
			return fmt.Errorf("injected crash before %s", rec.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "partial batch", func() bool { return len(fa.keys()) >= 3 })
	waitFor(t, "abort surfaced", func() bool {
		st := f.Stats()
		return len(st) == 1 && st[0].LastError != ""
	})
	f.Close() // the "crash": cursor on disk still predates the batch

	fb := &fakeApplier{}
	f2, err := Start(followerOpts(ts.URL, dir, fb))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitFor(t, "post-crash catch-up", func() bool { return len(fb.keys()) == 6 })
	if got := fb.keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-crash keys = %v, want %v (no duplicates, no gaps)", got, want)
	}
	if fb.reseedCount() != 0 {
		t.Fatalf("crash recovery reseeded %d times, want 0 (cursor resume)", fb.reseedCount())
	}
}

// TestFollowerReseedsOn410 pushes a detached follower's cursor behind the
// leader's horizon (checkpoint prunes the shipped segments) and verifies
// the restart converges via snapshot re-seed: the leader's checkpoint body
// arrives intact, followed by only the post-checkpoint log tail.
func TestFollowerReseedsOn410(t *testing.T) {
	eng, ts := newLeader(t)
	const snapshotBody = "leader-checkpoint-state"
	eng.SetSource(func(w io.Writer) error {
		_, err := io.WriteString(w, snapshotBody)
		return err
	})
	for i := 0; i < 4; i++ {
		appendTyped(t, eng, wal.RecordRegister, fmt.Sprintf("old%d", i))
	}

	dir := t.TempDir()
	fa := &fakeApplier{}
	f, err := Start(followerOpts(ts.URL, dir, fa))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first catch-up", func() bool { return len(fa.keys()) == 4 })
	f.Close()

	// Leader moves on without the follower: drop its pin (as a leader
	// restart would), checkpoint — pruning every shipped segment — and
	// append a fresh tail.
	eng.Detach("test-follower")
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendTyped(t, eng, wal.RecordRegister, "new0")
	appendTyped(t, eng, wal.RecordTombstone, "old2")

	fb := &fakeApplier{}
	f2, err := Start(followerOpts(ts.URL, dir, fb))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitFor(t, "reseed + tail", func() bool { return fb.reseedCount() == 1 && len(fb.keys()) == 2 })
	fb.mu.Lock()
	snap := fb.snaps[0]
	fb.mu.Unlock()
	if string(snap) != snapshotBody {
		t.Fatalf("reseed snapshot = %q, want %q", snap, snapshotBody)
	}
	if got := fb.keys(); !reflect.DeepEqual(got, []string{"new0", "old2"}) {
		t.Fatalf("post-reseed tail = %v, want [new0 old2]", got)
	}
}

// TestShardTopologyMismatchFailsLoudly starts a two-applier follower
// against a one-shard leader and verifies the mismatch is surfaced as a
// persistent error instead of interleaving shards wrongly.
func TestShardTopologyMismatchFailsLoudly(t *testing.T) {
	eng, ts := newLeader(t)
	appendTyped(t, eng, wal.RecordRegister, "k0")

	f, err := Start(followerOpts(ts.URL, t.TempDir(), &fakeApplier{}, &fakeApplier{}))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFor(t, "topology error", func() bool {
		for _, st := range f.Stats() {
			if st.LastError != "" {
				return true
			}
		}
		return false
	})
	if ok, why := f.Ready(); ok {
		t.Fatalf("mismatched follower reported ready (%s)", why)
	}
}

// TestStartValidatesOptions pins the loud-failure surface of Start.
func TestStartValidatesOptions(t *testing.T) {
	base := followerOpts("http://localhost:0", t.TempDir(), &fakeApplier{})
	for name, mut := range map[string]func(*Options){
		"no leader":   func(o *Options) { o.LeaderURL = "" },
		"bad id":      func(o *Options) { o.ID = "no spaces allowed" },
		"no dir":      func(o *Options) { o.Dir = "" },
		"no appliers": func(o *Options) { o.Appliers = nil },
		"nil applier": func(o *Options) { o.Appliers = []Applier{nil} },
	} {
		o := base
		mut(&o)
		if f, err := Start(o); err == nil {
			f.Close()
			t.Fatalf("%s: Start accepted invalid options", name)
		}
	}
}

// tinySaved fabricates a small mined result (deterministic features, one
// group, one scene) without running the mining pipeline — the same shape
// the server tests ingest.
func tinySaved(name string, seed int64, shots int) *store.SavedResult {
	rng := rand.New(rand.NewSource(seed))
	sr := &store.SavedResult{
		Version: store.FormatVersion, VideoName: name, FPS: 25, TotalFrames: shots * 50,
	}
	feat := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	group := store.SavedGroup{Index: 0, RepShots: []int{0}}
	for i := 0; i < shots; i++ {
		sr.Shots = append(sr.Shots, store.SavedShot{
			Index: i, Start: i * 50, End: (i+1)*50 - 1, RepFrame: i * 50,
			Color: feat(8), Texture: feat(4),
		})
		group.Shots = append(group.Shots, i)
	}
	sr.Groups = []store.SavedGroup{group}
	sr.Scenes = []store.SavedScene{{Index: 0, Groups: []int{0}, RepGroup: 0}}
	return sr
}

func addSaved(t testing.TB, lib *classminer.Library, name string, seed int64) {
	t.Helper()
	res, err := store.DecodeResult(tinySaved(name, seed, 3+int(seed)%3))
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.AddResult(res, "medicine"); err != nil {
		t.Fatal(err)
	}
}

// TestRealLibraryFollowerConverges replicates between two durable
// classminer libraries end to end — registers, a delete and a replace flow
// through the leader's WAL into the follower's own journaled mutation
// paths — then crashes the follower library mid-stream and verifies the
// recovered process resumes from its cursor and converges to identical
// search results.
func TestRealLibraryFollowerConverges(t *testing.T) {
	a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	wopts := classminer.DurableOptions{CheckpointBytes: -1, CheckpointRecords: -1, CompactBytes: -1}
	leader, err := classminer.Recover(t.TempDir(), a, wopts)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	hub, err := NewHub([]*wal.Engine{leader.Engine()}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/pull", hub.ServePull)
	mux.HandleFunc("/v1/repl/snapshot", hub.ServeSnapshot)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 0; i < 5; i++ {
		addSaved(t, leader, fmt.Sprintf("vid-%02d", i), int64(i))
	}

	fdir := t.TempDir()
	cursorDir := t.TempDir()
	flib, err := classminer.Recover(fdir, a, wopts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Start(followerOpts(ts.URL, cursorDir, flib))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower catch-up", func() bool { return flib.Stats().Videos == 5 })

	// Crash the follower process: stop the pull loop and close the library
	// (releasing the flock exactly as death would), mid-way through a
	// stream of further leader mutations.
	f.Close()
	if err := flib.Close(); err != nil {
		t.Fatal(err)
	}
	if err := leader.DeleteVideo("vid-01"); err != nil {
		t.Fatal(err)
	}
	res, err := store.DecodeResult(tinySaved("vid-03", 99, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.ReplaceResult(res, "medicine"); err != nil {
		t.Fatal(err)
	}
	addSaved(t, leader, "vid-05", 7)

	// Recover the follower library from its own WAL and resume replication
	// from the durable cursor.
	flib2, err := classminer.Recover(fdir, a, wopts)
	if err != nil {
		t.Fatal(err)
	}
	defer flib2.Close()
	f2, err := Start(followerOpts(ts.URL, cursorDir, flib2))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitFor(t, "post-crash convergence", func() bool {
		return reflect.DeepEqual(flib2.VideoNames(), leader.VideoNames())
	})

	// Same entries, same incremental history — a full fit on each side must
	// rank identically, tie order included.
	if err := leader.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := flib2.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	admin := classminer.User{Name: "root", Clearance: classminer.Administrator}
	rng := rand.New(rand.NewSource(42))
	for q := 0; q < 5; q++ {
		query := make([]float64, 12)
		for i := range query {
			query[i] = rng.Float64()
		}
		lh, _, err := leader.Search(admin, query, 5)
		if err != nil {
			t.Fatal(err)
		}
		fh, _, err := flib2.Search(admin, query, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lh, fh) {
			t.Fatalf("query %d diverged:\nleader:   %+v\nfollower: %+v", q, lh, fh)
		}
	}
}
