package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"classminer/internal/metrics"
	"classminer/internal/store"
	"classminer/internal/wal"
)

// Applier is what the follower replicates into: one per shard. Both
// *classminer.Library and shard.Shard satisfy it. ApplyRecord must be
// idempotent (re-applying a batch after a crash is the recovery path) and
// must journal into the applier's own WAL so the follower stays durable and
// promotable.
type Applier interface {
	ApplyRecord(ctx context.Context, rec *wal.Record) error
	ReseedFromSnapshot(ctx context.Context, r io.Reader) (installed, removed int, err error)
}

// Options configures a Follower.
type Options struct {
	// LeaderURL is the leader's base URL (scheme://host:port).
	LeaderURL string
	// Token authenticates against the leader (needs Administrator clearance
	// there); sent as a Bearer token.
	Token string
	// ID names this follower in the leader's pin table, lag metrics and
	// logs. Must match [A-Za-z0-9._-]. Reusing an ID after a restart resumes
	// the same pin, which is exactly right.
	ID string
	// Dir is where the durable per-shard cursor files live (normally the
	// follower's data directory).
	Dir string
	// Appliers is one replication target per leader shard; the count must
	// match the leader's or pulls fail loudly.
	Appliers []Applier
	// PollWait is the long-poll window sent with each pull (default 25s).
	PollWait time.Duration
	// MaxBatchBytes bounds one pulled batch (default 1 MiB).
	MaxBatchBytes int64
	// ReadyLagRecords is the per-shard record lag at or under which Ready
	// reports true (default 0: fully caught up at the last pull).
	ReadyLagRecords int64
	// Client overrides the HTTP client (tests); nil builds one with a
	// timeout covering the long-poll window.
	Client *http.Client
	// Metrics, when non-nil, receives the follower-side per-shard lag and
	// apply counters.
	Metrics *metrics.Registry
	// Logf receives replication progress and errors (nil = silent).
	Logf func(format string, args ...any)
}

// ShardStatus is one shard's replication state, for Ready and /v1/stats.
type ShardStatus struct {
	Shard      int        `json:"shard"`
	Cursor     wal.Cursor `json:"cursor"`
	Seeded     bool       `json:"seeded"`
	LagRecords int64      `json:"lagRecords"`
	LagBytes   int64      `json:"lagBytes"`
	Applied    uint64     `json:"applied"`
	Reseeds    uint64     `json:"reseeds"`
	LastError  string     `json:"lastError,omitempty"`
}

// shardState is one shard's pull loop state.
type shardState struct {
	idx     int
	applier Applier
	path    string // durable cursor file

	mu sync.Mutex
	st ShardStatus
}

func (s *shardState) status() ShardStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// cursorFile is the on-disk format of a shard's replication cursor. Seeded
// distinguishes "never initialised" (must snapshot-seed before pulling) from
// a legitimate zero cursor.
type cursorFile struct {
	Cursor wal.Cursor `json:"cursor"`
	Seeded bool       `json:"seeded"`
}

// Follower pulls one replication stream per leader shard and applies it.
// Create with Start, stop with Close, or Promote to stop replicating and
// take writes.
type Follower struct {
	opts   Options
	client *http.Client
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	shards []*shardState

	// applyHook, when non-nil, runs before each record is applied; an error
	// aborts the batch with the cursor unadvanced. White-box crash-mid-batch
	// tests inject failures here.
	applyHook func(shard int, rec *wal.Record) error

	// onApply fires after a batch or reseed lands new state. The serving
	// layer hooks its index rebuilder here, so a replica's index refits as
	// replicated mutations accumulate exactly as a leader's does on its own
	// writes.
	onApply atomic.Value // func()
}

// SetOnApply registers a callback invoked after each applied batch and each
// reseed. Safe to call while the pull loops run; only the latest callback
// fires.
func (f *Follower) SetOnApply(fn func()) { f.onApply.Store(fn) }

func (f *Follower) notifyApply() {
	if fn, _ := f.onApply.Load().(func()); fn != nil {
		fn()
	}
}

// Start loads the durable cursors and launches one pull loop per shard.
func Start(opts Options) (*Follower, error) {
	return start(opts, nil)
}

func start(opts Options, hook func(int, *wal.Record) error) (*Follower, error) {
	if opts.LeaderURL == "" {
		return nil, fmt.Errorf("repl: follower needs a leader URL")
	}
	if _, err := url.Parse(opts.LeaderURL); err != nil {
		return nil, fmt.Errorf("repl: bad leader URL: %w", err)
	}
	if err := validateFollowerID(opts.ID); err != nil {
		return nil, err
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("repl: follower needs a cursor directory")
	}
	if len(opts.Appliers) == 0 {
		return nil, fmt.Errorf("repl: follower needs at least one applier")
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 25 * time.Second
	}
	if opts.PollWait > maxPullWait {
		opts.PollWait = maxPullWait
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = defaultBatchBytes
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	f := &Follower{opts: opts, client: opts.Client, applyHook: hook}
	if f.client == nil {
		// The transport timeout must outlive the long-poll window plus the
		// transfer of one full batch.
		f.client = &http.Client{Timeout: opts.PollWait + 30*time.Second}
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	for i, a := range opts.Appliers {
		if a == nil {
			f.cancel()
			return nil, fmt.Errorf("repl: shard %d applier is nil", i)
		}
		s := &shardState{
			idx:     i,
			applier: a,
			path:    filepath.Join(opts.Dir, fmt.Sprintf("repl-cursor-%03d.json", i)),
			st:      ShardStatus{Shard: i, LagRecords: -1, LagBytes: -1},
		}
		if err := s.loadCursor(); err != nil {
			f.cancel()
			return nil, err
		}
		f.shards = append(f.shards, s)
	}
	f.registerMetrics()
	for _, s := range f.shards {
		f.wg.Add(1)
		go f.run(s)
	}
	return f, nil
}

// loadCursor restores the shard's durable cursor; a missing file means cold
// (seed first).
func (s *shardState) loadCursor() error {
	b, err := os.ReadFile(s.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("repl: %w", err)
	}
	var cf cursorFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return fmt.Errorf("repl: parsing %s: %w", s.path, err)
	}
	s.st.Cursor, s.st.Seeded = cf.Cursor, cf.Seeded
	return nil
}

// saveCursor durably persists the shard's cursor. Called only after a batch
// (or reseed) is fully applied — the crash-recovery contract is that the
// on-disk cursor never runs ahead of applied state.
func (s *shardState) saveCursor(cur wal.Cursor) error {
	return store.WriteFileAtomic(s.path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(cursorFile{Cursor: cur, Seeded: true})
	})
}

// Close stops the pull loops and waits for them.
func (f *Follower) Close() {
	f.cancel()
	f.wg.Wait()
}

// Promote stops replication so the caller can flip the node into a
// write-accepting leader. The library underneath was journaled through the
// whole time, so nothing needs rebuilding — after Promote the node's own WAL
// is the authoritative log.
func (f *Follower) Promote() {
	f.Close()
	f.opts.Logf("repl: follower %q promoted; replication stopped", f.opts.ID)
}

// Ready reports whether every shard is seeded and within the lag threshold —
// the /readyz criterion for a follower.
func (f *Follower) Ready() (bool, string) {
	for _, s := range f.shards {
		st := s.status()
		if !st.Seeded {
			return false, fmt.Sprintf("shard %d not seeded", st.Shard)
		}
		if st.LagRecords < 0 {
			return false, fmt.Sprintf("shard %d has not completed a pull", st.Shard)
		}
		if st.LagRecords > f.opts.ReadyLagRecords {
			return false, fmt.Sprintf("shard %d is %d records behind (threshold %d)",
				st.Shard, st.LagRecords, f.opts.ReadyLagRecords)
		}
	}
	return true, ""
}

// Stats reports every shard's replication state.
func (f *Follower) Stats() []ShardStatus {
	out := make([]ShardStatus, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.status()
	}
	return out
}

func (f *Follower) registerMetrics() {
	reg := f.opts.Metrics
	if reg == nil {
		return
	}
	for _, s := range f.shards {
		s := s
		labels := []string{"shard", strconv.Itoa(s.idx)}
		reg.GaugeFunc("repl_follower_lag_records",
			"Records this follower is behind the leader, per shard (-1 before the first pull).",
			func() float64 { return float64(s.status().LagRecords) }, labels...)
		reg.CounterFunc("repl_follower_applied_total",
			"Replicated records applied, per shard.",
			func() float64 { return float64(s.status().Applied) }, labels...)
		reg.CounterFunc("repl_follower_reseeds_total",
			"Snapshot re-seeds this follower performed, per shard.",
			func() float64 { return float64(s.status().Reseeds) }, labels...)
	}
}

// backoff is the retry pacing for transport and leader errors: exponential
// from 100ms, capped at 5s, with ±50% jitter so a fleet of followers does
// not stampede a recovering leader.
type backoff struct {
	d   time.Duration
	rng *rand.Rand
}

func newBackoff() *backoff {
	return &backoff{rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

func (b *backoff) next() time.Duration {
	if b.d == 0 {
		b.d = 100 * time.Millisecond
	} else {
		b.d *= 2
		if b.d > 5*time.Second {
			b.d = 5 * time.Second
		}
	}
	half := b.d / 2
	return half + time.Duration(b.rng.Int63n(int64(b.d-half)+1))
}

func (b *backoff) reset() { b.d = 0 }

// run is one shard's pull loop: seed if cold, then pull-apply-persist
// forever, backing off on errors and re-seeding on 410.
func (f *Follower) run(s *shardState) {
	defer f.wg.Done()
	bo := newBackoff()
	for f.ctx.Err() == nil {
		err := f.step(s)
		if err == nil {
			bo.reset()
			continue
		}
		if f.ctx.Err() != nil {
			return
		}
		s.mu.Lock()
		s.st.LastError = err.Error()
		s.mu.Unlock()
		d := bo.next()
		f.opts.Logf("repl: shard %d: %v (retrying in %v)", s.idx, err, d.Round(time.Millisecond))
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(d):
		}
	}
}

// step performs one protocol round for the shard: a snapshot seed when cold,
// otherwise one pull (which may long-poll at the leader) plus the batch
// application and cursor persist.
func (f *Follower) step(s *shardState) error {
	s.mu.Lock()
	seeded := s.st.Seeded
	cur := s.st.Cursor
	s.mu.Unlock()
	if !seeded {
		return f.reseed(s)
	}
	return f.pull(s, cur)
}

// get issues one authenticated GET against the leader.
func (f *Follower) get(path string, q url.Values) (*http.Response, error) {
	u := f.opts.LeaderURL + path + "?" + q.Encode()
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if f.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+f.opts.Token)
	}
	return f.client.Do(req)
}

// leaderError summarises a non-OK leader response, draining a bounded slice
// of the body for the message.
func leaderError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("repl: leader returned %s: %s", resp.Status, bytes.TrimSpace(b))
}

// cursorFromHeaders parses the X-Repl-* cursor headers.
func cursorFromHeaders(h http.Header) (wal.Cursor, error) {
	var cur wal.Cursor
	var err error
	if cur.Segment, err = strconv.ParseUint(h.Get(HeaderSegment), 10, 64); err != nil {
		return cur, fmt.Errorf("repl: bad %s header %q", HeaderSegment, h.Get(HeaderSegment))
	}
	if cur.Offset, err = strconv.ParseInt(h.Get(HeaderOffset), 10, 64); err != nil {
		return cur, fmt.Errorf("repl: bad %s header %q", HeaderOffset, h.Get(HeaderOffset))
	}
	if cur.Epoch, err = strconv.ParseUint(h.Get(HeaderEpoch), 10, 64); err != nil {
		return cur, fmt.Errorf("repl: bad %s header %q", HeaderEpoch, h.Get(HeaderEpoch))
	}
	return cur, nil
}

// checkShards cross-checks the leader's shard count against ours.
func (f *Follower) checkShards(h http.Header) error {
	v := h.Get(HeaderShards)
	if v == "" {
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n != len(f.shards) {
		return fmt.Errorf("repl: leader has %s shards, follower has %d — topology mismatch", v, len(f.shards))
	}
	return nil
}

// lagFromHeaders updates the shard's lag view from a leader response.
func (s *shardState) lagFromHeaders(h http.Header) {
	recs, err1 := strconv.ParseInt(h.Get(HeaderLagRecords), 10, 64)
	bts, err2 := strconv.ParseInt(h.Get(HeaderLagBytes), 10, 64)
	if err1 != nil || err2 != nil {
		return
	}
	s.mu.Lock()
	s.st.LagRecords, s.st.LagBytes = recs, bts
	s.mu.Unlock()
}

// pull fetches and applies one batch from cur. Requesting cur is also the
// durability acknowledgement for everything before it — the leader releases
// its pin up to cur.
func (f *Follower) pull(s *shardState, cur wal.Cursor) error {
	q := url.Values{
		"follower": {f.opts.ID},
		"shard":    {strconv.Itoa(s.idx)},
		"segment":  {strconv.FormatUint(cur.Segment, 10)},
		"offset":   {strconv.FormatInt(cur.Offset, 10)},
		"epoch":    {strconv.FormatUint(cur.Epoch, 10)},
		"wait":     {f.opts.PollWait.String()},
		"max":      {strconv.FormatInt(f.opts.MaxBatchBytes, 10)},
	}
	resp, err := f.get("/v1/repl/pull", q)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if err := f.checkShards(resp.Header); err != nil {
			return err
		}
		next, err := cursorFromHeaders(resp.Header)
		if err != nil {
			return err
		}
		// One batch is bounded by the requested max plus the record that
		// straddles it; anything past that is a protocol violation.
		body, err := io.ReadAll(io.LimitReader(resp.Body, f.opts.MaxBatchBytes+wal.MaxRecordBytes+wal.FrameOverhead))
		if err != nil {
			return fmt.Errorf("repl: reading batch: %w", err)
		}
		applied, err := f.applyBatch(s, body)
		if err != nil {
			return err
		}
		if err := s.saveCursor(next); err != nil {
			return err
		}
		s.mu.Lock()
		s.st.Cursor, s.st.Seeded = next, true
		s.st.Applied += uint64(applied)
		s.st.LastError = ""
		s.mu.Unlock()
		s.lagFromHeaders(resp.Header)
		if applied > 0 {
			f.notifyApply()
		}
		return nil
	case http.StatusNoContent:
		if err := f.checkShards(resp.Header); err != nil {
			return err
		}
		s.mu.Lock()
		s.st.LastError = ""
		s.mu.Unlock()
		s.lagFromHeaders(resp.Header)
		return nil
	case http.StatusGone:
		f.opts.Logf("repl: shard %d cursor behind the leader's horizon; re-seeding", s.idx)
		return f.reseed(s)
	default:
		return leaderError(resp)
	}
}

// applyBatch applies every framed record in body, in order. A failure
// anywhere leaves the cursor unadvanced; re-applying the whole batch later
// is safe because application is idempotent.
func (f *Follower) applyBatch(s *shardState, body []byte) (int, error) {
	rd := bytes.NewReader(body)
	applied := 0
	var rec wal.Record
	for {
		frame, err := wal.ReadRecord(rd)
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, fmt.Errorf("repl: corrupt batch frame: %w", err)
		}
		if err := wal.DecodeRecordInto(&rec, frame); err != nil {
			return applied, err
		}
		if f.applyHook != nil {
			if err := f.applyHook(s.idx, &rec); err != nil {
				return applied, err
			}
		}
		if err := s.applier.ApplyRecord(f.ctx, &rec); err != nil {
			return applied, fmt.Errorf("repl: applying %s %q: %w", rec.Type, rec.Key, err)
		}
		applied++
	}
}

// reseed pulls the leader's newest checkpoint snapshot, converges the shard
// onto it, and persists the snapshot's cursor. Used on cold start and
// whenever the leader answers 410.
func (f *Follower) reseed(s *shardState) error {
	q := url.Values{
		"follower": {f.opts.ID},
		"shard":    {strconv.Itoa(s.idx)},
	}
	resp, err := f.get("/v1/repl/snapshot", q)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return leaderError(resp)
	}
	if err := f.checkShards(resp.Header); err != nil {
		return err
	}
	cur, err := cursorFromHeaders(resp.Header)
	if err != nil {
		return err
	}
	var body io.Reader = resp.Body
	if resp.Header.Get(HeaderSnapshot) == "none" {
		body = nil
	}
	installed, removed, err := s.applier.ReseedFromSnapshot(f.ctx, body)
	if err != nil {
		return fmt.Errorf("repl: reseeding shard %d: %w", s.idx, err)
	}
	if err := s.saveCursor(cur); err != nil {
		return err
	}
	s.mu.Lock()
	s.st.Cursor, s.st.Seeded = cur, true
	s.st.Reseeds++
	s.st.LastError = ""
	s.mu.Unlock()
	s.lagFromHeaders(resp.Header)
	f.notifyApply()
	f.opts.Logf("repl: shard %d reseeded from leader snapshot (%d installed, %d removed), resuming at segment %d",
		s.idx, installed, removed, cur.Segment)
	return nil
}
