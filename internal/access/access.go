// Package access implements the hierarchical video database access control
// of §2: the indexing tree doubles as a protection-granularity lattice, so
// filtering rules can be attached to any semantic concept and apply to its
// whole subtree, while multilevel security clearances gate who may see what
// (no read-up). The deepest applicable rule wins, letting administrators
// carve exceptions inside broadly protected subtrees.
package access

import (
	"fmt"
	"strings"
)

// Clearance is a multilevel-security level. Higher values dominate lower
// ones; a subject may read an object only when its clearance is at least
// the object's classification.
type Clearance int

// The built-in clearance lattice for a medical video library.
const (
	Public Clearance = iota
	Student
	Nurse
	Clinician
	Administrator
)

func (c Clearance) String() string {
	switch c {
	case Public:
		return "public"
	case Student:
		return "student"
	case Nurse:
		return "nurse"
	case Clinician:
		return "clinician"
	case Administrator:
		return "administrator"
	default:
		return fmt.Sprintf("clearance-%d", int(c))
	}
}

// ParseClearance maps a clearance name (as printed by Clearance.String,
// case-insensitive) back to its level. It is how external identity — a
// daemon's token table, a CLI flag — names levels of the built-in lattice.
func ParseClearance(s string) (Clearance, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "public":
		return Public, nil
	case "student":
		return Student, nil
	case "nurse":
		return Nurse, nil
	case "clinician":
		return Clinician, nil
	case "administrator", "admin":
		return Administrator, nil
	}
	return Public, fmt.Errorf("access: unknown clearance %q", s)
}

// User is a subject with a clearance and optional role names.
type User struct {
	Name      string
	Clearance Clearance
	Roles     []string
}

// HasRole reports whether the user holds the named role.
func (u User) HasRole(role string) bool {
	for _, r := range u.Roles {
		if strings.EqualFold(r, role) {
			return true
		}
	}
	return false
}

// Rule protects the subtree rooted at Concept. Exactly one of the grant
// conditions applies: a minimum clearance, a required role, or an outright
// Deny.
type Rule struct {
	// Concept names the hierarchy node the rule is attached to ("" or
	// "database" protects the whole library).
	Concept string
	// MinClearance is the least clearance allowed to read the subtree.
	MinClearance Clearance
	// RequireRole, when non-empty, additionally requires the role.
	RequireRole string
	// Deny forbids access regardless of clearance (e.g. withdrawn
	// material).
	Deny bool
}

// Policy is an ordered rule set over the concept hierarchy.
type Policy struct {
	rules []Rule
}

// NewPolicy builds a policy; rules may arrive in any order.
func NewPolicy(rules ...Rule) *Policy {
	p := &Policy{}
	p.rules = append(p.rules, rules...)
	return p
}

// Add appends a rule.
func (p *Policy) Add(r Rule) { p.rules = append(p.rules, r) }

// Decision explains an access-control outcome.
type Decision struct {
	Allowed bool
	Rule    *Rule // the governing rule; nil when the default applied
	Reason  string
}

// Check evaluates a user against a concept path (root-exclusive, e.g.
// ["medical education", "medicine", "medicine/clinical operation"]). The
// governing rule is the deepest one whose concept appears on the path; with
// no applicable rule the default is allow.
func (p *Policy) Check(u User, path []string) Decision {
	var governing *Rule
	depth := -1
	for i := range p.rules {
		r := &p.rules[i]
		d := matchDepth(r.Concept, path)
		if d > depth {
			depth = d
			governing = r
		}
	}
	if governing == nil {
		return Decision{Allowed: true, Reason: "no applicable rule; default allow"}
	}
	if governing.Deny {
		return Decision{Allowed: false, Rule: governing,
			Reason: fmt.Sprintf("subtree %q is denied", governing.Concept)}
	}
	if u.Clearance < governing.MinClearance {
		return Decision{Allowed: false, Rule: governing,
			Reason: fmt.Sprintf("clearance %v below required %v for %q", u.Clearance, governing.MinClearance, governing.Concept)}
	}
	if governing.RequireRole != "" && !u.HasRole(governing.RequireRole) {
		return Decision{Allowed: false, Rule: governing,
			Reason: fmt.Sprintf("role %q required for %q", governing.RequireRole, governing.Concept)}
	}
	return Decision{Allowed: true, Rule: governing, Reason: "granted"}
}

// Allowed is Check reduced to its boolean.
func (p *Policy) Allowed(u User, path []string) bool { return p.Check(u, path).Allowed }

// matchDepth returns the 1-based depth at which the rule's concept matches
// the path, 0 for a whole-library rule, and -1 for no match.
func matchDepth(concept string, path []string) int {
	if concept == "" || strings.EqualFold(concept, "database") {
		return 0
	}
	for i, name := range path {
		if strings.EqualFold(name, concept) {
			return i + 1
		}
	}
	return -1
}

// Filter returns only the paths the user may access. It is the wrapper the
// search layer applies to result lists.
func Filter[T any](p *Policy, u User, items []T, pathOf func(T) []string) []T {
	out := make([]T, 0, len(items))
	for _, it := range items {
		if p.Allowed(u, pathOf(it)) {
			out = append(out, it)
		}
	}
	return out
}

// FilterInPlace is Filter compacting into the input's own backing array —
// zero allocations. Only for callers that own items outright (a pooled
// search scratch); the dropped tail is left as-is past the returned length.
func FilterInPlace[T any](p *Policy, u User, items []T, pathOf func(T) []string) []T {
	out := items[:0]
	for _, it := range items {
		if p.Allowed(u, pathOf(it)) {
			out = append(out, it)
		}
	}
	return out
}
