package access

import (
	"testing"
	"testing/quick"
)

var clinicalPath = []string{"medical education", "medicine", "medicine/clinical operation"}
var dialogPath = []string{"medical education", "medicine", "medicine/dialog"}

func TestDefaultAllow(t *testing.T) {
	p := NewPolicy()
	if !p.Allowed(User{Name: "anon"}, clinicalPath) {
		t.Fatal("empty policy must default-allow")
	}
}

func TestParseClearance(t *testing.T) {
	for _, c := range []Clearance{Public, Student, Nurse, Clinician, Administrator} {
		got, err := ParseClearance(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClearance(%q) = %v, %v", c.String(), got, err)
		}
	}
	if got, err := ParseClearance(" Admin "); err != nil || got != Administrator {
		t.Fatalf("admin alias: %v, %v", got, err)
	}
	if _, err := ParseClearance("wizard"); err == nil {
		t.Fatal("want error for unknown clearance")
	}
}

func TestClearanceGate(t *testing.T) {
	p := NewPolicy(Rule{Concept: "medicine/clinical operation", MinClearance: Clinician})
	if p.Allowed(User{Name: "kid", Clearance: Public}, clinicalPath) {
		t.Fatal("public user must not see clinical operations")
	}
	if !p.Allowed(User{Name: "dr", Clearance: Clinician}, clinicalPath) {
		t.Fatal("clinician must see clinical operations")
	}
	// The rule must not leak onto sibling concepts.
	if !p.Allowed(User{Name: "kid", Clearance: Public}, dialogPath) {
		t.Fatal("dialog scenes are unprotected")
	}
}

func TestSubtreeInheritance(t *testing.T) {
	p := NewPolicy(Rule{Concept: "medical education", MinClearance: Student})
	if p.Allowed(User{Clearance: Public}, clinicalPath) {
		t.Fatal("subtree rule must protect descendants")
	}
	if !p.Allowed(User{Clearance: Student}, dialogPath) {
		t.Fatal("student must pass the subtree rule")
	}
}

func TestDeepestRuleWins(t *testing.T) {
	p := NewPolicy(
		Rule{Concept: "medical education", MinClearance: Clinician},
		Rule{Concept: "medicine/dialog", MinClearance: Public}, // exception
	)
	if !p.Allowed(User{Clearance: Public}, dialogPath) {
		t.Fatal("deeper exception must override the subtree rule")
	}
	if p.Allowed(User{Clearance: Public}, clinicalPath) {
		t.Fatal("subtree rule still governs siblings")
	}
}

func TestDenyRule(t *testing.T) {
	p := NewPolicy(Rule{Concept: "medicine/clinical operation", Deny: true})
	if p.Allowed(User{Clearance: Administrator}, clinicalPath) {
		t.Fatal("deny must beat any clearance")
	}
	d := p.Check(User{Clearance: Administrator}, clinicalPath)
	if d.Rule == nil || d.Reason == "" {
		t.Fatal("decision must explain itself")
	}
}

func TestRoleRequirement(t *testing.T) {
	p := NewPolicy(Rule{Concept: "medicine", MinClearance: Student, RequireRole: "med-school"})
	u := User{Clearance: Clinician}
	if p.Allowed(u, clinicalPath) {
		t.Fatal("missing role must deny")
	}
	u.Roles = []string{"Med-School"}
	if !p.Allowed(u, clinicalPath) {
		t.Fatal("role match must be case-insensitive")
	}
}

func TestWholeLibraryRule(t *testing.T) {
	p := NewPolicy(Rule{Concept: "database", MinClearance: Student})
	if p.Allowed(User{Clearance: Public}, dialogPath) {
		t.Fatal("library-wide rule must apply")
	}
	p2 := NewPolicy(Rule{Concept: "", MinClearance: Student})
	if p2.Allowed(User{Clearance: Public}, dialogPath) {
		t.Fatal("empty concept means library-wide")
	}
}

func TestFilter(t *testing.T) {
	p := NewPolicy(Rule{Concept: "medicine/clinical operation", MinClearance: Clinician})
	items := [][]string{clinicalPath, dialogPath}
	got := Filter(p, User{Clearance: Public}, items, func(x []string) []string { return x })
	if len(got) != 1 || got[0][2] != "medicine/dialog" {
		t.Fatalf("filter result = %v", got)
	}
}

// Property: access is monotone in clearance — raising a user's clearance
// can never revoke access (with role-free policies).
func TestPropertyClearanceMonotone(t *testing.T) {
	p := NewPolicy(
		Rule{Concept: "medical education", MinClearance: Student},
		Rule{Concept: "medicine", MinClearance: Nurse},
		Rule{Concept: "medicine/clinical operation", MinClearance: Clinician},
	)
	f := func(level uint8) bool {
		c := Clearance(level % 5)
		for _, path := range [][]string{clinicalPath, dialogPath} {
			if p.Allowed(User{Clearance: c}, path) && !p.Allowed(User{Clearance: c + 1}, path) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClearanceString(t *testing.T) {
	for _, c := range []Clearance{Public, Student, Nurse, Clinician, Administrator, Clearance(42)} {
		if c.String() == "" {
			t.Fatal("empty clearance string")
		}
	}
}
