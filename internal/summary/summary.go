// Package summary implements the two §5 follow-on applications the paper
// names beyond scalable skimming: pictorial summarization (a storyboard
// mosaic of representative frames, arranged by the content hierarchy) and
// hierarchical video browsing (a navigable tree over clustered scenes,
// scenes, groups and shots).
package summary

import (
	"fmt"
	"strings"

	"classminer/internal/core"
	"classminer/internal/vidmodel"
)

// Storyboard is a pictorial summary: a mosaic frame of representative
// thumbnails plus the metadata of every tile.
type Storyboard struct {
	Mosaic *vidmodel.Frame
	Tiles  []Tile
	Cols   int
	Rows   int
	ThumbW int
	ThumbH int
}

// Tile locates one thumbnail in the mosaic.
type Tile struct {
	SceneIndex int
	ShotIndex  int
	Event      vidmodel.EventKind
	X, Y       int // top-left pixel of the thumbnail in the mosaic
}

// BuildStoryboard renders the pictorial summary of a mined video: one
// thumbnail per scene (its representative group's representative shot),
// laid out left-to-right in temporal order, cols tiles per row. The video
// must still carry its frames.
func BuildStoryboard(res *core.Result, cols int) (*Storyboard, error) {
	if res == nil || res.Video == nil || len(res.Video.Frames) == 0 {
		return nil, fmt.Errorf("summary: result carries no frames (media-less results cannot be storyboarded)")
	}
	if len(res.Scenes) == 0 {
		return nil, fmt.Errorf("summary: no scenes to summarise")
	}
	if cols <= 0 {
		cols = 4
	}
	src := res.Video.Frames[0]
	thumbW, thumbH := src.W/2, src.H/2
	if thumbW < 4 || thumbH < 4 {
		thumbW, thumbH = src.W, src.H
	}
	rows := (len(res.Scenes) + cols - 1) / cols
	const pad = 1
	sb := &Storyboard{
		Mosaic: vidmodel.NewFrame(cols*(thumbW+pad)+pad, rows*(thumbH+pad)+pad),
		Cols:   cols, Rows: rows, ThumbW: thumbW, ThumbH: thumbH,
	}
	for i, sc := range res.Scenes {
		shot := representativeShot(sc)
		if shot == nil {
			continue
		}
		frame := res.Video.Frames[clampInt(shot.RepFrame, 0, len(res.Video.Frames)-1)]
		x := pad + (i%cols)*(thumbW+pad)
		y := pad + (i/cols)*(thumbH+pad)
		drawThumb(sb.Mosaic, frame, x, y, thumbW, thumbH)
		sb.Tiles = append(sb.Tiles, Tile{
			SceneIndex: sc.Index, ShotIndex: shot.Index, Event: sc.Event, X: x, Y: y,
		})
	}
	return sb, nil
}

// representativeShot picks the scene's visual face: the representative
// shot of its representative group.
func representativeShot(sc *vidmodel.Scene) *vidmodel.Shot {
	g := sc.RepGroup
	if g == nil && len(sc.Groups) > 0 {
		g = sc.Groups[0]
	}
	if g == nil {
		return nil
	}
	if len(g.RepShots) > 0 && g.RepShots[0] != nil {
		return g.RepShots[0]
	}
	if len(g.Shots) > 0 {
		return g.Shots[0]
	}
	return nil
}

// drawThumb box-downsamples src into dst at (x0, y0) with size w×h.
func drawThumb(dst, src *vidmodel.Frame, x0, y0, w, h int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Box filter over the source region backing this pixel.
			sx0 := x * src.W / w
			sx1 := (x + 1) * src.W / w
			sy0 := y * src.H / h
			sy1 := (y + 1) * src.H / h
			if sx1 <= sx0 {
				sx1 = sx0 + 1
			}
			if sy1 <= sy0 {
				sy1 = sy0 + 1
			}
			var r, g, b, n int
			for sy := sy0; sy < sy1; sy++ {
				for sx := sx0; sx < sx1; sx++ {
					pr, pg, pb := src.At(sx, sy)
					r += int(pr)
					g += int(pg)
					b += int(pb)
					n++
				}
			}
			dst.Set(x0+x, y0+y, byte(r/n), byte(g/n), byte(b/n))
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BrowseNode is one node of the hierarchical browsing tree (Fig. 1 made
// navigable): video → clustered scenes → scenes → groups → shots.
type BrowseNode struct {
	Kind     string // "video", "cluster", "scene", "group", "shot"
	Label    string
	Start    int // first frame covered
	End      int // one-past-last frame covered
	Event    vidmodel.EventKind
	Children []*BrowseNode
}

// BuildBrowseTree assembles the browsing hierarchy of a mined video. When
// clustering ran, clustered scenes form the first level; otherwise scenes
// hang directly under the root.
func BuildBrowseTree(res *core.Result) (*BrowseNode, error) {
	if res == nil || res.Video == nil {
		return nil, fmt.Errorf("summary: nil result")
	}
	root := &BrowseNode{Kind: "video", Label: res.Video.Name, End: totalFrames(res)}
	sceneNode := func(sc *vidmodel.Scene) *BrowseNode {
		first, last := sc.FrameSpan()
		sn := &BrowseNode{
			Kind:  "scene",
			Label: fmt.Sprintf("scene %d (%s)", sc.Index, sc.Event),
			Start: first, End: last, Event: sc.Event,
		}
		for _, g := range sc.Groups {
			gf, gl := g.FrameSpan()
			gn := &BrowseNode{
				Kind:  "group",
				Label: fmt.Sprintf("group %d (%s)", g.Index, g.Kind),
				Start: gf, End: gl, Event: sc.Event,
			}
			for _, s := range g.Shots {
				gn.Children = append(gn.Children, &BrowseNode{
					Kind:  "shot",
					Label: fmt.Sprintf("shot %d", s.Index),
					Start: s.Start, End: s.End, Event: sc.Event,
				})
			}
			sn.Children = append(sn.Children, gn)
		}
		return sn
	}
	if len(res.Clusters) > 0 {
		for _, c := range res.Clusters {
			cn := &BrowseNode{
				Kind:  "cluster",
				Label: fmt.Sprintf("clustered scene %d (%d scenes)", c.Index, len(c.Scenes)),
			}
			cn.Start = 1 << 62
			for _, sc := range c.Scenes {
				sn := sceneNode(sc)
				if sn.Start < cn.Start {
					cn.Start = sn.Start
				}
				if sn.End > cn.End {
					cn.End = sn.End
				}
				cn.Children = append(cn.Children, sn)
			}
			root.Children = append(root.Children, cn)
		}
	} else {
		for _, sc := range res.Scenes {
			root.Children = append(root.Children, sceneNode(sc))
		}
	}
	return root, nil
}

func totalFrames(res *core.Result) int {
	if len(res.Video.Frames) > 0 {
		return len(res.Video.Frames)
	}
	if res.Skim != nil {
		return res.Skim.TotalFrames
	}
	return 0
}

// Walk visits the tree depth-first, calling fn with each node and its depth.
func (n *BrowseNode) Walk(fn func(node *BrowseNode, depth int)) {
	var rec func(node *BrowseNode, depth int)
	rec = func(node *BrowseNode, depth int) {
		fn(node, depth)
		for _, c := range node.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
}

// Find returns the deepest node of the given kind containing the frame, or
// nil.
func (n *BrowseNode) Find(frame int, kind string) *BrowseNode {
	var best *BrowseNode
	n.Walk(func(node *BrowseNode, depth int) {
		if node.Kind == kind && frame >= node.Start && frame < node.End {
			best = node
		}
	})
	return best
}

// Render prints the tree as an indented outline (the CLI browser).
func (n *BrowseNode) Render() string {
	var b strings.Builder
	n.Walk(func(node *BrowseNode, depth int) {
		fmt.Fprintf(&b, "%s%s [%d,%d)\n", strings.Repeat("  ", depth), node.Label, node.Start, node.End)
	})
	return b.String()
}
