package summary

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"classminer/internal/core"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

var (
	resOnce sync.Once
	res     *core.Result
	resErr  error
)

func minedResult(t testing.TB) *core.Result {
	t.Helper()
	resOnce.Do(func() {
		rng := rand.New(rand.NewSource(71))
		script := &synth.Script{Name: "summary-test", Scenes: []synth.SceneSpec{
			synth.PresentationScene(rng, 0, 1, 1),
			synth.OperationScene(rng, 1, 2, synth.ContentSurgical, 0),
			synth.DialogScene(rng, 2, 3, 2, 3),
		}}
		v, err := synth.Generate(synth.DefaultConfig(), script, 71)
		if err != nil {
			resErr = err
			return
		}
		a, err := core.NewAnalyzer(core.Options{SkipEvents: true})
		if err != nil {
			resErr = err
			return
		}
		res, resErr = a.Analyze(v)
	})
	if resErr != nil {
		t.Fatal(resErr)
	}
	return res
}

func TestBuildStoryboard(t *testing.T) {
	r := minedResult(t)
	sb, err := BuildStoryboard(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Tiles) != len(r.Scenes) {
		t.Fatalf("tiles = %d, want %d", len(sb.Tiles), len(r.Scenes))
	}
	if sb.Mosaic.W <= 0 || sb.Mosaic.H <= 0 {
		t.Fatal("empty mosaic")
	}
	// Every tile is inside the mosaic and non-black (a real thumbnail).
	for _, tile := range sb.Tiles {
		if tile.X < 0 || tile.Y < 0 || tile.X+sb.ThumbW > sb.Mosaic.W || tile.Y+sb.ThumbH > sb.Mosaic.H {
			t.Fatalf("tile out of bounds: %+v", tile)
		}
		var sum int
		for y := 0; y < sb.ThumbH; y++ {
			for x := 0; x < sb.ThumbW; x++ {
				pr, pg, pb := sb.Mosaic.At(tile.X+x, tile.Y+y)
				sum += int(pr) + int(pg) + int(pb)
			}
		}
		if sum == 0 {
			t.Fatalf("tile for scene %d rendered black", tile.SceneIndex)
		}
	}
}

func TestBuildStoryboardColsClamp(t *testing.T) {
	r := minedResult(t)
	sb, err := BuildStoryboard(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Cols != 4 {
		t.Fatalf("default cols = %d", sb.Cols)
	}
}

func TestBuildStoryboardErrors(t *testing.T) {
	if _, err := BuildStoryboard(nil, 3); err == nil {
		t.Fatal("want nil-result error")
	}
	mediaLess := &core.Result{Video: &vidmodel.Video{Name: "x"}}
	if _, err := BuildStoryboard(mediaLess, 3); err == nil {
		t.Fatal("want media-less error")
	}
}

func TestBuildBrowseTree(t *testing.T) {
	r := minedResult(t)
	root, err := BuildBrowseTree(r)
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind != "video" {
		t.Fatal("root must be the video node")
	}
	counts := map[string]int{}
	root.Walk(func(n *BrowseNode, depth int) {
		counts[n.Kind]++
		if depth > 4 {
			t.Fatal("tree too deep")
		}
	})
	if counts["scene"] != len(r.Scenes) {
		t.Fatalf("scene nodes = %d, want %d", counts["scene"], len(r.Scenes))
	}
	if counts["shot"] == 0 || counts["group"] == 0 {
		t.Fatalf("tree incomplete: %v", counts)
	}
	if len(r.Clusters) > 0 && counts["cluster"] != len(r.Clusters) {
		t.Fatalf("cluster nodes = %d, want %d", counts["cluster"], len(r.Clusters))
	}
}

func TestBrowseFind(t *testing.T) {
	r := minedResult(t)
	root, err := BuildBrowseTree(r)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := r.Scenes[0].FrameSpan()
	if n := root.Find(first, "scene"); n == nil {
		t.Fatal("scene lookup failed")
	}
	if n := root.Find(first, "shot"); n == nil || n.Kind != "shot" {
		t.Fatal("shot lookup failed")
	}
	if n := root.Find(1<<40, "scene"); n != nil {
		t.Fatal("out-of-range frame should find nothing")
	}
}

func TestBrowseRender(t *testing.T) {
	r := minedResult(t)
	root, err := BuildBrowseTree(r)
	if err != nil {
		t.Fatal(err)
	}
	out := root.Render()
	if !strings.Contains(out, "scene 0") || !strings.Contains(out, "shot") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestBrowseTreeWithoutClusters(t *testing.T) {
	r := minedResult(t)
	noClusters := *r
	noClusters.Clusters = nil
	root, err := BuildBrowseTree(&noClusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != len(r.Scenes) {
		t.Fatalf("scenes should hang under root: %d vs %d", len(root.Children), len(r.Scenes))
	}
}
