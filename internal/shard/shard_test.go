package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"classminer"
	"classminer/internal/store"
)

var (
	analyzerOnce sync.Once
	analyzerVal  *classminer.Analyzer
	analyzerErr  error
)

// testAnalyzer trains the (stateless, reusable) analyzer once per test
// binary; every router in this file shares it, exactly as every shard of
// one router shares it in production.
func testAnalyzer(t testing.TB) *classminer.Analyzer {
	t.Helper()
	analyzerOnce.Do(func() {
		analyzerVal, analyzerErr = classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	})
	if analyzerErr != nil {
		t.Fatal(analyzerErr)
	}
	return analyzerVal
}

var admin = classminer.User{Name: "admin", Clearance: classminer.Administrator}

// tinyResult fabricates a small mined result with deterministic
// pseudo-random features, through the same SavedResult decode path a
// journal replay uses (mirrors the root package's recovery fixtures).
func tinyResult(t testing.TB, name string, seed int64, shots int) *classminer.Result {
	t.Helper()
	res, err := store.DecodeResult(tinySaved(name, seed, shots))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func tinySaved(name string, seed int64, shots int) *store.SavedResult {
	rng := rand.New(rand.NewSource(seed))
	sr := &store.SavedResult{
		Version:     store.FormatVersion,
		VideoName:   name,
		FPS:         25,
		TotalFrames: shots * 50,
	}
	feat := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	group := store.SavedGroup{Index: 0}
	for i := 0; i < shots; i++ {
		sr.Shots = append(sr.Shots, store.SavedShot{
			Index: i, Start: i * 50, End: (i+1)*50 - 1, RepFrame: i * 50,
			Color: feat(8), Texture: feat(4),
		})
		group.Shots = append(group.Shots, i)
	}
	group.RepShots = []int{0}
	sr.Groups = []store.SavedGroup{group}
	sr.Scenes = []store.SavedScene{{Index: 0, Groups: []int{0}, RepGroup: 0}}
	return sr
}

func quietWAL() classminer.DurableOptions {
	return classminer.DurableOptions{CheckpointBytes: -1, CheckpointRecords: -1}
}

func fixedQueries(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		out[i] = q
	}
	return out
}

// corpus is a deterministic set of (name, seed, shots) fixtures spread over
// enough distinct names that every shard count under test gets multiple
// owners.
type corpusVideo struct {
	name  string
	seed  int64
	shots int
}

func testCorpus(seed int64, videos int) []corpusVideo {
	out := make([]corpusVideo, 0, videos)
	for i := 0; i < videos; i++ {
		out = append(out, corpusVideo{
			name:  fmt.Sprintf("case-%d-%02d", seed, i),
			seed:  seed*1000 + int64(i),
			shots: 2 + i%3,
		})
	}
	return out
}

func totalShots(c []corpusVideo) int {
	n := 0
	for _, v := range c {
		n += v.shots
	}
	return n
}

// buildRouter registers the corpus on an in-memory router of n shards and
// fits every shard's index.
func buildRouter(t testing.TB, n int, corpus []corpusVideo, subclusterOf func(corpusVideo) string) *Library {
	t.Helper()
	l, err := New(testAnalyzer(t), n)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range corpus {
		sub := "medicine"
		if subclusterOf != nil {
			sub = subclusterOf(v)
		}
		if err := l.AddResult(tinyResult(t, v.name, v.seed, v.shots), sub); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return l
}

func searchAll(t testing.TB, l *Library, u classminer.User, queries [][]float64, k int) [][]classminer.SearchHit {
	t.Helper()
	out := make([][]classminer.SearchHit, len(queries))
	for i, q := range queries {
		hits, _, err := l.Search(u, q, k)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = hits
	}
	return out
}

func mustSameHits(t testing.TB, label string, got, want [][]classminer.SearchHit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: answered %d queries, want %d", label, len(got), len(want))
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("%s query %d: %d hits vs %d", label, qi, len(got[qi]), len(want[qi]))
		}
		for hi := range want[qi] {
			g, w := got[qi][hi], want[qi][hi]
			if g.Entry.VideoName != w.Entry.VideoName || g.Entry.Shot.Index != w.Entry.Shot.Index || g.Dist != w.Dist {
				t.Fatalf("%s query %d hit %d: (%s,%d,%g) vs (%s,%d,%g)", label, qi, hi,
					g.Entry.VideoName, g.Entry.Shot.Index, g.Dist,
					w.Entry.VideoName, w.Entry.Shot.Index, w.Dist)
			}
		}
	}
}

// TestShardIndexDeterministicAndSpread pins the placement function: stable
// per name, in range, and not degenerate (a realistic corpus of names must
// land on more than one shard).
func TestShardIndexDeterministicAndSpread(t *testing.T) {
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("video-%03d", i)
		s := shardIndex(name, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("shardIndex(%q, 4) = %d, out of range", name, s)
		}
		if s != shardIndex(name, 4) {
			t.Fatalf("shardIndex(%q, 4) not deterministic", name)
		}
		used[s] = true
	}
	if len(used) != 4 {
		t.Fatalf("64 names covered only shards %v of 4", used)
	}
}

// TestGoldenEquivalence is the tentpole contract: for the same corpus and
// queries, a sharded router returns byte-identical rankings at every shard
// count. k exceeds the corpus size, which forces every shard's whole-leaf
// candidate fallback — per-shard coverage is complete, so the router's
// exact full-space re-rank with its (dist, name, shot) total order yields
// one canonical ranking regardless of how entries were partitioned.
func TestGoldenEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 2003} {
		corpus := testCorpus(seed, 12+int(seed%5))
		k := totalShots(corpus) + 3
		queries := fixedQueries(8, 12, seed)

		base := buildRouter(t, 1, corpus, nil)
		want := searchAll(t, base, admin, queries, k)
		for qi, hits := range want {
			if len(hits) != totalShots(corpus) {
				t.Fatalf("seed %d query %d: baseline returned %d hits, want the whole corpus (%d)",
					seed, qi, len(hits), totalShots(corpus))
			}
		}

		for n := 2; n <= 4; n++ {
			l := buildRouter(t, n, corpus, nil)
			got := searchAll(t, l, admin, queries, k)
			mustSameHits(t, fmt.Sprintf("seed %d shards %d", seed, n), got, want)
		}
	}
}

// TestGoldenEquivalenceFiltered repeats the golden check under an access
// policy: Protect fans out to every shard, so shard-local ACL filtering
// must leave the merged ranking identical across shard counts.
func TestGoldenEquivalenceFiltered(t *testing.T) {
	corpus := testCorpus(11, 14)
	k := totalShots(corpus) + 1
	queries := fixedQueries(6, 12, 11)
	// Alternate subclusters, then protect one of them.
	subOf := func(v corpusVideo) string {
		if v.seed%2 == 0 {
			return "medicine"
		}
		return "nursing"
	}
	rule := classminer.Rule{Concept: "medicine", MinClearance: classminer.Administrator}
	viewer := classminer.User{Name: "nurse", Clearance: classminer.Clinician}

	build := func(n int) *Library {
		l := buildRouter(t, n, corpus, subOf)
		l.Protect(rule)
		return l
	}
	base := build(1)
	want := searchAll(t, base, viewer, queries, k)
	saw := 0
	for _, hits := range want {
		saw += len(hits)
		for _, h := range hits {
			if !strings.Contains(strings.Join(h.Entry.Path, "/"), "nursing") {
				t.Fatalf("filtered baseline leaked protected hit %s (%v)", h.Entry.VideoName, h.Entry.Path)
			}
		}
	}
	if saw == 0 {
		t.Fatal("filtered baseline saw nothing; fixture lost its teeth")
	}
	for n := 2; n <= 4; n++ {
		got := searchAll(t, build(n), viewer, queries, k)
		mustSameHits(t, fmt.Sprintf("filtered shards %d", n), got, want)
	}
}

// TestMergeTieOrdering plants byte-identical features under different names
// owned by different shards: the merged ranking must break the exact
// distance ties by (video name, shot index) across shard boundaries, same
// as FlatSearch's total order within one library.
func TestMergeTieOrdering(t *testing.T) {
	const n = 4
	// Find one name per shard, then give all of them the same features.
	names := make([]string, 0, n)
	seen := map[int]bool{}
	for i := 0; len(names) < n && i < 1000; i++ {
		name := fmt.Sprintf("twin-%03d", i)
		if s := shardIndex(name, n); !seen[s] {
			seen[s] = true
			names = append(names, name)
		}
	}
	if len(names) < n {
		t.Fatalf("could not find names covering %d shards", n)
	}
	l, err := New(testAnalyzer(t), n)
	if err != nil {
		t.Fatal(err)
	}
	shots := 3
	for _, name := range names {
		if err := l.AddResult(tinyResult(t, name, 42, shots), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	for _, q := range fixedQueries(4, 12, 42) {
		hits, _, err := l.Search(admin, q, n*shots)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != n*shots {
			t.Fatalf("got %d hits, want %d", len(hits), n*shots)
		}
		for i := 1; i < len(hits); i++ {
			a, b := hits[i-1], hits[i]
			switch {
			case a.Dist < b.Dist:
			case a.Dist > b.Dist:
				t.Fatalf("hit %d: distance order violated (%g then %g)", i, a.Dist, b.Dist)
			case a.Entry.VideoName < b.Entry.VideoName:
			case a.Entry.VideoName > b.Entry.VideoName:
				t.Fatalf("hit %d: name tie-break violated (%s then %s at dist %g)",
					i, a.Entry.VideoName, b.Entry.VideoName, a.Dist)
			case a.Entry.Shot.Index >= b.Entry.Shot.Index:
				t.Fatalf("hit %d: shot tie-break violated (%s shot %d then %d)",
					i, a.Entry.VideoName, a.Entry.Shot.Index, b.Entry.Shot.Index)
			}
		}
		// The four clones tie exactly; each distance run must list them in
		// name order.
		for i := 1; i < len(hits); i++ {
			if hits[i].Dist == hits[i-1].Dist && hits[i].Entry.Shot.Index == hits[i-1].Entry.Shot.Index &&
				hits[i].Entry.VideoName <= hits[i-1].Entry.VideoName {
				t.Fatalf("tied run out of name order: %s before %s",
					hits[i-1].Entry.VideoName, hits[i].Entry.VideoName)
			}
		}
	}
}

// TestShardedRecoverEquivalence drives a durable sharded router through
// registrations, a replace and a delete, kills it without any shutdown
// save, and requires the reopened router (shard count read back from the
// SHARDS manifest) to answer exactly like an in-memory reference.
func TestShardedRecoverEquivalence(t *testing.T) {
	a := testAnalyzer(t)
	dir := t.TempDir()
	corpus := testCorpus(5, 12)
	k := totalShots(corpus) + 3
	queries := fixedQueries(6, 12, 5)

	l, err := Recover(dir, 4, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(op func(*Library) error) {
		t.Helper()
		if err := op(l); err != nil {
			t.Fatal(err)
		}
		if err := op(ref); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range corpus {
		v := v
		apply(func(x *Library) error { return x.AddResult(tinyResult(t, v.name, v.seed, v.shots), "medicine") })
	}
	apply(func(x *Library) error { return x.DeleteVideo(corpus[3].name) })
	apply(func(x *Library) error {
		return x.ReplaceResultAsCtx(context.Background(), admin, tinyResult(t, corpus[5].name, 999, 4), "medicine")
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Layout: parent holds the SHARDS manifest plus one subdir per shard,
	// each a full single-shard data dir (lock file + its own WAL).
	if n, err := Count(dir); err != nil || n != 4 {
		t.Fatalf("Count(%s) = %d, %v; want 4", dir, n, err)
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(ShardDir(dir, i), "LOCK")); err != nil {
			t.Fatalf("shard %d has no data dir lock: %v", i, err)
		}
		segs, _ := filepath.Glob(filepath.Join(ShardDir(dir, i), "wal-*.log"))
		if len(segs) == 0 {
			t.Fatalf("shard %d has no WAL segments", i)
		}
	}

	// n <= 0 means "use the recorded shard count".
	rec, err := Recover(dir, 0, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.ShardCount() != 4 {
		t.Fatalf("recovered %d shards, want 4", rec.ShardCount())
	}
	if err := rec.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := ref.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	mustSameHits(t, "recovered", searchAll(t, rec, admin, queries, k), searchAll(t, ref, admin, queries, k))

	st := rec.Stats()
	if st.Videos != len(corpus)-1 {
		t.Fatalf("recovered %d videos, want %d", st.Videos, len(corpus)-1)
	}
}

// TestRecoverShardCountPinned: reopening with a different -shards is an
// error (resharding is a migration, not a flag change), and a legacy
// single-shard dir is refused outright.
func TestRecoverShardCountPinned(t *testing.T) {
	a := testAnalyzer(t)
	dir := t.TempDir()
	l, err := Recover(dir, 3, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, 2, a, quietWAL()); err == nil {
		t.Fatal("reopening a 3-shard dir with n=2 succeeded; want an error")
	}

	legacy := t.TempDir()
	pl, err := classminer.Recover(legacy, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(legacy, 4, a, quietWAL()); err == nil {
		t.Fatal("sharding over a legacy single-shard dir succeeded; want an error")
	}
}

// TestStatsAggregation: the router's Stats must sum counters across shards,
// take the worst staleness, aggregate the WAL block (sum counters, min
// generation) and carry a per-shard breakdown — the /v1/stats payload.
func TestStatsAggregation(t *testing.T) {
	a := testAnalyzer(t)
	dir := t.TempDir()
	l, err := Recover(dir, 3, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	corpus := testCorpus(21, 9)
	for _, v := range corpus {
		if err := l.AddResult(tinyResult(t, v.name, v.seed, v.shots), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	st := l.Stats()
	if len(st.Shards) != 3 {
		t.Fatalf("Stats carries %d shard blocks, want 3", len(st.Shards))
	}
	var videos, shots int
	var gen, walRecords, walSyncs int64
	for i, ss := range st.Shards {
		if ss.Shard != i {
			t.Fatalf("shard block %d labeled %d", i, ss.Shard)
		}
		videos += ss.Videos
		shots += ss.Shots
		gen += ss.Generation
		if ss.WAL == nil {
			t.Fatalf("shard %d missing WAL stats on a durable library", i)
		}
		walRecords += ss.WAL.Records
		walSyncs += ss.WAL.Syncs
	}
	if videos != len(corpus) || st.Videos != videos {
		t.Fatalf("videos: aggregate %d, sum %d, want %d", st.Videos, videos, len(corpus))
	}
	if st.Shots != shots || shots != totalShots(corpus) {
		t.Fatalf("shots: aggregate %d, sum %d, want %d", st.Shots, shots, totalShots(corpus))
	}
	if st.Generation != gen {
		t.Fatalf("generation: aggregate %d, sum of shards %d", st.Generation, gen)
	}
	if st.WAL == nil {
		t.Fatal("aggregate WAL block missing on a durable library")
	}
	if st.WAL.Records != walRecords || walRecords != int64(len(corpus)) {
		t.Fatalf("wal records: aggregate %d, sum %d, want %d", st.WAL.Records, walRecords, len(corpus))
	}
	if st.WAL.Syncs != walSyncs {
		t.Fatalf("wal syncs: aggregate %d, sum %d", st.WAL.Syncs, walSyncs)
	}
	if g := l.Generation(); g != gen {
		t.Fatalf("Generation() = %d, want shard sum %d", g, gen)
	}
	// Every shard of a spread-out corpus should own something; the fixture
	// names are chosen to cover all three shards.
	for i, ss := range st.Shards {
		if ss.Videos == 0 {
			t.Fatalf("shard %d owns no videos; fixture names degenerate", i)
		}
	}
}

// TestSaveMergeShardInvariant: Save must write one merged, name-sorted
// snapshot whose bytes do not depend on the shard count, and
// ImportSnapshot must route it back across shards.
func TestSaveMergeShardInvariant(t *testing.T) {
	corpus := testCorpus(31, 10)
	one := buildRouter(t, 1, corpus, nil)
	four := buildRouter(t, 4, corpus, nil)

	var a, b bytes.Buffer
	if err := one.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := four.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("Save bytes differ between 1 shard (%d bytes) and 4 shards (%d bytes)", a.Len(), b.Len())
	}

	imported, err := New(testAnalyzer(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	n, err := imported.ImportSnapshot(&b, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(corpus) {
		t.Fatalf("imported %d videos, want %d", n, len(corpus))
	}
	if err := imported.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	k := totalShots(corpus) + 1
	queries := fixedQueries(4, 12, 31)
	mustSameHits(t, "imported", searchAll(t, imported, admin, queries, k), searchAll(t, one, admin, queries, k))
}

// TestConcurrentMutateWhileSearch hammers one router from searchers,
// mutators and an index rebuilder at once; run under -race this is the
// scatter-gather path's data-race gate. One pinned video per shard keeps
// every shard non-empty so searches never hit the all-empty error.
func TestConcurrentMutateWhileSearch(t *testing.T) {
	const n = 3
	l, err := New(testAnalyzer(t), n)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	pins := 0
	for i := 0; i < 1000 && pins < n; i++ {
		name := fmt.Sprintf("pin-%03d", i)
		if s := shardIndex(name, n); !seen[s] {
			seen[s] = true
			pins++
			if err := l.AddResult(tinyResult(t, name, int64(i), 3), "medicine"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	const iters = 120
	queries := fixedQueries(4, 12, 77)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(w+i)%len(queries)]
				if _, _, err := l.Search(admin, q, 5); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("churn-%03d", i%20)
			switch {
			case i%5 == 4:
				// Deletes may race another delete of the same name.
				_ = l.DeleteVideo(name)
			default:
				err := l.AddResult(tinyResult(t, name, int64(i), 2), "medicine")
				if err != nil && !errors.Is(err, classminer.ErrDuplicateVideo) {
					t.Errorf("add %s: %v", name, err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			if err := l.BuildIndex(); err != nil {
				t.Errorf("rebuild: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if err := l.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	hits, _, err := l.Search(admin, queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits after churn")
	}
}

// TestSearchBatchMatchesSingleQueries: the batch path must agree with the
// one-at-a-time scatter-gather path query by query.
func TestSearchBatchMatchesSingleQueries(t *testing.T) {
	corpus := testCorpus(41, 11)
	l := buildRouter(t, 3, corpus, nil)
	k := totalShots(corpus) + 1
	queries := fixedQueries(5, 12, 41)

	batch, _, err := l.SearchBatch(admin, queries, k)
	if err != nil {
		t.Fatal(err)
	}
	mustSameHits(t, "batch", batch, searchAll(t, l, admin, queries, k))
}

// TestEmptyRouterSearchError: an entirely empty router mirrors the single
// library's "index not built" contract.
func TestEmptyRouterSearchError(t *testing.T) {
	l, err := New(testAnalyzer(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Search(admin, make([]float64, 12), 5); err == nil {
		t.Fatal("search on an empty router succeeded; want the index-not-built error")
	}
	if err := l.BuildIndex(); err == nil {
		t.Fatal("BuildIndex on an empty router succeeded; want the no-videos error")
	}
}
