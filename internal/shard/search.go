package shard

// Scatter-gather search. Each non-empty shard ranks its own top-k on a
// goroutine (per-shard hit buffers are pooled), then the router merges with
// an exact full-space re-rank: per-shard Dist values live in each shard's
// own reduced space and cannot be compared across shards, so MergeHits
// recomputes the true distance per candidate and orders by the
// (distance, video name, shot index) total order. The merged ranking — and
// therefore the bytes /v1/search returns — is deterministic and identical
// for every shard count whenever per-shard candidate coverage is complete
// (k at least the largest shard's size forces the index's whole-leaf
// fallback; the golden-equivalence tests pin this).

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"classminer"
	"classminer/internal/index"
)

// hitsPool recycles per-shard result buffers across searches.
var hitsPool = sync.Pool{
	New: func() any {
		s := make([]classminer.SearchHit, 0, 64)
		return &s
	},
}

// Search ranks the k nearest shots across all shards as the given user.
func (l *Library) Search(u classminer.User, query []float64, k int) ([]classminer.SearchHit, classminer.SearchStats, error) {
	return l.SearchInto(nil, u, query, k)
}

// SearchInto is Search reusing dst's backing array for the merged hits.
func (l *Library) SearchInto(dst []classminer.SearchHit, u classminer.User, query []float64, k int) ([]classminer.SearchHit, classminer.SearchStats, error) {
	return l.SearchIntoCtx(context.Background(), dst, u, query, k)
}

// SearchIntoCtx fans the query across every non-empty shard concurrently
// and merges the per-shard top-k into dst. Stats sum the per-shard index
// work plus the router's exact re-rank (one full-space distance per
// candidate). Shard ACL filtering applies before the merge, so a user only
// ever ranks what they may see.
func (l *Library) SearchIntoCtx(ctx context.Context, dst []classminer.SearchHit, u classminer.User, query []float64, k int) ([]classminer.SearchHit, classminer.SearchStats, error) {
	type shardOut struct {
		buf  *[]classminer.SearchHit
		hits []classminer.SearchHit
		st   classminer.SearchStats
		err  error
		ran  bool
	}
	outs := make([]shardOut, len(l.shards))
	var wg sync.WaitGroup
	for i, sh := range l.shards {
		if sh.Size() == 0 {
			continue
		}
		outs[i].ran = true
		wg.Add(1)
		go func(o *shardOut, sh Shard) {
			defer wg.Done()
			o.buf = hitsPool.Get().(*[]classminer.SearchHit)
			o.hits, o.st, o.err = sh.SearchIntoCtx(ctx, (*o.buf)[:0], u, query, k)
		}(&outs[i], sh)
	}
	wg.Wait()

	var (
		stats classminer.SearchStats
		lists [][]classminer.SearchHit
		errs  []error
		ran   bool
	)
	for i := range outs {
		o := &outs[i]
		if !o.ran {
			continue
		}
		ran = true
		if o.err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, o.err))
			continue
		}
		stats.DistanceOps += o.st.DistanceOps
		stats.FloatOps += o.st.FloatOps
		stats.Candidates += o.st.Candidates
		lists = append(lists, o.hits)
	}
	release := func() {
		for i := range outs {
			if o := &outs[i]; o.buf != nil {
				// Keep any growth the shard search did.
				if o.hits != nil {
					*o.buf = o.hits[:0]
				}
				hitsPool.Put(o.buf)
			}
		}
	}
	if !ran {
		release()
		return nil, classminer.SearchStats{}, fmt.Errorf("classminer: index not built (call BuildIndex)")
	}
	if len(errs) > 0 {
		release()
		return nil, stats, errors.Join(errs...)
	}
	mc := index.MergeCost(lists, len(query))
	stats.DistanceOps += mc.DistanceOps
	stats.FloatOps += mc.FloatOps
	merged := index.MergeHits(dst, query, lists, k)
	release()
	return merged, stats, nil
}

// SearchBatch runs many queries, fanning whole batches to each shard (the
// shard-level batch path parallelizes internally) and merging per query.
func (l *Library) SearchBatch(u classminer.User, queries [][]float64, k int) ([][]classminer.SearchHit, []classminer.SearchStats, error) {
	type shardOut struct {
		hits [][]classminer.SearchHit
		st   []classminer.SearchStats
		err  error
		ran  bool
	}
	outs := make([]shardOut, len(l.shards))
	var wg sync.WaitGroup
	for i, sh := range l.shards {
		if sh.Size() == 0 {
			continue
		}
		outs[i].ran = true
		wg.Add(1)
		go func(o *shardOut, sh Shard) {
			defer wg.Done()
			o.hits, o.st, o.err = sh.SearchBatch(u, queries, k)
		}(&outs[i], sh)
	}
	wg.Wait()

	var errs []error
	ran := false
	for i := range outs {
		if !outs[i].ran {
			continue
		}
		ran = true
		if outs[i].err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, outs[i].err))
		}
	}
	if !ran {
		return nil, nil, fmt.Errorf("classminer: index not built (call BuildIndex)")
	}
	if len(errs) > 0 {
		return nil, nil, errors.Join(errs...)
	}

	hits := make([][]classminer.SearchHit, len(queries))
	stats := make([]classminer.SearchStats, len(queries))
	lists := make([][]classminer.SearchHit, 0, len(l.shards))
	for q := range queries {
		lists = lists[:0]
		for i := range outs {
			if !outs[i].ran {
				continue
			}
			lists = append(lists, outs[i].hits[q])
			stats[q].DistanceOps += outs[i].st[q].DistanceOps
			stats[q].FloatOps += outs[i].st[q].FloatOps
			stats[q].Candidates += outs[i].st[q].Candidates
		}
		mc := index.MergeCost(lists, len(queries[q]))
		stats[q].DistanceOps += mc.DistanceOps
		stats[q].FloatOps += mc.FloatOps
		hits[q] = index.MergeHits(nil, queries[q], lists, k)
	}
	return hits, stats, nil
}
