package shard

// Sharded counterparts of the root package's durable-ingest and recovery
// benchmarks, parameterized by shard count so BENCH_*.json can compare
// N=1 vs N=4 directly: independent per-shard WALs let concurrent writers
// overlap their group commits (fsyncs to different files proceed in
// parallel) and recovery replays shards concurrently.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"classminer"
)

func durableBenchRouter(b *testing.B, n int) *Library {
	b.Helper()
	opts := quietWAL()
	opts.Sync = classminer.SyncAlways
	opts.SegmentBytes = 64 << 20
	l, err := Recover(b.TempDir(), n, testAnalyzer(b), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	return l
}

func benchResults(b *testing.B, prefix string, count int) []*classminer.Result {
	b.Helper()
	out := make([]*classminer.Result, count)
	for i := range out {
		out[i] = tinyResult(b, fmt.Sprintf("%s-%08d", prefix, i), int64(i), 2)
	}
	return out
}

// BenchmarkShardedDurableIngestParallel: 8 writers registering pre-mined
// results through the router with fsync-always WALs. records/fsync shows
// group commit still batching per shard.
func BenchmarkShardedDurableIngestParallel(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			l := durableBenchRouter(b, n)
			results := benchResults(b, "bench", b.N)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						if err := l.AddResult(results[i], "medicine"); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if ws, ok := l.WALStats(); ok && ws.Syncs > 0 {
				b.ReportMetric(float64(ws.Records)/float64(ws.Syncs), "records/fsync")
			}
		})
	}
}

// BenchmarkShardedRecover10k boots a 10k-record sharded data dir from
// cold, the recovery-time half of the N=1 vs N=4 comparison.
func BenchmarkShardedRecover10k(b *testing.B) {
	const records = 10_000
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			opts := quietWAL()
			opts.Sync = classminer.SyncNever
			opts.SegmentBytes = 64 << 20
			dir := b.TempDir()
			l, err := Recover(dir, n, testAnalyzer(b), opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range benchResults(b, "rec", records) {
				if err := l.AddResult(res, "medicine"); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rl, err := Recover(dir, n, testAnalyzer(b), opts)
				if err != nil {
					b.Fatal(err)
				}
				if v := rl.Stats().Videos; v != records {
					b.Fatalf("recovered %d videos, want %d", v, records)
				}
				if err := rl.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
