// Package shard partitions a video library into N independent shards — each
// with its own WAL engine, feature matrix, incremental index and rebuild
// bookkeeping — behind a router that keeps the single-library API. Mutations
// route to exactly one shard by a deterministic hash of the video name
// (content-based placement: the same name always lands on the same shard, so
// duplicate detection and replacement stay shard-local), and searches
// scatter-gather: every non-empty shard ranks its own top-k and the router
// merges with an exact full-space re-rank (internal/index.MergeHits) whose
// (distance, video name, shot index) total order makes results deterministic
// and independent of the shard count.
//
// Every per-library cost — group commit, checkpoint, compaction, index
// rebuild, lock contention — becomes per-shard and therefore parallel.
// Subcluster and ACL policy is replicated to all shards (Protect fans out),
// so per-shard search filtering applies exactly the rules the router holds.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"classminer"
	"classminer/internal/metrics"
	"classminer/internal/store"
	"classminer/internal/wal"
)

// Shard is the narrow storage/index/search contract the router addresses.
// *classminer.Library satisfies it; the router never reaches past it.
type Shard interface {
	// Mutations (each routed to exactly one shard).
	AddVideoCtx(ctx context.Context, v *classminer.Video, subcluster string) (*classminer.Result, error)
	AddResultCtx(ctx context.Context, res *classminer.Result, subcluster string) error
	ReplaceResultAsCtx(ctx context.Context, u classminer.User, res *classminer.Result, subcluster string) error
	ReplaceVideoAsCtx(ctx context.Context, u classminer.User, v *classminer.Video, subcluster string) (*classminer.Result, error)
	DeleteVideo(name string) error
	DeleteVideoAsCtx(ctx context.Context, u classminer.User, name string) error

	// Policy (replicated to every shard).
	Protect(r classminer.Rule)
	Allowed(u classminer.User, path []string) bool
	HasSubcluster(name string) bool
	ConceptPath(name string) []string

	// Index lifecycle (fanned out).
	BuildIndexCtx(ctx context.Context) error
	RebuildNeeded(budget float64) bool
	IndexStale() bool
	IndexStaleness() float64

	// Reads.
	Generation() int64
	Stats() classminer.LibraryStats
	Video(name string) *classminer.VideoEntry
	VideoNames() []string
	Size() int
	SearchIntoCtx(ctx context.Context, dst []classminer.SearchHit, u classminer.User, query []float64, k int) ([]classminer.SearchHit, classminer.SearchStats, error)
	SearchBatch(u classminer.User, queries [][]float64, k int) ([][]classminer.SearchHit, []classminer.SearchStats, error)
	ScenesByEvent(u classminer.User, kind classminer.EventKind) []classminer.SceneRef

	// Durability (fanned out; each shard owns one WAL engine).
	Save(w io.Writer) error
	Durable() bool
	Checkpoint() error
	Compact() (classminer.CompactStats, error)
	WALStats() (classminer.WALStats, bool)

	// Replication (per shard: the leader ships each shard's log as its own
	// stream, and a follower applies each stream to the matching shard).
	Engine() *wal.Engine
	ApplyRecord(ctx context.Context, rec *wal.Record) error
	ReseedFromSnapshot(ctx context.Context, r io.Reader) (installed, removed int, err error)

	Instrument(reg *metrics.Registry)
	Close() error
}

var _ Shard = (*classminer.Library)(nil)

// Library routes the single-library API across N shards. It satisfies the
// same serving contract as *classminer.Library (internal/server.Library),
// so the daemon and server are indifferent to the shard count.
type Library struct {
	shards []Shard
}

// New creates an in-memory (non-durable) sharded library.
func New(a *classminer.Analyzer, n int) (*Library, error) {
	if err := checkShardCount(n); err != nil {
		return nil, err
	}
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = classminer.NewLibrary(a)
	}
	return &Library{shards: shards}, nil
}

// ShardCount reports how many shards the router owns.
func (l *Library) ShardCount() int { return len(l.shards) }

// ShardAt exposes shard i directly. Replication addresses shards by index —
// the leader's shard i stream applies to the follower's shard i, because
// content-based placement makes the partitioning identical on both sides.
func (l *Library) ShardAt(i int) Shard { return l.shards[i] }

// Engines returns every shard's WAL engine, indexed by shard (nil entries
// when the library is not durable). The replication hub ships one stream
// per engine.
func (l *Library) Engines() []*wal.Engine {
	engines := make([]*wal.Engine, len(l.shards))
	for i, sh := range l.shards {
		engines[i] = sh.Engine()
	}
	return engines
}

// maxShards bounds the shard count to something a single node can own;
// beyond it a flag typo is far more likely than a real deployment.
const maxShards = 256

func checkShardCount(n int) error {
	if n < 1 || n > maxShards {
		return fmt.Errorf("shard: shard count %d out of range [1,%d]", n, maxShards)
	}
	return nil
}

// manifestName is the parent-dir file that pins a sharded data dir's shard
// count. Its presence is what distinguishes a sharded layout (shard-<i>/
// subdirectories) from a legacy single-shard dir (MANIFEST at top level).
const manifestName = "SHARDS"

type shardsManifest struct {
	Shards int `json:"shards"`
}

// Count reports the shard count recorded in dir's SHARDS manifest, or 0
// when the directory is not a sharded data dir (including when it does not
// exist yet). The daemon uses it to pick the recovery path before opening
// anything.
func Count(dir string) (int, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var m shardsManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, fmt.Errorf("shard: corrupt %s manifest in %s: %w", manifestName, dir, err)
	}
	if err := checkShardCount(m.Shards); err != nil {
		return 0, fmt.Errorf("shard: corrupt %s manifest in %s: %w", manifestName, dir, err)
	}
	return m.Shards, nil
}

// legacySingleShardDir reports whether dir already holds a single-shard
// WAL layout at its top level (MANIFEST appears only after the first
// checkpoint, so the lock file and log segments count too).
func legacySingleShardDir(dir string) bool {
	for _, name := range []string{"MANIFEST", "LOCK"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	return len(segs) > 0
}

func writeManifest(dir string, n int) error {
	return store.WriteFileAtomic(filepath.Join(dir, manifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(shardsManifest{Shards: n})
	})
}

// ShardDir returns the data subdirectory of shard i under parent dir.
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, "shard-"+strconv.Itoa(i))
}

// Recover opens (or creates) a sharded durable library under dir: one
// shard-<i>/ subdirectory per shard, each a full classminer data dir with
// its own MANIFEST, lock, snapshots and log segments, booted in parallel.
// The shard count is pinned at creation by the SHARDS manifest; n must
// match it on reopen (n <= 0 means "use the recorded count"). A legacy
// single-shard data dir (top-level MANIFEST) is refused — recover it with
// the plain classminer.Recover path instead.
func Recover(dir string, n int, a *classminer.Analyzer, opts classminer.DurableOptions) (*Library, error) {
	persisted, err := Count(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case persisted > 0 && n > 0 && n != persisted:
		return nil, fmt.Errorf("shard: data dir %s holds %d shards but %d were requested (the shard count is fixed when the dir is created)", dir, persisted, n)
	case persisted > 0:
		n = persisted
	default:
		if err := checkShardCount(n); err != nil {
			return nil, err
		}
		if legacySingleShardDir(dir) {
			return nil, fmt.Errorf("shard: %s is a legacy single-shard data dir (top-level WAL files); recover it with a single-shard library instead of -shards %d", dir, n)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := writeManifest(dir, n); err != nil {
			return nil, err
		}
	}

	shards := make([]Shard, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opts
			if logf := opts.Logf; logf != nil {
				prefix := "shard-" + strconv.Itoa(i) + ": "
				o.Logf = func(format string, args ...any) { logf(prefix+format, args...) }
			}
			lib, err := classminer.Recover(ShardDir(dir, i), a, o)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			shards[i] = lib
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, sh := range shards {
			if sh != nil {
				sh.Close()
			}
		}
		return nil, err
	}
	l := &Library{shards: shards}
	if opts.Metrics != nil {
		l.instrumentWAL(opts.Metrics)
	}
	return l, nil
}

// fnv32Offset/fnv32Prime: FNV-1a, inlined so routing never allocates.
const (
	fnv32Offset = 2166136261
	fnv32Prime  = 16777619
)

// shardIndex is the content-based placement function: FNV-1a over the video
// name, modulo the shard count. Deterministic, so the same name always
// routes to the same shard across processes and restarts.
func shardIndex(name string, n int) int {
	h := uint32(fnv32Offset)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= fnv32Prime
	}
	return int(h % uint32(n))
}

// owner returns the shard responsible for the named video.
func (l *Library) owner(name string) Shard {
	return l.shards[shardIndex(name, len(l.shards))]
}

// Owner exposes the placement decision for tests and tooling.
func (l *Library) Owner(name string) int { return shardIndex(name, len(l.shards)) }

// ---- Mutations: route to exactly one shard's WAL. ----

// AddVideo mines and registers a video on its owning shard.
func (l *Library) AddVideo(v *classminer.Video, subcluster string) (*classminer.Result, error) {
	return l.AddVideoCtx(context.Background(), v, subcluster)
}

// AddVideoCtx mines and registers a video on its owning shard.
func (l *Library) AddVideoCtx(ctx context.Context, v *classminer.Video, subcluster string) (*classminer.Result, error) {
	if v == nil {
		return nil, fmt.Errorf("classminer: nil video")
	}
	return l.owner(v.Name).AddVideoCtx(ctx, v, subcluster)
}

// AddResult registers a pre-mined result on its owning shard.
func (l *Library) AddResult(res *classminer.Result, subcluster string) error {
	return l.AddResultCtx(context.Background(), res, subcluster)
}

// AddResultCtx registers a pre-mined result on its owning shard.
func (l *Library) AddResultCtx(ctx context.Context, res *classminer.Result, subcluster string) error {
	if res == nil || res.Video == nil {
		return fmt.Errorf("classminer: nil result")
	}
	return l.owner(res.Video.Name).AddResultCtx(ctx, res, subcluster)
}

// ReplaceResultAsCtx replaces a registration on its owning shard.
func (l *Library) ReplaceResultAsCtx(ctx context.Context, u classminer.User, res *classminer.Result, subcluster string) error {
	if res == nil || res.Video == nil {
		return fmt.Errorf("classminer: nil result")
	}
	return l.owner(res.Video.Name).ReplaceResultAsCtx(ctx, u, res, subcluster)
}

// ReplaceVideoAsCtx re-mines and replaces a video on its owning shard.
func (l *Library) ReplaceVideoAsCtx(ctx context.Context, u classminer.User, v *classminer.Video, subcluster string) (*classminer.Result, error) {
	if v == nil {
		return nil, fmt.Errorf("classminer: nil video")
	}
	return l.owner(v.Name).ReplaceVideoAsCtx(ctx, u, v, subcluster)
}

// DeleteVideo unregisters a video from its owning shard.
func (l *Library) DeleteVideo(name string) error {
	return l.owner(name).DeleteVideo(name)
}

// DeleteVideoAsCtx unregisters a video from its owning shard, policy-checked.
func (l *Library) DeleteVideoAsCtx(ctx context.Context, u classminer.User, name string) error {
	return l.owner(name).DeleteVideoAsCtx(ctx, u, name)
}

// ---- Policy: replicated so shard-local filtering equals router intent. ----

// Protect adds an access rule to every shard, keeping per-shard search
// filtering identical to what a single library would enforce.
func (l *Library) Protect(r classminer.Rule) {
	for _, sh := range l.shards {
		sh.Protect(r)
	}
}

// Allowed delegates to shard 0; policy is identical on every shard.
func (l *Library) Allowed(u classminer.User, path []string) bool {
	return l.shards[0].Allowed(u, path)
}

// HasSubcluster delegates to shard 0 (the hierarchy is shared and static).
func (l *Library) HasSubcluster(name string) bool { return l.shards[0].HasSubcluster(name) }

// ConceptPath delegates to shard 0 (the hierarchy is shared and static).
func (l *Library) ConceptPath(name string) []string { return l.shards[0].ConceptPath(name) }

// ---- Index lifecycle: fan out. ----

// BuildIndex fits every non-empty shard's index.
func (l *Library) BuildIndex() error { return l.BuildIndexCtx(context.Background()) }

// BuildIndexCtx fits every non-empty shard's index in parallel. Matching
// the single-library contract, an entirely empty library is an error.
func (l *Library) BuildIndexCtx(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(l.shards))
	built := false
	for i, sh := range l.shards {
		if sh.Size() == 0 {
			continue
		}
		built = true
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			if err := sh.BuildIndexCtx(ctx); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, sh)
	}
	wg.Wait()
	if !built {
		return fmt.Errorf("classminer: no videos registered")
	}
	return errors.Join(errs...)
}

// RebuildNeeded reports whether any non-empty shard's overlay exceeds the
// budget; the server's debounced rebuilder treats the router as one unit
// and BuildIndexCtx refits only the shards that drifted past staleness 0.
func (l *Library) RebuildNeeded(budget float64) bool {
	for _, sh := range l.shards {
		if sh.Size() > 0 && sh.RebuildNeeded(budget) {
			return true
		}
	}
	return false
}

// IndexStale reports whether any non-empty shard serves a stale index (an
// entirely empty library is stale, matching the single-library contract).
func (l *Library) IndexStale() bool {
	empty := true
	for _, sh := range l.shards {
		if sh.Size() == 0 {
			continue
		}
		empty = false
		if sh.IndexStale() {
			return true
		}
	}
	return empty
}

// IndexStaleness is the worst (max) overlay fraction across shards.
func (l *Library) IndexStaleness() float64 {
	var max float64
	for _, sh := range l.shards {
		if s := sh.IndexStaleness(); s > max {
			max = s
		}
	}
	return max
}

// ---- Reads and aggregation. ----

// Generation sums the shard generations: any mutation anywhere advances it,
// so generation-keyed caches invalidate exactly as with one library.
func (l *Library) Generation() int64 {
	var g int64
	for _, sh := range l.shards {
		g += sh.Generation()
	}
	return g
}

// Stats aggregates across shards — counters summed, staleness is the max
// (worst shard) — and carries the per-shard breakdown in Shards. The WAL
// block sums every counter (total replay cost) and reports the minimum
// checkpoint generation (the weakest shard's durability progress).
func (l *Library) Stats() classminer.LibraryStats {
	var agg classminer.LibraryStats
	var wal classminer.WALStats
	durable := true
	agg.Shards = make([]classminer.ShardStats, 0, len(l.shards))
	for i, sh := range l.shards {
		st := sh.Stats()
		agg.Videos += st.Videos
		agg.Shots += st.Shots
		agg.IndexedShots += st.IndexedShots
		if st.Shots > 0 && st.IndexStale {
			agg.IndexStale = true
		}
		if st.IndexStaleness > agg.IndexStaleness {
			agg.IndexStaleness = st.IndexStaleness
		}
		agg.Generation += st.Generation
		if st.WAL == nil {
			durable = false
		} else {
			wal.Records += st.WAL.Records
			wal.Bytes += st.WAL.Bytes
			wal.DeadRecords += st.WAL.DeadRecords
			wal.DeadBytes += st.WAL.DeadBytes
			wal.LiveRecords += st.WAL.LiveRecords
			wal.Segments += st.WAL.Segments
			wal.Syncs += st.WAL.Syncs
			if i == 0 || st.WAL.Generation < wal.Generation {
				wal.Generation = st.WAL.Generation
			}
		}
		agg.Shards = append(agg.Shards, classminer.ShardStats{Shard: i, LibraryStats: st})
	}
	if agg.Shots == 0 {
		agg.IndexStale = true
	}
	if durable {
		agg.WAL = &wal
	}
	return agg
}

// Video returns a registered video's entry from its owning shard, or nil.
func (l *Library) Video(name string) *classminer.VideoEntry {
	return l.owner(name).Video(name)
}

// VideoNames returns every registered name across shards, sorted.
func (l *Library) VideoNames() []string {
	var names []string
	for _, sh := range l.shards {
		names = append(names, sh.VideoNames()...)
	}
	sort.Strings(names)
	return names
}

// Size is the total number of indexable shots across shards.
func (l *Library) Size() int {
	n := 0
	for _, sh := range l.shards {
		n += sh.Size()
	}
	return n
}

// ScenesByEvent concatenates every shard's allowed scenes of the category.
func (l *Library) ScenesByEvent(u classminer.User, kind classminer.EventKind) []classminer.SceneRef {
	var out []classminer.SceneRef
	for _, sh := range l.shards {
		out = append(out, sh.ScenesByEvent(u, kind)...)
	}
	return out
}

// ---- Durability: fan out; each shard owns an independent WAL. ----

// Save writes one merged snapshot of every shard, sorted by video name so
// the bytes are independent of the shard count. Each shard's Save settles
// its own pending group commits first, exactly as a single library would.
func (l *Library) Save(w io.Writer) error {
	var entries []store.SavedLibraryEntry
	for i, sh := range l.shards {
		var buf bytes.Buffer
		if err := sh.Save(&buf); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		sl, err := store.ReadLibrary(&buf)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		entries = append(entries, sl.Videos...)
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Result.VideoName < entries[j].Result.VideoName
	})
	return store.WriteLibrary(w, entries)
}

// ImportSnapshot reads a merged snapshot and routes every video to its
// owning shard, returning how many were imported.
func (l *Library) ImportSnapshot(r io.Reader, skipExisting bool) (int, error) {
	saved, err := store.ReadLibrary(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sv := range saved.Videos {
		res, err := store.DecodeResult(sv.Result)
		if err != nil {
			return n, err
		}
		sh := l.owner(res.Video.Name)
		if skipExisting && sh.Video(res.Video.Name) != nil {
			continue
		}
		if err := sh.AddResultCtx(context.Background(), res, sv.Subcluster); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Durable reports whether the shards write-ahead log registrations; shards
// are homogeneous by construction, so shard 0 answers for all.
func (l *Library) Durable() bool { return l.shards[0].Durable() }

// Checkpoint snapshots every shard in parallel.
func (l *Library) Checkpoint() error {
	var wg sync.WaitGroup
	errs := make([]error, len(l.shards))
	for i, sh := range l.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			if err := sh.Checkpoint(); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Compact compacts every shard's sealed segments, summing what was
// reclaimed.
func (l *Library) Compact() (classminer.CompactStats, error) {
	var total classminer.CompactStats
	var errs []error
	for i, sh := range l.shards {
		cs, err := sh.Compact()
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			continue
		}
		total.SegmentsScanned += cs.SegmentsScanned
		total.SegmentsCompacted += cs.SegmentsCompacted
		total.SegmentsRemoved += cs.SegmentsRemoved
		total.RecordsDropped += cs.RecordsDropped
		total.BytesFreed += cs.BytesFreed
	}
	return total, errors.Join(errs...)
}

// WALStats aggregates the per-shard logs (same discipline as Stats);
// ok is false when the library is not durable.
func (l *Library) WALStats() (classminer.WALStats, bool) {
	st := l.Stats()
	if st.WAL == nil {
		return classminer.WALStats{}, false
	}
	return *st.WAL, true
}

// Close closes every shard, releasing each data-dir lock.
func (l *Library) Close() error {
	errs := make([]error, len(l.shards))
	for i, sh := range l.shards {
		if err := sh.Close(); err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return errors.Join(errs...)
}

// ---- Metrics. ----

// Instrument registers every shard's instruments (counters and histograms
// dedupe by name, so shards share and naturally sum them), then replaces
// the last-registered per-shard gauges with router-level aggregates:
// summed sizes, max staleness, plus a shard-count gauge.
func (l *Library) Instrument(reg *metrics.Registry) {
	for _, sh := range l.shards {
		sh.Instrument(reg)
	}
	reg.GaugeFunc("classminer_shards", "Shards behind the library router.",
		func() float64 { return float64(len(l.shards)) })
	reg.GaugeFunc("classminer_videos", "Videos currently registered.",
		func() float64 {
			n := 0
			for _, sh := range l.shards {
				n += sh.Stats().Videos
			}
			return float64(n)
		})
	reg.GaugeFunc("classminer_shots", "Indexable shots currently registered.",
		func() float64 { return float64(l.Size()) })
	reg.GaugeFunc("classminer_index_staleness",
		"Incremental-overlay fraction of the serving index (0 = freshly fit).",
		func() float64 { return l.IndexStaleness() })
}

// instrumentWAL replaces the per-engine WAL gauges (each shard's engine
// registered its own at open; last one won) with sums across shards.
func (l *Library) instrumentWAL(reg *metrics.Registry) {
	sum := func(f func(classminer.WALStats) float64) func() float64 {
		return func() float64 {
			var t float64
			for _, sh := range l.shards {
				if ws, ok := sh.WALStats(); ok {
					t += f(ws)
				}
			}
			return t
		}
	}
	reg.GaugeFunc("wal_lag_records", "Records appended since the last checkpoint.",
		sum(func(ws classminer.WALStats) float64 { return float64(ws.Records) }))
	reg.GaugeFunc("wal_lag_bytes", "Log bytes appended since the last checkpoint.",
		sum(func(ws classminer.WALStats) float64 { return float64(ws.Bytes) }))
	reg.GaugeFunc("wal_dead_bytes",
		"Estimated superseded (dead) bytes on the live log.",
		sum(func(ws classminer.WALStats) float64 { return float64(ws.DeadBytes) }))
	reg.GaugeFunc("wal_segments", "Live log segments (replayed on recovery).",
		sum(func(ws classminer.WALStats) float64 { return float64(ws.Segments) }))
	reg.CounterFunc("wal_checkpoints_total", "Completed checkpoint generations.",
		sum(func(ws classminer.WALStats) float64 { return float64(ws.Generation) }))
	reg.CounterFunc("wal_syncs_total", "Segment-data fsyncs since open.",
		sum(func(ws classminer.WALStats) float64 { return float64(ws.Syncs) }))
}
