// Package baseline reimplements the two scene-detection comparators of the
// paper's Fig. 12/13 evaluation:
//
//   - Method B — Rui, Huang & Mehrotra, "Constructing table-of-content for
//     videos" (ACM Multimedia Systems, 1999): shots merge into groups by
//     time-adapted visual similarity, and groups whose shots interleave in
//     time merge into scenes.
//   - Method C — Lin & Zhang, "Automatic video scene extraction by shot
//     grouping" (ICPR 2000): a time-constrained sliding window links a new
//     shot to the current scene whenever any of the last few shots is
//     similar enough; a failed link is a scene boundary.
//
// Method A (the paper's own algorithm) lives in internal/structure.
package baseline

import (
	"fmt"
	"math"

	"classminer/internal/entropy"
	"classminer/internal/structure"
	"classminer/internal/vidmodel"
)

// Result is a baseline's scene decomposition.
type Result struct {
	Scenes    []*vidmodel.Scene
	Threshold float64 // similarity threshold actually applied
}

// RuiConfig tunes Method B.
type RuiConfig struct {
	// Threshold is the group-attraction similarity floor; 0 = automatic
	// (fast-entropy over the attraction values).
	Threshold float64
	// Tau is the temporal attenuation constant in shots (default 16).
	Tau float64
}

// RuiTOC runs Method B over the shot sequence.
func RuiTOC(shots []*vidmodel.Shot, cfg RuiConfig) (*Result, error) {
	if len(shots) == 0 {
		return nil, fmt.Errorf("baseline: no shots")
	}
	tau := cfg.Tau
	if tau <= 0 {
		tau = 16
	}
	// Pass 1: collect attraction values for the automatic threshold.
	type groupState struct {
		shots []*vidmodel.Shot
	}
	attraction := func(s *vidmodel.Shot, g *groupState) float64 {
		last := g.shots[len(g.shots)-1]
		gap := float64(s.Index - last.Index)
		return structure.ShotSim(s, last) * math.Exp(-gap/tau)
	}

	var attractions []float64
	{
		var groups []*groupState
		for _, s := range shots {
			best, bestG := -1.0, -1
			for gi, g := range groups {
				if a := attraction(s, g); a > best {
					best, bestG = a, gi
				}
			}
			if bestG >= 0 {
				attractions = append(attractions, best)
			}
			// Provisional grouping with a mid threshold just to build the
			// sample; the real pass below re-runs with the final value.
			if bestG >= 0 && best > 0.5 {
				groups[bestG].shots = append(groups[bestG].shots, s)
			} else {
				groups = append(groups, &groupState{shots: []*vidmodel.Shot{s}})
			}
		}
	}
	th := cfg.Threshold
	if th == 0 {
		// Rui et al. bias toward absorption: the published method prefers
		// growing existing groups over opening new ones, so the automatic
		// threshold is relaxed slightly below the entropy split.
		th = entropy.ThresholdOr(attractions, 0.5) * 0.85
	}

	// Pass 2: definitive grouping with the chosen threshold.
	var groups []*groupState
	for _, s := range shots {
		best, bestG := -1.0, -1
		for gi, g := range groups {
			if a := attraction(s, g); a > best {
				best, bestG = a, gi
			}
		}
		if bestG >= 0 && best > th {
			groups[bestG].shots = append(groups[bestG].shots, s)
		} else {
			groups = append(groups, &groupState{shots: []*vidmodel.Shot{s}})
		}
	}

	// Scene construction: groups interleaved in time belong to one scene.
	type span struct {
		first, last int // shot indices
		groups      []*vidmodel.Group
	}
	var spans []*span
	for gi, g := range groups {
		first := g.shots[0].Index
		last := g.shots[len(g.shots)-1].Index
		spans = append(spans, &span{first: first, last: last,
			groups: []*vidmodel.Group{{Index: gi, Shots: g.shots}}})
	}
	// spans are ordered by first shot (groups are created in scan order).
	var merged []*span
	for _, sp := range spans {
		if len(merged) > 0 && sp.first <= merged[len(merged)-1].last {
			m := merged[len(merged)-1]
			m.groups = append(m.groups, sp.groups...)
			if sp.last > m.last {
				m.last = sp.last
			}
			continue
		}
		merged = append(merged, sp)
	}
	res := &Result{Threshold: th}
	for i, m := range merged {
		scene := &vidmodel.Scene{Index: i, Groups: m.groups}
		scene.RepGroup = structure.SelectRepGroup(scene)
		res.Scenes = append(res.Scenes, scene)
	}
	return res, nil
}

// LinConfig tunes Method C.
type LinConfig struct {
	// Window is the number of preceding shots examined (default 8).
	Window int
	// Threshold is the linking similarity floor; 0 = automatic.
	Threshold float64
}

// LinZhang runs Method C over the shot sequence.
func LinZhang(shots []*vidmodel.Shot, cfg LinConfig) (*Result, error) {
	if len(shots) == 0 {
		return nil, fmt.Errorf("baseline: no shots")
	}
	window := cfg.Window
	if window <= 0 {
		window = 8
	}
	// Best-link similarity of every shot to its recent past, for the
	// automatic threshold.
	link := func(i int) float64 {
		best := 0.0
		for j := i - 1; j >= 0 && j >= i-window; j-- {
			if s := structure.ShotSim(shots[i], shots[j]); s > best {
				best = s
			}
		}
		return best
	}
	var links []float64
	for i := 1; i < len(shots); i++ {
		links = append(links, link(i))
	}
	th := cfg.Threshold
	if th == 0 {
		th = entropy.ThresholdOr(links, 0.5)
	}
	// bridged reports whether any upcoming shot inside the window links
	// back across a candidate boundary — the expanding-window behaviour
	// that keeps shot/reverse-shot alternations in one scene.
	bridged := func(i int) bool {
		for k := i; k < len(shots) && k < i+window; k++ {
			for j := i - 1; j >= 0 && j >= i-window; j-- {
				if structure.ShotSim(shots[k], shots[j]) > th {
					return true
				}
			}
		}
		return false
	}
	res := &Result{Threshold: th}
	start := 0
	flush := func(end int) {
		scene := &vidmodel.Scene{
			Index:  len(res.Scenes),
			Groups: []*vidmodel.Group{{Index: len(res.Scenes), Shots: shots[start:end]}},
		}
		scene.RepGroup = structure.SelectRepGroup(scene)
		res.Scenes = append(res.Scenes, scene)
		start = end
	}
	for i := 1; i < len(shots); i++ {
		if link(i) <= th && !bridged(i) {
			flush(i)
		}
	}
	flush(len(shots))
	return res, nil
}
