package baseline

import (
	"testing"

	"classminer/internal/feature"
	"classminer/internal/vidmodel"
)

func mkShot(idx, colorBin int) *vidmodel.Shot {
	c := make([]float64, feature.ColorBins)
	c[colorBin] = 1
	tx := make([]float64, feature.TextureDims)
	tx[colorBin%feature.TextureDims] = 1
	return &vidmodel.Shot{Index: idx, Start: idx * 30, End: (idx + 1) * 30, Color: c, Texture: tx}
}

// blocks builds a shot sequence of consecutive visually coherent blocks.
func blocks(sizes []int, bins []int) []*vidmodel.Shot {
	var shots []*vidmodel.Shot
	idx := 0
	for b, n := range sizes {
		for i := 0; i < n; i++ {
			shots = append(shots, mkShot(idx, bins[b]))
			idx++
		}
	}
	return shots
}

func TestRuiTOCBlocks(t *testing.T) {
	shots := blocks([]int{4, 4, 4}, []int{1, 80, 160})
	res, err := RuiTOC(shots, RuiConfig{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenes) != 3 {
		t.Fatalf("got %d scenes, want 3", len(res.Scenes))
	}
	covered := 0
	for _, sc := range res.Scenes {
		covered += sc.ShotCount()
	}
	if covered != len(shots) {
		t.Fatalf("scenes cover %d shots, want %d", covered, len(shots))
	}
}

func TestRuiTOCInterleavedGroupsMerge(t *testing.T) {
	// A/B alternation: groups interleave in time, so Method B puts them in
	// one scene (the table-of-content property).
	var shots []*vidmodel.Shot
	for i := 0; i < 8; i++ {
		bin := 1
		if i%2 == 1 {
			bin = 90
		}
		shots = append(shots, mkShot(i, bin))
	}
	res, err := RuiTOC(shots, RuiConfig{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenes) != 1 {
		t.Fatalf("interleaved groups became %d scenes, want 1", len(res.Scenes))
	}
	if len(res.Scenes[0].Groups) < 2 {
		t.Fatalf("scene should contain both interleaved groups, got %d", len(res.Scenes[0].Groups))
	}
}

func TestRuiTOCTemporalAttenuation(t *testing.T) {
	// The same colour recurring far later must NOT rejoin its old group —
	// the exponential attenuation kills long-distance attraction.
	var shots []*vidmodel.Shot
	for i := 0; i < 3; i++ {
		shots = append(shots, mkShot(i, 1))
	}
	for i := 3; i < 40; i++ {
		shots = append(shots, mkShot(i, 80))
	}
	for i := 40; i < 43; i++ {
		shots = append(shots, mkShot(i, 1)) // recurrence, 37 shots later
	}
	res, err := RuiTOC(shots, RuiConfig{Threshold: 0.5, Tau: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenes) < 3 {
		t.Fatalf("distant recurrence merged: %d scenes, want >= 3", len(res.Scenes))
	}
}

func TestLinZhangBlocks(t *testing.T) {
	shots := blocks([]int{5, 5, 5}, []int{1, 80, 160})
	res, err := LinZhang(shots, LinConfig{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenes) != 3 {
		t.Fatalf("got %d scenes, want 3", len(res.Scenes))
	}
}

func TestLinZhangWindowLinksAcrossInterruption(t *testing.T) {
	// A B A B A: window linking keeps one scene despite alternation.
	var shots []*vidmodel.Shot
	for i := 0; i < 9; i++ {
		bin := 1
		if i%2 == 1 {
			bin = 90
		}
		shots = append(shots, mkShot(i, bin))
	}
	res, err := LinZhang(shots, LinConfig{Window: 4, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenes) != 1 {
		t.Fatalf("alternation split into %d scenes, want 1", len(res.Scenes))
	}
}

func TestLinZhangSmallWindowMisses(t *testing.T) {
	// With window 1 the same alternation shatters — the window size is
	// what makes Method C aggressive.
	var shots []*vidmodel.Shot
	for i := 0; i < 9; i++ {
		bin := 1
		if i%2 == 1 {
			bin = 90
		}
		shots = append(shots, mkShot(i, bin))
	}
	res, err := LinZhang(shots, LinConfig{Window: 1, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenes) < 5 {
		t.Fatalf("window-1 alternation produced %d scenes, want many", len(res.Scenes))
	}
}

func TestScenesTileSequence(t *testing.T) {
	shots := blocks([]int{4, 3, 6, 2}, []int{1, 60, 120, 200})
	for name, run := range map[string]func() (*Result, error){
		"rui": func() (*Result, error) { return RuiTOC(shots, RuiConfig{}) },
		"lin": func() (*Result, error) { return LinZhang(shots, LinConfig{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seen := map[int]bool{}
		for _, sc := range res.Scenes {
			for _, s := range sc.Shots() {
				if seen[s.Index] {
					t.Fatalf("%s: shot %d in two scenes", name, s.Index)
				}
				seen[s.Index] = true
			}
		}
		if len(seen) != len(shots) {
			t.Fatalf("%s: covered %d shots, want %d", name, len(seen), len(shots))
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := RuiTOC(nil, RuiConfig{}); err == nil {
		t.Fatal("RuiTOC wants error on empty input")
	}
	if _, err := LinZhang(nil, LinConfig{}); err == nil {
		t.Fatal("LinZhang wants error on empty input")
	}
}
