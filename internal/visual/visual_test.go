package visual

import (
	"math/rand"
	"testing"

	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

func render(t *testing.T, cam synth.Camera, seed int64) *vidmodel.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	script := &synth.Script{Name: "one", Scenes: []synth.SceneSpec{{
		Groups: []synth.GroupSpec{{Shots: []synth.ShotSpec{{Cam: cam, Frames: 12}}}},
	}}}
	v, err := synth.Generate(synth.DefaultConfig(), script, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	return v.Frames[9] // the representative frame position
}

func pal() synth.Palette {
	return synth.Palette{
		BGTop:    synth.RGB{R: 70, G: 90, B: 120},
		BGBottom: synth.RGB{R: 45, G: 60, B: 85},
		Accent:   synth.RGB{R: 60, G: 70, B: 110},
		Skin:     synth.RGB{R: 208, G: 162, B: 130},
		Hair:     synth.RGB{R: 50, G: 40, B: 35},
	}
}

func TestClassifyBlackFrame(t *testing.T) {
	f := render(t, synth.Camera{Kind: synth.ContentBlack, Palette: pal()}, 1)
	c := Analyze(f)
	if c.Kind != KindBlack {
		t.Fatalf("kind = %v, want black", c.Kind)
	}
}

func TestClassifySlideFrame(t *testing.T) {
	f := render(t, synth.Camera{Kind: synth.ContentSlide, Palette: pal(), Variant: 1}, 2)
	c := Analyze(f)
	if !c.Kind.IsManMade() {
		t.Fatalf("kind = %v, want man-made", c.Kind)
	}
	if c.Kind == KindBlack {
		t.Fatal("slide must not be black")
	}
}

func TestClassifyClipartFrame(t *testing.T) {
	f := render(t, synth.Camera{Kind: synth.ContentClipart, Palette: pal(), Variant: 0}, 3)
	c := Analyze(f)
	if !c.Kind.IsManMade() {
		t.Fatalf("kind = %v, want man-made", c.Kind)
	}
}

func TestNaturalFramesNotManMade(t *testing.T) {
	for seed, cam := range []synth.Camera{
		{Kind: synth.ContentFace, Palette: pal(), FaceFrac: 0.15},
		{Kind: synth.ContentEstablishing, Palette: pal(), Pan: 0.2},
		{Kind: synth.ContentSurgical, Palette: pal(), SkinFrac: 0.3, Blood: true},
	} {
		f := render(t, cam, int64(seed+10))
		c := Analyze(f)
		if c.Kind != KindNatural {
			t.Fatalf("camera %v classified %v, want natural", cam.Kind, c.Kind)
		}
	}
}

func TestFaceCloseUpDetected(t *testing.T) {
	f := render(t, synth.Camera{Kind: synth.ContentFace, Palette: pal(), FaceFrac: 0.16}, 20)
	c := Analyze(f)
	if !c.HasFace {
		t.Fatalf("face not detected (skin frac %.3f)", c.SkinFrac)
	}
	if !c.FaceCloseUp {
		t.Fatalf("close-up not flagged, face frac = %.3f", c.FaceFrac)
	}
}

func TestSmallFaceNotCloseUp(t *testing.T) {
	f := render(t, synth.Camera{Kind: synth.ContentFace, Palette: pal(), FaceFrac: 0.05}, 21)
	c := Analyze(f)
	if c.FaceCloseUp {
		t.Fatalf("a 5%% face must not be a close-up (frac %.3f)", c.FaceFrac)
	}
}

func TestSurgicalFieldIsSkinNotFace(t *testing.T) {
	f := render(t, synth.Camera{Kind: synth.ContentSurgical, Palette: pal(), SkinFrac: 0.35, Blood: true, Variant: 1}, 22)
	c := Analyze(f)
	if !c.HasSkin {
		t.Fatal("surgical field skin not detected")
	}
	if !c.SkinCloseUp {
		t.Fatalf("skin close-up not flagged (skin frac %.3f)", c.SkinFrac)
	}
	if c.HasFace {
		t.Fatal("surgical field must not verify as a face")
	}
	if !c.HasBlood {
		t.Fatalf("blood not detected (frac %.4f)", c.BloodFrac)
	}
}

func TestSkinExamDominatedBySkin(t *testing.T) {
	f := render(t, synth.Camera{Kind: synth.ContentSkinExam, Palette: pal(), SkinFrac: 0.5, Pan: 0.2}, 23)
	c := Analyze(f)
	if !c.SkinCloseUp {
		t.Fatalf("skin exam close-up missed (skin frac %.3f)", c.SkinFrac)
	}
	if c.HasBlood {
		t.Fatal("skin exam should have no blood")
	}
}

func TestOrganHasBloodRed(t *testing.T) {
	f := render(t, synth.Camera{Kind: synth.ContentOrgan, Palette: pal(), Blood: true}, 24)
	c := Analyze(f)
	if !c.HasBlood {
		t.Fatalf("organ blood-red region missed (frac %.4f)", c.BloodFrac)
	}
}

func TestEstablishingHasNoCues(t *testing.T) {
	f := render(t, synth.Camera{Kind: synth.ContentEstablishing, Palette: pal(), Pan: 0.3}, 25)
	c := Analyze(f)
	if c.HasFace || c.SkinCloseUp || c.HasBlood {
		t.Fatalf("establishing frame has spurious cues: %+v", c)
	}
}

func TestBloodPixelModel(t *testing.T) {
	if !IsBloodPixel(150, 18, 22) {
		t.Fatal("arterial red must match")
	}
	if !IsBloodPixel(160, 45, 40) {
		t.Fatal("tissue red must match")
	}
	if IsBloodPixel(208, 162, 130) {
		t.Fatal("skin must not match blood")
	}
	if IsBloodPixel(10, 5, 5) {
		t.Fatal("near-black must not match blood")
	}
}

func TestSkinPixelModel(t *testing.T) {
	for _, c := range [][3]byte{{208, 162, 130}, {196, 150, 120}, {220, 175, 140}} {
		if !IsSkinPixel(c[0], c[1], c[2]) {
			t.Fatalf("skin tone %v must match", c)
		}
	}
	for _, c := range [][3]byte{{60, 70, 110}, {150, 18, 22}, {235, 233, 224}, {0, 0, 0}} {
		if IsSkinPixel(c[0], c[1], c[2]) {
			t.Fatalf("non-skin %v must not match", c)
		}
	}
}

func TestMorphologyRemovesSpeckle(t *testing.T) {
	w, h := 16, 16
	mask := make([]bool, w*h)
	mask[5*w+5] = true // isolated speckle
	for y := 8; y < 14; y++ {
		for x := 2; x < 12; x++ {
			mask[y*w+x] = true // solid block
		}
	}
	cleaned := open(mask, w, h)
	if cleaned[5*w+5] {
		t.Fatal("opening must remove isolated speckle")
	}
	if !cleaned[10*w+5] {
		t.Fatal("opening must keep solid block interior")
	}
}

func TestComponentsSeparatesRegions(t *testing.T) {
	w, h := 20, 10
	mask := make([]bool, w*h)
	for y := 2; y < 8; y++ {
		for x := 1; x < 6; x++ {
			mask[y*w+x] = true
		}
		for x := 12; x < 19; x++ {
			mask[y*w+x] = true
		}
	}
	regs := components(mask, w, h, 4)
	if len(regs) != 2 {
		t.Fatalf("got %d regions, want 2", len(regs))
	}
	if regs[0].Area < regs[1].Area {
		t.Fatal("regions must be sorted largest first")
	}
	if regs[0].Width() != 7 || regs[0].Height() != 6 {
		t.Fatalf("largest region bbox = %dx%d", regs[0].Width(), regs[0].Height())
	}
}

func TestComponentsMinArea(t *testing.T) {
	w, h := 8, 8
	mask := make([]bool, w*h)
	mask[0] = true
	if regs := components(mask, w, h, 2); len(regs) != 0 {
		t.Fatalf("min-area filter failed: %d regions", len(regs))
	}
}

func TestSpecialKindStrings(t *testing.T) {
	kinds := []SpecialKind{KindNatural, KindBlack, KindSlide, KindClipart, KindSketch}
	seen := map[string]bool{}
	for _, k := range kinds {
		if s := k.String(); s == "" || seen[s] {
			t.Fatalf("kind %d string %q", k, s)
		} else {
			seen[s] = true
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	script := &synth.Script{Name: "bench", Scenes: []synth.SceneSpec{{
		Groups: []synth.GroupSpec{{Shots: []synth.ShotSpec{{
			Cam: synth.Camera{Kind: synth.ContentFace, Palette: pal(), FaceFrac: 0.15}, Frames: 12,
		}}}},
	}}}
	v, err := synth.Generate(synth.DefaultConfig(), script, rng.Int63())
	if err != nil {
		b.Fatal(err)
	}
	f := v.Frames[9]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(f)
	}
}
