// Package visual implements the visual feature processing of §4.1: it
// classifies representative frames as man-made special frames (black,
// slide, clipart, sketch) or natural images, and detects the semantic
// regions the event miner needs — faces (with the close-up test), skin
// regions (with the close-up test) and blood-red regions — using Gaussian
// colour models, morphological cleaning, connected-component shape analysis
// and template-curve face verification.
package visual

import "classminer/internal/vidmodel"

// SpecialKind classifies a frame per §4.1 / Fig. 9.
type SpecialKind int

const (
	// KindNatural is an ordinary camera image.
	KindNatural SpecialKind = iota
	// KindBlack is a black separator/leader frame.
	KindBlack
	// KindSlide is a presentation slide (bright ground, text rows).
	KindSlide
	// KindClipart is a diagram with saturated drawing colours.
	KindClipart
	// KindSketch is a near-monochrome line drawing.
	KindSketch
)

func (k SpecialKind) String() string {
	switch k {
	case KindBlack:
		return "black"
	case KindSlide:
		return "slide"
	case KindClipart:
		return "clipart"
	case KindSketch:
		return "sketch"
	default:
		return "natural"
	}
}

// IsManMade reports whether the kind is a slide-like authored frame (the
// presentation cue of §4.3 counts slides and clipart).
func (k SpecialKind) IsManMade() bool {
	return k == KindSlide || k == KindClipart || k == KindSketch
}

// Thresholds of the event definitions in §4.3.
const (
	// FaceCloseUpFrac: a face is a close-up when it covers at least 10 %
	// of the frame.
	FaceCloseUpFrac = 0.10
	// SkinCloseUpFrac: a skin region is a close-up at 20 % of the frame.
	SkinCloseUpFrac = 0.20
	// minRegionFrac is the shape-analysis floor: smaller components are
	// noise ("considerable width and height" in the paper).
	minRegionFrac = 0.01
	// bloodMinFrac is the minimum blood-red coverage that counts as a
	// blood region.
	bloodMinFrac = 0.005
)

// Cues summarises everything §4.3 needs to know about one frame.
type Cues struct {
	Kind        SpecialKind
	HasFace     bool
	FaceCloseUp bool    // face region ≥ FaceCloseUpFrac of the frame
	FaceFrac    float64 // largest verified face area fraction
	SkinFrac    float64 // total skin coverage
	SkinCloseUp bool    // some skin region ≥ SkinCloseUpFrac of the frame
	HasSkin     bool    // any analysable skin region at all
	HasBlood    bool
	BloodFrac   float64
}

// Analyze extracts all §4.1 cues from one frame.
func Analyze(f *vidmodel.Frame) Cues {
	var c Cues
	c.Kind = classifyFrame(f)
	if c.Kind != KindNatural {
		return c
	}
	minArea := int(minRegionFrac * float64(f.W*f.H))
	if minArea < 4 {
		minArea = 4
	}

	skin := open(skinMask(f), f.W, f.H)
	skinRegions := components(skin, f.W, f.H, minArea)
	for _, reg := range skinRegions {
		c.SkinFrac += reg.AreaFrac()
		if reg.AreaFrac() >= SkinCloseUpFrac {
			c.SkinCloseUp = true
		}
		if VerifyFace(f, skin, reg) {
			c.HasFace = true
			if reg.AreaFrac() > c.FaceFrac {
				c.FaceFrac = reg.AreaFrac()
			}
		}
	}
	c.HasSkin = len(skinRegions) > 0
	c.FaceCloseUp = c.HasFace && c.FaceFrac >= FaceCloseUpFrac

	blood := bloodMask(f)
	bloodRegions := components(blood, f.W, f.H, minArea)
	for _, reg := range bloodRegions {
		c.BloodFrac += reg.AreaFrac()
	}
	c.HasBlood = c.BloodFrac >= bloodMinFrac
	return c
}

// classifyFrame separates man-made frames from natural ones using the §4.1
// observations: man-made frames have little colour variety and structured
// content; black frames are simply dark and flat.
func classifyFrame(f *vidmodel.Frame) SpecialKind {
	n := float64(f.W * f.H)
	var meanLuma float64
	var saturated, dark, skin float64
	// Dominant colour coverage over a coarse 4×4×4 RGB quantisation.
	var hist [64]float64
	darkRows := 0
	for y := 0; y < f.H; y++ {
		rowDark := 0
		for x := 0; x < f.W; x++ {
			r, g, b := f.At(x, y)
			luma := 0.299*float64(r) + 0.587*float64(g) + 0.114*float64(b)
			meanLuma += luma
			if luma < 90 {
				dark++
				rowDark++
			}
			maxC, minC := max(r, g, b), min(r, g, b)
			if maxC > 120 && float64(maxC-minC) > 0.35*float64(maxC) {
				saturated++
			}
			if IsSkinPixel(r, g, b) {
				skin++
			}
			hist[int(r)/64*16+int(g)/64*4+int(b)/64]++
		}
		if float64(rowDark) > 0.18*float64(f.W) {
			darkRows++
		}
	}
	meanLuma /= n
	var dom float64
	for _, hv := range hist {
		if hv > dom {
			dom = hv
		}
	}
	domFrac := dom / n
	satFrac := saturated / n

	switch {
	case meanLuma < 26 && dark/n > 0.95:
		return KindBlack
	// A skin-dominated frame (dermatology close-up) can be both bright and
	// uniform; it is a natural image, not an authored slide — slide grounds
	// are near-neutral while skin carries strong chroma.
	case skin/n > 0.25:
		return KindNatural
	case domFrac > 0.45 && meanLuma > 140:
		// Authored frame on a bright uniform ground.
		switch {
		case satFrac > 0.06:
			return KindClipart
		case darkRows >= 2:
			return KindSlide
		default:
			return KindSketch
		}
	default:
		return KindNatural
	}
}
