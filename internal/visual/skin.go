package visual

import "classminer/internal/vidmodel"

// Gaussian colour models (§4.1): skin and blood-red pixels are detected by
// thresholded Mahalanobis distance in a (normalised-red, normalised-green,
// luma) space with diagonal covariance. The parameters are the "trained"
// models of the paper — here fitted to the synthetic corpus's skin and
// blood tones, with tolerances wide enough to absorb lighting drift and
// sensor noise.
type colorModel struct {
	meanNR, meanNG, meanLuma float64
	sdNR, sdNG, sdLuma       float64
	maxD2                    float64 // squared Mahalanobis acceptance radius
}

var skinModel = colorModel{
	meanNR: 0.420, meanNG: 0.324, meanLuma: 0.66,
	sdNR: 0.020, sdNG: 0.012, sdLuma: 0.10,
	maxD2: 7,
}

func (m colorModel) match(r, g, b byte) bool {
	sum := float64(r) + float64(g) + float64(b)
	if sum < 30 {
		return false
	}
	nr := float64(r) / sum
	ng := float64(g) / sum
	luma := (0.299*float64(r) + 0.587*float64(g) + 0.114*float64(b)) / 255
	d := sq((nr-m.meanNR)/m.sdNR) + sq((ng-m.meanNG)/m.sdNG) + sq((luma-m.meanLuma)/m.sdLuma)
	return d <= m.maxD2
}

func sq(x float64) float64 { return x * x }

// IsSkinPixel reports whether the pixel matches the skin colour model.
func IsSkinPixel(r, g, b byte) bool { return skinModel.match(r, g, b) }

// IsBloodPixel reports whether the pixel matches the blood-red model:
// strongly red-dominant chromaticity at moderate intensity (arterial blood,
// exposed tissue).
func IsBloodPixel(r, g, b byte) bool {
	sum := float64(r) + float64(g) + float64(b)
	if sum < 60 {
		return false
	}
	nr := float64(r) / sum
	return nr >= 0.55 && r >= 80 && float64(g) < 0.55*float64(r)
}

// skinMask builds the binary skin map of a frame.
func skinMask(f *vidmodel.Frame) []bool {
	mask := make([]bool, f.W*f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r, g, b := f.At(x, y)
			mask[y*f.W+x] = IsSkinPixel(r, g, b)
		}
	}
	return mask
}

// bloodMask builds the binary blood-red map of a frame.
func bloodMask(f *vidmodel.Frame) []bool {
	mask := make([]bool, f.W*f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r, g, b := f.At(x, y)
			mask[y*f.W+x] = IsBloodPixel(r, g, b)
		}
	}
	return mask
}
