package visual

// Region is a connected component of a binary mask with its shape summary.
type Region struct {
	Area           int
	MinX, MinY     int
	MaxX, MaxY     int // inclusive bounds
	CX, CY         float64
	FrameW, FrameH int
}

// Width and Height of the bounding box.
func (r *Region) Width() int  { return r.MaxX - r.MinX + 1 }
func (r *Region) Height() int { return r.MaxY - r.MinY + 1 }

// AreaFrac is the region area as a fraction of the frame.
func (r *Region) AreaFrac() float64 {
	return float64(r.Area) / float64(r.FrameW*r.FrameH)
}

// Aspect is bounding-box height divided by width.
func (r *Region) Aspect() float64 {
	return float64(r.Height()) / float64(r.Width())
}

// FillRatio is area over bounding-box area; an ellipse fills about π/4.
func (r *Region) FillRatio() float64 {
	return float64(r.Area) / float64(r.Width()*r.Height())
}

// erode removes mask pixels with any off 4-neighbour; dilate is its dual.
// opening (erode then dilate) deletes speckle noise, the morphological step
// of §4.1's skin-region processing.
func erode(mask []bool, w, h int) []bool {
	out := make([]bool, len(mask))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if !mask[y*w+x] {
				continue
			}
			on := true
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= w || ny >= h || !mask[ny*w+nx] {
					on = false
					break
				}
			}
			out[y*w+x] = on
		}
	}
	return out
}

func dilate(mask []bool, w, h int) []bool {
	out := make([]bool, len(mask))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if mask[y*w+x] {
				out[y*w+x] = true
				continue
			}
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx >= 0 && ny >= 0 && nx < w && ny < h && mask[ny*w+nx] {
					out[y*w+x] = true
					break
				}
			}
		}
	}
	return out
}

// open performs one morphological opening pass.
func open(mask []bool, w, h int) []bool { return dilate(erode(mask, w, h), w, h) }

// components labels the mask 4-connectedly and returns regions of at least
// minArea pixels, largest first. This is the general shape-analysis step of
// §4.1 that keeps only regions of considerable width and height.
func components(mask []bool, w, h, minArea int) []*Region {
	labels := make([]int, len(mask))
	var regions []*Region
	var stack []int
	next := 0
	for i := range mask {
		if !mask[i] || labels[i] != 0 {
			continue
		}
		next++
		reg := &Region{MinX: w, MinY: h, MaxX: -1, MaxY: -1, FrameW: w, FrameH: h}
		stack = append(stack[:0], i)
		labels[i] = next
		var sumX, sumY float64
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := p%w, p/w
			reg.Area++
			sumX += float64(x)
			sumY += float64(y)
			if x < reg.MinX {
				reg.MinX = x
			}
			if x > reg.MaxX {
				reg.MaxX = x
			}
			if y < reg.MinY {
				reg.MinY = y
			}
			if y > reg.MaxY {
				reg.MaxY = y
			}
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= w || ny >= h {
					continue
				}
				np := ny*w + nx
				if mask[np] && labels[np] == 0 {
					labels[np] = next
					stack = append(stack, np)
				}
			}
		}
		if reg.Area >= minArea {
			reg.CX = sumX / float64(reg.Area)
			reg.CY = sumY / float64(reg.Area)
			regions = append(regions, reg)
		}
	}
	// Largest first (insertion sort; region counts are tiny).
	for i := 1; i < len(regions); i++ {
		for j := i; j > 0 && regions[j].Area > regions[j-1].Area; j-- {
			regions[j], regions[j-1] = regions[j-1], regions[j]
		}
	}
	return regions
}
