package visual

import (
	"math"

	"classminer/internal/vidmodel"
)

// faceAspectMin/Max bound the height/width ratio of an upright face
// bounding box; surgical skin fields are landscape (aspect < 1) and fail
// this immediately.
const (
	faceAspectMin = 0.95
	faceAspectMax = 2.2
	// faceFillMin/Max bracket the fill ratio of an ellipse with small
	// feature holes.
	faceFillMin = 0.55
	faceFillMax = 0.95
	// faceCurveMin is the minimum normalised correlation between the
	// region's column-height profile and the elliptical template curve.
	faceCurveMin = 0.85
)

// VerifyFace decides whether a candidate skin region is a face, following
// §4.1: shape analysis (portrait aspect, elliptical fill), facial-feature
// extraction (dark eye evidence inside the upper half), and the template
// curve-based verification (the region's vertical profile must trace an
// ellipse).
func VerifyFace(f *vidmodel.Frame, mask []bool, reg *Region) bool {
	if reg.Aspect() < faceAspectMin || reg.Aspect() > faceAspectMax {
		return false
	}
	fill := reg.FillRatio()
	if fill < faceFillMin || fill > faceFillMax {
		return false
	}
	if !hasEyeEvidence(f, reg) {
		return false
	}
	return templateCurveScore(mask, reg) >= faceCurveMin
}

// hasEyeEvidence looks for dark pixels in the upper interior of the region
// on both sides of its vertical axis — the facial-feature extraction step.
func hasEyeEvidence(f *vidmodel.Frame, reg *Region) bool {
	top := reg.MinY + reg.Height()/6
	bottom := reg.MinY + reg.Height()/2
	left, right := 0, 0
	for y := top; y <= bottom; y++ {
		for x := reg.MinX; x <= reg.MaxX; x++ {
			if f.Gray(x, y) < 70 {
				if float64(x) < reg.CX {
					left++
				} else {
					right++
				}
			}
		}
	}
	return left >= 1 && right >= 1
}

// templateCurveScore correlates the mask's per-column height profile with
// the height profile of the ellipse inscribed in the bounding box.
func templateCurveScore(mask []bool, reg *Region) float64 {
	w := reg.Width()
	if w < 3 {
		return 0
	}
	profile := make([]float64, w)
	for x := 0; x < w; x++ {
		count := 0
		for y := reg.MinY; y <= reg.MaxY; y++ {
			if mask[y*reg.FrameW+reg.MinX+x] {
				count++
			}
		}
		profile[x] = float64(count)
	}
	template := make([]float64, w)
	rx := float64(w) / 2
	ry := float64(reg.Height())
	for x := 0; x < w; x++ {
		dx := (float64(x) + 0.5 - rx) / rx
		if dx*dx <= 1 {
			template[x] = ry * math.Sqrt(1-dx*dx)
		}
	}
	return correlation(profile, template)
}

// correlation is the Pearson correlation of two equal-length profiles.
func correlation(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
