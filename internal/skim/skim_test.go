package skim

import (
	"strings"
	"testing"

	"classminer/internal/feature"
	"classminer/internal/vidmodel"
)

// buildFixture assembles a small mined structure: 12 shots, 4 groups,
// 2 scenes, 1 cluster.
func buildFixture(t *testing.T) (*Skim, []*vidmodel.Shot) {
	t.Helper()
	var shots []*vidmodel.Shot
	for i := 0; i < 12; i++ {
		c := make([]float64, feature.ColorBins)
		c[i%8] = 1
		shots = append(shots, &vidmodel.Shot{
			Index: i, Start: i * 30, End: (i + 1) * 30,
			Color: c, Texture: make([]float64, feature.TextureDims),
		})
	}
	mkGroup := func(idx int, ss ...*vidmodel.Shot) *vidmodel.Group {
		return &vidmodel.Group{Index: idx, Shots: ss, RepShots: ss[:1]}
	}
	groups := []*vidmodel.Group{
		mkGroup(0, shots[0], shots[1], shots[2]),
		mkGroup(1, shots[3], shots[4], shots[5]),
		mkGroup(2, shots[6], shots[7], shots[8]),
		mkGroup(3, shots[9], shots[10], shots[11]),
	}
	scenes := []*vidmodel.Scene{
		{Index: 0, Groups: groups[:2], RepGroup: groups[0], Event: vidmodel.EventDialog},
		{Index: 1, Groups: groups[2:], RepGroup: groups[2], Event: vidmodel.EventClinicalOperation},
	}
	clusters := []*vidmodel.ClusteredScene{
		{Index: 0, Scenes: scenes, RepGroup: groups[0]},
	}
	s, err := Build(shots, groups, scenes, clusters, 12*30)
	if err != nil {
		t.Fatal(err)
	}
	return s, shots
}

func TestLevelsMonotoneGranularity(t *testing.T) {
	s, shots := buildFixture(t)
	if got := len(s.Shots(Level1)); got != len(shots) {
		t.Fatalf("level 1 shots = %d, want %d", got, len(shots))
	}
	for l := Level1; l < Level4; l++ {
		if len(s.Shots(l)) < len(s.Shots(l+1)) {
			t.Fatalf("level %d has fewer shots than level %d", l, l+1)
		}
	}
	if len(s.Shots(Level4)) == 0 {
		t.Fatal("level 4 must not be empty")
	}
}

func TestFCRMonotone(t *testing.T) {
	s, _ := buildFixture(t)
	if fcr := s.FCR(Level1); fcr != 1 {
		t.Fatalf("level 1 FCR = %v, want 1 (all shots)", fcr)
	}
	for l := Level1; l < Level4; l++ {
		if s.FCR(l) < s.FCR(l+1) {
			t.Fatalf("FCR must not increase with level: %v vs %v", s.FCR(l), s.FCR(l+1))
		}
	}
	if s.FCR(Level4) <= 0 {
		t.Fatal("level 4 FCR must be positive")
	}
}

func TestShotsSortedByTime(t *testing.T) {
	s, _ := buildFixture(t)
	for l := Level1; l <= Level4; l++ {
		shots := s.Shots(l)
		for i := 1; i < len(shots); i++ {
			if shots[i].Start < shots[i-1].Start {
				t.Fatalf("level %d not in playback order", l)
			}
		}
	}
}

func TestLevelClamping(t *testing.T) {
	s, _ := buildFixture(t)
	if len(s.Shots(Level(0))) != len(s.Shots(Level1)) {
		t.Fatal("level 0 must clamp to 1")
	}
	if len(s.Shots(Level(9))) != len(s.Shots(Level4)) {
		t.Fatal("level 9 must clamp to 4")
	}
}

func TestColorBar(t *testing.T) {
	s, _ := buildFixture(t)
	bar := s.ColorBar(36)
	if len(bar) != 36 {
		t.Fatalf("bar width = %d", len(bar))
	}
	if !strings.Contains(bar, "D") || !strings.Contains(bar, "C") {
		t.Fatalf("bar %q must show both event categories", bar)
	}
	// First half is the dialog scene.
	if bar[0] != 'D' {
		t.Fatalf("bar starts with %q, want D", bar[0])
	}
	if s.ColorBar(0) != "" {
		t.Fatal("zero width must render empty")
	}
}

func TestSceneAtBar(t *testing.T) {
	s, _ := buildFixture(t)
	if got := s.SceneAtBar(0, 36); got != 0 {
		t.Fatalf("column 0 -> scene %d, want 0", got)
	}
	if got := s.SceneAtBar(35, 36); got != 1 {
		t.Fatalf("column 35 -> scene %d, want 1", got)
	}
	if s.SceneAtBar(-1, 36) != -1 || s.SceneAtBar(99, 36) != -1 {
		t.Fatal("out-of-range columns must map to -1")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, nil, nil, nil, 0); err == nil {
		t.Fatal("want error on no shots")
	}
}

func TestDescribe(t *testing.T) {
	s, _ := buildFixture(t)
	d := s.Describe()
	if !strings.Contains(d, "level 4") || !strings.Contains(d, "FCR") {
		t.Fatalf("describe output: %q", d)
	}
}

func TestShotCompression(t *testing.T) {
	s, _ := buildFixture(t)
	if got := s.ShotCompression(Level1); got != 1 {
		t.Fatalf("level 1 shot compression = %v", got)
	}
	if got := s.ShotCompression(Level4); got >= 0.5 {
		t.Fatalf("level 4 shot compression = %v, want < 0.5", got)
	}
}
