// Package skim implements the scalable video skimming tool of §5: four
// skimming layers of increasing granularity (level 4 = representative shots
// of clustered scenes, level 3 = of all scenes, level 2 = of all groups,
// level 1 = every shot), the frame-compression-ratio measure of Fig. 15,
// and the event colour bar that lets a viewer jump to scenes by category.
package skim

import (
	"fmt"
	"sort"
	"strings"

	"classminer/internal/vidmodel"
)

// Level indexes the four skimming layers; granularity increases from
// Level4 (coarsest overview) down to Level1 (every shot).
type Level int

// The four layers of the §5 prototype.
const (
	Level1 Level = 1 // all shots
	Level2 Level = 2 // representative shots of all groups
	Level3 Level = 3 // representative shots of all scenes
	Level4 Level = 4 // representative shots of clustered scenes
)

// Skim is a built scalable skimming of one video.
type Skim struct {
	TotalFrames int
	TotalShots  int
	levels      map[Level][]*vidmodel.Shot
	scenes      []*vidmodel.Scene
}

// Build assembles the four skimming layers from the mined content
// structure. scenes must have representative groups; clusters must carry
// centroid groups.
func Build(shots []*vidmodel.Shot, groups []*vidmodel.Group, scenes []*vidmodel.Scene, clusters []*vidmodel.ClusteredScene, totalFrames int) (*Skim, error) {
	if len(shots) == 0 {
		return nil, fmt.Errorf("skim: no shots")
	}
	s := &Skim{
		TotalFrames: totalFrames,
		TotalShots:  len(shots),
		levels:      map[Level][]*vidmodel.Shot{},
		scenes:      scenes,
	}
	s.levels[Level1] = sortShots(shots)

	var l2 []*vidmodel.Shot
	for _, g := range groups {
		l2 = append(l2, repShotsOf(g)...)
	}
	s.levels[Level2] = sortShots(dedup(l2))

	var l3 []*vidmodel.Shot
	for _, sc := range scenes {
		if sc.RepGroup != nil {
			l3 = append(l3, repShotsOf(sc.RepGroup)...)
		}
	}
	s.levels[Level3] = sortShots(dedup(l3))

	var l4 []*vidmodel.Shot
	for _, c := range clusters {
		if c.RepGroup != nil {
			l4 = append(l4, repShotsOf(c.RepGroup)...)
		}
	}
	s.levels[Level4] = sortShots(dedup(l4))
	return s, nil
}

// repShotsOf returns a group's representative shots, falling back to its
// first shot when classification has not run.
func repShotsOf(g *vidmodel.Group) []*vidmodel.Shot {
	if len(g.RepShots) > 0 {
		return g.RepShots
	}
	if len(g.Shots) > 0 {
		return g.Shots[:1]
	}
	return nil
}

func dedup(shots []*vidmodel.Shot) []*vidmodel.Shot {
	seen := map[*vidmodel.Shot]bool{}
	out := shots[:0]
	for _, s := range shots {
		if s != nil && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func sortShots(shots []*vidmodel.Shot) []*vidmodel.Shot {
	out := append([]*vidmodel.Shot(nil), shots...)
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Shots returns the skimming shots of a level in playback order. Unknown
// levels clamp into [Level1, Level4].
func (s *Skim) Shots(l Level) []*vidmodel.Shot {
	if l < Level1 {
		l = Level1
	}
	if l > Level4 {
		l = Level4
	}
	return s.levels[l]
}

// FCR is the frame compression ratio of Fig. 15: frames included in the
// level's skimming shots over all frames of the video.
func (s *Skim) FCR(l Level) float64 {
	if s.TotalFrames == 0 {
		return 0
	}
	var frames int
	for _, shot := range s.Shots(l) {
		frames += shot.Len()
	}
	return float64(frames) / float64(s.TotalFrames)
}

// ShotCompression returns |skim shots| / |all shots| for a level.
func (s *Skim) ShotCompression(l Level) float64 {
	if s.TotalShots == 0 {
		return 0
	}
	return float64(len(s.Shots(l))) / float64(s.TotalShots)
}

// eventGlyphs drives the colour bar; each event category renders as one
// glyph so the bar shows the content structure of the video (Fig. 11).
var eventGlyphs = map[vidmodel.EventKind]rune{
	vidmodel.EventPresentation:      'P',
	vidmodel.EventDialog:            'D',
	vidmodel.EventClinicalOperation: 'C',
	vidmodel.EventUnknown:           '.',
}

// ColorBar renders the event indicator bar of the skimming tool at the
// given character width: each column shows the event category of the scene
// owning that slice of the timeline ('-' for frames outside any scene).
func (s *Skim) ColorBar(width int) string {
	if width <= 0 || s.TotalFrames == 0 {
		return ""
	}
	var b strings.Builder
	for col := 0; col < width; col++ {
		frame := col * s.TotalFrames / width
		glyph := '-'
		for _, sc := range s.scenes {
			first, last := sc.FrameSpan()
			if frame >= first && frame < last {
				glyph = eventGlyphs[sc.Event]
				break
			}
		}
		b.WriteRune(glyph)
	}
	return b.String()
}

// SceneAtBar maps a colour-bar column back to the scene index under it
// (the "fast access toolbar" drag target), or -1.
func (s *Skim) SceneAtBar(col, width int) int {
	if width <= 0 || col < 0 || col >= width || s.TotalFrames == 0 {
		return -1
	}
	frame := col * s.TotalFrames / width
	for i, sc := range s.scenes {
		first, last := sc.FrameSpan()
		if frame >= first && frame < last {
			return i
		}
	}
	return -1
}

// Describe prints a one-line summary per level, for CLI output.
func (s *Skim) Describe() string {
	var b strings.Builder
	for l := Level4; l >= Level1; l-- {
		fmt.Fprintf(&b, "level %d: %3d shots, FCR %.3f\n", l, len(s.Shots(l)), s.FCR(l))
	}
	return b.String()
}
