package core

import (
	"math/rand"
	"sync"
	"testing"

	"classminer/internal/index"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

var (
	anOnce sync.Once
	an     *Analyzer
	anErr  error
)

func analyzer(t testing.TB) *Analyzer {
	t.Helper()
	anOnce.Do(func() { an, anErr = NewAnalyzer(Options{}) })
	if anErr != nil {
		t.Fatal(anErr)
	}
	return an
}

func genVideo(t testing.TB, seed int64) *vidmodel.Video {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	script := &synth.Script{Name: "core-test", Scenes: []synth.SceneSpec{
		synth.PresentationScene(rng, 0, 1, 1),
		synth.DialogScene(rng, 1, 2, 2, 3),
		synth.OperationScene(rng, 2, 3, synth.ContentSurgical, 0),
		synth.DialogScene(rng, 1, 2, 2, 3),
	}}
	v, err := synth.Generate(synth.DefaultConfig(), script, seed)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAnalyzeFullPipeline(t *testing.T) {
	a := analyzer(t)
	v := genVideo(t, 51)
	res, err := a.Analyze(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shots) < 10 {
		t.Fatalf("shots = %d", len(res.Shots))
	}
	if len(res.Groups) == 0 || len(res.Scenes) == 0 {
		t.Fatalf("groups = %d, scenes = %d", len(res.Groups), len(res.Scenes))
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clustered scenes")
	}
	if len(res.Clusters) > len(res.Scenes) {
		t.Fatal("clusters cannot exceed scenes")
	}
	if res.Events == nil {
		t.Fatal("events not mined")
	}
	if res.Skim == nil {
		t.Fatal("skim not built")
	}
	if res.Skim.FCR(1) != 1 {
		t.Fatalf("level-1 FCR = %v", res.Skim.FCR(1))
	}
	if s := res.Summary(); s == "" {
		t.Fatal("empty summary")
	}
}

func TestAnalyzeMinesSomeEventsCorrectly(t *testing.T) {
	a := analyzer(t)
	v := genVideo(t, 52)
	res, err := a.Analyze(v)
	if err != nil {
		t.Fatal(err)
	}
	// At least one mined scene label must agree with the overlapping
	// ground-truth scene (full agreement is Table 1's job, not a unit
	// test's).
	agree := 0
	for _, sc := range res.Scenes {
		first, _ := sc.FrameSpan()
		ti := v.Truth.SceneAt(first)
		if ti >= 0 && v.Truth.Scenes[ti].Event == sc.Event && sc.Event != vidmodel.EventUnknown {
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("no mined event agreed with ground truth")
	}
}

func TestAnalyzeStructureOnlyMode(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true, SkipClusters: true})
	if err != nil {
		t.Fatal(err)
	}
	v := genVideo(t, 53)
	res, err := a.Analyze(v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != nil {
		t.Fatal("events must be skipped")
	}
	if res.Clusters != nil {
		t.Fatal("clusters must be skipped")
	}
	if len(res.Scenes) == 0 {
		t.Fatal("scenes still required")
	}
}

func TestAnalyzeEmptyVideo(t *testing.T) {
	a := analyzer(t)
	if _, err := a.Analyze(&vidmodel.Video{}); err == nil {
		t.Fatal("want error on empty video")
	}
	if _, err := a.Analyze(nil); err == nil {
		t.Fatal("want error on nil video")
	}
}

func TestIndexEntriesBuildable(t *testing.T) {
	a := analyzer(t)
	v := genVideo(t, 54)
	res, err := a.Analyze(v)
	if err != nil {
		t.Fatal(err)
	}
	entries := res.IndexEntries("medicine")
	if len(entries) != len(res.Shots) {
		t.Fatalf("entries = %d, want %d", len(entries), len(res.Shots))
	}
	ix, err := index.Build(entries, index.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := entries[0].Shot.Feature()
	hits, stats := ix.Search(q, 3)
	if len(hits) == 0 {
		t.Fatal("no search results")
	}
	if stats.FloatOps <= 0 {
		t.Fatal("stats not collected")
	}
}

func TestEventOf(t *testing.T) {
	a := analyzer(t)
	v := genVideo(t, 55)
	res, err := a.Analyze(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenes) == 0 {
		t.Fatal("no scenes")
	}
	first, _ := res.Scenes[0].FrameSpan()
	if got := res.EventOf(first); got != res.Scenes[0].Event {
		t.Fatalf("EventOf = %v, want %v", got, res.Scenes[0].Event)
	}
	if got := res.EventOf(-5); got != vidmodel.EventUnknown {
		t.Fatalf("EventOf(-5) = %v", got)
	}
}
