// Package core is ClassMiner itself: the Fig. 3 pipeline that turns a raw
// video into its mined content structure and events. It chains shot
// segmentation with representative-frame selection (§3.1), group detection
// and classification (§3.2), group merging into scenes (§3.4), scene
// clustering (§3.5), visual/audio event mining (§4) and the scalable
// skimming construction (§5), and exposes the result as database index
// entries (§2, §6.2).
package core

import (
	"fmt"

	"classminer/internal/audio"
	"classminer/internal/cluster"
	"classminer/internal/concept"
	"classminer/internal/event"
	"classminer/internal/index"
	"classminer/internal/shotdet"
	"classminer/internal/skim"
	"classminer/internal/structure"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

// Options configures the full pipeline. The zero value reproduces the
// paper's published settings.
type Options struct {
	Shot    shotdet.Config
	Group   structure.GroupConfig
	Scene   structure.SceneConfig
	Cluster cluster.Options
	// EventLambda is the BIC penalty factor λ (0 = default).
	EventLambda float64
	// SkipEvents disables audio processing and event mining (structure-
	// only runs are much faster; used by the Fig. 12/13 harness where
	// events play no role).
	SkipEvents bool
	// SkipClusters disables §3.5 scene clustering.
	SkipClusters bool
	// ClassifierSeed fixes the speech/non-speech GMM training (0 = 1).
	ClassifierSeed int64
}

// Analyzer is a reusable pipeline instance. The speech/non-speech
// classifier is trained once at construction (on synthetic labelled clips,
// the §4.2 substitution) and reused across videos.
type Analyzer struct {
	opts Options
	clf  *audio.SpeechClassifier
}

// NewAnalyzer builds a pipeline. Training the audio classifier costs a
// couple of seconds; construct one analyzer and reuse it.
func NewAnalyzer(opts Options) (*Analyzer, error) {
	a := &Analyzer{opts: opts}
	if !opts.SkipEvents {
		seed := opts.ClassifierSeed
		if seed == 0 {
			seed = 1
		}
		speech, non := synth.TrainingClips(8000, audio.ClipSeconds, 30, seed)
		clf, err := audio.TrainSpeechClassifier(speech, non, 8000, seed)
		if err != nil {
			return nil, fmt.Errorf("core: training speech classifier: %w", err)
		}
		a.clf = clf
	}
	return a, nil
}

// Result is the full mined content structure of one video.
type Result struct {
	Video     *vidmodel.Video
	Shots     []*vidmodel.Shot
	ShotTrace *shotdet.Trace
	Groups    []*vidmodel.Group
	Scenes    []*vidmodel.Scene
	Discarded []*vidmodel.Scene // scenes eliminated for having < 3 shots
	Clusters  []*vidmodel.ClusteredScene
	Events    map[int]vidmodel.EventKind // scene index -> mined event
	Skim      *skim.Skim
}

// Analyze runs the complete pipeline on one video.
func (a *Analyzer) Analyze(v *vidmodel.Video) (*Result, error) {
	if v == nil || len(v.Frames) == 0 {
		return nil, fmt.Errorf("core: empty video")
	}
	res := &Result{Video: v}

	shots, trace, err := shotdet.Detect(v, a.opts.Shot)
	if err != nil {
		return nil, fmt.Errorf("core: shot detection: %w", err)
	}
	res.Shots, res.ShotTrace = shots, trace

	gres, err := structure.DetectGroups(shots, a.opts.Group)
	if err != nil {
		return nil, fmt.Errorf("core: group detection: %w", err)
	}
	res.Groups = gres.Groups

	sres, err := structure.MergeScenes(gres.Groups, a.opts.Scene)
	if err != nil {
		return nil, fmt.Errorf("core: scene merging: %w", err)
	}
	res.Scenes, res.Discarded = sres.Scenes, sres.Discarded

	if !a.opts.SkipClusters && len(res.Scenes) > 0 {
		cres, err := cluster.ClusterScenes(res.Scenes, a.opts.Cluster)
		if err != nil {
			return nil, fmt.Errorf("core: scene clustering: %w", err)
		}
		res.Clusters = cres.Clusters
	}

	if !a.opts.SkipEvents && v.Audio != nil && len(res.Scenes) > 0 {
		miner, err := event.NewMiner(a.clf, event.Config{
			Lambda:     a.opts.EventLambda,
			SampleRate: v.Audio.SampleRate,
		})
		if err != nil {
			return nil, fmt.Errorf("core: event miner: %w", err)
		}
		res.Events = miner.MineAll(v, res.Scenes, shots)
	}

	sk, err := skim.Build(res.Shots, res.Groups, res.Scenes, res.Clusters, len(v.Frames))
	if err != nil {
		return nil, fmt.Errorf("core: skimming: %w", err)
	}
	res.Skim = sk
	return res, nil
}

// IndexEntries converts the mined result into hierarchical index entries
// under the given subcluster concept (e.g. "medicine"): every shot is filed
// beneath the scene-level concept its mined event maps to.
func (r *Result) IndexEntries(subcluster string) []*index.Entry {
	var out []*index.Entry
	inScene := map[int]*vidmodel.Scene{}
	for _, sc := range r.Scenes {
		for _, s := range sc.Shots() {
			inScene[s.Index] = sc
		}
	}
	for _, s := range r.Shots {
		kind := vidmodel.EventUnknown
		if sc, ok := inScene[s.Index]; ok {
			kind = sc.Event
		}
		leaf := concept.SceneConcept(subcluster, kind)
		out = append(out, &index.Entry{
			VideoName: r.Video.Name,
			Shot:      s,
			Path:      []string{"medical education", subcluster, leaf},
		})
	}
	return out
}

// EventOf returns the mined event of the scene containing the given frame,
// or EventUnknown.
func (r *Result) EventOf(frame int) vidmodel.EventKind {
	for _, sc := range r.Scenes {
		first, last := sc.FrameSpan()
		if frame >= first && frame < last {
			return sc.Event
		}
	}
	return vidmodel.EventUnknown
}

// Summary prints a compact human-readable description of the result.
func (r *Result) Summary() string {
	clusters := len(r.Clusters)
	events := map[vidmodel.EventKind]int{}
	for _, sc := range r.Scenes {
		events[sc.Event]++
	}
	return fmt.Sprintf("%s: %d frames, %d shots, %d groups, %d scenes (+%d discarded), %d clustered scenes; events: %d presentation, %d dialog, %d clinical, %d unknown",
		r.Video.Name, len(r.Video.Frames), len(r.Shots), len(r.Groups), len(r.Scenes), len(r.Discarded), clusters,
		events[vidmodel.EventPresentation], events[vidmodel.EventDialog],
		events[vidmodel.EventClinicalOperation], events[vidmodel.EventUnknown])
}
