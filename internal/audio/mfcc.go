package audio

import "math"

// MFCC extraction parameters fixed by §4.2: 14 coefficients from 30 ms
// sliding windows with 20 ms overlap (10 ms hop).
const (
	// NumMFCC is the acoustic-space dimension p of the BIC test.
	NumMFCC = 14
	// mfccWindowSec and mfccHopSec implement "30 ms sliding windows with
	// an overlapping of 20 ms".
	mfccWindowSec = 0.030
	mfccHopSec    = 0.010
	numMelFilters = 26
	preEmphasis   = 0.97
)

func hzToMel(hz float64) float64  { return 2595 * math.Log10(1+hz/700) }
func melToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// melFilterbank builds triangular filters over the power-spectrum bins.
func melFilterbank(nBins int, sampleRate int) [][]float64 {
	nyquist := float64(sampleRate) / 2
	melMax := hzToMel(nyquist)
	points := make([]float64, numMelFilters+2)
	for i := range points {
		points[i] = melToHz(melMax * float64(i) / float64(numMelFilters+1))
	}
	binOf := func(hz float64) float64 { return hz / nyquist * float64(nBins-1) }
	filters := make([][]float64, numMelFilters)
	for m := 0; m < numMelFilters; m++ {
		f := make([]float64, nBins)
		lo, mid, hi := binOf(points[m]), binOf(points[m+1]), binOf(points[m+2])
		for b := 0; b < nBins; b++ {
			x := float64(b)
			switch {
			case x >= lo && x <= mid && mid > lo:
				f[b] = (x - lo) / (mid - lo)
			case x > mid && x <= hi && hi > mid:
				f[b] = (hi - x) / (hi - mid)
			}
		}
		filters[m] = f
	}
	return filters
}

// MFCCs computes the 14-dim mel-frequency cepstral coefficient sequence of
// a clip. It returns one vector per 30 ms analysis window (10 ms hop);
// clips shorter than one window yield nil.
func MFCCs(samples []float64, sampleRate int) [][]float64 {
	win := int(mfccWindowSec * float64(sampleRate))
	hop := int(mfccHopSec * float64(sampleRate))
	if win < 2 || hop < 1 || len(samples) < win {
		return nil
	}
	// Pre-emphasis.
	emph := make([]float64, len(samples))
	emph[0] = samples[0]
	for i := 1; i < len(samples); i++ {
		emph[i] = samples[i] - preEmphasis*samples[i-1]
	}
	nBins := nextPow2(win)/2 + 1
	filters := melFilterbank(nBins, sampleRate)
	var out [][]float64
	for start := 0; start+win <= len(emph); start += hop {
		spec := powerSpectrum(emph[start : start+win])
		logMel := make([]float64, numMelFilters)
		for m, f := range filters {
			var e float64
			for b, w := range f {
				if w > 0 {
					e += w * spec[b]
				}
			}
			logMel[m] = math.Log(e + 1e-12)
		}
		out = append(out, dctII(logMel, NumMFCC))
	}
	return out
}

// dctII computes the first n coefficients of the orthonormal DCT-II of x.
func dctII(x []float64, n int) []float64 {
	out := make([]float64, n)
	k := float64(len(x))
	for c := 0; c < n; c++ {
		var s float64
		for i, v := range x {
			s += v * math.Cos(math.Pi*float64(c)*(float64(i)+0.5)/k)
		}
		scale := math.Sqrt(2 / k)
		if c == 0 {
			scale = math.Sqrt(1 / k)
		}
		out[c] = s * scale
	}
	return out
}
