// Package audio implements the audio analysis stack of §4.2: short-time
// framing, a radix-2 FFT, 14-dimensional MFCCs from 30 ms windows with
// 20 ms overlap, the 14 clip-level features of Liu & Huang (ref. [22]), a
// diagonal-covariance Gaussian mixture model trained with EM for the clean
// speech / non-speech decision, per-shot representative-clip selection, and
// the Bayesian Information Criterion speaker-change test of Eqs. (17)–(19).
package audio

import "math"

// fft computes the in-place radix-2 Cooley–Tukey FFT. len(re) must be a
// power of two; im is the imaginary part (usually zeros on input).
func fft(re, im []float64) {
	n := len(re)
	if n <= 1 {
		return
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tRe := re[j]*curRe - im[j]*curIm
				tIm := re[j]*curIm + im[j]*curRe
				re[j], im[j] = re[i]-tRe, im[i]-tIm
				re[i], im[i] = re[i]+tRe, im[i]+tIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// powerSpectrum windows the frame with a Hamming window, zero-pads to a
// power of two and returns the one-sided power spectrum (N/2+1 bins).
func powerSpectrum(frame []float64) []float64 {
	n := nextPow2(len(frame))
	re := make([]float64, n)
	im := make([]float64, n)
	for i, v := range frame {
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(len(frame)-1))
		re[i] = v * w
	}
	fft(re, im)
	out := make([]float64, n/2+1)
	for i := range out {
		out[i] = re[i]*re[i] + im[i]*im[i]
	}
	return out
}
